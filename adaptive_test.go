package xmlsql_test

import (
	"context"
	"strings"
	"testing"

	"xmlsql"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/relational"
	"xmlsql/internal/workloads"
)

// TestPlannerAdaptiveDifferential checks that cost-based adaptive serving is
// purely a performance decision: for every workload query plus fuzzed paths,
// an adaptive Planner (mem and fakedb backends, Exec and Eval routes) returns
// exactly the rows of the naive baseline translation and of a fixed-knob
// Planner. Named TestPlanner* so CI's dedicated race run covers it.
func TestPlannerAdaptiveDifferential(t *testing.T) {
	ctx := context.Background()
	for _, w := range diffWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			store := xmlsql.NewStore()
			if _, err := xmlsql.Shred(w.schema, store, w.doc); err != nil {
				t.Fatal(err)
			}
			adaptive := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{
				Backend:   xmlsql.NewMemBackendOn(store),
				Translate: xmlsql.TranslateOptions{Adaptive: true},
			})
			fixed := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{
				Backend: xmlsql.NewMemBackendOn(store),
			})
			db := xmlsql.NewDBBackend(fakedb.Open(), xmlsql.DialectSQLite)
			defer db.Close()
			if err := db.EnsureSchema(w.schema); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Load(w.schema, w.doc); err != nil {
				t.Fatal(err)
			}
			adaptiveDB := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{
				Backend:   db,
				Translate: xmlsql.TranslateOptions{Adaptive: true},
			})

			queries := append([]string(nil), w.queries...)
			queries = append(queries, fuzzPaths(w.labels, 12, 99)...)
			tested := 0
			for _, qs := range queries {
				q, err := xmlsql.ParseQuery(qs)
				if err != nil {
					continue // fuzzed path the grammar rejects
				}
				naive, err := xmlsql.TranslateNaive(w.schema, q)
				if err != nil {
					continue // fuzzed path with no schema match
				}
				want, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{Parallelism: 1, DisableMemo: true})
				if err != nil {
					t.Fatalf("%s: baseline execution: %v", qs, err)
				}
				got, err := adaptive.Exec(ctx, qs)
				if err != nil {
					t.Fatalf("%s: adaptive Exec: %v", qs, err)
				}
				if !want.MultisetEqual(got) {
					t.Fatalf("%s: adaptive Exec differs from baseline:\n%s", qs, want.MultisetDiff(got))
				}
				gotEval, err := adaptive.EvalContext(ctx, store, qs)
				if err != nil {
					t.Fatalf("%s: adaptive Eval: %v", qs, err)
				}
				if !want.MultisetEqual(gotEval) {
					t.Fatalf("%s: adaptive Eval differs from baseline:\n%s", qs, want.MultisetDiff(gotEval))
				}
				gotFixed, err := fixed.Exec(ctx, qs)
				if err != nil {
					t.Fatalf("%s: fixed Exec: %v", qs, err)
				}
				if !want.MultisetEqual(gotFixed) {
					t.Fatalf("%s: adaptive and fixed planners disagree:\n%s", qs, gotFixed.MultisetDiff(got))
				}
				// Empty translations render to empty statements, which
				// database/sql backends reject — nothing to serve there.
				if len(naive.Selects) > 0 {
					gotDB, err := adaptiveDB.Exec(ctx, qs)
					if err != nil {
						t.Fatalf("%s: adaptive fakedb Exec: %v", qs, err)
					}
					if !want.MultisetEqual(gotDB) {
						t.Fatalf("%s: adaptive fakedb differs from baseline:\n%s", qs, want.MultisetDiff(gotDB))
					}
				}
				tested++
			}
			if tested < len(w.queries) {
				t.Fatalf("only %d of %d fixed queries ran", tested, len(w.queries))
			}
			if got := adaptive.Stats().StatsCollects; got < 1 {
				t.Fatalf("adaptive planner never collected statistics (StatsCollects = %d)", got)
			}
		})
	}
}

// TestPlannerAdaptiveStaleness checks the staleness contract end to end:
// mutating the store flips the statistics fingerprint, which misses the
// adaptive plan cache's fingerprinted keys, re-collects statistics, and
// re-plans — and the re-planned query is correct on the mutated data.
func TestPlannerAdaptiveStaleness(t *testing.T) {
	ctx := context.Background()
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 8, CategoriesPerItem: 2, NumCategories: 10, Seed: 11,
	})
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{
		Backend:   xmlsql.NewMemBackendOn(store),
		Translate: xmlsql.TranslateOptions{Adaptive: true},
	})
	query := workloads.QueryQ1

	ex1, err := p.Explain(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(ctx, query); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Exec(ctx, query); err != nil {
		t.Fatal(err)
	}
	st1 := p.Stats()
	if st1.StatsCollects != 1 {
		t.Fatalf("StatsCollects = %d after steady serving, want 1", st1.StatsCollects)
	}
	if st1.Hits == 0 {
		t.Fatalf("repeated Exec never hit the plan cache: %+v", st1)
	}

	// Delete a slice of the data the query touches.
	mutated := false
	for _, name := range store.TableNames() {
		tbl := store.Table(name)
		if tbl.Len() < 2 || !tbl.Schema().HasColumn("id") {
			continue
		}
		victim := tbl.Rows()[0][0]
		if n := tbl.DeleteWhere(func(r relational.Row) bool { return r[0].Equal(victim) }); n > 0 {
			mutated = true
			break
		}
	}
	if !mutated {
		t.Fatal("no table to mutate")
	}

	ex2, err := p.Explain(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if ex2.StatsFingerprint == ex1.StatsFingerprint {
		t.Fatalf("fingerprint %s unchanged by DeleteWhere", ex1.StatsFingerprint)
	}
	st2 := p.Stats()
	if st2.StatsCollects != 2 {
		t.Fatalf("StatsCollects = %d after mutation, want 2", st2.StatsCollects)
	}
	if st2.Misses <= st1.Misses {
		t.Fatalf("mutation did not force a re-plan (misses %d -> %d)", st1.Misses, st2.Misses)
	}

	// The re-planned query answers correctly on the mutated store.
	q, err := xmlsql.ParseQuery(query)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := xmlsql.TranslateNaive(s, q)
	if err != nil {
		t.Fatal(err)
	}
	want, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{Parallelism: 1, DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := p.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if !want.MultisetEqual(got) {
		t.Fatalf("post-mutation adaptive result differs:\n%s", want.MultisetDiff(got))
	}

	// An UpdateWhere flips the fingerprint again.
	for _, name := range store.TableNames() {
		tbl := store.Table(name)
		idx := tbl.Schema().ColumnIndex("category")
		if idx < 0 || tbl.Len() == 0 {
			continue
		}
		if _, err := tbl.UpdateWhere(
			func(r relational.Row) bool { return true },
			func(r relational.Row) relational.Row { r[idx] = relational.String("renamed"); return r },
		); err != nil {
			t.Fatal(err)
		}
		break
	}
	ex3, err := p.Explain(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if ex3.StatsFingerprint == ex2.StatsFingerprint {
		t.Fatalf("fingerprint %s unchanged by UpdateWhere", ex2.StatsFingerprint)
	}
}

// TestPlannerAdaptiveExplain checks Explain's report shape: a decision with
// estimates, a knob-vector cache key, and agreement with what Exec serves.
func TestPlannerAdaptiveExplain(t *testing.T) {
	ctx := context.Background()
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 8, CategoriesPerItem: 2, NumCategories: 10, Seed: 3,
	})
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{
		Backend:   xmlsql.NewMemBackendOn(store),
		Translate: xmlsql.TranslateOptions{Adaptive: true},
	})
	ex, err := p.Explain(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Decision == nil || ex.Decision.BaselineEst == nil || ex.Decision.ChosenEst == nil {
		t.Fatalf("explanation missing estimates: %+v", ex)
	}
	if ex.Decision.ChosenEst.Rows <= 0 || ex.Decision.ChosenEst.Cost <= 0 {
		t.Fatalf("degenerate chosen estimate: %+v", ex.Decision.ChosenEst)
	}
	if !strings.HasPrefix(ex.StatsFingerprint, "stats:") {
		t.Fatalf("fingerprint %q not stats-prefixed", ex.StatsFingerprint)
	}
	key := ex.Decision.KnobKey()
	for _, frag := range []string{"plan=", "factor=", "reorder="} {
		if !strings.Contains(key, frag) {
			t.Fatalf("knob key %q missing %q", key, frag)
		}
	}
	// Explain primed the cache: the following Exec serves without re-planning.
	misses := p.Stats().Misses
	if _, err := p.Exec(ctx, workloads.QueryQ1); err != nil {
		t.Fatal(err)
	}
	if after := p.Stats().Misses; after != misses {
		t.Fatalf("Exec after Explain re-planned (misses %d -> %d)", misses, after)
	}
}
