package xmlsql_test

import (
	"context"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"xmlsql"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/workloads"
)

// diffWorkload bundles a schema, a small instance, its query list, and the
// label alphabet fuzzed paths draw from.
type diffWorkload struct {
	name    string
	schema  *xmlsql.Schema
	doc     *xmlsql.Document
	queries []string
	labels  []string
}

func diffWorkloads(t *testing.T) []diffWorkload {
	t.Helper()
	xm := workloads.XMark()
	xmDoc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 8, CategoriesPerItem: 2, NumCategories: 10, Seed: 7,
	})
	xfEdge, err := xmlsql.EdgeMapping(workloads.XMarkFull())
	if err != nil {
		t.Fatal(err)
	}
	xfDoc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: 5, CategoriesPerItem: 2, NumCategories: 10, Seed: 7,
	})
	s2 := workloads.S2()
	s2Edge, err := xmlsql.EdgeMapping(s2)
	if err != nil {
		t.Fatal(err)
	}
	s2Doc := workloads.GenerateS2(10, 7)
	s3 := workloads.S3()
	s3Doc := workloads.GenerateS3(workloads.S3Config{Fanout: 2, MaxDepth: 4, Seed: 7})
	xaEdge, err := xmlsql.EdgeMapping(workloads.XMarkAuctions())
	if err != nil {
		t.Fatal(err)
	}
	xaDoc := workloads.GenerateXMarkAuctions(workloads.XMarkAuctionsConfig{
		ItemsPerContinent: 4, People: 6, OpenAuctions: 6, BiddersPerAuction: 2, ClosedAuctions: 3, Seed: 7,
	})
	return []diffWorkload{
		{
			name: "xmark", schema: xm, doc: xmDoc,
			queries: []string{workloads.QueryQ1, workloads.QueryQ2, "//Item", "//InCategory/Category"},
			labels:  []string{"Site", "Regions", "Africa", "Asia", "Item", "name", "InCategory", "Category"},
		},
		{
			name: "xmarkfull-edge", schema: xfEdge, doc: xfDoc,
			queries: []string{workloads.QueryQ8, "//Item/name", "//InCategory"},
			labels:  []string{"Site", "Regions", "Europe", "Item", "name", "InCategory", "Category"},
		},
		{
			name: "s2", schema: s2, doc: s2Doc,
			queries: []string{"//s/t1", "//t2"},
			labels:  []string{"root", "m1", "m2", "m3", "s", "t1", "t2"},
		},
		{
			name: "s2-edge", schema: s2Edge, doc: s2Doc,
			queries: []string{"//s/t1", "//t2"},
			labels:  []string{"root", "m1", "m2", "m3", "s", "t1", "t2"},
		},
		{
			name: "s3", schema: s3, doc: s3Doc,
			queries: []string{workloads.QueryQ4, workloads.QueryQ5},
			labels:  []string{"E0", "E1", "E6", "E10", "elemid"},
		},
		{
			name: "xmarkauctions-edge", schema: xaEdge, doc: xaDoc,
			queries: []string{"//ItemRef", "//name", "//Bidder/Increase"},
			labels:  []string{"Site", "OpenAuctions", "OpenAuction", "ItemRef", "Bidder", "Increase", "People", "Person", "Name"},
		},
	}
}

// fuzzPaths derives seeded pseudo-random path expressions from a label
// alphabet: 1–3 steps, each prefixed by / or //.
func fuzzPaths(labels []string, n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		var b strings.Builder
		steps := 1 + rng.Intn(3)
		for s := 0; s < steps; s++ {
			if s == 0 || rng.Intn(2) == 0 {
				b.WriteString("//")
			} else {
				b.WriteString("/")
			}
			b.WriteString(labels[rng.Intn(len(labels))])
		}
		out = append(out, b.String())
	}
	return out
}

// TestFactoredDifferential checks, for every workload query plus fuzzed
// paths, that the factored translation is multiset-equivalent to the
// unfactored one — on the in-memory engine (serial and parallel, memo on and
// off) and through the fakedb database/sql route (render → parse → execute).
func TestFactoredDifferential(t *testing.T) {
	ctx := context.Background()
	for _, w := range diffWorkloads(t) {
		w := w
		t.Run(w.name, func(t *testing.T) {
			store := xmlsql.NewStore()
			if _, err := xmlsql.Shred(w.schema, store, w.doc); err != nil {
				t.Fatal(err)
			}
			db := xmlsql.NewDBBackend(fakedb.Open(), xmlsql.DialectSQLite)
			defer db.Close()
			if err := db.EnsureSchema(w.schema); err != nil {
				t.Fatal(err)
			}
			if _, err := db.Load(w.schema, w.doc); err != nil {
				t.Fatal(err)
			}

			queries := append([]string(nil), w.queries...)
			queries = append(queries, fuzzPaths(w.labels, 12, 42)...)
			tested := 0
			for _, qs := range queries {
				q, err := xmlsql.ParseQuery(qs)
				if err != nil {
					continue // fuzzed path the grammar rejects
				}
				naive, err := xmlsql.TranslateNaive(w.schema, q)
				if err != nil {
					continue // fuzzed path with no schema match
				}
				factored, changed := xmlsql.FactorSharedPrefixes(w.schema, naive)
				want, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{Parallelism: 1, DisableMemo: true})
				if err != nil {
					t.Fatalf("%s: unfactored execution: %v", qs, err)
				}
				for _, opts := range []xmlsql.ExecuteOptions{
					{Parallelism: 1},
					{Parallelism: 4},
					{Parallelism: 4, DisableMemo: true},
				} {
					got, err := xmlsql.ExecuteContext(ctx, store, factored, opts)
					if err != nil {
						t.Fatalf("%s (opts %+v): factored execution: %v\n%s", qs, opts, err, factored.SQL())
					}
					if !want.MultisetEqual(got) {
						t.Fatalf("%s (opts %+v, rewritten=%v): factored differs:\n%s\nfactored SQL:\n%s",
							qs, opts, changed, want.MultisetDiff(got), factored.SQL())
					}
				}
				// The factored SQL must survive rendering into a dialect,
				// the fake driver's parser, and its executor. A path with no
				// schema match translates to an empty statement, which
				// database/sql backends reject — nothing to compare there.
				if len(factored.Selects) == 0 {
					tested++
					continue
				}
				dbRes, err := xmlsql.ExecuteOn(ctx, db, factored)
				if err != nil {
					t.Fatalf("%s: fakedb execution: %v\n%s", qs, err, factored.SQLFor(xmlsql.DialectSQLite))
				}
				if !want.MultisetEqual(dbRes) {
					t.Fatalf("%s: fakedb differs (rewritten=%v):\n%s", qs, changed, want.MultisetDiff(dbRes))
				}
				tested++
			}
			if tested < len(w.queries) {
				t.Fatalf("only %d of %d fixed queries ran", tested, len(w.queries))
			}
		})
	}
}

// TestFactorPrefixesPlannerOption checks that the FactorPrefixes translate
// option reaches served plans, keeps cache keys distinct from unfactored
// planners, and stays applied in safe mode.
func TestFactorPrefixesPlannerOption(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 5, CategoriesPerItem: 2, NumCategories: 10, Seed: 3,
	})
	query := workloads.QueryQ1

	mkBackend := func() xmlsql.Backend {
		b := xmlsql.NewMemBackend()
		if err := b.EnsureSchema(s); err != nil {
			t.Fatal(err)
		}
		if _, err := b.Load(s, doc); err != nil {
			t.Fatal(err)
		}
		return b
	}

	plain := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: mkBackend()})
	factored := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{
		Backend:   mkBackend(),
		Translate: xmlsql.TranslateOptions{FactorPrefixes: true},
	})

	// The naive shapes differ under the flag; serve both in safe mode so the
	// branch-heavy baseline path is what executes.
	plain.SetTrustState(xmlsql.TrustViolated)
	factored.SetTrustState(xmlsql.TrustViolated)
	ctx := context.Background()
	wantRes, err := plain.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := factored.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if !wantRes.MultisetEqual(gotRes) {
		t.Fatalf("factored safe-mode serving differs:\n%s", wantRes.MultisetDiff(gotRes))
	}

	// One planner serving both modes must not alias cached plans: flipping
	// the trust state back and forth re-serves each mode's own plan.
	factored.SetTrustState(xmlsql.TrustVerified)
	if _, err := factored.Exec(ctx, query); err != nil {
		t.Fatal(err)
	}
	factored.SetTrustState(xmlsql.TrustViolated)
	again, err := factored.Exec(ctx, query)
	if err != nil {
		t.Fatal(err)
	}
	if !wantRes.MultisetEqual(again) {
		t.Fatalf("mode flip corrupted cached plans:\n%s", wantRes.MultisetDiff(again))
	}

	// Distinct Translate options must produce distinct cache keys: two
	// plans for the same query, one per option set, both correct.
	if plainPlan, err := plain.Plan(query); err != nil {
		t.Fatal(err)
	} else if factPlan, err := factored.Plan(query); err != nil {
		t.Fatal(err)
	} else if fmt.Sprintf("%+v", plainPlan.Query.Shape()) == "" || plainPlan == factPlan {
		t.Fatal("planners with distinct options share a Translation")
	}
}
