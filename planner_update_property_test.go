package xmlsql_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"xmlsql"
	"xmlsql/internal/relational"
	"xmlsql/internal/workloads"
)

// The update property suite: random mutation batches against the planner,
// with the incremental audit's verdict checked against a full audit of the
// whole instance after every batch. Valid batches must apply with both
// verdicts clean; invalid batches must be rejected with a typed error naming
// the violating mutation's path, leaving the store byte-identical. The rand
// schedules are seeded, so every run replays the same batches.

// destructibleContinents are the continents random deletes and replaces may
// target. Africa is reserved: its items must survive the whole run so the
// final preexisting-dirt phase has guaranteed insert targets.
var destructibleContinents = workloads.Continents[1:]

// randomValidBatch builds a batch of mutations that are valid by
// construction: inserts land set-valued InCategory subtrees (always legal),
// deletes and replaces each claim a distinct destructible continent so no
// two mutations of one batch contend for the same targets.
func randomValidBatch(rng *rand.Rand, serial int) xmlsql.UpdateBatch {
	var muts []xmlsql.UpdateMutation
	perm := rng.Perm(len(destructibleContinents))
	n := 1 + rng.Intn(3)
	for i := 0; i < n; i++ {
		cont := destructibleContinents[perm[i]]
		switch rng.Intn(4) {
		case 0, 1: // inserts dominate so the instance keeps growing
			muts = append(muts, xmlsql.UpdateMutation{
				Op:   xmlsql.UpdateInsert,
				Path: "/Site/Regions/" + cont + "/Item",
				XML:  fmt.Sprintf("<InCategory><Category>prop-%d-%d</Category></InCategory>", serial, i),
			})
		case 2:
			muts = append(muts, xmlsql.UpdateMutation{
				Op:   xmlsql.UpdateReplace,
				Path: "/Site/Regions/" + cont + "/Item",
				XML:  fmt.Sprintf("<Item><name>repl-%d-%d</name></Item>", serial, i),
			})
		default:
			muts = append(muts, xmlsql.UpdateMutation{
				Op:   xmlsql.UpdateDelete,
				Path: "/Site/Regions/" + cont + "/Item",
			})
		}
	}
	return xmlsql.UpdateBatch{Muts: muts}
}

// invalidBatches are rejection fixtures: each fails planning or validation
// with the expected kind, anchored at the expected mutation path.
var invalidBatches = []struct {
	batch xmlsql.UpdateBatch
	kind  xmlsql.UpdateErrorKind
	path  string
}{
	{xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{
		{Op: xmlsql.UpdateInsert, Path: "//Item", XML: "<Bogus/>"},
	}}, xmlsql.UpdateErrConform, "//Item"},
	{xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{
		{Op: xmlsql.UpdateInsert, Path: "/Site/Regions/Africa/Item", XML: "<InCategory><Category>ok</Category></InCategory>"},
		{Op: xmlsql.UpdateDelete, Path: "//Item/name"},
	}}, xmlsql.UpdateErrTarget, "//Item/name"},
	{xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{
		{Op: xmlsql.UpdateInsert, Path: "/Site[", XML: "<InCategory><Category>x</Category></InCategory>"},
	}}, xmlsql.UpdateErrPath, "/Site["},
}

func TestPlannerUpdatePropertyIncrementalMatchesFull(t *testing.T) {
	for _, seed := range []int64{1, 17, 4242} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			ctx := context.Background()
			rng := rand.New(rand.NewSource(seed))
			p, store := newUpdatePlanner(t, nil)

			applied, rejected := 0, 0
			for round := 0; round < 30; round++ {
				if rng.Float64() < 0.25 {
					fix := invalidBatches[rng.Intn(len(invalidBatches))]
					pre := store.Dump()
					_, err := p.Update(ctx, fix.batch)
					var uerr *xmlsql.UpdateError
					if !errors.As(err, &uerr) {
						t.Fatalf("round %d: invalid batch returned %v, want *UpdateError", round, err)
					}
					if uerr.Kind != fix.kind || uerr.Path != fix.path {
						t.Fatalf("round %d: rejection (%v at %q), want (%v at %q)",
							round, uerr.Kind, uerr.Path, fix.kind, fix.path)
					}
					if store.Dump() != pre {
						t.Fatalf("round %d: rejected batch changed the store", round)
					}
					rejected++
					continue
				}

				res, err := p.Update(ctx, randomValidBatch(rng, round))
				if err != nil {
					t.Fatalf("round %d: valid batch rejected: %v", round, err)
				}
				applied++
				full, err := p.Audit(ctx)
				if err != nil {
					t.Fatalf("round %d: full audit: %v", round, err)
				}
				if res.Audit.Clean() != full.Clean() {
					t.Fatalf("round %d: incremental verdict (clean=%v over %v) disagrees with full audit (clean=%v, %d violations)",
						round, res.Audit.Clean(), res.Touched.Relations(), full.Clean(), full.Total)
				}
				if !full.Clean() {
					t.Fatalf("round %d: valid batches dirtied the instance: %v", round, full.Violations)
				}
			}
			if applied == 0 || rejected == 0 {
				t.Fatalf("vacuous schedule: %d applied, %d rejected", applied, rejected)
			}

			// Dirty phase: corrupt a tuple inside the next batch's audit
			// neighborhood (the Site root's parent link dangles — a P2
			// violation on an ancestor of any insert). The incremental audit
			// must see the dirt exactly as the full audit does, and attribute
			// it as pre-existing rather than blaming the batch.
			corruptSiteParent(t, store)
			res, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
				Op:   xmlsql.UpdateInsert,
				Path: "/Site/Regions/Africa/Item",
				XML:  "<InCategory><Category>after-dirt</Category></InCategory>",
			}}})
			if err != nil {
				t.Fatalf("pre-existing dirt must not block a valid batch: %v", err)
			}
			full, err := p.Audit(ctx)
			if err != nil {
				t.Fatalf("full audit over dirty instance: %v", err)
			}
			if full.Clean() {
				t.Fatal("corruption did not register in the full audit; the dirty phase is vacuous")
			}
			if res.Audit.Clean() {
				t.Fatal("incremental audit missed dirt the full audit sees in the batch's neighborhood")
			}
			if res.Preexisting == nil || res.Preexisting.Clean() {
				t.Fatal("dirt that predates the batch must be reported as Preexisting")
			}
		})
	}
}

// corruptSiteParent dangles the Site root's parentid, planting a P2
// violation that predates any subsequent batch.
func corruptSiteParent(t *testing.T, store *xmlsql.Store) {
	t.Helper()
	site := store.Table("Site")
	pi := site.Schema().ColumnIndex("parentid")
	if _, err := site.UpdateWhere(
		func(r relational.Row) bool { return true },
		func(r relational.Row) relational.Row { r[pi] = relational.Int(987654); return r },
	); err != nil {
		t.Fatalf("corrupting store: %v", err)
	}
}
