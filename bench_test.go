package xmlsql_test

import (
	"testing"

	"xmlsql"
	"xmlsql/internal/workloads"
)

// The benchmark suite regenerates every experiment of DESIGN.md as
// testing.B benchmarks: each experiment compares the baseline translation
// of [9] (sub-benchmark "naive") against the lossless-constraint-aware
// translation ("pruned") on the same shredded instance. `go test -bench=.`
// prints the per-query numbers; cmd/benchrunner prints them as the
// EXPERIMENTS.md tables with verification.

type fixture struct {
	schema *xmlsql.Schema
	store  *xmlsql.Store
}

func buildFixture(b *testing.B, s *xmlsql.Schema, doc *xmlsql.Document) *fixture {
	b.Helper()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		b.Fatal(err)
	}
	return &fixture{schema: s, store: store}
}

func (f *fixture) run(b *testing.B, query string) {
	b.Helper()
	q := xmlsql.MustParseQuery(query)
	naive, err := xmlsql.TranslateNaive(f.schema, q)
	if err != nil {
		b.Fatal(err)
	}
	pruned, err := xmlsql.Translate(f.schema, q)
	if err != nil {
		b.Fatal(err)
	}
	// Sanity before measuring.
	nres, err := xmlsql.Execute(f.store, naive)
	if err != nil {
		b.Fatal(err)
	}
	pres, err := xmlsql.Execute(f.store, pruned.Query)
	if err != nil {
		b.Fatal(err)
	}
	if !nres.MultisetEqual(pres) {
		b.Fatalf("%s: translations disagree", query)
	}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsql.Execute(f.store, naive); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("pruned", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := xmlsql.Execute(f.store, pruned.Query); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func xmarkFixture(b *testing.B) *fixture {
	return buildFixture(b, workloads.XMark(), workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 200, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	}))
}

// E1: §2 Q1 — SQ1^1 (union of six 2-join queries) vs SQ1^2 (scan).
func BenchmarkE1_Q1(b *testing.B) { xmarkFixture(b).run(b, workloads.QueryQ1) }

// E2: §4.1 Q2 — root-to-leaf chain vs 1-join suffix.
func BenchmarkE2_Q2(b *testing.B) { xmarkFixture(b).run(b, workloads.QueryQ2) }

// E3: Figure 5 Q3 — the duplicate-avoiding SQ3^2 on S1.
func BenchmarkE3_Q3(b *testing.B) {
	f := buildFixture(b, workloads.S1(), workloads.GenerateS1(300, 1))
	f.run(b, workloads.QueryQ3)
}

// E4: Figure 6 — the DAG mapping with shared subtrees.
func BenchmarkE4_DAG_T1(b *testing.B) {
	f := buildFixture(b, workloads.S2(), workloads.GenerateS2(200, 1))
	f.run(b, "//s/t1")
}

func BenchmarkE4_DAG_T2(b *testing.B) {
	f := buildFixture(b, workloads.S2(), workloads.GenerateS2(200, 1))
	f.run(b, "//t2")
}

func s3Fixture(b *testing.B) *fixture {
	return buildFixture(b, workloads.S3(), workloads.GenerateS3(workloads.S3Config{
		Fanout: 3, MaxDepth: 6, Seed: 1,
	}))
}

// E5: Figure 7 — Q4 and Q5 over the recursive schema.
func BenchmarkE5_Q4(b *testing.B) { s3Fixture(b).run(b, workloads.QueryQ4) }
func BenchmarkE5_Q5(b *testing.B) { s3Fixture(b).run(b, workloads.QueryQ5) }

// E6: Figure 9 — Q6 and Q7, recursive baseline vs pruned.
func BenchmarkE6_Q6(b *testing.B) { s3Fixture(b).run(b, workloads.QueryQ6) }
func BenchmarkE6_Q7(b *testing.B) { s3Fixture(b).run(b, workloads.QueryQ7) }

// E7: §5.3 Q8 — schema-oblivious Edge storage.
func BenchmarkE7_Q8Edge(b *testing.B) {
	base := workloads.XMarkFull()
	es, err := xmlsql.EdgeMapping(base)
	if err != nil {
		b.Fatal(err)
	}
	f := buildFixture(b, es, workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: 100, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	}))
	f.run(b, workloads.QueryQ8)
}

// E8: the speedup-range suite over XMark and ADEX (stands in for the [10]
// evaluation the paper cites).
func BenchmarkE8_XMark(b *testing.B) {
	f := xmarkFixture(b)
	for _, q := range []string{
		"//Item/InCategory/Category",
		"//Item/name",
		"//Item",
		"/Site//InCategory/Category",
		"/Site/Regions/SouthAmerica/Item/name",
	} {
		b.Run(q, func(b *testing.B) { f.run(b, q) })
	}
}

func BenchmarkE8_ADEX(b *testing.B) {
	f := buildFixture(b, workloads.ADEX(), workloads.GenerateADEX(workloads.ADEXConfig{
		AdsPerSection: 300, Seed: 1,
	}))
	for _, q := range []string{
		workloads.QueryAdexAllPhones,
		workloads.QueryAdexAllTitles,
		workloads.QueryAdexVehicleEmails,
		workloads.QueryAdexPrices,
	} {
		b.Run(q, func(b *testing.B) { f.run(b, q) })
	}
}

// Translation cost itself (not execution): the pruning algorithm must stay
// cheap relative to the queries it optimizes.
func BenchmarkTranslateQ1Pruned(b *testing.B) {
	s := workloads.XMark()
	q := xmlsql.MustParseQuery(workloads.QueryQ1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlsql.Translate(s, q); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTranslateQ7Pruned(b *testing.B) {
	s := workloads.S3()
	q := xmlsql.MustParseQuery(workloads.QueryQ7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := xmlsql.Translate(s, q); err != nil {
			b.Fatal(err)
		}
	}
}

// Serving fast path: the plan cache. Hot = repeated Planner.Eval (parse and
// translation amortized to a cache hit); Cold = the uncached
// translate+execute path on the same query and store. The recursive S3
// schema's Q4 is the headline case: pruning a recursive mapping is the most
// expensive translation (cycle unrolling during pattern enumeration) while
// its pruned SQL (R6 ⋈ R10) is among the cheapest to execute, which is
// exactly the regime the paper's contribution creates — and where a plan
// cache pays off most.
func plannerFixtureS3(b *testing.B) (*xmlsql.Schema, *xmlsql.Store) {
	b.Helper()
	s := workloads.S3()
	store := xmlsql.NewStore()
	doc := workloads.GenerateS3(workloads.S3Config{Fanout: 2, MaxDepth: 5, Seed: 1})
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		b.Fatal(err)
	}
	return s, store
}

func BenchmarkPlannerHot(b *testing.B) {
	s, store := plannerFixtureS3(b)
	p := xmlsql.NewPlanner(s)
	if _, err := p.Eval(store, workloads.QueryQ4); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Eval(store, workloads.QueryQ4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlannerCold(b *testing.B) {
	s, store := plannerFixtureS3(b)
	for i := 0; i < b.N; i++ {
		if _, err := xmlsql.Eval(s, store, workloads.QueryQ4); err != nil {
			b.Fatal(err)
		}
	}
}

// Parallel UNION ALL execution: naive translations are unions of
// root-to-leaf join chains (six branches for XMark's Q1 and the Edge
// mapping's Q8), the widest unions the system produces and therefore the
// workloads with enough independent branch work to scale with cores.
// "serial" forces Parallelism 1; "parallel" uses the GOMAXPROCS default.
// Per-branch results merge in branch order, so both return identical rows.
func benchmarkParallelUnion(b *testing.B, s *xmlsql.Schema, store *xmlsql.Store, query string) {
	b.Helper()
	naive, err := xmlsql.TranslateNaive(s, xmlsql.MustParseQuery(query))
	if err != nil {
		b.Fatal(err)
	}
	if naive.Shape().Branches < 4 {
		b.Fatalf("%s: naive union has %d branches, want >= 4", query, naive.Shape().Branches)
	}
	for _, mode := range []struct {
		name string
		par  int
	}{{"serial", 1}, {"parallel", 0}} {
		b.Run(mode.name, func(b *testing.B) {
			opts := xmlsql.ExecuteOptions{Parallelism: mode.par}
			for i := 0; i < b.N; i++ {
				if _, err := xmlsql.ExecuteWithOptions(store, naive, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkParallelUnion(b *testing.B) {
	b.Run("xmark-q1", func(b *testing.B) {
		s := workloads.XMark()
		store := xmlsql.NewStore()
		doc := workloads.GenerateXMark(workloads.XMarkConfig{
			ItemsPerContinent: 400, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
		})
		if _, err := xmlsql.Shred(s, store, doc); err != nil {
			b.Fatal(err)
		}
		benchmarkParallelUnion(b, s, store, workloads.QueryQ1)
	})
	b.Run("edge-q8", func(b *testing.B) {
		base := workloads.XMarkFull()
		es, err := xmlsql.EdgeMapping(base)
		if err != nil {
			b.Fatal(err)
		}
		store := xmlsql.NewStore()
		doc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
			ItemsPerContinent: 100, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
		})
		if _, err := xmlsql.Shred(es, store, doc); err != nil {
			b.Fatal(err)
		}
		benchmarkParallelUnion(b, es, store, workloads.QueryQ8)
	})
}

// Substrate throughput: shredding.
func BenchmarkShredXMark(b *testing.B) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 100, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		store := xmlsql.NewStore()
		if _, err := xmlsql.Shred(s, store, doc); err != nil {
			b.Fatal(err)
		}
	}
}
