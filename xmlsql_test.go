package xmlsql_test

import (
	"strings"
	"testing"

	"xmlsql"
)

const testSchema = `
schema shop
root shop

node shop  label=Shop   rel=Shop
node toys  label=Toys
node books label=Books
node titem label=Item   rel=Item
node bitem label=Item   rel=Item
node tname label=Name   col=name
node bname label=Name   col=name

edge shop -> toys
edge shop -> books
edge toys -> titem [pc=1]
edge books -> bitem [pc=2]
edge titem -> tname
edge bitem -> bname
`

const testDoc = `
<Shop>
  <Toys>
    <Item><Name>ball</Name></Item>
    <Item><Name>kite</Name></Item>
  </Toys>
  <Books>
    <Item><Name>iliad</Name></Item>
  </Books>
</Shop>
`

func setup(t *testing.T) (*xmlsql.Schema, *xmlsql.Store) {
	t.Helper()
	s, err := xmlsql.ParseSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := xmlsql.ParseDocumentString(testDoc)
	if err != nil {
		t.Fatal(err)
	}
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	return s, store
}

func TestEndToEndEval(t *testing.T) {
	s, store := setup(t)
	res, err := xmlsql.Eval(s, store, "//Item/Name")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	if len(got) != 3 || got[0] != "ball" || got[1] != "iliad" || got[2] != "kite" {
		t.Errorf("got %v", got)
	}
}

func TestTranslationsAgree(t *testing.T) {
	s, store := setup(t)
	for _, query := range []string{"//Item/Name", "/Shop/Toys/Item/Name", "//Name", "//Item"} {
		q := xmlsql.MustParseQuery(query)
		naive, err := xmlsql.TranslateNaive(s, q)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := xmlsql.Translate(s, q)
		if err != nil {
			t.Fatal(err)
		}
		nres, err := xmlsql.Execute(store, naive)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := xmlsql.Execute(store, pruned.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !nres.MultisetEqual(pres) {
			t.Errorf("%s: translations disagree", query)
		}
	}
}

func TestPrunedIsSimpler(t *testing.T) {
	s, _ := setup(t)
	q := xmlsql.MustParseQuery("//Item/Name")
	naive, _ := xmlsql.TranslateNaive(s, q)
	pruned, _ := xmlsql.Translate(s, q)
	if pruned.Query.Shape().Joins >= naive.Shape().Joins {
		t.Errorf("pruned %v not simpler than naive %v", pruned.Query.Shape(), naive.Shape())
	}
	if len(pruned.Classes) == 0 {
		t.Error("pruning diagnostics empty")
	}
}

func TestRoundTripAPI(t *testing.T) {
	s, store := setup(t)
	docs, err := xmlsql.Reconstruct(s, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 1 {
		t.Fatalf("reconstructed %d documents", len(docs))
	}
	if err := xmlsql.CheckLossless(s, store); err != nil {
		t.Error(err)
	}
}

func TestEdgeMappingAPI(t *testing.T) {
	s, err := xmlsql.ParseSchema(testSchema)
	if err != nil {
		t.Fatal(err)
	}
	es, err := xmlsql.EdgeMapping(s)
	if err != nil {
		t.Fatal(err)
	}
	doc, _ := xmlsql.ParseDocumentString(testDoc)
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(es, store, doc); err != nil {
		t.Fatal(err)
	}
	if store.Table("Edge") == nil {
		t.Fatal("no Edge table")
	}
	res, err := xmlsql.Eval(es, store, "//Item/Name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 3 {
		t.Errorf("Edge eval returned %d rows", res.Len())
	}
}

func TestBuilderAPI(t *testing.T) {
	s, err := xmlsql.NewSchemaBuilder("mini").
		Node("r", "r").
		Root("r").
		Build()
	if err != nil {
		t.Fatalf("minimal schema: %v", err)
	}
	if s.RootNode().Label != "r" {
		t.Error("builder root wrong")
	}
}

func TestPathIDAPI(t *testing.T) {
	s, _ := setup(t)
	g, err := xmlsql.PathID(s, xmlsql.MustParseQuery("//Item"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Empty() || len(g.Accepts()) != 2 {
		t.Errorf("PathID accepts = %d, want 2", len(g.Accepts()))
	}
}

func TestEmptyQueryResult(t *testing.T) {
	s, store := setup(t)
	res, err := xmlsql.Eval(s, store, "/Shop/Nothing")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("expected no rows, got %d", res.Len())
	}
}

func TestSQLRendering(t *testing.T) {
	s, _ := setup(t)
	pruned, err := xmlsql.Translate(s, xmlsql.MustParseQuery("/Shop/Toys/Item/Name"))
	if err != nil {
		t.Fatal(err)
	}
	sql := pruned.Query.SQL()
	if !strings.Contains(sql, "pc = 1") {
		t.Errorf("expected pc = 1 selection:\n%s", sql)
	}
	if strings.Contains(sql, "Shop") {
		t.Errorf("pruned query should not join Shop:\n%s", sql)
	}
}
