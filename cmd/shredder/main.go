// Command shredder losslessly decomposes an XML document into relational
// tuples under an annotated XML-to-Relational mapping, optionally verifying
// the "lossless from XML" constraint by reconstructing the document.
//
// Usage:
//
//	shredder -schema mapping.dsl -in doc.xml [-dump] [-verify]
//	shredder -workload xmark -generate [-dump] [-verify]
package main

import (
	"flag"
	"fmt"
	"os"

	"xmlsql/internal/cli"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
)

func main() {
	schemaFile := flag.String("schema", "", "schema DSL file defining the mapping")
	workload := flag.String("workload", "", "built-in workload schema (xmark, xmarkfull, s1, s2, s3, adex; -edge suffix for Edge storage)")
	in := flag.String("in", "", "XML document to shred")
	generate := flag.Bool("generate", false, "generate a document for the chosen workload instead of reading one")
	dump := flag.Bool("dump", false, "dump the resulting relational tables")
	verify := flag.Bool("verify", false, "reconstruct the document and verify the lossless round trip")
	flag.Parse()

	s, err := cli.LoadSchema(*schemaFile, *workload)
	if err != nil {
		fail(err)
	}
	doc, err := cli.LoadDoc(*in, *workload, *generate)
	if err != nil {
		fail(err)
	}

	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		fail(err)
	}
	fmt.Printf("shredded %d elements into %d tuples across %d relations\n",
		doc.CountNodes(), results[0].Tuples, len(store.TableNames()))

	if *dump {
		fmt.Print(store.Dump())
	}
	if *verify {
		docs, err := shred.Reconstruct(s, store)
		if err != nil {
			fail(fmt.Errorf("reconstruction: %w", err))
		}
		if len(docs) != 1 || !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
			fail(fmt.Errorf("round trip mismatch: reconstructed document differs"))
		}
		if err := shred.CheckLossless(s, store); err != nil {
			fail(err)
		}
		fmt.Println("lossless round trip verified")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "shredder: %v\n", err)
	os.Exit(1)
}
