// Command benchrunner runs the full experiment suite (E1–E8 of DESIGN.md):
// for every worked example and claim in the paper it compares the baseline
// translation of [9] against the lossless-constraint-aware translation —
// generated SQL shape, verified result equality, and measured execution
// time — and prints the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	benchrunner [-scale N] [-details] [-ablations]
package main

import (
	"flag"
	"fmt"
	"os"

	"xmlsql/internal/bench"
)

func main() {
	scale := flag.Int("scale", 1, "document size multiplier")
	details := flag.Bool("details", false, "print per-query SQL details")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	scaling := flag.Bool("scaling", false, "also run the Q1 speedup-vs-size scaling series")
	flag.Parse()

	sc := bench.DefaultScale()
	sc.ItemsPerContinent *= *scale
	sc.AdsPerSection *= *scale
	sc.S1Groups *= *scale
	sc.S2Groups *= *scale

	cmps, err := bench.RunSuite(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Experiment suite: baseline [9] vs lossless-from-XML translation")
	fmt.Printf("(scale %d: %d items/continent, %d ads/section)\n\n", *scale, sc.ItemsPerContinent, sc.AdsPerSection)
	fmt.Print(bench.FormatTable(cmps))
	fmt.Println()
	fmt.Print(bench.Summary(cmps))

	var e8 []*bench.Comparison
	for _, c := range cmps {
		if c.Experiment == "E8" {
			e8 = append(e8, c)
		}
	}
	fmt.Printf("E8 subset (stands in for the [10] XMark+ADEX evaluation): %s", bench.Summary(e8))

	if *details {
		fmt.Println()
		fmt.Print(bench.FormatDetails(cmps))
	}
	if *ablations {
		fmt.Println()
		abl, err := bench.RunAblations(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: ablations: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(abl)
	}
	if *scaling {
		fmt.Println()
		pts, err := bench.ScalingSeries("//Item/InCategory/Category", []int{1, 2, 4, 8, 16})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(bench.FormatScaling("//Item/InCategory/Category", pts))
	}

	for _, c := range cmps {
		if !c.Verified {
			fmt.Fprintf(os.Stderr, "benchrunner: VERIFICATION FAILED for %s %s\n", c.Experiment, c.Query)
			os.Exit(1)
		}
	}
}
