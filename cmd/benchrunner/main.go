// Command benchrunner runs the full experiment suite (E1–E8 of DESIGN.md):
// for every worked example and claim in the paper it compares the baseline
// translation of [9] against the lossless-constraint-aware translation —
// generated SQL shape, verified result equality, and measured execution
// time — and prints the tables recorded in EXPERIMENTS.md.
//
// It also measures the serving fast path (plan cache hot/cold, parallel
// UNION ALL) and, with -json, writes the whole comparison table as one
// machine-readable JSON document so the perf trajectory can be tracked
// across PRs.
//
// Usage:
//
//	benchrunner [-scale N] [-backend mem|fakedb] [-details] [-ablations] [-serving=false] [-chaos=false] [-sharded] [-json FILE]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xmlsql/internal/bench"
)

// validateFlags rejects explicitly-set non-positive serving knobs with exit
// status 2, mirroring xml2sql and xmlserve: a zero or negative client count,
// window, or gate is always a mistake, never a request for "unlimited".
func validateFlags() error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		get := func() any { return flag.Lookup(f.Name).Value.(flag.Getter).Get() }
		switch f.Name {
		case "frontend-clients", "frontend-over-clients", "frontend-inflight":
			if v := get().(int); v <= 0 {
				err = fmt.Errorf("-%s must be positive, got %d", f.Name, v)
			}
		case "frontend-duration":
			if v := get().(time.Duration); v <= 0 {
				err = fmt.Errorf("-%s must be a positive duration, got %v", f.Name, v)
			}
		case "frontend-overload-max-p99x", "frontend-over-rate", "updates-min-audit-speedup", "recovery-min-relative", "sharded-min-speedup":
			if v := get().(float64); v <= 0 {
				err = fmt.Errorf("-%s must be positive, got %v", f.Name, v)
			}
		case "scale", "sharded-gate-shards":
			if v := get().(int); v <= 0 {
				err = fmt.Errorf("-%s must be positive, got %d", f.Name, v)
			}
		}
	})
	return err
}

func main() {
	scale := flag.Int("scale", 1, "document size multiplier")
	details := flag.Bool("details", false, "print per-query SQL details")
	ablations := flag.Bool("ablations", false, "also run the design-choice ablations")
	scaling := flag.Bool("scaling", false, "also run the Q1 speedup-vs-size scaling series")
	serving := flag.Bool("serving", true, "also measure the serving fast path (plan cache, parallel unions)")
	chaos := flag.Bool("chaos", true, "also run the resilience chaos suite (injected faults, retries, breaker, degradation)")
	audit := flag.Bool("audit", true, "also run the integrity sentinel suite (lossless-constraint audit, corruption detection, safe-mode degradation)")
	sharedWork := flag.Bool("sharedwork", true, "also run the shared-work suite (prefix factoring + subplan memo vs the parallel-union baseline)")
	sharedWorkGate := flag.Float64("sharedwork-max-regression", 2.0, "fail if factored execution is slower than the parallel baseline by more than this factor on any shared-work case")
	adaptive := flag.Bool("adaptive", true, "also run the adaptive-planning suite (cost-based knob selection vs fixed configurations)")
	adaptiveGate := flag.Float64("adaptive-max-vs-best", 1.1, "fail if adaptive execution exceeds the best fixed configuration by more than this factor on any shared-work case (headline cases are gated on speedup >= 1.0)")
	frontend := flag.Bool("frontend", true, "also run the serving front-end suite (closed-loop clients against live HTTP/line listeners, under-capacity and overload)")
	frontendClients := flag.Int("frontend-clients", 4, "closed-loop client count for the under-capacity front-end runs")
	frontendOverClients := flag.Int("frontend-over-clients", 16, "closed-loop client count for the overload front-end runs")
	frontendInFlight := flag.Int("frontend-inflight", 2, "in-flight admission bound of the overloaded front-end tenant")
	frontendOverRate := flag.Float64("frontend-over-rate", 200, "token-bucket queries/second of the overloaded front-end tenant (its capacity)")
	frontendDuration := flag.Duration("frontend-duration", 400*time.Millisecond, "measurement window per front-end run")
	frontendGate := flag.Float64("frontend-overload-max-p99x", 2.0, "fail if the overload run's accepted-query p99 exceeds this multiple of the matching under-capacity p99 (also fails on any shed at under-capacity load)")
	updates := flag.Bool("updates", true, "also run the transactional update suite (batch apply throughput, incremental-vs-full audit, post-write hot-query recovery)")
	updatesGate := flag.Float64("updates-min-audit-speedup", 5.0, "fail if the incremental audit is not at least this many times faster than a full audit after a write")
	recovery := flag.Bool("recovery", true, "also run the durability suite (write-ahead-logged vs volatile update throughput, cold recovery with verified replay)")
	recoveryGate := flag.Float64("recovery-min-relative", 0.5, "fail if durable (fsync-per-commit) update throughput falls below this fraction of volatile throughput")
	shardedSuite := flag.Bool("sharded", false, "also run the sharded scatter-gather suite (shard-count sweeps at scale=10/100 with differential verification and the mixed read/write serving comparison)")
	shardedGateShards := flag.Int("sharded-gate-shards", 4, "the shard count the sharded mixed-serving gate applies to")
	shardedGateSpeedup := flag.Float64("sharded-min-speedup", 1.5, "fail if the gated shard count's mixed-serving speedup over the single store falls below this at the largest measured scale")
	backendName := flag.String("backend", "mem", "where measured queries run: mem (in-memory engine) or fakedb (database/sql over the in-repo fake driver)")
	jsonPath := flag.String("json", "", "write the comparison table as JSON to this file (\"-\" for stdout)")
	flag.Parse()

	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(2)
	}

	sc := bench.DefaultScale()
	sc.ItemsPerContinent *= *scale
	sc.AdsPerSection *= *scale
	sc.S1Groups *= *scale
	sc.S2Groups *= *scale

	cmps, err := bench.RunSuiteOn(sc, *backendName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("Experiment suite: baseline [9] vs lossless-from-XML translation")
	fmt.Printf("(scale %d: %d items/continent, %d ads/section; backend %s)\n\n",
		*scale, sc.ItemsPerContinent, sc.AdsPerSection, *backendName)
	fmt.Print(bench.FormatTable(cmps))
	fmt.Println()
	fmt.Print(bench.Summary(cmps))

	var e8 []*bench.Comparison
	for _, c := range cmps {
		if c.Experiment == "E8" {
			e8 = append(e8, c)
		}
	}
	fmt.Printf("E8 subset (stands in for the [10] XMark+ADEX evaluation): %s", bench.Summary(e8))

	var srv []*bench.ServingComparison
	if *serving {
		srv, err = bench.RunServing(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: serving: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatServing(srv))
	}

	var chz []*bench.ChaosComparison
	if *chaos {
		chz, err = bench.RunChaos(1)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: chaos: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatChaos(chz))
		for _, c := range chz {
			if !c.Verified {
				fmt.Fprintf(os.Stderr, "benchrunner: CHAOS VERIFICATION FAILED for %s/%s\n", c.Scenario, c.Workload)
				os.Exit(1)
			}
		}
	}

	var adt []*bench.AuditComparison
	if *audit {
		adt, err = bench.RunAudit()
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: audit: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatAudit(adt))
		for _, c := range adt {
			if !c.Verified {
				fmt.Fprintf(os.Stderr, "benchrunner: AUDIT VERIFICATION FAILED for %s\n", c.Workload)
				os.Exit(1)
			}
		}
	}

	var sw []*bench.SharedWorkComparison
	if *sharedWork {
		sw, err = bench.RunSharedWork(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: sharedwork: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatSharedWork(sw))
		for _, c := range sw {
			if !c.Verified {
				fmt.Fprintf(os.Stderr, "benchrunner: SHARED-WORK VERIFICATION FAILED for %s %s\n", c.Workload, c.Query)
				os.Exit(1)
			}
			if c.FactoredNs > *sharedWorkGate*c.UnfactoredNs {
				fmt.Fprintf(os.Stderr, "benchrunner: SHARED-WORK REGRESSION for %s %s: factored %.0fns vs baseline %.0fns (> %.1fx)\n",
					c.Workload, c.Query, c.FactoredNs, c.UnfactoredNs, *sharedWorkGate)
				os.Exit(1)
			}
		}
	}

	var adp []*bench.AdaptiveComparison
	if *adaptive {
		adp, err = bench.RunAdaptive(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: adaptive: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatAdaptive(adp))
		if errs := bench.AdaptiveGate(adp, *adaptiveGate); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchrunner: ADAPTIVE GATE: %v\n", e)
			}
			os.Exit(1)
		}
	}

	var fe []*bench.FrontendComparison
	if *frontend {
		fe, err = bench.RunFrontend(bench.FrontendConfig{
			Duration:     *frontendDuration,
			UnderClients: *frontendClients,
			OverClients:  *frontendOverClients,
			OverInFlight: *frontendInFlight,
			OverRate:     *frontendOverRate,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: frontend: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatFrontend(fe))
		if errs := bench.FrontendGate(fe, *frontendGate); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchrunner: FRONTEND GATE: %v\n", e)
			}
			os.Exit(1)
		}
	}

	var upd []*bench.UpdateComparison
	if *updates {
		upd, err = bench.RunUpdates(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: updates: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatUpdates(upd))
		if errs := bench.UpdatesGate(upd, *updatesGate); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchrunner: UPDATES GATE: %v\n", e)
			}
			os.Exit(1)
		}
	}

	var rec []*bench.RecoveryComparison
	if *recovery {
		rec, err = bench.RunRecovery(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: recovery: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatRecovery(rec))
		if errs := bench.RecoveryGate(rec, *recoveryGate); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchrunner: RECOVERY GATE: %v\n", e)
			}
			os.Exit(1)
		}
	}

	var shr *bench.ShardedReport
	if *shardedSuite {
		shr, err = bench.RunSharded(bench.DefaultShardedConfig())
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: sharded: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatSharded(shr))
		if errs := bench.ShardedGate(shr, *shardedGateShards, *shardedGateSpeedup); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "benchrunner: SHARDED GATE: %v\n", e)
			}
			os.Exit(1)
		}
	}

	var scl *bench.ScalingSection
	if *scaling {
		const scalingQuery = "//Item/InCategory/Category"
		pts, err := bench.ScalingSeries(scalingQuery, []int{1, 2, 4, 8, 16})
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: scaling: %v\n", err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Print(bench.FormatScaling(scalingQuery, pts))
		scl = &bench.ScalingSection{Query: scalingQuery, Points: pts}
	}

	if *jsonPath != "" {
		report := bench.BuildReport("xmlsql", *scale, cmps, bench.Sections{
			Serving: srv, Chaos: chz, Audit: adt, SharedWork: sw, Adaptive: adp,
			Frontend: fe, Updates: upd, Recovery: rec, Scaling: scl, Sharded: shr,
		})
		out := os.Stdout
		if *jsonPath != "-" {
			f, err := os.Create(*jsonPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchrunner: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := report.WriteJSON(out); err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: writing json: %v\n", err)
			os.Exit(1)
		}
	}

	if *details {
		fmt.Println()
		fmt.Print(bench.FormatDetails(cmps))
	}
	if *ablations {
		fmt.Println()
		abl, err := bench.RunAblations(sc)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchrunner: ablations: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(abl)
	}
	for _, c := range cmps {
		if !c.Verified {
			fmt.Fprintf(os.Stderr, "benchrunner: VERIFICATION FAILED for %s %s\n", c.Experiment, c.Query)
			os.Exit(1)
		}
	}
}
