// Command xml2sql translates a simple path expression into SQL over an
// annotated XML-to-Relational mapping, printing both the baseline
// translation of [9] and the paper's lossless-constraint-aware translation
// side by side.
//
// Usage:
//
//	xml2sql -schema mapping.dsl -query '//Item/InCategory/Category'
//	xml2sql -workload xmark -query '//Item/InCategory/Category'
//	xml2sql -workload xmarkfull-edge -query '/Site//Item/InCategory/Category'
//	xml2sql -workload xmark -dialect sqlite -ddl
//	xml2sql -workload xmark -dialect postgres -ddl -load > setup.sql
//	xml2sql -workload s3 -query '//t4' -execute -timeout 5s -max-rows 1000000
//	xml2sql -workload xmark -stats
//	xml2sql -workload xmark -query '//Item/InCategory/Category' -explain -execute
//
// Built-in workloads: xmark, xmarkfull, s1, s2, s3, adex, plus an "-edge"
// suffix for the schema-oblivious Edge mapping of any of them.
//
// With -ddl and/or -load the command emits an executable SQL script instead
// of (or in addition to) a translation: -ddl prints the CREATE TABLE /
// CREATE INDEX statements for the mapping's shredded relations, and -load
// generates a workload document, shreds it, and prints the literal INSERT
// statements. Feed both to any engine speaking the chosen -dialect and the
// translated queries run there unchanged.
//
// -stats dumps the table statistics the adaptive planner collects over a
// generated instance as JSON; -explain prints the cost-based plan decision
// for the query (per-branch cardinality estimates, the chosen plan, and the
// execution knobs), and with -execute also the estimated vs actual rows.
//
// -update applies a JSON mutation batch to a generated workload instance and
// prints the planned DML, the batch's footprint, and the incremental audit
// verdict — e.g.
//
//	xml2sql -workload xmark -update \
//	  '[{"op":"insert","path":"//Item","xml":"<InCategory><Category>x</Category></InCategory>"}]'
//
// With -data-dir the -update path is durable: the instance lives in a
// write-ahead-logged data directory (first run shreds and checkpoints it,
// later runs recover snapshot + log), and the batch is fsynced before it is
// acknowledged — run the command twice and the second run replays the first
// run's batch. -fsync widens the group-commit window (default: fsync per
// commit).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/cli"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/integrity"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sharded"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
	"xmlsql/internal/translate"
	"xmlsql/internal/update"
	"xmlsql/internal/wal"
)

func main() {
	schemaFile := flag.String("schema", "", "schema DSL file defining the mapping")
	workload := flag.String("workload", "", "built-in workload schema (xmark, xmarkfull, s1, s2, s3, adex; add -edge for Edge storage)")
	query := flag.String("query", "", "simple path expression, e.g. //Item/InCategory/Category")
	showCP := flag.Bool("cross-product", false, "also print the PathId cross-product graph")
	showClasses := flag.Bool("classes", false, "also print the pruned PathSet's combinability classes")
	execute := flag.Bool("execute", false, "generate a workload document, execute both translations, verify, and time them (built-in workloads only)")
	dialectName := flag.String("dialect", "default", "SQL dialect for all emitted text (default, sqlite, postgres)")
	emitDDL := flag.Bool("ddl", false, "print the CREATE TABLE / CREATE INDEX script for the mapping's shredded relations")
	emitLoad := flag.Bool("load", false, "generate a workload document, shred it, and print the INSERT script (built-in workloads only)")
	timeout := flag.Duration("timeout", 0, "deadline for each -execute run (e.g. 5s); 0 means none")
	maxRows := flag.Int("max-rows", 0, "abort -execute runs that materialize more than this many rows; 0 means unlimited")
	maxCTEIter := flag.Int("max-cte-iterations", 0, "abort -execute runs whose recursive CTE exceeds this many rounds; 0 means the engine default")
	factor := flag.Bool("factor-prefixes", false, "apply the shared-work rewrite to both translations: collapse literal-only branch differences into IN and hoist common join prefixes into a WITH CTE")
	audit := flag.Bool("audit", false, "generate a workload document, shred it, and audit the instance against the lossless-from-XML constraint (built-in workloads only)")
	corrupt := flag.Bool("corrupt", false, "with -audit: inject an orphan tuple first, demonstrating detection and safe-mode degradation")
	showStats := flag.Bool("stats", false, "generate a workload document, shred it, and dump the collected table statistics as JSON (built-in workloads only)")
	explain := flag.Bool("explain", false, "print the adaptive planner's cost-based decision for the query: candidate estimates, per-branch cardinalities, chosen plan and knobs (built-in workloads only; with -execute also estimated vs actual rows)")
	updateJSON := flag.String("update", "", `apply a JSON mutation batch ('[{"op":"insert","path":"//Item","xml":"<...>"}]'; ops: insert, delete, replace) to a generated workload instance, printing the planned DML and the incremental audit verdict (built-in workloads only)`)
	dataDir := flag.String("data-dir", "", "durable data directory for -update: recover the instance from its write-ahead log (first run initializes it) and fsync the batch before acknowledging")
	fsyncEvery := flag.Duration("fsync", 0, "group-commit window for the -data-dir log; unset or 0 fsyncs every commit")
	shards := flag.Int("shards", 1, "with -execute: document-partition the instance across this many shard stores and run both translations through the scatter-gather composite, verifying against a single store")
	scale := flag.Int("scale", 1, "with -execute: generate this many workload documents (scale multiplies document count)")
	flag.Parse()

	if err := validateFlags(*timeout, *maxRows, *maxCTEIter, *dataDir, *fsyncEvery); err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
		os.Exit(2)
	}
	if (*shards > 1 || *scale > 1) && !*execute {
		fmt.Fprintln(os.Stderr, "xml2sql: -shards and -scale only apply to the -execute path")
		os.Exit(2)
	}
	if *dataDir != "" && *updateJSON == "" {
		fmt.Fprintln(os.Stderr, "xml2sql: -data-dir only applies to the -update path")
		os.Exit(2)
	}
	if *fsyncEvery != 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "xml2sql: -fsync requires -data-dir")
		os.Exit(2)
	}
	if *explain && *query == "" {
		fmt.Fprintln(os.Stderr, "xml2sql: -explain requires a -query to explain")
		flag.Usage()
		os.Exit(2)
	}
	if *query == "" && !*emitDDL && !*emitLoad && !*audit && !*showStats && *updateJSON == "" {
		fmt.Fprintln(os.Stderr, "xml2sql: -query is required (unless emitting scripts with -ddl/-load)")
		flag.Usage()
		os.Exit(2)
	}
	dialect, err := sqlast.DialectByName(*dialectName)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
		os.Exit(2)
	}
	s, err := cli.LoadSchema(*schemaFile, *workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
		os.Exit(1)
	}
	if *emitDDL {
		ddl, err := backend.DDL(s, dialect)
		if err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: ddl: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("-- shredded relations of schema %s (%s dialect)\n%s", s.Name, dialect.Name(), ddl)
	}
	if *emitLoad {
		if err := emitLoadScript(s, *workload, dialect); err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: load: %v\n", err)
			os.Exit(1)
		}
	}
	if *audit {
		if err := runAudit(s, *workload, *corrupt); err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: audit: %v\n", err)
			os.Exit(1)
		}
	}
	if *showStats {
		if err := runStats(s, *workload); err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: stats: %v\n", err)
			os.Exit(1)
		}
	}
	if *updateJSON != "" {
		if err := runUpdate(s, *workload, *updateJSON, dialect, *dataDir, *fsyncEvery); err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: update: %v\n", err)
			os.Exit(1)
		}
	}
	if *query == "" {
		return
	}

	q, err := pathexpr.Parse(*query)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
		os.Exit(1)
	}
	g, err := pathid.Build(s, q)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
		os.Exit(1)
	}
	if *showCP {
		fmt.Println("-- cross-product schema (PathId stage):")
		fmt.Print(g.String())
		fmt.Println()
	}

	naive, err := translate.Naive(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: baseline translation: %v\n", err)
		os.Exit(1)
	}
	pruned, err := core.Translate(g)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xml2sql: lossless translation: %v\n", err)
		os.Exit(1)
	}
	// The explain path wants the unfactored candidates: the cost-based
	// chooser applies (or rejects) the shared-work rewrite itself.
	origNaive := naive
	var origPruned *sqlast.Query
	if !pruned.Fallback {
		origPruned = pruned.Query
	}
	factorNote := ""
	if *factor {
		var changedN, changedP bool
		naive, changedN = translate.FactorSharedPrefixes(naive, s)
		pruned.Query, changedP = translate.FactorSharedPrefixes(pruned.Query, s)
		factorNote = fmt.Sprintf(" [shared-work rewrite: baseline %s, lossless %s]",
			factoredLabel(changedN), factoredLabel(changedP))
	}

	fmt.Printf("-- query: %s over schema %s (%s)%s\n\n", q, s.Name, s.Classify(), factorNote)
	fmt.Printf("-- baseline translation [9] (%s):\n%s\n\n", naive.Shape(), naive.SQLFor(dialect))
	label := "exploiting the lossless-from-XML constraint"
	if pruned.Fallback {
		label = "pruning not applicable; baseline retained"
	}
	fmt.Printf("-- %s (%s):\n%s\n", label, pruned.Query.Shape(), pruned.Query.SQLFor(dialect))
	if *explain {
		opts := engine.Options{MaxRows: *maxRows, MaxCTEIterations: *maxCTEIter}
		if err := runExplain(s, *workload, origNaive, origPruned, *execute, *timeout, opts); err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: explain: %v\n", err)
			os.Exit(1)
		}
	}
	if *execute {
		opts := engine.Options{MaxRows: *maxRows, MaxCTEIterations: *maxCTEIter}
		if *shards > 1 || *scale > 1 {
			err = runSharded(s, *workload, naive, pruned.Query, *timeout, opts, *shards, *scale)
		} else {
			err = runBoth(s, *workload, naive, pruned.Query, *timeout, opts)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "xml2sql: %v\n", err)
			os.Exit(1)
		}
	}
	if *showClasses {
		fmt.Println("\n-- pruned PathSet classes:")
		for _, c := range pruned.Classes {
			fmt.Printf("--   %s\n", c)
		}
	}
}

func factoredLabel(changed bool) string {
	if changed {
		return "rewritten"
	}
	return "unchanged"
}

// validateFlags rejects explicitly-set flag values that make no sense, with
// a one-line error and usage exit. The zero defaults mean "off", so only
// flags the user actually passed are checked.
func validateFlags(timeout time.Duration, maxRows, maxCTEIter int, dataDir string, fsyncEvery time.Duration) error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "timeout":
			if timeout <= 0 {
				err = fmt.Errorf("-timeout must be a positive duration, got %v", timeout)
			}
		case "max-rows":
			if maxRows < 0 {
				err = fmt.Errorf("-max-rows must be >= 0, got %d", maxRows)
			}
		case "max-cte-iterations":
			if maxCTEIter < 0 {
				err = fmt.Errorf("-max-cte-iterations must be >= 0, got %d", maxCTEIter)
			}
		case "data-dir":
			if dataDir == "" {
				err = fmt.Errorf("-data-dir must not be empty")
			} else if mkErr := os.MkdirAll(dataDir, 0o755); mkErr != nil {
				err = fmt.Errorf("-data-dir %s is not creatable: %v", dataDir, mkErr)
			}
		case "fsync":
			if fsyncEvery <= 0 {
				err = fmt.Errorf("-fsync must be a positive duration (omit it for fsync-per-commit), got %v", fsyncEvery)
			}
		case "shards":
			if v := flag.Lookup("shards").Value.(flag.Getter).Get().(int); v < 1 {
				err = fmt.Errorf("-shards must be at least 1, got %d", v)
			}
		case "scale":
			if v := flag.Lookup("scale").Value.(flag.Getter).Get().(int); v < 1 {
				err = fmt.Errorf("-scale must be at least 1, got %d", v)
			}
		}
	})
	return err
}

// runAudit shreds a generated workload document and audits the instance
// against the lossless-from-XML constraint (P1–P3 of §3.2), printing the
// violation report and the trust-state transition a planner would take. With
// corrupt it first injects an orphan tuple, so the command demonstrates the
// full detect-and-degrade lifecycle; in that mode a clean audit is the
// failure.
func runAudit(s *schema.Schema, workload string, corrupt bool) error {
	if workload == "" {
		return fmt.Errorf("-audit requires a built-in -workload to generate an instance for")
	}
	doc, err := cli.GenerateDoc(workload)
	if err != nil {
		return err
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		return err
	}
	if corrupt {
		rel := orphanTarget(s)
		if err := shred.InjectOrphan(s, store, rel, 999999999); err != nil {
			return err
		}
		fmt.Printf("-- injected an orphan tuple into %s\n", rel)
	}
	rep, err := integrity.Audit(context.Background(), integrity.StoreSource(store), s)
	if err != nil {
		return err
	}
	fmt.Printf("-- audit of a generated %s instance: %d relations, %d tuples checked in %v\n",
		workload, rep.Relations, rep.Tuples, rep.Elapsed.Round(time.Microsecond))
	if rep.Clean() {
		fmt.Printf("-- constraint holds: trust %s -> %s; pruned translations are sound on this instance\n",
			integrity.TrustUnverified, integrity.TrustVerified)
		if corrupt {
			return fmt.Errorf("corrupted instance unexpectedly audited clean")
		}
		return nil
	}
	for _, v := range rep.Violations {
		fmt.Printf("-- %s\n", v)
	}
	if rep.Truncated {
		fmt.Printf("-- ... %d further violation(s) truncated\n", rep.Total-len(rep.Violations))
	}
	fmt.Printf("-- %d violation(s): trust %s -> %s; a planner now serves baseline (safe-mode) translations\n",
		rep.Total, integrity.TrustUnverified, integrity.TrustViolated)
	if !corrupt {
		return fmt.Errorf("instance violates the lossless-from-XML constraint")
	}
	return nil
}

// orphanTarget picks a deterministic non-root relation to corrupt.
func orphanTarget(s *schema.Schema) string {
	rootRel := s.RootNode().Relation
	defs, err := s.DeriveRelations()
	if err == nil {
		names := make([]string, 0, len(defs))
		for name := range defs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if name != rootRel {
				return name
			}
		}
	}
	return rootRel
}

// emitLoadScript shreds a generated workload document and prints its rows as
// literal INSERT statements in the chosen dialect.
func emitLoadScript(s *schema.Schema, workload string, d *sqlast.Dialect) error {
	if workload == "" {
		return fmt.Errorf("-load requires a built-in -workload to generate a document for")
	}
	doc, err := cli.GenerateDoc(workload)
	if err != nil {
		return err
	}
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		return err
	}
	fmt.Printf("-- %d tuples from a generated %s document (%s dialect)\n%s",
		results[0].Tuples, workload, d.Name(), backend.LoadScript(store, d))
	return nil
}

// runStats shreds a generated workload document and dumps the statistics
// snapshot the adaptive planner would plan against as JSON.
func runStats(s *schema.Schema, workload string) error {
	if workload == "" {
		return fmt.Errorf("-stats requires a built-in -workload to generate an instance for")
	}
	doc, err := cli.GenerateDoc(workload)
	if err != nil {
		return err
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		return err
	}
	out, err := json.MarshalIndent(stats.CollectStore(store), "", "  ")
	if err != nil {
		return err
	}
	fmt.Printf("%s\n", out)
	return nil
}

// runExplain shreds a generated workload document, collects statistics, and
// prints the adaptive planner's cost-based decision over the query's
// candidate translations: candidate estimates, the margin verdict, the
// chosen knob vector, and per-branch cardinalities. With execute it also
// runs the chosen plan under the engine's Auto mode and reports estimated vs
// actual rows and the resolved execution knobs.
func runExplain(s *schema.Schema, workload string, naive, pruned *sqlast.Query, execute bool, timeout time.Duration, opts engine.Options) error {
	if workload == "" {
		return fmt.Errorf("-explain requires a built-in -workload to collect statistics over")
	}
	doc, err := cli.GenerateDoc(workload)
	if err != nil {
		return err
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		return err
	}
	snap := stats.CollectStore(store)
	dec := translate.ChoosePlan(naive, pruned, s, stats.NewEstimator(snap))

	fmt.Printf("\n-- adaptive plan decision (statistics over a generated %s instance, %d rows, fingerprint %s):\n",
		workload, store.TotalRows(), snap.Fingerprint())
	fmt.Printf("--   baseline: %s\n", dec.BaselineEst.Summary())
	switch {
	case dec.PrunedEst == nil:
		fmt.Printf("--   pruned:   no candidate (translation fell back to the baseline)\n")
	case dec.UsePruned:
		fmt.Printf("--   pruned:   %s (cost ratio %.3f < margin %.2f: pruning pays)\n",
			dec.PrunedEst.Summary(), dec.PrunedEst.Cost/dec.BaselineEst.Cost, stats.PlanMargin)
	default:
		fmt.Printf("--   pruned:   %s (cost ratio %.3f >= margin %.2f: near-tie, measured-safe baseline retained)\n",
			dec.PrunedEst.Summary(), dec.PrunedEst.Cost/dec.BaselineEst.Cost, stats.PlanMargin)
	}
	fmt.Printf("--   chosen: %s; execution knobs: parallel %s, memo %s\n",
		dec.KnobKey(), onOff(dec.ExpectParallel()), onOff(dec.ExpectMemo()))
	for _, c := range dec.ChosenEst.CTEs {
		extra := ""
		if c.Recursive {
			extra = fmt.Sprintf(" (recursive, ~%d rounds)", c.Rounds)
		}
		fmt.Printf("--   cte %s: ~%.0f rows, cost ~%.0f%s\n", c.Name, c.Rows, c.Cost, extra)
	}
	for _, b := range dec.ChosenEst.Branches {
		fmt.Printf("--   branch %d: ~%.0f rows, cost ~%.0f\n", b.Index, b.Rows, b.Cost)
		for _, st := range b.Steps {
			how := "scan+hash"
			if st.Index {
				how = "index probe"
			}
			fmt.Printf("--     %s(%s): in ~%.0f -> frame ~%.0f rows [%s]\n",
				st.Alias, st.Source, st.InRows, st.Rows, how)
		}
	}
	if !execute {
		return nil
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	opts.Auto = true
	opts.Estimate = dec.ChosenEst
	start := time.Now()
	res, st, err := engine.ExecuteCtxStats(ctx, store, dec.Query, opts)
	if err != nil {
		return fmt.Errorf("adaptive execution: %w", err)
	}
	errPct := 0.0
	if res.Len() > 0 {
		errPct = 100 * (dec.ChosenEst.Rows - float64(res.Len())) / float64(res.Len())
	}
	fmt.Printf("--   executed in %v: estimated ~%.0f rows, actual %d rows (%+.1f%%); resolved parallel %s, memo %s\n",
		time.Since(start).Round(time.Microsecond), dec.ChosenEst.Rows, res.Len(), errPct,
		onOff(st.ParallelEnabled), onOff(st.MemoEnabled))
	return nil
}

func onOff(v bool) string {
	if v {
		return "on"
	}
	return "off"
}

// runBoth shreds a generated document and executes both translations under
// the requested timeout and resource guards, verifying multiset equality and
// printing timings.
func runBoth(s *schema.Schema, workload string, naive, pruned *sqlast.Query, timeout time.Duration, opts engine.Options) error {
	if workload == "" {
		return fmt.Errorf("-execute requires a built-in -workload")
	}
	doc, err := cli.GenerateDoc(workload)
	if err != nil {
		return err
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	time1 := time.Now()
	nres, err := engine.ExecuteCtx(ctx, store, naive, opts)
	if err != nil {
		return fmt.Errorf("baseline execution: %w", err)
	}
	naiveDur := time.Since(time1)
	time2 := time.Now()
	pres, err := engine.ExecuteCtx(ctx, store, pruned, opts)
	if err != nil {
		return fmt.Errorf("pruned execution: %w", err)
	}
	prunedDur := time.Since(time2)
	if !nres.MultisetEqual(pres) {
		return fmt.Errorf("translations returned different results")
	}
	fmt.Printf("\n-- executed on a generated %s document (%d tuples): %d rows\n",
		workload, store.TotalRows(), pres.Len())
	fmt.Printf("-- baseline %v, pruned %v (%.2fx); results verified equal\n",
		naiveDur, prunedDur, float64(naiveDur)/float64(prunedDur))
	return nil
}

// runSharded is the sharded/scaled variant of runBoth: it generates scale
// documents, loads them once into a single store and once into an N-shard
// scatter-gather composite, executes both translations on the composite, and
// verifies each against the single store — the CLI face of the sharded
// differential. Per-shard row counts expose the partition skew.
func runSharded(s *schema.Schema, workload string, naive, pruned *sqlast.Query, timeout time.Duration, opts engine.Options, shards, scale int) error {
	if workload == "" {
		return fmt.Errorf("-execute requires a built-in -workload")
	}
	docs, err := cli.GenerateDocs(workload, scale)
	if err != nil {
		return err
	}
	single := backend.NewMem()
	single.SetEngineOptions(opts)
	if _, err := single.Load(s, docs...); err != nil {
		return err
	}
	comp, err := sharded.NewMem(shards, sharded.Options{})
	if err != nil {
		return err
	}
	comp.SetEngineOptions(opts)
	if err := comp.EnsureSchema(s); err != nil {
		return err
	}
	if _, err := comp.Load(s, docs...); err != nil {
		return err
	}
	ctx := context.Background()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	run := func(label string, q *sqlast.Query) (time.Duration, error) {
		ref, err := single.Execute(ctx, q)
		if err != nil {
			return 0, fmt.Errorf("%s single-store execution: %w", label, err)
		}
		start := time.Now()
		got, err := comp.Execute(ctx, q)
		if err != nil {
			return 0, fmt.Errorf("%s sharded execution: %w", label, err)
		}
		dur := time.Since(start)
		if !ref.MultisetEqual(got) {
			return 0, fmt.Errorf("%s: sharded result diverges from the single store", label)
		}
		return dur, nil
	}
	naiveDur, err := run("baseline", naive)
	if err != nil {
		return err
	}
	prunedDur, err := run("pruned", pruned)
	if err != nil {
		return err
	}
	m, err := comp.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Printf("\n-- executed on %d generated %s document(s) across %d shard(s); both translations verified against a single store\n",
		scale, workload, shards)
	fmt.Printf("-- sharded baseline %v, sharded pruned %v (%.2fx)\n",
		naiveDur, prunedDur, float64(naiveDur)/float64(prunedDur))
	fmt.Printf("-- per-shard docs %v, rows %v\n", m.DocsPerShard, m.RowsPerShard)
	return nil
}

// cliMutation is the -update JSON wire shape (ops spelled out).
type cliMutation struct {
	Op   string `json:"op"`
	Path string `json:"path"`
	XML  string `json:"xml,omitempty"`
}

// runUpdate applies the JSON mutation batch transactionally over a workload
// instance and prints the planned DML plus the incremental and full audit
// verdicts — the command-line face of the update path. Without dataDir the
// instance is generated in memory and discarded; with dataDir it is
// recovered from (and durably committed to) a write-ahead-logged directory.
func runUpdate(s *schema.Schema, workload, mutsJSON string, dialect *sqlast.Dialect, dataDir string, fsyncEvery time.Duration) error {
	if workload == "" {
		return fmt.Errorf("-update requires a built-in -workload to generate an instance for")
	}
	var muts []cliMutation
	if err := json.Unmarshal([]byte(mutsJSON), &muts); err != nil {
		return fmt.Errorf("parsing -update JSON: %w", err)
	}
	if len(muts) == 0 {
		return fmt.Errorf("-update batch is empty")
	}
	var batch update.Batch
	for i, m := range muts {
		var op update.Op
		switch m.Op {
		case "insert":
			op = update.OpInsert
		case "delete":
			op = update.OpDelete
		case "replace":
			op = update.OpReplace
		default:
			return fmt.Errorf("mutation %d: unknown op %q (want insert, delete, or replace)", i, m.Op)
		}
		batch.Muts = append(batch.Muts, update.Mutation{Op: op, Path: m.Path, XML: m.XML})
	}

	var store *relational.Store
	var applier *update.Applier
	var mgr *wal.Manager
	if dataDir == "" {
		doc, err := cli.GenerateDoc(workload)
		if err != nil {
			return err
		}
		store = relational.NewStore()
		if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
			return err
		}
		if applier, err = update.ForStore(s, store, update.Options{}); err != nil {
			return err
		}
	} else {
		var info *wal.RecoveryInfo
		var err error
		mgr, info, err = wal.Open(dataDir, wal.Options{SyncEvery: fsyncEvery})
		if err != nil {
			return err
		}
		defer mgr.Close()
		store = mgr.Store()
		if !info.SnapshotLoaded {
			doc, err := cli.GenerateDoc(workload)
			if err != nil {
				return err
			}
			if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
				return err
			}
			if err := mgr.Checkpoint(); err != nil {
				return err
			}
			fmt.Printf("-- initialized %s: shredded a generated %s instance and checkpointed\n", dataDir, workload)
		} else {
			fmt.Printf("-- recovered %s: snapshot lsn %d, %d batch(es) replayed in %v, truncated_tail=%v\n",
				dataDir, info.SnapshotLSN, info.ReplayedBatches,
				info.Elapsed.Round(time.Microsecond), info.TruncatedTail)
		}
		mem := backend.NewMemOn(store)
		mem.SetCommitLog(mgr)
		if applier, err = update.New(s, integrity.StoreSource(store), integrity.StoreProbe(store), mem, update.Options{}); err != nil {
			return err
		}
	}

	res, err := applier.Apply(context.Background(), batch)
	if err != nil {
		var ue *update.Error
		if errors.As(err, &ue) {
			fmt.Printf("-- batch rejected (%s) at mutation %d (%s); nothing was applied\n", ue.Kind, ue.Index, ue.Path)
			if ue.Report != nil {
				for _, v := range ue.Report.Violations {
					fmt.Printf("--   %s\n", v)
				}
			}
		}
		return err
	}
	instance := fmt.Sprintf("a generated %s instance", workload)
	if dataDir != "" {
		instance = fmt.Sprintf("the durable %s instance in %s", workload, dataDir)
	}
	fmt.Printf("-- applied %d mutation(s) as %d DML statement(s) over %s\n",
		len(batch.Muts), res.Stmts, instance)
	for _, stmt := range res.Statements {
		fmt.Printf("%s;\n", stmt.SQLFor(dialect))
	}
	fmt.Printf("-- touched: %v (%d written, %d deleted tuples)\n",
		res.Touched.Relations(), len(res.Touched.Written), len(res.Touched.Deleted))
	fmt.Printf("-- incremental audit of the touched neighborhood: clean=%v (%d tuples probed in %v)\n",
		res.Audit.Clean(), res.Audit.Tuples, res.Audit.Elapsed.Round(time.Microsecond))
	if res.Preexisting != nil {
		fmt.Printf("-- note: %d violation(s) predate the batch and were not introduced by it\n", res.Preexisting.Total)
	}
	full, err := integrity.Audit(context.Background(), integrity.StoreSource(store), s)
	if err != nil {
		return err
	}
	fmt.Printf("-- full audit for comparison: clean=%v (%d tuples in %v)\n",
		full.Clean(), full.Tuples, full.Elapsed.Round(time.Microsecond))
	if mgr != nil {
		st := mgr.Stats()
		fmt.Printf("-- durably committed: %d record(s), %d log byte(s), last seq %d, %d snapshot(s)\n",
			st.Records, st.Bytes, st.LastSeq, st.Snapshots)
	}
	return nil
}
