// Command xmlserve is the network serving front end: it hosts one or more
// tenant mappings — each a (schema, backend) pair with its own plan cache,
// statistics, and integrity trust state — behind an HTTP/JSON API and an
// optional newline-delimited line protocol, with layered admission control
// (connection limit → per-tenant rate limit → bounded in-flight semaphore →
// per-query timeout) shedding load with typed retry-after errors before the
// engine saturates.
//
// Usage:
//
//	xmlserve -addr 127.0.0.1:8080 -tenants auctions=xmark:mem
//	xmlserve -addr :8080 -line-addr :8081 \
//	    -tenants auctions=xmark:mem,parts=s3:fakedb \
//	    -rate 500 -burst 100 -max-inflight 16 -max-conns 512 -timeout 5s
//
// Each tenant is "name=workload[:backend]" where workload is a built-in
// (xmark, xmarkfull, xmarkauctions, s1, s2, s3, adex, with an optional
// "-edge" suffix) and backend is mem (default) or fakedb (the in-repo
// database/sql driver; wrapped with the resilient retry/breaker layer
// unless -resilient=false). -scale N generates N default-sized workload
// documents per tenant (shredded and loaded at startup); -shards N
// document-partitions each mem tenant across N stores and serves it through
// the scatter-gather composite.
//
// Endpoints: GET/POST /query (?tenant=&q= or JSON {"tenant","query"}),
// GET/POST /explain, POST /audit?tenant=, GET /healthz, GET /stats.
// On SIGINT/SIGTERM the server drains: in-flight queries finish (bounded by
// -drain-timeout), new work is refused with 503 + Retry-After.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/cli"
	"xmlsql/internal/resilient"
	"xmlsql/internal/server"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
	lineAddr := flag.String("line-addr", "", "line-protocol listen address (empty = disabled)")
	tenants := flag.String("tenants", "", "comma-separated tenant specs: name=workload[:backend], backend mem (default) or fakedb")
	maxConns := flag.Int("max-conns", server.DefaultMaxConns, "max concurrent connections across both listeners")
	rate := flag.Float64("rate", 0, "per-tenant sustained queries/second (token-bucket refill); 0 means unlimited")
	burst := flag.Int("burst", 0, "per-tenant token-bucket capacity; 0 derives one second of refill")
	maxInFlight := flag.Int("max-inflight", 0, "per-tenant concurrently executing query bound; 0 means 2x GOMAXPROCS")
	queueTimeout := flag.Duration("queue-timeout", 0, "how long an over-capacity request may wait for a slot before shedding; 0 sheds immediately")
	timeout := flag.Duration("timeout", 10*time.Second, "per-query execution deadline")
	drainTimeout := flag.Duration("drain-timeout", server.DefaultDrainTimeout, "graceful-shutdown bound for in-flight queries")
	cacheSize := flag.Int("cache-size", 0, "per-tenant plan cache entries; 0 means the plancache default")
	adaptive := flag.Bool("adaptive", false, "enable cost-based adaptive planning per tenant")
	useResilient := flag.Bool("resilient", true, "wrap database-backed tenants with the retry/circuit-breaker layer")
	logRequests := flag.Bool("log-requests", false, "log every served query and shed event")
	dataDir := flag.String("data-dir", "", "root directory for durable tenants: each tenant recovers from (and write-ahead logs to) <data-dir>/<name>; mem backends only")
	fsyncEvery := flag.Duration("fsync", 0, "group-commit window for durable tenants' logs; unset or 0 fsyncs every commit")
	shards := flag.Int("shards", 1, "document-partition each mem tenant across this many shard stores (scatter-gather execution); 1 means a single store")
	scale := flag.Int("scale", 1, "generate this many workload documents per tenant (the scale knob multiplies document count)")
	flag.Parse()

	if err := validateFlags(); err != nil {
		fmt.Fprintf(os.Stderr, "xmlserve: %v\n", err)
		os.Exit(2)
	}
	if *fsyncEvery != 0 && *dataDir == "" {
		fmt.Fprintln(os.Stderr, "xmlserve: -fsync requires -data-dir")
		os.Exit(2)
	}
	if *tenants == "" {
		fmt.Fprintln(os.Stderr, "xmlserve: -tenants is required (e.g. -tenants auctions=xmark:mem)")
		flag.Usage()
		os.Exit(2)
	}
	specs, err := server.ParseTenantSpecs(*tenants)
	if err != nil {
		fmt.Fprintf(os.Stderr, "xmlserve: -tenants: %v\n", err)
		os.Exit(2)
	}

	srv := server.New(server.Config{
		Addr:     *addr,
		LineAddr: *lineAddr,
		Limits: server.Limits{
			RatePerSec:   *rate,
			Burst:        *burst,
			MaxInFlight:  *maxInFlight,
			QueueTimeout: *queueTimeout,
		},
		MaxConns:     *maxConns,
		DrainTimeout: *drainTimeout,
		LogRequests:  *logRequests,
	})

	for _, spec := range specs {
		ten, err := addTenant(srv, spec, tenantOptions{
			timeout: *timeout, cacheSize: *cacheSize, adaptive: *adaptive,
			useResilient: *useResilient, dataDir: *dataDir, fsyncEvery: *fsyncEvery,
			shards: *shards, scale: *scale,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "xmlserve: tenant %s: %v\n", spec.Name, err)
			os.Exit(1)
		}
		backendDesc := spec.Backend
		if *shards > 1 {
			backendDesc = fmt.Sprintf("%s x%d shards", spec.Backend, *shards)
		}
		fmt.Printf("xmlserve: tenant %s ready (workload %s, backend %s, %d doc(s))\n", spec.Name, spec.Workload, backendDesc, *scale)
		if ri := ten.RecoveryInfo(); ri != nil {
			fmt.Printf("xmlserve: tenant %s durable in %s: recovery %s (snapshot lsn %d, %d batch(es) replayed in %v, truncated_tail=%v)\n",
				spec.Name, *dataDir, ten.RecoveryState(), ri.SnapshotLSN,
				ri.ReplayedBatches, ri.Elapsed.Round(time.Microsecond), ri.TruncatedTail)
		}
	}

	if err := srv.Start(); err != nil {
		fmt.Fprintf(os.Stderr, "xmlserve: %v\n", err)
		os.Exit(1)
	}
	// The listen lines are a contract: tests (and scripts) pass port 0 and
	// scrape the resolved addresses from stdout.
	if a := srv.HTTPAddr(); a != "" {
		fmt.Printf("xmlserve: http listening on %s\n", a)
	}
	if a := srv.LineAddr(); a != "" {
		fmt.Printf("xmlserve: line listening on %s\n", a)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	sig := <-stop
	fmt.Printf("xmlserve: %v received, draining (timeout %v)\n", sig, *drainTimeout)
	if err := srv.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "xmlserve: drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("xmlserve: drained, bye")
}

// tenantOptions carries the per-server flags addTenant applies to every
// tenant spec.
type tenantOptions struct {
	timeout      time.Duration
	cacheSize    int
	adaptive     bool
	useResilient bool
	dataDir      string
	fsyncEvery   time.Duration
	shards       int
	scale        int
}

// addTenant materializes one tenant spec: built-in schema, scale generated
// default-sized documents, and a loaded mem or fakedb backend (the latter
// wrapped with the resilient layer when enabled). With dataDir the tenant is
// durable: its store recovers from <dataDir>/<name> (first boot shreds the
// generated documents and checkpoints) and commits are write-ahead logged —
// mem backends only, since a real database is its own durability domain.
// With shards > 1 a mem tenant is document-partitioned across that many
// stores and served through the scatter-gather composite (per-shard logs
// under <dataDir>/<name>/shard-<k> when durable).
func addTenant(srv *server.Server, spec server.TenantSpec, opt tenantOptions) (*server.Tenant, error) {
	s, err := cli.BuiltinSchema(spec.Workload)
	if err != nil {
		return nil, err
	}
	pc := xmlsql.PlannerConfig{Timeout: opt.timeout, CacheSize: opt.cacheSize}
	pc.Translate.Adaptive = opt.adaptive
	if opt.shards > 1 && spec.Backend != "" && spec.Backend != "mem" {
		return nil, fmt.Errorf("-shards requires the mem backend, got %q", spec.Backend)
	}
	loadBackend := func(b xmlsql.Backend) error {
		docs, err := cli.GenerateDocs(spec.Workload, opt.scale)
		if err != nil {
			return err
		}
		_, err = b.Load(s, docs...)
		return err
	}
	if opt.dataDir != "" {
		if spec.Backend != "" && spec.Backend != "mem" {
			return nil, fmt.Errorf("-data-dir requires the mem backend, got %q (a database backend owns its own durability)", spec.Backend)
		}
		return srv.AddTenant(server.TenantConfig{
			Name:        spec.Name,
			Schema:      s,
			Planner:     pc,
			DataDir:     filepath.Join(opt.dataDir, spec.Name),
			WAL:         wal.Options{SyncEvery: opt.fsyncEvery},
			Shards:      opt.shards,
			LoadBackend: loadBackend,
		})
	}
	if opt.shards > 1 {
		return srv.AddTenant(server.TenantConfig{
			Name:        spec.Name,
			Schema:      s,
			Planner:     pc,
			Shards:      opt.shards,
			LoadBackend: loadBackend,
		})
	}
	var b xmlsql.Backend
	switch spec.Backend {
	case "mem", "":
		b = backend.NewMem()
	case "fakedb":
		db := backend.NewDB(fakedb.Open(), sqlast.DialectSQLite)
		if opt.useResilient {
			b = resilient.Wrap(db, resilient.Options{})
		} else {
			b = db
		}
	default:
		return nil, fmt.Errorf("unknown backend %q", spec.Backend)
	}
	if err := b.EnsureSchema(s); err != nil {
		return nil, err
	}
	if err := loadBackend(b); err != nil {
		return nil, err
	}
	return srv.AddTenant(server.TenantConfig{
		Name:    spec.Name,
		Schema:  s,
		Backend: b,
		Planner: pc,
	})
}

// validateFlags rejects explicitly-set non-positive serving knobs with exit
// status 2, mirroring xml2sql's flag validation: defaults may mean
// "unlimited", but asking for a zero or negative limit is always a mistake.
func validateFlags() error {
	var err error
	flag.Visit(func(f *flag.Flag) {
		switch f.Name {
		case "max-conns":
			if v := flag.Lookup("max-conns").Value.(flag.Getter).Get().(int); v <= 0 {
				err = fmt.Errorf("-max-conns must be positive, got %d", v)
			}
		case "rate":
			if v := flag.Lookup("rate").Value.(flag.Getter).Get().(float64); v <= 0 {
				err = fmt.Errorf("-rate must be positive, got %v", v)
			}
		case "burst":
			if v := flag.Lookup("burst").Value.(flag.Getter).Get().(int); v <= 0 {
				err = fmt.Errorf("-burst must be positive, got %d", v)
			}
		case "max-inflight":
			if v := flag.Lookup("max-inflight").Value.(flag.Getter).Get().(int); v <= 0 {
				err = fmt.Errorf("-max-inflight must be positive, got %d", v)
			}
		case "queue-timeout":
			if v := flag.Lookup("queue-timeout").Value.(flag.Getter).Get().(time.Duration); v <= 0 {
				err = fmt.Errorf("-queue-timeout must be a positive duration, got %v", v)
			}
		case "timeout":
			if v := flag.Lookup("timeout").Value.(flag.Getter).Get().(time.Duration); v <= 0 {
				err = fmt.Errorf("-timeout must be a positive duration, got %v", v)
			}
		case "drain-timeout":
			if v := flag.Lookup("drain-timeout").Value.(flag.Getter).Get().(time.Duration); v <= 0 {
				err = fmt.Errorf("-drain-timeout must be a positive duration, got %v", v)
			}
		case "cache-size":
			if v := flag.Lookup("cache-size").Value.(flag.Getter).Get().(int); v <= 0 {
				err = fmt.Errorf("-cache-size must be positive, got %d", v)
			}
		case "data-dir":
			if v := flag.Lookup("data-dir").Value.String(); v == "" {
				err = fmt.Errorf("-data-dir must not be empty")
			} else if mkErr := os.MkdirAll(v, 0o755); mkErr != nil {
				err = fmt.Errorf("-data-dir %s is not creatable: %v", v, mkErr)
			}
		case "fsync":
			if v := flag.Lookup("fsync").Value.(flag.Getter).Get().(time.Duration); v <= 0 {
				err = fmt.Errorf("-fsync must be a positive duration (omit it for fsync-per-commit), got %v", v)
			}
		case "shards":
			if v := flag.Lookup("shards").Value.(flag.Getter).Get().(int); v < 1 {
				err = fmt.Errorf("-shards must be at least 1, got %d", v)
			}
		case "scale":
			if v := flag.Lookup("scale").Value.(flag.Getter).Get().(int); v < 1 {
				err = fmt.Errorf("-scale must be at least 1, got %d", v)
			}
		}
	})
	return err
}
