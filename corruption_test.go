package xmlsql_test

import (
	"context"
	"testing"

	"xmlsql"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
)

// The corruption differential suite: mutate a shredded store (drop child
// tuples, flip parentcode values, null out mandatory leaf columns), load the
// dirty rows into a database backend, and check three things per scenario:
//
//  1. the pruned translation really does return wrong answers on the dirty
//     instance (where the corruption breaks a pruning assumption),
//  2. the integrity audit pinpoints every injected violation with its
//     violated property, and
//  3. a Planner over the dirty backend, once audited, transparently serves
//     baseline (safe-mode) plans whose answers match the fault-free
//     reference engine running the same baseline SQL over the same rows.
type corruptionScenario struct {
	name    string
	schema  *xmlsql.Schema
	doc     *xmlsql.Document
	queries []string
	// corrupt mutates the staging store and returns the (property,
	// relation) pairs the audit must report.
	corrupt func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation
	// wantDiverge asserts that at least one pruned query answer differs
	// from the baseline ground truth on the dirty instance.
	wantDiverge bool
}

type expectedViolation struct {
	property xmlsql.IntegrityProperty
	relation string
}

func corruptionScenarios(t *testing.T) []corruptionScenario {
	t.Helper()
	return []corruptionScenario{
		{
			// Dropping an Item leaves its InCategory children dangling.
			// Pruned Q1 scans InCat alone and still returns their
			// categories; the baseline join does not.
			name:    "xmark/drop-item",
			schema:  workloads.XMark(),
			doc:     workloads.GenerateXMark(workloads.DefaultXMarkConfig()),
			queries: []string{workloads.QueryQ1, workloads.QueryQ2, workloads.QueryQ8},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				dropFirstRow(t, store, "Item")
				return []expectedViolation{{xmlsql.PropertyP2, "InCat"}}
			},
			wantDiverge: true,
		},
		{
			// An orphan InCat tuple (dangling parentid, NULL columns) is
			// invisible to the baseline join but shows up in pruned scans.
			name:    "xmark/orphan-incat",
			schema:  workloads.XMark(),
			doc:     workloads.GenerateXMark(workloads.DefaultXMarkConfig()),
			queries: []string{workloads.QueryQ1, workloads.QueryQ2},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				if err := shred.InjectOrphan(s, store, "InCat", 424242); err != nil {
					t.Fatal(err)
				}
				return []expectedViolation{{xmlsql.PropertyP2, "InCat"}}
			},
			wantDiverge: true,
		},
		{
			// Dropping the R1 root tuple leaves every R2 tuple dangling.
			// Pruned //x starts its join at R2 (the root join is pruned
			// away) and still returns all x values; the baseline, which
			// joins down from R1, returns nothing.
			name:    "s1/drop-root",
			schema:  workloads.S1(),
			doc:     workloads.GenerateS1(8, 1),
			queries: []string{workloads.QueryQ3},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				dropFirstRow(t, store, "R1")
				return []expectedViolation{{xmlsql.PropertyP2, "R2"}}
			},
			wantDiverge: true,
		},
		{
			// Flipping a y tuple's parentcode from 2 to 3 moves it outside
			// R3's declared pc domain {1, 2} and makes it unplaceable under
			// its b parent: detected as P3 + P1. The pruned //x plan keeps
			// its positive pc conditions, so this one is detection-only.
			name:    "s1/flip-parentcode",
			schema:  workloads.S1(),
			doc:     workloads.GenerateS1(8, 1),
			queries: []string{workloads.QueryQ3},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				flipFirstInt(t, store, "R3", "pc", 2, 3)
				return []expectedViolation{{xmlsql.PropertyP3, "R3"}, {xmlsql.PropertyP1, "R3"}}
			},
		},
		{
			// Flipping a T1 tuple's pc from 1 to 2 makes it unplaceable
			// (no chain into T1 carries pc = 2) and out of domain.
			name:    "s2/flip-parentcode",
			schema:  workloads.S2(),
			doc:     workloads.GenerateS2(5, 1),
			queries: []string{"//t1", "//t2"},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				flipFirstInt(t, store, "T1", "pc", 1, 2)
				return []expectedViolation{{xmlsql.PropertyP3, "T1"}, {xmlsql.PropertyP1, "T1"}}
			},
		},
		{
			// Nulling a catalogue Category's name violates conformance
			// (every Cat node carries the name column): detection-only, the
			// NULL flows through pruned and baseline plans alike.
			name:    "xmarkfull/null-leaf",
			schema:  workloads.XMarkFull(),
			doc:     workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig()),
			queries: []string{workloads.QueryQ1, "/Site/Categories/Category"},
			corrupt: func(t *testing.T, s *xmlsql.Schema, store *xmlsql.Store) []expectedViolation {
				nullFirstColumn(t, store, "Cat", "name")
				return []expectedViolation{{xmlsql.PropertyP3, "Cat"}}
			},
		},
	}
}

func dropFirstRow(t *testing.T, store *xmlsql.Store, rel string) {
	t.Helper()
	tbl := store.Table(rel)
	if tbl == nil || tbl.Len() == 0 {
		t.Fatalf("no rows in %s to drop", rel)
	}
	idIdx := tbl.Schema().ColumnIndex("id")
	victim := tbl.Rows()[0][idIdx]
	if n := tbl.DeleteWhere(func(r relational.Row) bool { return r[idIdx].Equal(victim) }); n != 1 {
		t.Fatalf("dropped %d rows from %s, want 1", n, rel)
	}
}

func flipFirstInt(t *testing.T, store *xmlsql.Store, rel, col string, from, to int64) {
	t.Helper()
	tbl := store.Table(rel)
	idx := tbl.Schema().ColumnIndex(col)
	if idx < 0 {
		t.Fatalf("%s has no column %s", rel, col)
	}
	flipped := false
	_, err := tbl.UpdateWhere(
		func(r relational.Row) bool {
			if flipped || r[idx].IsNull() || r[idx].AsInt() != from {
				return false
			}
			flipped = true
			return true
		},
		func(r relational.Row) relational.Row {
			nr := r.Clone()
			nr[idx] = relational.Int(to)
			return nr
		})
	if err != nil {
		t.Fatal(err)
	}
	if !flipped {
		t.Fatalf("no %s row with %s = %d to flip", rel, col, from)
	}
}

func nullFirstColumn(t *testing.T, store *xmlsql.Store, rel, col string) {
	t.Helper()
	tbl := store.Table(rel)
	idx := tbl.Schema().ColumnIndex(col)
	if idx < 0 {
		t.Fatalf("%s has no column %s", rel, col)
	}
	done := false
	if _, err := tbl.UpdateWhere(
		func(r relational.Row) bool {
			if done {
				return false
			}
			done = true
			return true
		},
		func(r relational.Row) relational.Row {
			nr := r.Clone()
			nr[idx] = relational.Null
			return nr
		}); err != nil {
		t.Fatal(err)
	}
	if !done {
		t.Fatalf("no rows in %s", rel)
	}
}

func TestCorruptionDifferential(t *testing.T) {
	ctx := context.Background()
	for _, sc := range corruptionScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := sc.schema
			staging := xmlsql.NewStore()
			if _, err := xmlsql.Shred(s, staging, sc.doc); err != nil {
				t.Fatal(err)
			}
			expected := sc.corrupt(t, s, staging)

			// Ground truth: the baseline translation of [9] is correct on
			// any instance, so its answers over a fault-free engine on the
			// corrupted rows define what every query should return.
			truth := map[string]*xmlsql.Result{}
			for _, q := range sc.queries {
				naive, err := xmlsql.TranslateNaive(s, xmlsql.MustParseQuery(q))
				if err != nil {
					t.Fatal(err)
				}
				if truth[q], err = xmlsql.Execute(staging, naive); err != nil {
					t.Fatal(err)
				}
			}

			// Load the dirty rows into a database backend.
			raw := fakedb.Open()
			db := xmlsql.NewDBBackend(raw, xmlsql.DialectSQLite)
			defer db.Close()
			if err := db.EnsureSchema(s); err != nil {
				t.Fatal(err)
			}
			if _, err := raw.Exec(xmlsql.GenerateLoadScript(staging, xmlsql.DialectSQLite)); err != nil {
				t.Fatal(err)
			}

			// 1. Pruned answers must actually be wrong where the corruption
			// breaks a pruning assumption.
			if sc.wantDiverge {
				diverged := false
				for _, q := range sc.queries {
					tr, err := xmlsql.Translate(s, xmlsql.MustParseQuery(q))
					if err != nil {
						t.Fatal(err)
					}
					got, err := xmlsql.ExecuteOn(ctx, db, tr.Query)
					if err != nil {
						t.Fatal(err)
					}
					if !got.MultisetEqual(truth[q]) {
						diverged = true
					}
				}
				if !diverged {
					t.Error("pruned answers matched ground truth on the dirty instance; corruption is not observable")
				}
			}

			// 2. The audit pinpoints every injected violation.
			rep, err := xmlsql.Audit(ctx, db, s)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Clean() {
				t.Fatal("audit reported the dirty instance clean")
			}
			for _, want := range expected {
				found := false
				for _, v := range rep.ByProperty(want.property) {
					if v.Relation == want.relation {
						found = true
					}
				}
				if !found {
					t.Errorf("audit missed a %s violation on %s:\n%s", want.property, want.relation, rep)
				}
			}

			// 3. An audited planner serves safe-mode plans that match the
			// ground truth for every workload query.
			p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: db})
			if _, err := p.Audit(ctx); err != nil {
				t.Fatal(err)
			}
			if p.TrustState() != xmlsql.TrustViolated {
				t.Fatalf("planner trust after audit = %v", p.TrustState())
			}
			for _, q := range sc.queries {
				res, err := p.Exec(ctx, q)
				if err != nil {
					t.Fatalf("%s: %v", q, err)
				}
				if !res.MultisetEqual(truth[q]) {
					t.Errorf("%s: safe-mode answer diverges from ground truth:\n%s", q, truth[q].MultisetDiff(res))
				}
			}
			if st := p.Stats(); st.SafeModeServes != int64(len(sc.queries)) {
				t.Errorf("SafeModeServes = %d, want %d", st.SafeModeServes, len(sc.queries))
			}
		})
	}
}

// TestCorruptionCleanControl is the control arm: on fault-free instances the
// audit comes back clean, the planner stays on pruned plans, and nothing
// degrades.
func TestCorruptionCleanControl(t *testing.T) {
	ctx := context.Background()
	for _, sc := range corruptionScenarios(t) {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			s := sc.schema
			staging := xmlsql.NewStore()
			if _, err := xmlsql.Shred(s, staging, sc.doc); err != nil {
				t.Fatal(err)
			}
			raw := fakedb.Open()
			db := xmlsql.NewDBBackend(raw, xmlsql.DialectSQLite)
			defer db.Close()
			if err := db.EnsureSchema(s); err != nil {
				t.Fatal(err)
			}
			if _, err := raw.Exec(xmlsql.GenerateLoadScript(staging, xmlsql.DialectSQLite)); err != nil {
				t.Fatal(err)
			}
			p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: db})
			rep, err := p.Audit(ctx)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Clean() || p.TrustState() != xmlsql.TrustVerified {
				t.Fatalf("clean instance audited dirty (trust %v):\n%s", p.TrustState(), rep)
			}
			for _, q := range sc.queries {
				want, err := xmlsql.Eval(s, staging, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := p.Exec(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if !got.MultisetEqual(want) {
					t.Errorf("%s: verified serving diverges from pruned reference:\n%s", q, want.MultisetDiff(got))
				}
			}
			if st := p.Stats(); st.SafeModeServes != 0 {
				t.Errorf("clean instance degraded %d times", st.SafeModeServes)
			}
		})
	}
}
