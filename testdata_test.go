package xmlsql_test

import (
	"context"
	"os"
	"testing"

	"xmlsql"
	"xmlsql/internal/shred"
)

// The testdata mappings double as user-facing samples; these tests keep them
// working and exercise the DSL-file path end to end.

func loadTestdata(t *testing.T, dsl, xml string) (*xmlsql.Schema, *xmlsql.Store, []*xmlsql.ShredResult) {
	t.Helper()
	raw, err := os.ReadFile(dsl)
	if err != nil {
		t.Fatal(err)
	}
	s, err := xmlsql.ParseSchema(string(raw))
	if err != nil {
		t.Fatalf("%s: %v", dsl, err)
	}
	f, err := os.Open(xml)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	doc, err := xmlsql.ParseDocument(f)
	if err != nil {
		t.Fatalf("%s: %v", xml, err)
	}
	store := xmlsql.NewStore()
	res, err := xmlsql.Shred(s, store, doc)
	if err != nil {
		t.Fatal(err)
	}
	return s, store, res
}

func TestTestdataLibrary(t *testing.T) {
	s, store, _ := loadTestdata(t, "testdata/library.dsl", "testdata/library.xml")
	res, err := xmlsql.Eval(s, store, "//Book/Title")
	if err != nil {
		t.Fatal(err)
	}
	got := res.Strings()
	if len(got) != 3 || got[0] != "Goedel Escher Bach" {
		t.Errorf("titles = %v", got)
	}
	// Shelf-selective query uses the shelf discriminator.
	res, err = xmlsql.Eval(s, store, "/Library/Science/Book/Title")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Strings(); len(got) != 1 || got[0] != "Goedel Escher Bach" {
		t.Errorf("science titles = %v", got)
	}
	if err := xmlsql.CheckLossless(s, store); err != nil {
		t.Error(err)
	}
}

// TestAuditTestdataCorpora runs the integrity auditor over every shredded
// testdata corpus: freshly shredded instances must audit clean, and an
// injected orphan must be pinpointed (the CI audit job runs this alongside
// the corruption differential suite).
func TestAuditTestdataCorpora(t *testing.T) {
	ctx := context.Background()
	corpora := []struct{ dsl, xml string }{
		{"testdata/library.dsl", "testdata/library.xml"},
		{"testdata/parts.dsl", "testdata/parts.xml"},
	}
	for _, c := range corpora {
		s, store, _ := loadTestdata(t, c.dsl, c.xml)
		rep, err := xmlsql.AuditStore(ctx, store, s)
		if err != nil {
			t.Fatalf("%s: %v", c.dsl, err)
		}
		if !rep.Clean() {
			t.Errorf("%s: fresh shred audited dirty:\n%s", c.dsl, rep)
			continue
		}
		if rep.Tuples != store.TotalRows() {
			t.Errorf("%s: audit covered %d of %d tuples", c.dsl, rep.Tuples, store.TotalRows())
		}
		// Corrupt a copy: the audit must notice.
		rel := store.TableNames()[0]
		if err := shred.InjectOrphan(s, store, rel, 1<<50); err != nil {
			t.Fatalf("%s: %v", c.dsl, err)
		}
		rep, err = xmlsql.AuditStore(ctx, store, s)
		if err != nil {
			t.Fatalf("%s: %v", c.dsl, err)
		}
		if rep.Clean() || len(rep.ByProperty(xmlsql.PropertyP2)) == 0 {
			t.Errorf("%s: injected orphan went undetected:\n%s", c.dsl, rep)
		}
	}
}

func TestTestdataPartsRecursive(t *testing.T) {
	s, store, _ := loadTestdata(t, "testdata/parts.dsl", "testdata/parts.xml")
	if s.Classify().String() != "recursive" {
		t.Fatalf("parts schema should be recursive, got %v", s.Classify())
	}

	// All part names.
	res, err := xmlsql.Eval(s, store, "//Part/Name")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("//Part/Name returned %d rows, want 5", res.Len())
	}
	// Names of subparts only (parts nested under parts).
	q := xmlsql.MustParseQuery("//Part/Part/Name")
	naive, err := xmlsql.TranslateNaive(s, q)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := xmlsql.Translate(s, q)
	if err != nil {
		t.Fatal(err)
	}
	nres, err := xmlsql.Execute(store, naive)
	if err != nil {
		t.Fatal(err)
	}
	pres, err := xmlsql.Execute(store, pruned.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !nres.MultisetEqual(pres) {
		t.Fatalf("translations disagree:\nnaive:\n%s\npruned:\n%s", naive.SQL(), pruned.Query.SQL())
	}
	got := pres.Strings()
	want := []string{"bearing", "crankshaft", "piston"}
	if len(got) != len(want) {
		t.Fatalf("subpart names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subpart names = %v, want %v", got, want)
		}
	}

	// elemid queries over the recursive mapping.
	res, err = xmlsql.Eval(s, store, "//Part/elemid")
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("//Part/elemid returned %d rows, want 5", res.Len())
	}
}
