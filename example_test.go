package xmlsql_test

import (
	"fmt"
	"log"

	"xmlsql"
)

// The §2 scenario in miniature: a mapping whose naive translation is a
// union of joins collapses to a scan under the "lossless from XML"
// constraint.
func Example() {
	s := xmlsql.MustParseSchema(`
schema shop
root shop
node shop  label=Shop  rel=Shop
node toys  label=Toys
node books label=Books
node titem label=Item  rel=Item
node bitem label=Item  rel=Item
node tname label=Name  col=name
node bname label=Name  col=name
edge shop -> toys
edge shop -> books
edge toys -> titem [pc=1]
edge books -> bitem [pc=2]
edge titem -> tname
edge bitem -> bname
`)
	q := xmlsql.MustParseQuery("//Item/Name")

	naive, err := xmlsql.TranslateNaive(s, q)
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := xmlsql.Translate(s, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("naive:  %s\n", naive.Shape())
	fmt.Printf("pruned: %s\n", pruned.Query.Shape())
	fmt.Println(pruned.Query.SQL())
	// Output:
	// naive:  2 branches, 2 joins
	// pruned: 1 branch, 0 joins
	// select I.name
	// from   Item I
}

// Shredding and querying end to end.
func ExampleEval() {
	s := xmlsql.MustParseSchema(`
schema zoo
root zoo
node zoo    label=Zoo    rel=Zoo
node animal label=Animal rel=Animal
node name   label=Name   col=name
edge zoo -> animal
edge animal -> name
`)
	doc, err := xmlsql.ParseDocumentString(
		`<Zoo><Animal><Name>otter</Name></Animal><Animal><Name>heron</Name></Animal></Zoo>`)
	if err != nil {
		log.Fatal(err)
	}
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		log.Fatal(err)
	}
	res, err := xmlsql.Eval(s, store, "//Animal/Name")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strings())
	// Output: [heron otter]
}

// The lossless constraint is checkable: reconstruction inverts shredding.
func ExampleReconstruct() {
	s := xmlsql.MustParseSchema(`
schema notes
root pad
node pad  label=Pad  rel=Pad
node note label=Note rel=Note
node text label=Text col=text
edge pad -> note
edge note -> text
`)
	doc, _ := xmlsql.ParseDocumentString(`<Pad><Note><Text>hello</Text></Note></Pad>`)
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		log.Fatal(err)
	}
	docs, err := xmlsql.Reconstruct(s, store)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(docs[0].Canonicalize().Equal(doc.Canonicalize()))
	fmt.Println(xmlsql.CheckLossless(s, store))
	// Output:
	// true
	// <nil>
}

// Schema inference derives the mapping from documents alone (§5.3).
func ExampleInferSchema() {
	doc, _ := xmlsql.ParseDocumentString(
		`<Log><Entry><Level>info</Level><Msg>started</Msg></Entry></Log>`)
	s, err := xmlsql.InferSchema(doc)
	if err != nil {
		log.Fatal(err)
	}
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		log.Fatal(err)
	}
	res, err := xmlsql.Eval(s, store, "//Entry/Msg")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Strings())
	// Output: [started]
}
