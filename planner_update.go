package xmlsql

import (
	"context"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/update"
)

// The transactional update path, re-exported from internal/update.
type (
	// UpdateOp is the kind of one mutation (insert/delete/replace).
	UpdateOp = update.Op
	// UpdateMutation is one edit: an operation, the path expression
	// selecting its target elements, and (for insert/replace) the XML
	// subtree to attach. Targets must be tuple-producing elements.
	UpdateMutation = update.Mutation
	// UpdateBatch is an atomic group of mutations: either every mutation
	// applies, or none does. Targets resolve against the pre-batch instance
	// (snapshot semantics).
	UpdateBatch = update.Batch
	// UpdateResult reports one applied batch: its tuple footprint, the DML
	// statement count, and the incremental audits around it.
	UpdateResult = update.Result
	// UpdateError is the typed rejection of an invalid batch; it names the
	// violating mutation and, for integrity rejections, carries the
	// auditor's report. A rejected batch changed nothing.
	UpdateError = update.Error
	// UpdateErrorKind classifies batch rejections (UpdateError.Kind).
	UpdateErrorKind = update.ErrorKind
	// UpdateOptions tune how an applier audits batches.
	UpdateOptions = update.Options
	// UpdateApplier plans and applies mutation batches for one mapping over
	// one backend, for callers that bypass the Planner.
	UpdateApplier = update.Applier
	// TouchedTuples is an applied batch's tuple-level footprint; its
	// Relations() drive scoped cache and statistics invalidation.
	TouchedTuples = integrity.Touched
)

// The mutation operations.
const (
	// UpdateInsert adds a subtree under every element the path selects.
	UpdateInsert = update.OpInsert
	// UpdateDelete removes every element the path selects, with its subtree.
	UpdateDelete = update.OpDelete
	// UpdateReplace substitutes a new subtree for every element the path
	// selects, preserving the element's schema position.
	UpdateReplace = update.OpReplace
)

// The update rejection kinds (UpdateError.Kind).
const (
	UpdateErrPath        = update.ErrPath
	UpdateErrTarget      = update.ErrTarget
	UpdateErrConform     = update.ErrConform
	UpdateErrConflict    = update.ErrConflict
	UpdateErrIntegrity   = update.ErrIntegrity
	UpdateErrUnsupported = update.ErrUnsupported
)

// NewUpdateApplier builds a standalone applier over a bare in-memory store,
// for tools and tests that do not serve through a Planner.
func NewUpdateApplier(s *Schema, store *Store, opts UpdateOptions) (*UpdateApplier, error) {
	return update.ForStore(s, store, opts)
}

// Update plans, validates, and atomically applies one mutation batch on the
// planner's backend, then performs the scoped bookkeeping that keeps serving
// consistent:
//
//   - Plan-cache invalidation is limited to entries whose plans read a
//     touched relation; hot queries over untouched relations keep their
//     cached plans (and their statistics fingerprints, which are scoped to
//     each query's own relation set, are unchanged too).
//   - The cached statistics snapshot is dropped for database backends; the
//     in-memory snapshot refreshes itself off the store's mutation version.
//   - Trust transitions follow the incremental audit of the touched
//     neighborhood: a clean audit leaves TrustVerified standing without a
//     global scan (the batch demonstrably preserved the constraint where it
//     wrote), while detected pre-existing dirt flips the planner to
//     TrustViolated scoped to the violating relations.
//
// Updates are accepted in every trust state — on a TrustViolated instance
// they are the repair vector (each batch is still validated against P1–P3
// before applying, so updates never make the instance dirtier). A failed or
// faulted batch changes nothing: validation happens before any write, and the
// backend applies the statements transactionally.
func (p *Planner) Update(ctx context.Context, b UpdateBatch) (*UpdateResult, error) {
	a, err := p.updateApplier()
	if err != nil {
		p.updateRejects.Add(1)
		return nil, err
	}
	res, err := a.Apply(ctx, b)
	if err != nil {
		p.updateRejects.Add(1)
		return nil, err
	}
	p.updates.Add(1)

	if rels := res.Touched.Relations(); len(rels) > 0 {
		p.cache.PurgeTagged(rels)
		if cur := p.statsSnap.Load(); cur != nil && cur.store == nil {
			// A database backend's snapshot has no mutation version to watch;
			// drop it so the next adaptive plan re-probes.
			p.statsSnap.Store(nil)
		}
	}

	switch {
	case !res.Audit.Clean():
		// The post-apply audit of the touched neighborhood found dirt. The
		// batch itself validated clean pre-apply, so this is pre-existing
		// (or a concurrent external writer); either way the instance is not
		// trustworthy there.
		p.violations.Add(int64(res.Audit.Total))
		p.lastAudit.Store(res.Audit)
		p.setTrust(TrustViolated, violatedRelations(res.Audit))
	case res.Preexisting != nil:
		p.violations.Add(int64(res.Preexisting.Total))
		p.lastAudit.Store(res.Preexisting)
		p.setTrust(TrustViolated, violatedRelations(res.Preexisting))
	default:
		// Neighborhood clean: a TrustVerified instance stays verified — the
		// incremental audit is exactly the promotion proof, no global scan
		// needed. Unverified and Violated states are left alone; dirt could
		// live outside this batch's neighborhood, so only a full Audit (or
		// quarantine) may clear them.
	}
	return res, nil
}

// updateApplier returns the applier for the installed schema, building it on
// first use and rebuilding it when SetSchema installed a different mapping.
func (p *Planner) updateApplier() (*update.Applier, error) {
	p.applierMu.Lock()
	defer p.applierMu.Unlock()
	s := p.schema.Load()
	if p.applier != nil && p.applierFor == s {
		return p.applier, nil
	}
	b := p.backend()
	dml, ok := dmlCapability(b)
	if !ok {
		return nil, &update.Error{Kind: update.ErrUnsupported,
			Msg: "backend cannot apply DML atomically"}
	}
	var probe integrity.Probe
	if rp, ok := probeCapability(b); ok {
		// A backend that can route keyed fetches itself (the sharded
		// composite) beats both store probes and scatter queries: the audit
		// neighborhood loads with point lookups on the owning shard only.
		pp, err := rp.IntegrityProbe()
		if err != nil {
			return nil, err
		}
		probe = pp
	} else if m, ok := memBackend(b); ok {
		probe = integrity.StoreProbe(m.Store())
	} else {
		sp, err := integrity.NewSourceProbe(b, s)
		if err != nil {
			return nil, err
		}
		probe = sp
	}
	// Target resolution and audit probes read through b itself, so a
	// resilient wrapper's retries and circuit breaker still protect the
	// read side of every update.
	a, err := update.New(s, b, probe, dml, UpdateOptions{})
	if err != nil {
		return nil, err
	}
	p.applier, p.applierFor = a, s
	return a, nil
}

// dmlCapability finds a backend's transactional DML capability, unwrapping
// resilience layers via their Primary() accessor: a retry loop must not
// re-apply a possibly-half-committed batch, so updates go straight to the
// primary, whose ApplyDML is all-or-nothing by contract.
func dmlCapability(b Backend) (backend.DML, bool) {
	for b != nil {
		if d, ok := b.(backend.DML); ok {
			return d, true
		}
		w, ok := b.(interface{ Primary() Backend })
		if !ok {
			return nil, false
		}
		b = w.Primary()
	}
	return nil, false
}

// probeCapability finds a backend that supplies its own routed
// integrity.Probe (the sharded composite), unwrapping resilience layers.
func probeCapability(b Backend) (interface{ IntegrityProbe() (integrity.Probe, error) }, bool) {
	for b != nil {
		if p, ok := b.(interface {
			IntegrityProbe() (integrity.Probe, error)
		}); ok {
			return p, true
		}
		w, ok := b.(interface{ Primary() Backend })
		if !ok {
			return nil, false
		}
		b = w.Primary()
	}
	return nil, false
}

// memBackend unwraps to the in-memory backend, if that is what ultimately
// holds the tuples (possibly behind a resilience layer).
func memBackend(b Backend) (*backend.Mem, bool) {
	for b != nil {
		if m, ok := b.(*backend.Mem); ok {
			return m, true
		}
		w, ok := b.(interface{ Primary() Backend })
		if !ok {
			return nil, false
		}
		b = w.Primary()
	}
	return nil, false
}
