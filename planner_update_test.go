package xmlsql_test

import (
	"context"
	"errors"
	"testing"

	"xmlsql"
	"xmlsql/internal/workloads"
)

// newUpdatePlanner shreds a small XMark instance and serves it through a
// planner configured by mutate.
func newUpdatePlanner(t *testing.T, mutate func(*xmlsql.PlannerConfig)) (*xmlsql.Planner, *xmlsql.Store) {
	t.Helper()
	s := workloads.XMark()
	store := xmlsql.NewStore()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 4, CategoriesPerItem: 2, NumCategories: 8, Seed: 7,
	})
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	cfg := xmlsql.PlannerConfig{Backend: xmlsql.NewMemBackendOn(store)}
	if mutate != nil {
		mutate(&cfg)
	}
	return xmlsql.NewPlannerWith(s, cfg), store
}

// countRows runs query through the planner and returns the row count.
func countRows(t *testing.T, p *xmlsql.Planner, query string) int {
	t.Helper()
	res, err := p.Exec(context.Background(), query)
	if err != nil {
		t.Fatalf("exec %q: %v", query, err)
	}
	return len(res.Rows)
}

// TestPlannerUpdateAppliesAndServes applies an insert batch through the
// planner and checks the new data is served, the footprint is scoped, and the
// write counters move.
func TestPlannerUpdateAppliesAndServes(t *testing.T) {
	ctx := context.Background()
	p, _ := newUpdatePlanner(t, nil)
	const q = "//Item/InCategory/Category"
	before := countRows(t, p, q)

	res, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  "<InCategory><Category>brand-new</Category></InCategory>",
	}}})
	if err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := res.Touched.Relations(); len(got) != 1 || got[0] != "InCat" {
		t.Fatalf("touched relations = %v, want [InCat]", got)
	}
	if !res.Audit.Clean() {
		t.Fatalf("post-apply audit dirty: %+v", res.Audit.Violations)
	}
	after := countRows(t, p, q)
	if after != before+4 { // 4 Africa items, one new InCategory each
		t.Fatalf("category rows %d -> %d, want +4", before, after)
	}
	st := p.Stats()
	if st.Updates != 1 || st.UpdateRejects != 0 {
		t.Fatalf("counters = %d applied / %d rejected, want 1/0", st.Updates, st.UpdateRejects)
	}
}

// TestPlannerUpdateRejectionIsCountedAndAtomic sends an invalid batch and
// checks nothing is served differently and the reject counter moves.
func TestPlannerUpdateRejectionIsCountedAndAtomic(t *testing.T) {
	ctx := context.Background()
	p, store := newUpdatePlanner(t, nil)
	const q = "//Item/InCategory/Category"
	before := countRows(t, p, q)
	dumpBefore := store.Dump()

	_, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op: xmlsql.UpdateInsert, Path: "//Item", XML: "<Bogus/>",
	}}})
	var ue *xmlsql.UpdateError
	if !errors.As(err, &ue) || ue.Kind != xmlsql.UpdateErrConform {
		t.Fatalf("err = %v, want UpdateError{conform}", err)
	}
	if store.Dump() != dumpBefore {
		t.Fatal("rejected batch modified the store")
	}
	if got := countRows(t, p, q); got != before {
		t.Fatalf("rows changed %d -> %d after rejected batch", before, got)
	}
	st := p.Stats()
	if st.Updates != 0 || st.UpdateRejects != 1 {
		t.Fatalf("counters = %d applied / %d rejected, want 0/1", st.Updates, st.UpdateRejects)
	}
}

// TestPlannerUpdateScopedInvalidation is the acceptance criterion for scoped
// plan-cache invalidation: after a valid batch, a previously-hot query
// re-plans only if its relations were touched. Verified via the planner's
// hit/miss counters on the cached (non-adaptive) plan path.
func TestPlannerUpdateScopedInvalidation(t *testing.T) {
	ctx := context.Background()
	p, _ := newUpdatePlanner(t, nil)
	const qTouched = "//Item/InCategory/Category" // reads InCat
	const qUntouched = "/Site"                    // reads Site only

	// Warm both plans, then confirm they are hot: a second round adds no
	// misses.
	countRows(t, p, qTouched)
	countRows(t, p, qUntouched)
	m0 := p.Stats().Misses
	countRows(t, p, qTouched)
	countRows(t, p, qUntouched)
	if m := p.Stats().Misses; m != m0 {
		t.Fatalf("warm queries missed the cache (%d -> %d misses)", m0, m)
	}

	// Write to InCat only.
	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Asia/Item",
		XML:  "<InCategory><Category>post-write</Category></InCategory>",
	}}}); err != nil {
		t.Fatalf("update: %v", err)
	}

	// The untouched query keeps its cached plan...
	m1 := p.Stats().Misses
	countRows(t, p, qUntouched)
	if m := p.Stats().Misses; m != m1 {
		t.Fatalf("untouched query re-planned after unrelated write (%d -> %d misses)", m1, m)
	}
	// ...while the touched one re-plans.
	countRows(t, p, qTouched)
	if m := p.Stats().Misses; m == m1 {
		t.Fatal("touched query did not re-plan after a write to its relation")
	}
}

// TestPlannerUpdateScopedInvalidationAdaptive checks the same criterion on
// the adaptive path, where invalidation is carried by relation-scoped
// statistics fingerprints: a write to InCat changes the InCat-reading query's
// fingerprint but leaves the Site-only query's fingerprint — and therefore
// its cache entries — intact.
func TestPlannerUpdateScopedInvalidationAdaptive(t *testing.T) {
	ctx := context.Background()
	p, _ := newUpdatePlanner(t, func(cfg *xmlsql.PlannerConfig) {
		cfg.Translate.Adaptive = true
	})
	const qTouched = "//Item/InCategory/Category"
	const qUntouched = "/Site"

	countRows(t, p, qTouched)
	countRows(t, p, qUntouched)
	m0 := p.Stats().Misses
	countRows(t, p, qTouched)
	countRows(t, p, qUntouched)
	if m := p.Stats().Misses; m != m0 {
		t.Fatalf("warm adaptive queries missed the cache (%d -> %d misses)", m0, m)
	}

	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Europe/Item",
		XML:  "<InCategory><Category>adaptive-write</Category></InCategory>",
	}}}); err != nil {
		t.Fatalf("update: %v", err)
	}

	m1 := p.Stats().Misses
	countRows(t, p, qUntouched)
	if m := p.Stats().Misses; m != m1 {
		t.Fatalf("untouched adaptive query re-planned after unrelated write (%d -> %d misses)", m1, m)
	}
	countRows(t, p, qTouched)
	if m := p.Stats().Misses; m == m1 {
		t.Fatal("touched adaptive query did not re-plan after a write to its relation")
	}
}

// TestPlannerUpdateTrustPromotion checks the incremental promotion rule: a
// verified instance stays verified across a clean batch without a global
// re-audit, and updates are still accepted (as the repair vector) on a
// violated instance.
func TestPlannerUpdateTrustPromotion(t *testing.T) {
	ctx := context.Background()
	p, _ := newUpdatePlanner(t, nil)
	if _, err := p.Audit(ctx); err != nil {
		t.Fatalf("audit: %v", err)
	}
	if got := p.TrustState(); got != xmlsql.TrustVerified {
		t.Fatalf("trust after clean audit = %v", got)
	}
	audits := p.Stats().Audits

	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  "<InCategory><Category>still-clean</Category></InCategory>",
	}}}); err != nil {
		t.Fatalf("update: %v", err)
	}
	if got := p.TrustState(); got != xmlsql.TrustVerified {
		t.Fatalf("trust after clean batch = %v, want TrustVerified", got)
	}
	if got := p.Stats().Audits; got != audits {
		t.Fatalf("full audits ran during update (%d -> %d); promotion must be incremental", audits, got)
	}

	// A violated instance still accepts valid updates.
	p.SetTrustState(xmlsql.TrustViolated)
	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Asia/Item",
		XML:  "<InCategory><Category>repairing</Category></InCategory>",
	}}}); err != nil {
		t.Fatalf("update on violated instance: %v", err)
	}
	// The clean neighborhood does not clear the global verdict.
	if got := p.TrustState(); got != xmlsql.TrustViolated {
		t.Fatalf("trust after batch on violated instance = %v, want TrustViolated", got)
	}
}

// TestPlannerUpdateThroughResilientBackend routes updates through a resilient
// wrapper: reads retry through the wrapper, DML unwraps to the primary, and
// the batch applies.
func TestPlannerUpdateThroughResilientBackend(t *testing.T) {
	ctx := context.Background()
	s := workloads.XMark()
	store := xmlsql.NewStore()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 3, CategoriesPerItem: 1, NumCategories: 5, Seed: 3,
	})
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	rb := xmlsql.NewResilientBackend(xmlsql.NewMemBackendOn(store), xmlsql.ResilientOptions{})
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: rb})

	const q = "//Item/InCategory/Category"
	before := countRows(t, p, q)
	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  "<InCategory><Category>via-resilient</Category></InCategory>",
	}}}); err != nil {
		t.Fatalf("update through resilient backend: %v", err)
	}
	if got := countRows(t, p, q); got != before+3 {
		t.Fatalf("category rows %d -> %d, want +3", before, got)
	}
}
