// Package xmlsql reproduces "XML Views as Integrity Constraints and their
// Use in Query Translation" (Krishnamurthy, Kaushik, Naughton; ICDE 2005):
// XML-to-SQL query translation for shredded XML storage that exploits the
// "lossless from XML" integrity constraint to emit drastically simpler SQL.
//
// The package ties together the full pipeline:
//
//	schema  := xmlsql.MustParseSchema(dsl)      // annotated XML schema graph
//	store   := xmlsql.NewStore()                // in-memory relational store
//	xmlsql.Shred(schema, store, doc)            // lossless shredding
//	q       := xmlsql.MustParseQuery("//Item/InCategory/Category")
//	tr, _   := xmlsql.Translate(schema, q)      // pruned SQL (the paper's algorithm)
//	res, _  := xmlsql.Execute(store, tr.Query)  // evaluate
//
// TranslateNaive provides the baseline translation of [9] for comparison;
// Reconstruct and CheckLossless witness the integrity constraint itself.
package xmlsql

import (
	"context"
	"database/sql"
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/infer"
	"xmlsql/internal/integrity"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/plancache"
	"xmlsql/internal/relational"
	"xmlsql/internal/resilient"
	"xmlsql/internal/schema"
	"xmlsql/internal/sharded"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
	"xmlsql/internal/translate"
	"xmlsql/internal/update"
	"xmlsql/internal/xmltree"
)

// Core data types, re-exported from the implementation packages.
type (
	// Schema is an annotated XML schema graph — an XML-to-Relational
	// mapping (§3.1 of the paper).
	Schema = schema.Schema
	// SchemaBuilder constructs schemas programmatically.
	SchemaBuilder = schema.Builder
	// Query is a parsed simple path expression (§3.3).
	Query = pathexpr.Path
	// Store is the in-memory relational database instance.
	Store = relational.Store
	// Value is a single SQL value.
	Value = relational.Value
	// Document is an XML document tree.
	Document = xmltree.Document
	// Element is one XML element.
	Element = xmltree.Node
	// SQL is a generated SQL statement.
	SQL = sqlast.Query
	// Result is an executed query's multiset of rows.
	Result = engine.Result
	// Translation is the output of the lossless-constraint-aware
	// translator: the SQL plus pruning diagnostics.
	Translation = core.Result
	// TranslateOptions tunes the pruning translator (ablations).
	TranslateOptions = core.Options
	// ExecuteOptions tunes query execution: join algorithm selection, the
	// UNION ALL branch parallelism, and the resource guards (MaxRows,
	// MaxCTEIterations) that convert runaway queries into typed errors.
	ExecuteOptions = engine.Options
	// ResourceError is the typed error a query returns when it exceeds an
	// execution resource guard.
	ResourceError = engine.ResourceError
	// ExecuteStats reports the engine's shared-work subplan memo counters
	// for one execution (hits, misses, saved rows).
	ExecuteStats = engine.Stats
	// ResilientOptions configures NewResilientBackend: retry policy,
	// circuit-breaker thresholds, and the degraded-mode fallback backend.
	ResilientOptions = resilient.Options
	// RetryPolicy tunes transient-failure retries (backoff and jitter).
	RetryPolicy = resilient.RetryPolicy
	// BreakerConfig tunes the per-backend circuit breaker.
	BreakerConfig = resilient.BreakerConfig
	// ResilientStats snapshots a resilient backend's retry/breaker/fallback
	// counters.
	ResilientStats = resilient.Stats
	// ShardedBackend is the scatter-gather composite over document-
	// partitioned shard stores (see NewShardedBackend).
	ShardedBackend = sharded.Sharded
	// ShardedOptions configures a sharded composite: document placement and
	// scatter parallelism.
	ShardedOptions = sharded.Options
	// ShardedMetrics snapshots a composite's scatter/merge counters and
	// per-shard placement skew.
	ShardedMetrics = sharded.Metrics
	// ShredResult reports one document's shredding, including the elemid
	// assigned to every tuple-producing element.
	ShredResult = shred.Result
	// ShredOptions configure shredding (adversarial unspecified-column
	// fills, order-preserving shredding).
	ShredOptions = shred.Options
	// CrossProduct is the PathId stage's output (S_CP).
	CrossProduct = pathid.Graph
	// Backend abstracts where shredded tuples live and where SQL runs: the
	// in-memory engine or any database/sql connection.
	Backend = backend.Backend
	// IntegrityReport is the typed outcome of an integrity audit: how much
	// was probed and every detected violation of the lossless-from-XML
	// constraint (relation, tuple id, violated property P1–P3, repair
	// hint).
	IntegrityReport = integrity.Report
	// IntegrityViolation is one detected breach, pinned to a tuple.
	IntegrityViolation = integrity.Violation
	// IntegrityProperty identifies which §3.2 property a violation breaks.
	IntegrityProperty = integrity.Property
	// IntegrityError is the error form of an unclean report; errors.As
	// recovers it from CheckLossless and audit failures.
	IntegrityError = integrity.Error
	// AuditOptions tunes an integrity audit run.
	AuditOptions = integrity.Options
	// TrustState is a schema instance's audit disposition (unverified /
	// verified / violated), tracked per Planner.
	TrustState = integrity.TrustState
	// Dialect controls how SQL text is rendered for a concrete engine:
	// identifier quoting, keyword case, placeholders, and DDL type names.
	Dialect = sqlast.Dialect
	// Statistics is a snapshot of per-relation/per-column table statistics
	// (row counts, distinct counts, min/max, small-domain histograms, join
	// fan-out) collected over a shredded instance; the adaptive planner's
	// raw material.
	Statistics = stats.Stats
	// Estimator estimates output rows and intermediate-join sizes of
	// generated SQL against one Statistics snapshot.
	Estimator = stats.Estimator
	// QueryEstimate is an Estimator's per-query prediction: rows, abstract
	// cost, and per-branch breakdowns.
	QueryEstimate = stats.QueryEstimate
	// PlanDecision records the adaptive chooser's selections for one query
	// (pruned vs baseline, factored, join order) with the estimates that
	// justified them.
	PlanDecision = translate.Decision
)

// The built-in rendering dialects.
var (
	// DialectDefault is the paper-style rendering used by SQL.SQL().
	DialectDefault = sqlast.DialectDefault
	// DialectSQLite renders SQL accepted by SQLite.
	DialectSQLite = sqlast.DialectSQLite
	// DialectPostgres renders SQL accepted by PostgreSQL.
	DialectPostgres = sqlast.DialectPostgres
)

// DialectByName resolves "default", "sqlite", or "postgres".
func DialectByName(name string) (*Dialect, error) { return sqlast.DialectByName(name) }

// The §3.2 properties an IntegrityViolation can break.
const (
	// PropertyP1: every tuple aligns to exactly one schema-node position.
	PropertyP1 = integrity.P1
	// PropertyP2: parentid links form trees rooted at document roots.
	PropertyP2 = integrity.P2
	// PropertyP3: columns conform to the mapping's declared domains.
	PropertyP3 = integrity.P3
)

// The trust states a Planner tracks per installed schema.
const (
	// TrustUnverified: no audit has run since the schema was installed.
	TrustUnverified = integrity.TrustUnverified
	// TrustVerified: the latest audit came back clean.
	TrustVerified = integrity.TrustVerified
	// TrustViolated: the latest audit found violations; only safe-mode
	// (baseline) translations are served.
	TrustViolated = integrity.TrustViolated
)

// TrustPolicy decides which trust states a Planner serves pruned plans
// under.
type TrustPolicy int

const (
	// TrustOptimistic (the default) serves pruned plans unless an audit has
	// found violations: the shredder establishes the constraint by
	// construction, so unaudited instances are presumed clean.
	TrustOptimistic TrustPolicy = iota
	// TrustStrict serves pruned plans only after a clean audit; unverified
	// instances get the always-correct baseline translation.
	TrustStrict
)

// Audit verifies the lossless-from-XML constraint (P1–P3 of §3.2) for s
// against the instance behind any backend, via per-relation SQL probes
// through the backend's dialect. It reports every detectable violation; the
// error return is reserved for audits that could not run.
func Audit(ctx context.Context, b Backend, s *Schema) (*IntegrityReport, error) {
	return integrity.Audit(ctx, b, s)
}

// AuditStore audits an in-memory store directly.
func AuditStore(ctx context.Context, store *Store, s *Schema) (*IntegrityReport, error) {
	return integrity.Audit(ctx, integrity.StoreSource(store), s)
}

// Quarantine moves every tuple the report pins a violation on into a shadow
// relation (R + "_quarantine"), returning how many tuples moved. See
// QuarantineDirty for the audit-quarantine fixpoint.
func Quarantine(store *Store, rep *IntegrityReport) (int, error) {
	return integrity.Quarantine(store, rep)
}

// QuarantineDirty repeatedly audits and quarantines until the instance
// comes back clean (or maxRounds is exhausted; 0 means a sensible default),
// returning the final report and the total tuples moved.
func QuarantineDirty(store *Store, s *Schema, maxRounds int) (*IntegrityReport, int, error) {
	return integrity.QuarantineLoop(store, s, maxRounds)
}

// NewMemBackend creates the in-process backend: tuples in a fresh Store,
// queries through the built-in engine.
func NewMemBackend() *backend.Mem { return backend.NewMem() }

// NewMemBackendOn serves an existing (possibly already shredded) store
// through the Backend interface.
func NewMemBackendOn(store *Store) *backend.Mem { return backend.NewMemOn(store) }

// NewDBBackend runs shredded storage and query execution over a database/sql
// connection, rendering all SQL in the given dialect (nil = DialectDefault).
// The caller owns opening the *sql.DB; the backend's Close closes it.
func NewDBBackend(db *sql.DB, d *Dialect) *backend.DB { return backend.NewDB(db, d) }

// GenerateDDL renders the CREATE TABLE / CREATE INDEX script for the
// shredded relations derived from the mapping annotations of s.
func GenerateDDL(s *Schema, d *Dialect) (string, error) { return backend.DDL(s, d) }

// GenerateLoadScript renders the store's rows as literal INSERT statements
// executable on any engine speaking the dialect.
func GenerateLoadScript(store *Store, d *Dialect) string { return backend.LoadScript(store, d) }

// ExecuteOn evaluates a generated SQL statement on any backend under ctx:
// cancelling the context (or passing one with a deadline) aborts the
// execution promptly on both built-in backends.
func ExecuteOn(ctx context.Context, b Backend, q *SQL) (*Result, error) { return b.Execute(ctx, q) }

// NewShardedBackend builds the scatter-gather composite over shard backends
// (each a Mem or DB backend): one logical instance document-partitioned
// across them, loading, querying, updating and auditing through the same
// Backend surface. See internal/sharded for the partitioning invariant and
// the merge protocol.
func NewShardedBackend(shards []Backend, opts ShardedOptions) (*sharded.Sharded, error) {
	return sharded.New(shards, opts)
}

// NewShardedMemBackend builds the common all-in-memory topology: n fresh Mem
// shards behind one composite.
func NewShardedMemBackend(n int, opts ShardedOptions) (*sharded.Sharded, error) {
	return sharded.NewMem(n, opts)
}

// NewResilientBackend wraps a backend with transient-failure retries, a
// circuit breaker, and optional graceful degradation to a fallback backend
// (see ResilientOptions). The result implements Backend, so it can be
// handed straight to PlannerConfig.Backend.
func NewResilientBackend(primary Backend, opts ResilientOptions) *resilient.Backend {
	return resilient.Wrap(primary, opts)
}

// NewSchemaBuilder starts a programmatic schema definition.
func NewSchemaBuilder(name string) *SchemaBuilder { return schema.NewBuilder(name) }

// ParseSchema reads a schema from the text DSL (see internal/schema's Parse
// for the format).
func ParseSchema(dsl string) (*Schema, error) { return schema.Parse(dsl) }

// MustParseSchema parses a schema literal, panicking on error.
func MustParseSchema(dsl string) *Schema { return schema.MustParse(dsl) }

// ParseQuery parses a simple path expression such as "//Item//Category".
func ParseQuery(q string) (*Query, error) { return pathexpr.Parse(q) }

// MustParseQuery parses a query literal, panicking on error.
func MustParseQuery(q string) *Query { return pathexpr.MustParse(q) }

// ParseDocument reads an XML document.
func ParseDocument(r io.Reader) (*Document, error) { return xmltree.Parse(r) }

// ParseDocumentString reads an XML document from a string.
func ParseDocumentString(s string) (*Document, error) { return xmltree.ParseString(s) }

// NewStore creates an empty relational store.
func NewStore() *Store { return relational.NewStore() }

// Shred losslessly decomposes documents into the store according to the
// mapping, creating the derived relations as needed. The shredding respects
// the mapping in the sense of §3.2, so the "lossless from XML" constraint
// holds for the resulting instance by construction.
func Shred(s *Schema, store *Store, docs ...*Document) ([]*ShredResult, error) {
	return shred.ShredAll(s, store, shred.Options{}, docs...)
}

// ShredWithOptions is Shred with explicit shredding options (e.g. WithOrder
// for byte-exact reconstruction).
func ShredWithOptions(s *Schema, store *Store, opts ShredOptions, docs ...*Document) ([]*ShredResult, error) {
	return shred.ShredAll(s, store, opts, docs...)
}

// Reconstruct inverts shredding, rebuilding the stored documents (exact up
// to canonical sibling order).
func Reconstruct(s *Schema, store *Store) ([]*Document, error) {
	return shred.Reconstruct(s, store)
}

// CheckLossless verifies that the instance could have been produced by a
// shredding that respects the mapping, reporting orphan, ambiguous, or
// structurally invalid tuples.
func CheckLossless(s *Schema, store *Store) error { return shred.CheckLossless(s, store) }

// InjectOrphan inserts a tuple with a dangling parentid into the named
// relation — a deliberate lossless-constraint violation for exercising the
// integrity auditor and safe-mode serving in tests and demos.
func InjectOrphan(s *Schema, store *Store, rel string, fakeParent int64) error {
	return shred.InjectOrphan(s, store, rel, fakeParent)
}

// EdgeMapping derives the schema-oblivious Edge-storage mapping of §5.3 for
// a schema: every element in one generic Edge(id, parentid, tag, value)
// relation.
func EdgeMapping(s *Schema) (*Schema, error) { return shred.EdgeSchemaFor(s) }

// InferSchema derives a mapping from sample documents (§5.3: "an XML schema
// is either given or has been inferred from the XML documents loaded into
// the system"): one schema node per distinct label path, value columns for
// non-repeating text leaves, and a relation for everything else.
func InferSchema(docs ...*Document) (*Schema, error) { return infer.FromDocuments(docs...) }

// PathID runs the PathId stage: the cross-product of the schema with the
// query automaton (§3.4).
func PathID(s *Schema, q *Query) (*CrossProduct, error) { return pathid.Build(s, q) }

// TranslateNaive is the baseline XML-to-SQL translation of [9], which does
// not use the "lossless from XML" constraint: a union of root-to-leaf join
// queries (with WITH [RECURSIVE] CTEs for DAG and recursive schemas).
func TranslateNaive(s *Schema, q *Query) (*SQL, error) {
	g, err := pathid.Build(s, q)
	if err != nil {
		return nil, err
	}
	return translate.Naive(g)
}

// Translate is the paper's contribution: translation that exploits the
// "lossless from XML" constraint to prune root-to-leaf chains to their
// shortest safe suffixes (§4, §5).
func Translate(s *Schema, q *Query) (*Translation, error) {
	g, err := pathid.Build(s, q)
	if err != nil {
		return nil, err
	}
	return core.Translate(g)
}

// TranslateWithOptions runs the pruning translator with explicit options
// (used by the ablation benchmarks).
func TranslateWithOptions(s *Schema, q *Query, opts TranslateOptions) (*Translation, error) {
	g, err := pathid.Build(s, q)
	if err != nil {
		return nil, err
	}
	return core.TranslateOpts(g, opts)
}

// Execute evaluates a generated SQL statement against the store.
func Execute(store *Store, q *SQL) (*Result, error) { return engine.Execute(store, q) }

// ExecuteWithOptions evaluates a generated SQL statement with explicit
// execution options (e.g. Parallelism for concurrent UNION ALL branches).
func ExecuteWithOptions(store *Store, q *SQL, opts ExecuteOptions) (*Result, error) {
	return engine.ExecuteOpts(store, q, opts)
}

// ExecuteContext evaluates a generated SQL statement under a context with
// explicit execution options. Cancellation is cooperative and prompt — the
// engine polls the context between UNION branches, between recursive-CTE
// rounds, and inside join loops.
func ExecuteContext(ctx context.Context, store *Store, q *SQL, opts ExecuteOptions) (*Result, error) {
	return engine.ExecuteCtx(ctx, store, q, opts)
}

// ExecuteContextStats is ExecuteContext returning the shared-work memo
// counters alongside the result: how many join prefixes were reused across
// UNION ALL branches and how many materialized rows that reuse saved.
func ExecuteContextStats(ctx context.Context, store *Store, q *SQL, opts ExecuteOptions) (*Result, ExecuteStats, error) {
	return engine.ExecuteCtxStats(ctx, store, q, opts)
}

// FactorSharedPrefixes applies the shared-work rewrite to a generated SQL
// statement: UNION ALL branches that differ only in one equality literal
// collapse into a single IN branch, and maximal common join prefixes across
// the remaining branches hoist into a WITH CTE computed once. The result is
// multiset-equivalent to the input on every instance and renders through all
// dialects; the second return reports whether anything changed.
func FactorSharedPrefixes(s *Schema, q *SQL) (*SQL, bool) {
	return translate.FactorSharedPrefixes(q, s)
}

// CollectStatistics scans every table of an in-memory store and returns the
// statistics snapshot the adaptive planner plans against: per-relation row
// counts, per-column distinct counts and min/max, small-domain histograms
// (kindcode/parentcode selectivities), and the parent→child join fan-outs
// they imply. The snapshot carries the store's mutation version, and its
// Fingerprint() changes whenever the data (not just the version) changes.
func CollectStatistics(store *Store) *Statistics { return stats.CollectStore(store) }

// CollectBackendStatistics collects the same snapshot over any Backend: the
// in-memory backend is scanned directly, database backends are probed with
// one SELECT per mapped relation of s.
func CollectBackendStatistics(ctx context.Context, b Backend, s *Schema) (*Statistics, error) {
	return backend.CollectStats(ctx, b, s)
}

// NewEstimator creates a cardinality/cost estimator over a statistics
// snapshot. Estimate a generated SQL statement with EstimateQuery.
func NewEstimator(st *Statistics) *Estimator { return stats.NewEstimator(st) }

// ChoosePlan runs the cost-based plan chooser directly: naive is the
// baseline translation, pruned the constraint-exploiting one (nil when
// translation fell back), and the returned Decision records which plan and
// rewrites won and why. Planner does this automatically when
// TranslateOptions.Adaptive is set; ChoosePlan is for tools (xml2sql
// -explain) and tests that want the decision without a planner.
func ChoosePlan(naive, pruned *SQL, s *Schema, est *Estimator) *PlanDecision {
	return translate.ChoosePlan(naive, pruned, s, est)
}

// Eval is the end-to-end convenience: translate with the lossless
// constraint and execute.
func Eval(s *Schema, store *Store, query string) (*Result, error) {
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	tr, err := Translate(s, q)
	if err != nil {
		return nil, err
	}
	return Execute(store, tr.Query)
}

// PlannerConfig tunes a Planner. The zero value is the serving default: a
// plan cache of plancache.DefaultCapacity entries and parallel UNION ALL
// execution with GOMAXPROCS workers.
type PlannerConfig struct {
	// CacheSize bounds the plan cache (total entries across shards);
	// 0 means plancache.DefaultCapacity.
	CacheSize int
	// Execute is passed to the engine on every Eval. Execute.Parallelism
	// bounds concurrent UNION ALL branches (0 = GOMAXPROCS, 1 = serial).
	Execute ExecuteOptions
	// Translate tunes the pruning translator. Plans translated under
	// different options never alias in the cache. Setting Translate.Adaptive
	// switches the planner to cost-based per-query planning: statistics are
	// collected (and refreshed when the data mutates), every query's pruned
	// and baseline translations are costed, and the cheaper plan — plus
	// per-query factoring, join order, parallelism, and memo decisions —
	// wins. Explain reports the decisions.
	Translate TranslateOptions
	// Backend, when non-nil, is where Exec runs cached plans. Eval against
	// an explicit store ignores it. Execute options apply only to the
	// in-memory engine; a DB backend executes however its database does.
	// Wrap it with NewResilientBackend to add retries, a circuit breaker,
	// and degraded-mode fallback without touching the planner.
	Backend Backend
	// Timeout, when positive, is the per-query deadline Exec and
	// EvalContext apply on top of the caller's context. A query that
	// exceeds it aborts with context.DeadlineExceeded instead of holding a
	// serving goroutine hostage.
	Timeout time.Duration
	// Trust selects when Exec may serve pruned plans (see TrustPolicy).
	// Either way, once an audit reports violations the planner transparently
	// re-plans every query with the baseline translation — correct on any
	// instance — until a later audit comes back clean.
	Trust TrustPolicy
}

// Planner is the concurrent query-serving fast path: a plan cache composed
// with the parallel executor. Translation (PathId + pruning) is pure and
// depends only on (schema, query, options), so Planner caches the full
// Translation keyed by the schema's structural fingerprint, the query text,
// and the translate options; repeated queries skip parsing and translation
// entirely and go straight to execution.
//
// A Planner is safe for concurrent use by multiple goroutines: the realistic
// serving workload is many clients issuing a small set of hot path
// expressions against a slowly-changing mapping. When the mapping does
// change, install it with SetSchema — its fingerprint differs, so every
// cached plan for the old mapping stops being hit and ages out of the LRU.
type Planner struct {
	schema      atomic.Pointer[Schema]
	cfg         PlannerConfig
	cache       *plancache.Cache
	optKey      string
	topoKey     string
	backendOnce sync.Once

	// Trust machinery: the latest audit's verdict for the installed
	// schema, the report behind it, and the degradation counters. All
	// atomic, so a background re-audit (any goroutine calling Audit) flips
	// serving between pruned and safe mode without locking the hot path.
	trust      atomic.Int32
	lastAudit  atomic.Pointer[IntegrityReport]
	audits     atomic.Int64
	violations atomic.Int64
	safeServes atomic.Int64

	// Adaptive machinery: the cached statistics snapshot (refreshed when the
	// observed store's mutation version moves) and the re-plan counter.
	statsSnap     atomic.Pointer[statsEntry]
	statsCollects atomic.Int64

	// Update machinery: the lazily-built batch applier (rebuilt when the
	// installed schema changes) and the write counters. applierMu guards
	// construction only; the applier itself serializes batches.
	applierMu     sync.Mutex
	applierFor    *Schema
	applier       *update.Applier
	updates       atomic.Int64
	updateRejects atomic.Int64
}

// statsEntry is one cached statistics snapshot. store is the in-memory store
// it was scanned from (nil when it came from a database backend, which has
// no cheap mutation version — refresh those with RefreshStats).
type statsEntry struct {
	store *Store
	snap  *Statistics
}

// NewPlanner creates a Planner for the schema with default configuration.
func NewPlanner(s *Schema) *Planner { return NewPlannerWith(s, PlannerConfig{}) }

// NewPlannerWith creates a Planner with explicit configuration.
func NewPlannerWith(s *Schema, cfg PlannerConfig) *Planner {
	p := &Planner{
		cfg:   cfg,
		cache: plancache.New(cfg.CacheSize),
		// The options key only needs to distinguish distinct option values;
		// core.Options is a flat struct of scalars, so %+v is canonical.
		optKey: fmt.Sprintf("%+v", cfg.Translate),
	}
	// A backend with a shard topology contributes it to every cache key, so
	// plans cached for one topology can never be served to another (nor to an
	// unsharded backend) across planner rebuilds over a shared cache.
	if topo := backendTopology(cfg.Backend); topo != "" {
		p.topoKey = "|topo=" + topo
		p.optKey += p.topoKey
	}
	p.schema.Store(s)
	return p
}

// backendTopology reports the backend's shard-layout identity, unwrapping
// resilience layers; non-sharded backends have none.
func backendTopology(b Backend) string {
	for b != nil {
		if t, ok := b.(interface{ Topology() string }); ok {
			return t.Topology()
		}
		w, ok := b.(interface{ Primary() Backend })
		if !ok {
			return ""
		}
		b = w.Primary()
	}
	return ""
}

// Schema returns the mapping the planner currently serves.
func (p *Planner) Schema() *Schema { return p.schema.Load() }

// SetSchema atomically installs a new mapping. In-flight Evals finish under
// the schema they started with; subsequent Evals translate (and cache) under
// the new fingerprint, so stale plans are never served. The trust state
// resets to TrustUnverified: whatever the last audit said, it said it about
// a different mapping.
func (p *Planner) SetSchema(s *Schema) {
	p.schema.Store(s)
	p.trust.Store(int32(TrustUnverified))
	p.lastAudit.Store(nil)
}

// Plan returns the pruned translation for query, from the cache when
// possible. Serving (Exec) consults the trust state and may substitute the
// safe-mode plan instead; Plan itself always answers with the pruned one so
// diagnostics and tests can inspect it.
func (p *Planner) Plan(query string) (*Translation, error) {
	return p.planMode(query, false)
}

// planMode translates query in either pruned or safe (baseline) mode, with
// both kinds cached under mode-distinct keys so flipping trust state never
// serves a plan produced under the other mode.
func (p *Planner) planMode(query string, safe bool) (*Translation, error) {
	s := p.schema.Load()
	optKey := p.optKey
	if safe {
		optKey = safeModeKey
		if p.cfg.Translate.FactorPrefixes {
			optKey = safeModeKey + "+factored"
		}
		optKey += p.topoKey
	}
	k := plancache.Key{SchemaFP: s.Fingerprint(), Query: query, Options: optKey}
	if v, ok := p.cache.Get(k); ok {
		return v.(*Translation), nil
	}
	q, err := ParseQuery(query)
	if err != nil {
		return nil, err
	}
	var tr *Translation
	if safe {
		// Safe mode: the baseline translation of [9], correct on any
		// instance, lossless or not. Fallback marks the pruning as unused.
		// The shared-work rewrite is a pure SQL-to-SQL transformation, so
		// it stays on in safe mode when the planner is configured for it.
		nq, err := TranslateNaive(s, q)
		if err != nil {
			return nil, err
		}
		if p.cfg.Translate.FactorPrefixes {
			nq, _ = translate.FactorSharedPrefixes(nq, s)
		}
		tr = &Translation{Query: nq, Fallback: true}
	} else {
		if tr, err = TranslateWithOptions(s, q, p.cfg.Translate); err != nil {
			return nil, err
		}
	}
	p.cache.PutTagged(k, tr, sqlast.Relations(tr.Query))
	return tr, nil
}

// safeModeKey is the plan-cache options key for safe-mode (baseline) plans;
// the baseline translator takes no options, so one key covers them all.
const safeModeKey = "safe-mode"

// adaptive reports whether this planner plans cost-based per query.
func (p *Planner) adaptive() bool { return p.cfg.Translate.Adaptive }

// adaptivePlan is one cached adaptive decision: the chosen translation plus
// the Decision that justifies it (Exec feeds the Decision's estimate to the
// engine's Auto mode; Explain prints it).
type adaptivePlan struct {
	tr  *Translation
	dec *PlanDecision
}

// StatsSnapshot returns current statistics for the serving backend,
// collecting on first use. For the in-memory backend the snapshot
// auto-refreshes whenever the store's mutation version has moved; database
// backends are probed once and kept until RefreshStats.
func (p *Planner) StatsSnapshot(ctx context.Context) (*Statistics, error) {
	if m, ok := p.backend().(*backend.Mem); ok {
		return p.storeStats(m.Store()), nil
	}
	if cur := p.statsSnap.Load(); cur != nil && cur.store == nil {
		return cur.snap, nil
	}
	snap, err := backend.CollectStats(ctx, p.backend(), p.schema.Load())
	if err != nil {
		return nil, err
	}
	p.statsCollects.Add(1)
	p.statsSnap.Store(&statsEntry{snap: snap})
	return snap, nil
}

// storeStats returns a fresh-enough snapshot for an in-memory store: the
// cached one while the store's mutation version is unchanged, a re-scan
// otherwise. A mutated store therefore changes the snapshot's fingerprint,
// which changes the adaptive plan-cache keys, which forces a re-plan — the
// staleness contract.
func (p *Planner) storeStats(store *Store) *Statistics {
	v := store.Version()
	if cur := p.statsSnap.Load(); cur != nil && cur.store == store && cur.snap.Version == v {
		return cur.snap
	}
	snap := stats.CollectStore(store)
	p.statsCollects.Add(1)
	p.statsSnap.Store(&statsEntry{store: store, snap: snap})
	return snap
}

// RefreshStats drops the cached statistics snapshot and collects a new one —
// for database backends (whose mutations the planner cannot observe) after
// loads, or on a timer.
func (p *Planner) RefreshStats(ctx context.Context) (*Statistics, error) {
	p.statsSnap.Store(nil)
	return p.StatsSnapshot(ctx)
}

// planAdaptive runs the cost-based plan path: translate both candidates,
// choose with the estimator over snap, cache the outcome. Caching is
// three-level, so the keys literally incorporate the chosen knob vector and
// the statistics fingerprint of exactly the relations the query reads: a
// relation-set entry (options = base options + "|rels") maps the query to its
// relation footprint, an index entry (options = base options + "|auto|" +
// scoped stats fingerprint) maps it to its chosen knob vector, and the full
// entry (options = base options + "|" + knob vector + "|" + fingerprint)
// holds the plan. Mutating a relation the query reads changes the scoped
// fingerprint (stats.FingerprintFor), misses the lower levels, and re-plans
// against fresh statistics — while a query whose relations were *not* touched
// keeps hitting its existing entries: writes invalidate only the plans that
// could observe them. All three levels are tagged with the relation set, so
// a write batch's PurgeTagged drops them together.
func (p *Planner) planAdaptive(query string, snap *Statistics) (*Translation, *PlanDecision, error) {
	s := p.schema.Load()
	base := plancache.Key{SchemaFP: s.Fingerprint(), Query: query}
	relsKey := base
	relsKey.Options = p.optKey + "|rels"
	if v, ok := p.cache.Get(relsKey); ok {
		fp := snap.FingerprintFor(v.([]string))
		idx := base
		idx.Options = p.optKey + "|auto|" + fp
		if v, ok := p.cache.Get(idx); ok {
			full := base
			full.Options = v.(string)
			if v2, ok := p.cache.Get(full); ok {
				ap := v2.(*adaptivePlan)
				return ap.tr, ap.dec, nil
			}
		}
	}
	q, err := ParseQuery(query)
	if err != nil {
		return nil, nil, err
	}
	opts := p.cfg.Translate
	opts.Adaptive = true
	opts.FactorPrefixes = false // the chooser decides factoring per query
	tr, err := TranslateWithOptions(s, q, opts)
	if err != nil {
		return nil, nil, err
	}
	naive, pruned := tr.Baseline, tr.Query
	if tr.Fallback || naive == nil {
		// Fallback translations and empty ones (no schema match, so no
		// Baseline either) leave a single candidate: nothing to choose.
		naive, pruned = tr.Query, nil
	}
	dec := translate.ChoosePlan(naive, pruned, s, stats.NewEstimator(snap))
	out := &Translation{Query: dec.Query, Fallback: !dec.UsePruned}
	if dec.UsePruned {
		out.Classes = tr.Classes
	}
	// The footprint is the union over both candidates: whichever plan a
	// future statistics state favors, its relations are covered.
	rels := relationUnion(naive, pruned)
	fp := snap.FingerprintFor(rels)
	full := base
	full.Options = p.optKey + "|" + dec.KnobKey() + "|" + fp
	idx := base
	idx.Options = p.optKey + "|auto|" + fp
	p.cache.PutTagged(full, &adaptivePlan{tr: out, dec: dec}, rels)
	p.cache.PutTagged(idx, full.Options, rels)
	p.cache.PutTagged(relsKey, rels, rels)
	return out, dec, nil
}

// relationUnion is the sorted union of the relations two candidate plans read.
func relationUnion(a, b *SQL) []string {
	ra := sqlast.Relations(a)
	if b == nil {
		return ra
	}
	seen := make(map[string]bool, len(ra))
	for _, r := range ra {
		seen[r] = true
	}
	for _, r := range sqlast.Relations(b) {
		if !seen[r] {
			seen[r] = true
			ra = append(ra, r)
		}
	}
	sort.Strings(ra)
	return ra
}

// Explanation is the adaptive planner's answer to "what would you do with
// this query, and why": the decision with its estimates, the chosen plan,
// and the statistics fingerprint it was made against. xml2sql -explain
// renders one.
type Explanation struct {
	// Query is the path expression explained.
	Query string
	// StatsFingerprint identifies the statistics snapshot the decision was
	// made against (it appears in the plan-cache keys).
	StatsFingerprint string
	// Decision is the chooser's outcome: plan choice, rewrites, and the
	// per-candidate estimates behind them.
	Decision *PlanDecision
	// Plan is the chosen translation as Exec would serve it.
	Plan *Translation
}

// Explain runs the adaptive plan path for query — regardless of whether the
// planner itself is configured adaptive — and reports the decision. It uses
// (and fills) the same caches as Exec, so explaining then executing plans
// exactly once.
func (p *Planner) Explain(ctx context.Context, query string) (*Explanation, error) {
	snap, err := p.StatsSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	tr, dec, err := p.planAdaptive(query, snap)
	if err != nil {
		return nil, err
	}
	return &Explanation{Query: query, StatsFingerprint: snap.Fingerprint(), Decision: dec, Plan: tr}, nil
}

// safeMode reports whether Exec must serve the baseline translation right
// now: always under TrustViolated, and under TrustStrict also while the
// instance is merely unverified.
func (p *Planner) safeMode() bool {
	switch TrustState(p.trust.Load()) {
	case TrustViolated:
		return true
	case TrustVerified:
		return false
	default:
		return p.cfg.Trust == TrustStrict
	}
}

// TrustState returns the planner's current audit disposition.
func (p *Planner) TrustState() TrustState { return TrustState(p.trust.Load()) }

// SetTrustState overrides the trust state without running an audit — for
// tests, or for operators who repaired (or deliberately distrust) the
// instance out of band. Transitioning into TrustViolated purges the plan
// cache, dropping the pruned plans the verdict invalidated.
func (p *Planner) SetTrustState(st TrustState) { p.setTrust(st, nil) }

// setTrust installs a trust verdict. On a transition into TrustViolated the
// plans the verdict impeaches are dropped: all of them when rels is nil (the
// whole instance is suspect — an operator override, or a truncated audit
// whose full footprint is unknown), only the entries reading one of rels when
// the violations are pinned to specific relations. Plans over untouched
// relations keep serving from cache; under TrustViolated they are not *hit*
// (Exec switches to safe-mode keys), but they resurface intact when a later
// clean audit restores TrustVerified.
func (p *Planner) setTrust(st TrustState, rels []string) {
	if TrustState(p.trust.Swap(int32(st))) != st && st == TrustViolated {
		if rels == nil {
			p.cache.Purge()
		} else {
			p.cache.PurgeTagged(rels)
		}
	}
}

// violatedRelations extracts the sorted relation set a report pins violations
// on, or nil when the set is unknowable (truncated report, or violations not
// attributed to a relation) — nil tells setTrust to purge globally.
func violatedRelations(rep *IntegrityReport) []string {
	if rep == nil || rep.Truncated || rep.Total > len(rep.Violations) {
		return nil
	}
	seen := map[string]bool{}
	var rels []string
	for _, v := range rep.Violations {
		if v.Relation == "" {
			return nil
		}
		if !seen[v.Relation] {
			seen[v.Relation] = true
			rels = append(rels, v.Relation)
		}
	}
	if len(rels) == 0 {
		return nil
	}
	sort.Strings(rels)
	return rels
}

// Audit probes the planner's backend for violations of the lossless-from-XML
// constraint and installs the verdict: clean flips the trust state to
// TrustVerified (pruned plans serve), violations flip it to TrustViolated
// (Exec transparently re-plans with the baseline translation and the
// invalidated pruned plans are dropped from the cache). Run it after loads,
// after fault recovery, or periodically from a background goroutine — the
// state is atomic, so serving picks the new verdict up immediately.
func (p *Planner) Audit(ctx context.Context) (*IntegrityReport, error) {
	rep, err := integrity.Audit(ctx, p.backend(), p.schema.Load())
	if err != nil {
		return nil, err
	}
	p.audits.Add(1)
	p.lastAudit.Store(rep)
	if rep.Clean() {
		p.setTrust(TrustVerified, nil)
	} else {
		p.violations.Add(int64(rep.Total))
		p.setTrust(TrustViolated, violatedRelations(rep))
	}
	return rep, nil
}

// LastAudit returns the most recent audit's report, or nil if none has run
// since the schema was installed.
func (p *Planner) LastAudit() *IntegrityReport { return p.lastAudit.Load() }

// Eval translates (with caching) and executes query against the store.
func (p *Planner) Eval(store *Store, query string) (*Result, error) {
	return p.EvalContext(context.Background(), store, query)
}

// EvalContext is Eval under a caller context plus the configured Timeout:
// cancellation and deadline expiry abort the execution promptly with
// ctx.Err().
func (p *Planner) EvalContext(ctx context.Context, store *Store, query string) (*Result, error) {
	if p.adaptive() {
		tr, dec, err := p.planAdaptive(query, p.storeStats(store))
		if err != nil {
			return nil, err
		}
		ctx, cancel := p.queryCtx(ctx)
		defer cancel()
		return engine.ExecuteCtx(ctx, store, tr.Query, p.autoOptions(dec))
	}
	tr, err := p.Plan(query)
	if err != nil {
		return nil, err
	}
	ctx, cancel := p.queryCtx(ctx)
	defer cancel()
	return engine.ExecuteCtx(ctx, store, tr.Query, p.cfg.Execute)
}

// autoOptions is the configured execution options with the engine's Auto
// mode switched on and fed this decision's estimate, so serial/parallel and
// memo resolve per query from predicted cost rather than global flags.
func (p *Planner) autoOptions(dec *PlanDecision) ExecuteOptions {
	opts := p.cfg.Execute
	opts.Auto = true
	opts.Estimate = dec.ChosenEst
	return opts
}

// Exec translates (with caching) and executes query on the configured
// backend under ctx plus the configured Timeout. A Planner whose config
// names no backend gets a fresh in-memory one on first use, so Exec works
// out of the box; point cfg.Backend at a DB backend to serve the same
// cached plans from a real database, or at a NewResilientBackend wrapper to
// add retries and degradation.
// Exec consults the trust state first: under TrustViolated (or TrustStrict
// with an unverified instance) it serves the safe-mode baseline plan, whose
// answers are correct on dirty data, and counts the degradation in
// Stats().SafeModeServes.
func (p *Planner) Exec(ctx context.Context, query string) (*Result, error) {
	safe := p.safeMode()
	if p.adaptive() && !safe {
		// Adaptive serving: plan cost-based against the current statistics
		// snapshot, then let the engine's Auto mode resolve the execution
		// knobs from the chosen plan's estimate. Safe mode bypasses all of
		// it — on untrusted data only the baseline translation may serve, and
		// the estimates were made about data the audit just impeached.
		snap, err := p.StatsSnapshot(ctx)
		if err != nil {
			return nil, err
		}
		tr, dec, err := p.planAdaptive(query, snap)
		if err != nil {
			return nil, err
		}
		ctx, cancel := p.queryCtx(ctx)
		defer cancel()
		if m, ok := p.backend().(*backend.Mem); ok {
			return engine.ExecuteCtx(ctx, m.Store(), tr.Query, p.autoOptions(dec))
		}
		// A database backend plans its own execution; only the plan-level
		// decisions (pruned vs baseline, factoring, join order) apply.
		return p.backend().Execute(ctx, tr.Query)
	}
	tr, err := p.planMode(query, safe)
	if err != nil {
		return nil, err
	}
	if safe {
		p.safeServes.Add(1)
	}
	ctx, cancel := p.queryCtx(ctx)
	defer cancel()
	return p.backend().Execute(ctx, tr.Query)
}

// queryCtx applies the per-query deadline, if configured.
func (p *Planner) queryCtx(ctx context.Context) (context.Context, context.CancelFunc) {
	if p.cfg.Timeout > 0 {
		return context.WithTimeout(ctx, p.cfg.Timeout)
	}
	return ctx, func() {}
}

// Backend returns the backend Exec uses, creating the default in-memory one
// if the config left it nil.
func (p *Planner) Backend() Backend { return p.backend() }

func (p *Planner) backend() Backend {
	p.backendOnce.Do(func() {
		if p.cfg.Backend == nil {
			m := backend.NewMem()
			m.SetEngineOptions(p.cfg.Execute)
			p.cfg.Backend = m
		}
	})
	return p.cfg.Backend
}

// PlannerStats is a point-in-time snapshot of the plan cache counters. The
// JSON tags are the wire names the serving front end exposes per tenant.
type PlannerStats struct {
	// Hits and Misses count cache lookups since the planner was created.
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts plans dropped by LRU capacity pressure; a growing
	// rate under a steady workload means CacheSize is too small for the
	// hot query set.
	Evictions int64 `json:"evictions"`
	// Entries is the number of plans currently cached.
	Entries int `json:"entries"`
	// Audits counts completed integrity audits; ViolationsFound sums the
	// violations they reported.
	Audits          int64 `json:"audits"`
	ViolationsFound int64 `json:"violations_found"`
	// SafeModeServes counts Exec calls answered with the baseline
	// translation because the instance was not trusted — the integrity
	// counterpart of the resilience layer's Fallbacks counter.
	SafeModeServes int64 `json:"safe_mode_serves"`
	// StatsCollects counts statistics snapshot collections; under a steady
	// adaptive workload it grows only when the data actually mutates.
	StatsCollects int64 `json:"stats_collects"`
	// Updates counts mutation batches applied through Update;
	// UpdateRejects counts batches rejected (invalid, conflicting, or
	// failed) — rejected batches left the instance untouched.
	Updates       int64 `json:"updates"`
	UpdateRejects int64 `json:"update_rejects"`
	// Trust is the planner's current audit disposition.
	Trust TrustState `json:"trust"`
}

// Stats returns the planner's cache hit/miss/eviction counters and size,
// plus the integrity-degradation counters.
func (p *Planner) Stats() PlannerStats {
	st := p.cache.Stats()
	return PlannerStats{
		Hits: st.Hits, Misses: st.Misses, Evictions: st.Evictions, Entries: st.Entries,
		Audits:          p.audits.Load(),
		ViolationsFound: p.violations.Load(),
		SafeModeServes:  p.safeServes.Load(),
		StatsCollects:   p.statsCollects.Load(),
		Updates:         p.updates.Load(),
		UpdateRejects:   p.updateRejects.Load(),
		Trust:           TrustState(p.trust.Load()),
	}
}

// InvalidatePlans drops every cached plan (counters are preserved). Normal
// schema evolution does not need this — SetSchema invalidates by fingerprint
// — but it is useful for tests and memory pressure.
func (p *Planner) InvalidatePlans() { p.cache.Purge() }
