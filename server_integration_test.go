package xmlsql_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"xmlsql/internal/bench"
)

// TestXmlserveIntegration exercises the real binary end to end: build
// xmlserve, start it on ephemeral ports with a mem tenant and a fakedb
// tenant, drive both protocols with the closed-loop bench driver, check the
// stats surface, and shut it down with SIGTERM expecting a clean drain.
func TestXmlserveIntegration(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}

	bin := filepath.Join(t.TempDir(), "xmlserve")
	if out, err := exec.Command("go", "build", "-o", bin, "./cmd/xmlserve").CombinedOutput(); err != nil {
		t.Fatalf("building xmlserve: %v\n%s", err, out)
	}

	cmd := exec.Command(bin,
		"-addr", "127.0.0.1:0",
		"-line-addr", "127.0.0.1:0",
		"-tenants", "auctions=xmark:mem,staff=s1:fakedb",
	)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listen lines are part of the binary's stdout contract: with port 0
	// they are the only way to learn the resolved addresses.
	var httpAddr, lineAddr string
	var banner strings.Builder
	sc := bufio.NewScanner(stdout)
	deadline := time.After(15 * time.Second)
	for httpAddr == "" || lineAddr == "" {
		lineCh := make(chan string, 1)
		go func() {
			if sc.Scan() {
				lineCh <- sc.Text()
			} else {
				close(lineCh)
			}
		}()
		select {
		case line, ok := <-lineCh:
			if !ok {
				t.Fatalf("xmlserve exited before listening:\n%s", banner.String())
			}
			banner.WriteString(line + "\n")
			if rest, found := strings.CutPrefix(line, "xmlserve: http listening on "); found {
				httpAddr = rest
			}
			if rest, found := strings.CutPrefix(line, "xmlserve: line listening on "); found {
				lineAddr = rest
			}
		case <-deadline:
			t.Fatalf("timed out waiting for listen lines:\n%s", banner.String())
		}
	}

	// Drive both protocols briefly, well under capacity: everything must be
	// accepted — any shed here is an admission-control bug, which is exactly
	// what the CI serving job gates on.
	for _, d := range []bench.DriveConfig{
		{Protocol: "http", Addr: httpAddr, Tenant: "auctions",
			Query: "//Item/InCategory/Category", Clients: 2, Duration: 300 * time.Millisecond},
		{Protocol: "line", Addr: lineAddr, Tenant: "staff",
			Query: "//x", Clients: 2, Duration: 300 * time.Millisecond},
	} {
		res, err := bench.Drive(d)
		if err != nil {
			t.Fatalf("%s drive: %v", d.Protocol, err)
		}
		if res.Completed == 0 {
			t.Errorf("%s drive completed nothing", d.Protocol)
		}
		if res.Shed != 0 || res.Errors != 0 {
			t.Errorf("%s drive under capacity: shed=%d errors=%d, want 0/0",
				d.Protocol, res.Shed, res.Errors)
		}
	}

	// Both tenants show up on /stats with their own counters.
	resp, err := http.Get(fmt.Sprintf("http://%s/stats", httpAddr))
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Tenants map[string]struct {
			Queries int64  `json:"queries"`
			Trust   string `json:"trust"`
		} `json:"tenants"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, name := range []string{"auctions", "staff"} {
		ten, ok := stats.Tenants[name]
		if !ok {
			t.Fatalf("/stats missing tenant %s: %+v", name, stats.Tenants)
		}
		if ten.Queries == 0 {
			t.Errorf("tenant %s served 0 queries per /stats", name)
		}
	}

	// SIGTERM: graceful drain, zero exit, and the farewell line.
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	var tail strings.Builder
	go func() {
		for sc.Scan() {
			tail.WriteString(sc.Text() + "\n")
		}
		done <- cmd.Wait()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("xmlserve exit after SIGTERM: %v\n%s", err, tail.String())
		}
	case <-time.After(10 * time.Second):
		t.Fatalf("xmlserve did not exit after SIGTERM:\n%s", tail.String())
	}
	if !strings.Contains(tail.String(), "xmlserve: drained, bye") {
		t.Errorf("shutdown output missing the drain farewell:\n%s", tail.String())
	}
}
