package xmlsql_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"xmlsql"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
)

// corruptedXMark returns an XMark store with one orphan InCat tuple (its
// dangling parentid and NULL columns make pruned Q1 answers wrong: the
// baseline joins InCat to Item and excludes it, the pruned single-table scan
// does not), plus the pruned and baseline Q1 answers on that store.
func corruptedXMark(t *testing.T) (*xmlsql.Schema, *xmlsql.Store, *xmlsql.Result, *xmlsql.Result) {
	t.Helper()
	s := workloads.XMark()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, workloads.GenerateXMark(workloads.DefaultXMarkConfig())); err != nil {
		t.Fatal(err)
	}
	if err := shred.InjectOrphan(s, store, "InCat", 987654321); err != nil {
		t.Fatal(err)
	}
	q := xmlsql.MustParseQuery(workloads.QueryQ1)
	naive, err := xmlsql.TranslateNaive(s, q)
	if err != nil {
		t.Fatal(err)
	}
	truth, err := xmlsql.Execute(store, naive)
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := xmlsql.Translate(s, q)
	if err != nil {
		t.Fatal(err)
	}
	prunedRes, err := xmlsql.Execute(store, pruned.Query)
	if err != nil {
		t.Fatal(err)
	}
	if truth.MultisetEqual(prunedRes) {
		t.Fatal("corruption did not make pruned and baseline answers diverge")
	}
	return s, store, truth, prunedRes
}

func TestPlannerTrustLifecycle(t *testing.T) {
	ctx := context.Background()
	s, store, truth, prunedRes := corruptedXMark(t)
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: xmlsql.NewMemBackendOn(store)})

	if st := p.TrustState(); st != xmlsql.TrustUnverified {
		t.Fatalf("fresh planner trust = %v", st)
	}
	// Optimistic default: unaudited instances serve pruned plans — and on
	// this dirty instance that means the wrong answer.
	got, err := p.Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MultisetEqual(prunedRes) {
		t.Fatalf("unverified optimistic Exec did not serve the pruned plan")
	}

	// The audit finds the orphan and flips the planner to safe mode.
	rep, err := p.Audit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatalf("audit missed the orphan:\n%s", rep)
	}
	p2s := rep.ByProperty(xmlsql.PropertyP2)
	if len(p2s) != 1 || p2s[0].Relation != "InCat" {
		t.Fatalf("want one P2 violation on InCat, got:\n%s", rep)
	}
	if p.TrustState() != xmlsql.TrustViolated {
		t.Fatalf("trust after dirty audit = %v", p.TrustState())
	}
	if p.LastAudit() != rep {
		t.Error("LastAudit does not return the installed report")
	}

	// Safe mode: Exec transparently re-plans with the baseline translation
	// and matches the ground truth; Plan still exposes the pruned SQL.
	got, err = p.Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MultisetEqual(truth) {
		t.Fatalf("safe-mode Exec diverged from baseline ground truth")
	}
	tr, err := p.Plan(workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Fallback {
		t.Error("Plan should still expose the pruned translation")
	}
	st := p.Stats()
	if st.Audits != 1 || st.ViolationsFound != 1 || st.SafeModeServes != 1 || st.Trust != xmlsql.TrustViolated {
		t.Errorf("stats = %+v", st)
	}

	// Repair (quarantine the orphan), re-audit: pruned plans come back.
	if _, _, err := xmlsql.QuarantineDirty(store, s, 0); err != nil {
		t.Fatal(err)
	}
	rep, err = p.Audit(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() || p.TrustState() != xmlsql.TrustVerified {
		t.Fatalf("post-repair audit: clean=%v trust=%v", rep.Clean(), p.TrustState())
	}
	cleanTruth, err := xmlsql.Eval(s, store, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	got, err = p.Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !got.MultisetEqual(cleanTruth) {
		t.Fatalf("verified Exec diverged from pruned answers on the repaired instance")
	}
	if st := p.Stats(); st.SafeModeServes != 1 {
		t.Errorf("SafeModeServes grew after re-verification: %+v", st)
	}
}

func TestPlannerTrustStrictPolicy(t *testing.T) {
	ctx := context.Background()
	s := workloads.XMark()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, workloads.GenerateXMark(workloads.DefaultXMarkConfig())); err != nil {
		t.Fatal(err)
	}
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{
		Backend: xmlsql.NewMemBackendOn(store),
		Trust:   xmlsql.TrustStrict,
	})
	// Strict: even a clean-but-unverified instance gets safe-mode serving.
	if _, err := p.Exec(ctx, workloads.QueryQ1); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SafeModeServes != 1 {
		t.Fatalf("strict unverified Exec did not degrade: %+v", st)
	}
	if rep, err := p.Audit(ctx); err != nil || !rep.Clean() {
		t.Fatalf("audit: %v %v", rep, err)
	}
	if _, err := p.Exec(ctx, workloads.QueryQ1); err != nil {
		t.Fatal(err)
	}
	if st := p.Stats(); st.SafeModeServes != 1 || st.Trust != xmlsql.TrustVerified {
		t.Fatalf("strict verified Exec still degraded: %+v", st)
	}
}

func TestPlannerTrustResetOnSetSchema(t *testing.T) {
	s, store, _, _ := corruptedXMark(t)
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: xmlsql.NewMemBackendOn(store)})
	if _, err := p.Audit(context.Background()); err != nil {
		t.Fatal(err)
	}
	if p.TrustState() != xmlsql.TrustViolated {
		t.Fatalf("trust = %v", p.TrustState())
	}
	p.SetSchema(workloads.XMarkFull())
	if p.TrustState() != xmlsql.TrustUnverified || p.LastAudit() != nil {
		t.Fatalf("SetSchema did not reset trust: %v %v", p.TrustState(), p.LastAudit())
	}
}

// TestPlannerTrustConcurrentReaudit drives Exec from many goroutines while
// another goroutine flips the trust verdict back and forth, as a background
// re-audit would. Every answer must equal either the pruned or the baseline
// result — never a torn plan — and the run must be race-clean.
func TestPlannerTrustConcurrentReaudit(t *testing.T) {
	ctx := context.Background()
	s, store, truth, prunedRes := corruptedXMark(t)
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: xmlsql.NewMemBackendOn(store)})

	const goroutines, iters = 8, 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%2 == 0 {
				p.SetTrustState(xmlsql.TrustViolated)
			} else {
				p.SetTrustState(xmlsql.TrustVerified)
			}
		}
	}()
	errs := make(chan error, goroutines)
	var workers sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		workers.Add(1)
		go func() {
			defer workers.Done()
			for i := 0; i < iters; i++ {
				res, err := p.Exec(ctx, workloads.QueryQ1)
				if err != nil {
					errs <- err
					return
				}
				if !res.MultisetEqual(truth) && !res.MultisetEqual(prunedRes) {
					errs <- fmt.Errorf("Exec answer matches neither the pruned nor the baseline result")
					return
				}
			}
		}()
	}
	workers.Wait()
	close(stop)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
