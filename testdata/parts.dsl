# A recursive bill-of-materials mapping: parts contain subparts, modelled
# with a self-referential Part relation (the §5 recursive-schema case).
schema parts
root assembly

node assembly label=Assembly rel=Assembly
node part     label=Part     rel=Part
node pname    label=Name     col=name
node pid      label=elemid   col=id

edge assembly -> part
edge part -> part
edge part -> pname
edge part -> pid
