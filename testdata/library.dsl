# A small library mapping: books on two shelves share the Book relation,
# distinguished by the shelf column (the Figure 1 annotation style).
schema library
root lib

node lib     label=Library rel=Library
node fiction label=Fiction
node science label=Science
node fbook   label=Book    rel=Book
node sbook   label=Book    rel=Book
node ftitle  label=Title   col=title
node stitle  label=Title   col=title
node fyear   label=Year    col=year
node syear   label=Year    col=year

edge lib -> fiction
edge lib -> science
edge fiction -> fbook [shelf=1]
edge science -> sbook [shelf=2]
edge fbook -> ftitle
edge fbook -> fyear
edge sbook -> stitle
edge sbook -> syear
