package xmlsql_test

import (
	"os/exec"
	"strings"
	"testing"
)

// CLI smoke tests: run each command through `go run` and check the output
// wiring. They are skipped with -short (they compile the binaries).

func runCLI(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestCLIXml2sql(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-query", "//Item/InCategory/Category", "-classes")
	for _, want := range []string{
		"baseline translation [9] (6 branches, 12 joins)",
		"select IC.category\nfrom   InCat IC",
		"linear class, 6 members",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXml2sqlSchemaFile(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-schema", "testdata/parts.dsl", "-query", "//Part/Name", "-cross-product")
	if !strings.Contains(out, "cross-product schema") || !strings.Contains(out, "recursive") {
		t.Errorf("xml2sql DSL-file output unexpected:\n%s", out)
	}
}

func TestCLIShredder(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/shredder", "-schema", "testdata/library.dsl", "-in", "testdata/library.xml", "-verify", "-dump")
	for _, want := range []string{
		"lossless round trip verified",
		"TABLE Book",
		"'Solaris'",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("shredder output missing %q:\n%s", want, out)
		}
	}
}

// runCLIExpectError runs a command expecting a non-zero exit and returns its
// combined output.
func runCLIExpectError(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("go run %v: expected a non-zero exit\n%s", args, out)
	}
	return string(out)
}

func TestCLIXml2sqlAudit(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-audit")
	for _, want := range []string{
		"audit of a generated xmark instance",
		"constraint holds: trust unverified -> verified",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql -audit output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXml2sqlAuditCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-audit", "-corrupt")
	for _, want := range []string{
		"injected an orphan tuple into InCat",
		"[P2] InCat",
		"trust unverified -> violated",
		"safe-mode",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql -audit -corrupt output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXml2sqlRejectsInvalidFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-workload", "xmark", "-query", "//Item", "-timeout", "-5s"}, "-timeout must be a positive duration"},
		{[]string{"-workload", "xmark", "-query", "//Item", "-timeout", "0s"}, "-timeout must be a positive duration"},
		{[]string{"-workload", "xmark", "-query", "//Item", "-max-rows", "-1"}, "-max-rows must be >= 0"},
		{[]string{"-workload", "xmark", "-query", "//Item", "-max-cte-iterations", "-2"}, "-max-cte-iterations must be >= 0"},
		{[]string{"-workload", "xmark", "-query", "//Item", "-dialect", "oracle"}, `unknown dialect "oracle"`},
	}
	for _, tc := range cases {
		out := runCLIExpectError(t, append([]string{"./cmd/xml2sql"}, tc.args...)...)
		if !strings.Contains(out, tc.want) {
			t.Errorf("xml2sql %v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestCLIShredderEdgeWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/shredder", "-workload", "s1-edge", "-generate", "-verify")
	if !strings.Contains(out, "lossless round trip verified") {
		t.Errorf("shredder edge output unexpected:\n%s", out)
	}
}

func TestCLIXml2sqlStats(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-stats")
	for _, want := range []string{
		`"fingerprint": "stats:`,
		`"relations"`,
		`"histogram"`,
		`"total_rows"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql -stats output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXml2sqlExplain(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-query", "//Item/InCategory/Category", "-explain", "-execute")
	for _, want := range []string{
		"adaptive plan decision",
		"pruning pays",
		"chosen: plan=pruned",
		"execution knobs:",
		"estimated ~240 rows, actual 240 rows",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql -explain output missing %q:\n%s", want, out)
		}
	}
	// A near-tie case retains the measured-safe baseline.
	out = runCLIExpectError(t, "./cmd/xml2sql", "-workload", "xmark", "-explain")
	if !strings.Contains(out, "-explain requires a -query") {
		t.Errorf("xml2sql -explain without -query: missing validation error:\n%s", out)
	}
}

func TestCLIXml2sqlExplainBaselineRetained(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	out := runCLI(t, "./cmd/xml2sql", "-workload", "s3", "-query", "/E0/E2/E8//E10/elemid", "-explain")
	for _, want := range []string{
		"adaptive plan decision",
		"baseline retained",
		"chosen: plan=baseline",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("xml2sql -explain (near-tie) output missing %q:\n%s", want, out)
		}
	}
}

func TestCLIXmlserveRejectsInvalidFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-tenants", "a=xmark", "-max-conns", "0"}, "-max-conns must be positive"},
		{[]string{"-tenants", "a=xmark", "-rate", "-1"}, "-rate must be positive"},
		{[]string{"-tenants", "a=xmark", "-burst", "0"}, "-burst must be positive"},
		{[]string{"-tenants", "a=xmark", "-max-inflight", "-3"}, "-max-inflight must be positive"},
		{[]string{"-tenants", "a=xmark", "-timeout", "0s"}, "-timeout must be a positive duration"},
		{[]string{"-tenants", "a=xmark", "-drain-timeout", "-1s"}, "-drain-timeout must be a positive duration"},
		{[]string{"-tenants", "a=xmark", "-cache-size", "0"}, "-cache-size must be positive"},
		{[]string{}, "-tenants is required"},
		{[]string{"-tenants", "a=xmark:oracle"}, "unknown backend"},
		{[]string{"-tenants", "a=xmark,a=s1"}, `tenant "a" declared twice`},
	}
	for _, tc := range cases {
		out := runCLIExpectError(t, append([]string{"./cmd/xmlserve"}, tc.args...)...)
		if !strings.Contains(out, tc.want) {
			t.Errorf("xmlserve %v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

func TestCLIBenchrunnerRejectsInvalidFlags(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"-frontend-clients", "0"}, "-frontend-clients must be positive"},
		{[]string{"-frontend-over-clients", "-1"}, "-frontend-over-clients must be positive"},
		{[]string{"-frontend-inflight", "0"}, "-frontend-inflight must be positive"},
		{[]string{"-frontend-duration", "0s"}, "-frontend-duration must be a positive duration"},
		{[]string{"-frontend-over-rate", "-5"}, "-frontend-over-rate must be positive"},
		{[]string{"-frontend-overload-max-p99x", "0"}, "-frontend-overload-max-p99x must be positive"},
		{[]string{"-scale", "0"}, "-scale must be positive"},
	}
	for _, tc := range cases {
		out := runCLIExpectError(t, append([]string{"./cmd/benchrunner"}, tc.args...)...)
		if !strings.Contains(out, tc.want) {
			t.Errorf("benchrunner %v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
}

// TestCLIXml2sqlDurableUpdate runs the durable -update path twice over the
// same data directory: the first run initializes and checkpoints it, the
// second recovers the snapshot, replays the first run's logged batch, and
// commits its own on top.
func TestCLIXml2sqlDurableUpdate(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	dir := t.TempDir()
	batch := `[{"op":"insert","path":"/Site/Regions/Africa/Item","xml":"<InCategory><Category>cli-durable</Category></InCategory>"}]`

	out := runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-data-dir", dir, "-update", batch)
	for _, want := range []string{
		"initialized " + dir,
		"incremental audit of the touched neighborhood: clean=true",
		"durably committed: 1 record(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("first durable -update missing %q:\n%s", want, out)
		}
	}

	out = runCLI(t, "./cmd/xml2sql", "-workload", "xmark", "-data-dir", dir, "-fsync", "50ms", "-update", batch)
	for _, want := range []string{
		"recovered " + dir,
		"1 batch(es) replayed",
		"truncated_tail=false",
		// Stats count per-process, so this run logged 1 record; the log
		// position shows both runs' batches.
		"durably committed: 1 record(s)",
		"last seq 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("second durable -update missing %q:\n%s", want, out)
		}
	}
}

// TestCLIDurabilityFlagValidation pins the durability flags' contract on
// both binaries: orphaned or nonsensical values are a usage error (exit 2),
// and a database-backed tenant cannot be pointed at a data directory.
func TestCLIDurabilityFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles the binary")
	}
	batch := `[{"op":"delete","path":"//Item"}]`
	dir := t.TempDir()
	cases := []struct {
		args []string
		want string
	}{
		{[]string{"./cmd/xml2sql", "-workload", "xmark", "-update", batch, "-data-dir", "/dev/null/nope"}, "not creatable"},
		{[]string{"./cmd/xml2sql", "-workload", "xmark", "-update", batch, "-fsync", "1s"}, "-fsync requires -data-dir"},
		{[]string{"./cmd/xml2sql", "-workload", "xmark", "-update", batch, "-data-dir", ""}, "-data-dir must not be empty"},
		{[]string{"./cmd/xml2sql", "-workload", "xmark", "-update", batch, "-data-dir", dir, "-fsync", "0s"}, "-fsync must be a positive duration"},
		{[]string{"./cmd/xml2sql", "-workload", "xmark", "-query", "//Item", "-data-dir", dir}, "-data-dir only applies to the -update path"},
		{[]string{"./cmd/xmlserve", "-tenants", "a=xmark", "-fsync", "1s"}, "-fsync requires -data-dir"},
		{[]string{"./cmd/xmlserve", "-tenants", "a=xmark", "-data-dir", "/dev/null/nope"}, "not creatable"},
		{[]string{"./cmd/xmlserve", "-tenants", "a=xmark", "-data-dir", dir, "-fsync", "-1s"}, "-fsync must be a positive duration"},
	}
	for _, tc := range cases {
		out := runCLIExpectError(t, tc.args...)
		if !strings.Contains(out, tc.want) {
			t.Errorf("%v: output missing %q:\n%s", tc.args, tc.want, out)
		}
	}
	out := runCLIExpectError(t, "./cmd/xmlserve", "-addr", "127.0.0.1:0", "-data-dir", t.TempDir(), "-tenants", "a=s1:fakedb")
	if !strings.Contains(out, "-data-dir requires the mem backend") {
		t.Errorf("xmlserve durable fakedb tenant: missing backend rejection:\n%s", out)
	}
}
