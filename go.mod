module xmlsql

go 1.22
