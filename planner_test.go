package xmlsql_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"xmlsql"
	"xmlsql/internal/workloads"
)

// plannerFixture shreds a workload and returns the serial-engine reference
// result for each query.
func plannerFixture(t *testing.T, s *xmlsql.Schema, doc *xmlsql.Document, queries []string) (*xmlsql.Store, map[string]*xmlsql.Result) {
	t.Helper()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	want := make(map[string]*xmlsql.Result, len(queries))
	for _, q := range queries {
		tr, err := xmlsql.Translate(s, xmlsql.MustParseQuery(q))
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		res, err := xmlsql.ExecuteWithOptions(store, tr.Query, xmlsql.ExecuteOptions{Parallelism: 1})
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want[q] = res
	}
	return store, want
}

// runConcurrentEval hammers one shared Planner and store from parallel
// goroutines and checks every result against the serial reference — rows and
// row order both. Run with -race.
func runConcurrentEval(t *testing.T, s *xmlsql.Schema, doc *xmlsql.Document, queries []string) {
	t.Helper()
	store, want := plannerFixture(t, s, doc, queries)
	p := xmlsql.NewPlanner(s)
	const goroutines = 12
	const iters = 25
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := p.Eval(store, q)
				if err != nil {
					errs <- fmt.Errorf("%s: %v", q, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, want[q].Rows) {
					errs <- fmt.Errorf("%s: concurrent Eval diverged from serial engine", q)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("stats account for %d lookups, want %d", st.Hits+st.Misses, goroutines*iters)
	}
	// Every query misses at most once per racing goroutine; with the hot
	// loop above, hits must dominate.
	if st.Hits < int64(goroutines*iters/2) {
		t.Fatalf("cache barely hit: %+v", st)
	}
	if st.Entries > len(queries) {
		t.Fatalf("%d cached plans for %d distinct queries", st.Entries, len(queries))
	}
}

func TestPlannerConcurrentEvalTree(t *testing.T) {
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 40, CategoriesPerItem: 2, NumCategories: 10, Seed: 1,
	})
	runConcurrentEval(t, workloads.XMark(), doc, []string{
		workloads.QueryQ1,
		workloads.QueryQ2,
		"//Item/name",
		"//Item",
		"/Site/Regions/SouthAmerica/Item/name",
	})
}

func TestPlannerConcurrentEvalRecursive(t *testing.T) {
	doc := workloads.GenerateS3(workloads.S3Config{Fanout: 3, MaxDepth: 5, Seed: 1})
	runConcurrentEval(t, workloads.S3(), doc, []string{
		workloads.QueryQ4,
		workloads.QueryQ5,
		workloads.QueryQ6,
		workloads.QueryQ7,
	})
}

func TestPlannerSchemaFingerprintInvalidation(t *testing.T) {
	xm := workloads.XMark()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(xm, store, workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 3, Seed: 1,
	})); err != nil {
		t.Fatal(err)
	}
	p := xmlsql.NewPlanner(xm)
	if _, err := p.Eval(store, workloads.QueryQ1); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Eval(store, workloads.QueryQ1); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss", st)
	}

	// Install the Edge mapping for the same document structure: same query
	// text, different fingerprint — the cached tree plan must not be served.
	es, err := xmlsql.EdgeMapping(workloads.XMarkFull())
	if err != nil {
		t.Fatal(err)
	}
	estore := xmlsql.NewStore()
	if _, err := xmlsql.Shred(es, estore, workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 3, Seed: 1,
	})); err != nil {
		t.Fatal(err)
	}
	p.SetSchema(es)
	res, err := p.Eval(estore, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := xmlsql.Translate(es, xmlsql.MustParseQuery(workloads.QueryQ1))
	if err != nil {
		t.Fatal(err)
	}
	wantRes, err := xmlsql.Execute(estore, tr.Query)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MultisetEqual(wantRes) {
		t.Fatal("planner served a stale plan after SetSchema")
	}
	st = p.Stats()
	if st.Misses != 2 {
		t.Fatalf("expected a fresh miss under the new fingerprint, got %+v", st)
	}
	if st.Entries != 2 {
		t.Fatalf("entries = %d, want plans under both fingerprints", st.Entries)
	}
}

func TestPlannerTranslateOptionsKeyed(t *testing.T) {
	s3 := workloads.S3()
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s3, store, workloads.GenerateS3(workloads.S3Config{
		Fanout: 2, MaxDepth: 4, Seed: 1,
	})); err != nil {
		t.Fatal(err)
	}
	// A planner with non-default translate options must serve correct
	// results from its cache just like the default planner; the Options
	// component of the cache key (exercised directly in the plancache tests)
	// keeps such plans from ever aliasing the default ones.
	abl := xmlsql.NewPlannerWith(s3, xmlsql.PlannerConfig{
		Translate: xmlsql.TranslateOptions{DisableEdgeAnnotOpt: true, Unroll: 4},
		Execute:   xmlsql.ExecuteOptions{Parallelism: 2},
	})
	def := xmlsql.NewPlanner(s3)
	for i := 0; i < 2; i++ {
		got, err := abl.Eval(store, workloads.QueryQ7)
		if err != nil {
			t.Fatal(err)
		}
		want, err := def.Eval(store, workloads.QueryQ7)
		if err != nil {
			t.Fatal(err)
		}
		if !got.MultisetEqual(want) {
			t.Fatal("ablation planner disagrees with default planner")
		}
	}
	st := abl.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("ablation planner stats = %+v, want 1 hit / 1 miss", st)
	}
}
