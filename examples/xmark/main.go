// XMark example: the paper's §2 motivating scenario end to end. Generates an
// XMark document (Figure 1 schema), shreds it, and runs Q1 and Q2 through
// both translators, timing the executions — a miniature of the E1/E2
// experiments.
package main

import (
	"fmt"
	"log"
	"time"

	"xmlsql"
	"xmlsql/internal/workloads"
)

func main() {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 500,
		CategoriesPerItem: 2,
		NumCategories:     100,
		Seed:              7,
	})

	store := xmlsql.NewStore()
	results, err := xmlsql.Shred(s, store, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("shredded %d elements into %d tuples\n\n", doc.CountNodes(), results[0].Tuples)

	for _, query := range []string{workloads.QueryQ1, workloads.QueryQ2} {
		q := xmlsql.MustParseQuery(query)
		naive, err := xmlsql.TranslateNaive(s, q)
		if err != nil {
			log.Fatal(err)
		}
		pruned, err := xmlsql.Translate(s, q)
		if err != nil {
			log.Fatal(err)
		}

		fmt.Printf("== %s\n", query)
		fmt.Printf("baseline [9] (%s):\n%s\n", naive.Shape(), naive.SQL())
		fmt.Printf("\nlossless-from-XML (%s):\n%s\n", pruned.Query.Shape(), pruned.Query.SQL())

		nres, nt := run(store, naive)
		pres, pt := run(store, pruned.Query)
		if !nres.MultisetEqual(pres) {
			log.Fatalf("translations disagree for %s", query)
		}
		fmt.Printf("\n%d rows; baseline %v, pruned %v (%.1fx)\n\n",
			pres.Len(), nt, pt, float64(nt)/float64(pt))
	}
}

func run(store *xmlsql.Store, q *xmlsql.SQL) (*xmlsql.Result, time.Duration) {
	start := time.Now()
	res, err := xmlsql.Execute(store, q)
	if err != nil {
		log.Fatal(err)
	}
	return res, time.Since(start)
}
