// Schema-oblivious storage example (§5.3): the same XMark data stored in a
// single generic Edge(id, parentid, tag, value) relation. The "lossless from
// XML" constraint holds for Edge storage too, so Q8 collapses from a
// union of 6-way self-joins (schema-aware baseline) — or a recursive query
// (no schema information at all) — to a single 2-way self-join.
package main

import (
	"fmt"
	"log"

	"xmlsql"
	"xmlsql/internal/workloads"
)

func main() {
	base := workloads.XMarkFull()
	edgeSchema, err := xmlsql.EdgeMapping(base)
	if err != nil {
		log.Fatal(err)
	}
	doc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: 100,
		CategoriesPerItem: 2,
		NumCategories:     40,
		Seed:              3,
	})

	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(edgeSchema, store, doc); err != nil {
		log.Fatal(err)
	}
	edge := store.Table("Edge")
	fmt.Printf("Edge relation: %d rows (one per element), columns:", edge.Len())
	for _, c := range edge.Schema().Columns {
		fmt.Printf(" %s", c.Name)
	}
	fmt.Println()
	fmt.Println()

	q := xmlsql.MustParseQuery(workloads.QueryQ8)
	naive, err := xmlsql.TranslateNaive(edgeSchema, q)
	if err != nil {
		log.Fatal(err)
	}
	pruned, err := xmlsql.Translate(edgeSchema, q)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== Q8 = %s over Edge storage\n\n", workloads.QueryQ8)
	fmt.Printf("baseline [9] over the Edge mapping (%s) — first branch only:\n", naive.Shape())
	fmt.Println(firstBranch(naive.SQL()))
	fmt.Printf("\nlossless-from-XML (%s):\n%s\n\n", pruned.Query.Shape(), pruned.Query.SQL())

	nres, err := xmlsql.Execute(store, naive)
	if err != nil {
		log.Fatal(err)
	}
	pres, err := xmlsql.Execute(store, pruned.Query)
	if err != nil {
		log.Fatal(err)
	}
	if !nres.MultisetEqual(pres) {
		log.Fatal("translations disagree")
	}
	fmt.Printf("%d item categories returned by both translations\n", pres.Len())
}

func firstBranch(sql string) string {
	for i := 0; i+11 <= len(sql); i++ {
		if sql[i:i+9] == "union all" {
			return sql[:i]
		}
	}
	return sql
}
