// Recursive-schema example: the S3 mapping of Figure 7. Shows how the
// baseline translator needs WITH RECURSIVE common table expressions while
// the pruning translator reduces Q4–Q6 to one- or two-join queries and Q7 to
// a recursive query that skips the root join (§5.2).
package main

import (
	"fmt"
	"log"

	"xmlsql"
	"xmlsql/internal/workloads"
)

func main() {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.S3Config{Fanout: 3, MaxDepth: 6, Seed: 11})

	store := xmlsql.NewStore()
	results, err := xmlsql.Shred(s, store, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recursive document: %d elements -> %d tuples\n",
		doc.CountNodes(), results[0].Tuples)
	fmt.Printf("schema shape: %s\n\n", s.Classify())

	queries := []struct {
		name, q string
	}{
		{"Q4", workloads.QueryQ4},
		{"Q5", workloads.QueryQ5},
		{"Q6", workloads.QueryQ6},
		{"Q7", workloads.QueryQ7},
	}
	for _, qq := range queries {
		q := xmlsql.MustParseQuery(qq.q)
		naive, err := xmlsql.TranslateNaive(s, q)
		if err != nil {
			log.Fatal(err)
		}
		pruned, err := xmlsql.Translate(s, q)
		if err != nil {
			log.Fatal(err)
		}
		nres, err := xmlsql.Execute(store, naive)
		if err != nil {
			log.Fatal(err)
		}
		pres, err := xmlsql.Execute(store, pruned.Query)
		if err != nil {
			log.Fatal(err)
		}
		if !nres.MultisetEqual(pres) {
			log.Fatalf("%s: translations disagree", qq.name)
		}

		fmt.Printf("== %s = %s  (%d matching elements)\n", qq.name, qq.q, pres.Len())
		fmt.Printf("baseline: %s | pruned: %s\n", naive.Shape(), pruned.Query.Shape())
		fmt.Printf("pruned SQL:\n%s\n\n", pruned.Query.SQL())
	}
}
