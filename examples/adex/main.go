// ADEX example: the classified-advertising workload standing in for the NAA
// ADEX dataset of the paper's referenced evaluation [10]. Runs the query
// suite and prints a small speedup table — the shape behind the paper's
// "1.15x to 93x" claim.
package main

import (
	"fmt"
	"log"
	"time"

	"xmlsql"
	"xmlsql/internal/workloads"
)

func main() {
	s := workloads.ADEX()
	doc := workloads.GenerateADEX(workloads.ADEXConfig{AdsPerSection: 1000, Seed: 9})

	store := xmlsql.NewStore()
	results, err := xmlsql.Shred(s, store, doc)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("ADEX instance: %d elements -> %d tuples\n\n", doc.CountNodes(), results[0].Tuples)

	queries := []string{
		workloads.QueryAdexAllPhones,
		workloads.QueryAdexAllTitles,
		workloads.QueryAdexVehicleEmails,
		workloads.QueryAdexPrices,
		"/Classifieds/Employment/Ad/Title",
		"//Contact/Email",
	}
	fmt.Printf("%-40s %12s %12s %9s\n", "query", "baseline", "pruned", "speedup")
	for _, query := range queries {
		q := xmlsql.MustParseQuery(query)
		naive, err := xmlsql.TranslateNaive(s, q)
		if err != nil {
			log.Fatal(err)
		}
		pruned, err := xmlsql.Translate(s, q)
		if err != nil {
			log.Fatal(err)
		}
		nt := timeQuery(store, naive)
		pt := timeQuery(store, pruned.Query)
		fmt.Printf("%-40s %12v %12v %8.2fx\n", query, nt, pt, float64(nt)/float64(pt))
	}
}

func timeQuery(store *xmlsql.Store, q *xmlsql.SQL) time.Duration {
	const reps = 5
	if _, err := xmlsql.Execute(store, q); err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := xmlsql.Execute(store, q); err != nil {
			log.Fatal(err)
		}
	}
	return time.Since(start) / reps
}
