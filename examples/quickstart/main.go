// Quickstart: define a small annotated schema, shred a document, and run a
// path expression through both translators — the minimal end-to-end tour of
// the public API.
package main

import (
	"fmt"
	"log"

	"xmlsql"
)

// The mapping: a library of books; every book row lands in the Book
// relation, with shelf membership distinguished by the parentcode column —
// exactly the annotation style of the paper's Figure 1.
const librarySchema = `
schema library
root lib

node lib     label=Library rel=Library
node fiction label=Fiction
node science label=Science
node fbook   label=Book    rel=Book
node sbook   label=Book    rel=Book
node ftitle  label=Title   col=title
node stitle  label=Title   col=title

edge lib -> fiction
edge lib -> science
edge fiction -> fbook [shelf=1]
edge science -> sbook [shelf=2]
edge fbook -> ftitle
edge sbook -> stitle
`

const libraryDoc = `
<Library>
  <Fiction>
    <Book><Title>The Dispossessed</Title></Book>
    <Book><Title>Solaris</Title></Book>
  </Fiction>
  <Science>
    <Book><Title>Goedel Escher Bach</Title></Book>
    <Book><Title>The Selfish Gene</Title></Book>
  </Science>
</Library>
`

func main() {
	s := xmlsql.MustParseSchema(librarySchema)
	doc, err := xmlsql.ParseDocumentString(libraryDoc)
	if err != nil {
		log.Fatal(err)
	}

	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		log.Fatal(err)
	}
	fmt.Println("relational instance after shredding:")
	fmt.Println(store.Dump())

	// "All book titles" — matches books on both shelves.
	q := xmlsql.MustParseQuery("//Book/Title")

	naive, err := xmlsql.TranslateNaive(s, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("baseline translation [9] (%s):\n%s\n\n", naive.Shape(), naive.SQL())

	pruned, err := xmlsql.Translate(s, q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with the lossless-from-XML constraint (%s):\n%s\n\n", pruned.Query.Shape(), pruned.Query.SQL())

	res, err := xmlsql.Execute(store, pruned.Query)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("titles:", res.Strings())

	// The constraint is checkable: the instance reconstructs to the
	// original document.
	if err := xmlsql.CheckLossless(s, store); err != nil {
		log.Fatal(err)
	}
	fmt.Println("lossless-from-XML constraint verified")
}
