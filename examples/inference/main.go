// Inference example: the extensions working together with no hand-written
// schema. Raw XML documents arrive; a mapping is inferred from them (§5.3's
// assumption made real), the data is shredded with order preservation, and
// predicate path queries — the §6 extension — run through the
// lossless-constraint-aware translator.
package main

import (
	"fmt"
	"log"

	"xmlsql"
)

var docs = []string{
	`<Orders>
	  <Order>
	    <Customer>ada</Customer>
	    <Line><Sku>sku-1</Sku><Qty>2</Qty></Line>
	    <Line><Sku>sku-2</Sku><Qty>1</Qty></Line>
	  </Order>
	  <Order>
	    <Customer>grace</Customer>
	    <Line><Sku>sku-1</Sku><Qty>5</Qty></Line>
	  </Order>
	</Orders>`,
	`<Orders>
	  <Order>
	    <Customer>ada</Customer>
	    <Line><Sku>sku-3</Sku><Qty>7</Qty></Line>
	  </Order>
	</Orders>`,
}

func main() {
	var parsed []*xmlsql.Document
	for _, d := range docs {
		doc, err := xmlsql.ParseDocumentString(d)
		if err != nil {
			log.Fatal(err)
		}
		parsed = append(parsed, doc)
	}

	// 1. Infer the mapping from the documents themselves.
	schema, err := xmlsql.InferSchema(parsed...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("inferred mapping:")
	fmt.Println(schema)

	// 2. Shred with order preservation: reconstruction is byte-exact.
	store := xmlsql.NewStore()
	if _, err := xmlsql.ShredWithOptions(schema, store, xmlsql.ShredOptions{WithOrder: true}, parsed...); err != nil {
		log.Fatal(err)
	}
	fmt.Println("relational instance:")
	fmt.Println(store.Dump())

	rebuilt, err := xmlsql.Reconstruct(schema, store)
	if err != nil {
		log.Fatal(err)
	}
	exact := len(rebuilt) == len(parsed)
	for i := range rebuilt {
		exact = exact && rebuilt[i].Equal(parsed[i])
	}
	fmt.Printf("byte-exact reconstruction of %d documents: %v\n\n", len(parsed), exact)

	// 3. A predicate query: which customers ordered sku-1?
	for _, query := range []string{
		"//Order[Customer='ada']/Line/Sku",
		"//Line[Sku='sku-1']/Qty",
		"//Order/Customer",
	} {
		q := xmlsql.MustParseQuery(query)
		pruned, err := xmlsql.Translate(schema, q)
		if err != nil {
			log.Fatal(err)
		}
		naive, err := xmlsql.TranslateNaive(schema, q)
		if err != nil {
			log.Fatal(err)
		}
		res, err := xmlsql.Execute(store, pruned.Query)
		if err != nil {
			log.Fatal(err)
		}
		nres, err := xmlsql.Execute(store, naive)
		if err != nil {
			log.Fatal(err)
		}
		if !res.MultisetEqual(nres) {
			log.Fatalf("%s: translations disagree", query)
		}
		fmt.Printf("== %s  (baseline %s | pruned %s)\n", query, naive.Shape(), pruned.Query.Shape())
		fmt.Println(pruned.Query.SQL())
		fmt.Println("->", res.Strings())
		fmt.Println()
	}
}
