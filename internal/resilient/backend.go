package resilient

import (
	"context"
	"fmt"
	"sync/atomic"

	"xmlsql/internal/backend"
	"xmlsql/internal/engine"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// Options configures Wrap.
type Options struct {
	// Retry tunes the transient-failure retry loop (zero value = defaults).
	Retry RetryPolicy
	// Breaker tunes the primary's circuit breaker (zero value = defaults).
	Breaker BreakerConfig
	// Fallback, when non-nil, serves queries the primary could not: breaker
	// open, retries exhausted, or a permanent primary error. The usual
	// choice is a Mem backend holding a shredded copy of the same documents
	// (set MirrorLoads so it stays resident and current). Canceled and
	// budget-exceeded errors never fall back — those belong to the caller.
	Fallback backend.Backend
	// MirrorLoads applies EnsureSchema and Load to the Fallback as well as
	// the primary, keeping the degraded copy row-for-row current.
	MirrorLoads bool
}

// Stats is a point-in-time snapshot of a wrapped backend's counters. The
// JSON tags are the /stats wire names the serving front end exposes per
// tenant.
type Stats struct {
	// Executes counts Execute calls.
	Executes int64 `json:"executes"`
	// Retries counts primary re-attempts beyond each first try.
	Retries int64 `json:"retries"`
	// PrimaryFailures counts Execute calls the primary definitively failed
	// (after retries).
	PrimaryFailures int64 `json:"primary_failures"`
	// BreakerTrips counts breaker openings.
	BreakerTrips int64 `json:"breaker_trips"`
	// Fallbacks counts queries served by (or attempted on) the fallback.
	Fallbacks int64 `json:"fallbacks"`
}

// Backend wraps a primary backend.Backend with retry, circuit breaking, and
// graceful degradation. It implements backend.Backend, so it drops into any
// caller — xmlsql.Planner included — unchanged.
type Backend struct {
	primary backend.Backend
	opts    Options
	breaker *Breaker

	executes        atomic.Int64
	retries         atomic.Int64
	primaryFailures atomic.Int64
	fallbacks       atomic.Int64
}

// Wrap builds the resilient wrapper around primary.
func Wrap(primary backend.Backend, opts Options) *Backend {
	return &Backend{primary: primary, opts: opts, breaker: NewBreaker(opts.Breaker)}
}

// Name implements backend.Backend.
func (b *Backend) Name() string { return "resilient(" + b.primary.Name() + ")" }

// Breaker exposes the primary's circuit breaker (tests and dashboards).
func (b *Backend) Breaker() *Breaker { return b.breaker }

// Primary exposes the wrapped backend, so observability layers can reach
// counters the wrapper does not re-export (e.g. the mem engine's shared-work
// memo counters) without holding a second reference to it.
func (b *Backend) Primary() backend.Backend { return b.primary }

// Stats snapshots the counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Executes:        b.executes.Load(),
		Retries:         b.retries.Load(),
		PrimaryFailures: b.primaryFailures.Load(),
		BreakerTrips:    b.breaker.Trips(),
		Fallbacks:       b.fallbacks.Load(),
	}
}

// EnsureSchema implements backend.Backend, mirroring to the fallback when
// configured.
func (b *Backend) EnsureSchema(s *schema.Schema) error {
	if err := b.primary.EnsureSchema(s); err != nil {
		return err
	}
	if b.opts.MirrorLoads && b.opts.Fallback != nil {
		return b.opts.Fallback.EnsureSchema(s)
	}
	return nil
}

// Load implements backend.Backend, mirroring to the fallback when
// configured. The primary's shred results are returned; the mirror must
// agree on tuple counts or the load fails loudly rather than leaving a
// degraded copy that would diverge.
func (b *Backend) Load(s *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error) {
	results, err := b.primary.Load(s, docs...)
	if err != nil {
		return nil, err
	}
	if b.opts.MirrorLoads && b.opts.Fallback != nil {
		mirror, err := b.opts.Fallback.Load(s, docs...)
		if err != nil {
			return nil, fmt.Errorf("resilient: mirroring load to fallback: %w", err)
		}
		for i := range results {
			if results[i].Tuples != mirror[i].Tuples {
				return nil, fmt.Errorf("resilient: fallback mirror diverged on document %d: %d tuples vs %d",
					i, mirror[i].Tuples, results[i].Tuples)
			}
		}
	}
	return results, nil
}

// Execute implements backend.Backend: breaker check, retried primary
// attempt, then degradation.
func (b *Backend) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	b.executes.Add(1)
	if !b.breaker.Allow() {
		return b.degrade(ctx, q, ErrBreakerOpen)
	}
	var res *engine.Result
	retries, err := Retry(ctx, b.opts.Retry, func() error {
		var e error
		res, e = b.primary.Execute(ctx, q)
		return e
	})
	b.retries.Add(int64(retries))
	if err == nil {
		b.breaker.Record(false)
		return res, nil
	}
	switch Classify(err) {
	case ClassCanceled, ClassBudget:
		// The caller's context or the query's own budget: not the backend's
		// fault, so the breaker doesn't hear about it, and no fallback — the
		// fallback would be cancelled/over budget just the same.
		b.breaker.Record(false)
		return nil, err
	}
	b.primaryFailures.Add(1)
	b.breaker.Record(true)
	return b.degrade(ctx, q, err)
}

// degrade serves from the fallback, or reports why it could not.
func (b *Backend) degrade(ctx context.Context, q *sqlast.Query, cause error) (*engine.Result, error) {
	if b.opts.Fallback == nil {
		return nil, fmt.Errorf("resilient: %s unavailable and no fallback configured: %w", b.primary.Name(), cause)
	}
	b.fallbacks.Add(1)
	res, err := b.opts.Fallback.Execute(ctx, q)
	if err != nil {
		return nil, fmt.Errorf("resilient: fallback %s also failed: %v (primary: %w)",
			b.opts.Fallback.Name(), err, cause)
	}
	return res, nil
}

// Close implements backend.Backend, closing the primary and (when mirroring
// owns it) the fallback.
func (b *Backend) Close() error {
	err := b.primary.Close()
	if b.opts.Fallback != nil {
		if ferr := b.opts.Fallback.Close(); err == nil {
			err = ferr
		}
	}
	return err
}
