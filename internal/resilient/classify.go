// Package resilient makes query serving survive a misbehaving backend.
//
// The translation pipeline is pure, but the backend that executes its SQL is
// not: a real database stalls, drops connections, and fails queries halfway
// through their resultsets. This package supplies the serving-side defenses,
// composable but designed to stack into one wrapper (Wrap):
//
//   - Classify sorts errors into transient (retry), permanent (don't),
//     budget-exceeded (the query itself is too expensive — retrying cannot
//     help), and canceled (the caller gave up).
//   - Retry re-runs transient failures under exponential backoff with
//     jitter, respecting the caller's context.
//   - Breaker is a per-backend circuit breaker: after enough consecutive
//     failures it fails fast instead of piling more work on a sick backend,
//     probing again after a cooldown.
//   - Wrap composes the above around any backend.Backend and optionally
//     degrades to a fallback backend (typically the in-memory Mem with a
//     resident shredded copy) when the primary is tripped or exhausted.
package resilient

import (
	"context"
	"database/sql/driver"
	"errors"

	"xmlsql/internal/engine"
)

// Class is the retry-relevant category of an execution error.
type Class int

const (
	// ClassPermanent errors fail the same way every time (SQL errors,
	// missing tables, arity mismatches): retrying is waste, and they count
	// against the backend's breaker because a backend returning them for
	// translated queries is misconfigured.
	ClassPermanent Class = iota
	// ClassTransient errors are flaky-infrastructure failures (connection
	// resets, injected faults, timeouts inside the backend): retrying with
	// backoff is the correct response.
	ClassTransient
	// ClassBudget errors mean the query exceeded a resource guard
	// (engine.ResourceError): the query is the problem, not the backend, so
	// it is neither retried nor counted against the breaker.
	ClassBudget
	// ClassCanceled errors mean the caller's context was cancelled or its
	// deadline passed: propagate immediately, never retry, never fall back
	// (the caller is gone either way).
	ClassCanceled
)

// String names the class for logs and reports.
func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassBudget:
		return "budget"
	case ClassCanceled:
		return "canceled"
	default:
		return "permanent"
	}
}

// temporary is the net.Error-style convention drivers use to mark
// retry-worthy failures; fakedb's InjectedError implements it.
type temporary interface{ Temporary() bool }

// Classify sorts err into its Class, walking the wrapped-error chain.
// nil classifies as ClassTransient-free success and must not be passed.
func Classify(err error) Class {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return ClassCanceled
	}
	var re *engine.ResourceError
	if errors.As(err, &re) {
		return ClassBudget
	}
	if errors.Is(err, driver.ErrBadConn) {
		return ClassTransient
	}
	var tmp temporary
	if errors.As(err, &tmp) && tmp.Temporary() {
		return ClassTransient
	}
	return ClassPermanent
}
