package resilient

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is an atomically advanced clock shared between the test and
// concurrent breaker probes.
type fakeClock struct {
	ns atomic.Int64
}

func (c *fakeClock) now() time.Time          { return time.Unix(0, c.ns.Load()) }
func (c *fakeClock) advance(d time.Duration) { c.ns.Add(int64(d)) }

// trip drives a closed breaker into the open state.
func (c *fakeClock) trip(t *testing.T, b *Breaker, threshold int) {
	t.Helper()
	for i := 0; i < threshold; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker refused request %d", i)
		}
		b.Record(true)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("breaker state after %d failures = %v, want open", threshold, b.State())
	}
}

// TestBreakerHalfOpenAdmitsSingleProbe hammers an open breaker with
// concurrent Allow calls right after the cooldown elapses: exactly one
// goroutine may win the half-open probe slot, everyone else must be refused
// until the probe settles. Run under -race this also exercises the lock
// discipline of the open -> half-open transition.
func TestBreakerHalfOpenAdmitsSingleProbe(t *testing.T) {
	clock := &fakeClock{}
	cfg := BreakerConfig{FailureThreshold: 3, Cooldown: time.Second}
	b := NewBreakerAt(cfg, clock.now)
	clock.trip(t, b, cfg.FailureThreshold)

	// Cooldown not yet elapsed: all concurrent callers are refused.
	var admitted atomic.Int64
	race := func(goroutines int) int64 {
		admitted.Store(0)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < goroutines; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				<-start
				if b.Allow() {
					admitted.Add(1)
				}
			}()
		}
		close(start)
		wg.Wait()
		return admitted.Load()
	}
	if n := race(16); n != 0 {
		t.Fatalf("open breaker admitted %d requests before cooldown", n)
	}

	// Cooldown elapsed: exactly one probe slot, no matter how many race.
	clock.advance(cfg.Cooldown)
	if n := race(16); n != 1 {
		t.Fatalf("half-open transition admitted %d probes, want 1", n)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// While the probe is unsettled, further waves get nothing.
	if n := race(8); n != 0 {
		t.Fatalf("half-open breaker admitted %d extra requests", n)
	}

	// Probe succeeds: breaker closes and admits everyone again.
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("state after successful probe = %v, want closed", b.State())
	}
	if n := race(8); n != 8 {
		t.Fatalf("closed breaker admitted %d/8 requests", n)
	}

	// Trip again; this time the probe fails and the breaker re-opens for a
	// fresh cooldown.
	clock.trip(t, b, cfg.FailureThreshold)
	clock.advance(cfg.Cooldown)
	if n := race(16); n != 1 {
		t.Fatalf("second half-open transition admitted %d probes, want 1", n)
	}
	b.Record(true)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	if n := race(8); n != 0 {
		t.Fatalf("re-opened breaker admitted %d requests before cooldown", n)
	}
	clock.advance(cfg.Cooldown)
	if n := race(16); n != 1 {
		t.Fatalf("third half-open transition admitted %d probes, want 1", n)
	}
	b.Record(false)
	if got := b.Trips(); got != 3 {
		t.Fatalf("trips = %d, want 3", got)
	}
}

// TestBreakerConcurrentAllowRecord interleaves Allow/Record from many
// goroutines while the clock advances, checking the breaker never deadlocks
// or panics and ends in a valid state. It is a race-detector workout more
// than an assertion-heavy test.
func TestBreakerConcurrentAllowRecord(t *testing.T) {
	clock := &fakeClock{}
	b := NewBreakerAt(BreakerConfig{FailureThreshold: 2, Cooldown: time.Millisecond}, clock.now)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				if b.Allow() {
					b.Record((i+g)%3 == 0)
				}
				if i%10 == 0 {
					clock.advance(time.Millisecond)
				}
			}
		}()
	}
	wg.Wait()
	switch st := b.State(); st {
	case BreakerClosed, BreakerOpen, BreakerHalfOpen:
	default:
		t.Fatalf("invalid final state %v", st)
	}
}
