package resilient

import (
	"context"
	"math/rand"
	"time"
)

// RetryPolicy tunes Retry's exponential backoff. The zero value means the
// defaults below, so callers can leave it empty.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first;
	// values < 1 mean the default (8 — generous, because under injected 30%
	// fault rates the chaos suite must converge deterministically).
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; 0 means 1ms.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff; 0 means 250ms.
	MaxDelay time.Duration
	// Multiplier grows the delay each retry; values <= 1 mean 2.
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized (0..1);
	// negative means the default 0.5. Jitter prevents synchronized retry
	// storms when many serving goroutines hit the same backend hiccup.
	Jitter float64
}

const (
	defaultMaxAttempts = 8
	defaultBaseDelay   = time.Millisecond
	defaultMaxDelay    = 250 * time.Millisecond
	defaultMultiplier  = 2.0
	defaultJitter      = 0.5
)

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts < 1 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	if p.Multiplier <= 1 {
		p.Multiplier = defaultMultiplier
	}
	if p.Jitter < 0 || p.Jitter > 1 {
		p.Jitter = defaultJitter
	}
	return p
}

// Retry runs fn until it succeeds, fails non-transiently, exhausts the
// policy's attempts, or the context ends. Only ClassTransient errors are
// retried; permanent, budget, and canceled errors return immediately. It
// reports how many retries ran (attempts beyond the first) alongside fn's
// final error, so callers can account retry volume.
func Retry(ctx context.Context, p RetryPolicy, fn func() error) (retries int, err error) {
	p = p.withDefaults()
	delay := p.BaseDelay
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || Classify(err) != ClassTransient || attempt >= p.MaxAttempts {
			return attempt - 1, err
		}
		// Jittered sleep: delay*(1-J) .. delay, bounded by the context.
		d := delay
		if p.Jitter > 0 {
			d -= time.Duration(p.Jitter * rand.Float64() * float64(delay))
		}
		t := time.NewTimer(d)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return attempt - 1, ctx.Err()
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}
