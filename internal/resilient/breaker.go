package resilient

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned (possibly wrapped) when the circuit breaker is
// refusing traffic to a backend that has been failing. Callers with a
// fallback never see it; callers without one can errors.Is against it.
var ErrBreakerOpen = errors.New("resilient: circuit breaker open")

// BreakerState is the breaker's current disposition.
type BreakerState int

const (
	// BreakerClosed: traffic flows, consecutive failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: traffic is refused until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe request is in flight; its outcome decides
	// between closing and re-opening.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// BreakerConfig tunes a Breaker; the zero value means the defaults.
type BreakerConfig struct {
	// FailureThreshold is how many consecutive failures trip the breaker;
	// values < 1 mean 5.
	FailureThreshold int
	// Cooldown is how long an open breaker refuses traffic before allowing
	// a half-open probe; 0 means 100ms.
	Cooldown time.Duration
}

const (
	defaultFailureThreshold = 5
	defaultCooldown         = 100 * time.Millisecond
)

// Breaker is a consecutive-failure circuit breaker, safe for concurrent use.
// Closed it passes everything; after FailureThreshold consecutive failures
// it opens and fails fast for Cooldown; then a single half-open probe either
// closes it (success) or re-opens it (failure). Failing fast matters twice
// over: callers degrade to their fallback immediately instead of paying a
// full retry cycle per query, and the sick backend gets quiet time to
// recover instead of a retry storm.
type Breaker struct {
	mu        sync.Mutex
	cfg       BreakerConfig
	state     BreakerState
	failures  int
	openUntil time.Time
	trips     int64
	// now is stubbed by tests to drive the cooldown clock.
	now func() time.Time
}

// NewBreaker creates a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	return NewBreakerAt(cfg, time.Now)
}

// NewBreakerAt creates a closed breaker on an explicit clock, letting tests
// step the cooldown without sleeping.
func NewBreakerAt(cfg BreakerConfig, now func() time.Time) *Breaker {
	if cfg.FailureThreshold < 1 {
		cfg.FailureThreshold = defaultFailureThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = defaultCooldown
	}
	return &Breaker{cfg: cfg, now: now}
}

// Allow reports whether a request may proceed. In the open state it starts
// returning true again (transitioning to half-open) once the cooldown has
// elapsed; in half-open only the single in-flight probe was admitted, so
// further requests are refused until Record settles the probe.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Before(b.openUntil) {
			return false
		}
		b.state = BreakerHalfOpen
		return true
	default: // half-open, probe already admitted
		return false
	}
}

// Record settles one allowed request's outcome. failed=true counts toward
// (or confirms) tripping; failed=false resets the failure streak and closes
// a half-open breaker.
func (b *Breaker) Record(failed bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !failed {
		b.state = BreakerClosed
		b.failures = 0
		return
	}
	b.failures++
	if b.state == BreakerHalfOpen || b.failures >= b.cfg.FailureThreshold {
		b.trip()
	}
}

// trip opens the breaker; callers hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openUntil = b.now().Add(b.cfg.Cooldown)
	b.failures = 0
	b.trips++
}

// State returns the breaker's current state (open decays to half-open only
// via Allow, so State may report open after the cooldown has elapsed).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.trips
}
