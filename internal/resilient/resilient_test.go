package resilient_test

import (
	"context"
	"database/sql/driver"
	"errors"
	"fmt"
	"testing"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/engine"
	"xmlsql/internal/resilient"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// tempErr is a transient failure in the net.Error Temporary() convention.
type tempErr struct{ msg string }

func (e *tempErr) Error() string   { return e.msg }
func (e *tempErr) Temporary() bool { return true }

// scripted is a backend whose Execute pops errors from a script; nil entries
// succeed. After the script is exhausted every call succeeds. It lets the
// wrapper's control flow be tested without a driver stack underneath.
type scripted struct {
	name    string
	script  []error
	calls   int
	rows    int
	loads   int
	schemas int
	closed  bool
}

func (s *scripted) Name() string { return s.name }

func (s *scripted) EnsureSchema(*schema.Schema) error {
	s.schemas++
	return nil
}

func (s *scripted) Load(_ *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error) {
	s.loads++
	out := make([]*shred.Result, len(docs))
	for i := range out {
		out[i] = &shred.Result{Tuples: 7}
	}
	return out, nil
}

func (s *scripted) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	s.calls++
	if s.calls-1 < len(s.script) {
		if err := s.script[s.calls-1]; err != nil {
			return nil, err
		}
	}
	s.rows++
	return &engine.Result{Cols: []string{"v"}}, nil
}

func (s *scripted) Close() error {
	s.closed = true
	return nil
}

// fastRetry keeps test wall-clock negligible.
var fastRetry = resilient.RetryPolicy{MaxAttempts: 4, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want resilient.Class
	}{
		{context.Canceled, resilient.ClassCanceled},
		{fmt.Errorf("wrap: %w", context.DeadlineExceeded), resilient.ClassCanceled},
		{&engine.ResourceError{Resource: engine.ResourceRows, Limit: 10}, resilient.ClassBudget},
		{fmt.Errorf("exec: %w", &engine.ResourceError{Resource: engine.ResourceCTEIterations, Limit: 5}), resilient.ClassBudget},
		{driver.ErrBadConn, resilient.ClassTransient},
		{&tempErr{"flaky"}, resilient.ClassTransient},
		{fmt.Errorf("sql: %w", &tempErr{"flaky"}), resilient.ClassTransient},
		{errors.New("syntax error"), resilient.ClassPermanent},
	}
	for _, c := range cases {
		if got := resilient.Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestRetryTransientUntilSuccess(t *testing.T) {
	calls := 0
	retries, err := resilient.Retry(context.Background(), fastRetry, func() error {
		calls++
		if calls < 3 {
			return &tempErr{"not yet"}
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry: %v", err)
	}
	if calls != 3 || retries != 2 {
		t.Fatalf("calls = %d retries = %d, want 3 calls / 2 retries", calls, retries)
	}
}

func TestRetryPermanentImmediately(t *testing.T) {
	calls := 0
	perm := errors.New("no such table")
	_, err := resilient.Retry(context.Background(), fastRetry, func() error {
		calls++
		return perm
	})
	if !errors.Is(err, perm) || calls != 1 {
		t.Fatalf("err = %v calls = %d, want the permanent error after 1 call", err, calls)
	}
}

func TestRetryExhaustsAttempts(t *testing.T) {
	calls := 0
	retries, err := resilient.Retry(context.Background(), fastRetry, func() error {
		calls++
		return &tempErr{"always"}
	})
	if err == nil || calls != fastRetry.MaxAttempts || retries != fastRetry.MaxAttempts-1 {
		t.Fatalf("err = %v calls = %d retries = %d, want exhaustion at %d attempts",
			err, calls, retries, fastRetry.MaxAttempts)
	}
}

func TestRetryStopsOnContextCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	calls := 0
	_, err := resilient.Retry(ctx, resilient.RetryPolicy{MaxAttempts: 10, BaseDelay: time.Hour}, func() error {
		calls++
		return &tempErr{"flaky"}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled from the backoff sleep", err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (no retry after cancellation)", calls)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	now := time.Unix(0, 0)
	br := resilient.NewBreakerAt(resilient.BreakerConfig{FailureThreshold: 3, Cooldown: time.Second},
		func() time.Time { return now })

	// Closed: failures below the threshold keep it closed; a success resets.
	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatal("closed breaker refused traffic")
		}
		br.Record(true)
	}
	br.Record(false)
	for i := 0; i < 2; i++ {
		br.Record(true)
	}
	if br.State() != resilient.BreakerClosed {
		t.Fatalf("state = %v, want closed (streak was reset)", br.State())
	}

	// Third consecutive failure trips it.
	br.Record(true)
	if br.State() != resilient.BreakerOpen {
		t.Fatalf("state = %v, want open", br.State())
	}
	if br.Allow() {
		t.Fatal("open breaker allowed traffic inside cooldown")
	}

	// After the cooldown one probe is admitted (half-open); a second is not.
	now = now.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("cooled-down breaker refused the half-open probe")
	}
	if br.State() != resilient.BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", br.State())
	}
	if br.Allow() {
		t.Fatal("half-open breaker admitted a second request before the probe settled")
	}

	// Probe failure re-opens; probe success closes.
	br.Record(true)
	if br.State() != resilient.BreakerOpen {
		t.Fatalf("state = %v, want re-opened after failed probe", br.State())
	}
	now = now.Add(2 * time.Second)
	if !br.Allow() {
		t.Fatal("second probe refused")
	}
	br.Record(false)
	if br.State() != resilient.BreakerClosed {
		t.Fatalf("state = %v, want closed after successful probe", br.State())
	}
	if br.Trips() != 2 {
		t.Fatalf("trips = %d, want 2", br.Trips())
	}
}

func q() *sqlast.Query { return &sqlast.Query{} }

func TestWrapRetriesTransient(t *testing.T) {
	primary := &scripted{name: "flaky", script: []error{&tempErr{"1"}, &tempErr{"2"}, nil}}
	b := resilient.Wrap(primary, resilient.Options{Retry: fastRetry})
	res, err := b.Execute(context.Background(), q())
	if err != nil || res == nil {
		t.Fatalf("Execute: %v", err)
	}
	st := b.Stats()
	if st.Executes != 1 || st.Retries != 2 || st.PrimaryFailures != 0 || st.Fallbacks != 0 {
		t.Fatalf("stats = %+v, want 1 execute / 2 retries / 0 failures", st)
	}
}

func TestWrapPermanentFallsBack(t *testing.T) {
	perm := errors.New("no such table")
	primary := &scripted{name: "broken", script: []error{perm}}
	fallback := &scripted{name: "mem"}
	b := resilient.Wrap(primary, resilient.Options{Retry: fastRetry, Fallback: fallback})
	res, err := b.Execute(context.Background(), q())
	if err != nil || res == nil {
		t.Fatalf("Execute: %v", err)
	}
	if primary.calls != 1 {
		t.Fatalf("primary called %d times for a permanent error, want 1", primary.calls)
	}
	st := b.Stats()
	if st.PrimaryFailures != 1 || st.Fallbacks != 1 {
		t.Fatalf("stats = %+v, want 1 primary failure / 1 fallback", st)
	}
}

func TestWrapNoFallbackSurfacesCause(t *testing.T) {
	perm := errors.New("no such table")
	primary := &scripted{name: "broken", script: []error{perm}}
	b := resilient.Wrap(primary, resilient.Options{Retry: fastRetry})
	_, err := b.Execute(context.Background(), q())
	if !errors.Is(err, perm) {
		t.Fatalf("err = %v, want the primary's error wrapped", err)
	}
}

func TestWrapCanceledAndBudgetDoNotFallBack(t *testing.T) {
	for _, cause := range []error{
		context.Canceled,
		&engine.ResourceError{Resource: engine.ResourceRows, Limit: 9},
	} {
		primary := &scripted{name: "p", script: []error{cause}}
		fallback := &scripted{name: "mem"}
		b := resilient.Wrap(primary, resilient.Options{Retry: fastRetry, Fallback: fallback})
		_, err := b.Execute(context.Background(), q())
		if !errors.Is(err, cause) && !errors.As(err, new(*engine.ResourceError)) {
			t.Fatalf("%v: err = %v, want the caller-owned error back", cause, err)
		}
		if fallback.calls != 0 {
			t.Fatalf("%v: fallback executed %d times, want 0", cause, fallback.calls)
		}
		if st := b.Stats(); st.Fallbacks != 0 || st.PrimaryFailures != 0 {
			t.Fatalf("%v: stats = %+v, want no failure accounting", cause, st)
		}
		if b.Breaker().State() != resilient.BreakerClosed {
			t.Fatalf("%v: breaker heard about a caller-owned error", cause)
		}
	}
}

func TestWrapBreakerTripsAndDegrades(t *testing.T) {
	// Enough permanent failures to trip a threshold-2 breaker, then the
	// breaker itself should short-circuit the primary entirely.
	perm := errors.New("down")
	primary := &scripted{name: "down", script: []error{perm, perm, perm}}
	fallback := &scripted{name: "mem"}
	b := resilient.Wrap(primary, resilient.Options{
		Retry:    fastRetry,
		Breaker:  resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		Fallback: fallback,
	})
	for i := 0; i < 4; i++ {
		if _, err := b.Execute(context.Background(), q()); err != nil {
			t.Fatalf("degraded execute %d: %v", i, err)
		}
	}
	if primary.calls != 2 {
		t.Fatalf("primary called %d times, want 2 (breaker open after trip)", primary.calls)
	}
	st := b.Stats()
	if st.BreakerTrips != 1 || st.Fallbacks != 4 {
		t.Fatalf("stats = %+v, want 1 trip / 4 fallbacks", st)
	}
	if fallback.calls != 4 {
		t.Fatalf("fallback served %d queries, want 4", fallback.calls)
	}
}

func TestWrapMirrorLoads(t *testing.T) {
	primary := &scripted{name: "p"}
	fallback := &scripted{name: "mem"}
	b := resilient.Wrap(primary, resilient.Options{Fallback: fallback, MirrorLoads: true})
	if err := b.EnsureSchema(nil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Load(nil, nil, nil); err != nil {
		t.Fatal(err)
	}
	if primary.schemas != 1 || fallback.schemas != 1 {
		t.Fatalf("EnsureSchema mirrored %d/%d, want 1/1", primary.schemas, fallback.schemas)
	}
	if primary.loads != 1 || fallback.loads != 1 {
		t.Fatalf("Load mirrored %d/%d, want 1/1", primary.loads, fallback.loads)
	}
	if b.Name() != "resilient(p)" {
		t.Fatalf("Name = %q", b.Name())
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if !primary.closed || !fallback.closed {
		t.Fatal("Close did not reach both backends")
	}
}

// Compile-time check: the wrapper is a drop-in backend.
var _ backend.Backend = (*resilient.Backend)(nil)
