package infer_test

import (
	"strings"
	"testing"

	"xmlsql/internal/core"
	"xmlsql/internal/docgen"
	"xmlsql/internal/engine"
	"xmlsql/internal/infer"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

func TestInferXMark(t *testing.T) {
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	s, err := infer.FromDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	if !shred.Conforms(s, doc) {
		t.Fatal("source document does not conform to inferred schema")
	}
	// A fresh document from the same generator also conforms (same shape).
	doc2 := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 3, CategoriesPerItem: 1, NumCategories: 2, Seed: 99})
	if !shred.Conforms(s, doc2) {
		t.Error("same-shape document does not conform to inferred schema")
	}
	// The inferred mapping is tree shaped with the expected structure: the
	// root relation is Site, and name/Category become value leaves.
	if s.RootNode().Relation != "Site" {
		t.Errorf("root relation = %q", s.RootNode().Relation)
	}
	if !strings.Contains(s.String(), "col=category") || !strings.Contains(s.String(), "col=name") {
		t.Errorf("value leaves not inferred:\n%s", s)
	}
}

func TestInferredSchemaSupportsFullPipeline(t *testing.T) {
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	s, err := infer.FromDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatal(err)
	}
	for _, query := range []string{"//Item/InCategory/Category", "/Site/Regions/Africa/Item/name", "//Category"} {
		q := pathexpr.MustParse(query)
		g, err := pathid.Build(s, q)
		if err != nil {
			t.Fatalf("%s: %v", query, err)
		}
		naive, err := translate.Naive(g)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := core.Translate(g)
		if err != nil {
			t.Fatal(err)
		}
		nres, err := engine.Execute(store, naive)
		if err != nil {
			t.Fatal(err)
		}
		pres, err := engine.Execute(store, pruned.Query)
		if err != nil {
			t.Fatal(err)
		}
		if !nres.MultisetEqual(pres) {
			t.Errorf("%s: translations disagree over inferred schema", query)
		}
		wantVals, err := shred.EvalReferenceAll(results, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(wantVals) != pres.Len() {
			t.Errorf("%s: %d rows, reference %d", query, pres.Len(), len(wantVals))
		}
	}
	// And the lossless round trip holds for the inferred mapping.
	if err := shred.CheckLossless(s, store); err != nil {
		t.Error(err)
	}
}

func TestInferThenEdgeScenario(t *testing.T) {
	// The §5.3 story end to end with no hand-written schema at all:
	// documents arrive, a schema is inferred, the data is stored
	// obliviously in the Edge relation, and queries still prune to short
	// self-joins.
	doc := workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig())
	inferred, err := infer.FromDocuments(doc)
	if err != nil {
		t.Fatal(err)
	}
	edgeSchema, err := shred.EdgeSchemaFor(inferred)
	if err != nil {
		t.Fatal(err)
	}
	store := relational.NewStore()
	if _, err := shred.ShredAll(edgeSchema, store, shred.Options{}, doc); err != nil {
		t.Fatal(err)
	}
	g, err := pathid.Build(edgeSchema, pathexpr.MustParse(workloads.QueryQ8))
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := core.Translate(g)
	if err != nil {
		t.Fatal(err)
	}
	if sh := pruned.Query.Shape(); sh.Branches != 1 || sh.Joins != 1 {
		t.Errorf("Q8 over inferred Edge mapping = %v, want one 2-way self-join:\n%s", sh, pruned.Query.SQL())
	}
	res, err := engine.Execute(store, pruned.Query)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 6*20*2 {
		t.Errorf("Q8 returned %d rows, want %d", res.Len(), 6*20*2)
	}
}

func TestInferMultipleDocuments(t *testing.T) {
	// Partial documents union into one schema.
	d1, _ := xmltree.ParseString(`<r><a><x>1</x></a></r>`)
	d2, _ := xmltree.ParseString(`<r><b><y>2</y></b><a/></r>`)
	s, err := infer.FromDocuments(d1, d2)
	if err != nil {
		t.Fatal(err)
	}
	if !shred.Conforms(s, d1) || !shred.Conforms(s, d2) {
		t.Error("source documents must conform to the union schema")
	}
	// Node 'a' had children in d1, so it is a relation even though it is a
	// leaf occurrence in d2.
	var aRel bool
	for _, n := range s.Nodes() {
		if n.Label == "a" && n.HasRelation() {
			aRel = true
		}
	}
	if !aRel {
		t.Error("node a should have been inferred as a relation")
	}
}

func TestInferErrors(t *testing.T) {
	if _, err := infer.FromDocuments(); err == nil {
		t.Error("no documents accepted")
	}
	d1, _ := xmltree.ParseString(`<a/>`)
	d2, _ := xmltree.ParseString(`<b/>`)
	if _, err := infer.FromDocuments(d1, d2); err == nil {
		t.Error("mismatched roots accepted")
	}
}

func TestInferRoundTripsRandomDocuments(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		g := docgen.New(seed, docgen.DefaultConfig())
		orig := g.Schema()
		doc := g.Document(orig)
		s, err := infer.FromDocuments(doc)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !shred.Conforms(s, doc) {
			t.Fatalf("seed %d: document does not conform to its inferred schema", seed)
		}
		store := relational.NewStore()
		if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
			t.Fatalf("seed %d: shred under inferred schema: %v", seed, err)
		}
		docs, err := shred.Reconstruct(s, store)
		if err != nil {
			t.Fatalf("seed %d: reconstruct: %v", seed, err)
		}
		if len(docs) != 1 || !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
			t.Fatalf("seed %d: inferred-schema round trip mismatch", seed)
		}
	}
}
