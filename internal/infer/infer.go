// Package infer derives an annotated XML-to-Relational mapping from sample
// documents. §5.3 of the paper assumes that at query-translation time "an
// XML schema is either given or has been inferred from the XML documents
// loaded into the system" — this package is that inference step, enabling
// the full translation pipeline (including the schema-oblivious Edge
// scenario) when only documents are available.
//
// The inferred schema is the label-path trie of the documents: one node per
// distinct root-to-element label path. Elements that never have children
// become value leaves; everything else receives its own relation. Because
// sibling labels are distinct by construction, the resulting mapping is
// deterministic for alignment and losslessly reconstructible without edge
// conditions.
package infer

import (
	"fmt"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

type trieNode struct {
	label    string
	children map[string]*trieNode
	order    []string
	// hasChildren records whether any element at this path ever had
	// element children; such nodes cannot be value leaves.
	hasChildren bool
	// hasText records whether any element at this path carried text.
	hasText bool
	// repeated records whether some parent instance held two or more
	// children at this path; repeated elements need their own tuples, as a
	// value column can hold only one occurrence.
	repeated bool
}

// FromDocuments infers a mapping from one or more sample documents. All
// documents must share the same root label.
func FromDocuments(docs ...*xmltree.Document) (*schema.Schema, error) {
	if len(docs) == 0 {
		return nil, fmt.Errorf("infer: no documents")
	}
	root := &trieNode{label: docs[0].Root.Label, children: map[string]*trieNode{}}
	for _, d := range docs {
		if d.Root.Label != root.label {
			return nil, fmt.Errorf("infer: documents have different root labels %q and %q", root.label, d.Root.Label)
		}
		absorb(root, d.Root)
	}

	b := schema.NewBuilder("inferred")
	counter := 0
	nextName := func() string {
		counter++
		return fmt.Sprintf("n%d", counter)
	}
	usedRels := map[string]bool{}
	relFor := func(label string) string {
		base := sanitize(label)
		name := base
		for i := 2; usedRels[name]; i++ {
			name = fmt.Sprintf("%s%d", base, i)
		}
		usedRels[name] = true
		return name
	}

	type decl struct {
		node   *trieNode
		name   string
		parent string
	}
	rootName := nextName()
	stack := []decl{{node: root, name: rootName}}
	for len(stack) > 0 {
		d := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		n := d.node
		if n.hasChildren || n.repeated || d.parent == "" {
			// Internal node, repeated element, or the root: its own
			// relation — plus a value column if instances carry text (a
			// repeated text leaf such as XMark's InCategory-less variants).
			opts := []schema.NodeOpt{schema.Rel(relFor(n.label))}
			if n.hasText {
				opts = append(opts, schema.Col(colName(n.label)))
			}
			b.Node(d.name, n.label, opts...)
		} else {
			// Pure leaf: a value column in the owning relation. The column
			// is named after the label; sibling labels are distinct, so no
			// owner column clashes are possible.
			b.Node(d.name, n.label, schema.Col(colName(n.label)))
		}
		if d.parent != "" {
			b.Edge(d.parent, d.name)
		}
		for i := len(n.order) - 1; i >= 0; i-- {
			stack = append(stack, decl{node: n.children[n.order[i]], name: nextName(), parent: d.name})
		}
	}
	b.Root(rootName)
	return b.Build()
}

func absorb(t *trieNode, n *xmltree.Node) {
	if n.Text != "" {
		t.hasText = true
	}
	if len(n.Children) > 0 {
		t.hasChildren = true
	}
	counts := map[string]int{}
	for _, c := range n.Children {
		child, ok := t.children[c.Label]
		if !ok {
			child = &trieNode{label: c.Label, children: map[string]*trieNode{}}
			t.children[c.Label] = child
			t.order = append(t.order, c.Label)
		}
		counts[c.Label]++
		if counts[c.Label] > 1 {
			child.repeated = true
		}
		absorb(child, c)
	}
}

func sanitize(label string) string {
	out := make([]byte, 0, len(label))
	for i := 0; i < len(label); i++ {
		c := label[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			out = append(out, c)
		}
	}
	if len(out) == 0 {
		return "Rel"
	}
	if out[0] >= 'a' && out[0] <= 'z' {
		out[0] -= 'a' - 'A'
	}
	return string(out)
}

func colName(label string) string {
	s := sanitize(label)
	if s == "Rel" {
		return "val"
	}
	// Lowercase leading letter for a column-ish name; avoid the reserved
	// names.
	b := []byte(s)
	if b[0] >= 'A' && b[0] <= 'Z' {
		b[0] += 'a' - 'A'
	}
	name := string(b)
	if name == schema.IDColumn || name == schema.ParentIDColumn {
		name = name + "_v"
	}
	return name
}
