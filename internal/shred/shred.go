package shred

import (
	"fmt"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// OrderColumn is the sibling-position column materialized by
// order-preserving shredding (Options.WithOrder) — the ORDER column of the
// classic Edge relation [7]. It is never referenced by translation.
const OrderColumn = "ord"

// Options configure shredding.
type Options struct {
	// FillUnspecified, when non-nil, supplies values for condition columns
	// the mapping leaves unspecified for a tuple (the Fig. 5 situation where
	// "any value in the corresponding domain (including 1, 2 and null) is
	// allowed"). The default leaves them NULL.
	FillUnspecified func(rel, col string, kind relational.Kind) relational.Value
	// WithOrder materializes each tuple's sibling position in the
	// OrderColumn, making reconstruction order-exact for tuple-producing
	// siblings (the paper's mappings have no order column; this is the
	// natural completion, and gives Edge storage its full
	// (id, parentid, tag, ord, value) shape).
	WithOrder bool
}

// Result reports one document's shredding.
type Result struct {
	Alignment *Alignment
	// IDs maps every document element that produced a tuple to the tuple's
	// id (the element's elemid).
	IDs map[*xmltree.Node]int64
	// Tuples is the number of tuples inserted.
	Tuples int
}

// Shredder loads XML documents into a relational store according to an
// XML-to-Relational mapping. It implements the algorithm "A" of §3.2 and
// respects the mapping: elements are shredded exactly once, edge-condition
// columns are materialized, nothing else is inserted, and ids are assigned
// in document order (preserving sibling order per schema node).
type Shredder struct {
	s      *schema.Schema
	store  *relational.Store
	defs   map[string]*schema.RelationDef
	nextID int64
	opts   Options
}

// NewShredder prepares a shredder, creating any missing relation tables in
// the store.
func NewShredder(s *schema.Schema, store *relational.Store, opts Options) (*Shredder, error) {
	defs, err := s.DeriveRelations()
	if err != nil {
		return nil, err
	}
	for name, def := range defs {
		ts := def.TableSchema()
		if opts.WithOrder {
			if ts.HasColumn(OrderColumn) {
				return nil, fmt.Errorf("shred: relation %s already uses column %s; cannot shred with order", name, OrderColumn)
			}
			ts.Columns = append(ts.Columns, relational.Column{Name: OrderColumn, Kind: relational.KindInt})
		}
		if store.Table(name) == nil {
			if _, err := store.CreateTable(ts); err != nil {
				return nil, err
			}
		}
	}
	return &Shredder{s: s, store: store, defs: defs, nextID: 1, opts: opts}, nil
}

// NextID returns the next elemid the shredder will assign.
func (sh *Shredder) NextID() int64 { return sh.nextID }

// SetNextID moves the shredder's id counter, so several shredders over
// different stores can share one global id sequence. The sharded loader
// depends on this: each document is shredded into its owning shard's store
// with the counter continued from wherever the previous document (possibly
// on another shard) left it, which keeps every elemid identical to what a
// single-store shredding of the same document sequence would assign — the
// invariant the sharded-vs-single differential suite checks literally.
// Moving the counter backwards over already-loaded ids makes the next Shred
// fail on a duplicate primary key, exactly like any other id collision.
func (sh *Shredder) SetNextID(id int64) { sh.nextID = id }

// Shred loads one document.
func (sh *Shredder) Shred(d *xmltree.Document) (*Result, error) {
	a, err := Align(sh.s, d)
	if err != nil {
		return nil, err
	}
	res := &Result{Alignment: a, IDs: map[*xmltree.Node]int64{}}

	type pendingCond struct {
		col   string
		value relational.Value
	}
	// walk carries the nearest annotated ancestor tuple (relation + id +
	// mutable row map) and the edge conditions pending since that tuple.
	type owner struct {
		rel string
		id  int64
		row map[string]relational.Value
	}
	var insertOrder []*owner

	var walk func(n *xmltree.Node, own *owner, pending []pendingCond, ord int) error
	walk = func(n *xmltree.Node, own *owner, pending []pendingCond, ord int) error {
		sid := a.nodeOf[n]
		sn := sh.s.Node(sid)

		cur := own
		if sn.HasRelation() {
			row := map[string]relational.Value{
				schema.IDColumn: relational.Int(sh.nextID),
			}
			if sh.opts.WithOrder {
				row[OrderColumn] = relational.Int(int64(ord))
			}
			if own != nil {
				row[schema.ParentIDColumn] = relational.Int(own.id)
			} else {
				row[schema.ParentIDColumn] = relational.Null
			}
			for _, nc := range sn.Conds {
				row[nc.Column] = nc.Value
			}
			for _, pc := range pending {
				if prev, dup := row[pc.col]; dup && !prev.Identical(pc.value) {
					return fmt.Errorf("shred: relation %s: conflicting pending conditions on column %s", sn.Relation, pc.col)
				}
				row[pc.col] = pc.value
			}
			cur = &owner{rel: sn.Relation, id: sh.nextID, row: row}
			res.IDs[n] = sh.nextID
			sh.nextID++
			res.Tuples++
			insertOrder = append(insertOrder, cur)
			pending = nil
		}

		if sn.Column != "" && sn.Column != schema.IDColumn {
			ownRel, err := sh.s.OwnerRelation(sid)
			if err != nil {
				return err
			}
			if cur == nil || cur.rel != ownRel {
				return fmt.Errorf("shred: element <%s>: value column %s.%s has no live owner tuple",
					n.Label, ownRel, sn.Column)
			}
			if prev, dup := cur.row[sn.Column]; dup && !prev.IsNull() {
				return fmt.Errorf("shred: element <%s>: column %s.%s set twice", n.Label, ownRel, sn.Column)
			}
			cur.row[sn.Column] = relational.String(n.Text)
		}

		for ci, c := range n.Children {
			cid := a.nodeOf[c]
			e := sh.s.EdgeBetween(sid, cid)
			if e == nil {
				return fmt.Errorf("shred: internal: no schema edge %s -> %s", sn.Name, sh.s.Node(cid).Name)
			}
			childPending := pending
			if e.Cond != nil {
				childPending = append(append([]pendingCond(nil), pending...),
					pendingCond{col: e.Cond.Column, value: e.Cond.Value})
			}
			if err := walk(c, cur, childPending, ci); err != nil {
				return err
			}
		}
		return nil
	}

	if err := walk(d.Root, nil, nil, 0); err != nil {
		return nil, err
	}

	// Materialize tuples in document (creation) order.
	for _, ow := range insertOrder {
		def := sh.defs[ow.rel]
		ts := def.TableSchema()
		cols := ts.Columns
		if sh.opts.WithOrder {
			cols = append(append([]relational.Column(nil), cols...),
				relational.Column{Name: OrderColumn, Kind: relational.KindInt})
		}
		row := make(relational.Row, len(cols))
		for i, col := range cols {
			if v, ok := ow.row[col.Name]; ok {
				row[i] = v
				continue
			}
			if sh.opts.FillUnspecified != nil && isCondColumn(def, col.Name) {
				row[i] = sh.opts.FillUnspecified(ow.rel, col.Name, col.Kind)
				continue
			}
			row[i] = relational.Null
		}
		if err := sh.store.Table(ow.rel).Insert(row); err != nil {
			return nil, err
		}
	}
	return res, nil
}

func isCondColumn(def *schema.RelationDef, name string) bool {
	for _, c := range def.CondColumns {
		if c.Name == name {
			return true
		}
	}
	return false
}

// ShredAll loads several documents under one shredder, returning the
// per-document results. After loading it eagerly builds the hash join
// indexes on the parentid column of every relation (which is also the Edge
// mapping's join column): every translated query joins parent to child on
// parentid = id, so the engine's index-probe path is hot from the first
// query, and no lazy index build can race with concurrent readers at serving
// time. Table.Insert maintains the indexes incrementally, so later ShredAll
// calls against the same store keep them current.
func ShredAll(s *schema.Schema, store *relational.Store, opts Options, docs ...*xmltree.Document) ([]*Result, error) {
	sh, err := NewShredder(s, store, opts)
	if err != nil {
		return nil, err
	}
	out := make([]*Result, 0, len(docs))
	for _, d := range docs {
		r, err := sh.Shred(d)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	if err := store.BuildJoinIndexes(schema.ParentIDColumn); err != nil {
		return nil, err
	}
	return out, nil
}
