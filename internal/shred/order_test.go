package shred_test

import (
	"strings"
	"testing"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// interleavedSchema stores two differently-labelled children in two
// relations; without an order column their interleaving is unrecoverable.
func interleavedSchema() *schema.Schema {
	return schema.NewBuilder("inter").
		Node("r", "r", schema.Rel("R")).
		Node("a", "a", schema.Rel("A"), schema.Col("val")).
		Node("b", "b", schema.Rel("B"), schema.Col("val")).
		Root("r").
		Edge("r", "a").
		Edge("r", "b").
		MustBuild()
}

func interleavedDoc() *xmltree.Document {
	return &xmltree.Document{Root: xmltree.NewElem("r",
		xmltree.NewText("b", "1"),
		xmltree.NewText("a", "2"),
		xmltree.NewText("b", "3"),
		xmltree.NewText("a", "4"),
	)}
}

func TestOrderPreservingShredding(t *testing.T) {
	s := interleavedSchema()
	doc := interleavedDoc()

	// Without the order column the round trip only holds canonically.
	plain := relational.NewStore()
	if _, err := shred.ShredAll(s, plain, shred.Options{}, doc); err != nil {
		t.Fatal(err)
	}
	docs, err := shred.Reconstruct(s, plain)
	if err != nil {
		t.Fatal(err)
	}
	if docs[0].Equal(doc) {
		t.Log("plain reconstruction happened to preserve interleaving (ids)")
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Fatal("canonical round trip must hold without ordering")
	}

	// With the order column the round trip is exact.
	ordered := relational.NewStore()
	if _, err := shred.ShredAll(s, ordered, shred.Options{WithOrder: true}, doc); err != nil {
		t.Fatal(err)
	}
	if !ordered.Table("A").Schema().HasColumn(shred.OrderColumn) {
		t.Fatal("order column missing")
	}
	docs, err = shred.Reconstruct(s, ordered)
	if err != nil {
		t.Fatal(err)
	}
	if !docs[0].Equal(doc) {
		t.Errorf("order-preserving round trip not exact:\noriginal:\n%s\nreconstructed:\n%s", doc, docs[0])
	}
}

func TestOrderedEdgeRelationShape(t *testing.T) {
	// With WithOrder, Edge storage has the classic five columns of [7]:
	// id, parentid, tag, ord, value.
	base := workloads.XMark()
	es, err := shred.EdgeSchemaFor(base)
	if err != nil {
		t.Fatal(err)
	}
	store := relational.NewStore()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 2, CategoriesPerItem: 1, NumCategories: 2, Seed: 1})
	if _, err := shred.ShredAll(es, store, shred.Options{WithOrder: true}, doc); err != nil {
		t.Fatal(err)
	}
	cols := store.Table(shred.EdgeRelation).Schema().Columns
	var names []string
	for _, c := range cols {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	for _, want := range []string{"id", "parentid", "tag", "ord", "value"} {
		if !strings.Contains(joined, want) {
			t.Errorf("Edge columns %v missing %s", names, want)
		}
	}
	// Exact (not just canonical) round trip over Edge storage with order.
	docs, err := shred.Reconstruct(es, store)
	if err != nil {
		t.Fatal(err)
	}
	if !docs[0].Equal(doc) {
		t.Error("ordered Edge round trip not exact")
	}
}

func TestOrderColumnClashRejected(t *testing.T) {
	s := schema.NewBuilder("clash").
		Node("r", "r", schema.Rel("R")).
		Node("v", "v", schema.Col("ord")).
		Root("r").
		Edge("r", "v").
		MustBuild()
	store := relational.NewStore()
	if _, err := shred.NewShredder(s, store, shred.Options{WithOrder: true}); err == nil {
		t.Error("ord column clash accepted")
	}
	// Without WithOrder the mapping is fine.
	if _, err := shred.NewShredder(s, relational.NewStore(), shred.Options{}); err != nil {
		t.Errorf("plain shredder rejected: %v", err)
	}
}

func TestOrderedXMarkExactRoundTrip(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{WithOrder: true}, doc); err != nil {
		t.Fatal(err)
	}
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatal(err)
	}
	// XMark's value leaves (name) precede the InCategory children in the
	// generator, matching the reconstructor's value-leaves-first placement,
	// so the ordered round trip is exact.
	if !docs[0].Equal(doc) {
		t.Error("ordered XMark round trip not exact")
	}
}
