package shred_test

import (
	"testing"

	"xmlsql/internal/docgen"
	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// TestPropertyP2 checks the defining equation of the "lossless from XML"
// constraint (§3.2, property P2) directly on shredded instances: for every
// relational column R.C,
//
//	select R.C from R  ≡  ⋃ { RtoL(l) : l ∈ LeafNodes(R.C) }
//
// under multiset semantics. This is the fact the whole pruning algorithm
// rests on ("all the root-to-leaf paths combined together correspond to a
// scan of the column R.C", §4.1).
//
// The paper implicitly assumes each relation's tuples are homogeneous in
// which columns they store. When a relation is shared by nodes that store
// *different* value columns (Figure 5's R3 with C1 for x and C2 for y), the
// literal scan additionally returns NULL rows for tuples that never store
// into C; those correspond to no element value. The check therefore compares
// the equation on non-NULL rows — exactly the value occurrences — which is
// also why the pruning algorithm must reason about such shared relations
// through conflicts rather than assume scan ≡ union blindly.
func TestPropertyP2(t *testing.T) {
	type wl struct {
		name string
		s    *schema.Schema
		doc  *xmltree.Document
	}
	wls := []wl{
		{"xmark", workloads.XMark(), workloads.GenerateXMark(workloads.DefaultXMarkConfig())},
		{"adex", workloads.ADEX(), workloads.GenerateADEX(workloads.DefaultADEXConfig())},
		{"s1", workloads.S1(), workloads.GenerateS1(10, 2)},
		{"s2", workloads.S2(), workloads.GenerateS2(8, 2)},
		{"auctions", workloads.XMarkAuctions(), workloads.GenerateXMarkAuctions(workloads.DefaultXMarkAuctionsConfig())},
	}
	for seed := int64(0); seed < 10; seed++ {
		g := docgen.New(seed, docgen.DefaultConfig())
		s := g.Schema()
		wls = append(wls, wl{name: s.Name, s: s, doc: g.Document(s)})
	}

	for _, w := range wls {
		t.Run(w.name, func(t *testing.T) {
			store := relational.NewStore()
			if _, err := shred.ShredAll(w.s, store, shred.Options{}, w.doc); err != nil {
				t.Fatalf("shred: %v", err)
			}
			checkP2(t, w.s, store)
		})
	}
}

func checkP2(t *testing.T, s *schema.Schema, store *relational.Store) {
	t.Helper()
	defs, err := s.DeriveRelations()
	if err != nil {
		t.Fatal(err)
	}
	for rel, def := range defs {
		// The id column participates when every R-annotated node exposes
		// its elemid (no value column hides it).
		idTotal := true
		for _, n := range s.Nodes() {
			if n.Relation == rel && n.Column != "" && n.Column != schema.IDColumn {
				idTotal = false
			}
		}
		cols := append([]relational.Column(nil), def.ValueColumns...)
		if idTotal {
			cols = append(cols, relational.Column{Name: schema.IDColumn, Kind: relational.KindInt})
		}
		for _, c := range cols {
			leaves := s.LeafNodesOfColumn(rel, c.Name)
			if len(leaves) == 0 {
				continue
			}
			// Left side: select R.C from R.
			scan := sqlast.SingleSelect(&sqlast.Select{
				Cols: []sqlast.SelectItem{sqlast.Col("R", c.Name)},
				From: []sqlast.FromItem{sqlast.From(rel, "R")},
			})
			left, err := engine.Execute(store, scan)
			if err != nil {
				t.Fatalf("%s.%s scan: %v", rel, c.Name, err)
			}
			left = dropNullRows(left)
			// Right side: union of RtoL(l) over LeafNodes(R.C).
			right := &engine.Result{}
			for _, l := range leaves {
				q, complete, err := translate.RtoL(s, l, 3)
				if err != nil {
					t.Fatalf("RtoL(%s): %v", s.Node(l).Name, err)
				}
				if !complete {
					t.Skipf("recursive schema: RtoL enumeration incomplete at unroll 3")
				}
				res, err := engine.Execute(store, q)
				if err != nil {
					t.Fatalf("RtoL(%s) exec: %v\n%s", s.Node(l).Name, err, q.SQL())
				}
				right.Rows = append(right.Rows, res.Rows...)
			}
			right = dropNullRows(right)
			if !left.MultisetEqual(right) {
				t.Errorf("P2 violated for %s.%s:\n%s", rel, c.Name, left.MultisetDiff(right))
			}
		}
	}
}

// dropNullRows removes rows whose single column is NULL: tuples that never
// store into the inspected column.
func dropNullRows(r *engine.Result) *engine.Result {
	out := &engine.Result{Cols: r.Cols}
	for _, row := range r.Rows {
		if len(row) == 1 && row[0].IsNull() {
			continue
		}
		out.Rows = append(out.Rows, row)
	}
	return out
}
