package shred

import (
	"fmt"
	"sort"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// Reconstruct inverts shredding: it rebuilds the XML documents stored in the
// relational instance, witnessing the "lossless from XML" constraint. Every
// tuple must be claimed by exactly one document element; unassignable
// (orphan) or ambiguous tuples are reported as errors — such instances
// violate the constraint.
//
// Reconstruction is exact up to canonical sibling order (see
// xmltree.Canonicalize): the mapping has no order column, so only the
// relative order of tuple-producing siblings is recoverable (ids are
// assigned in document order). Unannotated structural elements are
// materialized exactly once per parent, the paper's implicit occurrence
// model for unannotated nodes.
func Reconstruct(s *schema.Schema, store *relational.Store) ([]*xmltree.Document, error) {
	r, err := newReconstructor(s, store)
	if err != nil {
		return nil, err
	}
	docs, err := r.run()
	if err != nil {
		return nil, err
	}
	if err := r.checkCoverage(); err != nil {
		return nil, err
	}
	return docs, nil
}

type reconstructor struct {
	s     *schema.Schema
	store *relational.Store
	// byParent indexes each relation's rows by parentid key.
	byParent map[string]map[string][]rowRef
	claimed  map[string]map[int64]bool // rel -> id -> claimed
	total    int
	nClaimed int
}

type rowRef struct {
	row relational.Row
	tbl *relational.TableSchema
}

func (rr rowRef) value(col string) relational.Value {
	i := rr.tbl.ColumnIndex(col)
	if i < 0 {
		return relational.Null
	}
	return rr.row[i]
}

func (rr rowRef) id() int64 { return rr.value(schema.IDColumn).AsInt() }

func newReconstructor(s *schema.Schema, store *relational.Store) (*reconstructor, error) {
	if !s.RootNode().HasRelation() {
		return nil, fmt.Errorf("shred: cannot reconstruct: root node %s has no relation annotation", s.RootNode().Name)
	}
	r := &reconstructor{
		s:        s,
		store:    store,
		byParent: map[string]map[string][]rowRef{},
		claimed:  map[string]map[int64]bool{},
	}
	for _, rel := range s.Relations() {
		t := store.Table(rel)
		if t == nil {
			return nil, fmt.Errorf("shred: relation %s missing from store", rel)
		}
		idx := map[string][]rowRef{}
		for _, row := range t.Rows() {
			rr := rowRef{row: row, tbl: t.Schema()}
			key := rr.value(schema.ParentIDColumn).Key()
			idx[key] = append(idx[key], rr)
			r.total++
		}
		for _, refs := range idx {
			sort.Slice(refs, func(i, j int) bool { return refs[i].id() < refs[j].id() })
		}
		r.byParent[rel] = idx
		r.claimed[rel] = map[int64]bool{}
	}
	return r, nil
}

func (r *reconstructor) run() ([]*xmltree.Document, error) {
	rootRel := r.s.RootNode().Relation
	roots := r.byParent[rootRel][relational.Null.Key()]
	var docs []*xmltree.Document
	for _, rr := range roots {
		r.claim(rootRel, rr.id())
		elem, err := r.buildElement(r.s.Root(), rr)
		if err != nil {
			return nil, err
		}
		docs = append(docs, &xmltree.Document{Root: elem})
	}
	return docs, nil
}

func (r *reconstructor) claim(rel string, id int64) {
	if !r.claimed[rel][id] {
		r.claimed[rel][id] = true
		r.nClaimed++
	}
}

func (r *reconstructor) checkCoverage() error {
	if r.nClaimed == r.total {
		return nil
	}
	for rel, idx := range r.byParent {
		for _, refs := range idx {
			for _, rr := range refs {
				if !r.claimed[rel][rr.id()] {
					return fmt.Errorf("shred: lossless violation: orphan tuple %s.id=%d (parentid=%v) claimed by no element",
						rel, rr.id(), rr.value(schema.ParentIDColumn))
				}
			}
		}
	}
	return fmt.Errorf("shred: internal: claim counting mismatch (%d of %d)", r.nClaimed, r.total)
}

// chain is a downward route from a schema node through unannotated
// structural nodes to either a relation-annotated target or a value leaf.
type chain struct {
	structPath []string // labels of unannotated intermediates, in order
	target     schema.NodeID
	isValue    bool // target is a column-only value leaf
	conds      []schema.EdgeCond
}

// chainsFrom enumerates the chains below sid. Unannotated cycles are
// rejected (they would make occurrence counts unrecoverable).
func (r *reconstructor) chainsFrom(sid schema.NodeID) ([]chain, error) {
	var out []chain
	var visit func(id schema.NodeID, structPath []string, conds []schema.EdgeCond, seen map[schema.NodeID]bool) error
	visit = func(id schema.NodeID, structPath []string, conds []schema.EdgeCond, seen map[schema.NodeID]bool) error {
		for _, e := range r.s.Node(id).Children() {
			m := r.s.Node(e.To)
			cconds := conds
			if e.Cond != nil {
				cconds = append(append([]schema.EdgeCond(nil), conds...), *e.Cond)
			}
			switch {
			case m.HasRelation():
				tconds := cconds
				if len(m.Conds) > 0 {
					tconds = append(append([]schema.EdgeCond(nil), cconds...), m.Conds...)
				}
				out = append(out, chain{structPath: structPath, target: e.To, conds: tconds})
			case m.Column != "":
				if len(cconds) > 0 {
					return fmt.Errorf("shred: edge conditions lead to value leaf %s with no owning tuple", m.Name)
				}
				out = append(out, chain{structPath: structPath, target: e.To, isValue: true})
			default:
				if seen[e.To] {
					return fmt.Errorf("shred: unannotated cycle through node %s; occurrence counts unrecoverable", m.Name)
				}
				seen[e.To] = true
				sp := append(append([]string(nil), structPath...), m.Label)
				if err := visit(e.To, sp, cconds, seen); err != nil {
					return err
				}
				delete(seen, e.To)
			}
		}
		return nil
	}
	err := visit(sid, nil, nil, map[schema.NodeID]bool{})
	return out, err
}

func condsMatch(rr rowRef, conds []schema.EdgeCond) bool {
	for _, c := range conds {
		if !rr.value(c.Column).Equal(c.Value) {
			return false
		}
	}
	return true
}

// buildElement materializes the element for a tuple aligned to schema node
// sid.
func (r *reconstructor) buildElement(sid schema.NodeID, rr rowRef) (*xmltree.Node, error) {
	sn := r.s.Node(sid)
	elem := &xmltree.Node{Label: sn.Label}
	if sn.Column != "" && sn.Column != schema.IDColumn {
		if v := rr.value(sn.Column); !v.IsNull() {
			elem.Text = v.AsString()
		}
	}
	children, err := r.buildChildren(sid, rr)
	if err != nil {
		return nil, err
	}
	elem.Children = children
	return elem, nil
}

type placedChild struct {
	elem *xmltree.Node
	id   int64 // tuple id for annotated children; -1 for value leaves and structural nodes
	ord  int64 // sibling position when order-preserving shredding was used; -1 otherwise
}

// buildChildren assembles the child elements of the element owning tuple rr
// at schema node sid: value leaves from the tuple's own columns, annotated
// children from claimed tuples (in id — i.e. document — order), and
// structural elements wrapping deeper chains.
func (r *reconstructor) buildChildren(sid schema.NodeID, rr rowRef) ([]*xmltree.Node, error) {
	chains, err := r.chainsFrom(sid)
	if err != nil {
		return nil, err
	}
	if len(chains) == 0 {
		return nil, nil
	}
	parentKey := relational.Int(rr.id()).Key()

	// Assign each candidate tuple to exactly one chain.
	type assignment struct {
		ch  chain
		ref rowRef
	}
	var assigned []assignment
	rels := map[string]bool{}
	for _, ch := range chains {
		if !ch.isValue {
			rels[r.s.Node(ch.target).Relation] = true
		}
	}
	for rel := range rels {
		for _, cand := range r.byParent[rel][parentKey] {
			var matches []chain
			for _, ch := range chains {
				if ch.isValue || r.s.Node(ch.target).Relation != rel {
					continue
				}
				if condsMatch(cand, ch.conds) {
					matches = append(matches, ch)
				}
			}
			switch len(matches) {
			case 0:
				return nil, fmt.Errorf("shred: lossless violation: tuple %s.id=%d under parent %d matches no schema child of %s",
					rel, cand.id(), rr.id(), r.s.Node(sid).Name)
			case 1:
				r.claim(rel, cand.id())
				assigned = append(assigned, assignment{ch: matches[0], ref: cand})
			default:
				return nil, fmt.Errorf("shred: ambiguous mapping: tuple %s.id=%d under parent %d matches %d schema children of %s",
					rel, cand.id(), rr.id(), len(matches), r.s.Node(sid).Name)
			}
		}
	}

	// Group assignments and value leaves by their structural path.
	groups := map[string][]placedChild{}
	pathKey := func(path []string) string {
		key := ""
		for _, p := range path {
			key += p + "\x00"
		}
		return key
	}

	for _, ch := range chains {
		if !ch.isValue {
			continue
		}
		leaf := r.s.Node(ch.target)
		var text string
		if leaf.Column == schema.IDColumn {
			// elemid leaves expose the owner's id; the element itself is
			// empty in the document.
			text = ""
		} else {
			v := rr.value(leaf.Column)
			if v.IsNull() {
				continue // value never stored; the element is not materialized
			}
			if v.Kind() == relational.KindString {
				text = v.AsString()
			} else {
				text = v.String()
			}
		}
		k := pathKey(ch.structPath)
		groups[k] = append(groups[k], placedChild{elem: &xmltree.Node{Label: leaf.Label, Text: text}, id: -1, ord: -1})
	}
	for _, a := range assigned {
		elem, err := r.buildElement(a.ch.target, a.ref)
		if err != nil {
			return nil, err
		}
		ord := int64(-1)
		if a.ref.tbl.HasColumn(OrderColumn) {
			if v := a.ref.value(OrderColumn); !v.IsNull() {
				ord = v.AsInt()
			}
		}
		k := pathKey(a.ch.structPath)
		groups[k] = append(groups[k], placedChild{elem: elem, id: a.ref.id(), ord: ord})
	}

	// Build the structural skeleton trie in chain (schema edge) order and
	// materialize: direct children at each level (value leaves first, then
	// tuple children in id — i.e. document — order), one element per
	// structural node.
	trie := newStructTrie()
	for _, ch := range chains {
		trie.insert(ch.structPath)
	}
	return trie.emit(groups, pathKey, nil), nil
}

type structTrie struct {
	order []string
	sub   map[string]*structTrie
}

// sortKey orders reconstructed siblings: the materialized sibling position
// when order-preserving shredding was used, otherwise the document-ordered
// tuple id; value leaves (no tuple) sort first.
func (pc placedChild) sortKey() int64 {
	if pc.ord >= 0 {
		return pc.ord
	}
	return pc.id
}

func newStructTrie() *structTrie { return &structTrie{sub: map[string]*structTrie{}} }

func (t *structTrie) insert(path []string) {
	if len(path) == 0 {
		return
	}
	child, ok := t.sub[path[0]]
	if !ok {
		child = newStructTrie()
		t.sub[path[0]] = child
		t.order = append(t.order, path[0])
	}
	child.insert(path[1:])
}

func (t *structTrie) emit(groups map[string][]placedChild, pathKey func([]string) string, prefix []string) []*xmltree.Node {
	var out []*xmltree.Node
	direct := groups[pathKey(prefix)]
	sort.SliceStable(direct, func(i, j int) bool { return direct[i].sortKey() < direct[j].sortKey() })
	for _, pc := range direct {
		out = append(out, pc.elem)
	}
	for _, label := range t.order {
		elem := &xmltree.Node{Label: label}
		elem.Children = t.sub[label].emit(groups, pathKey, append(prefix, label))
		out = append(out, elem)
	}
	return out
}
