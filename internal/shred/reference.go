package shred

import (
	"fmt"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// EvalReference evaluates a path expression directly over a shredded
// document and returns the result values exactly as the SQL translations
// must produce them: for value-bearing nodes the element text, for
// relation-annotated nodes without a value column the elemid assigned during
// shredding. This is the ground truth the translation tests compare both the
// naive and the pruned SQL against.
func EvalReference(res *Result, q *pathexpr.Path) ([]relational.Value, error) {
	// Parent pointers, for resolving elemid leaves to their owning element.
	parent := map[*xmltree.Node]*xmltree.Node{}
	res.Alignment.Doc.Walk(func(n *xmltree.Node, _ []string) {
		for _, c := range n.Children {
			parent[c] = n
		}
	})

	var out []relational.Value
	for _, n := range xmltree.MatchNodes(res.Alignment.Doc, q) {
		sid, ok := res.Alignment.SchemaNodeOf(n)
		if !ok {
			return nil, fmt.Errorf("shred: matched element <%s> has no schema alignment", n.Label)
		}
		_, col, err := res.Alignment.Schema.Annot(sid)
		if err != nil {
			return nil, fmt.Errorf("shred: query %s matches unannotated node: %v", q, err)
		}
		if col == schema.IDColumn {
			// The element's own elemid, or — for explicit elemid leaves —
			// the nearest tuple-producing ancestor's.
			cur := n
			for cur != nil {
				if id, ok := res.IDs[cur]; ok {
					out = append(out, relational.Int(id))
					break
				}
				cur = parent[cur]
			}
			if cur == nil {
				return nil, fmt.Errorf("shred: element <%s> has no assigned elemid", n.Label)
			}
			continue
		}
		out = append(out, relational.String(n.Text))
	}
	return out, nil
}

// EvalReferenceAll evaluates the query over several shredded documents and
// concatenates the results.
func EvalReferenceAll(results []*Result, q *pathexpr.Path) ([]relational.Value, error) {
	var out []relational.Value
	for _, r := range results {
		vs, err := EvalReference(r, q)
		if err != nil {
			return nil, err
		}
		out = append(out, vs...)
	}
	return out, nil
}
