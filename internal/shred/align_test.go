package shred_test

import (
	"strings"
	"testing"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

func TestAlignRejectsNonConformingDocuments(t *testing.T) {
	s := workloads.XMark()
	cases := []string{
		`<NotSite/>`,            // wrong root
		`<Site><Bogus/></Site>`, // unknown child
		`<Site><Regions><Africa><Item><name>x</name><Unknown/></Item></Africa></Regions></Site>`, // unknown grandchild
	}
	for _, in := range cases {
		doc, err := xmltree.ParseString(in)
		if err != nil {
			t.Fatal(err)
		}
		if shred.Conforms(s, doc) {
			t.Errorf("document conformed unexpectedly:\n%s", in)
		}
		store := relational.NewStore()
		if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err == nil {
			t.Errorf("shredding accepted non-conforming document:\n%s", in)
		}
	}
}

func TestAlignAssignsSchemaNodes(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 1, Seed: 1})
	a, err := shred.Align(s, doc)
	if err != nil {
		t.Fatal(err)
	}
	doc.Walk(func(n *xmltree.Node, _ []string) {
		id, ok := a.SchemaNodeOf(n)
		if !ok {
			t.Errorf("element <%s> unaligned", n.Label)
			return
		}
		if s.Node(id).Label != n.Label {
			t.Errorf("element <%s> aligned to node labelled %s", n.Label, s.Node(id).Label)
		}
	})
}

func TestAlignRecursive(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.S3Config{Fanout: 1, MaxDepth: 6, Seed: 2})
	if !shred.Conforms(s, doc) {
		t.Fatal("generated recursive document should conform")
	}
}

func TestShredderSequentialIDs(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore()
	sh, err := shred.NewShredder(s, store, shred.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sh.NextID() != 1 {
		t.Errorf("NextID = %d before any shredding", sh.NextID())
	}
	doc := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 1, Seed: 1})
	res, err := sh.Shred(doc)
	if err != nil {
		t.Fatal(err)
	}
	if int(sh.NextID()) != res.Tuples+1 {
		t.Errorf("NextID = %d after %d tuples", sh.NextID(), res.Tuples)
	}
	// A second document continues the id sequence (multi-document store).
	res2, err := sh.Shred(doc)
	if err != nil {
		t.Fatal(err)
	}
	if int(sh.NextID()) != res.Tuples+res2.Tuples+1 {
		t.Errorf("NextID = %d after two documents", sh.NextID())
	}
	// Reconstruction returns both documents.
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatal(err)
	}
	if len(docs) != 2 {
		t.Errorf("reconstructed %d documents, want 2", len(docs))
	}
}

func TestReconstructMissingRelation(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore() // tables never created
	if _, err := shred.Reconstruct(s, store); err == nil {
		t.Error("reconstruct accepted a store with missing relations")
	}
}

func TestReconstructUnannotatedRootRejected(t *testing.T) {
	b := schema.NewBuilder("noroot").
		Node("r", "r").
		Node("a", "a", schema.Rel("A"), schema.Col("val")).
		Root("r").
		Edge("r", "a")
	s := b.MustBuild()
	store := relational.NewStore()
	doc, _ := xmltree.ParseString(`<r><a>x</a></r>`)
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		// The shredder handles unannotated roots (the A tuple gets a NULL
		// parentid); only reconstruction is impossible.
		t.Fatalf("shred: %v", err)
	}
	if _, err := shred.Reconstruct(s, store); err == nil {
		t.Error("reconstruct accepted an unannotated root")
	}
}

func TestEvalReferenceErrorsOnUnannotatedMatch(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 1, Seed: 1})
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatal(err)
	}
	// Regions is unannotated: its "value" is not retrievable.
	q := mustQuery(t, "/Site/Regions")
	if _, err := shred.EvalReferenceAll(results, q); err == nil {
		t.Error("reference evaluation accepted an unannotated match")
	}
}

func TestStoreDumpMentionsEveryRelation(t *testing.T) {
	s := workloads.XMark()
	store := relational.NewStore()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 1, CategoriesPerItem: 1, NumCategories: 1, Seed: 1})
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatal(err)
	}
	dump := store.Dump()
	for _, rel := range s.Relations() {
		if !strings.Contains(dump, "TABLE "+rel) {
			t.Errorf("dump missing relation %s", rel)
		}
	}
}

func mustQuery(t *testing.T, q string) *pathexpr.Path {
	t.Helper()
	p, err := pathexpr.Parse(q)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestDeepRecursiveDocument(t *testing.T) {
	// A parts chain 3000 levels deep: alignment, shredding, reconstruction,
	// and translation must all handle documents far deeper than the schema.
	b := schema.NewBuilder("deep").
		Node("root", "Assembly", schema.Rel("Assembly")).
		Node("part", "Part", schema.Rel("Part")).
		Node("name", "Name", schema.Col("name")).
		Root("root").
		Edge("root", "part").
		Edge("part", "part").
		Edge("part", "name")
	s := b.MustBuild()

	const depth = 3000
	leaf := &xmltree.Node{Label: "Part", Children: []*xmltree.Node{xmltree.NewText("Name", "leaf")}}
	cur := leaf
	for i := 0; i < depth-1; i++ {
		cur = &xmltree.Node{Label: "Part", Children: []*xmltree.Node{
			xmltree.NewText("Name", "mid"),
			cur,
		}}
	}
	doc := &xmltree.Document{Root: &xmltree.Node{Label: "Assembly", Children: []*xmltree.Node{cur}}}

	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	if store.Table("Part").Len() != depth {
		t.Fatalf("Part has %d rows, want %d", store.Table("Part").Len(), depth)
	}
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Error("deep round trip mismatch")
	}
	// Reference evaluation over the deep chain (deep DFA walk).
	tmp := relational.NewStore()
	rs, err := shred.ShredAll(s, tmp, shred.Options{}, doc)
	if err != nil {
		t.Fatal(err)
	}
	vals, err := shred.EvalReferenceAll(rs, mustQuery(t, "//Part/Part/Name"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != depth-1 {
		t.Errorf("reference found %d subpart names, want %d", len(vals), depth-1)
	}
}
