package shred

import (
	"context"
	"fmt"

	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
)

// CheckLossless verifies that the relational instance satisfies the
// "lossless from XML" constraint for the mapping: every tuple is reachable
// from a document root via parentid links, is claimed by exactly one schema
// node position, and the documents it encodes conform to the schema. This is
// exactly "the data could have been produced by a shredding algorithm that
// respects the mapping" (§3.2); instances with orphan tuples, duplicated
// shreds, or schema-violating structure are rejected.
//
// The check runs the integrity auditor first, so a dirty instance is
// reported with every detectable violation (relation, tuple id, violated
// property P1–P3, repair hint) rather than just the first one; errors.As
// with *integrity.Error recovers the full typed report. A clean audit is
// then witnessed end to end by reconstructing the stored documents and
// checking schema conformance, exactly as before.
func CheckLossless(s *schema.Schema, store *relational.Store) error {
	rep, err := AuditStore(s, store)
	if err != nil {
		return fmt.Errorf("lossless check failed: %w", err)
	}
	if !rep.Clean() {
		return fmt.Errorf("lossless check failed: %w", rep.Err())
	}
	docs, err := Reconstruct(s, store)
	if err != nil {
		return fmt.Errorf("lossless check failed: %w", err)
	}
	for _, d := range docs {
		if !Conforms(s, d) {
			return fmt.Errorf("lossless check failed: reconstructed document rooted at <%s> does not conform to schema %s",
				d.Root.Label, s.Name)
		}
	}
	return nil
}

// AuditStore runs the integrity auditor (P1–P3 of §3.2) over an in-memory
// store and returns the full violation report.
func AuditStore(s *schema.Schema, store *relational.Store) (*integrity.Report, error) {
	return integrity.Audit(context.Background(), integrity.StoreSource(store), s)
}

// InjectOrphan inserts a tuple with a dangling parentid into the named
// relation — a violation of the lossless constraint used by the failure
// injection tests and the §4.1 discussion (data not loaded by a respecting
// shredder).
func InjectOrphan(s *schema.Schema, store *relational.Store, rel string, fakeParent int64) error {
	defs, err := s.DeriveRelations()
	if err != nil {
		return err
	}
	def, ok := defs[rel]
	if !ok {
		return fmt.Errorf("shred: relation %s not in mapping", rel)
	}
	t := store.Table(rel)
	if t == nil {
		return fmt.Errorf("shred: relation %s not in store", rel)
	}
	maxID := int64(0)
	for _, n := range store.TableNames() {
		tbl := store.Table(n)
		idx := tbl.Schema().ColumnIndex(schema.IDColumn)
		if idx < 0 {
			continue
		}
		for _, row := range tbl.Rows() {
			if !row[idx].IsNull() && row[idx].AsInt() > maxID {
				maxID = row[idx].AsInt()
			}
		}
	}
	ts := def.TableSchema()
	row := make(relational.Row, len(ts.Columns))
	for i, c := range ts.Columns {
		switch c.Name {
		case schema.IDColumn:
			row[i] = relational.Int(maxID + 1)
		case schema.ParentIDColumn:
			row[i] = relational.Int(fakeParent)
		default:
			row[i] = relational.Null
		}
	}
	return t.Insert(row)
}

// DuplicateTuple re-inserts a copy (with a fresh id) of the first tuple of
// the named relation — the "stored multiple times" violation.
func DuplicateTuple(s *schema.Schema, store *relational.Store, rel string) error {
	t := store.Table(rel)
	if t == nil {
		return fmt.Errorf("shred: relation %s not in store", rel)
	}
	if t.Len() == 0 {
		return fmt.Errorf("shred: relation %s is empty", rel)
	}
	src := t.Rows()[0].Clone()
	maxID := int64(0)
	idx := t.Schema().ColumnIndex(schema.IDColumn)
	for _, row := range t.Rows() {
		if row[idx].AsInt() > maxID {
			maxID = row[idx].AsInt()
		}
	}
	src[idx] = relational.Int(maxID + 1000000)
	return t.Insert(src)
}
