// Package shred implements the shredding algorithm "A" of §3.2 — a
// decomposition of XML documents into relational tuples that *respects* any
// XML-to-Relational mapping (properties P1–P3) — together with its inverse
// (reconstruction) and a checker for the "lossless from XML" constraint.
package shred

import (
	"fmt"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// Alignment maps every document element to the schema node it conforms to.
// Shredding, reference query evaluation, and conformance validation all
// derive from it.
type Alignment struct {
	Schema *schema.Schema
	Doc    *xmltree.Document
	nodeOf map[*xmltree.Node]schema.NodeID
}

// SchemaNodeOf returns the schema node a document element was aligned to.
func (a *Alignment) SchemaNodeOf(n *xmltree.Node) (schema.NodeID, bool) {
	id, ok := a.nodeOf[n]
	return id, ok
}

// Align matches the document against the schema, assigning each element a
// schema node. When several same-labelled schema children could host an
// element, the first (in schema declaration order) whose subtree accepts the
// element is chosen; mappings intended for lossless shredding are
// deterministic, and the checker reports genuinely ambiguous ones.
func Align(s *schema.Schema, d *xmltree.Document) (*Alignment, error) {
	return alignFrom(s, d, d.Root, s.Root())
}

// AlignAt matches a subtree rooted at elem against the schema subtree rooted
// at the given node, for the update path: a subtree being inserted under an
// existing element must conform at exactly the schema position it lands in,
// not at the document root.
func AlignAt(s *schema.Schema, elem *xmltree.Node, at schema.NodeID) (*Alignment, error) {
	return alignFrom(s, &xmltree.Document{Root: elem}, elem, at)
}

func alignFrom(s *schema.Schema, d *xmltree.Document, root *xmltree.Node, at schema.NodeID) (*Alignment, error) {
	a := &Alignment{Schema: s, Doc: d, nodeOf: map[*xmltree.Node]schema.NodeID{}}
	memo := map[*xmltree.Node]map[schema.NodeID]bool{}

	var accepts func(n *xmltree.Node, id schema.NodeID) bool
	accepts = func(n *xmltree.Node, id schema.NodeID) bool {
		if m, ok := memo[n]; ok {
			if v, ok := m[id]; ok {
				return v
			}
		} else {
			memo[n] = map[schema.NodeID]bool{}
		}
		memo[n][id] = false // provisional: recursive schemas terminate because doc is finite; cycle hits provisional false
		sn := s.Node(id)
		ok := sn.Label == n.Label
		if ok {
			for _, c := range n.Children {
				found := false
				for _, e := range sn.Children() {
					if accepts(c, e.To) {
						found = true
						break
					}
				}
				if !found {
					ok = false
					break
				}
			}
		}
		memo[n][id] = ok
		return ok
	}

	if !accepts(root, at) {
		return nil, fmt.Errorf("shred: element <%s> does not conform to schema node %s of %s", root.Label, s.Node(at).Name, s.Name)
	}

	var assign func(n *xmltree.Node, id schema.NodeID) error
	assign = func(n *xmltree.Node, id schema.NodeID) error {
		a.nodeOf[n] = id
		sn := s.Node(id)
		for _, c := range n.Children {
			var chosen schema.NodeID = -1
			for _, e := range sn.Children() {
				if accepts(c, e.To) {
					chosen = e.To
					break
				}
			}
			if chosen < 0 {
				return fmt.Errorf("shred: element <%s> under <%s> conforms to no child of schema node %s",
					c.Label, n.Label, sn.Name)
			}
			if err := assign(c, chosen); err != nil {
				return err
			}
		}
		return nil
	}
	if err := assign(root, at); err != nil {
		return nil, err
	}
	return a, nil
}

// Conforms reports whether the document conforms to the schema.
func Conforms(s *schema.Schema, d *xmltree.Document) bool {
	_, err := Align(s, d)
	return err == nil
}
