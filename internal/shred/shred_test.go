package shred_test

import (
	"testing"

	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
)

func TestShredXMarkRoundTrip(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	results, err := shred.ShredAll(s, store, shred.Options{}, doc)
	if err != nil {
		t.Fatalf("shred: %v", err)
	}
	if results[0].Tuples == 0 {
		t.Fatal("no tuples produced")
	}
	wantTuples := 1 /*site*/ + 6*20 /*items*/ + 6*20*2 /*incats*/
	if got := store.TotalRows(); got != wantTuples {
		t.Fatalf("store has %d rows, want %d", got, wantTuples)
	}

	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if len(docs) != 1 {
		t.Fatalf("reconstructed %d documents, want 1", len(docs))
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Errorf("round trip mismatch:\noriginal (canonical):\n%s\nreconstructed (canonical):\n%s",
			doc.Canonicalize(), docs[0].Canonicalize())
	}
	if err := shred.CheckLossless(s, store); err != nil {
		t.Errorf("lossless check: %v", err)
	}
}

func TestShredS1RoundTrip(t *testing.T) {
	s := workloads.S1()
	doc := workloads.GenerateS1(10, 42)
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Errorf("round trip mismatch")
	}
}

func TestShredS2RoundTrip(t *testing.T) {
	s := workloads.S2()
	doc := workloads.GenerateS2(8, 7)
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Errorf("round trip mismatch")
	}
}

func TestShredS3RoundTrip(t *testing.T) {
	s := workloads.S3()
	doc := workloads.GenerateS3(workloads.DefaultS3Config())
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	docs, err := shred.Reconstruct(s, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Errorf("round trip mismatch:\noriginal:\n%s\nreconstructed:\n%s",
			doc.Canonicalize(), docs[0].Canonicalize())
	}
}

func TestShredEdgeMappingRoundTrip(t *testing.T) {
	base := workloads.XMark()
	es, err := shred.EdgeSchemaFor(base)
	if err != nil {
		t.Fatalf("edge schema: %v", err)
	}
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	if _, err := shred.ShredAll(es, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	if store.Table(shred.EdgeRelation) == nil {
		t.Fatal("no Edge table created")
	}
	if got, want := store.TotalRows(), doc.CountNodes(); got != want {
		t.Fatalf("Edge table has %d rows, want %d (one per element)", got, want)
	}
	docs, err := shred.Reconstruct(es, store)
	if err != nil {
		t.Fatalf("reconstruct: %v", err)
	}
	if !docs[0].Canonicalize().Equal(doc.Canonicalize()) {
		t.Errorf("round trip mismatch")
	}
}

func TestCheckLosslessDetectsOrphan(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	if err := shred.InjectOrphan(s, store, "InCat", 99999999); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := shred.CheckLossless(s, store); err == nil {
		t.Error("lossless check accepted an instance with an orphan tuple")
	}
}

func TestCheckLosslessDetectsMisparentedTuple(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	// An InCat tuple hung under another InCat tuple: the schema gives
	// InCategory no InCategory children, so the tuple is unassignable.
	existing := store.Table("InCat").Rows()[0]
	parentID := existing[store.Table("InCat").Schema().ColumnIndex("id")].AsInt()
	if err := shred.InjectOrphan(s, store, "InCat", parentID); err != nil {
		t.Fatalf("inject: %v", err)
	}
	if err := shred.CheckLossless(s, store); err == nil {
		t.Error("lossless check accepted a tuple parented under the wrong relation")
	}
}

func TestDuplicateWithFreshIDIsUndetectable(t *testing.T) {
	// Re-inserting a copy of a tuple under a fresh id is indistinguishable
	// from shredding a document that contained two identical elements — the
	// "lossless from XML" constraint is a statement about provenance, not a
	// property decidable from the instance alone (§3.2: the shredding
	// *algorithm* is validated once; the constraint then holds by
	// construction). The checker must therefore accept such an instance.
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
		t.Fatalf("shred: %v", err)
	}
	if err := shred.DuplicateTuple(s, store, "InCat"); err != nil {
		t.Fatalf("duplicate: %v", err)
	}
	if err := shred.CheckLossless(s, store); err != nil {
		t.Errorf("checker rejected an instance consistent with a valid shredding: %v", err)
	}
}
