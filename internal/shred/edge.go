package shred

import (
	"fmt"

	"xmlsql/internal/schema"
)

// EdgeRelation is the name of the generic relation used by schema-oblivious
// (Edge) storage [Florescu & Kossmann], §5.3 of the paper.
const EdgeRelation = "Edge"

// EdgeTagColumn is the condition column distinguishing element tags in the
// Edge relation.
const EdgeTagColumn = "tag"

// EdgeValueColumn holds element text values in the Edge relation.
const EdgeValueColumn = "value"

// EdgeSchemaFor derives the schema-oblivious mapping of Figure 10 from a
// plain XML schema: the same graph, but every node is annotated with the
// single Edge relation and the node condition "tag = '<label>'" (the Edge
// shredder of [7] stores every element's tag, including the root's), and
// every value-bearing node stores its text in Edge.value. Shredding this
// mapping with the ordinary shredder produces the classic Edge table
// (id, parentid, tag, value); the "lossless from XML" constraint holds just
// as for schema-aware storage, which is what lets the pruning algorithm emit
// the short self-joins of §5.3.
func EdgeSchemaFor(s *schema.Schema) (*schema.Schema, error) {
	b := schema.NewBuilder(s.Name + "_edge")
	for _, n := range s.Nodes() {
		opts := []schema.NodeOpt{
			schema.Rel(EdgeRelation),
			schema.CondString(EdgeTagColumn, n.Label),
		}
		if n.Column != "" || n.IsLeaf() {
			if n.Column == schema.IDColumn {
				opts = append(opts, schema.Col(schema.IDColumn))
			} else {
				opts = append(opts, schema.Col(EdgeValueColumn))
			}
		}
		b.Node(n.Name, n.Label, opts...)
	}
	b.Root(s.RootNode().Name)
	for _, e := range s.Edges() {
		b.Edge(s.Node(e.From).Name, s.Node(e.To).Name)
	}
	es, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("shred: deriving edge mapping: %w", err)
	}
	return es, nil
}
