package stats_test

import (
	"fmt"
	"testing"

	"xmlsql/internal/bench"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/stats"
	"xmlsql/internal/translate"
)

// handStore builds a two-table store with known exact statistics:
//
//	parent(id, name):            4 rows, distinct names {a,b,c} (one repeated)
//	child(id, parentid, score):  7 rows, parentid fan-out 7/3, two NULL scores
func handStore(t *testing.T) *relational.Store {
	t.Helper()
	store := relational.NewStore()
	parent, err := store.CreateTable(&relational.TableSchema{
		Name:       "parent",
		Columns:    []relational.Column{{Name: "id", Kind: relational.KindInt}, {Name: "name", Kind: relational.KindString}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range []string{"a", "b", "c", "a"} {
		parent.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.String(name)})
	}
	child, err := store.CreateTable(&relational.TableSchema{
		Name: "child",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "score", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	scores := []relational.Value{
		relational.Int(10), relational.Int(20), relational.Value{}, // NULL
		relational.Int(10), relational.Int(-5), relational.Value{}, // NULL
		relational.Int(30),
	}
	parents := []int64{1, 1, 1, 2, 2, 3, 3}
	for i := range scores {
		child.MustInsert(relational.Row{relational.Int(int64(i + 1)), relational.Int(parents[i]), scores[i]})
	}
	return store
}

// TestCollectExactness checks every collected figure against hand counts:
// row counts, distinct values, null counts, integer min/max, and histogram
// buckets.
func TestCollectExactness(t *testing.T) {
	s := stats.CollectStore(handStore(t))
	if s.TotalRows != 11 {
		t.Fatalf("TotalRows = %d, want 11", s.TotalRows)
	}

	p := s.Table("parent")
	if p == nil || p.Rows != 4 {
		t.Fatalf("parent rows = %+v, want 4", p)
	}
	name := p.Column("name")
	if name.Distinct != 3 || name.Nulls != 0 {
		t.Fatalf("parent.name distinct=%d nulls=%d, want 3, 0", name.Distinct, name.Nulls)
	}
	if got := name.Histogram[relational.String("a").Key()]; got != 2 {
		t.Fatalf("histogram[a] = %d, want 2", got)
	}
	if got := name.Histogram[relational.String("b").Key()]; got != 1 {
		t.Fatalf("histogram[b] = %d, want 1", got)
	}

	c := s.Table("child")
	if c.Rows != 7 {
		t.Fatalf("child rows = %d, want 7", c.Rows)
	}
	score := c.Column("score")
	if score.Nulls != 2 || score.Distinct != 4 {
		t.Fatalf("child.score nulls=%d distinct=%d, want 2, 4", score.Nulls, score.Distinct)
	}
	if !score.HasMinMax || score.Min != -5 || score.Max != 30 {
		t.Fatalf("child.score min/max = %v %d %d, want -5..30", score.HasMinMax, score.Min, score.Max)
	}
	pid := c.Column("parentid")
	if pid.Distinct != 3 {
		t.Fatalf("child.parentid distinct = %d, want 3", pid.Distinct)
	}
	if fan := c.FanOut("parentid"); fan < 2.33 || fan > 2.34 {
		t.Fatalf("child.parentid fan-out = %g, want 7/3", fan)
	}
	if frac := c.EqFraction("parentid", relational.Int(1)); frac != 3.0/7.0 {
		t.Fatalf("EqFraction(parentid=1) = %g, want 3/7", frac)
	}
	if frac := c.NullFraction("score"); frac != 2.0/7.0 {
		t.Fatalf("NullFraction(score) = %g, want 2/7", frac)
	}
}

// TestHistogramOverflow checks that a column crossing HistogramCap distinct
// values demotes to distinct-only tracking: no histogram survives, but the
// distinct count stays exact.
func TestHistogramOverflow(t *testing.T) {
	store := relational.NewStore()
	tbl, err := store.CreateTable(&relational.TableSchema{
		Name:       "wide",
		Columns:    []relational.Column{{Name: "id", Kind: relational.KindInt}, {Name: "v", Kind: relational.KindString}},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	n := stats.HistogramCap*3 + 7
	for i := 0; i < n; i++ {
		tbl.MustInsert(relational.Row{relational.Int(int64(i)), relational.String(fmt.Sprintf("v%04d", i))})
	}
	c := stats.CollectStore(store).Table("wide").Column("v")
	if c.Histogram != nil {
		t.Fatalf("histogram kept for %d distinct values (cap %d)", c.Distinct, stats.HistogramCap)
	}
	if c.Distinct != int64(n) {
		t.Fatalf("distinct = %d, want %d", c.Distinct, n)
	}
	// A narrow column in the same table keeps its histogram.
	if id := stats.CollectStore(store).Table("wide").Column("id"); id.Histogram != nil {
		// id also overflows (n distinct) — expected nil too.
		t.Fatalf("id histogram unexpectedly kept")
	}
}

// TestFingerprintTracksMutations checks the staleness contract at the stats
// level: identical data fingerprints identically across re-collections, and
// any mutation (delete, update) changes the fingerprint.
func TestFingerprintTracksMutations(t *testing.T) {
	store := handStore(t)
	fp1 := stats.CollectStore(store).Fingerprint()
	fp2 := stats.CollectStore(store).Fingerprint()
	if fp1 != fp2 {
		t.Fatalf("re-collection over unchanged data changed fingerprint: %s vs %s", fp1, fp2)
	}

	child := store.Table("child")
	if n := child.DeleteWhere(func(r relational.Row) bool { return r[1].Equal(relational.Int(3)) }); n != 2 {
		t.Fatalf("deleted %d rows, want 2", n)
	}
	fp3 := stats.CollectStore(store).Fingerprint()
	if fp3 == fp1 {
		t.Fatalf("DeleteWhere did not change fingerprint %s", fp1)
	}

	if _, err := child.UpdateWhere(
		func(r relational.Row) bool { return r[2].Equal(relational.Int(10)) },
		func(r relational.Row) relational.Row { r[2] = relational.Int(11); return r },
	); err != nil {
		t.Fatal(err)
	}
	if fp4 := stats.CollectStore(store).Fingerprint(); fp4 == fp3 {
		t.Fatalf("UpdateWhere did not change fingerprint %s", fp3)
	}
}

// TestEstimatorBoundedError executes every headline bench case and checks the
// estimator's predicted cardinality for the pruned (or fallback) translation
// against the exact result size: within a factor of 4 both ways. The pruned
// plan is the one adaptive serving estimates, so this bounds the error the
// knob chooser actually acts on.
func TestEstimatorBoundedError(t *testing.T) {
	const maxFactor = 4.0
	for _, c := range bench.Suite(bench.DefaultScale()) {
		store := relational.NewStore()
		if _, err := shred.ShredAll(c.Schema, store, c.ShredOpts, c.Doc); err != nil {
			t.Fatalf("%s %s: shred: %v", c.Experiment, c.Query, err)
		}
		q, err := pathexpr.Parse(c.Query)
		if err != nil {
			t.Fatal(err)
		}
		g, err := pathid.Build(c.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := core.Translate(g)
		if err != nil {
			t.Fatal(err)
		}
		res, err := engine.Execute(store, pruned.Query)
		if err != nil {
			t.Fatalf("%s %s: execute: %v", c.Experiment, c.Query, err)
		}
		est := stats.NewEstimator(stats.CollectStore(store)).EstimateQuery(pruned.Query)
		actual := float64(res.Len())
		if actual == 0 {
			continue // no bounded-ratio claim on empty results
		}
		if est.Rows > actual*maxFactor || est.Rows < actual/maxFactor {
			t.Errorf("%s %-45s estimated %.1f rows, actual %.0f (outside %gx)",
				c.Experiment, c.Query, est.Rows, actual, maxFactor)
		}
		if est.Cost <= 0 {
			t.Errorf("%s %s: non-positive cost %g", c.Experiment, c.Query, est.Cost)
		}
	}
}

// TestEstimatorRecursiveCTE checks that translations carrying a recursive
// CTE (the E6 descendant-under-recursion cases) produce a CTE estimate with
// bounded fixpoint rounds, a positive cost, and branch detail.
func TestEstimatorRecursiveCTE(t *testing.T) {
	tested := 0
	for _, c := range bench.Suite(bench.DefaultScale()) {
		q, err := pathexpr.Parse(c.Query)
		if err != nil {
			t.Fatal(err)
		}
		g, err := pathid.Build(c.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := translate.Naive(g)
		if err != nil {
			t.Fatal(err)
		}
		hasRec := false
		for _, cte := range naive.With {
			if cte.Recursive {
				hasRec = true
			}
		}
		if !hasRec {
			continue
		}
		store := relational.NewStore()
		if _, err := shred.ShredAll(c.Schema, store, c.ShredOpts, c.Doc); err != nil {
			t.Fatal(err)
		}
		est := stats.NewEstimator(stats.CollectStore(store)).EstimateQuery(naive)
		recursive := 0
		for _, cte := range est.CTEs {
			if !cte.Recursive {
				continue
			}
			recursive++
			if cte.Rounds < 1 || cte.Rounds > stats.FixpointDepth {
				t.Fatalf("%s: recursive CTE %s rounds = %d, want 1..%d", c.Query, cte.Name, cte.Rounds, stats.FixpointDepth)
			}
			if cte.Cost <= 0 {
				t.Fatalf("%s: recursive CTE %s cost = %g", c.Query, cte.Name, cte.Cost)
			}
		}
		if recursive == 0 {
			t.Fatalf("%s: recursive SQL estimated without a recursive CTE entry", c.Query)
		}
		if len(est.Branches) == 0 {
			t.Fatalf("%s: estimate carries no branch detail", c.Query)
		}
		tested++
	}
	if tested == 0 {
		t.Fatal("no bench case translated to recursive SQL; estimator's CTE path untested")
	}
}

// TestFingerprintForScope checks the relation-scoped fingerprint: stable
// across writes to other relations (and across version-only changes), moved
// by writes to a named relation, and stable under rels ordering.
func TestFingerprintForScope(t *testing.T) {
	store := handStore(t)
	before := stats.CollectStore(store)

	fpChild := before.FingerprintFor([]string{"child"})
	fpParent := before.FingerprintFor([]string{"parent"})
	fpBoth := before.FingerprintFor([]string{"parent", "child"})
	if fpBoth != before.FingerprintFor([]string{"child", "parent"}) {
		t.Fatal("FingerprintFor is order-sensitive")
	}

	// Mutate parent only.
	store.Table("parent").MustInsert(relational.Row{relational.Int(99), relational.String("z")})
	after := stats.CollectStore(store)

	if got := after.FingerprintFor([]string{"child"}); got != fpChild {
		t.Fatalf("child fingerprint moved on a parent-only write: %s -> %s", fpChild, got)
	}
	if got := after.FingerprintFor([]string{"parent"}); got == fpParent {
		t.Fatal("parent fingerprint unchanged by a parent write")
	}
	if got := after.FingerprintFor([]string{"parent", "child"}); got == fpBoth {
		t.Fatal("union fingerprint unchanged by a member write")
	}
	// The full (unscoped) fingerprint must also have moved.
	if before.Fingerprint() == after.Fingerprint() {
		t.Fatal("global fingerprint unchanged by a write")
	}
	// Unknown relations are representable and distinct from known ones.
	if after.FingerprintFor([]string{"nope"}) == after.FingerprintFor([]string{"child"}) {
		t.Fatal("absent relation fingerprints like a present one")
	}
}
