package stats_test

// Calibration probe: prints the estimator's naive-vs-pruned cost ratio for
// every headline bench case, so the PlanMargin constant can be sanity-checked
// against the measured speedups in BENCH_xmlsql.json. Run with:
//   go test ./internal/stats -run TestCalibrationDump -v -calib

import (
	"flag"
	"testing"

	"xmlsql/internal/bench"
	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/stats"
	"xmlsql/internal/translate"
)

var calib = flag.Bool("calib", false, "print estimator calibration table")

func TestCalibrationDump(t *testing.T) {
	if !*calib {
		t.Skip("calibration dump disabled; pass -calib")
	}
	for _, c := range bench.Suite(bench.DefaultScale()) {
		store := relational.NewStore()
		if _, err := shred.ShredAll(c.Schema, store, c.ShredOpts, c.Doc); err != nil {
			t.Fatalf("%s %s: shred: %v", c.Experiment, c.Query, err)
		}
		q, err := pathexpr.Parse(c.Query)
		if err != nil {
			t.Fatal(err)
		}
		g, err := pathid.Build(c.Schema, q)
		if err != nil {
			t.Fatal(err)
		}
		naive, err := translate.Naive(g)
		if err != nil {
			t.Fatal(err)
		}
		pruned, err := core.Translate(g)
		if err != nil {
			t.Fatal(err)
		}
		est := stats.NewEstimator(stats.CollectStore(store))
		ne := est.EstimateQuery(naive)
		pe := est.EstimateQuery(pruned.Query)
		ratio := 0.0
		if ne.Cost > 0 {
			ratio = pe.Cost / ne.Cost
		}
		t.Logf("%-3s %-16s %-45s naive(cost=%9.0f rows=%8.0f) pruned(cost=%9.0f rows=%8.0f) ratio=%.3f fallback=%v",
			c.Experiment, c.Workload, c.Query, ne.Cost, ne.Rows, pe.Cost, pe.Rows, ratio, pruned.Fallback)
	}
}
