// Package stats collects table statistics over shredded relational
// instances and estimates the cardinality and cost of translated SQL.
//
// The paper's pruned translations win big on average, but every execution
// knob in this repo used to be global: parallelism was branch-count-driven,
// the subplan memo and the factoring rewrite were on or off for every
// query, and the pruned translation was always preferred over the baseline
// even on the handful of queries where pruning removes only a one-row join
// and the measured "win" is noise. This package supplies the missing
// ingredient for choosing per query: per-relation row counts, per-column
// distinct counts and min/max, small-domain value histograms (the
// parentcode/kindcode selectivity the translators filter on), and
// parent→child join fan-out — plus an estimator that walks a sqlast tree
// and predicts output rows and intermediate-join sizes per branch.
//
// Collection is a single scan per relation (CollectStore for the in-memory
// store, Collect for any row source, e.g. a Backend's SELECT * probe), so
// it piggybacks naturally on shred/load time. Statistics carry the store's
// mutation version and a content fingerprint; plan caches embed the
// fingerprint in their keys so stale statistics re-plan instead of serving
// decisions made against data that has since changed.
package stats

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"

	"xmlsql/internal/relational"
)

// HistogramCap bounds the number of distinct values a column may have for a
// full value->count histogram to be kept. The columns that matter for
// selectivity estimation — parentcode, kindcode, tag — have tiny domains
// (one value per schema edge); wide domains (ids, text values) keep only
// the distinct count.
const HistogramCap = 64

// ColumnStats summarizes one column of one relation.
type ColumnStats struct {
	Name string `json:"name"`
	// Distinct is the exact number of distinct non-NULL values.
	Distinct int64 `json:"distinct"`
	// Nulls is the number of NULL entries.
	Nulls int64 `json:"nulls,omitempty"`
	// Min/Max bound integer columns (valid when HasMinMax).
	HasMinMax bool  `json:"has_min_max,omitempty"`
	Min       int64 `json:"min,omitempty"`
	Max       int64 `json:"max,omitempty"`
	// Histogram maps Value.Key() to its exact occurrence count, kept only
	// while the column stays within HistogramCap distinct values. For the
	// edge-condition columns the translators filter on (parentcode,
	// kindcode, tag) this makes equality selectivity exact.
	Histogram map[string]int64 `json:"histogram,omitempty"`
}

// TableStats summarizes one relation.
type TableStats struct {
	Relation string `json:"relation"`
	Rows     int64  `json:"rows"`
	// Columns is keyed by column name.
	Columns map[string]*ColumnStats `json:"columns"`
}

// Stats is a full statistics snapshot of one relational instance.
type Stats struct {
	// Relations is keyed by relation name.
	Relations map[string]*TableStats `json:"relations"`
	// Version is the store's mutation version at collection time (see
	// relational.Store.Version); a differing live version means the
	// snapshot is stale.
	Version uint64 `json:"version"`
	// TotalRows sums Rows across relations.
	TotalRows int64 `json:"total_rows"`

	fp string // memoized fingerprint
}

// Table returns the named relation's statistics, or nil.
func (s *Stats) Table(name string) *TableStats {
	if s == nil {
		return nil
	}
	return s.Relations[name]
}

// Column returns the named column's statistics, or nil.
func (t *TableStats) Column(name string) *ColumnStats {
	if t == nil {
		return nil
	}
	return t.Columns[name]
}

// DistinctOr returns the column's distinct count, or def when unknown or
// zero (def keeps downstream selectivity math away from divisions by zero).
func (t *TableStats) DistinctOr(col string, def int64) int64 {
	if c := t.Column(col); c != nil && c.Distinct > 0 {
		return c.Distinct
	}
	return def
}

// FanOut estimates the average number of rows per distinct non-NULL value
// of the column — for a "parentid" column this is exactly the parent→child
// join fan-out the estimator multiplies through join chains.
func (t *TableStats) FanOut(col string) float64 {
	if t == nil || t.Rows == 0 {
		return 1
	}
	c := t.Column(col)
	if c == nil || c.Distinct == 0 {
		return 1
	}
	return float64(t.Rows-c.Nulls) / float64(c.Distinct)
}

// EqFraction estimates the fraction of the relation's rows whose column
// equals the value: exact from the histogram when present, else the uniform
// 1/distinct assumption.
func (t *TableStats) EqFraction(col string, v relational.Value) float64 {
	if t == nil || t.Rows == 0 {
		return 0
	}
	c := t.Column(col)
	if c == nil {
		return defaultEqSelectivity
	}
	if c.Histogram != nil {
		return float64(c.Histogram[v.Key()]) / float64(t.Rows)
	}
	if c.Distinct > 0 {
		return 1 / float64(c.Distinct)
	}
	return defaultEqSelectivity
}

// NullFraction estimates the fraction of rows whose column is NULL.
func (t *TableStats) NullFraction(col string) float64 {
	if t == nil || t.Rows == 0 {
		return 0
	}
	if c := t.Column(col); c != nil {
		return float64(c.Nulls) / float64(t.Rows)
	}
	return 0
}

// defaultEqSelectivity is the classic System-R fallback for equality
// predicates on columns without statistics.
const defaultEqSelectivity = 0.1

// Fingerprint returns a stable content hash of the snapshot (relation and
// column counts, histograms, and the mutation version). Two snapshots of
// the same data fingerprint identically; any mutation that changes a row
// count, a histogram bucket, or the store version changes it. Plan caches
// embed it in keys so decisions made against stale statistics age out.
func (s *Stats) Fingerprint() string {
	if s == nil {
		return "stats:none"
	}
	if s.fp != "" {
		return s.fp
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|", s.Version)
	names := make([]string, 0, len(s.Relations))
	for n := range s.Relations {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		t := s.Relations[n]
		fmt.Fprintf(h, "%s:%d{", n, t.Rows)
		cols := make([]string, 0, len(t.Columns))
		for c := range t.Columns {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, cn := range cols {
			c := t.Columns[cn]
			fmt.Fprintf(h, "%s=%d,%d,%d,%d;", cn, c.Distinct, c.Nulls, c.Min, c.Max)
			if c.Histogram != nil {
				keys := make([]string, 0, len(c.Histogram))
				for k := range c.Histogram {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(h, "%s=%d,", k, c.Histogram[k])
				}
			}
		}
		h.Write([]byte("}"))
	}
	s.fp = "stats:" + strconv.FormatUint(h.Sum64(), 36)
	return s.fp
}

// FingerprintFor hashes only the named relations' statistics, without the
// store-wide Version. A plan cached under the scoped fingerprint of the
// relations it reads stays valid across writes to *other* relations — the
// store version moves, but this hash does not — while a refreshed snapshot
// of a touched relation changes the hash and forces a re-plan. rels is
// sorted internally; unknown relations hash as absent.
func (s *Stats) FingerprintFor(rels []string) string {
	if s == nil {
		return "stats:none"
	}
	h := fnv.New64a()
	names := append([]string(nil), rels...)
	sort.Strings(names)
	for _, n := range names {
		t := s.Relations[n]
		if t == nil {
			fmt.Fprintf(h, "%s:absent{}", n)
			continue
		}
		fmt.Fprintf(h, "%s:%d{", n, t.Rows)
		cols := make([]string, 0, len(t.Columns))
		for c := range t.Columns {
			cols = append(cols, c)
		}
		sort.Strings(cols)
		for _, cn := range cols {
			c := t.Columns[cn]
			fmt.Fprintf(h, "%s=%d,%d,%d,%d;", cn, c.Distinct, c.Nulls, c.Min, c.Max)
			if c.Histogram != nil {
				keys := make([]string, 0, len(c.Histogram))
				for k := range c.Histogram {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				for _, k := range keys {
					fmt.Fprintf(h, "%s=%d,", k, c.Histogram[k])
				}
			}
		}
		h.Write([]byte("}"))
	}
	return "stats/rel:" + strconv.FormatUint(h.Sum64(), 36)
}

// MarshalJSON includes the fingerprint alongside the snapshot so dumps
// (xml2sql -stats) identify exactly which statistics a plan was chosen
// under.
func (s *Stats) MarshalJSON() ([]byte, error) {
	type alias Stats // shed methods to avoid recursion
	return json.Marshal(struct {
		Fingerprint string `json:"fingerprint"`
		*alias
	}{Fingerprint: s.Fingerprint(), alias: (*alias)(s)})
}

// String renders a compact human-readable summary (for -explain output).
func (s *Stats) String() string {
	if s == nil {
		return "no statistics"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "statistics %s: %d relations, %d rows", s.Fingerprint(), len(s.Relations), s.TotalRows)
	return b.String()
}
