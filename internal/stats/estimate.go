package stats

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// Cost model constants. Costs are abstract row-operation units, not
// nanoseconds: the chooser only ever compares costs of alternative plans for
// the same query, so only ratios matter. The weights mirror where the
// engine actually spends time (see internal/engine): scanning and filtering
// a relation touches every row once, hash builds touch every build row,
// index and hash probes touch every probe row, and every join output row is
// a fresh slice allocation plus two copies — the dominant term, hence the
// higher weight.
const (
	costScanRow  = 1.0 // filter pass over a resolved relation
	costBuildRow = 1.5 // hash-table insert of one build-side row
	costProbeRow = 1.0 // one index or hash probe
	costOutRow   = 2.0 // one materialized join-output or projected row
	costBranch   = 48  // fixed per SELECT branch (setup, bindings, merge)
	costCTERound = 32  // fixed per recursive fixpoint round
)

// FixpointDepth is the estimator's recursive-CTE depth heuristic: instead
// of solving the fixpoint, it assumes the per-round row multiplier observed
// on the first round persists for at most this many rounds (shredded XML is
// acyclic, so real recursion depth is the document depth — small).
const FixpointDepth = 8

// defaultRows is assumed for relations with no statistics.
const defaultRows = 1000

// unknownSel is the selectivity of predicates the estimator cannot reason
// about (residual ORs across aliases, comparisons of two columns of
// unstatted relations).
const unknownSel = 0.25

// Decision thresholds. Calibrated against the repo's benchmark suite (see
// EXPERIMENTS.md): the margins are deliberately asymmetric — a knob is
// flipped away from the baseline only when the estimate clearly pays,
// because near-ties are noise and the baseline is the measured-safe choice.
const (
	// PlanMargin: prefer the pruned translation only when its estimated
	// cost is below this fraction of the baseline's. The regressing headline
	// cases (BENCH_xmlsql.json speedups 0.86–0.97x) all prune a join with a
	// one-row relation — estimated costs within a few percent — while the
	// real wins drop whole join chains (≤ 0.7x estimated). 0.85 splits them.
	PlanMargin = 0.85
	// FactorMargin: adopt the prefix-factored rewrite only when it is
	// estimated at least this much cheaper.
	FactorMargin = 0.9
	// ReorderMargin: adopt a greedy join reorder only when estimated at
	// least this much cheaper than the translator's original order.
	ReorderMargin = 0.9
	// ParallelMinBranchCost is the minimum estimated per-branch work (cost
	// units) for the UNION ALL worker pool to pay for itself. Branches
	// below it finish faster than the goroutine handoff they would cost.
	ParallelMinBranchCost = 12000
	// MemoMinReuseCost is the minimum estimated shared-prefix recomputation
	// cost for the subplan memo's locking overhead to pay for itself.
	MemoMinReuseCost = 256
)

// Estimator estimates cardinalities and costs of sqlast queries against one
// statistics snapshot.
type Estimator struct {
	Stats *Stats
}

// NewEstimator wraps a snapshot (nil is legal: everything defaults).
func NewEstimator(s *Stats) *Estimator { return &Estimator{Stats: s} }

// StepEstimate is the estimated frame state after one FROM item of a
// left-deep join pipeline.
type StepEstimate struct {
	Alias  string  `json:"alias"`
	Source string  `json:"source"`
	InRows float64 `json:"in_rows"` // relation rows after local filters
	Rows   float64 `json:"rows"`    // cumulative frame rows after this join
	Cost   float64 `json:"cost"`    // cumulative branch cost through this step
	Index  bool    `json:"index"`   // expected to run as an index probe
}

// BranchEstimate is the estimate for one SELECT branch.
type BranchEstimate struct {
	CTE   string         `json:"cte,omitempty"` // owning CTE name, "" = main body
	Index int            `json:"index"`         // branch position within its owner
	Rows  float64        `json:"rows"`
	Cost  float64        `json:"cost"`
	Steps []StepEstimate `json:"steps,omitempty"`
}

// CTEEstimate is the estimate for one WITH definition.
type CTEEstimate struct {
	Name      string  `json:"name"`
	Recursive bool    `json:"recursive,omitempty"`
	Rounds    int     `json:"rounds,omitempty"` // fixpoint rounds assumed
	Rows      float64 `json:"rows"`
	Cost      float64 `json:"cost"`
}

// QueryEstimate is the full estimate for one query.
type QueryEstimate struct {
	Rows     float64          `json:"rows"`
	Cost     float64          `json:"cost"`
	CTEs     []CTEEstimate    `json:"ctes,omitempty"`
	Branches []BranchEstimate `json:"branches,omitempty"`
	// MaxBranchCost is the largest single top-level branch cost — the
	// serial critical path a parallel worker pool cannot shrink below.
	MaxBranchCost float64 `json:"max_branch_cost"`
	// SharedReuseRows/Cost estimate what the subplan memo would save:
	// duplicate canonical join prefixes across branches, weighted by the
	// rows and cost of the prefix each duplicate avoids recomputing.
	SharedReuseRows float64 `json:"shared_reuse_rows"`
	SharedReuseCost float64 `json:"shared_reuse_cost"`
}

// ParallelWorthwhile reports whether the branch worker pool is expected to
// pay for itself on this query given the available processors: at least two
// top-level branches, more than one processor, and enough estimated work
// per branch to amortize goroutine handoff.
func (q *QueryEstimate) ParallelWorthwhile(procs int) bool {
	if q == nil || procs < 2 || len(q.Branches) < 2 {
		return false
	}
	perBranch := q.Cost / float64(len(q.Branches))
	return perBranch >= ParallelMinBranchCost
}

// MemoWorthwhile reports whether the shared-work subplan memo is expected
// to pay for itself: positive estimated shared-prefix reuse.
func (q *QueryEstimate) MemoWorthwhile() bool {
	return q != nil && q.SharedReuseCost >= MemoMinReuseCost
}

// colEst is the estimator's view of one column: distinct values, NULL
// fraction, and (for small domains) exact per-value fractions.
type colEst struct {
	distinct float64
	nullFrac float64
	histFrac map[string]float64 // Value.Key() -> fraction of rows
}

// relEst is the estimator's view of one relation or CTE materialization.
type relEst struct {
	source string // base table name, or CTE name
	rows   float64
	cols   map[string]*colEst
	base   bool // true for base tables (index probes possible)
}

func (e *Estimator) baseRel(name string) *relEst {
	t := e.Stats.Table(name)
	if t == nil {
		return &relEst{source: name, rows: defaultRows, cols: map[string]*colEst{}, base: true}
	}
	r := &relEst{source: name, rows: float64(t.Rows), cols: make(map[string]*colEst, len(t.Columns)), base: true}
	for cn, cs := range t.Columns {
		ce := &colEst{distinct: float64(cs.Distinct)}
		if t.Rows > 0 {
			ce.nullFrac = float64(cs.Nulls) / float64(t.Rows)
			if cs.Histogram != nil {
				ce.histFrac = make(map[string]float64, len(cs.Histogram))
				for k, n := range cs.Histogram {
					ce.histFrac[k] = float64(n) / float64(t.Rows)
				}
			}
		}
		r.cols[cn] = ce
	}
	return r
}

func (r *relEst) col(name string) *colEst {
	if c, ok := r.cols[name]; ok {
		return c
	}
	return nil
}

// Bound is an estimation context with the query's CTEs resolved to
// synthetic relation estimates; it lets callers (the join reorderer, the
// explain printer) estimate individual SELECT blocks under the same CTE
// bindings EstimateQuery used.
type Bound struct {
	est  *Estimator
	ctes map[string]*relEst
	Est  *QueryEstimate
}

// EstimateQuery estimates q: CTEs in definition order (recursive ones via
// the fixpoint-depth heuristic), then the top-level UNION ALL branches.
func (e *Estimator) EstimateQuery(q *sqlast.Query) *QueryEstimate {
	b, _ := e.Bind(q)
	return b.Est
}

// Bind estimates q and returns the bound context (see Bound). The error is
// advisory: estimation always completes with defaults on unknown shapes.
func (e *Estimator) Bind(q *sqlast.Query) (*Bound, error) {
	b := &Bound{est: e, ctes: map[string]*relEst{}, Est: &QueryEstimate{}}
	var firstErr error
	for _, cte := range q.With {
		ce, err := b.bindCTE(cte)
		if err != nil && firstErr == nil {
			firstErr = err
		}
		b.Est.CTEs = append(b.Est.CTEs, ce)
		b.Est.Cost += ce.Cost
	}
	for i, s := range q.Selects {
		be := b.SelectEstimate(s)
		be.Index = i
		b.Est.Branches = append(b.Est.Branches, be)
		b.Est.Rows += be.Rows
		b.Est.Cost += be.Cost
		if be.Cost > b.Est.MaxBranchCost {
			b.Est.MaxBranchCost = be.Cost
		}
	}
	b.Est.SharedReuseRows, b.Est.SharedReuseCost = b.sharedReuse(q)
	return b, firstErr
}

// bindCTE estimates one WITH definition and binds its name to a synthetic
// relation estimate for later references.
func (b *Bound) bindCTE(cte sqlast.CTE) (CTEEstimate, error) {
	ce := CTEEstimate{Name: cte.Name, Recursive: cte.Recursive}
	if len(cte.Body.With) > 0 {
		return ce, fmt.Errorf("stats: nested WITH inside cte %q not estimated", cte.Name)
	}
	var base, rec []*sqlast.Select
	for _, s := range cte.Body.Selects {
		if cte.Recursive && selectReferences(s, cte.Name) {
			rec = append(rec, s)
		} else {
			base = append(base, s)
		}
	}

	// Base branches.
	var baseRows, baseCost float64
	baseWeights := make([]float64, len(base))
	for i, s := range base {
		be := b.SelectEstimate(s)
		baseRows += be.Rows
		baseCost += be.Cost
		baseWeights[i] = be.Rows
	}
	ce.Rows, ce.Cost = baseRows, baseCost

	allBranches := base
	allWeights := baseWeights
	if len(rec) > 0 && len(base) > 0 {
		// Fixpoint-depth heuristic: evaluate the recursive branches once
		// against a delta of the base size, take the observed per-round row
		// multiplier m, and assume it persists. Rows and per-round cost then
		// follow a geometric series, truncated at FixpointDepth rounds or at
		// convergence (delta < 1 row), whichever comes first.
		b.ctes[cte.Name] = b.synthetic(cte.Name, baseRows, base, baseWeights)
		var roundRows, roundCost float64
		recWeights := make([]float64, len(rec))
		for i, s := range rec {
			be := b.SelectEstimate(s)
			roundRows += be.Rows
			roundCost += be.Cost
			recWeights[i] = be.Rows
		}
		m := 1.0
		if baseRows > 0 {
			m = roundRows / baseRows
		}
		delta := roundRows
		cost := roundCost
		for round := 0; round < FixpointDepth && delta >= 1; round++ {
			ce.Rows += delta
			ce.Cost += cost + costCTERound
			ce.Rounds = round + 1
			delta *= m
			cost *= m
		}
		allBranches = append(append([]*sqlast.Select(nil), base...), rec...)
		allWeights = append(append([]float64(nil), baseWeights...), recWeights...)
	}
	b.ctes[cte.Name] = b.synthetic(cte.Name, ce.Rows, allBranches, allWeights)
	return ce, nil
}

// synthetic builds a relation estimate for a CTE materialization by merging
// the column statistics of every UNION branch, weighted by each branch's
// estimated share of the output. Merging matters: the tag/node columns of
// generated CTEs carry a different literal per branch, and a single-branch
// prototype would estimate zero selectivity for every other branch's value.
func (b *Bound) synthetic(name string, rows float64, branches []*sqlast.Select, weights []float64) *relEst {
	r := &relEst{source: name, rows: rows, cols: map[string]*colEst{}}
	var total float64
	for _, w := range weights {
		total += w
	}
	type mergeAcc struct {
		distinct float64
		nullFrac float64
		hist     map[string]float64
		histOK   bool
	}
	acc := map[string]*mergeAcc{}
	get := func(col string) *mergeAcc {
		a, ok := acc[col]
		if !ok {
			a = &mergeAcc{hist: map[string]float64{}, histOK: true}
			acc[col] = a
		}
		return a
	}
	for bi, proto := range branches {
		w := 1.0 / float64(len(branches))
		if total > 0 {
			w = weights[bi] / total
		}
		fr := b.newFrame()
		for _, f := range proto.From {
			fr.add(f)
		}
		merge := func(col string, ce *colEst) {
			a := get(col)
			if ce == nil {
				a.distinct += rows * w
				a.histOK = false
				return
			}
			a.distinct += ce.distinct
			a.nullFrac += ce.nullFrac * w
			if ce.histFrac == nil {
				a.histOK = false
			} else if a.histOK {
				for k, f := range ce.histFrac {
					a.hist[k] += f * w
				}
			}
		}
		for _, item := range proto.Cols {
			if item.Star {
				if src := fr.rel(item.StarTable); src != nil {
					for cn, ce := range src.cols {
						merge(cn, ce)
					}
				}
				continue
			}
			col := item.As
			switch expr := item.Expr.(type) {
			case sqlast.ColRef:
				if col == "" {
					col = expr.Column
				}
				merge(col, fr.colEst(expr))
			case sqlast.Lit:
				a := get(col)
				a.distinct++
				if a.histOK {
					a.hist[expr.Value.Key()] += w
				}
			}
		}
	}
	for col, a := range acc {
		ce := &colEst{distinct: a.distinct, nullFrac: a.nullFrac}
		if ce.distinct > rows {
			ce.distinct = rows
		}
		if a.histOK && len(a.hist) > 0 {
			ce.histFrac = a.hist
		}
		r.cols[col] = ce
	}
	return r
}

// frame tracks the aliases joined so far during one SELECT's estimation.
type frame struct {
	b       *Bound
	aliases []string
	rels    map[string]*relEst
}

func (b *Bound) newFrame() *frame { return &frame{b: b, rels: map[string]*relEst{}} }

func (b *Bound) resolve(source string) *relEst {
	if r, ok := b.ctes[source]; ok {
		return r
	}
	return b.est.baseRel(source)
}

func (f *frame) add(fi sqlast.FromItem) *relEst {
	r := f.b.resolve(fi.Source)
	alias := fi.Alias
	if alias == "" {
		alias = fi.Source
	}
	f.aliases = append(f.aliases, alias)
	f.rels[alias] = r
	return r
}

func (f *frame) has(alias string) bool { _, ok := f.rels[alias]; return ok }

func (f *frame) rel(alias string) *relEst { return f.rels[alias] }

// colEst resolves a column reference against the frame (searching all
// aliases for unqualified references, as the engine does).
func (f *frame) colEst(c sqlast.ColRef) *colEst {
	if c.Table != "" {
		if r := f.rels[c.Table]; r != nil {
			return r.col(c.Column)
		}
		return nil
	}
	for _, a := range f.aliases {
		if ce := f.rels[a].col(c.Column); ce != nil {
			return ce
		}
	}
	return nil
}

// SelectEstimate estimates one SELECT block under the bound CTEs, mirroring
// the engine's left-deep pipeline: FROM items join in order, each conjunct
// is consumed at the first level where it becomes fully evaluable, and
// joins estimate |L ⋈ R| = |L|·|R| / max(d_L, d_R) per equality condition.
func (b *Bound) SelectEstimate(s *sqlast.Select) BranchEstimate {
	return b.pipeline(s, nil, false)
}

// OrderEstimate estimates s as if its FROM items were permuted into the
// given order (a full permutation of FROM indices). The join reorderer uses
// it to score candidate orders without rewriting the AST.
func (b *Bound) OrderEstimate(s *sqlast.Select, order []int) BranchEstimate {
	return b.pipeline(s, order, false)
}

// pipeline walks FROM items in the given order (nil = original), estimating
// the left-deep join. With prefix true, order may cover only a prefix of
// the FROM list: leftover conjuncts are then simply not applied (instead of
// being charged as residual filters), which is what prefix scoring needs.
func (b *Bound) pipeline(s *sqlast.Select, order []int, prefix bool) BranchEstimate {
	be := BranchEstimate{Cost: costBranch}
	conjuncts := splitConjuncts(s.Where)
	fr := b.newFrame()
	var rows float64

	items := s.From
	if order != nil {
		items = make([]sqlast.FromItem, len(order))
		for i, o := range order {
			items[i] = s.From[o]
		}
	}
	remaining := conjuncts
	for i, fi := range items {
		rel := b.resolve(fi.Source)
		alias := fi.Alias
		if alias == "" {
			alias = fi.Source
		}

		// Partition the pending conjuncts exactly like engine.joinStep.
		var local, joinEqs, covered, pending []sqlast.Expr
		for _, c := range remaining {
			aliases := exprAliasSet(c)
			switch {
			case onlyAlias(aliases, alias):
				local = append(local, c)
			case i > 0 && isJoinEq(c, fr, alias):
				joinEqs = append(joinEqs, c)
			case i > 0 && coveredBy(aliases, fr, alias):
				covered = append(covered, c)
			default:
				pending = append(pending, c)
			}
		}

		// Local filters shrink the relation before it joins.
		inRows := rel.rows
		step := StepEstimate{Alias: alias, Source: fi.Source}
		if len(local) > 0 {
			sel := 1.0
			solo := b.newFrame()
			solo.add(fi)
			for _, c := range local {
				sel *= predSel(c, solo)
			}
			inRows = rel.rows * sel
			be.Cost += rel.rows * costScanRow
		}
		step.InRows = inRows

		fr.add(fi)
		switch {
		case i == 0:
			rows = inRows
		case len(joinEqs) > 0:
			// Index probe when the engine would use one: single equality
			// against an unfiltered base table (parentid carries a
			// persistent index after BuildJoinIndexes).
			indexProbe := len(joinEqs) == 1 && len(local) == 0 && rel.base
			out := rows * inRows
			for _, c := range joinEqs {
				cmp := c.(sqlast.Cmp)
				dl, dr := joinSideDistinct(cmp, fr, alias, rows, inRows)
				d := dl
				if dr > d {
					d = dr
				}
				if d < 1 {
					d = 1
				}
				out /= d
			}
			if indexProbe {
				step.Index = true
				be.Cost += rows*costProbeRow + out*costOutRow
			} else {
				be.Cost += inRows*costBuildRow + rows*costProbeRow + out*costOutRow
			}
			rows = out
		default:
			// Cartesian (with any non-equality join predicates as filters).
			out := rows * inRows
			be.Cost += out * costOutRow
			rows = out
		}

		// Conjuncts that became fully evaluable after this join.
		for _, c := range covered {
			rows *= predSel(c, fr)
		}

		step.Rows = rows
		step.Cost = be.Cost
		be.Steps = append(be.Steps, step)
		remaining = pending
	}

	if !prefix {
		// Residual predicates (ORs across aliases, etc.).
		for _, c := range remaining {
			rows *= predSel(c, fr)
		}
		be.Cost += rows * costOutRow // projection / materialization
	}
	be.Rows = rows
	return be
}

// GreedyOrder computes a greedy smallest-intermediate-first join order for
// s: start from the FROM item with the fewest post-filter rows, then
// repeatedly add the equality-connected item minimizing the estimated
// intermediate frame size (fan-out statistics drive the join estimates).
// The second result is false when the select cannot be safely reordered —
// fewer than two FROM items, or no equality-connected candidate at some
// step (reordering would introduce a cartesian product the original order
// avoids).
func (b *Bound) GreedyOrder(s *sqlast.Select) ([]int, bool) {
	n := len(s.From)
	if n < 2 {
		return nil, false
	}
	aliases := make([]string, n)
	for i, f := range s.From {
		aliases[i] = f.Alias
		if aliases[i] == "" {
			aliases[i] = f.Source
		}
	}
	// Equality-join adjacency from the WHERE conjuncts.
	adj := make([][]bool, n)
	for i := range adj {
		adj[i] = make([]bool, n)
	}
	pos := map[string]int{}
	for i, a := range aliases {
		pos[a] = i
	}
	if len(pos) != n {
		return nil, false // duplicate aliases: the engine rejects these anyway
	}
	for _, c := range splitConjuncts(s.Where) {
		cmp, ok := c.(sqlast.Cmp)
		if !ok || cmp.Op != sqlast.OpEq {
			continue
		}
		l, lok := cmp.Left.(sqlast.ColRef)
		r, rok := cmp.Right.(sqlast.ColRef)
		if !lok || !rok {
			continue
		}
		li, lknown := pos[l.Table]
		ri, rknown := pos[r.Table]
		if lknown && rknown && li != ri {
			adj[li][ri], adj[ri][li] = true, true
		}
	}
	order := make([]int, 0, n)
	used := make([]bool, n)
	for len(order) < n {
		best, bestRows, bestCost := -1, 0.0, 0.0
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			if len(order) > 0 {
				connected := false
				for _, o := range order {
					if adj[i][o] {
						connected = true
						break
					}
				}
				if !connected {
					continue
				}
			}
			cand := b.pipeline(s, append(order, i), true)
			if best < 0 || cand.Rows < bestRows || (cand.Rows == bestRows && cand.Cost < bestCost) {
				best, bestRows, bestCost = i, cand.Rows, cand.Cost
			}
		}
		if best < 0 {
			return nil, false // disconnected under equality joins
		}
		order = append(order, best)
		used[best] = true
	}
	return order, true
}

// predSel estimates the fraction of frame rows a predicate keeps.
func predSel(e sqlast.Expr, fr *frame) float64 {
	switch e := e.(type) {
	case sqlast.Cmp:
		lCol, lIsCol := e.Left.(sqlast.ColRef)
		rCol, rIsCol := e.Right.(sqlast.ColRef)
		lLit, lIsLit := e.Left.(sqlast.Lit)
		rLit, rIsLit := e.Right.(sqlast.Lit)
		var sel float64
		switch {
		case lIsCol && rIsLit:
			sel = eqSel(fr, lCol, rLit.Value)
		case rIsCol && lIsLit:
			sel = eqSel(fr, rCol, lLit.Value)
		case lIsCol && rIsCol:
			dl, dr := colDistinct(fr, lCol), colDistinct(fr, rCol)
			d := dl
			if dr > d {
				d = dr
			}
			if d < 1 {
				d = 1
			}
			sel = 1 / d
		case lIsLit && rIsLit:
			if lLit.Value.Equal(rLit.Value) {
				sel = 1
			} else {
				sel = 0
			}
		default:
			sel = unknownSel
		}
		if e.Op == sqlast.OpNe {
			sel = 1 - sel
		}
		return clampSel(sel)
	case sqlast.In:
		c, ok := e.Left.(sqlast.ColRef)
		if !ok {
			return unknownSel
		}
		sel := 0.0
		for _, lit := range e.List {
			sel += eqSel(fr, c, lit.Value)
		}
		return clampSel(sel)
	case sqlast.IsNull:
		if c, ok := e.Left.(sqlast.ColRef); ok {
			if ce := fr.colEst(c); ce != nil {
				return clampSel(ce.nullFrac)
			}
		}
		return unknownSel
	case sqlast.And:
		sel := 1.0
		for _, k := range e.Kids {
			sel *= predSel(k, fr)
		}
		return clampSel(sel)
	case sqlast.Or:
		keep := 1.0
		for _, k := range e.Kids {
			keep *= 1 - predSel(k, fr)
		}
		return clampSel(1 - keep)
	default:
		return unknownSel
	}
}

func eqSel(fr *frame, c sqlast.ColRef, v relational.Value) float64 {
	ce := fr.colEst(c)
	if ce == nil {
		return defaultEqSelectivity
	}
	if ce.histFrac != nil {
		return ce.histFrac[v.Key()]
	}
	if ce.distinct > 0 {
		return 1 / ce.distinct
	}
	return defaultEqSelectivity
}

func colDistinct(fr *frame, c sqlast.ColRef) float64 {
	if ce := fr.colEst(c); ce != nil && ce.distinct > 0 {
		return ce.distinct
	}
	return float64(defaultRows) * defaultEqSelectivity
}

func clampSel(s float64) float64 {
	if s < 0 {
		return 0
	}
	if s > 1 {
		return 1
	}
	return s
}

// joinSideDistinct returns the distinct counts of the two sides of an
// equi-join condition, capped by the row counts of their sides.
func joinSideDistinct(c sqlast.Cmp, fr *frame, newAlias string, frameRows, newRows float64) (float64, float64) {
	l, lok := c.Left.(sqlast.ColRef)
	r, rok := c.Right.(sqlast.ColRef)
	if !lok || !rok {
		return 1, 1
	}
	if l.Table == newAlias {
		l, r = r, l
	}
	dl := colDistinct(fr, l)
	if dl > frameRows {
		dl = frameRows
	}
	dr := colDistinct(fr, r)
	if dr > newRows {
		dr = newRows
	}
	return dl, dr
}

// sharedReuse estimates what the engine's subplan memo would save on this
// query: for each canonical join-prefix level occurring k > 1 times across
// branches, (k-1) recomputations of that prefix's rows and incremental cost
// are avoided. The canonicalization mirrors engine.memoPlan: positional
// alias rename, per-level consumed conjuncts, cumulative source keys.
// Recursive CTE bodies are excluded (their rounds rebind the CTE name, so
// cross-round reuse never happens).
func (b *Bound) sharedReuse(q *sqlast.Query) (float64, float64) {
	type level struct {
		rows, cost float64
		count      int
	}
	levels := map[string]*level{}
	record := func(s *sqlast.Select) {
		be := b.SelectEstimate(s)
		keys := prefixKeys(s)
		if keys == nil {
			return
		}
		prevCost := 0.0
		for i, k := range keys {
			if i >= len(be.Steps) {
				break
			}
			st := be.Steps[i]
			inc := st.Cost - prevCost
			prevCost = st.Cost
			// Bare unfiltered level-0 scans are not memoized (engine rule).
			if i == 0 && !strings.Contains(k, "{") {
				continue
			}
			lv := levels[k]
			if lv == nil {
				lv = &level{rows: st.Rows, cost: inc}
				levels[k] = lv
			} else {
				lv.cost += inc
			}
			lv.count++
		}
	}
	for _, cte := range q.With {
		if cte.Recursive {
			continue
		}
		for _, s := range cte.Body.Selects {
			record(s)
		}
	}
	for _, s := range q.Selects {
		record(s)
	}
	var rows, cost float64
	for _, lv := range levels {
		if lv.count > 1 {
			rows += float64(lv.count-1) * lv.rows
			cost += float64(lv.count-1) * lv.cost / float64(lv.count)
		}
	}
	return rows, cost
}

// prefixKeys computes cumulative canonical keys per FROM level, mirroring
// engine.memoPlan's fingerprint (without CTE epochs: the estimator only
// fingerprints non-recursive contexts where every binding is stable). A nil
// result means the select has a shape the memo would not reason about.
func prefixKeys(s *sqlast.Select) []string {
	n := len(s.From)
	aliasPos := make(map[string]int, n)
	for i, f := range s.From {
		a := f.Alias
		if a == "" {
			a = f.Source
		}
		if _, dup := aliasPos[a]; dup {
			return nil
		}
		aliasPos[a] = i
	}
	rename := func(a string) string { return "$" + strconv.Itoa(aliasPos[a]) }
	perLevel := make([][]string, n)
	for _, c := range splitConjuncts(s.Where) {
		set := exprAliasSet(c)
		if len(set) == 0 {
			return nil
		}
		level := -1
		for a := range set {
			p, known := aliasPos[a]
			if a == "" || !known {
				level = -1
				break
			}
			if p > level {
				level = p
			}
		}
		if level >= 0 {
			perLevel[level] = append(perLevel[level], sqlast.CanonExpr(c, rename))
		}
	}
	keys := make([]string, n)
	var sb strings.Builder
	for i, f := range s.From {
		sb.WriteByte('/')
		sb.WriteString("t:")
		sb.WriteString(f.Source)
		sort.Strings(perLevel[i])
		sb.WriteByte('{')
		if len(perLevel[i]) > 0 {
			sb.WriteString(strings.Join(perLevel[i], "&"))
		}
		sb.WriteByte('}')
		keys[i] = sb.String()
	}
	return keys
}

// ---- sqlast helpers (mirrors of unexported engine helpers) ----

func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(sqlast.And); ok {
		var out []sqlast.Expr
		for _, k := range a.Kids {
			out = append(out, splitConjuncts(k)...)
		}
		return out
	}
	return []sqlast.Expr{e}
}

func exprAliasSet(e sqlast.Expr) map[string]bool {
	acc := map[string]bool{}
	var walk func(sqlast.Expr)
	walk = func(e sqlast.Expr) {
		switch e := e.(type) {
		case sqlast.ColRef:
			acc[e.Table] = true
		case sqlast.Cmp:
			walk(e.Left)
			walk(e.Right)
		case sqlast.In:
			walk(e.Left)
		case sqlast.IsNull:
			walk(e.Left)
		case sqlast.And:
			for _, k := range e.Kids {
				walk(k)
			}
		case sqlast.Or:
			for _, k := range e.Kids {
				walk(k)
			}
		}
	}
	walk(e)
	return acc
}

func onlyAlias(aliases map[string]bool, alias string) bool {
	for a := range aliases {
		if a != alias {
			return false
		}
	}
	return len(aliases) > 0
}

func coveredBy(aliases map[string]bool, fr *frame, alias string) bool {
	for a := range aliases {
		if a == alias {
			continue
		}
		if !fr.has(a) {
			return false
		}
	}
	return true
}

func isJoinEq(e sqlast.Expr, fr *frame, alias string) bool {
	c, ok := e.(sqlast.Cmp)
	if !ok || c.Op != sqlast.OpEq {
		return false
	}
	l, lok := c.Left.(sqlast.ColRef)
	r, rok := c.Right.(sqlast.ColRef)
	if !lok || !rok {
		return false
	}
	if l.Table == alias && fr.has(r.Table) {
		return true
	}
	if r.Table == alias && fr.has(l.Table) {
		return true
	}
	return false
}

func selectReferences(s *sqlast.Select, name string) bool {
	for _, f := range s.From {
		if f.Source == name {
			return true
		}
	}
	return false
}

// Summary renders a compact human-readable form of the estimate, used by
// xml2sql -explain.
func (q *QueryEstimate) Summary() string {
	if q == nil {
		return "no estimate"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "estimated rows %.0f, cost %.0f, branches %d", q.Rows, q.Cost, len(q.Branches))
	if len(q.CTEs) > 0 {
		fmt.Fprintf(&b, ", ctes %d", len(q.CTEs))
	}
	return b.String()
}
