package stats

import (
	"sort"

	"xmlsql/internal/relational"
)

// CollectStore scans every table of an in-memory store and returns a full
// statistics snapshot. One pass per relation: row count, per-column distinct
// count, min/max for integer columns, null count, and a value histogram
// while the column stays within HistogramCap distinct values.
func CollectStore(store *relational.Store) *Stats {
	s := &Stats{Relations: map[string]*TableStats{}, Version: store.Version()}
	for _, name := range store.TableNames() {
		t := store.Table(name)
		cols := make([]string, len(t.Schema().Columns))
		for i, c := range t.Schema().Columns {
			cols[i] = c.Name
		}
		ts := CollectRows(name, cols, t.Rows())
		s.Relations[name] = ts
		s.TotalRows += ts.Rows
	}
	return s
}

// CollectRows computes statistics for one relation from its column names and
// rows. It is the shared kernel behind CollectStore and Backend-generic
// collection (backend.CollectStats feeds it the rows of a SELECT * probe),
// so any row source — in-memory store, fake DB, external engine — yields
// identical statistics.
func CollectRows(relName string, cols []string, rows []relational.Row) *TableStats {
	ts := &TableStats{Relation: relName, Rows: int64(len(rows)), Columns: make(map[string]*ColumnStats, len(cols))}
	type acc struct {
		cs     *ColumnStats
		values map[string]int64 // exhaustive while |values| <= HistogramCap, then nil
		seen   map[string]bool  // distinct tracking after the histogram overflows
	}
	accs := make([]acc, len(cols))
	for i, c := range cols {
		cs := &ColumnStats{Name: c}
		ts.Columns[c] = cs
		accs[i] = acc{cs: cs, values: map[string]int64{}}
	}
	for _, row := range rows {
		for i := range cols {
			if i >= len(row) {
				continue
			}
			v := row[i]
			a := &accs[i]
			if v.IsNull() {
				a.cs.Nulls++
				continue
			}
			if v.Kind() == relational.KindInt {
				iv := v.AsInt()
				if !a.cs.HasMinMax {
					a.cs.HasMinMax, a.cs.Min, a.cs.Max = true, iv, iv
				} else {
					if iv < a.cs.Min {
						a.cs.Min = iv
					}
					if iv > a.cs.Max {
						a.cs.Max = iv
					}
				}
			}
			k := v.Key()
			if a.values != nil {
				a.values[k]++
				if len(a.values) > HistogramCap {
					// Overflow: demote to distinct-only tracking.
					a.seen = make(map[string]bool, 2*len(a.values))
					for vk := range a.values {
						a.seen[vk] = true
					}
					a.values = nil
				}
				continue
			}
			a.seen[k] = true
		}
	}
	for i := range accs {
		a := &accs[i]
		if a.values != nil {
			a.cs.Distinct = int64(len(a.values))
			if len(a.values) > 0 {
				a.cs.Histogram = a.values
			}
		} else {
			a.cs.Distinct = int64(len(a.seen))
		}
	}
	return ts
}

// Merge folds per-relation statistics (e.g. collected one probe at a time
// over a Backend) into one snapshot with the given version.
func Merge(version uint64, tables []*TableStats) *Stats {
	s := &Stats{Relations: map[string]*TableStats{}, Version: version}
	sort.Slice(tables, func(i, j int) bool { return tables[i].Relation < tables[j].Relation })
	for _, t := range tables {
		s.Relations[t.Relation] = t
		s.TotalRows += t.Rows
	}
	return s
}
