package stats

// MergeShards folds per-shard statistics snapshots of one document-partitioned
// instance into a single logical snapshot, as if CollectStore had scanned the
// union of the shard stores. Because shards partition rows (no row lives on
// two shards), almost everything merges exactly:
//
//   - Rows, Nulls and TotalRows add;
//   - Min/Max combine;
//   - histograms add bucket-wise. A merged histogram that exceeds
//     HistogramCap demotes to a distinct count — still exact, since the
//     buckets were exhaustive.
//
// The one approximation: when any shard already overflowed its histogram for
// a column, the merged Distinct is the sum of the shard distinct counts — an
// upper bound, exact only when shards share no values in that column. For the
// columns the planner's selectivity math leans on (parentcode, kindcode, tag:
// tiny domains, histograms never overflow) the merge is exact; wide columns
// (ids, text) only ever feed coarse uniform-selectivity fallbacks, where an
// upper bound is the conservative choice.
//
// The merged Version is the sum of the shard versions, so any shard mutation
// moves it — the same staleness signal a single store's version provides.
func MergeShards(snaps []*Stats) *Stats {
	out := &Stats{Relations: map[string]*TableStats{}}
	for _, s := range snaps {
		if s == nil {
			continue
		}
		out.Version += s.Version
		for name, t := range s.Relations {
			acc := out.Relations[name]
			if acc == nil {
				out.Relations[name] = copyTableStats(t)
				out.TotalRows += t.Rows
				continue
			}
			out.TotalRows += t.Rows
			mergeTableStats(acc, t)
		}
	}
	return out
}

func copyTableStats(t *TableStats) *TableStats {
	c := &TableStats{Relation: t.Relation, Rows: t.Rows, Columns: make(map[string]*ColumnStats, len(t.Columns))}
	for name, cs := range t.Columns {
		nc := *cs
		if cs.Histogram != nil {
			nc.Histogram = make(map[string]int64, len(cs.Histogram))
			for k, v := range cs.Histogram {
				nc.Histogram[k] = v
			}
		}
		c.Columns[name] = &nc
	}
	return c
}

func mergeTableStats(acc, t *TableStats) {
	acc.Rows += t.Rows
	for name, cs := range t.Columns {
		a := acc.Columns[name]
		if a == nil {
			nc := *cs
			if cs.Histogram != nil {
				nc.Histogram = make(map[string]int64, len(cs.Histogram))
				for k, v := range cs.Histogram {
					nc.Histogram[k] = v
				}
			}
			acc.Columns[name] = &nc
			continue
		}
		a.Nulls += cs.Nulls
		if cs.HasMinMax {
			if !a.HasMinMax {
				a.HasMinMax, a.Min, a.Max = true, cs.Min, cs.Max
			} else {
				if cs.Min < a.Min {
					a.Min = cs.Min
				}
				if cs.Max > a.Max {
					a.Max = cs.Max
				}
			}
		}
		switch {
		case a.Histogram != nil && cs.Histogram != nil:
			for k, v := range cs.Histogram {
				a.Histogram[k] += v
			}
			a.Distinct = int64(len(a.Histogram))
			if len(a.Histogram) > HistogramCap {
				// Exhaustive buckets past the cap: keep the (exact) distinct
				// count, drop the histogram like CollectRows would.
				a.Histogram = nil
			}
		case a.Histogram == nil && cs.Histogram == nil && a.Distinct == 0 && cs.Distinct == 0:
			// Both empty-column cases: nothing to do.
		default:
			// At least one side overflowed (or is histogram-less): sum of
			// distincts is the documented upper-bound approximation.
			a.Distinct += cs.Distinct
			a.Histogram = nil
		}
	}
}
