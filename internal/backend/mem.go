package backend

import (
	"context"
	"io"
	"sync"
	"sync/atomic"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// Mem is the in-process backend: tuples live in a relational.Store and
// queries run through internal/engine. It is the reference implementation —
// the differential tests hold every other backend to its answers.
type Mem struct {
	store *relational.Store
	opts  engine.Options

	// writeMu serializes ApplyDML batches so that, with a CommitLog
	// attached, the log's record order always matches apply order (replay
	// re-applies records in sequence). Readers are not blocked — StoreTx
	// provides atomicity, not isolation.
	writeMu sync.Mutex
	// log, when set, is consulted before a batch commits: see SetCommitLog.
	log CommitLog

	// Accumulated shared-work memo counters across every Execute, so a
	// serving layer can report engine-level reuse per backend (and, with
	// one Mem per tenant, per tenant) rather than per query only.
	sharedHits      atomic.Int64
	sharedMisses    atomic.Int64
	sharedSavedRows atomic.Int64
}

// NewMem creates an in-memory backend over a fresh store.
func NewMem() *Mem { return NewMemOn(relational.NewStore()) }

// NewMemOn wraps an existing store, so already-shredded data (or data shared
// with other components) can be served through the Backend interface.
func NewMemOn(store *relational.Store) *Mem { return &Mem{store: store} }

// SetEngineOptions replaces the engine options used by Execute (parallelism,
// recursion limits). The zero value is engine.Execute's default behavior.
func (m *Mem) SetEngineOptions(opts engine.Options) { m.opts = opts }

// Store exposes the underlying store.
func (m *Mem) Store() *relational.Store { return m.store }

// Name implements Backend.
func (m *Mem) Name() string { return "mem" }

// EnsureSchema creates any missing shredded relations for s. Existing tables
// are kept, matching the shredder's own behavior.
func (m *Mem) EnsureSchema(s *schema.Schema) error {
	defs, err := s.DeriveRelations()
	if err != nil {
		return err
	}
	for name, def := range defs {
		if m.store.Table(name) != nil {
			continue
		}
		if _, err := m.store.CreateTable(def.TableSchema()); err != nil {
			return err
		}
	}
	return nil
}

// Load implements Backend by shredding straight into the store.
func (m *Mem) Load(s *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error) {
	return shred.ShredAll(s, m.store, shred.Options{}, docs...)
}

// Execute implements Backend. The engine polls ctx between union branches,
// between recursive-CTE rounds, and inside join loops, so cancellation is
// prompt even mid-query.
func (m *Mem) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	res, st, err := engine.ExecuteCtxStats(ctx, m.store, q, m.opts)
	if err == nil {
		m.sharedHits.Add(st.SharedHits)
		m.sharedMisses.Add(st.SharedMisses)
		m.sharedSavedRows.Add(st.SharedSavedRows)
	}
	return res, err
}

// EngineStats returns the shared-work memo counters accumulated across every
// Execute on this backend (hits, misses, saved rows).
func (m *Mem) EngineStats() engine.Stats {
	return engine.Stats{
		SharedHits:      m.sharedHits.Load(),
		SharedMisses:    m.sharedMisses.Load(),
		SharedSavedRows: m.sharedSavedRows.Load(),
	}
}

// Close implements Backend; the store is garbage-collected. An attached
// CommitLog that is closeable (wal.Manager is) is closed with the backend,
// flushing any group-commit window.
func (m *Mem) Close() error {
	if c, ok := m.log.(io.Closer); ok {
		return c.Close()
	}
	return nil
}
