package backend_test

import (
	"context"
	"strings"
	"testing"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// The differential suite holds the DB backend (over the fake driver) to the
// in-memory backend's answers: every workload query, translated both naively
// and with the paper's pruning, must come back row-for-row identical after a
// full render -> database/sql -> parse -> execute round trip, in every
// dialect. This is the property that makes the dialect layer trustworthy.

type diffCase struct {
	name    string
	schema  *schema.Schema
	doc     *xmltree.Document
	queries []string
}

func diffCases(t *testing.T) []diffCase {
	t.Helper()
	xmark := workloads.XMark()
	xmarkDoc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	edge, err := shred.EdgeSchemaFor(xmark)
	if err != nil {
		t.Fatalf("EdgeSchemaFor: %v", err)
	}
	return []diffCase{
		{
			name:    "s1",
			schema:  workloads.S1(),
			doc:     workloads.GenerateS1(25, 1),
			queries: []string{workloads.QueryQ3, "//b/x", "/a/c/x"},
		},
		{
			name:    "s2-dag",
			schema:  workloads.S2(),
			doc:     workloads.GenerateS2(10, 2),
			queries: []string{"//s/t1", "//t2", "/root/m1/s/t1"},
		},
		{
			name:    "s3-recursive",
			schema:  workloads.S3(),
			doc:     workloads.GenerateS3(workloads.DefaultS3Config()),
			queries: []string{workloads.QueryQ4, workloads.QueryQ5, workloads.QueryQ6, workloads.QueryQ7},
		},
		{
			name:    "xmark",
			schema:  xmark,
			doc:     xmarkDoc,
			queries: []string{workloads.QueryQ1, workloads.QueryQ2, workloads.QueryQ8},
		},
		{
			name:    "xmark-edge",
			schema:  edge,
			doc:     xmarkDoc,
			queries: []string{workloads.QueryQ1, workloads.QueryQ8},
		},
	}
}

// loadBoth stands up a mem backend and a fakedb-based DB backend with the
// same schema and documents.
func loadBoth(t *testing.T, s *schema.Schema, d *sqlast.Dialect, doc *xmltree.Document) (*backend.Mem, *backend.DB) {
	t.Helper()
	mem := backend.NewMem()
	if err := mem.EnsureSchema(s); err != nil {
		t.Fatalf("mem EnsureSchema: %v", err)
	}
	memRes, err := mem.Load(s, doc)
	if err != nil {
		t.Fatalf("mem Load: %v", err)
	}
	db := backend.NewDB(fakedb.Open(), d)
	t.Cleanup(func() { db.Close() })
	if err := db.EnsureSchema(s); err != nil {
		t.Fatalf("db EnsureSchema: %v", err)
	}
	dbRes, err := db.Load(s, doc)
	if err != nil {
		t.Fatalf("db Load: %v", err)
	}
	if memRes[0].Tuples != dbRes[0].Tuples {
		t.Fatalf("tuple counts differ: mem %d, db %d", memRes[0].Tuples, dbRes[0].Tuples)
	}
	return mem, db
}

func translations(t *testing.T, s *schema.Schema, query string) map[string]*sqlast.Query {
	t.Helper()
	path, err := pathexpr.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	g, err := pathid.Build(s, path)
	if err != nil {
		t.Fatalf("pathid %q: %v", query, err)
	}
	naive, err := translate.Naive(g)
	if err != nil {
		t.Fatalf("naive %q: %v", query, err)
	}
	pruned, err := core.Translate(g)
	if err != nil {
		t.Fatalf("pruned %q: %v", query, err)
	}
	return map[string]*sqlast.Query{"naive": naive, "pruned": pruned.Query}
}

func TestDBBackendMatchesMem(t *testing.T) {
	sawRecursive := false
	for _, tc := range diffCases(t) {
		for _, d := range []*sqlast.Dialect{sqlast.DialectSQLite, sqlast.DialectPostgres} {
			t.Run(tc.name+"/"+d.Name(), func(t *testing.T) {
				mem, db := loadBoth(t, tc.schema, d, tc.doc)
				for _, query := range tc.queries {
					for mode, q := range translations(t, tc.schema, query) {
						if q.Shape().Recursive {
							sawRecursive = true
							if !strings.Contains(strings.ToLower(q.SQLFor(d)), "with recursive") {
								t.Errorf("%s %s: recursive plan lacks WITH RECURSIVE", query, mode)
							}
						}
						want, err := mem.Execute(context.Background(), q)
						if err != nil {
							t.Fatalf("%s %s on mem: %v", query, mode, err)
						}
						got, err := db.Execute(context.Background(), q)
						if err != nil {
							t.Fatalf("%s %s on %s: %v", query, mode, db.Name(), err)
						}
						if !want.MultisetEqual(got) {
							t.Errorf("%s %s: %s diverges from mem:\n%s\nsql:\n%s",
								query, mode, db.Name(), want.MultisetDiff(got), q.SQLFor(d))
						}
					}
				}
			})
		}
	}
	if !sawRecursive {
		t.Error("differential suite never exercised a recursive (WITH RECURSIVE) plan")
	}
}

// TestDDLScriptRoundTrip proves the emitted artifacts work standalone: the
// -ddl and -load scripts, executed as plain SQL text against a fresh
// database, reproduce the answers of the normally-loaded store for the
// paper's XMark example queries.
func TestDDLScriptRoundTrip(t *testing.T) {
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.DefaultXMarkConfig())
	for _, d := range []*sqlast.Dialect{sqlast.DialectSQLite, sqlast.DialectPostgres} {
		t.Run(d.Name(), func(t *testing.T) {
			mem := backend.NewMem()
			if _, err := mem.Load(s, doc); err != nil {
				t.Fatalf("mem Load: %v", err)
			}
			ddl, err := backend.DDL(s, d)
			if err != nil {
				t.Fatalf("DDL: %v", err)
			}
			load := backend.LoadScript(mem.Store(), d)

			raw := fakedb.Open()
			if _, err := raw.Exec(ddl); err != nil {
				t.Fatalf("exec DDL script: %v", err)
			}
			if _, err := raw.Exec(load); err != nil {
				t.Fatalf("exec load script: %v", err)
			}
			db := backend.NewDB(raw, d)
			defer db.Close()

			for _, query := range []string{workloads.QueryQ1, workloads.QueryQ2} {
				for mode, q := range translations(t, s, query) {
					want, err := mem.Execute(context.Background(), q)
					if err != nil {
						t.Fatalf("%s %s on mem: %v", query, mode, err)
					}
					got, err := db.Execute(context.Background(), q)
					if err != nil {
						t.Fatalf("%s %s on scripted db: %v", query, mode, err)
					}
					if want.Len() == 0 {
						t.Fatalf("%s returned no rows; test is vacuous", query)
					}
					if !want.MultisetEqual(got) {
						t.Errorf("%s %s: scripted db diverges:\n%s", query, mode, want.MultisetDiff(got))
					}
				}
			}
		})
	}
}

func TestDDLStatementsShape(t *testing.T) {
	stmts, err := backend.DDLStatements(workloads.XMark(), sqlast.DialectSQLite)
	if err != nil {
		t.Fatalf("DDLStatements: %v", err)
	}
	var tables, indexes int
	for _, st := range stmts {
		switch {
		case strings.HasPrefix(st, "CREATE TABLE"):
			tables++
			if !strings.Contains(st, `"id" INTEGER PRIMARY KEY`) {
				t.Errorf("table DDL lacks id primary key: %s", st)
			}
		case strings.HasPrefix(st, "CREATE INDEX"):
			indexes++
		default:
			t.Errorf("unexpected DDL statement: %s", st)
		}
	}
	if tables == 0 || indexes == 0 {
		t.Fatalf("DDL has %d tables and %d indexes; want both nonzero", tables, indexes)
	}
	// Every table must carry an index on its parentid join column.
	if indexes < tables {
		t.Errorf("%d indexes for %d tables; every table needs at least its parentid index", indexes, tables)
	}
}

func TestMemEnsureSchemaIdempotent(t *testing.T) {
	s := workloads.S1()
	mem := backend.NewMem()
	for i := 0; i < 2; i++ {
		if err := mem.EnsureSchema(s); err != nil {
			t.Fatalf("EnsureSchema #%d: %v", i+1, err)
		}
	}
	if _, err := mem.Load(s, workloads.GenerateS1(3, 7)); err != nil {
		t.Fatalf("Load after EnsureSchema: %v", err)
	}
}
