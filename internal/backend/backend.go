// Package backend abstracts where shredded tuples live and where translated
// SQL runs.
//
// The translation pipeline (pathexpr -> translate -> sqlast) is pure: it maps
// an XML query and an annotated schema to a SQL statement. Everything after
// that point — creating the shredded relations, bulk-loading documents, and
// executing the statement — is the backend's business. Two implementations
// ship with the repo:
//
//   - Mem keeps tuples in the in-process relational.Store and evaluates
//     queries with internal/engine. It is the zero-setup default and the
//     reference implementation the differential tests trust.
//
//   - DB renders statements through a sqlast.Dialect and runs them over any
//     database/sql connection: generated CREATE TABLE/CREATE INDEX DDL
//     (ddl.go), batched prepared INSERTs for loading, and dialect-rendered
//     SELECTs for querying. Pointing it at SQLite or Postgres is a matter of
//     opening the right *sql.DB; the in-repo fakedb driver stands in for
//     them in this offline environment.
//
// Both speak the same interface, so callers (xmlsql.Planner, cmd/benchrunner)
// switch storage engines without touching translation.
package backend

import (
	"context"

	"xmlsql/internal/engine"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// Backend is a place shredded documents live and translated SQL runs.
//
// The expected call order is EnsureSchema, then Load (any number of times),
// then Execute; implementations return errors, not panics, when the order is
// violated (for example executing against tables that were never created).
type Backend interface {
	// Name identifies the backend in reports and logs, e.g. "mem" or
	// "db(sqlite)".
	Name() string
	// EnsureSchema creates the shredded relations (and their join-column
	// indexes) derived from the mapping annotations of s. It is idempotent
	// on backends whose catalog can be inspected; see each implementation.
	EnsureSchema(s *schema.Schema) error
	// Load shreds the documents under the mapping of s and stores the
	// resulting tuples. The returned per-document results report tuple
	// counts and element-to-id alignment, as shred.ShredAll does. A failed
	// load must not leave a partially-populated store: implementations load
	// atomically (the DB backend wraps the batch in a transaction).
	Load(s *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error)
	// Execute runs a translated query under ctx and returns its multiset of
	// rows. Cancelling ctx (or exceeding its deadline) aborts the execution
	// promptly with ctx.Err(); both built-in backends honor this
	// cooperatively down to the row-loop level.
	Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error)
	// Close releases whatever the backend holds (connections, stores).
	Close() error
}
