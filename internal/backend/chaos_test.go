package backend_test

import (
	"context"
	"database/sql"
	"errors"
	"testing"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/relational"
	"xmlsql/internal/resilient"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// The chaos suite re-runs the differential property under injected faults:
// with the fake driver failing 30% of executions (plus mid-resultset errors),
// the resilient wrapper's retries must still produce answers row-for-row
// identical to the fault-free in-memory reference, for every workload —
// trees, DAGs, and recursive CTEs. The injector's PRNG is seeded, so the
// fault schedule (and therefore the whole test) is deterministic.

// chaosRetry keeps backoff wall-clock negligible; attempts stay generous so
// a 30%-fault schedule converges.
var chaosRetry = resilient.RetryPolicy{
	MaxAttempts: 12,
	BaseDelay:   time.Microsecond,
	MaxDelay:    50 * time.Microsecond,
}

// loadFaulty stands up the usual mem/db pair but keeps the fakedb instance
// handle so the test can program its fault injector.
func loadFaulty(t *testing.T, s *schema.Schema, d *sqlast.Dialect, doc *xmltree.Document) (*backend.Mem, *backend.DB, *fakedb.DB) {
	t.Helper()
	inst := fakedb.New()
	mem := backend.NewMem()
	if err := mem.EnsureSchema(s); err != nil {
		t.Fatalf("mem EnsureSchema: %v", err)
	}
	if _, err := mem.Load(s, doc); err != nil {
		t.Fatalf("mem Load: %v", err)
	}
	db := backend.NewDB(sql.OpenDB(inst.Connector()), d)
	t.Cleanup(func() { db.Close() })
	if err := db.EnsureSchema(s); err != nil {
		t.Fatalf("db EnsureSchema: %v", err)
	}
	if _, err := db.Load(s, doc); err != nil {
		t.Fatalf("db Load: %v", err)
	}
	return mem, db, inst
}

func TestChaosDifferentialUnderFaults(t *testing.T) {
	ctx := context.Background()
	var totalFaults, totalRetries int64
	for i, tc := range diffCases(t) {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			mem, db, inst := loadFaulty(t, tc.schema, sqlast.DialectSQLite, tc.doc)
			wrapped := resilient.Wrap(db, resilient.Options{
				Retry: chaosRetry,
				// A high threshold keeps the breaker out of the way: this test
				// is about retries alone reproducing the reference answers.
				Breaker: resilient.BreakerConfig{FailureThreshold: 1 << 30},
			})
			// Faults arm only now — the load above ran clean, so any divergence
			// below is the serving path's fault, not a corrupted store.
			inst.SetFaults(fakedb.FaultConfig{
				Seed:          int64(100 + i),
				ExecErrorRate: 0.3,
				RowErrorRate:  0.1,
			})
			for _, query := range tc.queries {
				for mode, q := range translations(t, tc.schema, query) {
					want, err := mem.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s %s on mem: %v", query, mode, err)
					}
					got, err := wrapped.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s %s under 30%% faults: %v", query, mode, err)
					}
					if !want.MultisetEqual(got) {
						t.Errorf("%s %s: retried result diverges from fault-free mem:\n%s",
							query, mode, want.MultisetDiff(got))
					}
				}
			}
			totalFaults += inst.InjectedFaults()
			totalRetries += wrapped.Stats().Retries
		})
	}
	if totalFaults == 0 {
		t.Fatal("chaos suite injected no faults; the test is vacuous")
	}
	if totalRetries == 0 {
		t.Fatal("chaos suite never retried; faults did not reach the wrapper")
	}
	t.Logf("chaos: %d faults injected, %d retries absorbed", totalFaults, totalRetries)
}

// TestResilientDegradesToMemMirror takes the primary down entirely and
// requires the wrapper to keep answering from its mirror-loaded Mem fallback,
// row-for-row identical to the reference, while the breaker trips.
func TestResilientDegradesToMemMirror(t *testing.T) {
	ctx := context.Background()
	tc := diffCases(t)[0]
	ref, _ := loadBoth(t, tc.schema, sqlast.DialectSQLite, tc.doc)

	inst := fakedb.New()
	primary := backend.NewDB(sql.OpenDB(inst.Connector()), sqlast.DialectSQLite)
	wrapped := resilient.Wrap(primary, resilient.Options{
		Retry:       resilient.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Microsecond},
		Breaker:     resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour},
		Fallback:    backend.NewMem(),
		MirrorLoads: true,
	})
	t.Cleanup(func() { wrapped.Close() })
	if err := wrapped.EnsureSchema(tc.schema); err != nil {
		t.Fatalf("EnsureSchema: %v", err)
	}
	if _, err := wrapped.Load(tc.schema, tc.doc); err != nil {
		t.Fatalf("Load: %v", err)
	}

	// Primary down hard: every operation fails from here on.
	inst.SetFaults(fakedb.FaultConfig{FailFirst: 1 << 30})
	for _, query := range tc.queries {
		for mode, q := range translations(t, tc.schema, query) {
			want, err := ref.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s %s on reference: %v", query, mode, err)
			}
			got, err := wrapped.Execute(ctx, q)
			if err != nil {
				t.Fatalf("%s %s degraded: %v", query, mode, err)
			}
			if !want.MultisetEqual(got) {
				t.Errorf("%s %s: degraded answer diverges:\n%s", query, mode, want.MultisetDiff(got))
			}
		}
	}
	st := wrapped.Stats()
	if st.Fallbacks == 0 || st.BreakerTrips == 0 {
		t.Fatalf("stats = %+v, want fallbacks and at least one breaker trip", st)
	}
	// Once tripped, the breaker short-circuits: the primary sees far fewer
	// attempts than the query count.
	if st.Fallbacks != st.Executes {
		t.Fatalf("stats = %+v, want every execute served by the fallback", st)
	}
}

// TestDBLoadRollsBackOnMidBatchFault arms a fault schedule that lets some
// INSERT batches through and then kills one: Load must fail and the store
// must hold zero rows — not a partially-populated shred that would silently
// break losslessness on the next query.
func TestDBLoadRollsBackOnMidBatchFault(t *testing.T) {
	tc := diffCases(t)[0]
	inst := fakedb.New()
	db := backend.NewDB(sql.OpenDB(inst.Connector()), sqlast.DialectSQLite)
	t.Cleanup(func() { db.Close() })
	if err := db.EnsureSchema(tc.schema); err != nil {
		t.Fatalf("EnsureSchema: %v", err)
	}

	inst.SetFaults(fakedb.FaultConfig{Seed: 7, ExecErrorRate: 0.5})
	if _, err := db.Load(tc.schema, tc.doc); err == nil {
		inst.ClearFaults()
		t.Fatal("Load under a 50% exec fault rate should fail (seed 7 injects)")
	}
	inst.ClearFaults()
	if n := inst.Store().TotalRows(); n != 0 {
		t.Fatalf("store holds %d rows after failed load, want 0 (transaction must roll back)", n)
	}

	// The same backend recovers: a clean retry of the load fully populates.
	res, err := db.Load(tc.schema, tc.doc)
	if err != nil {
		t.Fatalf("clean reload: %v", err)
	}
	if res[0].Tuples == 0 || inst.Store().TotalRows() == 0 {
		t.Fatal("clean reload stored nothing")
	}
}

// cyclicReach builds, on any backend that will take the DDL, an instance the
// paper's acyclicity assumption forbids — a cycle — plus the reachability
// query whose fixpoint therefore diverges. It is the backend-level
// cancellation fixture: without a deadline the query would run for
// MaxRecursionRounds.
func cyclicReachQuery() *sqlast.Query {
	return &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "reach",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{
				{
					Cols:  []sqlast.SelectItem{sqlast.Col("E", "dst")},
					From:  []sqlast.FromItem{sqlast.From("E", "E")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "E", Column: "src"}, sqlast.IntLit(1)),
				},
				{
					Cols: []sqlast.SelectItem{sqlast.Col("E", "dst")},
					From: []sqlast.FromItem{sqlast.From("reach", "reach"), sqlast.From("E", "E")},
					Where: sqlast.Eq(
						sqlast.ColRef{Table: "E", Column: "src"},
						sqlast.ColRef{Table: "reach", Column: "dst"},
					),
				},
			}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("reach", "dst")},
			From: []sqlast.FromItem{sqlast.From("reach", "reach")},
		}},
	}
}

// TestBackendsCancelMidRecursiveCTE drives the diverging recursive query
// through both backends under a short deadline: each must return
// context.DeadlineExceeded promptly, proving cancellation crosses the
// Backend interface (and, for DB, the whole database/sql driver stack).
func TestBackendsCancelMidRecursiveCTE(t *testing.T) {
	// Mem: a store holding the cycle directly.
	store := relational.NewStore()
	edge, err := store.CreateTable(&relational.TableSchema{
		Name: "E",
		Columns: []relational.Column{
			{Name: "src", Kind: relational.KindInt},
			{Name: "dst", Kind: relational.KindInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 1}} {
		edge.MustInsert(relational.Row{relational.Int(e[0]), relational.Int(e[1])})
	}
	mem := backend.NewMemOn(store)

	// DB: the same cycle loaded over plain SQL text.
	raw := fakedb.Open()
	if _, err := raw.Exec(`CREATE TABLE "E" ("src" INTEGER, "dst" INTEGER)`); err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Exec(`INSERT INTO "E" ("src", "dst") VALUES (1, 2), (2, 3), (3, 1)`); err != nil {
		t.Fatal(err)
	}
	db := backend.NewDB(raw, sqlast.DialectSQLite)
	t.Cleanup(func() { db.Close() })

	for _, b := range []backend.Backend{mem, db} {
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		start := time.Now()
		_, err := b.Execute(ctx, cyclicReachQuery())
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("%s: err = %v, want context.DeadlineExceeded", b.Name(), err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("%s: cancellation took %v; not prompt", b.Name(), elapsed)
		}
	}
}
