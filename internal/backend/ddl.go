package backend

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// DDLStatements derives the shredded relations from the mapping annotations
// of s and renders one CREATE statement per table and index in the given
// dialect: a CREATE TABLE with the id column as inline PRIMARY KEY, followed
// by a CREATE INDEX on every join and condition column (parentid, then each
// edge-condition column) — the columns translated queries join and filter on.
// Table order is alphabetical so the output is deterministic.
func DDLStatements(s *schema.Schema, d *sqlast.Dialect) ([]string, error) {
	defs, err := s.DeriveRelations()
	if err != nil {
		return nil, err
	}
	names := make([]string, 0, len(defs))
	for name := range defs {
		names = append(names, name)
	}
	sort.Strings(names)
	var out []string
	for _, name := range names {
		ts := defs[name].TableSchema()
		stmt, err := createTableSQL(ts, d)
		if err != nil {
			return nil, err
		}
		out = append(out, stmt)
		for _, col := range ts.Columns {
			if col.Name == schema.ParentIDColumn || isCondColumn(defs[name], col.Name) {
				out = append(out, createIndexSQL(ts.Name, col.Name, d))
			}
		}
	}
	return out, nil
}

// DDL joins DDLStatements into one executable script.
func DDL(s *schema.Schema, d *sqlast.Dialect) (string, error) {
	stmts, err := DDLStatements(s, d)
	if err != nil {
		return "", err
	}
	return strings.Join(stmts, ";\n") + ";\n", nil
}

func isCondColumn(def *schema.RelationDef, col string) bool {
	for _, c := range def.CondColumns {
		if c.Name == col {
			return true
		}
	}
	return false
}

func createTableSQL(ts *relational.TableSchema, d *sqlast.Dialect) (string, error) {
	var b strings.Builder
	b.WriteString("CREATE TABLE ")
	b.WriteString(d.Ident(ts.Name))
	b.WriteString(" (")
	for i, col := range ts.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		typ, err := d.TypeName(col.Kind)
		if err != nil {
			return "", fmt.Errorf("backend: table %s column %s: %w", ts.Name, col.Name, err)
		}
		b.WriteString(d.Ident(col.Name))
		b.WriteByte(' ')
		b.WriteString(typ)
		if col.Name == ts.PrimaryKey {
			b.WriteString(" PRIMARY KEY")
		}
	}
	b.WriteByte(')')
	return b.String(), nil
}

func createIndexSQL(table, column string, d *sqlast.Dialect) string {
	return fmt.Sprintf("CREATE INDEX %s ON %s (%s)",
		d.Ident("idx_"+table+"_"+column), d.Ident(table), d.Ident(column))
}

// loadBatchRows is how many rows each bulk INSERT statement carries. One
// prepared statement covers full batches; a shorter tail statement covers
// the remainder. 64 rows keeps Postgres-style $N numbering far under any
// engine's placeholder limit while amortizing per-statement overhead.
const loadBatchRows = 64

// insertHeadSQL renders `INSERT INTO "t" ("c1", "c2") VALUES ` for a table.
func insertHeadSQL(ts *relational.TableSchema, d *sqlast.Dialect) string {
	var b strings.Builder
	b.WriteString("INSERT INTO ")
	b.WriteString(d.Ident(ts.Name))
	b.WriteString(" (")
	for i, col := range ts.Columns {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(d.Ident(col.Name))
	}
	b.WriteString(") VALUES ")
	return b.String()
}

// insertPlaceholderSQL renders a prepared multi-row INSERT: the head plus
// nrows parenthesized groups of dialect placeholders, numbered consecutively
// across rows ($1..$N for Postgres, ? everywhere else).
func insertPlaceholderSQL(ts *relational.TableSchema, nrows int, d *sqlast.Dialect) string {
	var b strings.Builder
	b.WriteString(insertHeadSQL(ts, d))
	n := 1
	for r := 0; r < nrows; r++ {
		if r > 0 {
			b.WriteString(", ")
		}
		b.WriteByte('(')
		for c := range ts.Columns {
			if c > 0 {
				b.WriteString(", ")
			}
			b.WriteString(d.Placeholder(n))
			n++
		}
		b.WriteByte(')')
	}
	return b.String()
}

// InsertStatements renders every row of every table in the store as literal
// multi-row INSERT statements — the script form used by `xml2sql -load`,
// which must be runnable as plain SQL text with no bind parameters. Tables
// are emitted alphabetically and rows in primary-key order.
func InsertStatements(store *relational.Store, d *sqlast.Dialect) []string {
	var out []string
	for _, name := range store.TableNames() {
		t := store.Table(name)
		ts := t.Schema()
		rows := t.SortedRows()
		for start := 0; start < len(rows); start += loadBatchRows {
			end := start + loadBatchRows
			if end > len(rows) {
				end = len(rows)
			}
			var b strings.Builder
			b.WriteString(insertHeadSQL(ts, d))
			for r, row := range rows[start:end] {
				if r > 0 {
					b.WriteString(", ")
				}
				b.WriteByte('(')
				for c, v := range row {
					if c > 0 {
						b.WriteString(", ")
					}
					b.WriteString(d.Literal(v))
				}
				b.WriteByte(')')
			}
			out = append(out, b.String())
		}
	}
	return out
}

// LoadScript joins InsertStatements into one executable script.
func LoadScript(store *relational.Store, d *sqlast.Dialect) string {
	stmts := InsertStatements(store, d)
	if len(stmts) == 0 {
		return ""
	}
	return strings.Join(stmts, ";\n") + ";\n"
}
