package backend_test

import (
	"context"
	"database/sql"
	"strings"
	"testing"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/integrity"
	"xmlsql/internal/resilient"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/update"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// The mutation-batch chaos suite: the same batch runs against a faulting
// fakedb backend across many seeded fault schedules. Whenever a fault lands —
// whether during target resolution, the pre-apply audit's fetches, or
// mid-batch inside the DML transaction — the store must come out
// byte-identical to its pre-batch snapshot and a subsequent audit of the
// batch's would-be neighborhood must report clean. Whenever the batch gets
// through, the resulting store must be byte-identical to a fault-free
// in-memory reference that applied the same batch — the differential
// property, extended from queries to writes.

// chaosBatch is the update workload: two inserts bracketing a delete, so a
// mid-batch fault can strand any mix of insert and delete statements if the
// transaction fails to roll back.
func chaosBatch() update.Batch {
	return update.Batch{Muts: []update.Mutation{
		{Op: update.OpInsert, Path: "/Site/Regions/Africa/Item",
			XML: "<InCategory><Category>chaos-a</Category></InCategory>"},
		{Op: update.OpDelete, Path: "/Site/Regions/Asia/Item"},
		{Op: update.OpInsert, Path: "/Site/Regions/Europe/Item",
			XML: "<InCategory><Category>chaos-b</Category></InCategory>"},
	}}
}

func chaosDoc() (*schema.Schema, *xmltree.Document) {
	return workloads.XMark(), workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 3, CategoriesPerItem: 2, NumCategories: 6, Seed: 42,
	})
}

// memReference applies the batch on a fault-free in-memory instance and
// returns the pre-batch dump, post-batch dump, and the batch's footprint.
func memReference(t *testing.T, s *schema.Schema, doc *xmltree.Document, b update.Batch) (pre, post string, touched integrity.Touched) {
	t.Helper()
	mem := backend.NewMem()
	if err := mem.EnsureSchema(s); err != nil {
		t.Fatalf("mem EnsureSchema: %v", err)
	}
	if _, err := mem.Load(s, doc); err != nil {
		t.Fatalf("mem Load: %v", err)
	}
	pre = mem.Store().Dump()
	a, err := update.ForStore(s, mem.Store(), update.Options{})
	if err != nil {
		t.Fatalf("ForStore: %v", err)
	}
	res, err := a.Apply(context.Background(), b)
	if err != nil {
		t.Fatalf("reference Apply: %v", err)
	}
	if !res.Audit.Clean() {
		t.Fatalf("reference audit dirty: %v", res.Audit)
	}
	return pre, mem.Store().Dump(), res.Touched
}

func TestChaosUpdateBatchAtomicUnderFaults(t *testing.T) {
	ctx := context.Background()
	s, doc := chaosDoc()
	batch := chaosBatch()
	refPre, refPost, touched := memReference(t, s, doc, batch)

	var faulted, midDML, applied int
	for seed := int64(0); seed < 48; seed++ {
		inst := fakedb.New()
		db := backend.NewDB(sql.OpenDB(inst.Connector()), sqlast.DialectSQLite)
		if err := db.EnsureSchema(s); err != nil {
			t.Fatalf("db EnsureSchema: %v", err)
		}
		if _, err := db.Load(s, doc); err != nil {
			t.Fatalf("db Load: %v", err)
		}
		if pre := inst.Store().Dump(); pre != refPre {
			t.Fatalf("seed %d: fakedb and mem disagree before the batch:\nfakedb:\n%s\nmem:\n%s", seed, pre, refPre)
		}
		// Route reads through the resilient wrapper (faults there are
		// absorbed by retries, as in production) but apply DML on the primary
		// directly — a retry must never re-send a possibly-half-committed
		// batch, so faults inside the transaction surface as batch failures.
		wrapped := resilient.Wrap(db, resilient.Options{
			Retry:   chaosRetry,
			Breaker: resilient.BreakerConfig{FailureThreshold: 1 << 30},
		})
		probe, err := integrity.NewSourceProbe(wrapped, s)
		if err != nil {
			t.Fatalf("NewSourceProbe: %v", err)
		}
		a, err := update.New(s, wrapped, probe, db, update.Options{})
		if err != nil {
			t.Fatalf("New: %v", err)
		}

		inst.SetFaults(fakedb.FaultConfig{Seed: seed, ExecErrorRate: 0.05, RowErrorRate: 0.05})
		res, err := a.Apply(ctx, batch)
		inst.ClearFaults()

		if err != nil {
			faulted++
			if strings.Contains(err.Error(), "update: apply:") {
				midDML++ // the fault landed inside the DML transaction
			}
			if got := inst.Store().Dump(); got != refPre {
				t.Fatalf("seed %d: faulted batch (%v) left the store changed:\ngot:\n%s\nwant pre-batch:\n%s", seed, err, got, refPre)
			}
			// The neighborhood the batch would have touched audits clean on
			// the rolled-back store — no half-applied tuples to quarantine.
			rep, aerr := integrity.AuditIncrementalOpts(ctx, probe, s, touched, integrity.Options{})
			if aerr != nil {
				t.Fatalf("seed %d: post-fault incremental audit: %v", seed, aerr)
			}
			if !rep.Clean() {
				t.Fatalf("seed %d: post-fault incremental audit dirty: %v", seed, rep)
			}
		} else {
			applied++
			if !res.Audit.Clean() {
				t.Fatalf("seed %d: applied batch's audit dirty: %v", seed, res.Audit)
			}
			if got := inst.Store().Dump(); got != refPost {
				t.Fatalf("seed %d: applied batch diverges from the fault-free mem reference:\ngot:\n%s\nwant:\n%s", seed, got, refPost)
			}
		}
		db.Close()
	}

	if faulted == 0 || applied == 0 {
		t.Fatalf("vacuous schedule: %d faulted, %d applied — both paths must be exercised", faulted, applied)
	}
	if midDML == 0 {
		t.Fatal("no fault ever landed inside the DML transaction; mid-batch rollback went untested")
	}
	t.Logf("chaos updates: %d faulted (%d mid-DML), %d applied clean", faulted, midDML, applied)
}

// TestChaosMemUpdateRollsBackMidBatch is the in-memory face of batch
// atomicity: a statement list that fails partway through (the second
// statement names a table the store does not have) must leave the store
// byte-identical — the undo log rolls back the insert the first statement
// already applied.
func TestChaosMemUpdateRollsBackMidBatch(t *testing.T) {
	s, doc := chaosDoc()
	mem := backend.NewMem()
	if err := mem.EnsureSchema(s); err != nil {
		t.Fatalf("EnsureSchema: %v", err)
	}
	if _, err := mem.Load(s, doc); err != nil {
		t.Fatalf("Load: %v", err)
	}
	pre := mem.Store().Dump()

	stmts := []sqlast.DMLStmt{
		&sqlast.InsertStmt{Table: "InCat", Columns: []string{schema.IDColumn, schema.ParentIDColumn, "Category"},
			Rows: [][]sqlast.Lit{{sqlast.IntLit(999001), sqlast.IntLit(1), sqlast.StringLit("stranded")}}},
		&sqlast.InsertStmt{Table: "NoSuchRelation", Columns: []string{schema.IDColumn},
			Rows: [][]sqlast.Lit{{sqlast.IntLit(999002)}}},
	}
	if err := mem.ApplyDML(context.Background(), stmts); err == nil {
		t.Fatal("mid-batch failure must surface as an error")
	}
	if got := mem.Store().Dump(); got != pre {
		t.Fatalf("store changed after failed mid-batch apply:\ngot:\n%s\nwant:\n%s", got, pre)
	}
}
