package fakedb

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// InjectedError is the error the fault injector returns for a simulated
// backend failure. It implements the net.Error-style Temporary method, which
// is how internal/resilient (and any caller following the same convention)
// classifies it as transient without importing this package. The error
// crosses the database/sql boundary intact, so retry layers above the
// *sql.DB see exactly what they would see from a flaky real driver.
type InjectedError struct {
	// Op names the operation the fault interrupted: "exec", "query", or
	// "row" for a mid-resultset failure.
	Op string
}

// Error implements error.
func (e *InjectedError) Error() string {
	return "fakedb: injected transient fault during " + e.Op
}

// Temporary marks the fault as transient (retry-worthy).
func (e *InjectedError) Temporary() bool { return true }

// FaultConfig programs the fault injector of one fake database instance.
// The zero value injects nothing. All probabilities draw from a private
// rand.Rand seeded with Seed, so a given (config, workload) pair replays the
// exact same fault schedule on every run — chaos tests stay deterministic.
type FaultConfig struct {
	// Seed seeds the injector's PRNG (0 is a valid, fixed seed).
	Seed int64
	// ExecErrorRate is the probability in [0,1] that a statement execution
	// (Exec or Query entry) fails with an *InjectedError before running.
	ExecErrorRate float64
	// FailFirst makes the first N operations fail unconditionally, then
	// stops injecting by count (rates still apply). This is the
	// "fail-N-then-succeed" pattern for exercising retry-until-success and
	// breaker half-open recovery.
	FailFirst int
	// Latency is added to every operation before it runs, simulating a slow
	// or saturated backend. Sleeps are context-aware where a context is
	// available, so deadlines still cut them short.
	Latency time.Duration
	// RowErrorRate is the probability in [0,1] that a query's resultset
	// fails mid-iteration: the rows deliver normally until a random
	// position, then Next returns an *InjectedError — the partial-resultset
	// failure mode retry layers must treat as a whole-query retry.
	RowErrorRate float64
}

// faultInjector holds the mutable fault state of a DB instance. A nil
// injector (the default) is fully inert.
type faultInjector struct {
	mu  sync.Mutex
	cfg FaultConfig
	rng *rand.Rand
	ops int   // operations seen, for FailFirst
	n   int64 // faults injected, for stats
}

// SetFaults installs (or, with a zero config, clears) the instance's fault
// plan. Safe to call while connections are live; subsequent operations see
// the new plan.
func (db *DB) SetFaults(cfg FaultConfig) {
	inj := &faultInjector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	db.faults.Store(inj)
}

// ClearFaults removes the fault plan entirely.
func (db *DB) ClearFaults() { db.faults.Store((*faultInjector)(nil)) }

// InjectedFaults reports how many faults the instance has injected since the
// last SetFaults.
func (db *DB) InjectedFaults() int64 {
	inj := db.faults.Load()
	if inj == nil {
		return 0
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return inj.n
}

// before runs the pre-operation fault schedule: latency first (a slow
// backend is slow whether or not it then fails), then fail-first, then the
// random error rate. ctx bounds the latency sleep; pass nil for legacy
// non-context driver entry points.
func (inj *faultInjector) before(ctx context.Context, op string) error {
	if inj == nil {
		return nil
	}
	inj.mu.Lock()
	cfg := inj.cfg
	inj.ops++
	failByCount := inj.ops <= cfg.FailFirst
	failByRate := cfg.ExecErrorRate > 0 && inj.rng.Float64() < cfg.ExecErrorRate
	fail := failByCount || failByRate
	if fail {
		inj.n++
	}
	inj.mu.Unlock()

	if cfg.Latency > 0 {
		if ctx == nil {
			time.Sleep(cfg.Latency)
		} else {
			t := time.NewTimer(cfg.Latency)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return ctx.Err()
			}
		}
	}
	if fail {
		return &InjectedError{Op: op}
	}
	return nil
}

// rowFailure decides whether a resultset of total rows should fail midway,
// returning the 0-based row index at which Next errors (and true), or false
// for a clean resultset.
func (inj *faultInjector) rowFailure(total int) (int, bool) {
	if inj == nil || total == 0 {
		return 0, false
	}
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if inj.cfg.RowErrorRate <= 0 || inj.rng.Float64() >= inj.cfg.RowErrorRate {
		return 0, false
	}
	inj.n++
	return inj.rng.Intn(total), true
}
