package fakedb

import (
	"context"
	"database/sql"
	"errors"
	"testing"
	"time"
)

// openFaulty opens a handle while keeping the DB instance for SetFaults.
func openFaulty(t *testing.T) (*DB, *sql.DB) {
	t.Helper()
	inst := New()
	db := sql.OpenDB(inst.Connector())
	t.Cleanup(func() { db.Close() })
	return inst, db
}

func seedSmallTable(t *testing.T, db *sql.DB) {
	t.Helper()
	mustExec(t, db, `CREATE TABLE r (id INTEGER PRIMARY KEY, v TEXT)`)
	mustExec(t, db, `INSERT INTO r (id, v) VALUES (1, 'a'), (2, 'b'), (3, 'c')`)
}

func TestFaultFailFirstThenSucceed(t *testing.T) {
	inst, db := openFaulty(t)
	seedSmallTable(t, db)

	inst.SetFaults(FaultConfig{FailFirst: 2})
	for i := 0; i < 2; i++ {
		var injected *InjectedError
		if _, err := db.Query(`SELECT a.v FROM r a`); !errors.As(err, &injected) {
			t.Fatalf("attempt %d: err = %v, want *InjectedError", i+1, err)
		} else if !injected.Temporary() {
			t.Fatal("injected fault must classify as temporary")
		}
	}
	rows, err := db.Query(`SELECT a.v FROM r a`)
	if err != nil {
		t.Fatalf("third attempt should succeed, got %v", err)
	}
	rows.Close()
	if n := inst.InjectedFaults(); n != 2 {
		t.Fatalf("InjectedFaults = %d, want 2", n)
	}
}

func TestFaultRateDeterministicBySeed(t *testing.T) {
	run := func() int64 {
		inst, db := openFaulty(t)
		seedSmallTable(t, db)
		inst.SetFaults(FaultConfig{Seed: 42, ExecErrorRate: 0.3})
		for i := 0; i < 200; i++ {
			if rows, err := db.Query(`SELECT a.v FROM r a`); err == nil {
				rows.Close()
			}
		}
		return inst.InjectedFaults()
	}
	first, second := run(), run()
	if first == 0 {
		t.Fatal("a 30% rate over 200 operations injected nothing")
	}
	if first != second {
		t.Fatalf("same seed produced different fault schedules: %d vs %d", first, second)
	}
}

func TestFaultMidResultset(t *testing.T) {
	inst, db := openFaulty(t)
	seedSmallTable(t, db)

	inst.SetFaults(FaultConfig{RowErrorRate: 1})
	rows, err := db.Query(`SELECT a.v FROM r a`)
	if err != nil {
		t.Fatalf("Query itself should start cleanly, got %v", err)
	}
	defer rows.Close()
	for rows.Next() {
	}
	var injected *InjectedError
	if err := rows.Err(); !errors.As(err, &injected) || injected.Op != "row" {
		t.Fatalf("rows.Err() = %v, want mid-resultset *InjectedError", err)
	}

	// Clearing the plan restores clean scans.
	inst.ClearFaults()
	rows2, err := db.Query(`SELECT a.v FROM r a`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows2.Next() {
		n++
	}
	rows2.Close()
	if err := rows2.Err(); err != nil || n != 3 {
		t.Fatalf("after ClearFaults: %d rows, err %v; want 3 clean rows", n, err)
	}
}

func TestFaultLatencyHonorsContext(t *testing.T) {
	inst, db := openFaulty(t)
	seedSmallTable(t, db)

	inst.SetFaults(FaultConfig{Latency: 10 * time.Second})
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, `SELECT a.v FROM r a`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline took %v to land; the latency sleep ignored the context", elapsed)
	}
}

// TestQueryContextReachesEngine cancels a query mid-evaluation: the fake
// driver implements the context-aware driver interfaces, so the deadline
// must interrupt the engine's own join loops, not just the driver shim.
func TestQueryContextReachesEngine(t *testing.T) {
	_, db := openFaulty(t)
	mustExec(t, db, `CREATE TABLE big (n INTEGER PRIMARY KEY)`)
	for i := 0; i < 40; i++ {
		mustExec(t, db, `INSERT INTO big (n) VALUES (?)`, i*50)
		for j := 1; j < 50; j++ {
			mustExec(t, db, `INSERT INTO big (n) VALUES (?)`, i*50+j)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := db.QueryContext(ctx, `SELECT a.n FROM big a, big b, big c`)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded from inside the engine", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("engine cancellation took %v; not prompt", elapsed)
	}
}

func TestTxCommitAppliesRollbackDiscards(t *testing.T) {
	_, db := openFaulty(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)`)

	count := func() int {
		var n int
		rows, err := db.Query(`SELECT a.id FROM t a`)
		if err != nil {
			t.Fatalf("count: %v", err)
		}
		for rows.Next() {
			n++
		}
		rows.Close()
		return n
	}

	// Rollback: staged inserts never reach the store.
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t (id, v) VALUES (1, 'x'), (2, 'y')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 0 {
		t.Fatalf("store has %d rows after rollback, want 0", n)
	}

	// Commit: the same batch becomes visible.
	tx, err = db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Exec(`INSERT INTO t (id, v) VALUES (1, 'x'), (2, 'y')`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if n := count(); n != 2 {
		t.Fatalf("store has %d rows after commit, want 2", n)
	}
}

func TestTxCommitDuplicateKeyLeavesStoreClean(t *testing.T) {
	_, db := openFaulty(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)
	mustExec(t, db, `INSERT INTO t (id) VALUES (1)`)

	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	// Duplicate of an existing key: staged fine, rejected at commit.
	if _, err := tx.Exec(`INSERT INTO t (id) VALUES (1)`); err != nil {
		t.Fatal(err)
	}
	if err := tx.Commit(); err == nil {
		t.Fatal("commit of a duplicate key should fail")
	}
	var n int
	rows, err := db.Query(`SELECT a.id FROM t a`)
	if err != nil {
		t.Fatal(err)
	}
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 1 {
		t.Fatalf("store has %d rows after failed commit, want the original 1", n)
	}
}

func TestTxExecFaultInsideTransaction(t *testing.T) {
	inst, db := openFaulty(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY)`)

	inst.SetFaults(FaultConfig{FailFirst: 1})
	tx, err := db.Begin()
	if err != nil {
		t.Fatal(err)
	}
	var injected *InjectedError
	if _, err := tx.Exec(`INSERT INTO t (id) VALUES (1)`); !errors.As(err, &injected) {
		t.Fatalf("err = %v, want *InjectedError", err)
	}
	if err := tx.Rollback(); err != nil {
		t.Fatal(err)
	}
	inst.ClearFaults()
	rows, err := db.Query(`SELECT a.id FROM t a`)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 0 {
		t.Fatalf("store has %d rows after mid-batch fault + rollback, want 0", n)
	}
}
