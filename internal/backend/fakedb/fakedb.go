// Package fakedb is an in-process database/sql/driver implementation backed
// by the repo's own relational store and query engine.
//
// The environment this project targets is offline: no external SQL driver
// can be downloaded, yet the dbbackend needs a real database/sql connection
// to prove that dialect-rendered SQL, generated DDL, and batched INSERT
// loading behave like a live RDBMS. fakedb closes that gap. It registers a
// driver whose connections parse the SQL text they receive (parser.go) and
// execute it against a relational.Store via internal/engine — so everything
// crossing the database/sql boundary is honest SQL text plus driver.Value
// args, exactly what a SQLite or Postgres driver would see. Differential
// tests then assert that the dbbackend over fakedb returns row-for-row the
// results of the in-memory backend; swapping in a real driver is a one-line
// change in the caller.
package fakedb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
)

// DriverName is the name the fake driver is registered under with
// database/sql. Each distinct DSN names its own shared database instance.
const DriverName = "xmlsql-fakedb"

// DB is one fake database instance: a relational store plus the engine that
// serves queries over it. It is safe for concurrent use through any number
// of database/sql connections.
type DB struct {
	store *relational.Store
}

// New creates an empty fake database.
func New() *DB { return &DB{store: relational.NewStore()} }

// Store exposes the underlying relational store (tests use it to inspect
// what DDL and INSERT statements materialized).
func (db *DB) Store() *relational.Store { return db.store }

// Connector returns a driver.Connector for sql.OpenDB.
func (db *DB) Connector() driver.Connector { return connector{db: db} }

// Open creates a fresh, empty fake database and returns a database/sql
// handle to it. Closing the handle discards the instance.
func Open() *sql.DB { return sql.OpenDB(New().Connector()) }

// The named-DSN registry behind sql.Open(DriverName, dsn): every dsn names
// one shared instance, so separate sql.Open calls can address the same data.
var (
	registryMu sync.Mutex
	registry   = map[string]*DB{}
)

// Drv is the database/sql driver. sql.Open(DriverName, "somedsn") connects
// to the shared instance named by the DSN, creating it on first use.
type Drv struct{}

// Open implements driver.Driver.
func (Drv) Open(dsn string) (driver.Conn, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[dsn]
	if !ok {
		db = New()
		registry[dsn] = db
	}
	return &conn{db: db}, nil
}

func init() { sql.Register(DriverName, Drv{}) }

type connector struct {
	db *DB
}

func (c connector) Connect(context.Context) (driver.Conn, error) {
	return &conn{db: c.db}, nil
}

func (c connector) Driver() driver.Driver { return connDriver{db: c.db} }

// connDriver satisfies driver.Connector's Driver method for a pinned
// instance (used only by database/sql introspection).
type connDriver struct {
	db *DB
}

func (d connDriver) Open(string) (driver.Conn, error) { return &conn{db: d.db}, nil }

type conn struct {
	db *DB
}

// Prepare parses the statement text once; Exec/Query replay it with args.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	stmts, numInput, err := parseScript(query)
	if err != nil {
		return nil, err
	}
	if len(stmts) > 1 && numInput > 0 {
		return nil, fmt.Errorf("fakedb: multi-statement scripts cannot carry bind parameters")
	}
	return &stmt{db: c.db, stmts: stmts, numInput: numInput}, nil
}

func (c *conn) Close() error { return nil }

// Begin returns a pass-through transaction: the fake database applies
// statements immediately and Commit/Rollback are no-ops. Bulk loading does
// not rely on transactional atomicity, only on statement execution.
func (c *conn) Begin() (driver.Tx, error) { return nopTx{}, nil }

type nopTx struct{}

func (nopTx) Commit() error   { return nil }
func (nopTx) Rollback() error { return nil }

type stmt struct {
	db       *DB
	stmts    []*statement
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

// Exec runs DDL and INSERT statements (and tolerates scripts mixing them).
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	var affected int64
	for _, st := range s.stmts {
		n, err := s.execOne(st, vals)
		if err != nil {
			return nil, err
		}
		affected += n
	}
	return execResult(affected), nil
}

func (s *stmt) execOne(st *statement, args []relational.Value) (int64, error) {
	switch st.kind {
	case stmtCreateTable:
		_, err := s.db.store.CreateTable(st.create)
		return 0, err
	case stmtCreateIndex:
		t := s.db.store.Table(st.index.table)
		if t == nil {
			return 0, fmt.Errorf("fakedb: create index: no table %s", st.index.table)
		}
		return 0, t.BuildIndex(st.index.column)
	case stmtInsert:
		return s.runInsert(st.insert, args)
	case stmtSelect:
		// Exec on a SELECT: evaluate and discard (mirrors real drivers).
		_, err := engine.Execute(s.db.store, st.query)
		return 0, err
	}
	return 0, fmt.Errorf("fakedb: unknown statement kind %d", st.kind)
}

func (s *stmt) runInsert(op *insertOp, args []relational.Value) (int64, error) {
	t := s.db.store.Table(op.table)
	if t == nil {
		return 0, fmt.Errorf("fakedb: insert into unknown table %s", op.table)
	}
	ts := t.Schema()
	colIdx := make([]int, len(op.cols))
	for i, c := range op.cols {
		ci := ts.ColumnIndex(c)
		if ci < 0 {
			return 0, fmt.Errorf("fakedb: table %s has no column %s", op.table, c)
		}
		colIdx[i] = ci
	}
	var n int64
	for _, row := range op.rows {
		out := make(relational.Row, len(ts.Columns))
		for i := range out {
			out[i] = relational.Null
		}
		for i, v := range row {
			val := v.lit
			if v.arg >= 0 {
				if v.arg >= len(args) {
					return n, fmt.Errorf("fakedb: bind parameter %d out of range (%d args)", v.arg+1, len(args))
				}
				val = args[v.arg]
			}
			out[colIdx[i]] = val
		}
		if err := t.Insert(out); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Query runs the (single) SELECT statement through the engine.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	if len(s.stmts) != 1 || s.stmts[0].kind != stmtSelect {
		return nil, fmt.Errorf("fakedb: Query requires a single SELECT statement")
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("fakedb: bind parameters are not supported in SELECT")
	}
	res, err := engine.Execute(s.db.store, s.stmts[0].query)
	if err != nil {
		return nil, err
	}
	return &rows{res: res}, nil
}

type rows struct {
	res *engine.Result
	i   int
}

func (r *rows) Columns() []string { return r.res.Cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for i, v := range row {
		switch v.Kind() {
		case relational.KindNull:
			dest[i] = nil
		case relational.KindInt:
			dest[i] = v.AsInt()
		case relational.KindString:
			dest[i] = v.AsString()
		}
	}
	return nil
}

type execResult int64

func (r execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("fakedb: LastInsertId unsupported")
}
func (r execResult) RowsAffected() (int64, error) { return int64(r), nil }

// toValues converts driver args to relational values.
func toValues(args []driver.Value) ([]relational.Value, error) {
	out := make([]relational.Value, len(args))
	for i, a := range args {
		switch a := a.(type) {
		case nil:
			out[i] = relational.Null
		case int64:
			out[i] = relational.Int(a)
		case string:
			out[i] = relational.String(a)
		case []byte:
			out[i] = relational.String(string(a))
		default:
			return nil, fmt.Errorf("fakedb: unsupported bind parameter type %T", a)
		}
	}
	return out, nil
}
