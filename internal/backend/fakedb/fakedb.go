// Package fakedb is an in-process database/sql/driver implementation backed
// by the repo's own relational store and query engine.
//
// The environment this project targets is offline: no external SQL driver
// can be downloaded, yet the dbbackend needs a real database/sql connection
// to prove that dialect-rendered SQL, generated DDL, and batched INSERT
// loading behave like a live RDBMS. fakedb closes that gap. It registers a
// driver whose connections parse the SQL text they receive (parser.go) and
// execute it against a relational.Store via internal/engine — so everything
// crossing the database/sql boundary is honest SQL text plus driver.Value
// args, exactly what a SQLite or Postgres driver would see. Differential
// tests then assert that the dbbackend over fakedb returns row-for-row the
// results of the in-memory backend; swapping in a real driver is a one-line
// change in the caller.
package fakedb

import (
	"context"
	"database/sql"
	"database/sql/driver"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"xmlsql/internal/backend"
	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// DriverName is the name the fake driver is registered under with
// database/sql. Each distinct DSN names its own shared database instance.
const DriverName = "xmlsql-fakedb"

// DB is one fake database instance: a relational store plus the engine that
// serves queries over it. It is safe for concurrent use through any number
// of database/sql connections.
//
// An instance can also be programmed to misbehave: SetFaults installs a
// deterministic fault plan (error rates, fail-N-then-succeed, latency,
// mid-resultset errors — see FaultConfig) so resilience layers can be tested
// against a backend that fails like a real one, offline.
type DB struct {
	store  *relational.Store
	faults atomic.Pointer[faultInjector]
}

// New creates an empty fake database.
func New() *DB { return &DB{store: relational.NewStore()} }

// Store exposes the underlying relational store (tests use it to inspect
// what DDL and INSERT statements materialized).
func (db *DB) Store() *relational.Store { return db.store }

// Connector returns a driver.Connector for sql.OpenDB.
func (db *DB) Connector() driver.Connector { return connector{db: db} }

// Open creates a fresh, empty fake database and returns a database/sql
// handle to it. Closing the handle discards the instance.
func Open() *sql.DB { return sql.OpenDB(New().Connector()) }

// The named-DSN registry behind sql.Open(DriverName, dsn): every dsn names
// one shared instance, so separate sql.Open calls can address the same data.
var (
	registryMu sync.Mutex
	registry   = map[string]*DB{}
)

// Drv is the database/sql driver. sql.Open(DriverName, "somedsn") connects
// to the shared instance named by the DSN, creating it on first use.
type Drv struct{}

// Open implements driver.Driver.
func (Drv) Open(dsn string) (driver.Conn, error) {
	registryMu.Lock()
	defer registryMu.Unlock()
	db, ok := registry[dsn]
	if !ok {
		db = New()
		registry[dsn] = db
	}
	return &conn{db: db}, nil
}

func init() { sql.Register(DriverName, Drv{}) }

type connector struct {
	db *DB
}

func (c connector) Connect(context.Context) (driver.Conn, error) {
	return &conn{db: c.db}, nil
}

func (c connector) Driver() driver.Driver { return connDriver{db: c.db} }

// connDriver satisfies driver.Connector's Driver method for a pinned
// instance (used only by database/sql introspection).
type connDriver struct {
	db *DB
}

func (d connDriver) Open(string) (driver.Conn, error) { return &conn{db: d.db}, nil }

type conn struct {
	db *DB
	// tx is the connection's open transaction, if any. database/sql pins a
	// transaction to one connection and serializes use of it, so no lock is
	// needed here.
	tx *fakeTx
}

// Prepare parses the statement text once; Exec/Query replay it with args.
func (c *conn) Prepare(query string) (driver.Stmt, error) {
	stmts, numInput, err := parseScript(query)
	if err != nil {
		return nil, err
	}
	if len(stmts) > 1 && numInput > 0 {
		return nil, fmt.Errorf("fakedb: multi-statement scripts cannot carry bind parameters")
	}
	return &stmt{conn: c, stmts: stmts, numInput: numInput}, nil
}

func (c *conn) Close() error { return nil }

// Begin starts a real (buffering) transaction: INSERTs executed inside it
// are validated immediately but staged, becoming visible only on Commit;
// Rollback discards them. This gives the DB backend's transactional bulk
// load honest all-or-nothing semantics to test against — a mid-batch fault
// leaves the store exactly as it was. DDL inside a transaction applies
// immediately (as in engines that auto-commit DDL).
func (c *conn) Begin() (driver.Tx, error) {
	if c.tx != nil {
		return nil, fmt.Errorf("fakedb: connection already has an open transaction")
	}
	c.tx = &fakeTx{conn: c}
	return c.tx, nil
}

// fakeTx buffers DML until Commit.
type fakeTx struct {
	conn    *conn
	pending []stagedDML
}

// stagedDML is one buffered statement: either a resolved insert row or a
// parsed DELETE/UPDATE node. Staged statements apply in order at Commit, so
// a later delete sees an earlier staged insert; SELECTs inside the
// transaction do not see staged rows (no read-your-writes, like the bulk
// loader needs and nothing else uses).
type stagedDML struct {
	table string         // insert target, when row is set
	row   relational.Row // resolved full-width insert row
	dml   sqlast.DMLStmt // DELETE or UPDATE, when row is nil
}

// Commit applies the staged statements to the shared store, in order, under
// an undo-log transaction: a failure on any statement (a duplicate key
// surfacing at commit, say) rolls back the ones already applied, so Commit
// is all-or-nothing like a real engine's.
func (tx *fakeTx) Commit() error {
	defer func() { tx.conn.tx = nil }()
	stx := tx.conn.db.store.Begin()
	for _, p := range tx.pending {
		var err error
		if p.row != nil {
			err = stx.Insert(p.table, p.row)
		} else {
			_, err = backend.ApplyStmt(stx, tx.conn.db.store, p.dml)
		}
		if err != nil {
			stx.Rollback()
			return fmt.Errorf("fakedb: commit: %w", err)
		}
	}
	stx.Commit()
	return nil
}

// Rollback discards the staged statements; the store is untouched.
func (tx *fakeTx) Rollback() error {
	tx.conn.tx = nil
	return nil
}

// QueryContext implements driver.QueryerContext, so unprepared
// db.QueryContext calls skip the Prepare round trip and carry their context
// all the way into the engine.
func (c *conn) QueryContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Rows, error) {
	st, err := c.Prepare(query)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.(*stmt).query(ctx, namedToValues(args))
}

// ExecContext implements driver.ExecerContext for unprepared Exec calls.
func (c *conn) ExecContext(ctx context.Context, query string, args []driver.NamedValue) (driver.Result, error) {
	st, err := c.Prepare(query)
	if err != nil {
		return nil, err
	}
	defer st.Close()
	return st.(*stmt).exec(ctx, namedToValues(args))
}

// namedToValues flattens driver.NamedValue args (fakedb supports only
// ordinal parameters) to plain driver.Values.
func namedToValues(args []driver.NamedValue) []driver.Value {
	out := make([]driver.Value, len(args))
	for i, a := range args {
		out[i] = a.Value
	}
	return out
}

type stmt struct {
	conn     *conn
	stmts    []*statement
	numInput int
}

func (s *stmt) Close() error  { return nil }
func (s *stmt) NumInput() int { return s.numInput }

func (s *stmt) db() *DB { return s.conn.db }

// Exec runs DDL and INSERT statements (and tolerates scripts mixing them).
func (s *stmt) Exec(args []driver.Value) (driver.Result, error) {
	return s.exec(nil, args)
}

// ExecContext implements driver.StmtExecContext, making injected latency and
// cancellation deadline-aware for prepared statements.
func (s *stmt) ExecContext(ctx context.Context, args []driver.NamedValue) (driver.Result, error) {
	return s.exec(ctx, namedToValues(args))
}

func (s *stmt) exec(ctx context.Context, args []driver.Value) (driver.Result, error) {
	if err := s.db().faults.Load().before(ctx, "exec"); err != nil {
		return nil, err
	}
	vals, err := toValues(args)
	if err != nil {
		return nil, err
	}
	var affected int64
	for _, st := range s.stmts {
		n, err := s.execOne(st, vals)
		if err != nil {
			return nil, err
		}
		affected += n
	}
	return execResult(affected), nil
}

func (s *stmt) execOne(st *statement, args []relational.Value) (int64, error) {
	db := s.db()
	switch st.kind {
	case stmtCreateTable:
		_, err := db.store.CreateTable(st.create)
		return 0, err
	case stmtCreateIndex:
		t := db.store.Table(st.index.table)
		if t == nil {
			return 0, fmt.Errorf("fakedb: create index: no table %s", st.index.table)
		}
		return 0, t.BuildIndex(st.index.column)
	case stmtInsert:
		return s.runInsert(st.insert, args)
	case stmtDelete, stmtUpdate:
		return s.runDML(st.dml)
	case stmtSelect:
		// Exec on a SELECT: evaluate and discard (mirrors real drivers).
		_, err := engine.Execute(db.store, st.query)
		return 0, err
	}
	return 0, fmt.Errorf("fakedb: unknown statement kind %d", st.kind)
}

// runDML executes a DELETE or UPDATE: staged when a transaction is open,
// applied immediately (statement-atomically) otherwise. The rows-affected
// count of a staged statement is unknown until Commit and reported as 0.
func (s *stmt) runDML(dml sqlast.DMLStmt) (int64, error) {
	if tx := s.conn.tx; tx != nil {
		tx.pending = append(tx.pending, stagedDML{dml: dml})
		return 0, nil
	}
	stx := s.db().store.Begin()
	n, err := backend.ApplyStmt(stx, s.db().store, dml)
	if err != nil {
		stx.Rollback()
		return 0, err
	}
	stx.Commit()
	return n, nil
}

func (s *stmt) runInsert(op *insertOp, args []relational.Value) (int64, error) {
	t := s.db().store.Table(op.table)
	if t == nil {
		return 0, fmt.Errorf("fakedb: insert into unknown table %s", op.table)
	}
	ts := t.Schema()
	colIdx := make([]int, len(op.cols))
	for i, c := range op.cols {
		ci := ts.ColumnIndex(c)
		if ci < 0 {
			return 0, fmt.Errorf("fakedb: table %s has no column %s", op.table, c)
		}
		colIdx[i] = ci
	}
	var n int64
	for _, row := range op.rows {
		out := make(relational.Row, len(ts.Columns))
		for i := range out {
			out[i] = relational.Null
		}
		for i, v := range row {
			val := v.lit
			if v.arg >= 0 {
				if v.arg >= len(args) {
					return n, fmt.Errorf("fakedb: bind parameter %d out of range (%d args)", v.arg+1, len(args))
				}
				val = args[v.arg]
			}
			out[colIdx[i]] = val
		}
		if tx := s.conn.tx; tx != nil {
			// Inside a transaction: stage instead of inserting, so Rollback
			// can discard the whole batch.
			tx.pending = append(tx.pending, stagedDML{table: op.table, row: out})
		} else if err := t.Insert(out); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Query runs the (single) SELECT statement through the engine.
func (s *stmt) Query(args []driver.Value) (driver.Rows, error) {
	return s.query(context.Background(), args)
}

// QueryContext implements driver.StmtQueryContext: the context reaches the
// engine, so cancellation interrupts the evaluation itself (between union
// branches, CTE rounds, and inside join loops) rather than waiting for it.
func (s *stmt) QueryContext(ctx context.Context, args []driver.NamedValue) (driver.Rows, error) {
	return s.query(ctx, namedToValues(args))
}

func (s *stmt) query(ctx context.Context, args []driver.Value) (driver.Rows, error) {
	if len(s.stmts) != 1 || s.stmts[0].kind != stmtSelect {
		return nil, fmt.Errorf("fakedb: Query requires a single SELECT statement")
	}
	if len(args) > 0 {
		return nil, fmt.Errorf("fakedb: bind parameters are not supported in SELECT")
	}
	inj := s.db().faults.Load()
	if err := inj.before(ctx, "query"); err != nil {
		return nil, err
	}
	res, err := engine.ExecuteCtx(ctx, s.db().store, s.stmts[0].query, engine.Options{})
	if err != nil {
		return nil, err
	}
	r := &rows{res: res, failAt: -1}
	if at, ok := inj.rowFailure(len(res.Rows)); ok {
		r.failAt = at
	}
	return r, nil
}

type rows struct {
	res *engine.Result
	i   int
	// failAt, when >= 0, is the row index at which Next returns an injected
	// mid-resultset error instead of the row.
	failAt int
}

func (r *rows) Columns() []string { return r.res.Cols }
func (r *rows) Close() error      { return nil }

func (r *rows) Next(dest []driver.Value) error {
	if r.failAt >= 0 && r.i == r.failAt {
		return &InjectedError{Op: "row"}
	}
	if r.i >= len(r.res.Rows) {
		return io.EOF
	}
	row := r.res.Rows[r.i]
	r.i++
	for i, v := range row {
		switch v.Kind() {
		case relational.KindNull:
			dest[i] = nil
		case relational.KindInt:
			dest[i] = v.AsInt()
		case relational.KindString:
			dest[i] = v.AsString()
		}
	}
	return nil
}

type execResult int64

func (r execResult) LastInsertId() (int64, error) {
	return 0, fmt.Errorf("fakedb: LastInsertId unsupported")
}
func (r execResult) RowsAffected() (int64, error) { return int64(r), nil }

// toValues converts driver args to relational values.
func toValues(args []driver.Value) ([]relational.Value, error) {
	out := make([]relational.Value, len(args))
	for i, a := range args {
		switch a := a.(type) {
		case nil:
			out[i] = relational.Null
		case int64:
			out[i] = relational.Int(a)
		case string:
			out[i] = relational.String(a)
		case []byte:
			out[i] = relational.String(string(a))
		default:
			return nil, fmt.Errorf("fakedb: unsupported bind parameter type %T", a)
		}
	}
	return out, nil
}
