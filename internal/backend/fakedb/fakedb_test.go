package fakedb

import (
	"database/sql"
	"database/sql/driver"
	"strings"
	"testing"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// openTestDB gives each test an isolated instance via sql.OpenDB.
func openTestDB(t *testing.T) *sql.DB {
	t.Helper()
	db := Open()
	t.Cleanup(func() { db.Close() })
	return db
}

func mustExec(t *testing.T, db *sql.DB, query string, args ...any) sql.Result {
	t.Helper()
	res, err := db.Exec(query, args...)
	if err != nil {
		t.Fatalf("Exec(%q): %v", query, err)
	}
	return res
}

func TestDriverDDLInsertSelect(t *testing.T) {
	db := openTestDB(t)

	mustExec(t, db, `CREATE TABLE "Item" ("id" INTEGER PRIMARY KEY, "parentid" INTEGER, "name" TEXT)`)
	mustExec(t, db, `CREATE INDEX "idx_Item_parentid" ON "Item" ("parentid")`)

	// Literal multi-row insert.
	res := mustExec(t, db, `INSERT INTO "Item" ("id", "parentid", "name") VALUES (1, NULL, 'root'), (2, 1, 'a'), (3, 1, 'b')`)
	if n, _ := res.RowsAffected(); n != 3 {
		t.Fatalf("RowsAffected = %d, want 3", n)
	}

	// Prepared insert with ? placeholders.
	stmt, err := db.Prepare(`INSERT INTO "Item" ("id", "parentid", "name") VALUES (?, ?, ?)`)
	if err != nil {
		t.Fatalf("Prepare: %v", err)
	}
	if _, err := stmt.Exec(4, 2, "leaf"); err != nil {
		t.Fatalf("stmt.Exec: %v", err)
	}
	stmt.Close()

	// Prepared insert with Postgres-style $N placeholders.
	mustExec(t, db, `INSERT INTO "Item" ("id", "parentid", "name") VALUES ($1, $2, $3)`, 5, 2, "leaf2")

	rows, err := db.Query(`SELECT "I"."name" FROM "Item" "I" WHERE "I"."parentid" = 2`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	defer rows.Close()
	var names []string
	for rows.Next() {
		var name string
		if err := rows.Scan(&name); err != nil {
			t.Fatalf("Scan: %v", err)
		}
		names = append(names, name)
	}
	if err := rows.Err(); err != nil {
		t.Fatalf("rows.Err: %v", err)
	}
	if got := strings.Join(names, ","); got != "leaf,leaf2" {
		t.Fatalf("names = %q, want %q", got, "leaf,leaf2")
	}
}

func TestDriverNullAndIsNull(t *testing.T) {
	db := openTestDB(t)
	mustExec(t, db, `CREATE TABLE t (id INTEGER PRIMARY KEY, parentid INTEGER)`)
	mustExec(t, db, `INSERT INTO t (id, parentid) VALUES (1, NULL), (2, 1)`)

	var id int64
	if err := db.QueryRow(`SELECT r.id FROM t r WHERE r.parentid IS NULL`).Scan(&id); err != nil {
		t.Fatalf("QueryRow: %v", err)
	}
	if id != 1 {
		t.Fatalf("id = %d, want 1", id)
	}

	// NULL comes back as a nil driver value.
	var parent sql.NullInt64
	if err := db.QueryRow(`SELECT r.parentid FROM t r WHERE r.id = 1`).Scan(&parent); err != nil {
		t.Fatalf("QueryRow: %v", err)
	}
	if parent.Valid {
		t.Fatalf("parentid of root should scan as NULL, got %v", parent)
	}
}

func TestDriverMultiStatementScript(t *testing.T) {
	db := openTestDB(t)
	script := `
		CREATE TABLE a (id INTEGER PRIMARY KEY, v TEXT);
		CREATE INDEX idx_a ON a (id);
		INSERT INTO a (id, v) VALUES (1, 'x');
		INSERT INTO a (id, v) VALUES (2, 'y');
	`
	mustExec(t, db, script)
	var n int
	rows, err := db.Query(`SELECT r.v FROM a r`)
	if err != nil {
		t.Fatalf("Query: %v", err)
	}
	for rows.Next() {
		n++
	}
	rows.Close()
	if n != 2 {
		t.Fatalf("got %d rows, want 2", n)
	}

	// Bind parameters are rejected in multi-statement scripts.
	if _, err := db.Exec("INSERT INTO a (id, v) VALUES (?, 'z'); INSERT INTO a (id, v) VALUES (4, 'w')", 3); err == nil {
		t.Fatal("multi-statement script with bind parameters should fail")
	}
}

func TestDriverNamedDSNSharesInstance(t *testing.T) {
	db1, err := sql.Open(DriverName, "shared-instance-test")
	if err != nil {
		t.Fatalf("sql.Open: %v", err)
	}
	defer db1.Close()
	mustExec(t, db1, `CREATE TABLE s (id INTEGER PRIMARY KEY)`)
	mustExec(t, db1, `INSERT INTO s (id) VALUES (7)`)

	db2, err := sql.Open(DriverName, "shared-instance-test")
	if err != nil {
		t.Fatalf("sql.Open: %v", err)
	}
	defer db2.Close()
	var id int64
	if err := db2.QueryRow(`SELECT r.id FROM s r`).Scan(&id); err != nil {
		t.Fatalf("QueryRow on second handle: %v", err)
	}
	if id != 7 {
		t.Fatalf("id = %d, want 7", id)
	}
}

func TestDriverErrors(t *testing.T) {
	db := openTestDB(t)
	for _, bad := range []string{
		"",
		"DROP TABLE x",
		"SELECT",
		"CREATE TABLE t (id WOBBLY)",
		"INSERT INTO t (id) VALUES (1,2)",
		"SELECT a.b FROM t WHERE",
		"SELECT a.b FROM t UNION SELECT a.b FROM t", // bare UNION unsupported
		"SELECT 'unterminated FROM t",
	} {
		if _, err := db.Exec(bad); err == nil {
			t.Errorf("Exec(%q) should fail", bad)
		}
	}
	if _, err := db.Query("INSERT INTO t (id) VALUES (1)"); err == nil {
		t.Error("Query on a non-SELECT should fail")
	}
}

// TestParserRoundTrip renders sqlast queries in every dialect, parses the
// text back, and checks the reconstruction re-renders to the same default
// text — the property the differential backend tests rely on.
func TestParserRoundTrip(t *testing.T) {
	queries := map[string]*sqlast.Query{
		"single-scan": sqlast.SingleSelect(&sqlast.Select{
			Cols:  []sqlast.SelectItem{sqlast.Col("C", "Category")},
			From:  []sqlast.FromItem{sqlast.From("InCat", "C")},
			Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "id"}, sqlast.IntLit(4)),
		}),
		"join-or-in": sqlast.SingleSelect(&sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("P", "id"), {Expr: sqlast.ColRef{Table: "C", Column: "v"}, As: "val"}},
			From: []sqlast.FromItem{sqlast.From("Parent", "P"), sqlast.From("Child", "C")},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.ColRef{Table: "P", Column: "id"}),
				sqlast.Disj(
					sqlast.Eq(sqlast.ColRef{Table: "P", Column: "code"}, sqlast.IntLit(1)),
					sqlast.In{Left: sqlast.ColRef{Table: "P", Column: "code"}, List: []sqlast.Lit{sqlast.IntLit(2), sqlast.IntLit(3)}},
				),
				sqlast.IsNull{Left: sqlast.ColRef{Table: "P", Column: "parentid"}},
			),
		}),
		"union-all": sqlast.Union(
			sqlast.SingleSelect(&sqlast.Select{
				Cols: []sqlast.SelectItem{sqlast.Star("A")},
				From: []sqlast.FromItem{sqlast.From("T1", "A")},
			}),
			sqlast.SingleSelect(&sqlast.Select{
				Cols: []sqlast.SelectItem{sqlast.Star("B")},
				From: []sqlast.FromItem{sqlast.From("T2", "B")},
			}),
		),
		"recursive-cte": {
			With: []sqlast.CTE{{
				Name:      "reach",
				Recursive: true,
				Body: sqlast.Union(
					sqlast.SingleSelect(&sqlast.Select{
						Cols:  []sqlast.SelectItem{sqlast.Col("E", "id")},
						From:  []sqlast.FromItem{sqlast.From("Edge", "E")},
						Where: sqlast.IsNull{Left: sqlast.ColRef{Table: "E", Column: "parentid"}},
					}),
					sqlast.SingleSelect(&sqlast.Select{
						Cols: []sqlast.SelectItem{sqlast.Col("E", "id")},
						From: []sqlast.FromItem{sqlast.From("Edge", "E"), sqlast.From("reach", "R")},
						Where: sqlast.Eq(
							sqlast.ColRef{Table: "E", Column: "parentid"},
							sqlast.ColRef{Table: "R", Column: "id"}),
					}),
				),
			}},
			Selects: []*sqlast.Select{{
				Cols: []sqlast.SelectItem{sqlast.Col("R", "id")},
				From: []sqlast.FromItem{sqlast.From("reach", "R")},
			}},
		},
		"empty-bools": sqlast.SingleSelect(&sqlast.Select{
			Cols:  []sqlast.SelectItem{sqlast.Col("T", "id")},
			From:  []sqlast.FromItem{sqlast.From("T", "T")},
			Where: sqlast.Disj(sqlast.And{}, sqlast.Or{}),
		}),
	}
	for name, q := range queries {
		for _, d := range sqlast.Dialects() {
			t.Run(name+"/"+d.Name(), func(t *testing.T) {
				text := q.SQLFor(d)
				stmts, numInput, err := parseScript(text)
				if err != nil {
					t.Fatalf("parse rendered SQL:\n%s\nerror: %v", text, err)
				}
				if len(stmts) != 1 || stmts[0].kind != stmtSelect {
					t.Fatalf("expected one SELECT statement, got %d", len(stmts))
				}
				if numInput != 0 {
					t.Fatalf("numInput = %d, want 0", numInput)
				}
				// Structural equality up to boolean-constant spelling: the
				// boolAsCmp dialects render TRUE/FALSE as 1=1/0=1, which
				// parse back as comparisons, so compare via the same dialect.
				if d.Name() == "default" {
					if got := stmts[0].query.SQL(); got != q.SQL() {
						t.Fatalf("round trip changed the query:\nbefore:\n%s\nafter:\n%s", q.SQL(), got)
					}
				} else if got := stmts[0].query.SQLFor(d); got != text {
					t.Fatalf("round trip changed the query:\nbefore:\n%s\nafter:\n%s", text, got)
				}
			})
		}
	}
}

func TestPlaceholderOrdinals(t *testing.T) {
	// $N placeholders may repeat and appear out of order; NumInput is the max.
	stmts, numInput, err := parseScript(`INSERT INTO t (a, b, c) VALUES ($2, $1, $2)`)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if numInput != 2 {
		t.Fatalf("numInput = %d, want 2", numInput)
	}
	row := stmts[0].insert.rows[0]
	if row[0].arg != 1 || row[1].arg != 0 || row[2].arg != 1 {
		t.Fatalf("ordinals = %d,%d,%d, want 1,0,1", row[0].arg, row[1].arg, row[2].arg)
	}
}

func TestValueConversions(t *testing.T) {
	vals, err := toValues([]driver.Value{nil, int64(3), "s", []byte("b")})
	if err != nil {
		t.Fatalf("toValues: %v", err)
	}
	want := []relational.Value{relational.Null, relational.Int(3), relational.String("s"), relational.String("b")}
	for i := range want {
		if vals[i] != want[i] {
			t.Fatalf("vals[%d] = %v, want %v", i, vals[i], want[i])
		}
	}
	if _, err := toValues([]driver.Value{3.5}); err == nil {
		t.Fatal("float64 bind parameter should be rejected")
	}
}
