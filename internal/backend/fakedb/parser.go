package fakedb

import (
	"fmt"
	"strconv"
	"strings"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// The fake driver's SQL surface is exactly what the dialect renderer and the
// DDL/bulk-load generators emit: CREATE TABLE, CREATE INDEX, INSERT with
// positional (? or $N) placeholders, and SELECT-FROM-WHERE blocks combined
// with UNION ALL under optional WITH [RECURSIVE] clauses. The parser
// reconstructs sqlast values from the text, so a query survives a full
// render -> parse -> execute round trip through a real database/sql
// connection; keywords are case-insensitive and identifiers may be bare or
// ANSI-quoted, which covers every built-in dialect.

type tokKind int

const (
	tEOF tokKind = iota
	tIdent
	tString
	tNumber
	tPunct
	tPlaceholder // text holds the 0-based ordinal, or "" for positional ?
)

type token struct {
	kind tokKind
	text string
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case c == '"':
			text, err := l.quoted('"')
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tIdent, text: text, pos: start})
		case c == '\'':
			text, err := l.quoted('\'')
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tString, text: text, pos: start})
		case c == '?':
			l.pos++
			l.toks = append(l.toks, token{kind: tPlaceholder, pos: start})
		case c == '$':
			l.pos++
			d := l.pos
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			if l.pos == d {
				return nil, fmt.Errorf("fakedb: bare $ at offset %d", start)
			}
			n, err := strconv.Atoi(l.src[d:l.pos])
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fakedb: bad placeholder $%s", l.src[d:l.pos])
			}
			l.toks = append(l.toks, token{kind: tPlaceholder, text: strconv.Itoa(n - 1), pos: start})
		case c == '<':
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '>' {
				l.pos += 2
				l.toks = append(l.toks, token{kind: tPunct, text: "<>", pos: start})
				break
			}
			return nil, fmt.Errorf("fakedb: unexpected %q at offset %d", c, start)
		case strings.IndexByte("(),.*;=", c) >= 0:
			l.pos++
			l.toks = append(l.toks, token{kind: tPunct, text: string(c), pos: start})
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1])):
			l.pos++
			for l.pos < len(l.src) && isDigit(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tNumber, text: l.src[start:l.pos], pos: start})
		case isIdentByte(c):
			for l.pos < len(l.src) && isIdentByte(l.src[l.pos]) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tIdent, text: l.src[start:l.pos], pos: start})
		default:
			return nil, fmt.Errorf("fakedb: unexpected %q at offset %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

// quoted consumes a q-delimited token with doubled-q escapes.
func (l *lexer) quoted(q byte) (string, error) {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == q {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == q {
				b.WriteByte(q)
				l.pos += 2
				continue
			}
			l.pos++
			return b.String(), nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return "", fmt.Errorf("fakedb: unterminated %c-quoted token at offset %d", q, start)
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isIdentByte(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || isDigit(c) || c == '_'
}

// stmtKind discriminates the parsed statement forms.
type stmtKind int

const (
	stmtCreateTable stmtKind = iota
	stmtCreateIndex
	stmtInsert
	stmtSelect
	stmtDelete
	stmtUpdate
)

// insertVal is one VALUES cell: a literal or a bind-parameter ordinal.
type insertVal struct {
	lit relational.Value
	arg int // 0-based placeholder ordinal, or -1 for a literal
}

type insertOp struct {
	table string
	cols  []string
	rows  [][]insertVal
}

// statement is one parsed SQL statement.
type statement struct {
	kind   stmtKind
	create *relational.TableSchema
	index  struct{ table, column string }
	insert *insertOp
	query  *sqlast.Query
	// dml holds a parsed DELETE or UPDATE as the sqlast node it was rendered
	// from; execution routes it through the shared backend interpreter.
	dml sqlast.DMLStmt
}

type parser struct {
	toks []token
	i    int
	// numInput tracks the bind parameter count across the script.
	numInput int
}

// parseScript parses a semicolon-separated sequence of statements and
// returns them together with the number of bind parameters.
func parseScript(src string) ([]*statement, int, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, 0, err
	}
	p := &parser{toks: toks}
	var out []*statement
	for {
		for p.punct(";") {
		}
		if p.peek().kind == tEOF {
			break
		}
		st, err := p.statement()
		if err != nil {
			return nil, 0, err
		}
		out = append(out, st)
		if !p.punct(";") && p.peek().kind != tEOF {
			return nil, 0, p.errf("expected ; or end of script")
		}
	}
	if len(out) == 0 {
		return nil, 0, fmt.Errorf("fakedb: empty statement")
	}
	return out, p.numInput, nil
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	return fmt.Errorf("fakedb: %s (near offset %d)", fmt.Sprintf(format, args...), t.pos)
}

// kw consumes the given keyword (case-insensitive bare identifier).
func (p *parser) kw(word string) bool {
	t := p.peek()
	if t.kind == tIdent && strings.EqualFold(t.text, word) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKw(word string) error {
	if !p.kw(word) {
		return p.errf("expected %s", strings.ToUpper(word))
	}
	return nil
}

func (p *parser) punct(s string) bool {
	t := p.peek()
	if t.kind == tPunct && t.text == s {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.punct(s) {
		return p.errf("expected %q", s)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.peek()
	if t.kind != tIdent {
		return "", p.errf("expected identifier")
	}
	p.i++
	return t.text, nil
}

func (p *parser) statement() (*statement, error) {
	switch {
	case p.kw("create"):
		return p.createStmt()
	case p.kw("insert"):
		return p.insertStmt()
	case p.kw("delete"):
		return p.deleteStmt()
	case p.kw("update"):
		return p.updateStmt()
	default:
		q, err := p.query()
		if err != nil {
			return nil, err
		}
		return &statement{kind: stmtSelect, query: q}, nil
	}
}

func (p *parser) createStmt() (*statement, error) {
	if p.kw("index") {
		st := &statement{kind: stmtCreateIndex}
		if _, err := p.ident(); err != nil { // index name, unused
			return nil, err
		}
		if err := p.expectKw("on"); err != nil {
			return nil, err
		}
		var err error
		if st.index.table, err = p.ident(); err != nil {
			return nil, err
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		if st.index.column, err = p.ident(); err != nil {
			return nil, err
		}
		return st, p.expectPunct(")")
	}
	if err := p.expectKw("table"); err != nil {
		return nil, err
	}
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	ts := &relational.TableSchema{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		if p.kw("primary") {
			if err := p.expectKw("key"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			pk, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			ts.PrimaryKey = pk
		} else {
			col, err := p.ident()
			if err != nil {
				return nil, err
			}
			typ, err := p.ident()
			if err != nil {
				return nil, err
			}
			kind, err := kindOfType(typ)
			if err != nil {
				return nil, p.errf("%v", err)
			}
			ts.Columns = append(ts.Columns, relational.Column{Name: col, Kind: kind})
			if p.kw("primary") {
				if err := p.expectKw("key"); err != nil {
					return nil, err
				}
				ts.PrimaryKey = col
			}
			p.kw("not") // tolerate NOT NULL
			p.kw("null")
		}
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return &statement{kind: stmtCreateTable, create: ts}, nil
}

func kindOfType(typ string) (relational.Kind, error) {
	switch strings.ToUpper(typ) {
	case "INT", "INTEGER", "BIGINT":
		return relational.KindInt, nil
	case "TEXT", "VARCHAR", "CHAR":
		return relational.KindString, nil
	}
	return 0, fmt.Errorf("unsupported column type %q", typ)
}

func (p *parser) insertStmt() (*statement, error) {
	if err := p.expectKw("into"); err != nil {
		return nil, err
	}
	op := &insertOp{}
	var err error
	if op.table, err = p.ident(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		op.cols = append(op.cols, col)
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if err := p.expectKw("values"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []insertVal
		for {
			v, err := p.insertVal()
			if err != nil {
				return nil, err
			}
			row = append(row, v)
			if p.punct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if len(row) != len(op.cols) {
			return nil, p.errf("INSERT row has %d values, want %d", len(row), len(op.cols))
		}
		op.rows = append(op.rows, row)
		if p.punct(",") {
			continue
		}
		break
	}
	return &statement{kind: stmtInsert, insert: op}, nil
}

// deleteStmt parses DELETE FROM table WHERE expr. The WHERE clause is
// mandatory, as in the rendered form — the update path never emits an
// unscoped delete.
func (p *parser) deleteStmt() (*statement, error) {
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("where"); err != nil {
		return nil, err
	}
	where, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	return &statement{kind: stmtDelete, dml: &sqlast.DeleteStmt{Table: table, Where: where}}, nil
}

// updateStmt parses UPDATE table SET col = literal, ... WHERE expr.
func (p *parser) updateStmt() (*statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("set"); err != nil {
		return nil, err
	}
	var set []sqlast.Assign
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		v, ok, err := p.literal()
		if err != nil {
			return nil, err
		}
		if !ok {
			return nil, p.errf("expected literal in SET")
		}
		set = append(set, sqlast.Assign{Column: col, Value: sqlast.Lit{Value: v}})
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectKw("where"); err != nil {
		return nil, err
	}
	where, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	return &statement{kind: stmtUpdate, dml: &sqlast.UpdateStmt{Table: table, Set: set, Where: where}}, nil
}

func (p *parser) insertVal() (insertVal, error) {
	t := p.peek()
	if t.kind == tPlaceholder {
		p.i++
		ord := p.numInput // positional ?
		if t.text != "" { // numbered $N
			ord, _ = strconv.Atoi(t.text)
		}
		if ord+1 > p.numInput {
			p.numInput = ord + 1
		}
		return insertVal{arg: ord}, nil
	}
	v, ok, err := p.literal()
	if err != nil {
		return insertVal{}, err
	}
	if !ok {
		return insertVal{}, p.errf("expected literal or placeholder")
	}
	return insertVal{lit: v, arg: -1}, nil
}

// literal consumes a literal token if one is next.
func (p *parser) literal() (relational.Value, bool, error) {
	t := p.peek()
	switch t.kind {
	case tNumber:
		p.i++
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return relational.Null, false, p.errf("bad integer %q", t.text)
		}
		return relational.Int(n), true, nil
	case tString:
		p.i++
		return relational.String(t.text), true, nil
	case tIdent:
		if strings.EqualFold(t.text, "null") {
			p.i++
			return relational.Null, true, nil
		}
	}
	return relational.Null, false, nil
}

// query parses [WITH [RECURSIVE] ctes] select (UNION ALL select)*.
func (p *parser) query() (*sqlast.Query, error) {
	q := &sqlast.Query{}
	if p.kw("with") {
		recursive := p.kw("recursive")
		for {
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			if err := p.expectKw("as"); err != nil {
				return nil, err
			}
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			body, err := p.query()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			q.With = append(q.With, sqlast.CTE{Name: name, Recursive: recursive, Body: body})
			if p.punct(",") {
				continue
			}
			break
		}
	}
	for {
		s, err := p.selectBlock()
		if err != nil {
			return nil, err
		}
		q.Selects = append(q.Selects, s)
		save := p.i
		if p.kw("union") {
			if err := p.expectKw("all"); err != nil {
				p.i = save
				return nil, p.errf("only UNION ALL is supported")
			}
			continue
		}
		break
	}
	return q, nil
}

func (p *parser) selectBlock() (*sqlast.Select, error) {
	if err := p.expectKw("select"); err != nil {
		return nil, err
	}
	s := &sqlast.Select{}
	for {
		item, err := p.selectItem()
		if err != nil {
			return nil, err
		}
		s.Cols = append(s.Cols, item)
		if p.punct(",") {
			continue
		}
		break
	}
	if err := p.expectKw("from"); err != nil {
		return nil, err
	}
	for {
		src, err := p.ident()
		if err != nil {
			return nil, err
		}
		f := sqlast.FromItem{Source: src, Alias: src}
		if t := p.peek(); t.kind == tIdent && !isReserved(t.text) {
			p.i++
			f.Alias = t.text
		}
		s.From = append(s.From, f)
		if p.punct(",") {
			continue
		}
		break
	}
	if p.kw("where") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		s.Where = e
	}
	return s, nil
}

// isReserved lists the keywords that may follow a FROM item, so a bare
// identifier in that position is only an alias when it is none of them.
func isReserved(word string) bool {
	switch strings.ToUpper(word) {
	case "WHERE", "UNION", "ALL", "AS", "SELECT", "FROM", "ON":
		return true
	}
	return false
}

func (p *parser) selectItem() (sqlast.SelectItem, error) {
	// alias.* star projection.
	if t := p.peek(); t.kind == tIdent && !isReserved(t.text) && p.i+2 < len(p.toks) &&
		p.toks[p.i+1].kind == tPunct && p.toks[p.i+1].text == "." &&
		p.toks[p.i+2].kind == tPunct && p.toks[p.i+2].text == "*" {
		p.i += 3
		return sqlast.SelectItem{Star: true, StarTable: t.text}, nil
	}
	e, err := p.operand()
	if err != nil {
		return sqlast.SelectItem{}, err
	}
	item := sqlast.SelectItem{Expr: e}
	if p.kw("as") {
		name, err := p.ident()
		if err != nil {
			return sqlast.SelectItem{}, err
		}
		item.As = name
	}
	return item, nil
}

// operand parses a column reference or a literal.
func (p *parser) operand() (sqlast.Expr, error) {
	if v, ok, err := p.literal(); err != nil {
		return nil, err
	} else if ok {
		return sqlast.Lit{Value: v}, nil
	}
	name, err := p.ident()
	if err != nil {
		return nil, p.errf("expected column reference or literal")
	}
	if p.punct(".") {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		return sqlast.ColRef{Table: name, Column: col}, nil
	}
	return sqlast.ColRef{Column: name}, nil
}

func (p *parser) orExpr() (sqlast.Expr, error) {
	e, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	kids := []sqlast.Expr{e}
	for p.kw("or") {
		k, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return sqlast.Or{Kids: kids}, nil
}

func (p *parser) andExpr() (sqlast.Expr, error) {
	e, err := p.predicate()
	if err != nil {
		return nil, err
	}
	kids := []sqlast.Expr{e}
	for p.kw("and") {
		k, err := p.predicate()
		if err != nil {
			return nil, err
		}
		kids = append(kids, k)
	}
	if len(kids) == 1 {
		return kids[0], nil
	}
	return sqlast.And{Kids: kids}, nil
}

func (p *parser) predicate() (sqlast.Expr, error) {
	if p.punct("(") {
		e, err := p.orExpr()
		if err != nil {
			return nil, err
		}
		return e, p.expectPunct(")")
	}
	// The boolean constants produced by empty conjunctions/disjunctions.
	if p.kw("true") {
		return sqlast.And{}, nil
	}
	if p.kw("false") {
		return sqlast.Or{}, nil
	}
	left, err := p.operand()
	if err != nil {
		return nil, err
	}
	switch {
	case p.punct("="):
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		// Canonicalize the boolAsCmp dialect constants back to the empty
		// conjunction/disjunction they were rendered from, so rendered
		// queries survive the round trip node-for-node.
		if l, lok := left.(sqlast.Lit); lok {
			if r, rok := right.(sqlast.Lit); rok && r.Value == relational.Int(1) {
				switch l.Value {
				case relational.Int(1):
					return sqlast.And{}, nil
				case relational.Int(0):
					return sqlast.Or{}, nil
				}
			}
		}
		return sqlast.Cmp{Op: sqlast.OpEq, Left: left, Right: right}, nil
	case p.punct("<>"):
		right, err := p.operand()
		if err != nil {
			return nil, err
		}
		return sqlast.Cmp{Op: sqlast.OpNe, Left: left, Right: right}, nil
	case p.kw("is"):
		if err := p.expectKw("null"); err != nil {
			return nil, err
		}
		return sqlast.IsNull{Left: left}, nil
	case p.kw("in"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []sqlast.Lit
		for {
			v, ok, err := p.literal()
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, p.errf("expected literal in IN list")
			}
			list = append(list, sqlast.Lit{Value: v})
			if p.punct(",") {
				continue
			}
			break
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return sqlast.In{Left: left, List: list}, nil
	}
	return nil, p.errf("expected comparison, IS NULL, or IN")
}
