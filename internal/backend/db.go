package backend

import (
	"context"
	"database/sql"
	"fmt"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// DB runs everything over a database/sql connection: EnsureSchema executes
// generated DDL, Load shreds into a staging store and bulk-inserts the
// tuples with batched prepared statements, and Execute sends the
// dialect-rendered query text to the database and scans the rows back. Any
// driver whose SQL surface covers the translated fragment works; in this
// repo that is the fakedb driver, standing in for SQLite or Postgres.
type DB struct {
	db      *sql.DB
	dialect *sqlast.Dialect
}

// NewDB wraps an opened database handle. The dialect controls all SQL text
// the backend sends; nil means sqlast.DialectDefault.
func NewDB(db *sql.DB, d *sqlast.Dialect) *DB {
	if d == nil {
		d = sqlast.DialectDefault
	}
	return &DB{db: db, dialect: d}
}

// Dialect returns the dialect the backend renders with.
func (b *DB) Dialect() *sqlast.Dialect { return b.dialect }

// Name implements Backend.
func (b *DB) Name() string { return "db(" + b.dialect.Name() + ")" }

// EnsureSchema implements Backend by executing the generated DDL statement
// by statement. database/sql gives no portable catalog inspection, so this
// is not idempotent: call it once per database, like any migration.
func (b *DB) EnsureSchema(s *schema.Schema) error {
	stmts, err := DDLStatements(s, b.dialect)
	if err != nil {
		return err
	}
	for _, stmt := range stmts {
		if _, err := b.db.Exec(stmt); err != nil {
			return fmt.Errorf("backend: ddl %q: %w", stmt, err)
		}
	}
	return nil
}

// Load implements Backend. Documents are shredded into a staging in-memory
// store first — the shredder needs random access to assign ids and maintain
// alignment — and the staged tuples are then streamed to the database in
// batched prepared INSERTs.
//
// The whole batch runs inside one transaction: a mid-batch failure (a flaky
// connection, a constraint violation halfway through a table) rolls back
// every row already sent, so a failed shred load can never leave a
// partially-populated store that would silently violate the lossless-from-XML
// constraint on the next query.
func (b *DB) Load(s *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error) {
	staging := relational.NewStore()
	results, err := shred.ShredAll(s, staging, shred.Options{}, docs...)
	if err != nil {
		return nil, err
	}
	if err := b.LoadStore(staging); err != nil {
		return nil, err
	}
	return results, nil
}

// LoadStore bulk-inserts every row of an already-shredded staging store, in
// one transaction. It is the second half of Load, split out so callers that
// need to control shredding themselves — the sharded loader continues one
// global id sequence across shard stores — can still reuse the batched
// prepared-INSERT path.
func (b *DB) LoadStore(staging *relational.Store) error {
	tx, err := b.db.Begin()
	if err != nil {
		return fmt.Errorf("backend: begin load transaction: %w", err)
	}
	for _, name := range staging.TableNames() {
		if err := b.copyTable(tx, staging.Table(name)); err != nil {
			tx.Rollback()
			return err
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("backend: commit load transaction: %w", err)
	}
	return nil
}

func (b *DB) copyTable(tx *sql.Tx, t *relational.Table) error {
	ts := t.Schema()
	rows := t.SortedRows()
	if len(rows) == 0 {
		return nil
	}
	width := len(ts.Columns)

	// Full batches share one prepared statement; the tail gets its own.
	full := len(rows) / loadBatchRows * loadBatchRows
	if full > 0 {
		stmt, err := tx.Prepare(insertPlaceholderSQL(ts, loadBatchRows, b.dialect))
		if err != nil {
			return fmt.Errorf("backend: prepare load for %s: %w", ts.Name, err)
		}
		args := make([]any, 0, loadBatchRows*width)
		for start := 0; start < full; start += loadBatchRows {
			args = args[:0]
			for _, row := range rows[start : start+loadBatchRows] {
				args = appendArgs(args, row)
			}
			if _, err := stmt.Exec(args...); err != nil {
				stmt.Close()
				return fmt.Errorf("backend: load %s: %w", ts.Name, err)
			}
		}
		stmt.Close()
	}
	if tail := rows[full:]; len(tail) > 0 {
		args := make([]any, 0, len(tail)*width)
		for _, row := range tail {
			args = appendArgs(args, row)
		}
		if _, err := tx.Exec(insertPlaceholderSQL(ts, len(tail), b.dialect), args...); err != nil {
			return fmt.Errorf("backend: load %s tail: %w", ts.Name, err)
		}
	}
	return nil
}

func appendArgs(args []any, row relational.Row) []any {
	for _, v := range row {
		switch v.Kind() {
		case relational.KindNull:
			args = append(args, nil)
		case relational.KindInt:
			args = append(args, v.AsInt())
		default:
			args = append(args, v.AsString())
		}
	}
	return args
}

// Execute implements Backend: render, send, scan back. The context rides
// database/sql's QueryContext; with a driver that implements
// driver.QueryerContext (the in-repo fakedb does, real drivers do),
// cancellation interrupts the query server-side rather than merely
// abandoning the connection.
func (b *DB) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	text := q.SQLFor(b.dialect)
	rows, err := b.db.QueryContext(ctx, text)
	if err != nil {
		return nil, fmt.Errorf("backend: query failed: %w\nsql:\n%s", err, text)
	}
	defer rows.Close()
	cols, err := rows.Columns()
	if err != nil {
		return nil, err
	}
	res := &engine.Result{Cols: cols}
	dest := make([]any, len(cols))
	for i := range dest {
		dest[i] = new(any)
	}
	for rows.Next() {
		if err := rows.Scan(dest...); err != nil {
			return nil, err
		}
		row := make(relational.Row, len(cols))
		for i, d := range dest {
			v, err := toValue(*d.(*any))
			if err != nil {
				return nil, fmt.Errorf("backend: column %s: %w", cols[i], err)
			}
			row[i] = v
		}
		res.Rows = append(res.Rows, row)
	}
	return res, rows.Err()
}

func toValue(v any) (relational.Value, error) {
	switch v := v.(type) {
	case nil:
		return relational.Null, nil
	case int64:
		return relational.Int(v), nil
	case string:
		return relational.String(v), nil
	case []byte:
		return relational.String(string(v)), nil
	}
	return relational.Null, fmt.Errorf("unsupported scan type %T", v)
}

// Close implements Backend.
func (b *DB) Close() error { return b.db.Close() }
