package backend

import (
	"context"
	"fmt"

	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
)

// StatsCollector is implemented by backends that can produce their own
// statistics snapshot better than the generic probe path — the sharded
// composite caches per-shard snapshots keyed by shard version and recollects
// only mutated shards, so a write's statistics cost scales with one shard,
// not the instance.
type StatsCollector interface {
	CollectStats(ctx context.Context, s *schema.Schema) (*stats.Stats, error)
}

// CollectStats gathers a statistics snapshot over any Backend for the
// relations of the mapping s. The Mem backend is scanned directly (every
// table of its store, one pass each); other backends are probed with one
// dialect-rendered SELECT * per mapped relation, feeding the same
// stats.CollectRows kernel — so identical data yields identical statistics
// regardless of where it lives.
//
// Statistics are a snapshot: the returned Stats carries the store's
// mutation version where one is observable (Mem), or a per-collection
// counter otherwise, and its Fingerprint() is what plan caches embed to
// age out decisions made against since-mutated data.
func CollectStats(ctx context.Context, b Backend, s *schema.Schema) (*stats.Stats, error) {
	if sc, ok := b.(StatsCollector); ok {
		return sc.CollectStats(ctx, s)
	}
	if m, ok := b.(*Mem); ok {
		return stats.CollectStore(m.Store()), nil
	}
	rels, err := s.DeriveRelations()
	if err != nil {
		return nil, fmt.Errorf("backend: collect stats: %w", err)
	}
	tables := make([]*stats.TableStats, 0, len(rels))
	for _, rel := range rels {
		ts := rel.TableSchema()
		cols := make([]sqlast.SelectItem, len(ts.Columns))
		names := make([]string, len(ts.Columns))
		for i, c := range ts.Columns {
			cols[i] = sqlast.Col(ts.Name, c.Name)
			names[i] = c.Name
		}
		probe := sqlast.SingleSelect(&sqlast.Select{
			Cols: cols,
			From: []sqlast.FromItem{sqlast.From(ts.Name, ts.Name)},
		})
		res, err := b.Execute(ctx, probe)
		if err != nil {
			return nil, fmt.Errorf("backend: collect stats: probe %s: %w", ts.Name, err)
		}
		tables = append(tables, stats.CollectRows(ts.Name, names, res.Rows))
	}
	return stats.Merge(0, tables), nil
}
