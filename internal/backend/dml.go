package backend

import (
	"context"
	"fmt"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// DML is the optional write capability of a Backend: applying a planned
// batch of data-modification statements atomically. A batch either applies
// in full or leaves the store exactly as it was — the Mem backend keeps an
// undo log (relational.StoreTx), the DB backend runs the batch inside one
// database/sql transaction. The XML update path (internal/update,
// Planner.Update) requires this capability; backends without it reject
// updates with a typed error from the caller.
//
// DML provides atomicity and durability-as-far-as-the-store-goes, not
// isolation: callers serialize writers (Planner.Update holds a mutex for
// the whole batch) and accept that concurrent readers may observe
// intermediate states on Mem, per the relational.Table caveats.
type DML interface {
	ApplyDML(ctx context.Context, stmts []sqlast.DMLStmt) error
}

// CommitLog is the durability hook of the Mem backend, implemented by
// wal.Manager. Commit must make the batch durable (write and fsync, per its
// sync policy) before returning; an error means the batch never became
// durable and the caller rolls it back.
type CommitLog interface {
	Commit(stmts []sqlast.DMLStmt) error
}

// SetCommitLog attaches a write-ahead log to the backend: from now on
// ApplyDML acknowledges a batch only after the log has accepted it. Must be
// set before the backend starts serving writes.
func (m *Mem) SetCommitLog(l CommitLog) { m.log = l }

// ApplyDML implements DML for the in-memory backend by interpreting the
// statements over the store under an undo-log transaction: any failed
// statement (or context cancellation between statements) rolls the whole
// batch back.
//
// With a CommitLog attached the ordering is apply → log (fsync) → commit:
// a batch that fails to apply is never logged, and a batch whose log write
// fails is rolled back before the error is returned — so after a crash the
// store recovers to exactly the pre-batch state (record absent or torn,
// truncated on replay) or the post-batch state (record durable), never a
// torn one. Batches are serialized so record order always matches apply
// order.
func (m *Mem) ApplyDML(ctx context.Context, stmts []sqlast.DMLStmt) error {
	m.writeMu.Lock()
	defer m.writeMu.Unlock()
	tx := m.store.Begin()
	for _, stmt := range stmts {
		if err := ctx.Err(); err != nil {
			tx.Rollback()
			return err
		}
		if _, err := ApplyStmt(tx, m.store, stmt); err != nil {
			tx.Rollback()
			return err
		}
	}
	if m.log != nil {
		if err := m.log.Commit(stmts); err != nil {
			tx.Rollback()
			return fmt.Errorf("backend: commit log: %w", err)
		}
	}
	tx.Commit()
	return nil
}

// ApplyStmt interprets one DML statement over a store through an undo-log
// transaction, returning the number of rows affected. It is the single
// in-process DML interpreter: Mem.ApplyDML uses it directly, and the fakedb
// driver routes its parsed DELETE/UPDATE statements through it so both
// backends agree on semantics.
func ApplyStmt(tx *relational.StoreTx, store *relational.Store, stmt sqlast.DMLStmt) (int64, error) {
	t := store.Table(stmt.DMLTable())
	if t == nil {
		return 0, fmt.Errorf("backend: dml: no table %s", stmt.DMLTable())
	}
	ts := t.Schema()
	switch s := stmt.(type) {
	case *sqlast.InsertStmt:
		ords := make([]int, len(s.Columns))
		for i, c := range s.Columns {
			ci := ts.ColumnIndex(c)
			if ci < 0 {
				return 0, fmt.Errorf("backend: dml: table %s has no column %s", ts.Name, c)
			}
			ords[i] = ci
		}
		for _, vals := range s.Rows {
			if len(vals) != len(ords) {
				return 0, fmt.Errorf("backend: dml: insert into %s: %d values for %d columns", ts.Name, len(vals), len(ords))
			}
			row := make(relational.Row, len(ts.Columns))
			for i := range row {
				row[i] = relational.Null
			}
			for i, v := range vals {
				row[ords[i]] = v.Value
			}
			if err := tx.Insert(ts.Name, row); err != nil {
				return 0, err
			}
		}
		return int64(len(s.Rows)), nil
	case *sqlast.DeleteStmt:
		var evalErr error
		n, err := tx.DeleteWhere(ts.Name, func(r relational.Row) bool {
			if evalErr != nil {
				return false
			}
			ok, err := sqlast.EvalRowPredicate(ts, s.Where, r)
			if err != nil {
				evalErr = err
				return false
			}
			return ok
		})
		if evalErr != nil {
			return 0, evalErr
		}
		return int64(n), err
	case *sqlast.UpdateStmt:
		ords := make([]int, len(s.Set))
		for i, a := range s.Set {
			ci := ts.ColumnIndex(a.Column)
			if ci < 0 {
				return 0, fmt.Errorf("backend: dml: table %s has no column %s", ts.Name, a.Column)
			}
			ords[i] = ci
		}
		var evalErr error
		n, err := tx.UpdateWhere(ts.Name,
			func(r relational.Row) bool {
				if evalErr != nil {
					return false
				}
				ok, err := sqlast.EvalRowPredicate(ts, s.Where, r)
				if err != nil {
					evalErr = err
					return false
				}
				return ok
			},
			func(r relational.Row) relational.Row {
				for i, a := range s.Set {
					r[ords[i]] = a.Value.Value
				}
				return r
			})
		if evalErr != nil {
			return 0, evalErr
		}
		return int64(n), err
	}
	return 0, fmt.Errorf("backend: dml: unsupported statement %T", stmt)
}

// ApplyDML implements DML for the database/sql backend: the rendered
// statements run inside one transaction, so a mid-batch failure (including
// an injected fault on the fakedb driver) rolls back every statement already
// sent.
func (b *DB) ApplyDML(ctx context.Context, stmts []sqlast.DMLStmt) error {
	tx, err := b.db.BeginTx(ctx, nil)
	if err != nil {
		return fmt.Errorf("backend: begin update transaction: %w", err)
	}
	for _, stmt := range stmts {
		text := stmt.SQLFor(b.dialect)
		if _, err := tx.ExecContext(ctx, text); err != nil {
			tx.Rollback()
			return fmt.Errorf("backend: dml %q: %w", text, err)
		}
	}
	if err := tx.Commit(); err != nil {
		return fmt.Errorf("backend: commit update transaction: %w", err)
	}
	return nil
}
