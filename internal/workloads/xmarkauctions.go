package workloads

import (
	"fmt"
	"math/rand"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// XMarkAuctions builds a richer slice of the XMark benchmark than the
// Figure 1 fragment: alongside the regional item listings it includes the
// people directory and the open/closed auction sections, which is where most
// of XMark's published queries roam. The mapping exercises every annotation
// kind: shared relations with parentcode discrimination (Item), multi-level
// tuple nesting (OpenAuction -> Bidder), and plain value columns.
//
//	Site
//	├── Regions ── <continent>* ── Item(name, InCategory(Category))
//	├── People ── Person(Name, EmailAddress, Phone?)
//	├── OpenAuctions ── OpenAuction(Initial, Current, ItemRef,
//	│                               Bidder(Date, Increase)*)
//	└── ClosedAuctions ── ClosedAuction(Price, ItemRef, BuyerRef)
func XMarkAuctions() *schema.Schema {
	b := schema.NewBuilder("xmarkauctions")
	b.Node("site", "Site", schema.Rel("Site"))
	b.Root("site")

	// Regions, as in Figure 1.
	b.Node("regions", "Regions")
	b.Edge("site", "regions")
	for i, cont := range Continents {
		contName := "cont_" + cont
		b.Node(contName, cont)
		b.Edge("regions", contName)
		item := "item_" + cont
		b.Node(item, "Item", schema.Rel("Item"))
		b.EdgeCondInt(contName, item, "parentcode", int64(i+1))
		b.Node("name_"+cont, "name", schema.Col("name"))
		b.Edge(item, "name_"+cont)
		b.Node("incat_"+cont, "InCategory", schema.Rel("InCat"))
		b.Edge(item, "incat_"+cont)
		b.Node("cat_"+cont, "Category", schema.Col("category"))
		b.Edge("incat_"+cont, "cat_"+cont)
	}

	// People.
	b.Node("people", "People")
	b.Edge("site", "people")
	b.Node("person", "Person", schema.Rel("Person"))
	b.Edge("people", "person")
	b.Node("pname", "Name", schema.Col("name"))
	b.Edge("person", "pname")
	b.Node("pemail", "EmailAddress", schema.Col("email"))
	b.Edge("person", "pemail")
	b.Node("pphone", "Phone", schema.Col("phone"))
	b.Edge("person", "pphone")

	// Open auctions, with nested bidders.
	b.Node("openauctions", "OpenAuctions")
	b.Edge("site", "openauctions")
	b.Node("oa", "OpenAuction", schema.Rel("OpenAuction"))
	b.Edge("openauctions", "oa")
	b.Node("oainitial", "Initial", schema.Col("initial"))
	b.Edge("oa", "oainitial")
	b.Node("oacurrent", "Current", schema.Col("current"))
	b.Edge("oa", "oacurrent")
	b.Node("oaitemref", "ItemRef", schema.Col("itemref"))
	b.Edge("oa", "oaitemref")
	b.Node("bidder", "Bidder", schema.Rel("Bidder"))
	b.Edge("oa", "bidder")
	b.Node("bdate", "Date", schema.Col("date"))
	b.Edge("bidder", "bdate")
	b.Node("bincrease", "Increase", schema.Col("increase"))
	b.Edge("bidder", "bincrease")

	// Closed auctions.
	b.Node("closedauctions", "ClosedAuctions")
	b.Edge("site", "closedauctions")
	b.Node("ca", "ClosedAuction", schema.Rel("ClosedAuction"))
	b.Edge("closedauctions", "ca")
	b.Node("caprice", "Price", schema.Col("price"))
	b.Edge("ca", "caprice")
	b.Node("caitemref", "ItemRef", schema.Col("itemref"))
	b.Edge("ca", "caitemref")
	b.Node("cabuyer", "BuyerRef", schema.Col("buyerref"))
	b.Edge("ca", "cabuyer")

	return b.MustBuild()
}

// XMarkAuctionsConfig sizes the generated document.
type XMarkAuctionsConfig struct {
	ItemsPerContinent int
	People            int
	OpenAuctions      int
	BiddersPerAuction int
	ClosedAuctions    int
	Seed              int64
}

// DefaultXMarkAuctionsConfig returns a moderate configuration.
func DefaultXMarkAuctionsConfig() XMarkAuctionsConfig {
	return XMarkAuctionsConfig{
		ItemsPerContinent: 20,
		People:            60,
		OpenAuctions:      40,
		BiddersPerAuction: 3,
		ClosedAuctions:    30,
		Seed:              1,
	}
}

// GenerateXMarkAuctions produces a conforming document.
func GenerateXMarkAuctions(cfg XMarkAuctionsConfig) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	site := xmltree.NewElem("Site")

	regions := xmltree.NewElem("Regions")
	itemNo := 0
	for _, cont := range Continents {
		contElem := xmltree.NewElem(cont)
		for i := 0; i < cfg.ItemsPerContinent; i++ {
			item := xmltree.NewElem("Item",
				xmltree.NewText("name", fmt.Sprintf("item%d", itemNo)),
				xmltree.NewElem("InCategory",
					xmltree.NewText("Category", fmt.Sprintf("category%d", rng.Intn(20)))))
			itemNo++
			contElem.Children = append(contElem.Children, item)
		}
		regions.Children = append(regions.Children, contElem)
	}
	site.Children = append(site.Children, regions)

	people := xmltree.NewElem("People")
	for i := 0; i < cfg.People; i++ {
		person := xmltree.NewElem("Person",
			xmltree.NewText("Name", fmt.Sprintf("person%d", i)),
			xmltree.NewText("EmailAddress", fmt.Sprintf("person%d@example.com", i)))
		if rng.Intn(2) == 0 {
			person.Children = append(person.Children,
				xmltree.NewText("Phone", fmt.Sprintf("555-%04d", rng.Intn(10000))))
		}
		people.Children = append(people.Children, person)
	}
	site.Children = append(site.Children, people)

	open := xmltree.NewElem("OpenAuctions")
	for i := 0; i < cfg.OpenAuctions; i++ {
		oa := xmltree.NewElem("OpenAuction",
			xmltree.NewText("Initial", fmt.Sprintf("%d", 10+rng.Intn(90))),
			xmltree.NewText("Current", fmt.Sprintf("%d", 100+rng.Intn(900))),
			xmltree.NewText("ItemRef", fmt.Sprintf("item%d", rng.Intn(itemNo))))
		for bcount := rng.Intn(cfg.BiddersPerAuction + 1); bcount > 0; bcount-- {
			oa.Children = append(oa.Children, xmltree.NewElem("Bidder",
				xmltree.NewText("Date", fmt.Sprintf("2026-%02d-%02d", 1+rng.Intn(12), 1+rng.Intn(28))),
				xmltree.NewText("Increase", fmt.Sprintf("%d", 1+rng.Intn(50)))))
		}
		open.Children = append(open.Children, oa)
	}
	site.Children = append(site.Children, open)

	closed := xmltree.NewElem("ClosedAuctions")
	for i := 0; i < cfg.ClosedAuctions; i++ {
		closed.Children = append(closed.Children, xmltree.NewElem("ClosedAuction",
			xmltree.NewText("Price", fmt.Sprintf("%d", 100+rng.Intn(2000))),
			xmltree.NewText("ItemRef", fmt.Sprintf("item%d", rng.Intn(itemNo))),
			xmltree.NewText("BuyerRef", fmt.Sprintf("person%d", rng.Intn(cfg.People)))))
	}
	site.Children = append(site.Children, closed)

	return &xmltree.Document{Root: site}
}

// XMark auction queries used by the extended benchmark suite; shaped after
// the published XMark query set (Q1-style lookups, bidder traversals,
// closed-auction reporting).
var XMarkAuctionQueries = []string{
	"//Person/Name",
	"//Person/EmailAddress",
	"//OpenAuction/Bidder/Increase",
	"//Bidder/Date",
	"//OpenAuction/Initial",
	"//ClosedAuction/Price",
	"/Site/OpenAuctions/OpenAuction/Current",
	"/Site/ClosedAuctions/ClosedAuction/ItemRef",
	"//Item/InCategory/Category",
	"/Site/Regions/Europe/Item/name",
	"//OpenAuction[Initial='42']/Current",
	"//Person[Name='person7']/EmailAddress",
}
