// Package workloads defines the XML schemas, mappings, and data generators
// used throughout the paper: the XMark fragment of Figure 1, the mapping S1
// of Figure 5, the DAG mapping S2 of Figure 6, the recursive mapping S3 of
// Figure 7, the schema-oblivious Edge mapping of Figure 10, and an ADEX-like
// advertisement workload standing in for the NAA classified-ads dataset.
package workloads

import (
	"fmt"
	"math/rand"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// Continents are the six XMark regions (every continent except Antarctica),
// in parentcode order.
var Continents = []string{"Africa", "Asia", "Australia", "Europe", "NorthAmerica", "SouthAmerica"}

// XMark builds the Figure 1 schema: Site -> Regions -> six continents, each
// with Item children (relation Item, parentcode 1..6), items carrying a name
// value and InCategory children (relation InCat) with Category values. Node
// names follow the paper's numbering: 1 = Site, 2 = Regions, 3..8 the
// continents, and for continent k the quadruple (Item, name, InCategory,
// Category) is numbered 9+4(k-1) .. 12+4(k-1); so 12 and 32 are the Africa
// and SouthAmerica Category leaves discussed in §4.1.
func XMark() *schema.Schema {
	b := schema.NewBuilder("xmark")
	b.Node("1", "Site", schema.Rel("Site"))
	b.Node("2", "Regions")
	b.Root("1")
	b.Edge("1", "2")
	for i, cont := range Continents {
		contName := fmt.Sprintf("%d", 3+i)
		b.Node(contName, cont)
		b.Edge("2", contName)
		base := 9 + 4*i
		item := fmt.Sprintf("%d", base)
		name := fmt.Sprintf("%d", base+1)
		incat := fmt.Sprintf("%d", base+2)
		cat := fmt.Sprintf("%d", base+3)
		b.Node(item, "Item", schema.Rel("Item"))
		b.Node(name, "name", schema.Col("name"))
		b.Node(incat, "InCategory", schema.Rel("InCat"))
		b.Node(cat, "Category", schema.Col("category"))
		b.EdgeCondInt(contName, item, "parentcode", int64(i+1))
		b.Edge(item, name)
		b.Edge(item, incat)
		b.Edge(incat, cat)
	}
	return b.MustBuild()
}

// XMarkConfig sizes the generated XMark document.
type XMarkConfig struct {
	// ItemsPerContinent is the number of Item elements under each continent.
	ItemsPerContinent int
	// CategoriesPerItem is the number of InCategory children per item.
	CategoriesPerItem int
	// NumCategories is the size of the category value pool.
	NumCategories int
	// Seed drives the deterministic pseudo-random generator.
	Seed int64
}

// DefaultXMarkConfig returns a small but non-trivial document configuration.
func DefaultXMarkConfig() XMarkConfig {
	return XMarkConfig{ItemsPerContinent: 20, CategoriesPerItem: 2, NumCategories: 25, Seed: 1}
}

// GenerateXMark produces a document conforming to the XMark schema.
func GenerateXMark(cfg XMarkConfig) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.NumCategories <= 0 {
		cfg.NumCategories = 1
	}
	regions := xmltree.NewElem("Regions")
	itemNo := 0
	for ci, cont := range Continents {
		contElem := xmltree.NewElem(cont)
		for i := 0; i < cfg.ItemsPerContinent; i++ {
			item := xmltree.NewElem("Item",
				xmltree.NewText("name", fmt.Sprintf("item-%s-%d", Continents[ci][:2], itemNo)))
			itemNo++
			for c := 0; c < cfg.CategoriesPerItem; c++ {
				cat := fmt.Sprintf("category%d", rng.Intn(cfg.NumCategories))
				item.Children = append(item.Children,
					xmltree.NewElem("InCategory", xmltree.NewText("Category", cat)))
			}
			contElem.Children = append(contElem.Children, item)
		}
		regions.Children = append(regions.Children, contElem)
	}
	return &xmltree.Document{Root: xmltree.NewElem("Site", regions)}
}

// XMarkFull extends the Figure 1 fragment with XMark's top-level category
// catalogue: Site -> Categories -> Category (relation Cat, value column
// name). A second place where the Category tag occurs is what makes §5.3's
// Q8 over Edge storage prune to a 2-way self-join rather than a single scan:
// a bare "tag = 'Category'" scan would also return catalogue categories.
func XMarkFull() *schema.Schema {
	b := schema.NewBuilder("xmarkfull")
	b.Node("1", "Site", schema.Rel("Site"))
	b.Node("2", "Regions")
	b.Root("1")
	b.Edge("1", "2")
	for i, cont := range Continents {
		contName := fmt.Sprintf("%d", 3+i)
		b.Node(contName, cont)
		b.Edge("2", contName)
		base := 9 + 4*i
		item := fmt.Sprintf("%d", base)
		name := fmt.Sprintf("%d", base+1)
		incat := fmt.Sprintf("%d", base+2)
		cat := fmt.Sprintf("%d", base+3)
		b.Node(item, "Item", schema.Rel("Item"))
		b.Node(name, "name", schema.Col("name"))
		b.Node(incat, "InCategory", schema.Rel("InCat"))
		b.Node(cat, "Category", schema.Col("category"))
		b.EdgeCondInt(contName, item, "parentcode", int64(i+1))
		b.Edge(item, name)
		b.Edge(item, incat)
		b.Edge(incat, cat)
	}
	b.Node("33", "Categories")
	b.Node("34", "Category", schema.Rel("Cat"), schema.Col("name"))
	b.Edge("1", "33")
	b.Edge("33", "34")
	return b.MustBuild()
}

// GenerateXMarkFull produces a document conforming to XMarkFull: the
// Figure 1 content plus the category catalogue.
func GenerateXMarkFull(cfg XMarkConfig) *xmltree.Document {
	doc := GenerateXMark(cfg)
	cats := xmltree.NewElem("Categories")
	if cfg.NumCategories <= 0 {
		cfg.NumCategories = 1
	}
	for i := 0; i < cfg.NumCategories; i++ {
		cats.Children = append(cats.Children, xmltree.NewText("Category", fmt.Sprintf("category%d", i)))
	}
	doc.Root.Children = append(doc.Root.Children, cats)
	return doc
}

// XMark queries from the paper.
const (
	// QueryQ1 is §2's Q1: all item categories.
	QueryQ1 = "//Item/InCategory/Category"
	// QueryQ2 is §3.4's Q2: categories of Africa items.
	QueryQ2 = "/Site/Regions/Africa/Item/InCategory/Category"
	// QueryQ8 is §5.3's Q8, evaluated over the Edge mapping.
	QueryQ8 = "/Site//Item/InCategory/Category"
)
