package workloads_test

import (
	"testing"

	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

func TestSchemasValid(t *testing.T) {
	cases := []struct {
		name  string
		s     *schema.Schema
		shape schema.Shape
	}{
		{"xmark", workloads.XMark(), schema.ShapeTree},
		{"xmarkfull", workloads.XMarkFull(), schema.ShapeTree},
		{"s1", workloads.S1(), schema.ShapeTree},
		{"s2", workloads.S2(), schema.ShapeDAG},
		{"s3", workloads.S3(), schema.ShapeRecursive},
		{"adex", workloads.ADEX(), schema.ShapeTree},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if err := c.s.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
			if got := c.s.Classify(); got != c.shape {
				t.Errorf("classified as %v, want %v", got, c.shape)
			}
			if _, err := c.s.DeriveRelations(); err != nil {
				t.Errorf("derive relations: %v", err)
			}
		})
	}
}

func TestXMarkNodeNumbering(t *testing.T) {
	s := workloads.XMark()
	// The paper's §4.1 discussion references nodes 3 (Africa), 9 (Africa
	// Item), 12 (Africa Category), 29 (SouthAmerica Item), 32 (SouthAmerica
	// Category).
	checks := map[string]string{
		"1": "Site", "2": "Regions", "3": "Africa", "8": "SouthAmerica",
		"9": "Item", "12": "Category", "29": "Item", "32": "Category",
	}
	for name, label := range checks {
		n := s.NodeByName(name)
		if n == nil || n.Label != label {
			t.Errorf("node %s: got %v, want label %s", name, n, label)
		}
	}
	// Africa items carry parentcode 1, SouthAmerica items parentcode 6.
	e := s.EdgeBetween(s.NodeByName("3").ID, s.NodeByName("9").ID)
	if e == nil || e.Cond == nil || e.Cond.Value.AsInt() != 1 {
		t.Error("Africa Item edge condition wrong")
	}
	e = s.EdgeBetween(s.NodeByName("8").ID, s.NodeByName("29").ID)
	if e == nil || e.Cond == nil || e.Cond.Value.AsInt() != 6 {
		t.Error("SouthAmerica Item edge condition wrong")
	}
}

func conforms(t *testing.T, s *schema.Schema, d *xmltree.Document) {
	t.Helper()
	if !shred.Conforms(s, d) {
		t.Fatalf("generated document does not conform to schema %s", s.Name)
	}
}

func TestGeneratorsConform(t *testing.T) {
	conforms(t, workloads.XMark(), workloads.GenerateXMark(workloads.DefaultXMarkConfig()))
	conforms(t, workloads.XMarkFull(), workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig()))
	conforms(t, workloads.S1(), workloads.GenerateS1(5, 1))
	conforms(t, workloads.S2(), workloads.GenerateS2(5, 1))
	conforms(t, workloads.S3(), workloads.GenerateS3(workloads.DefaultS3Config()))
	conforms(t, workloads.ADEX(), workloads.GenerateADEX(workloads.DefaultADEXConfig()))
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 3, Seed: 9})
	b := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 3, Seed: 9})
	if !a.Equal(b) {
		t.Error("same seed must generate identical documents")
	}
	c := workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 3, Seed: 10})
	if a.Equal(c) {
		t.Error("different seeds should differ")
	}
}

func TestS3GeneratorRecursionDepth(t *testing.T) {
	shallow := workloads.GenerateS3(workloads.S3Config{Fanout: 1, MaxDepth: 0, Seed: 1})
	deep := workloads.GenerateS3(workloads.S3Config{Fanout: 1, MaxDepth: 8, Seed: 1})
	if deep.CountNodes() <= shallow.CountNodes() {
		t.Errorf("deeper config should generate more nodes: %d vs %d",
			deep.CountNodes(), shallow.CountNodes())
	}
}

func TestXMarkSizes(t *testing.T) {
	cfg := workloads.XMarkConfig{ItemsPerContinent: 3, CategoriesPerItem: 2, NumCategories: 5, Seed: 1}
	d := workloads.GenerateXMark(cfg)
	// Site + Regions + 6 continents + 6*3 items (+name each) + 6*3*2 incat (+category each)
	want := 1 + 1 + 6 + 18*2 + 36*2
	if d.CountNodes() != want {
		t.Errorf("document has %d nodes, want %d", d.CountNodes(), want)
	}
}
