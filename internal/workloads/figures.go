package workloads

import (
	"fmt"
	"math/rand"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// S1 builds the Figure 5 mapping: a (R1) with children b, c, d all stored in
// R2 (pc = 1, 2, 3), b's children x, y stored in R3 (pc = 1, 2), and the
// children of c and d (both x) stored in R3 with the pc column unspecified.
// Node names follow the figure: 50 = a, 51 = b, 52 = c, 53 = d, 54 = x(b),
// 55 = y(b), 56 = x(c), 57 = x(d). x values live in R3.C1, y values in
// R3.C2.
func S1() *schema.Schema {
	b := schema.NewBuilder("s1")
	b.Node("50", "a", schema.Rel("R1"))
	b.Node("51", "b", schema.Rel("R2"))
	b.Node("52", "c", schema.Rel("R2"))
	b.Node("53", "d", schema.Rel("R2"))
	b.Node("54", "x", schema.Rel("R3"), schema.Col("C1"))
	b.Node("55", "y", schema.Rel("R3"), schema.Col("C2"))
	b.Node("56", "x", schema.Rel("R3"), schema.Col("C1"))
	b.Node("57", "x", schema.Rel("R3"), schema.Col("C1"))
	b.Root("50")
	b.EdgeCondInt("50", "51", "pc", 1)
	b.EdgeCondInt("50", "52", "pc", 2)
	b.EdgeCondInt("50", "53", "pc", 3)
	b.EdgeCondInt("51", "54", "pc", 1)
	b.EdgeCondInt("51", "55", "pc", 2)
	b.Edge("52", "56")
	b.Edge("53", "57")
	return b.MustBuild()
}

// QueryQ3 is Figure 5's Q3: all x elements.
const QueryQ3 = "//x"

// GenerateS1 produces a document conforming to S1 with n children of each
// kind.
func GenerateS1(n int, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	root := xmltree.NewElem("a")
	val := func(prefix string) string { return fmt.Sprintf("%s%d", prefix, rng.Intn(1000)) }
	for i := 0; i < n; i++ {
		b := xmltree.NewElem("b",
			xmltree.NewText("x", val("bx")),
			xmltree.NewText("y", val("by")))
		c := xmltree.NewElem("c", xmltree.NewText("x", val("cx")))
		d := xmltree.NewElem("d", xmltree.NewText("x", val("dx")))
		root.Children = append(root.Children, b, c, d)
	}
	return &xmltree.Document{Root: root}
}

// S2 builds the Figure 6 DAG mapping with genuine node sharing: the root
// (R0) has three differently-labelled mid-level element kinds m1, m2, m3
// (relations R1, R2, R3, reached under gcode 1..3) that all share the same
// child schema node s (relation S1, node 21), which fans into the leaves t1
// and t2 (relations T1, T2, pc = 1/2). Node names echo Figure 6: 10 = root,
// 14/15/20 = mid nodes, 21 = shared S1 node, 24/25 = leaves.
func S2() *schema.Schema {
	b := schema.NewBuilder("s2")
	b.Node("10", "root", schema.Rel("R0"))
	b.Node("14", "m1", schema.Rel("R1"))
	b.Node("15", "m2", schema.Rel("R2"))
	b.Node("20", "m3", schema.Rel("R3"))
	b.Node("21", "s", schema.Rel("S1"))
	b.Node("24", "t1", schema.Rel("T1"), schema.Col("C1"))
	b.Node("25", "t2", schema.Rel("T2"), schema.Col("C1"))
	b.Root("10")
	b.EdgeCondInt("10", "14", "gcode", 1)
	b.EdgeCondInt("10", "15", "gcode", 2)
	b.EdgeCondInt("10", "20", "gcode", 3)
	b.Edge("14", "21")
	b.Edge("15", "21")
	b.Edge("20", "21")
	b.EdgeCondInt("21", "24", "pc", 1)
	b.EdgeCondInt("21", "25", "pc", 2)
	return b.MustBuild()
}

// GenerateS2 produces a document conforming to S2: n mid-level elements of
// each kind, each with one s child carrying t1/t2 leaves.
func GenerateS2(n int, seed int64) *xmltree.Document {
	rng := rand.New(rand.NewSource(seed))
	root := xmltree.NewElem("root")
	for i := 0; i < n; i++ {
		for _, label := range []string{"m1", "m2", "m3"} {
			s := xmltree.NewElem("s",
				xmltree.NewText("t1", fmt.Sprintf("t1-%d", rng.Intn(1000))),
				xmltree.NewText("t2", fmt.Sprintf("t2-%d", rng.Intn(1000))))
			root.Children = append(root.Children, xmltree.NewElem(label, s))
		}
	}
	return &xmltree.Document{Root: root}
}
