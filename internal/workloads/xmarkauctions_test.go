package workloads_test

import (
	"testing"

	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
)

func TestXMarkAuctionsSchemaAndGenerator(t *testing.T) {
	s := workloads.XMarkAuctions()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Classify() != schema.ShapeTree {
		t.Errorf("shape = %v", s.Classify())
	}
	doc := workloads.GenerateXMarkAuctions(workloads.DefaultXMarkAuctionsConfig())
	if !shred.Conforms(s, doc) {
		t.Fatal("generated document does not conform")
	}
	defs, err := s.DeriveRelations()
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []string{"Site", "Item", "InCat", "Person", "OpenAuction", "Bidder", "ClosedAuction"} {
		if defs[rel] == nil {
			t.Errorf("relation %s not derived", rel)
		}
	}
}
