package workloads

import (
	"math/rand"
	"strconv"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// S3 builds the recursive schema of Figure 7. The figure itself is not
// reproduced in the paper text, so the layout below is reconstructed from
// every statement §5.2 makes about it; all of the paper's worked pruning
// traces for Q4–Q7 hold on this layout (asserted by the tests in
// internal/core):
//
//   - elements E0..E10, each Ei stored in its own relation Ri;
//   - E0 -> E1, E0 -> E2;  E1 -> E3, E2 -> E3 (so E3 is shared: "two with
//     clauses, corresponding to elements E3 and E6");
//   - E3 -> E4, E3 -> E5; E4 -> E6, E5 -> E6 ("Element E6 has two parent
//     nodes");
//   - E3 -> E7 ("the edge <E3,E7> does not match the query" for Q7);
//   - recursive component {E7, E8, E9}: E7 -> E8, E8 -> E9, E9 -> E7, and
//     E7 -> E9 (p1 = <E0,E2,E3,E7,E9,E10,elemid>);
//   - E2 -> E8 (Q7 = /E0/E2/E8//E10/elemid);
//   - E6 -> E10 and E9 -> E10; E10 carries the elemid attribute the queries
//     return, modelled as an explicit elemid leaf exposing R10.id.
func S3() *schema.Schema {
	b := schema.NewBuilder("s3")
	for i := 0; i <= 10; i++ {
		name := "E" + strconv.Itoa(i)
		b.Node(name, name, schema.Rel("R"+strconv.Itoa(i)))
	}
	b.Node("elemid", "elemid", schema.Col(schema.IDColumn))
	b.Root("E0")
	b.Edge("E0", "E1")
	b.Edge("E0", "E2")
	b.Edge("E1", "E3")
	b.Edge("E2", "E3")
	b.Edge("E3", "E4")
	b.Edge("E3", "E5")
	b.Edge("E3", "E7")
	b.Edge("E4", "E6")
	b.Edge("E5", "E6")
	b.Edge("E2", "E8")
	b.Edge("E7", "E8")
	b.Edge("E8", "E9")
	b.Edge("E9", "E7")
	b.Edge("E7", "E9")
	b.Edge("E6", "E10")
	b.Edge("E9", "E10")
	b.Edge("E10", "elemid")
	return b.MustBuild()
}

// The S3 queries of Figures 7 and 9.
const (
	QueryQ4 = "/E0//E6/E10/elemid"
	QueryQ5 = "/E0/E1//E6/E10/elemid"
	QueryQ6 = "/E0//E9/E10/elemid"
	QueryQ7 = "/E0/E2/E8//E10/elemid"
)

// S3Config sizes the generated recursive document.
type S3Config struct {
	// Fanout is the number of children generated per recursive slot.
	Fanout int
	// MaxDepth bounds recursion through the {E7,E8,E9} component.
	MaxDepth int
	Seed     int64
}

// DefaultS3Config returns a moderate recursive document configuration.
func DefaultS3Config() S3Config { return S3Config{Fanout: 2, MaxDepth: 4, Seed: 1} }

// GenerateS3 produces a document conforming to S3, exercising both the DAG
// region (E3/E6 sharing) and the recursive component.
func GenerateS3(cfg S3Config) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	if cfg.Fanout <= 0 {
		cfg.Fanout = 1
	}

	e10 := func() *xmltree.Node {
		return xmltree.NewElem("E10", xmltree.NewElem("elemid"))
	}
	e6 := func() *xmltree.Node {
		n := xmltree.NewElem("E6")
		for i := 0; i < cfg.Fanout; i++ {
			n.Children = append(n.Children, e10())
		}
		return n
	}

	var e7, e8, e9 func(depth int) *xmltree.Node
	e9 = func(depth int) *xmltree.Node {
		n := xmltree.NewElem("E9")
		if depth < cfg.MaxDepth && rng.Intn(2) == 0 {
			n.Children = append(n.Children, e7(depth+1))
		}
		for i := 0; i < cfg.Fanout; i++ {
			n.Children = append(n.Children, e10())
		}
		return n
	}
	e8 = func(depth int) *xmltree.Node {
		n := xmltree.NewElem("E8")
		for i := 0; i < cfg.Fanout; i++ {
			n.Children = append(n.Children, e9(depth+1))
		}
		return n
	}
	e7 = func(depth int) *xmltree.Node {
		n := xmltree.NewElem("E7")
		if depth < cfg.MaxDepth {
			n.Children = append(n.Children, e8(depth+1))
		}
		n.Children = append(n.Children, e9(depth+1))
		return n
	}

	e45 := func(label string) *xmltree.Node {
		n := xmltree.NewElem(label)
		for i := 0; i < cfg.Fanout; i++ {
			n.Children = append(n.Children, e6())
		}
		return n
	}
	e3 := func() *xmltree.Node {
		return xmltree.NewElem("E3", e45("E4"), e45("E5"), e7(0))
	}
	e1 := xmltree.NewElem("E1")
	for i := 0; i < cfg.Fanout; i++ {
		e1.Children = append(e1.Children, e3())
	}
	e2 := xmltree.NewElem("E2")
	for i := 0; i < cfg.Fanout; i++ {
		e2.Children = append(e2.Children, e3())
	}
	e2.Children = append(e2.Children, e8(0))
	return &xmltree.Document{Root: xmltree.NewElem("E0", e1, e2)}
}
