package workloads

import "xmlsql/internal/xmltree"

// Scale knob: the paper's pruning results only start to matter at instance
// sizes well past a single generated document, and the sharded execution
// layer partitions by document — so scaling multiplies document COUNT, never
// document size. GenerateXMarkScale(cfg, 100) is one logical instance of 100
// independent documents, each generated from its own derived seed
// (cfg.Seed, cfg.Seed+1, ...), so the instance is deterministic, the
// documents differ, and any prefix of the sequence is a smaller scale of the
// same instance.

// GenerateXMarkScale generates scale conforming XMark documents, one per
// derived seed.
func GenerateXMarkScale(cfg XMarkConfig, scale int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, scale)
	for i := 0; i < scale; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		docs = append(docs, GenerateXMark(c))
	}
	return docs
}

// GenerateXMarkFullScale generates scale conforming XMarkFull documents.
func GenerateXMarkFullScale(cfg XMarkConfig, scale int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, scale)
	for i := 0; i < scale; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		docs = append(docs, GenerateXMarkFull(c))
	}
	return docs
}

// GenerateXMarkAuctionsScale generates scale conforming XMark-auctions
// documents.
func GenerateXMarkAuctionsScale(cfg XMarkAuctionsConfig, scale int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, scale)
	for i := 0; i < scale; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		docs = append(docs, GenerateXMarkAuctions(c))
	}
	return docs
}

// GenerateS3Scale generates scale documents of the recursive S3 mapping —
// the workload whose translated queries carry recursive CTEs, used to prove
// the per-shard local fixpoint is the global one.
func GenerateS3Scale(cfg S3Config, scale int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, scale)
	for i := 0; i < scale; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		docs = append(docs, GenerateS3(c))
	}
	return docs
}
