package workloads

import (
	"fmt"
	"math/rand"

	"xmlsql/internal/schema"
	"xmlsql/internal/xmltree"
)

// ADEX builds a synthetic classified-advertising schema standing in for the
// NAA ADEX dataset used in the paper's referenced evaluation [10]: a
// Classifieds root with four sections (RealEstate, Vehicles, Employment,
// Merchandise) each holding Ad elements (one relation, distinguished by
// parentcode) that carry a title, a price, and Contact details (own
// relation) with Phone and Email values. The structure mirrors ADEX's
// category -> ad -> field nesting so the same translation phenomena arise:
// multi-section queries collapse from unions of joins to scans.
func ADEX() *schema.Schema {
	b := schema.NewBuilder("adex")
	b.Node("root", "Classifieds", schema.Rel("Classifieds"))
	b.Root("root")
	sections := ADEXSections
	for i, sec := range sections {
		secNode := "sec_" + sec
		b.Node(secNode, sec)
		b.Edge("root", secNode)
		ad := "ad_" + sec
		b.Node(ad, "Ad", schema.Rel("Ad"))
		b.EdgeCondInt(secNode, ad, "parentcode", int64(i+1))
		title := "title_" + sec
		b.Node(title, "Title", schema.Col("title"))
		b.Edge(ad, title)
		price := "price_" + sec
		b.Node(price, "Price", schema.Col("price"))
		b.Edge(ad, price)
		contact := "contact_" + sec
		b.Node(contact, "Contact", schema.Rel("Contact"))
		b.Edge(ad, contact)
		phone := "phone_" + sec
		b.Node(phone, "Phone", schema.Col("phone"))
		b.Edge(contact, phone)
		email := "email_" + sec
		b.Node(email, "Email", schema.Col("email"))
		b.Edge(contact, email)
	}
	return b.MustBuild()
}

// ADEXSections are the four classified-ad sections of the synthetic schema.
var ADEXSections = []string{"RealEstate", "Vehicles", "Employment", "Merchandise"}

// ADEX queries exercised by the benchmark suite.
const (
	// QueryAdexAllPhones returns every contact phone across sections.
	QueryAdexAllPhones = "//Ad/Contact/Phone"
	// QueryAdexAllTitles returns every ad title.
	QueryAdexAllTitles = "//Ad/Title"
	// QueryAdexVehicleEmails returns contact emails of vehicle ads only.
	QueryAdexVehicleEmails = "/Classifieds/Vehicles/Ad/Contact/Email"
	// QueryAdexPrices returns every price anywhere.
	QueryAdexPrices = "//Price"
)

// ADEXConfig sizes the generated document.
type ADEXConfig struct {
	AdsPerSection int
	Seed          int64
}

// DefaultADEXConfig returns a small but non-trivial configuration.
func DefaultADEXConfig() ADEXConfig { return ADEXConfig{AdsPerSection: 25, Seed: 1} }

// GenerateADEX produces a document conforming to the ADEX schema.
func GenerateADEX(cfg ADEXConfig) *xmltree.Document {
	rng := rand.New(rand.NewSource(cfg.Seed))
	root := xmltree.NewElem("Classifieds")
	adNo := 0
	for _, sec := range ADEXSections {
		secElem := xmltree.NewElem(sec)
		for i := 0; i < cfg.AdsPerSection; i++ {
			contact := xmltree.NewElem("Contact",
				xmltree.NewText("Phone", fmt.Sprintf("555-%04d", rng.Intn(10000))),
				xmltree.NewText("Email", fmt.Sprintf("seller%d@example.com", adNo)))
			ad := xmltree.NewElem("Ad",
				xmltree.NewText("Title", fmt.Sprintf("%s ad %d", sec, i)),
				xmltree.NewText("Price", fmt.Sprintf("%d", 100+rng.Intn(100000))),
				contact)
			adNo++
			secElem.Children = append(secElem.Children, ad)
		}
		root.Children = append(root.Children, secElem)
	}
	return &xmltree.Document{Root: root}
}
