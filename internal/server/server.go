// Package server is the network front end over xmlsql.Planner: a
// multi-tenant HTTP/JSON API plus a newline-delimited line protocol, both
// protected by layered admission control.
//
// Many (schema, backend) mappings are hosted in one process. Each tenant
// gets a private planner — its own plan cache, statistics snapshot, and
// integrity trust state — so one tenant's violated instance or cache churn
// never affects another's serving. Requests pass a fixed admission pipeline
// before any engine work happens:
//
//	connection limit → per-tenant rate limit → per-tenant in-flight
//	semaphore → per-query timeout → (resilient backend: retry/breaker,
//	planner: safe mode)
//
// Every refusal is a typed retry-after answer (*ShedError; HTTP 429/503 with
// a Retry-After header, "ERR shed_* <retry_after_ms>" on the line protocol),
// so overload turns into fast, bounded backpressure instead of queueing
// collapse. The first four stages are the server's; the last composes the
// existing internal/resilient layer and the planner's integrity safe mode
// unchanged underneath.
package server

import (
	"context"
	"errors"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"xmlsql"
)

// Serving defaults.
const (
	// DefaultMaxConns bounds concurrent connections when Config.MaxConns
	// is zero.
	DefaultMaxConns = 256
	// DefaultDrainTimeout bounds graceful shutdown when Config.DrainTimeout
	// is zero.
	DefaultDrainTimeout = 5 * time.Second
	// DefaultRetryAfter is the shed hint used when a stage cannot compute a
	// better one (capacity sheds, draining, connection refusals).
	DefaultRetryAfter = time.Second
)

// Config tunes a Server. The zero value serves on no listener (use Handler
// with httptest, or set Addr/LineAddr) with default limits.
type Config struct {
	// Addr is the HTTP listen address (e.g. "127.0.0.1:8080"); empty
	// disables the HTTP listener.
	Addr string
	// LineAddr is the line-protocol listen address; empty disables it.
	LineAddr string
	// Limits is the default per-tenant admission configuration; tenants may
	// override it individually (TenantConfig.Limits).
	Limits Limits
	// MaxConns bounds concurrent connections across both listeners;
	// 0 means DefaultMaxConns.
	MaxConns int
	// DrainTimeout bounds Close's graceful drain; 0 means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration
	// RetryAfter is the shed hint for stages without a computable wait;
	// 0 means DefaultRetryAfter.
	RetryAfter time.Duration
	// Logf receives server logs (shed events, lifecycle, per-tenant
	// summaries); nil means log.Printf.
	Logf func(format string, args ...any)
	// LogRequests additionally logs every served query with its tenant and
	// latency — closed-loop benchmarking wants this off.
	LogRequests bool
}

// Server hosts the tenant registry and the two protocol front ends.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	start time.Time

	mu      sync.RWMutex
	tenants map[string]*Tenant

	conns        *connLimiter
	httpSrv      *http.Server
	httpLn       net.Listener
	lineLn       net.Listener
	lineConns    map[net.Conn]struct{}
	lineConnsMu  sync.Mutex
	lineWG       sync.WaitGroup
	acceptWG     sync.WaitGroup
	draining     atomic.Bool
	shedDraining atomic.Int64

	// Shutdown is single-shot: the first caller runs the drain, every
	// concurrent or later caller blocks on shutdownDone and shares the
	// stored error. sync.Once (not an atomic swap) so "safe to call more
	// than once" also means "returns only after the drain finished".
	shutdownOnce sync.Once
	shutdownDone chan struct{}
	shutdownErr  error
}

// New creates a Server; add tenants with AddTenant, then Start it (or mount
// Handler in a test server).
func New(cfg Config) *Server {
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = DefaultDrainTimeout
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = DefaultRetryAfter
	}
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		cfg:          cfg,
		tenants:      make(map[string]*Tenant),
		conns:        newConnLimiter(cfg.MaxConns),
		lineConns:    make(map[net.Conn]struct{}),
		start:        time.Now(),
		shutdownDone: make(chan struct{}),
	}
	s.mux = s.buildMux()
	return s
}

// AddTenant registers a new mapping under its name. Tenants can be added
// while serving; names must be unique.
func (s *Server) AddTenant(cfg TenantConfig) (*Tenant, error) {
	t, err := newTenant(cfg, s.cfg.Limits)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.tenants[cfg.Name]; dup {
		return nil, fmt.Errorf("server: tenant %q already registered", cfg.Name)
	}
	s.tenants[cfg.Name] = t
	return t, nil
}

// Tenant returns a registered tenant, or nil.
func (s *Server) Tenant(name string) *Tenant {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tenants[name]
}

// Handler returns the HTTP front end (for tests and embedding). The handler
// enforces every admission stage except the connection limit, which belongs
// to the listener.
func (s *Server) Handler() http.Handler { return s.mux }

// Start opens the configured listeners and begins serving. It returns after
// the listeners are bound (use HTTPAddr/LineAddr for the resolved ports);
// serving continues until Close.
func (s *Server) Start() error {
	if s.cfg.Addr == "" && s.cfg.LineAddr == "" {
		return fmt.Errorf("server: no listen address configured")
	}
	if s.cfg.Addr != "" {
		ln, err := net.Listen("tcp", s.cfg.Addr)
		if err != nil {
			return fmt.Errorf("server: http listen: %w", err)
		}
		s.httpLn = &limitedListener{Listener: ln, limiter: s.conns, reject: s.rejectHTTPConn}
		s.httpSrv = &http.Server{Handler: s.mux}
		s.acceptWG.Add(1)
		go func() {
			defer s.acceptWG.Done()
			if err := s.httpSrv.Serve(s.httpLn); err != nil && !errors.Is(err, http.ErrServerClosed) {
				s.cfg.Logf("server: http serve: %v", err)
			}
		}()
	}
	if s.cfg.LineAddr != "" {
		ln, err := net.Listen("tcp", s.cfg.LineAddr)
		if err != nil {
			if s.httpSrv != nil {
				s.httpSrv.Close()
			}
			return fmt.Errorf("server: line listen: %w", err)
		}
		s.lineLn = &limitedListener{Listener: ln, limiter: s.conns, reject: s.rejectLineConn}
		s.acceptWG.Add(1)
		go s.acceptLines()
	}
	return nil
}

// HTTPAddr returns the bound HTTP address ("" when not listening).
func (s *Server) HTTPAddr() string {
	if s.httpLn == nil {
		return ""
	}
	return s.httpLn.Addr().String()
}

// LineAddr returns the bound line-protocol address ("" when not listening).
func (s *Server) LineAddr() string {
	if s.lineLn == nil {
		return ""
	}
	return s.lineLn.Addr().String()
}

// Draining reports whether the server is refusing new work.
func (s *Server) Draining() bool { return s.draining.Load() }

// execute runs the admission pipeline and the query for one request,
// whichever protocol it arrived on. The returned error is typed: *ShedError
// for admission refusals, parse/translate/engine errors otherwise.
func (s *Server) execute(ctx context.Context, t *Tenant, query string) (*xmlsql.Result, time.Duration, error) {
	if s.draining.Load() {
		s.shedDraining.Add(1)
		return nil, 0, &ShedError{Reason: ShedDraining, Tenant: t.name, RetryAfter: s.cfg.RetryAfter}
	}
	release, err := t.admit(ctx, s.cfg.RetryAfter)
	if err != nil {
		var shed *ShedError
		if s.cfg.LogRequests && errors.As(err, &shed) {
			s.cfg.Logf("server: tenant=%s shed reason=%s retry_after=%v", t.name, shed.Reason, shed.RetryAfter)
		}
		return nil, 0, err
	}
	defer release()
	res, elapsed, err := t.exec(ctx, query)
	if s.cfg.LogRequests {
		if err != nil {
			s.cfg.Logf("server: tenant=%s query=%q error=%v", t.name, query, err)
		} else {
			s.cfg.Logf("server: tenant=%s query=%q rows=%d elapsed=%v", t.name, query, res.Len(), elapsed)
		}
	}
	return res, elapsed, err
}

// executeUpdate runs the same admission pipeline as execute for a mutation
// batch: writes compete with reads for the tenant's rate and in-flight
// budget, so an update storm sheds instead of starving queries.
func (s *Server) executeUpdate(ctx context.Context, t *Tenant, b xmlsql.UpdateBatch) (*xmlsql.UpdateResult, time.Duration, error) {
	if s.draining.Load() {
		s.shedDraining.Add(1)
		return nil, 0, &ShedError{Reason: ShedDraining, Tenant: t.name, RetryAfter: s.cfg.RetryAfter}
	}
	release, err := t.admit(ctx, s.cfg.RetryAfter)
	if err != nil {
		var shed *ShedError
		if s.cfg.LogRequests && errors.As(err, &shed) {
			s.cfg.Logf("server: tenant=%s shed reason=%s retry_after=%v", t.name, shed.Reason, shed.RetryAfter)
		}
		return nil, 0, err
	}
	defer release()
	res, elapsed, err := t.update(ctx, b)
	if s.cfg.LogRequests {
		if err != nil {
			s.cfg.Logf("server: tenant=%s update muts=%d error=%v", t.name, len(b.Muts), err)
		} else {
			s.cfg.Logf("server: tenant=%s update muts=%d stmts=%d touched=%v elapsed=%v",
				t.name, len(b.Muts), res.Stmts, res.Touched.Relations(), elapsed)
		}
	}
	return res, elapsed, err
}

// Shutdown drains the server gracefully: new work is refused with typed
// draining responses, listeners stop accepting, in-flight queries run to
// completion, durable tenants flush and close their write-ahead logs, and
// only when ctx expires are the survivors cut off. Safe to call from any
// number of goroutines: exactly one runs the drain, the rest block until it
// finishes and return the same error.
func (s *Server) Shutdown(ctx context.Context) error {
	s.shutdownOnce.Do(func() {
		defer close(s.shutdownDone)
		s.shutdownErr = s.drain(ctx)
	})
	<-s.shutdownDone
	return s.shutdownErr
}

// drain is the single-shot body of Shutdown.
func (s *Server) drain(ctx context.Context) error {
	s.draining.Store(true)
	var err error
	if s.httpSrv != nil {
		// http.Server.Shutdown stops accepting, closes idle connections,
		// and waits for active handlers — exactly the drain contract. Our
		// handlers answer 503 + Retry-After to requests racing the drain.
		if e := s.httpSrv.Shutdown(ctx); e != nil && !errors.Is(e, http.ErrServerClosed) {
			err = e
			s.httpSrv.Close()
		}
	}
	if s.lineLn != nil {
		s.lineLn.Close()
		// Wake idle line readers: a connection blocked waiting for its next
		// request gets a read timeout, notices the drain, and exits. A
		// handler mid-query is not disturbed — only its next read fails.
		s.lineConnsMu.Lock()
		for c := range s.lineConns {
			c.SetReadDeadline(time.Now())
		}
		s.lineConnsMu.Unlock()
		if e := waitCtx(ctx, &s.lineWG); e != nil {
			err = errors.Join(err, e)
			// Deadline passed: cut off whatever is still running.
			s.lineConnsMu.Lock()
			for c := range s.lineConns {
				c.Close()
			}
			s.lineConnsMu.Unlock()
			s.lineWG.Wait()
		}
	}
	s.acceptWG.Wait()
	// With the front ends quiet, flush and close every durable tenant's log
	// so a group-commit window still in memory reaches disk before exit.
	for _, name := range s.tenantNames() {
		if t := s.Tenant(name); t != nil {
			if e := t.closeDurable(); e != nil {
				err = errors.Join(err, fmt.Errorf("tenant %s: close wal: %w", name, e))
			}
		}
	}
	s.logSummary()
	return err
}

// Close is Shutdown bounded by the configured DrainTimeout.
func (s *Server) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
	defer cancel()
	return s.Shutdown(ctx)
}

// waitCtx waits for wg or ctx, whichever finishes first.
func waitCtx(ctx context.Context, wg *sync.WaitGroup) error {
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// logSummary emits the per-tenant serving counters at shutdown, so a
// short-lived process still leaves its observability behind.
func (s *Server) logSummary() {
	for _, name := range s.tenantNames() {
		t := s.Tenant(name)
		if t == nil {
			continue
		}
		st := t.Stats()
		s.cfg.Logf("server: tenant=%s queries=%d errors=%d shed_rate=%d shed_capacity=%d cache_hits=%d cache_misses=%d evictions=%d safe_mode_serves=%d trust=%s",
			name, st.Queries, st.Errors, st.ShedRate, st.ShedCapacity,
			st.PlanCache.Hits, st.PlanCache.Misses, st.PlanCache.Evictions,
			st.SafeModeServes, st.Trust)
	}
}
