package server

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ShedReason identifies which admission stage refused a request. The stages
// run in a fixed order — connection limit, rate limit, in-flight semaphore —
// and every refusal is typed, so clients (and the closed-loop bench driver)
// can distinguish "back off and retry" from a real failure.
type ShedReason string

const (
	// ShedConnections: the process-wide connection limit was reached; the
	// connection itself was refused before any request was read.
	ShedConnections ShedReason = "shed_connections"
	// ShedRate: the tenant's token bucket was empty.
	ShedRate ShedReason = "shed_rate"
	// ShedCapacity: the tenant's bounded in-flight semaphore was full (and
	// stayed full for the configured queue timeout).
	ShedCapacity ShedReason = "shed_capacity"
	// ShedDraining: the server is shutting down and accepts no new work.
	ShedDraining ShedReason = "draining"
)

// ShedError is the typed retry-after error admission control returns instead
// of letting load reach a saturated engine. It is temporary by construction:
// the client should wait RetryAfter and try again.
type ShedError struct {
	Reason     ShedReason
	Tenant     string
	RetryAfter time.Duration
}

// Error implements error.
func (e *ShedError) Error() string {
	if e.Tenant == "" {
		return fmt.Sprintf("server: load shed (%s), retry after %v", e.Reason, e.RetryAfter)
	}
	return fmt.Sprintf("server: tenant %q load shed (%s), retry after %v", e.Tenant, e.Reason, e.RetryAfter)
}

// Temporary marks the error retryable (net.Error convention).
func (e *ShedError) Temporary() bool { return true }

// tokenBucket is a per-tenant rate limiter: capacity burst, refilled at rate
// tokens per second. rate <= 0 disables limiting. The clock is injectable for
// tests.
type tokenBucket struct {
	mu     sync.Mutex
	rate   float64
	burst  float64
	tokens float64
	last   time.Time
	now    func() time.Time
}

func newTokenBucket(rate float64, burst int) *tokenBucket {
	b := float64(burst)
	if burst <= 0 {
		// Default burst: one second of refill, at least one request.
		if b = rate; b < 1 {
			b = 1
		}
	}
	tb := &tokenBucket{rate: rate, burst: b, tokens: b, now: time.Now}
	tb.last = tb.now()
	return tb
}

// allow takes one token if available. When it cannot, it returns how long
// until the next token exists — the Retry-After hint.
func (b *tokenBucket) allow() (bool, time.Duration) {
	if b == nil || b.rate <= 0 {
		return true, 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	now := b.now()
	b.tokens += now.Sub(b.last).Seconds() * b.rate
	b.last = now
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / b.rate * float64(time.Second))
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return false, wait
}

// connLimiter bounds concurrent connections across both listeners. Refused
// connections are counted and answered with a protocol-appropriate typed
// shed response by the listener's reject function, before any request body
// is read — the first admission stage.
type connLimiter struct {
	sem      chan struct{}
	active   atomic.Int64
	rejected atomic.Int64
}

func newConnLimiter(max int) *connLimiter {
	if max <= 0 {
		max = DefaultMaxConns
	}
	return &connLimiter{sem: make(chan struct{}, max)}
}

// tryAcquire claims a connection slot without blocking.
func (l *connLimiter) tryAcquire() bool {
	select {
	case l.sem <- struct{}{}:
		l.active.Add(1)
		return true
	default:
		l.rejected.Add(1)
		return false
	}
}

func (l *connLimiter) release() {
	l.active.Add(-1)
	<-l.sem
}

// limitedListener applies the connection limit at Accept time. Over-limit
// connections are not left to queue in the kernel: they are accepted, handed
// to reject (which writes the typed shed response), and closed, so clients
// learn to back off immediately instead of stalling.
type limitedListener struct {
	net.Listener
	limiter *connLimiter
	reject  func(net.Conn)
}

func (l *limitedListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.limiter.tryAcquire() {
			return &limitedConn{Conn: c, limiter: l.limiter}, nil
		}
		go func(c net.Conn) {
			defer c.Close()
			if l.reject != nil {
				l.reject(c)
			}
		}(c)
	}
}

// limitedConn releases its slot exactly once on Close.
type limitedConn struct {
	net.Conn
	limiter *connLimiter
	once    sync.Once
}

func (c *limitedConn) Close() error {
	err := c.Conn.Close()
	c.once.Do(c.limiter.release)
	return err
}
