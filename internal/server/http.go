package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"

	"xmlsql"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/resilient"
)

// queryRequest is the POST /query and /explain body; GET requests pass the
// same fields as ?tenant= and ?q= parameters.
type queryRequest struct {
	Tenant string `json:"tenant"`
	Query  string `json:"query"`
}

// queryResponse is a served query's JSON answer.
type queryResponse struct {
	Tenant    string   `json:"tenant"`
	Query     string   `json:"query"`
	Cols      []string `json:"cols"`
	Rows      [][]any  `json:"rows"`
	RowCount  int      `json:"row_count"`
	ElapsedNs int64    `json:"elapsed_ns"`
}

// errorResponse is every error's JSON shape; shed responses also carry the
// HTTP Retry-After header.
type errorResponse struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	Tenant       string `json:"tenant,omitempty"`
	RetryAfterMs int64  `json:"retry_after_ms,omitempty"`
}

// healthResponse is GET /healthz. Recovery maps each tenant to its
// durability lifecycle state (recovering | recovered | replay_truncated |
// replay_violated, or volatile for tenants without a write-ahead log), so a
// load balancer can tell a booted-but-unverified instance from a healthy one.
type healthResponse struct {
	Status   string                   `json:"status"`
	Tenants  int                      `json:"tenants"`
	UptimeMs int64                    `json:"uptime_ms"`
	Recovery map[string]RecoveryState `json:"recovery,omitempty"`
}

// ServerStats is GET /stats: process-wide connection/drain counters plus the
// per-tenant partitioned counters.
type ServerStats struct {
	UptimeMs     int64                  `json:"uptime_ms"`
	Draining     bool                   `json:"draining"`
	ActiveConns  int64                  `json:"active_conns"`
	MaxConns     int                    `json:"max_conns"`
	ShedConns    int64                  `json:"shed_connections"`
	ShedDraining int64                  `json:"shed_draining"`
	Tenants      map[string]TenantStats `json:"tenants"`
}

// Stats snapshots the whole server (also served on /stats).
func (s *Server) Stats() ServerStats {
	st := ServerStats{
		UptimeMs:     time.Since(s.start).Milliseconds(),
		Draining:     s.draining.Load(),
		ActiveConns:  s.conns.active.Load(),
		MaxConns:     cap(s.conns.sem),
		ShedConns:    s.conns.rejected.Load(),
		ShedDraining: s.shedDraining.Load(),
		Tenants:      make(map[string]TenantStats),
	}
	for _, name := range s.tenantNames() {
		if t := s.Tenant(name); t != nil {
			st.Tenants[name] = t.Stats()
		}
	}
	return st
}

func (s *Server) buildMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/query", s.handleQuery)
	mux.HandleFunc("/update", s.handleUpdate)
	mux.HandleFunc("/explain", s.handleExplain)
	mux.HandleFunc("/audit", s.handleAudit)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	return mux
}

// parseQueryRequest accepts both GET parameters and a POST JSON body.
func parseQueryRequest(r *http.Request) (queryRequest, error) {
	var req queryRequest
	switch r.Method {
	case http.MethodGet:
		req.Tenant = r.URL.Query().Get("tenant")
		req.Query = r.URL.Query().Get("q")
		if req.Query == "" {
			req.Query = r.URL.Query().Get("query")
		}
	case http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
		if err != nil {
			return req, fmt.Errorf("reading body: %w", err)
		}
		if err := json.Unmarshal(body, &req); err != nil {
			return req, fmt.Errorf("parsing body: %w", err)
		}
	default:
		return req, fmt.Errorf("method %s not allowed", r.Method)
	}
	if req.Tenant == "" {
		return req, fmt.Errorf("missing tenant")
	}
	if req.Query == "" {
		return req, fmt.Errorf("missing query")
	}
	return req, nil
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", err.Error(), 0)
		return
	}
	t := s.Tenant(req.Tenant)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown_tenant", req.Tenant, fmt.Sprintf("tenant %q not registered", req.Tenant), 0)
		return
	}
	// Reject malformed path expressions before they cost an admission slot.
	if _, err := pathexpr.Parse(req.Query); err != nil {
		writeError(w, http.StatusBadRequest, "bad_query", req.Tenant, err.Error(), 0)
		return
	}
	res, elapsed, err := s.execute(r.Context(), t, req.Query)
	if err != nil {
		s.writeExecError(w, req.Tenant, err)
		return
	}
	writeJSON(w, http.StatusOK, queryResponse{
		Tenant:    req.Tenant,
		Query:     req.Query,
		Cols:      res.Cols,
		Rows:      rowsJSON(res),
		RowCount:  res.Len(),
		ElapsedNs: elapsed.Nanoseconds(),
	})
}

// updateMutationWire is one mutation on the wire: the operation spelled out
// ("insert" / "delete" / "replace") instead of the internal enum.
type updateMutationWire struct {
	Op   string `json:"op"`
	Path string `json:"path"`
	XML  string `json:"xml,omitempty"`
}

// updateRequest is the POST /update body.
type updateRequest struct {
	Tenant    string               `json:"tenant"`
	Mutations []updateMutationWire `json:"mutations"`
}

// updateResponse is an applied batch's JSON answer.
type updateResponse struct {
	Tenant    string   `json:"tenant"`
	Mutations int      `json:"mutations"`
	Stmts     int      `json:"stmts"`
	Touched   []string `json:"touched_relations"`
	Written   int      `json:"written_tuples"`
	Deleted   int      `json:"deleted_tuples"`
	// AuditClean is the post-apply incremental audit's verdict over the
	// batch's neighborhood; Preexisting flags violations that predate the
	// batch (the batch itself was valid and applied).
	AuditClean  bool   `json:"audit_clean"`
	Preexisting bool   `json:"preexisting_violations,omitempty"`
	Trust       string `json:"trust"`
	ElapsedNs   int64  `json:"elapsed_ns"`
}

// decodeBatch converts wire mutations to an UpdateBatch.
func decodeBatch(muts []updateMutationWire) (xmlsql.UpdateBatch, error) {
	var b xmlsql.UpdateBatch
	if len(muts) == 0 {
		return b, fmt.Errorf("empty mutation list")
	}
	for i, m := range muts {
		var op xmlsql.UpdateOp
		switch m.Op {
		case "insert":
			op = xmlsql.UpdateInsert
		case "delete":
			op = xmlsql.UpdateDelete
		case "replace":
			op = xmlsql.UpdateReplace
		default:
			return b, fmt.Errorf("mutation %d: unknown op %q (want insert, delete, or replace)", i, m.Op)
		}
		if m.Path == "" {
			return b, fmt.Errorf("mutation %d: missing path", i)
		}
		b.Muts = append(b.Muts, xmlsql.UpdateMutation{Op: op, Path: m.Path, XML: m.XML})
	}
	return b, nil
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "", "POST required", 0)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", fmt.Sprintf("reading body: %v", err), 0)
		return
	}
	var req updateRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", fmt.Sprintf("parsing body: %v", err), 0)
		return
	}
	if req.Tenant == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "", "missing tenant", 0)
		return
	}
	t := s.Tenant(req.Tenant)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown_tenant", req.Tenant, fmt.Sprintf("tenant %q not registered", req.Tenant), 0)
		return
	}
	batch, err := decodeBatch(req.Mutations)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", req.Tenant, err.Error(), 0)
		return
	}
	res, elapsed, err := s.executeUpdate(r.Context(), t, batch)
	if err != nil {
		s.writeExecError(w, req.Tenant, err)
		return
	}
	writeJSON(w, http.StatusOK, updateResponse{
		Tenant:      req.Tenant,
		Mutations:   len(batch.Muts),
		Stmts:       res.Stmts,
		Touched:     res.Touched.Relations(),
		Written:     len(res.Touched.Written),
		Deleted:     len(res.Touched.Deleted),
		AuditClean:  res.Audit.Clean(),
		Preexisting: res.Preexisting != nil,
		Trust:       t.planner.TrustState().String(),
		ElapsedNs:   elapsed.Nanoseconds(),
	})
}

// explainResponse is /explain's JSON: the adaptive planner's cost-based
// decision for the query under the tenant's current statistics.
type explainResponse struct {
	Tenant           string  `json:"tenant"`
	Query            string  `json:"query"`
	StatsFingerprint string  `json:"stats_fingerprint"`
	UsePruned        bool    `json:"use_pruned"`
	Factored         bool    `json:"factored"`
	Reordered        bool    `json:"reordered"`
	EstimatedRows    float64 `json:"estimated_rows"`
	EstimatedCost    float64 `json:"estimated_cost"`
	SQL              string  `json:"sql"`
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	req, err := parseQueryRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_request", "", err.Error(), 0)
		return
	}
	t := s.Tenant(req.Tenant)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown_tenant", req.Tenant, fmt.Sprintf("tenant %q not registered", req.Tenant), 0)
		return
	}
	ex, err := t.planner.Explain(r.Context(), req.Query)
	if err != nil {
		s.writeExecError(w, req.Tenant, err)
		return
	}
	resp := explainResponse{
		Tenant:           req.Tenant,
		Query:            req.Query,
		StatsFingerprint: ex.StatsFingerprint,
		SQL:              ex.Plan.Query.SQL(),
	}
	if d := ex.Decision; d != nil {
		resp.UsePruned = d.UsePruned
		resp.Factored = d.Factored
		resp.Reordered = d.Reordered
		if d.ChosenEst != nil {
			resp.EstimatedRows = d.ChosenEst.Rows
			resp.EstimatedCost = d.ChosenEst.Cost
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// auditResponse is POST /audit's JSON: the integrity verdict and the trust
// transition it installed on the tenant's planner.
type auditResponse struct {
	Tenant string                  `json:"tenant"`
	Clean  bool                    `json:"clean"`
	Trust  string                  `json:"trust"`
	Report *xmlsql.IntegrityReport `json:"report"`
}

func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "bad_request", "", "POST required", 0)
		return
	}
	name := r.URL.Query().Get("tenant")
	if name == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "", "missing tenant", 0)
		return
	}
	t := s.Tenant(name)
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown_tenant", name, fmt.Sprintf("tenant %q not registered", name), 0)
		return
	}
	rep, err := t.planner.Audit(r.Context())
	if err != nil {
		s.writeExecError(w, name, err)
		return
	}
	writeJSON(w, http.StatusOK, auditResponse{
		Tenant: name,
		Clean:  rep.Clean(),
		Trust:  t.planner.TrustState().String(),
		Report: rep,
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	names := s.tenantNames()
	resp := healthResponse{Status: "ok", Tenants: len(names), UptimeMs: time.Since(s.start).Milliseconds()}
	if len(names) > 0 {
		resp.Recovery = make(map[string]RecoveryState, len(names))
		for _, name := range names {
			if t := s.Tenant(name); t != nil {
				resp.Recovery[name] = t.RecoveryState()
			}
		}
	}
	code := http.StatusOK
	if s.draining.Load() {
		resp.Status = "draining"
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
	}
	writeJSON(w, code, resp)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

// writeExecError maps an execution-path error to its HTTP shape: typed shed
// errors to 429/503 with Retry-After, timeouts to 504, resource guards and
// rejected update batches to 422, unsupported-update backends to 501,
// breaker-open to 503, everything else to 500.
func (s *Server) writeExecError(w http.ResponseWriter, tenant string, err error) {
	var shed *ShedError
	var ue *xmlsql.UpdateError
	switch {
	case errors.As(err, &ue):
		code := http.StatusUnprocessableEntity
		if ue.Kind == xmlsql.UpdateErrUnsupported {
			code = http.StatusNotImplemented
		}
		writeError(w, code, "update_"+ue.Kind.String(), tenant, err.Error(), 0)
	case errors.As(err, &shed):
		code := http.StatusTooManyRequests
		if shed.Reason == ShedDraining || shed.Reason == ShedConnections {
			code = http.StatusServiceUnavailable
		}
		writeError(w, code, string(shed.Reason), tenant, err.Error(), shed.RetryAfter)
	case errors.Is(err, context.DeadlineExceeded):
		writeError(w, http.StatusGatewayTimeout, "timeout", tenant, err.Error(), 0)
	case errors.Is(err, context.Canceled):
		writeError(w, http.StatusInternalServerError, "canceled", tenant, err.Error(), 0)
	case errors.Is(err, resilient.ErrBreakerOpen):
		writeError(w, http.StatusServiceUnavailable, "unavailable", tenant, err.Error(), s.cfg.RetryAfter)
	case func() bool { var re *engine.ResourceError; return errors.As(err, &re) }():
		writeError(w, http.StatusUnprocessableEntity, "resource_limit", tenant, err.Error(), 0)
	default:
		writeError(w, http.StatusInternalServerError, "internal", tenant, err.Error(), 0)
	}
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, errCode, tenant, msg string, retryAfter time.Duration) {
	if retryAfter > 0 {
		w.Header().Set("Retry-After", retryAfterSeconds(retryAfter))
	}
	writeJSON(w, code, errorResponse{Error: errorBody{
		Code:         errCode,
		Message:      msg,
		Tenant:       tenant,
		RetryAfterMs: retryAfter.Milliseconds(),
	}})
}

// retryAfterSeconds renders a Retry-After header value (whole seconds,
// minimum 1 — the header has no sub-second form).
func retryAfterSeconds(d time.Duration) string {
	secs := int64(d / time.Second)
	if d%time.Second != 0 || secs < 1 {
		secs++
	}
	return strconv.FormatInt(secs, 10)
}

// rowsJSON converts result rows to JSON-native values.
func rowsJSON(res *engine.Result) [][]any {
	rows := make([][]any, len(res.Rows))
	for i, row := range res.Rows {
		vals := make([]any, len(row))
		for j, v := range row {
			vals[j] = valueJSON(v)
		}
		rows[i] = vals
	}
	return rows
}

func valueJSON(v relational.Value) any {
	switch v.Kind() {
	case relational.KindInt:
		return v.AsInt()
	case relational.KindString:
		return v.AsString()
	default:
		return nil
	}
}

// rejectHTTPConn answers an over-limit connection with a canned 503 +
// Retry-After — the connection-limit stage's typed shed response — without
// ever reading the request.
func (s *Server) rejectHTTPConn(c net.Conn) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	body := fmt.Sprintf(`{"error":{"code":%q,"message":"connection limit reached","retry_after_ms":%d}}`,
		ShedConnections, s.cfg.RetryAfter.Milliseconds())
	fmt.Fprintf(c, "HTTP/1.1 503 Service Unavailable\r\nRetry-After: %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s",
		retryAfterSeconds(s.cfg.RetryAfter), len(body), body)
}
