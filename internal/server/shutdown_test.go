package server_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"runtime"
	"strings"
	"testing"
	"time"

	"xmlsql/internal/server"
)

func TestGracefulShutdown(t *testing.T) {
	before := runtime.NumGoroutine()

	srv := server.New(server.Config{
		Addr:         "127.0.0.1:0",
		LineAddr:     "127.0.0.1:0",
		DrainTimeout: 2 * time.Second,
		Logf:         func(string, ...any) {},
	})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	// Serve one query per protocol so the drain has had real traffic, and
	// leave the line connection idle (blocked in its next read) — Shutdown
	// must wake and release it rather than hang on the drain WaitGroup.
	resp, err := http.Get("http://" + srv.HTTPAddr() + "/query?tenant=auctions&q=" + url.QueryEscape("//Item/name"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query before shutdown: %d", resp.StatusCode)
	}
	idle := dialLine(t, srv.LineAddr())
	if got := idle.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("line PING -> %q", got)
	}

	start := time.Now()
	if err := srv.Close(); err != nil {
		t.Fatalf("graceful close: %v", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("drain of an idle server took %v", waited)
	}
	if !srv.Draining() {
		t.Error("server not marked draining after Close")
	}

	// The idle line connection was released.
	idle.c.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := idle.r.ReadString('\n'); err == nil {
		t.Error("idle line connection still open after drain")
	}

	// Listeners are gone: new connections are refused.
	if _, err := http.Get("http://" + srv.HTTPAddr() + "/healthz"); err == nil {
		t.Error("HTTP listener still accepting after Close")
	}

	// Close is idempotent.
	if err := srv.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}

	// No goroutine leaks: everything the server started has exited.
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines: %d before, %d after shutdown\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestDrainingRefusesNewWork(t *testing.T) {
	// A listener-less server: Shutdown still flips the draining flag, and the
	// handler (mounted on httptest) must answer every query with the typed
	// draining shed and healthz with 503 + Retry-After.
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	var got struct {
		Error struct {
			Code         string `json:"code"`
			RetryAfterMs int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	resp := getJSON(t, ts.URL+"/query?tenant=auctions&q="+url.QueryEscape("//Item/name"), &got)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("query while draining: %d, want 503", resp.StatusCode)
	}
	if got.Error.Code != "draining" {
		t.Errorf("error code = %q, want draining", got.Error.Code)
	}
	if got.Error.RetryAfterMs <= 0 || resp.Header.Get("Retry-After") == "" {
		t.Error("draining shed must carry retry-after hints")
	}

	var health struct {
		Status string `json:"status"`
	}
	hresp := getJSON(t, ts.URL+"/healthz", &health)
	if hresp.StatusCode != http.StatusServiceUnavailable || health.Status != "draining" {
		t.Errorf("healthz while draining: %d %+v", hresp.StatusCode, health)
	}
	if hresp.Header.Get("Retry-After") == "" {
		t.Error("draining healthz missing Retry-After")
	}

	// The shed_draining counter made it to stats.
	if st := srv.Stats(); st.ShedDraining == 0 || !st.Draining {
		t.Errorf("stats after draining sheds: %+v", st)
	}
}

func TestShutdownWakesMidDrainLineClients(t *testing.T) {
	srv := server.New(server.Config{
		LineAddr:     "127.0.0.1:0",
		DrainTimeout: 2 * time.Second,
		Logf:         func(string, ...any) {},
	})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}

	// Several idle connections, all parked in reads.
	var conns []*lineConn
	for i := 0; i < 5; i++ {
		lc := dialLine(t, srv.LineAddr())
		if got := lc.roundTrip(t, "PING"); got != "PONG" {
			t.Fatalf("conn %d PING -> %q", i, got)
		}
		conns = append(conns, lc)
	}

	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("close with idle line conns: %v", err)
		}
	case <-time.After(3 * time.Second):
		t.Fatal("Close hung on idle line connections")
	}
	for i, lc := range conns {
		lc.c.SetReadDeadline(time.Now().Add(time.Second))
		if _, err := lc.r.ReadString('\n'); err == nil {
			t.Errorf("conn %d still open after drain", i)
		}
	}
}

func TestLineDrainingResponse(t *testing.T) {
	// A connection that was established before the drain and issues its next
	// request mid-drain gets the typed "ERR draining" line. To observe this
	// (rather than the read-deadline wakeup), flip draining via Shutdown on
	// a second server sharing no listener state is impossible — instead,
	// race requests against Close and accept either outcome, requiring only
	// that any response seen is the typed one.
	srv := server.New(server.Config{
		LineAddr:     "127.0.0.1:0",
		DrainTimeout: time.Second,
		Logf:         func(string, ...any) {},
	})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	lc := dialLine(t, srv.LineAddr())
	if got := lc.roundTrip(t, "PING"); got != "PONG" {
		t.Fatalf("PING -> %q", got)
	}

	go srv.Close()
	lc.c.SetDeadline(time.Now().Add(2 * time.Second))
	for {
		if _, err := fmt.Fprintln(lc.c, "Q auctions //Item/name"); err != nil {
			break // drained and closed underneath us — fine
		}
		resp, err := lc.r.ReadString('\n')
		if err != nil {
			break
		}
		resp = strings.TrimSpace(resp)
		if strings.HasPrefix(resp, "ERR") {
			if !strings.HasPrefix(resp, "ERR draining") {
				t.Fatalf("mid-drain response %q, want ERR draining", resp)
			}
			break
		}
		if !strings.HasPrefix(resp, "OK") {
			t.Fatalf("unexpected response %q", resp)
		}
	}
}
