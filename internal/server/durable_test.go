package server_test

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/server"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/wal"
	"xmlsql/internal/workloads"
)

// durableTenantConfig returns a durable xmark tenant over dir whose first
// boot shreds a small deterministic document.
func durableTenantConfig(name, dir string) server.TenantConfig {
	return server.TenantConfig{
		Name:    name,
		Schema:  workloads.XMark(),
		DataDir: dir,
		Load: func(m *backend.Mem) error {
			doc := workloads.GenerateXMark(workloads.XMarkConfig{
				ItemsPerContinent: 3, CategoriesPerItem: 2, NumCategories: 5, Seed: 11,
			})
			_, err := m.Load(workloads.XMark(), doc)
			return err
		},
	}
}

// bootDurable builds a server hosting one durable tenant and mounts its
// handler, returning both plus a shutdown function that flushes the WAL.
func bootDurable(t *testing.T, dir string) (*server.Server, *server.Tenant) {
	t.Helper()
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	ten, err := srv.AddTenant(durableTenantConfig("auctions", dir))
	if err != nil {
		t.Fatal(err)
	}
	return srv, ten
}

// mountHandler serves srv's handler on an httptest server, returning its URL.
func mountHandler(t *testing.T, srv *server.Server) string {
	t.Helper()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestDurableTenantLifecycle drives a durable tenant through first boot,
// an acknowledged durable update, a graceful shutdown, and a reboot: the
// reboot must replay the update, re-verify integrity over what it touched,
// mark the tenant recovered and verified on /healthz and /stats, and serve
// the updated data.
func TestDurableTenantLifecycle(t *testing.T) {
	dir := t.TempDir()

	srv, ten := bootDurable(t, dir)
	if got := ten.RecoveryState(); got != server.RecoveryRecovered {
		t.Fatalf("first boot recovery state = %q, want recovered", got)
	}
	if ri := ten.RecoveryInfo(); ri == nil || ri.SnapshotLoaded || ri.ReplayedBatches != 0 {
		t.Fatalf("first boot RecoveryInfo = %+v, want fresh", ten.RecoveryInfo())
	}

	ts := mountHandler(t, srv)
	var ur updateResp
	resp := postJSON(t, ts+"/update", map[string]any{
		"tenant": "auctions",
		"mutations": []map[string]string{{
			"op":   "insert",
			"path": "/Site/Regions/Africa/Item",
			"xml":  "<InCategory><Category>durable</Category></InCategory>",
		}},
	}, &ur)
	if resp.StatusCode != http.StatusOK || !ur.AuditClean {
		t.Fatalf("durable update: status %d, %+v", resp.StatusCode, ur)
	}

	var health struct {
		Recovery map[string]string `json:"recovery"`
	}
	getJSON(t, ts+"/healthz", &health)
	if health.Recovery["auctions"] != string(server.RecoveryRecovered) {
		t.Fatalf("healthz recovery = %v", health.Recovery)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Reboot on the same directory. Load must not run again (the snapshot
	// exists), the logged batch must replay, and the incremental audit over
	// its neighborhood must promote the tenant to verified trust.
	srv2 := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableTenantConfig("auctions", dir)
	cfg.Load = func(*backend.Mem) error {
		t.Error("Load ran on a reboot with a snapshot on disk")
		return nil
	}
	ten2, err := srv2.AddTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	ri := ten2.RecoveryInfo()
	if !ri.SnapshotLoaded || ri.ReplayedBatches != 1 || ri.TruncatedTail || !ri.TouchedComplete {
		t.Fatalf("reboot RecoveryInfo = %+v, want snapshot + 1 replayed batch", ri)
	}
	if got := ten2.RecoveryState(); got != server.RecoveryRecovered {
		t.Fatalf("reboot recovery state = %q, want recovered", got)
	}
	if got := ten2.Planner().TrustState(); got != xmlsql.TrustVerified {
		t.Fatalf("post-replay trust = %v, want verified", got)
	}

	ts2 := mountHandler(t, srv2)
	var q struct {
		Rows [][]any `json:"rows"`
	}
	getJSON(t, ts2+"/query?tenant=auctions&q=//Item/InCategory/Category", &q)
	found := false
	for _, r := range q.Rows {
		for _, v := range r {
			if s, ok := v.(string); ok && s == "durable" {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("replayed update not served after reboot")
	}

	var st struct {
		Tenants map[string]struct {
			Recovery string `json:"recovery"`
			Trust    string `json:"trust"`
		} `json:"tenants"`
	}
	getJSON(t, ts2+"/stats", &st)
	if got := st.Tenants["auctions"]; got.Recovery != "recovered" {
		t.Fatalf("stats recovery = %+v", got)
	}
}

// TestDurableReplayViolatedEntersSafeMode commits a batch that breaks the
// parent-child integrity properties (a raw DML delete of an Item row whose
// InCategory children survive — below the update layer, so no cascade), then
// reboots: replay reproduces the broken store, the verification audit must
// catch it, and the tenant must come up violated, not verified.
func TestDurableReplayViolatedEntersSafeMode(t *testing.T) {
	dir := t.TempDir()
	srv, ten := bootDurable(t, dir)

	mem := ten.Planner().Backend().(*backend.Mem)
	items := mem.Store().Table("Item")
	if items == nil || items.Len() == 0 {
		t.Fatal("no Item rows after load")
	}
	id := items.Rows()[0][0]
	del := &sqlast.DeleteStmt{
		Table: "Item",
		Where: sqlast.Eq(sqlast.ColRef{Table: "Item", Column: schema.IDColumn}, sqlast.Lit{Value: id}),
	}
	if err := mem.ApplyDML(context.Background(), []sqlast.DMLStmt{del}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv2 := server.New(server.Config{Logf: func(string, ...any) {}})
	ten2, err := srv2.AddTenant(durableTenantConfig("auctions", dir))
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(context.Background())
	if got := ten2.RecoveryState(); got != server.RecoveryViolated {
		t.Fatalf("recovery state = %q, want replay_violated", got)
	}
	if got := ten2.Planner().TrustState(); got != xmlsql.TrustViolated {
		t.Fatalf("trust = %v, want violated", got)
	}
}

// TestDurableTenantRejectsExplicitBackend pins the config contract: a
// durable store is recovered from its log, never handed in.
func TestDurableTenantRejectsExplicitBackend(t *testing.T) {
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableTenantConfig("auctions", t.TempDir())
	cfg.Backend = backend.NewMem()
	if _, err := srv.AddTenant(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("AddTenant with DataDir+Backend: err = %v", err)
	}
}

// TestDurableGroupCommitFlushedOnShutdown opens the tenant with a very long
// group-commit window: an update acknowledged inside the window is only in
// the WAL's buffer, and the server drain must flush it so the reboot replays
// it. This is the drain-closes-WAL contract under -race as well.
func TestDurableGroupCommitFlushedOnShutdown(t *testing.T) {
	dir := t.TempDir()
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableTenantConfig("auctions", dir)
	cfg.WAL = wal.Options{SyncEvery: 3600e9} // never syncs on its own
	ten, err := srv.AddTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mem := ten.Planner().Backend().(*backend.Mem)
	ins := &sqlast.InsertStmt{
		Table:   "InCat",
		Columns: []string{schema.IDColumn, schema.ParentIDColumn, "category"},
		Rows: [][]sqlast.Lit{{
			sqlast.IntLit(900001),
			{Value: mem.Store().Table("Item").Rows()[0][0]},
			{Value: relational.String("window")},
		}},
	}
	if err := mem.ApplyDML(context.Background(), []sqlast.DMLStmt{ins}); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	srv2, ten2 := bootDurable(t, dir)
	defer srv2.Shutdown(context.Background())
	if ri := ten2.RecoveryInfo(); ri.ReplayedBatches != 1 {
		t.Fatalf("replayed %d batches after windowed shutdown, want 1", ri.ReplayedBatches)
	}
}

// TestShutdownConcurrent is the idempotence/race contract of Shutdown: many
// goroutines calling Shutdown and Close concurrently must all block until
// the one real drain finishes and then observe the same answer; run under
// -race this also proves the drain body is entered exactly once.
func TestShutdownConcurrent(t *testing.T) {
	dir := t.TempDir()
	srv, _ := bootDurable(t, dir)

	const callers = 8
	errs := make([]error, callers)
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if i%2 == 0 {
				errs[i] = srv.Shutdown(context.Background())
			} else {
				errs[i] = srv.Close()
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != errs[0] {
			t.Fatalf("caller %d got %v, caller 0 got %v", i, err, errs[0])
		}
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	// A late call returns immediately with the stored result, and the WAL is
	// closed exactly once underneath (a double-close would error).
	if err := srv.Close(); err != nil {
		t.Fatalf("post-drain Close: %v", err)
	}
	if !srv.Draining() {
		t.Error("server not draining after concurrent shutdown")
	}
}
