package server_test

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"xmlsql"
	"xmlsql/internal/server"
)

// TestMultiTenantConcurrentIsolation drives N tenants with M concurrent
// clients each and checks that every partitioned counter — queries, plan
// cache, trust — ends up exactly where that tenant's own load put it: no
// cross-tenant plan-cache hits, no counter bleed.
func TestMultiTenantConcurrentIsolation(t *testing.T) {
	const (
		tenants          = 4
		clientsPerTenant = 4
		queriesPerClient = 10
	)
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	names := make([]string, tenants)
	for i := range names {
		names[i] = fmt.Sprintf("tenant%d", i)
		cfg, _ := newXMarkTenant(t, names[i], nil)
		if _, err := srv.AddTenant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// All tenants share the same schema and the same hot query, so a shared
	// (non-partitioned) plan cache would show cross-tenant hits: the first
	// tenant's miss would warm every other tenant's first request.
	q := url.QueryEscape("//Item/InCategory/Category")
	var wg sync.WaitGroup
	errc := make(chan error, tenants*clientsPerTenant)
	for _, name := range names {
		for c := 0; c < clientsPerTenant; c++ {
			wg.Add(1)
			go func(name string) {
				defer wg.Done()
				for i := 0; i < queriesPerClient; i++ {
					resp, err := http.Get(ts.URL + "/query?tenant=" + name + "&q=" + q)
					if err != nil {
						errc <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errc <- fmt.Errorf("tenant %s: status %d", name, resp.StatusCode)
						return
					}
				}
			}(name)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	for _, name := range names {
		st := srv.Tenant(name).Stats()
		want := int64(clientsPerTenant * queriesPerClient)
		if st.Queries != want {
			t.Errorf("%s: queries = %d, want %d (counter bleed)", name, st.Queries, want)
		}
		if st.Errors != 0 {
			t.Errorf("%s: errors = %d", name, st.Errors)
		}
		// Partitioned cache: every lookup is accounted to this tenant, and
		// at least the very first was a miss. A shared cache would give
		// tenants beyond the first misses == 0.
		if got := st.PlanCache.Hits + st.PlanCache.Misses; got != want {
			t.Errorf("%s: cache hits+misses = %d, want %d", name, got, want)
		}
		if st.PlanCache.Misses < 1 {
			t.Errorf("%s: cache misses = %d; its own first lookup cannot hit — plan cache is shared across tenants",
				name, st.PlanCache.Misses)
		}
		if st.InFlight != 0 {
			t.Errorf("%s: in_flight = %d after quiesce", name, st.InFlight)
		}
	}
}

// TestTrustIsolation corrupts one tenant's store and audits both: the dirty
// tenant flips to violated trust and serves in safe mode; the clean tenant's
// trust, audit verdict, and serving mode are untouched.
func TestTrustIsolation(t *testing.T) {
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	dirtyCfg, dirtyStore := newXMarkTenant(t, "dirty", nil)
	cleanCfg, _ := newXMarkTenant(t, "clean", nil)
	for _, cfg := range []server.TenantConfig{dirtyCfg, cleanCfg} {
		if _, err := srv.AddTenant(cfg); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Corrupt the dirty tenant's instance underneath the server: an orphan
	// InCat tuple violates the lossless-from-XML constraint.
	if err := xmlsql.InjectOrphan(dirtyCfg.Schema, dirtyStore, "InCat", 999999); err != nil {
		t.Fatal(err)
	}

	audit := func(name string) (clean bool, trust string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/audit?tenant="+name, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var got struct {
			Clean bool   `json:"clean"`
			Trust string `json:"trust"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
			t.Fatal(err)
		}
		return got.Clean, got.Trust
	}

	if clean, trust := audit("dirty"); clean || trust != "violated" {
		t.Fatalf("dirty tenant audit: clean=%v trust=%q, want violated", clean, trust)
	}
	if clean, trust := audit("clean"); !clean || trust != "verified" {
		t.Fatalf("clean tenant audit: clean=%v trust=%q — the dirty tenant's violation leaked", clean, trust)
	}

	// Both tenants still serve; only the dirty one degrades to safe mode.
	for _, name := range []string{"dirty", "clean"} {
		resp, err := http.Get(ts.URL + "/query?tenant=" + name + "&q=" + url.QueryEscape("//Item/name"))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("tenant %s query after audits: %d", name, resp.StatusCode)
		}
	}
	dirtyStats := srv.Tenant("dirty").Stats()
	cleanStats := srv.Tenant("clean").Stats()
	if dirtyStats.SafeModeServes == 0 {
		t.Error("dirty tenant should serve in safe mode after a violated audit")
	}
	if cleanStats.SafeModeServes != 0 {
		t.Error("clean tenant flipped into safe mode by another tenant's violation")
	}
	if dirtyStats.Trust != "violated" || cleanStats.Trust != "verified" {
		t.Errorf("trust states: dirty=%q clean=%q", dirtyStats.Trust, cleanStats.Trust)
	}
	if dirtyStats.ViolationsFound == 0 || cleanStats.ViolationsFound != 0 {
		t.Errorf("violation counters: dirty=%d clean=%d",
			dirtyStats.ViolationsFound, cleanStats.ViolationsFound)
	}
}
