package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"xmlsql"
	"xmlsql/internal/workloads"
)

func TestTokenBucket(t *testing.T) {
	clock := time.Unix(100, 0)
	tb := newTokenBucket(10, 2) // 10/s, burst 2
	tb.now = func() time.Time { return clock }
	tb.last = clock

	for i := 0; i < 2; i++ {
		if ok, _ := tb.allow(); !ok {
			t.Fatalf("request %d within burst refused", i)
		}
	}
	ok, wait := tb.allow()
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	if wait <= 0 || wait > 100*time.Millisecond {
		t.Fatalf("retry-after hint = %v, want (0, 100ms] at 10/s", wait)
	}

	clock = clock.Add(100 * time.Millisecond) // one token refilled
	if ok, _ := tb.allow(); !ok {
		t.Fatal("request after refill refused")
	}
	if ok, _ := tb.allow(); ok {
		t.Fatal("second request after a single-token refill admitted")
	}

	// A long idle period must not accumulate more than the burst.
	clock = clock.Add(time.Hour)
	admitted := 0
	for i := 0; i < 10; i++ {
		if ok, _ := tb.allow(); ok {
			admitted++
		}
	}
	if admitted != 2 {
		t.Fatalf("after a long idle, %d admitted; burst is 2", admitted)
	}
}

func TestTokenBucketUnlimited(t *testing.T) {
	tb := newTokenBucket(0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := tb.allow(); !ok {
			t.Fatal("rate 0 must mean unlimited")
		}
	}
	var nilBucket *tokenBucket
	if ok, _ := nilBucket.allow(); !ok {
		t.Fatal("nil bucket must admit")
	}
}

func TestTokenBucketDerivedBurst(t *testing.T) {
	if tb := newTokenBucket(50, 0); tb.burst != 50 {
		t.Errorf("derived burst = %v, want one second of refill (50)", tb.burst)
	}
	if tb := newTokenBucket(0.25, 0); tb.burst != 1 {
		t.Errorf("derived burst = %v, want minimum 1", tb.burst)
	}
}

func TestConnLimiter(t *testing.T) {
	l := newConnLimiter(2)
	if !l.tryAcquire() || !l.tryAcquire() {
		t.Fatal("slots within the limit refused")
	}
	if l.tryAcquire() {
		t.Fatal("slot beyond the limit granted")
	}
	if got := l.rejected.Load(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	l.release()
	if !l.tryAcquire() {
		t.Fatal("slot after release refused")
	}
	if got := l.active.Load(); got != 2 {
		t.Fatalf("active = %d, want 2", got)
	}
}

func TestShedError(t *testing.T) {
	err := &ShedError{Reason: ShedRate, Tenant: "acme", RetryAfter: 50 * time.Millisecond}
	if !err.Temporary() {
		t.Error("shed errors are temporary by construction")
	}
	var shed *ShedError
	if !errors.As(error(err), &shed) || shed.Reason != ShedRate {
		t.Error("errors.As must recover the typed shed error")
	}
	msg := err.Error()
	for _, want := range []string{"acme", "shed_rate", "50ms"} {
		if !contains(msg, want) {
			t.Errorf("error text %q missing %q", msg, want)
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func TestLimitsWithDefaults(t *testing.T) {
	l := Limits{}.withDefaults()
	if l.MaxInFlight <= 0 {
		t.Errorf("MaxInFlight default = %d, want positive", l.MaxInFlight)
	}
	l = Limits{MaxInFlight: 3, RatePerSec: 7}.withDefaults()
	if l.MaxInFlight != 3 || l.RatePerSec != 7 {
		t.Errorf("explicit limits rewritten: %+v", l)
	}
}

// testTenant builds a tenant over a tiny loaded xmark instance.
func testTenant(t *testing.T, limits *Limits) *Tenant {
	t.Helper()
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 3, CategoriesPerItem: 1, NumCategories: 3, Seed: 1,
	})
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	tn, err := newTenant(TenantConfig{
		Name: "t", Schema: s, Backend: xmlsql.NewMemBackendOn(store), Limits: limits,
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	return tn
}

func TestTenantAdmitCapacity(t *testing.T) {
	tn := testTenant(t, &Limits{MaxInFlight: 1})
	release, err := tn.admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	_, err = tn.admit(context.Background(), time.Second)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedCapacity {
		t.Fatalf("over-capacity admit: got %v, want shed_capacity", err)
	}
	if shed.RetryAfter != time.Second {
		t.Errorf("capacity shed retry-after = %v, want the fallback 1s", shed.RetryAfter)
	}
	if got := tn.shedCapacity.Load(); got != 1 {
		t.Errorf("shedCapacity counter = %d, want 1", got)
	}
	release()
	release2, err := tn.admit(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	release2()
	if got := tn.inFlight.Load(); got != 0 {
		t.Errorf("inFlight = %d after all releases, want 0", got)
	}
}

func TestTenantAdmitQueueTimeout(t *testing.T) {
	tn := testTenant(t, &Limits{MaxInFlight: 1, QueueTimeout: 30 * time.Millisecond})
	release, err := tn.admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Held past the queue timeout: the waiter sheds.
	start := time.Now()
	_, err = tn.admit(context.Background(), time.Second)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedCapacity {
		t.Fatalf("queued admit after timeout: got %v, want shed_capacity", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Errorf("waiter shed after %v, before the 30ms queue timeout", waited)
	}

	// Released during the wait: the waiter is admitted, not shed.
	go func() {
		time.Sleep(5 * time.Millisecond)
		release()
	}()
	release2, err := tn.admit(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("queued admit with release mid-wait: %v", err)
	}
	release2()
}

func TestTenantAdmitRate(t *testing.T) {
	tn := testTenant(t, &Limits{RatePerSec: 1, Burst: 1})
	release, err := tn.admit(context.Background(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	release()
	_, err = tn.admit(context.Background(), time.Second)
	var shed *ShedError
	if !errors.As(err, &shed) || shed.Reason != ShedRate {
		t.Fatalf("over-rate admit: got %v, want shed_rate", err)
	}
	if shed.RetryAfter <= 0 {
		t.Error("rate shed must carry a positive retry-after hint")
	}
	if got := tn.shedRate.Load(); got != 1 {
		t.Errorf("shedRate counter = %d, want 1", got)
	}
}

func TestParseTenantSpecs(t *testing.T) {
	specs, err := ParseTenantSpecs("a=xmark,b=s1:fakedb, c=s3:mem ")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 3 {
		t.Fatalf("parsed %d specs, want 3", len(specs))
	}
	if specs[0].Name != "a" || specs[0].Workload != "xmark" || specs[0].Backend != "mem" {
		t.Errorf("spec 0 = %+v", specs[0])
	}
	if specs[1].Backend != "fakedb" {
		t.Errorf("spec 1 backend = %q", specs[1].Backend)
	}

	for _, bad := range []string{"", "a", "=xmark", "a=", "a=xmark:oracle", "a=xmark,a=s1"} {
		if _, err := ParseTenantSpecs(bad); err == nil {
			t.Errorf("ParseTenantSpecs(%q) accepted", bad)
		}
	}
}
