package server_test

import (
	"bufio"
	"fmt"
	"net"
	"strconv"
	"strings"
	"testing"
	"time"

	"xmlsql/internal/server"
)

// startLineServer runs a server with only the line listener.
func startLineServer(t *testing.T, limits *server.Limits) *server.Server {
	t.Helper()
	srv := server.New(server.Config{
		LineAddr: "127.0.0.1:0",
		Logf:     func(string, ...any) {},
	})
	cfg, _ := newXMarkTenant(t, "auctions", limits)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

type lineConn struct {
	c net.Conn
	r *bufio.Reader
}

func dialLine(t *testing.T, addr string) *lineConn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	c.SetDeadline(time.Now().Add(10 * time.Second))
	return &lineConn{c: c, r: bufio.NewReader(c)}
}

func (lc *lineConn) roundTrip(t *testing.T, req string) string {
	t.Helper()
	if _, err := fmt.Fprintf(lc.c, "%s\n", req); err != nil {
		t.Fatalf("%s: %v", req, err)
	}
	resp, err := lc.r.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: reading response: %v", req, err)
	}
	return strings.TrimSpace(resp)
}

func TestLineProtocol(t *testing.T) {
	srv := startLineServer(t, nil)
	lc := dialLine(t, srv.LineAddr())

	if got := lc.roundTrip(t, "PING"); got != "PONG" {
		t.Errorf("PING -> %q", got)
	}

	// Q: counted answer with server-side timing.
	got := lc.roundTrip(t, "Q auctions //Item/InCategory/Category")
	f := strings.Fields(got)
	if len(f) != 3 || f[0] != "OK" {
		t.Fatalf("Q -> %q", got)
	}
	if rows, _ := strconv.Atoi(f[1]); rows != 48 {
		t.Errorf("Q rows = %s, want 48", f[1])
	}
	if ns, _ := strconv.ParseInt(f[2], 10, 64); ns <= 0 {
		t.Errorf("Q elapsed_ns = %s, want positive", f[2])
	}

	// D: framed rows terminated by ".".
	got = lc.roundTrip(t, "D auctions //Item/name")
	if !strings.HasPrefix(got, "ROWS 24") {
		t.Fatalf("D -> %q, want ROWS 24", got)
	}
	seen := 0
	for {
		line, err := lc.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		if strings.TrimSpace(line) == "." {
			break
		}
		seen++
	}
	if seen != 24 {
		t.Errorf("D framed %d rows, want 24", seen)
	}

	// STATS: per-tenant counters, "." terminated.
	if got := lc.roundTrip(t, "STATS"); got != "OK" {
		t.Fatalf("STATS -> %q", got)
	}
	sawTenant := false
	for {
		line, err := lc.r.ReadString('\n')
		if err != nil {
			t.Fatal(err)
		}
		line = strings.TrimSpace(line)
		if line == "." {
			break
		}
		if strings.HasPrefix(line, "auctions ") {
			sawTenant = true
		}
	}
	if !sawTenant {
		t.Error("STATS output missing the auctions tenant")
	}

	// Errors are typed single lines.
	if got := lc.roundTrip(t, "BOGUS"); !strings.HasPrefix(got, "ERR bad_request") {
		t.Errorf("BOGUS -> %q", got)
	}
	if got := lc.roundTrip(t, "Q nosuch //Item"); !strings.HasPrefix(got, "ERR unknown_tenant") {
		t.Errorf("unknown tenant -> %q", got)
	}
	if got := lc.roundTrip(t, "Q auctions //Item["); !strings.HasPrefix(got, "ERR bad_query") {
		t.Errorf("bad query -> %q", got)
	}
	if got := lc.roundTrip(t, "Q auctions"); !strings.HasPrefix(got, "ERR bad_request") {
		t.Errorf("missing query -> %q", got)
	}

	// QUIT closes the connection.
	fmt.Fprintln(lc.c, "QUIT")
	if _, err := lc.r.ReadString('\n'); err == nil {
		t.Error("connection still open after QUIT")
	}
}

func TestLineProtocolRateShed(t *testing.T) {
	srv := startLineServer(t, &server.Limits{RatePerSec: 1, Burst: 1})
	lc := dialLine(t, srv.LineAddr())

	if got := lc.roundTrip(t, "Q auctions //Item/name"); !strings.HasPrefix(got, "OK") {
		t.Fatalf("first query -> %q", got)
	}
	got := lc.roundTrip(t, "Q auctions //Item/name")
	f := strings.Fields(got)
	if len(f) < 3 || f[0] != "ERR" || f[1] != "shed_rate" {
		t.Fatalf("over-rate query -> %q, want ERR shed_rate", got)
	}
	if ms, _ := strconv.ParseInt(f[2], 10, 64); ms <= 0 {
		t.Errorf("shed line retry_after_ms = %s, want positive", f[2])
	}

	// The shed does not kill the connection: PING still answers.
	if got := lc.roundTrip(t, "PING"); got != "PONG" {
		t.Errorf("PING after shed -> %q", got)
	}
}
