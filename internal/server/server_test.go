package server_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"xmlsql"
	"xmlsql/internal/server"
	"xmlsql/internal/workloads"
)

// newXMarkTenant shreds a tiny xmark instance and returns its pieces.
func newXMarkTenant(t *testing.T, name string, limits *server.Limits) (server.TenantConfig, *xmlsql.Store) {
	t.Helper()
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: 4, CategoriesPerItem: 2, NumCategories: 5, Seed: 7,
	})
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		t.Fatal(err)
	}
	return server.TenantConfig{
		Name:    name,
		Schema:  s,
		Backend: xmlsql.NewMemBackendOn(store),
		Limits:  limits,
	}, store
}

// newTestServer builds a server with one "auctions" xmark tenant and mounts
// its handler on an httptest server.
func newTestServer(t *testing.T, limits *server.Limits) (*server.Server, *httptest.Server) {
	t.Helper()
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg, _ := newXMarkTenant(t, "auctions", limits)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("parsing %s response: %v\n%s", url, err, body)
		}
	}
	return resp
}

func TestHTTPQuery(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var got struct {
		Tenant    string  `json:"tenant"`
		Cols      []string `json:"cols"`
		Rows      [][]any `json:"rows"`
		RowCount  int     `json:"row_count"`
		ElapsedNs int64   `json:"elapsed_ns"`
	}
	resp := getJSON(t, ts.URL+"/query?tenant=auctions&q="+url.QueryEscape("//Item/InCategory/Category"), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /query: %d", resp.StatusCode)
	}
	// 4 items x 6 continents x 2 categories each.
	if got.RowCount != 48 || len(got.Rows) != 48 {
		t.Errorf("row_count = %d, want 48", got.RowCount)
	}
	if got.ElapsedNs <= 0 {
		t.Error("elapsed_ns not reported")
	}
	if got.Tenant != "auctions" {
		t.Errorf("tenant = %q", got.Tenant)
	}

	// POST JSON body is the other accepted request form.
	body := strings.NewReader(`{"tenant":"auctions","query":"//Item/name"}`)
	presp, err := http.Post(ts.URL+"/query", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	if presp.StatusCode != http.StatusOK {
		t.Fatalf("POST /query: %d", presp.StatusCode)
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, nil)

	cases := []struct {
		path     string
		wantCode int
		wantErr  string
	}{
		{"/query?tenant=nosuch&q=//Item", http.StatusNotFound, "unknown_tenant"},
		{"/query?tenant=auctions&q=" + url.QueryEscape("//Item[InCategory"), http.StatusBadRequest, "bad_query"},
		{"/query?tenant=auctions", http.StatusBadRequest, "bad_request"},
		{"/query?q=//Item", http.StatusBadRequest, "bad_request"},
	}
	for _, tc := range cases {
		var got struct {
			Error struct {
				Code   string `json:"code"`
				Tenant string `json:"tenant"`
			} `json:"error"`
		}
		resp := getJSON(t, ts.URL+tc.path, &got)
		if resp.StatusCode != tc.wantCode {
			t.Errorf("%s: status %d, want %d", tc.path, resp.StatusCode, tc.wantCode)
		}
		if got.Error.Code != tc.wantErr {
			t.Errorf("%s: error code %q, want %q", tc.path, got.Error.Code, tc.wantErr)
		}
	}
}

func TestHTTPExplain(t *testing.T) {
	_, ts := newTestServer(t, nil)
	var got struct {
		SQL              string `json:"sql"`
		StatsFingerprint string `json:"stats_fingerprint"`
		UsePruned        bool   `json:"use_pruned"`
	}
	resp := getJSON(t, ts.URL+"/explain?tenant=auctions&q="+url.QueryEscape("//Item/InCategory/Category"), &got)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /explain: %d", resp.StatusCode)
	}
	if !strings.Contains(strings.ToLower(got.SQL), "select") {
		t.Errorf("explain sql = %q", got.SQL)
	}
	if got.StatsFingerprint == "" {
		t.Error("explain missing stats_fingerprint")
	}
	if !got.UsePruned {
		t.Error("Q1 should choose the pruned plan")
	}
}

func TestHTTPAudit(t *testing.T) {
	_, ts := newTestServer(t, nil)

	// GET is refused: an audit scans the store, so it must be explicit.
	resp, err := http.Get(ts.URL + "/audit?tenant=auctions")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /audit: %d, want 405", resp.StatusCode)
	}

	presp, err := http.Post(ts.URL+"/audit?tenant=auctions", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer presp.Body.Close()
	var got struct {
		Clean bool   `json:"clean"`
		Trust string `json:"trust"`
	}
	if err := json.NewDecoder(presp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !got.Clean || got.Trust != "verified" {
		t.Errorf("audit of a clean instance: clean=%v trust=%q", got.Clean, got.Trust)
	}
}

func TestHTTPHealthzAndStats(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var health struct {
		Status  string `json:"status"`
		Tenants int    `json:"tenants"`
	}
	resp := getJSON(t, ts.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusOK || health.Status != "ok" || health.Tenants != 1 {
		t.Errorf("healthz: %d %+v", resp.StatusCode, health)
	}

	// Two identical queries: the second must hit the tenant's plan cache,
	// and /stats must expose the partitioned counters.
	for i := 0; i < 2; i++ {
		r := getJSON(t, ts.URL+"/query?tenant=auctions&q="+url.QueryEscape("//Item/name"), nil)
		if r.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d", i, r.StatusCode)
		}
	}
	var stats server.ServerStats
	if r := getJSON(t, ts.URL+"/stats", &stats); r.StatusCode != http.StatusOK {
		t.Fatalf("stats: %d", r.StatusCode)
	}
	ten, ok := stats.Tenants["auctions"]
	if !ok {
		t.Fatalf("stats missing tenant: %+v", stats.Tenants)
	}
	if ten.Queries != 2 {
		t.Errorf("tenant queries = %d, want 2", ten.Queries)
	}
	if ten.PlanCache.Misses < 1 || ten.PlanCache.Hits < 1 {
		t.Errorf("plan cache counters not partitioned per tenant: %+v", ten.PlanCache)
	}
	if ten.Trust == "" {
		t.Error("tenant trust state missing from stats")
	}
	if ten.Engine == nil {
		t.Error("mem tenant should report engine shared-work counters")
	}
	if ten.MeanExecNs <= 0 {
		t.Error("mean_exec_ns not recorded")
	}
}

func TestHTTPRateShed(t *testing.T) {
	_, ts := newTestServer(t, &server.Limits{RatePerSec: 1, Burst: 1})

	q := ts.URL + "/query?tenant=auctions&q=" + url.QueryEscape("//Item/name")
	if r := getJSON(t, q, nil); r.StatusCode != http.StatusOK {
		t.Fatalf("first query: %d", r.StatusCode)
	}
	var got struct {
		Error struct {
			Code         string `json:"code"`
			RetryAfterMs int64  `json:"retry_after_ms"`
		} `json:"error"`
	}
	resp := getJSON(t, q, &got)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate query: %d, want 429", resp.StatusCode)
	}
	if got.Error.Code != "shed_rate" {
		t.Errorf("error code = %q, want shed_rate", got.Error.Code)
	}
	if got.Error.RetryAfterMs <= 0 {
		t.Error("shed response missing retry_after_ms")
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After header")
	}
}

func TestAddTenantValidation(t *testing.T) {
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg, _ := newXMarkTenant(t, "a", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.AddTenant(cfg); err == nil {
		t.Error("duplicate tenant name accepted")
	}
	if _, err := srv.AddTenant(server.TenantConfig{Name: "", Schema: cfg.Schema}); err == nil {
		t.Error("empty tenant name accepted")
	}
	if _, err := srv.AddTenant(server.TenantConfig{Name: "b"}); err == nil {
		t.Error("tenant without schema accepted")
	}
	if srv.Tenant("nosuch") != nil {
		t.Error("unknown tenant lookup should be nil")
	}
}

func TestConnectionLimit(t *testing.T) {
	srv := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		MaxConns: 1,
		Logf:     func(string, ...any) {},
	})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// Hold the single slot with an idle keep-alive connection, then connect
	// again: the second connection gets the canned typed 503 without its
	// request ever being read.
	hold, err := net.Dial("tcp", srv.HTTPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Close()

	// Give the accept loop a moment to claim the slot.
	deadline := time.Now().Add(2 * time.Second)
	for {
		c, err := net.Dial("tcp", srv.HTTPAddr())
		if err != nil {
			t.Fatal(err)
		}
		c.SetReadDeadline(time.Now().Add(2 * time.Second))
		raw, _ := io.ReadAll(c)
		c.Close()
		if strings.Contains(string(raw), "503") && strings.Contains(string(raw), "shed_connections") {
			if !strings.Contains(string(raw), "Retry-After:") {
				t.Errorf("connection-shed response missing Retry-After:\n%s", raw)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("over-limit connection not shed; last response:\n%s", raw)
		}
		time.Sleep(10 * time.Millisecond)
	}

	var stats server.ServerStats
	stats = srv.Stats()
	if stats.ShedConns == 0 {
		t.Error("shed_connections counter not incremented")
	}
	if stats.MaxConns != 1 {
		t.Errorf("max_conns = %d, want 1", stats.MaxConns)
	}
	_ = fmt.Sprint(stats)
}
