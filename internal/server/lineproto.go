package server

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"strconv"
	"strings"
	"time"

	"xmlsql"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/resilient"
)

// The line protocol: one request per line, one (or, for D, a framed block
// of) response line(s). It exists for cheap closed-loop benchmarking — a
// client can measure per-query serving latency without HTTP parsing on
// either side — and for quick manual poking with nc.
//
//	Q <tenant> <query>   execute; respond "OK <rows> <elapsed_ns>"
//	D <tenant> <query>   execute; respond "ROWS <n>", n tab-separated value
//	                     lines, then "."
//	U <tenant> <json>    apply a mutation batch; <json> is a one-line JSON
//	                     array of {"op","path","xml"} objects (op: insert /
//	                     delete / replace). Respond "OK <stmts> <written>
//	                     <deleted> <elapsed_ns>"; the batch is atomic.
//	PING                 respond "PONG"
//	STATS                respond "OK" followed by one "<tenant> <queries>
//	                     <shed>" line per tenant, then "."
//	QUIT                 close the connection
//
// Errors are one line: "ERR <code> <retry_after_ms> <message>". Shed codes
// (shed_rate, shed_capacity, shed_connections, draining) carry a non-zero
// retry-after hint; clients should back off that long before retrying.

// acceptLines is the line listener's accept loop.
func (s *Server) acceptLines() {
	defer s.acceptWG.Done()
	for {
		c, err := s.lineLn.Accept()
		if err != nil {
			return // listener closed (shutdown)
		}
		s.lineConnsMu.Lock()
		s.lineConns[c] = struct{}{}
		s.lineConnsMu.Unlock()
		s.lineWG.Add(1)
		go s.serveLineConn(c)
	}
}

func (s *Server) serveLineConn(c net.Conn) {
	defer s.lineWG.Done()
	defer func() {
		s.lineConnsMu.Lock()
		delete(s.lineConns, c)
		s.lineConnsMu.Unlock()
		c.Close()
	}()
	r := bufio.NewScanner(c)
	r.Buffer(make([]byte, 0, 4096), 1<<20)
	w := bufio.NewWriter(c)
	for r.Scan() {
		if s.draining.Load() {
			s.shedDraining.Add(1)
			writeLineError(w, &ShedError{Reason: ShedDraining, RetryAfter: s.cfg.RetryAfter})
			w.Flush()
			return
		}
		if done := s.handleLine(w, strings.TrimSpace(r.Text())); done {
			w.Flush()
			return
		}
		if w.Flush() != nil {
			return
		}
	}
}

// handleLine serves one request line; true means close the connection.
func (s *Server) handleLine(w *bufio.Writer, line string) bool {
	switch {
	case line == "":
		return false
	case line == "PING":
		fmt.Fprintln(w, "PONG")
		return false
	case line == "QUIT":
		return true
	case line == "STATS":
		fmt.Fprintln(w, "OK")
		for _, name := range s.tenantNames() {
			if t := s.Tenant(name); t != nil {
				st := t.Stats()
				fmt.Fprintf(w, "%s %d %d\n", name, st.Queries, st.ShedRate+st.ShedCapacity)
			}
		}
		fmt.Fprintln(w, ".")
		return false
	}
	verb, rest, ok := strings.Cut(line, " ")
	if !ok || (verb != "Q" && verb != "D" && verb != "U") {
		writeLineErrorCode(w, "bad_request", 0, fmt.Sprintf("unknown command %q", line))
		return false
	}
	tenant, query, ok := strings.Cut(rest, " ")
	if !ok || tenant == "" || query == "" {
		arg := "query"
		if verb == "U" {
			arg = "json-mutations"
		}
		writeLineErrorCode(w, "bad_request", 0, fmt.Sprintf("%s wants: %s <tenant> <%s>", verb, verb, arg))
		return false
	}
	t := s.Tenant(tenant)
	if t == nil {
		writeLineErrorCode(w, "unknown_tenant", 0, fmt.Sprintf("tenant %q not registered", tenant))
		return false
	}
	if verb == "U" {
		var muts []updateMutationWire
		if err := json.Unmarshal([]byte(query), &muts); err != nil {
			writeLineErrorCode(w, "bad_request", 0, fmt.Sprintf("parsing mutations: %v", err))
			return false
		}
		batch, err := decodeBatch(muts)
		if err != nil {
			writeLineErrorCode(w, "bad_request", 0, err.Error())
			return false
		}
		res, elapsed, err := s.executeUpdate(context.Background(), t, batch)
		if err != nil {
			writeLineError(w, err)
			return false
		}
		fmt.Fprintf(w, "OK %d %d %d %d\n", res.Stmts, len(res.Touched.Written), len(res.Touched.Deleted), elapsed.Nanoseconds())
		return false
	}
	if _, err := pathexpr.Parse(query); err != nil {
		writeLineErrorCode(w, "bad_query", 0, err.Error())
		return false
	}
	res, elapsed, err := s.execute(context.Background(), t, query)
	if err != nil {
		writeLineError(w, err)
		return false
	}
	if verb == "Q" {
		fmt.Fprintf(w, "OK %d %d\n", res.Len(), elapsed.Nanoseconds())
		return false
	}
	fmt.Fprintf(w, "ROWS %d\n", res.Len())
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				w.WriteByte('\t')
			}
			w.WriteString(lineValue(v))
		}
		w.WriteByte('\n')
	}
	fmt.Fprintln(w, ".")
	return false
}

// lineValue renders a value for the D response (tabs and newlines in string
// payloads are escaped so framing survives).
func lineValue(v relational.Value) string {
	switch v.Kind() {
	case relational.KindInt:
		return strconv.FormatInt(v.AsInt(), 10)
	case relational.KindString:
		r := strings.NewReplacer("\t", `\t`, "\n", `\n`, "\r", `\r`)
		return r.Replace(v.AsString())
	default:
		return "NULL"
	}
}

// writeLineError maps an execution error to its ERR line, mirroring
// writeExecError's HTTP mapping.
func writeLineError(w *bufio.Writer, err error) {
	var shed *ShedError
	var re *engine.ResourceError
	var ue *xmlsql.UpdateError
	switch {
	case errors.As(err, &ue):
		writeLineErrorCode(w, "update_"+ue.Kind.String(), 0, err.Error())
	case errors.As(err, &shed):
		writeLineErrorCode(w, string(shed.Reason), shed.RetryAfter, err.Error())
	case errors.Is(err, context.DeadlineExceeded):
		writeLineErrorCode(w, "timeout", 0, err.Error())
	case errors.Is(err, resilient.ErrBreakerOpen):
		writeLineErrorCode(w, "unavailable", DefaultRetryAfter, err.Error())
	case errors.As(err, &re):
		writeLineErrorCode(w, "resource_limit", 0, err.Error())
	default:
		writeLineErrorCode(w, "internal", 0, err.Error())
	}
}

func writeLineErrorCode(w *bufio.Writer, code string, retryAfter time.Duration, msg string) {
	fmt.Fprintf(w, "ERR %s %d %s\n", code, retryAfter.Milliseconds(), strings.ReplaceAll(msg, "\n", " "))
}

// rejectLineConn answers an over-limit connection with the typed shed line.
func (s *Server) rejectLineConn(c net.Conn) {
	c.SetWriteDeadline(time.Now().Add(time.Second))
	fmt.Fprintf(c, "ERR %s %d connection limit reached\n", ShedConnections, s.cfg.RetryAfter.Milliseconds())
}
