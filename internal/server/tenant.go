package server

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"sync/atomic"
	"time"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/resilient"
	"xmlsql/internal/sharded"
	"xmlsql/internal/wal"
)

// Limits is the per-tenant admission-control configuration. The zero value
// means "server defaults" (Config.Limits), whose own zero value means
// unlimited rate and 2×GOMAXPROCS in-flight queries.
type Limits struct {
	// RatePerSec refills the tenant's token bucket; <= 0 disables rate
	// limiting.
	RatePerSec float64 `json:"rate_per_sec"`
	// Burst is the bucket capacity; <= 0 derives one second of refill.
	Burst int `json:"burst"`
	// MaxInFlight bounds concurrently executing queries for the tenant;
	// <= 0 means 2×GOMAXPROCS.
	MaxInFlight int `json:"max_in_flight"`
	// QueueTimeout is how long an over-capacity request may wait for an
	// in-flight slot before being shed. 0 sheds immediately — the
	// no-unbounded-queueing default.
	QueueTimeout time.Duration `json:"queue_timeout_ns"`
}

// withDefaults resolves zero fields to serving defaults.
func (l Limits) withDefaults() Limits {
	if l.MaxInFlight <= 0 {
		l.MaxInFlight = 2 * runtime.GOMAXPROCS(0)
	}
	return l
}

// TenantConfig declares one (schema, backend) mapping hosted by the server.
type TenantConfig struct {
	// Name addresses the tenant in every request; unique per server.
	Name string
	// Schema is the tenant's annotated XML-to-Relational mapping.
	Schema *xmlsql.Schema
	// Backend, when non-nil, is where the tenant's queries execute (it
	// should already hold the tenant's shredded documents). Nil gets a
	// fresh in-memory backend.
	Backend xmlsql.Backend
	// Planner tunes the tenant's private planner (cache size, timeout,
	// trust policy, adaptive planning). Planner.Backend is overridden by
	// Backend when that is set.
	Planner xmlsql.PlannerConfig
	// Limits overrides the server's default per-tenant admission limits.
	Limits *Limits

	// DataDir, when set, makes the tenant durable: its store is recovered
	// from the write-ahead log in this directory on boot, and every update
	// batch is logged (and fsynced, per WAL's sync policy) before it is
	// acknowledged. Mutually exclusive with Backend — a durable store is
	// rebuilt from its log, not handed in.
	DataDir string
	// WAL tunes the durable tenant's log (group-commit window, snapshot
	// cadence). Ignored unless DataDir is set.
	WAL wal.Options
	// Load populates a durable tenant's store on first boot (no snapshot on
	// disk yet); after it returns, a base checkpoint is written. Ignored
	// unless DataDir is set; nil starts the tenant empty. Incompatible with
	// Shards > 1 (a composite has no single store) — use LoadBackend there.
	Load func(*backend.Mem) error

	// Shards > 1 document-partitions the tenant across that many in-memory
	// stores and serves it through the sharded scatter-gather composite.
	// Durable sharded tenants (DataDir set) recover each shard from its own
	// log under DataDir/shard-<k>. Mutually exclusive with Backend.
	Shards int
	// LoadBackend populates a first-boot tenant through the full backend
	// interface (works for both single-store and sharded tenants); for a
	// volatile sharded tenant it runs at construction. Preferred over Load.
	LoadBackend func(xmlsql.Backend) error
}

// Tenant is one hosted mapping: a private planner (its own plan cache,
// statistics snapshot, and trust state), a private token bucket and
// in-flight semaphore, and private serving counters. Nothing is shared
// across tenants except the process-wide connection limit, so one tenant's
// violated trust state, cache pressure, or overload never leaks into
// another's serving.
type Tenant struct {
	name    string
	planner *xmlsql.Planner
	limits  Limits
	bucket  *tokenBucket
	sem     chan struct{}

	// Durability (empty / zero for volatile tenants). Sharded durable
	// tenants have one log manager per shard.
	wals         []*wal.Manager
	recoveryInfo *wal.RecoveryInfo
	recovery     atomic.Value // RecoveryState

	queries      atomic.Int64
	errors       atomic.Int64
	shedRate     atomic.Int64
	shedCapacity atomic.Int64
	inFlight     atomic.Int64
	execNs       atomic.Int64
}

func newTenant(cfg TenantConfig, defaults Limits) (*Tenant, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("server: tenant name must not be empty")
	}
	if cfg.Schema == nil {
		return nil, fmt.Errorf("server: tenant %q has no schema", cfg.Name)
	}
	limits := defaults
	if cfg.Limits != nil {
		limits = *cfg.Limits
	}
	limits = limits.withDefaults()
	pc := cfg.Planner
	if cfg.Backend != nil {
		if cfg.Shards > 1 {
			return nil, fmt.Errorf("server: tenant %q: Shards and Backend are mutually exclusive (the composite is built from the shard count)", cfg.Name)
		}
		pc.Backend = cfg.Backend
	}
	var db *durableBackend
	switch {
	case cfg.DataDir != "":
		if cfg.Backend != nil {
			return nil, fmt.Errorf("server: tenant %q: DataDir and Backend are mutually exclusive (a durable store is recovered from its log)", cfg.Name)
		}
		var err error
		if db, err = openDurable(cfg); err != nil {
			return nil, err
		}
		pc.Backend = db.b
	case cfg.Shards > 1:
		// Volatile sharded tenant: document-partitioned in-memory composite.
		comp, err := sharded.NewMem(cfg.Shards, sharded.Options{})
		if err != nil {
			return nil, fmt.Errorf("server: tenant %q: %w", cfg.Name, err)
		}
		if err := comp.EnsureSchema(cfg.Schema); err != nil {
			return nil, fmt.Errorf("server: tenant %q: ensure schema: %w", cfg.Name, err)
		}
		if cfg.LoadBackend != nil {
			if err := cfg.LoadBackend(comp); err != nil {
				return nil, fmt.Errorf("server: tenant %q: load: %w", cfg.Name, err)
			}
		}
		pc.Backend = comp
	}
	t := &Tenant{
		name:    cfg.Name,
		planner: xmlsql.NewPlannerWith(cfg.Schema, pc),
		limits:  limits,
		bucket:  newTokenBucket(limits.RatePerSec, limits.Burst),
		sem:     make(chan struct{}, limits.MaxInFlight),
	}
	t.recovery.Store(RecoveryVolatile)
	if db != nil {
		t.wals = db.mgrs
		t.recoveryInfo = db.info
		t.recovery.Store(RecoveryRecovering)
		state, err := verifyReplay(t.planner, cfg.Schema, db)
		if err != nil {
			db.closeAll()
			return nil, err
		}
		t.recovery.Store(state)
	}
	return t, nil
}

// Name returns the tenant's registry name.
func (t *Tenant) Name() string { return t.name }

// Planner exposes the tenant's private planner (audits, explain, tests).
func (t *Tenant) Planner() *xmlsql.Planner { return t.planner }

// RecoveryState reports the tenant's durability lifecycle state.
func (t *Tenant) RecoveryState() RecoveryState {
	return t.recovery.Load().(RecoveryState)
}

// RecoveryInfo returns what boot-time recovery found (nil for volatile
// tenants): snapshot LSN, replayed batch count, truncation, elapsed time.
func (t *Tenant) RecoveryInfo() *wal.RecoveryInfo { return t.recoveryInfo }

// WAL exposes the tenant's log manager (nil for volatile tenants; the first
// shard's for sharded tenants) so tests and operators can force checkpoints
// or read durability counters.
func (t *Tenant) WAL() *wal.Manager {
	if len(t.wals) == 0 {
		return nil
	}
	return t.wals[0]
}

// WALs exposes every log manager of a sharded durable tenant, in shard
// order (nil for volatile tenants).
func (t *Tenant) WALs() []*wal.Manager { return t.wals }

// closeDurable flushes and closes the tenant's WAL(s), releasing any
// group-commit window to disk. No-op for volatile tenants; idempotent.
func (t *Tenant) closeDurable() error {
	var first error
	for _, m := range t.wals {
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// admit runs the per-tenant admission stages in order — token bucket, then
// bounded in-flight semaphore — returning a release function on success and
// a typed *ShedError on refusal.
func (t *Tenant) admit(ctx context.Context, fallbackRetryAfter time.Duration) (func(), error) {
	ok, wait := t.bucket.allow()
	if !ok {
		t.shedRate.Add(1)
		return nil, &ShedError{Reason: ShedRate, Tenant: t.name, RetryAfter: wait}
	}
	select {
	case t.sem <- struct{}{}:
	default:
		if t.limits.QueueTimeout <= 0 {
			t.shedCapacity.Add(1)
			return nil, &ShedError{Reason: ShedCapacity, Tenant: t.name, RetryAfter: fallbackRetryAfter}
		}
		timer := time.NewTimer(t.limits.QueueTimeout)
		defer timer.Stop()
		select {
		case t.sem <- struct{}{}:
		case <-timer.C:
			t.shedCapacity.Add(1)
			return nil, &ShedError{Reason: ShedCapacity, Tenant: t.name, RetryAfter: fallbackRetryAfter}
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
	t.inFlight.Add(1)
	return func() {
		t.inFlight.Add(-1)
		<-t.sem
	}, nil
}

// exec runs one admitted query through the tenant's planner, recording the
// outcome counters.
func (t *Tenant) exec(ctx context.Context, query string) (*xmlsql.Result, time.Duration, error) {
	start := time.Now()
	res, err := t.planner.Exec(ctx, query)
	elapsed := time.Since(start)
	t.queries.Add(1)
	t.execNs.Add(elapsed.Nanoseconds())
	if err != nil {
		t.errors.Add(1)
	}
	return res, elapsed, err
}

// update applies one admitted mutation batch through the tenant's planner.
// The planner tracks the applied/rejected counters; the tenant's error
// counter still moves so /stats error rates cover writes too.
func (t *Tenant) update(ctx context.Context, b xmlsql.UpdateBatch) (*xmlsql.UpdateResult, time.Duration, error) {
	start := time.Now()
	res, err := t.planner.Update(ctx, b)
	elapsed := time.Since(start)
	if err != nil {
		t.errors.Add(1)
	}
	return res, elapsed, err
}

// PlanCacheStats is the tenant's plan-cache counter snapshot on /stats.
type PlanCacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// EngineStats is the tenant's accumulated shared-work execution counters
// (in-memory backends only; a real database plans its own execution).
type EngineStats struct {
	SharedHits      int64 `json:"shared_hits"`
	SharedMisses    int64 `json:"shared_misses"`
	SharedSavedRows int64 `json:"shared_saved_rows"`
}

// TenantStats is one tenant's /stats entry: serving counters, shed
// counters, plan-cache and integrity counters from the tenant's private
// planner, and — where the backend exposes them — engine shared-work and
// resilience counters. Everything here is per tenant, not process-global.
type TenantStats struct {
	Queries  int64 `json:"queries"`
	Errors   int64 `json:"errors"`
	InFlight int64 `json:"in_flight"`
	// ShedRate / ShedCapacity count typed refusals by admission stage.
	ShedRate     int64 `json:"shed_rate"`
	ShedCapacity int64 `json:"shed_capacity"`
	// MeanExecNs is the mean served-query latency (admitted queries only).
	MeanExecNs float64 `json:"mean_exec_ns"`

	PlanCache PlanCacheStats `json:"plan_cache"`

	Audits          int64  `json:"audits"`
	ViolationsFound int64  `json:"violations_found"`
	SafeModeServes  int64  `json:"safe_mode_serves"`
	StatsCollects   int64  `json:"stats_collects"`
	Updates         int64  `json:"updates"`
	UpdateRejects   int64  `json:"update_rejects"`
	Trust           string `json:"trust"`
	// Recovery is the durability lifecycle state ("volatile" when the tenant
	// has no write-ahead log).
	Recovery string `json:"recovery"`

	Engine    *EngineStats     `json:"engine,omitempty"`
	Resilient *resilient.Stats `json:"resilient,omitempty"`

	Limits Limits `json:"limits"`
}

// Stats snapshots the tenant's counters.
func (t *Tenant) Stats() TenantStats {
	ps := t.planner.Stats()
	st := TenantStats{
		Queries:      t.queries.Load(),
		Errors:       t.errors.Load(),
		InFlight:     t.inFlight.Load(),
		ShedRate:     t.shedRate.Load(),
		ShedCapacity: t.shedCapacity.Load(),
		PlanCache: PlanCacheStats{
			Hits: ps.Hits, Misses: ps.Misses, Evictions: ps.Evictions, Entries: ps.Entries,
		},
		Audits:          ps.Audits,
		ViolationsFound: ps.ViolationsFound,
		SafeModeServes:  ps.SafeModeServes,
		StatsCollects:   ps.StatsCollects,
		Updates:         ps.Updates,
		UpdateRejects:   ps.UpdateRejects,
		Trust:           ps.Trust.String(),
		Recovery:        string(t.RecoveryState()),
		Limits:          t.limits,
	}
	if q := st.Queries; q > 0 {
		st.MeanExecNs = float64(t.execNs.Load()) / float64(q)
	}
	// Walk through a resilient wrapper to the backend underneath: the
	// wrapper's counters and the mem engine's shared-work counters are both
	// per-tenant observability.
	b := t.planner.Backend()
	if rb, ok := b.(*resilient.Backend); ok {
		rs := rb.Stats()
		st.Resilient = &rs
		b = rb.Primary()
	}
	if m, ok := b.(*backend.Mem); ok {
		es := m.EngineStats()
		st.Engine = &EngineStats{
			SharedHits:      es.SharedHits,
			SharedMisses:    es.SharedMisses,
			SharedSavedRows: es.SharedSavedRows,
		}
	} else if comp, ok := b.(*sharded.Sharded); ok {
		// A sharded composite's engine counters are the sum over its
		// per-shard mem engines.
		sum := EngineStats{}
		counted := false
		for _, sh := range comp.Shards() {
			if m, ok := sh.(*backend.Mem); ok {
				es := m.EngineStats()
				sum.SharedHits += es.SharedHits
				sum.SharedMisses += es.SharedMisses
				sum.SharedSavedRows += es.SharedSavedRows
				counted = true
			}
		}
		if counted {
			st.Engine = &sum
		}
	}
	return st
}

// tenantNames returns the registered names, sorted.
func (s *Server) tenantNames() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.tenants))
	for n := range s.tenants {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
