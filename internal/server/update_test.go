package server_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"

	"xmlsql"
	"xmlsql/internal/server"
)

// postJSON posts a JSON body and decodes the JSON answer.
func postJSON(t *testing.T, url string, body any, out any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", strings.NewReader(string(b)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("parsing %s response: %v", url, err)
		}
	}
	return resp
}

type updateResp struct {
	Tenant      string   `json:"tenant"`
	Mutations   int      `json:"mutations"`
	Stmts       int      `json:"stmts"`
	Touched     []string `json:"touched_relations"`
	Written     int      `json:"written_tuples"`
	AuditClean  bool     `json:"audit_clean"`
	Trust       string   `json:"trust"`
	ElapsedNs   int64    `json:"elapsed_ns"`
	Preexisting bool     `json:"preexisting_violations"`
}

// TestHTTPUpdate applies a batch over POST /update and checks the new data
// serves and the tenant counters move.
func TestHTTPUpdate(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var before struct {
		RowCount int `json:"row_count"`
	}
	getJSON(t, ts.URL+"/query?tenant=auctions&q=//Item/InCategory/Category", &before)

	var ur updateResp
	resp := postJSON(t, ts.URL+"/update", map[string]any{
		"tenant": "auctions",
		"mutations": []map[string]string{{
			"op":   "insert",
			"path": "/Site/Regions/Africa/Item",
			"xml":  "<InCategory><Category>networked</Category></InCategory>",
		}},
	}, &ur)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /update = %d", resp.StatusCode)
	}
	if len(ur.Touched) != 1 || ur.Touched[0] != "InCat" || !ur.AuditClean || ur.Written != 4 {
		t.Fatalf("update response %+v", ur)
	}

	var after struct {
		RowCount int `json:"row_count"`
	}
	getJSON(t, ts.URL+"/query?tenant=auctions&q=//Item/InCategory/Category", &after)
	if after.RowCount != before.RowCount+4 {
		t.Fatalf("rows %d -> %d, want +4", before.RowCount, after.RowCount)
	}

	var stats struct {
		Tenants map[string]struct {
			Updates       int64 `json:"updates"`
			UpdateRejects int64 `json:"update_rejects"`
		} `json:"tenants"`
	}
	getJSON(t, ts.URL+"/stats", &stats)
	if got := stats.Tenants["auctions"]; got.Updates != 1 || got.UpdateRejects != 0 {
		t.Fatalf("tenant counters %+v, want 1 applied / 0 rejected", got)
	}
}

// TestHTTPUpdateRejection checks a rejected batch's typed HTTP shape and that
// it changed nothing.
func TestHTTPUpdateRejection(t *testing.T) {
	_, ts := newTestServer(t, nil)

	var errBody struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	resp := postJSON(t, ts.URL+"/update", map[string]any{
		"tenant": "auctions",
		"mutations": []map[string]string{{
			"op": "insert", "path": "//Item", "xml": "<Bogus/>",
		}},
	}, &errBody)
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("rejected update = %d, want 422", resp.StatusCode)
	}
	if errBody.Error.Code != "update_conform" {
		t.Fatalf("error code = %q, want update_conform", errBody.Error.Code)
	}

	// Unknown op is a plain bad request, before admission.
	resp = postJSON(t, ts.URL+"/update", map[string]any{
		"tenant":    "auctions",
		"mutations": []map[string]string{{"op": "upsert", "path": "//Item"}},
	}, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown op = %d, want 400", resp.StatusCode)
	}
}

// TestLineProtoUpdate drives the U verb end to end over a real TCP listener.
func TestLineProtoUpdate(t *testing.T) {
	srv := server.New(server.Config{LineAddr: "127.0.0.1:0", Logf: func(string, ...any) {}})
	cfg, _ := newXMarkTenant(t, "auctions", nil)
	if _, err := srv.AddTenant(cfg); err != nil {
		t.Fatal(err)
	}
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })

	c, err := net.DialTimeout("tcp", srv.LineAddr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	r := bufio.NewScanner(c)

	muts := `[{"op":"insert","path":"/Site/Regions/Asia/Item","xml":"<InCategory><Category>line-proto</Category></InCategory>"}]`
	fmt.Fprintf(c, "U auctions %s\n", muts)
	if !r.Scan() {
		t.Fatal("no response to U")
	}
	fields := strings.Fields(r.Text())
	if len(fields) != 5 || fields[0] != "OK" {
		t.Fatalf("U response = %q, want OK <stmts> <written> <deleted> <elapsed>", r.Text())
	}
	if fields[2] != "4" { // 4 Asia items gained one InCat tuple each
		t.Fatalf("written = %s, want 4", fields[2])
	}

	// The write is visible on the same connection.
	fmt.Fprintln(c, "Q auctions //Item/InCategory/Category")
	if !r.Scan() {
		t.Fatal("no response to Q")
	}
	if !strings.HasPrefix(r.Text(), "OK ") {
		t.Fatalf("Q response = %q", r.Text())
	}

	// A rejected batch answers a typed ERR line.
	fmt.Fprintln(c, `U auctions [{"op":"insert","path":"//Item","xml":"<Bogus/>"}]`)
	if !r.Scan() {
		t.Fatal("no response to invalid U")
	}
	if !strings.HasPrefix(r.Text(), "ERR update_conform") {
		t.Fatalf("invalid U response = %q, want ERR update_conform ...", r.Text())
	}
}

// TestUpdateDoesNotDisturbOtherTenants is the multi-tenant face of scoped
// invalidation: a write to one tenant leaves another tenant's hot plan-cache
// entries (and trust state) untouched.
func TestUpdateDoesNotDisturbOtherTenants(t *testing.T) {
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfgA, _ := newXMarkTenant(t, "a", nil)
	cfgB, _ := newXMarkTenant(t, "b", nil)
	ta, err := srv.AddTenant(cfgA)
	if err != nil {
		t.Fatal(err)
	}
	tb, err := srv.AddTenant(cfgB)
	if err != nil {
		t.Fatal(err)
	}
	ctx := t.Context()
	const q = "//Item/InCategory/Category"

	// Warm both tenants' caches.
	for _, tn := range []*server.Tenant{ta, tb} {
		if _, err := tn.Planner().Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
		if _, err := tn.Planner().Exec(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	missesB := tb.Planner().Stats().Misses

	// Update tenant a only.
	if _, err := ta.Planner().Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  "<InCategory><Category>tenant-a-only</Category></InCategory>",
	}}}); err != nil {
		t.Fatal(err)
	}

	// Tenant b's hot entry still hits; tenant a re-plans.
	if _, err := tb.Planner().Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := tb.Planner().Stats().Misses; got != missesB {
		t.Fatalf("tenant b re-planned after tenant a's write (%d -> %d misses)", missesB, got)
	}
	missesA := ta.Planner().Stats().Misses
	if _, err := ta.Planner().Exec(ctx, q); err != nil {
		t.Fatal(err)
	}
	if got := ta.Planner().Stats().Misses; got == missesA {
		t.Fatal("tenant a kept serving a stale plan for its touched relation")
	}
}
