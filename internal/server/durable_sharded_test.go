package server_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xmlsql"
	"xmlsql/internal/server"
	"xmlsql/internal/workloads"
)

// durableShardedConfig returns a 4-shard durable xmark tenant over dir whose
// first boot partitions a 6-document deterministic xmark instance, so every
// shard of the 4-way partition owns at least one document and path-targeted
// updates split across shards.
func durableShardedConfig(name, dir string) server.TenantConfig {
	return server.TenantConfig{
		Name:    name,
		Schema:  workloads.XMark(),
		DataDir: dir,
		Shards:  4,
		LoadBackend: func(b xmlsql.Backend) error {
			docs := workloads.GenerateXMarkScale(workloads.XMarkConfig{
				ItemsPerContinent: 3, CategoriesPerItem: 2, NumCategories: 5, Seed: 11,
			}, 6)
			_, err := b.Load(workloads.XMark(), docs...)
			return err
		},
	}
}

// TestDurableShardedTenantLifecycle is the crash/recover differential for a
// document-partitioned durable tenant: first boot partitions the load across
// per-shard logs under DataDir/shard-<k>, an acknowledged update that touches
// several shards is logged per shard, and a reboot replays every shard's
// suffix, re-verifies integrity through the routing probe, and serves reads
// identical to a volatile single-store tenant given the same history.
func TestDurableShardedTenantLifecycle(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	ten, err := srv.AddTenant(durableShardedConfig("auctions", dir))
	if err != nil {
		t.Fatal(err)
	}
	if got := ten.RecoveryState(); got != server.RecoveryRecovered {
		t.Fatalf("first boot recovery state = %q, want recovered", got)
	}
	if got := len(ten.WALs()); got != 4 {
		t.Fatalf("tenant has %d WALs, want 4", got)
	}
	for k := 0; k < 4; k++ {
		if _, err := os.Stat(filepath.Join(dir, "shard-"+string(rune('0'+k)))); err != nil {
			t.Fatalf("shard %d data dir missing: %v", k, err)
		}
	}

	// The same-named item occurs in every document, so this batch routes DML
	// to several shards and every touched shard logs its slice.
	batch := xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op: xmlsql.UpdateInsert, Path: "//Item[name='item-Af-0']",
		XML: "<InCategory><Category>durable-sharded</Category></InCategory>",
	}}}
	if res, err := ten.Planner().Update(ctx, batch); err != nil || !res.Audit.Clean() {
		t.Fatalf("durable sharded update: %v (clean=%v)", err, res != nil && res.Audit.Clean())
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	// Reboot on the same directory: every shard has a snapshot, so
	// LoadBackend must not run, the router is adopted from the recovered
	// stores, and the logged batch slices replay.
	srv2 := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableShardedConfig("auctions", dir)
	cfg.LoadBackend = func(xmlsql.Backend) error {
		t.Error("LoadBackend ran on a reboot with snapshots on disk")
		return nil
	}
	ten2, err := srv2.AddTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv2.Shutdown(ctx)
	ri := ten2.RecoveryInfo()
	if ri == nil || !ri.SnapshotLoaded || ri.ReplayedBatches == 0 || !ri.TouchedComplete {
		t.Fatalf("reboot RecoveryInfo = %+v, want snapshots + replayed batches with complete footprint", ri)
	}
	if got := ten2.RecoveryState(); got != server.RecoveryRecovered {
		t.Fatalf("reboot recovery state = %q, want recovered", got)
	}
	if got := ten2.Planner().TrustState(); got != xmlsql.TrustVerified {
		t.Fatalf("post-replay trust = %v, want verified", got)
	}

	// Differential against a volatile single-store tenant given the same
	// load + update history.
	ref := xmlsql.NewPlannerWith(workloads.XMark(), xmlsql.PlannerConfig{})
	docs := workloads.GenerateXMarkScale(workloads.XMarkConfig{
		ItemsPerContinent: 3, CategoriesPerItem: 2, NumCategories: 5, Seed: 11,
	}, 6)
	if _, err := ref.Backend().Load(workloads.XMark(), docs...); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Update(ctx, batch); err != nil {
		t.Fatal(err)
	}
	for _, q := range []string{workloads.QueryQ1, "//Item/InCategory/Category"} {
		want, err := ref.Exec(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ten2.Planner().Exec(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if !want.MultisetEqual(got) {
			t.Errorf("recovered sharded read diverges on %s:\n%s", q, want.MultisetDiff(got))
		}
	}
}

// TestDurableShardedInconsistentDirsRefused wipes one shard's data directory
// between boots: the tenant must refuse to open rather than silently serve a
// partition with a missing slice.
func TestDurableShardedInconsistentDirsRefused(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	if _, err := srv.AddTenant(durableShardedConfig("auctions", dir)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if err := os.RemoveAll(filepath.Join(dir, "shard-2")); err != nil {
		t.Fatal(err)
	}
	srv2 := server.New(server.Config{Logf: func(string, ...any) {}})
	_, err := srv2.AddTenant(durableShardedConfig("auctions", dir))
	if err == nil || !strings.Contains(err.Error(), "inconsistent shard data dirs") {
		t.Fatalf("AddTenant with a wiped shard dir: err = %v", err)
	}
	srv2.Shutdown(ctx)
}

// TestVolatileShardedTenant pins the non-durable sharded path: Shards alone
// builds an in-memory composite, LoadBackend populates it, and per-shard
// engine counters fold into the tenant's /stats engine section.
func TestVolatileShardedTenant(t *testing.T) {
	ctx := context.Background()
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableShardedConfig("auctions", "")
	cfg.DataDir = ""
	ten, err := srv.AddTenant(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(ctx)
	if got := ten.RecoveryState(); got != server.RecoveryVolatile {
		t.Fatalf("recovery state = %q, want volatile", got)
	}
	if ten.WAL() != nil {
		t.Fatal("volatile sharded tenant has a WAL")
	}
	res, err := ten.Planner().Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) == 0 {
		t.Fatal("volatile sharded tenant served no rows")
	}
	if st := ten.Stats(); st.Engine == nil {
		t.Fatal("sharded tenant stats missing summed engine counters")
	}
}

// TestShardsBackendMutuallyExclusive pins the config contract.
func TestShardsBackendMutuallyExclusive(t *testing.T) {
	srv := server.New(server.Config{Logf: func(string, ...any) {}})
	cfg := durableShardedConfig("auctions", "")
	cfg.DataDir = ""
	cfg.Backend = xmlsql.NewMemBackend()
	if _, err := srv.AddTenant(cfg); err == nil || !strings.Contains(err.Error(), "mutually exclusive") {
		t.Fatalf("AddTenant with Shards+Backend: err = %v", err)
	}
}
