package server

import (
	"context"
	"fmt"
	"path/filepath"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/sharded"
	"xmlsql/internal/wal"
)

// RecoveryState is a tenant's durability lifecycle, exposed per tenant on
// /healthz and /stats. Volatile tenants (no DataDir) stay "volatile"; a
// durable tenant passes through "recovering" while its log replays and lands
// on one of the terminal states.
type RecoveryState string

const (
	// RecoveryVolatile marks a tenant with no write-ahead log.
	RecoveryVolatile RecoveryState = "volatile"
	// RecoveryRecovering is the transient state while the snapshot loads,
	// the log suffix replays, and the verification audit runs.
	RecoveryRecovering RecoveryState = "recovering"
	// RecoveryRecovered is the clean terminal state: the log replayed whole
	// and (if anything was replayed) the audit over the replayed
	// neighborhoods passed.
	RecoveryRecovered RecoveryState = "recovered"
	// RecoveryTruncated means recovery succeeded but the log ended in a torn
	// or corrupt record that was truncated away; the batch it belonged to was
	// never acknowledged, so no acknowledged write was lost.
	RecoveryTruncated RecoveryState = "replay_truncated"
	// RecoveryViolated means the post-replay audit found violations: the
	// tenant serves in integrity safe mode until re-audited clean.
	RecoveryViolated RecoveryState = "replay_violated"
)

// durableBackend is what openDurable hands back to newTenant: the wired
// backend plus everything the verification step needs. A sharded durable
// tenant has one WAL manager per shard (comp non-nil); a single-store tenant
// has exactly one.
type durableBackend struct {
	b    xmlsql.Backend
	comp *sharded.Sharded
	mgrs []*wal.Manager
	info *wal.RecoveryInfo
}

func (d *durableBackend) closeAll() {
	for _, m := range d.mgrs {
		m.Close()
	}
}

// openDurable recovers the tenant's data directory and builds a backend
// whose commits are logged through the recovered WAL manager(s). On a first
// boot (no snapshot) the Load/LoadBackend hook populates the store and a
// base checkpoint is written — the WAL refuses to commit batches before a
// snapshot exists, so a durable tenant is never in a state its log cannot
// rebuild. With Shards > 1 the instance is document-partitioned: each shard
// store recovers from its own log under DataDir/shard-<k>.
func openDurable(cfg TenantConfig) (*durableBackend, error) {
	if cfg.Shards > 1 {
		return openDurableSharded(cfg)
	}
	mgr, info, err := wal.Open(cfg.DataDir, cfg.WAL)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: recover %s: %w", cfg.Name, cfg.DataDir, err)
	}
	mem := backend.NewMemOn(mgr.Store())
	if err := mem.EnsureSchema(cfg.Schema); err != nil {
		mgr.Close()
		return nil, fmt.Errorf("server: tenant %q: ensure schema: %w", cfg.Name, err)
	}
	if !info.SnapshotLoaded {
		if err := runLoadHook(cfg, mem); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("server: tenant %q: initial load: %w", cfg.Name, err)
		}
		if err := mgr.Checkpoint(); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("server: tenant %q: base checkpoint: %w", cfg.Name, err)
		}
	}
	mem.SetCommitLog(mgr)
	return &durableBackend{b: mem, mgrs: []*wal.Manager{mgr}, info: info}, nil
}

// openDurableSharded is the sharded durable boot: per-shard WAL recovery,
// composite assembly, and either a first-boot partitioned load (no shard has
// a snapshot) or router adoption from the recovered stores (every shard
// has one). A mixed state means the data directory was partially wiped or
// assembled from different topologies — refuse to guess.
func openDurableSharded(cfg TenantConfig) (*durableBackend, error) {
	if cfg.Load != nil {
		return nil, fmt.Errorf("server: tenant %q: the Load(*Mem) hook cannot populate a sharded tenant; use LoadBackend", cfg.Name)
	}
	n := cfg.Shards
	mgrs := make([]*wal.Manager, 0, n)
	infos := make([]*wal.RecoveryInfo, 0, n)
	shards := make([]backend.Backend, 0, n)
	fail := func(err error) (*durableBackend, error) {
		for _, m := range mgrs {
			m.Close()
		}
		return nil, err
	}
	for k := 0; k < n; k++ {
		dir := filepath.Join(cfg.DataDir, fmt.Sprintf("shard-%d", k))
		mgr, info, err := wal.Open(dir, cfg.WAL)
		if err != nil {
			return fail(fmt.Errorf("server: tenant %q: recover shard %d (%s): %w", cfg.Name, k, dir, err))
		}
		mgrs = append(mgrs, mgr)
		infos = append(infos, info)
		shards = append(shards, backend.NewMemOn(mgr.Store()))
	}
	comp, err := sharded.New(shards, sharded.Options{})
	if err != nil {
		return fail(fmt.Errorf("server: tenant %q: %w", cfg.Name, err))
	}
	if err := comp.EnsureSchema(cfg.Schema); err != nil {
		return fail(fmt.Errorf("server: tenant %q: ensure schema: %w", cfg.Name, err))
	}
	loaded := 0
	for _, info := range infos {
		if info.SnapshotLoaded {
			loaded++
		}
	}
	switch {
	case loaded == 0:
		if cfg.LoadBackend != nil {
			if err := cfg.LoadBackend(comp); err != nil {
				return fail(fmt.Errorf("server: tenant %q: initial load: %w", cfg.Name, err))
			}
		}
		for k, mgr := range mgrs {
			if err := mgr.Checkpoint(); err != nil {
				return fail(fmt.Errorf("server: tenant %q: base checkpoint shard %d: %w", cfg.Name, k, err))
			}
		}
	case loaded == n:
		if err := comp.AdoptLoaded(cfg.Schema); err != nil {
			return fail(fmt.Errorf("server: tenant %q: %w", cfg.Name, err))
		}
	default:
		return fail(fmt.Errorf("server: tenant %q: inconsistent shard data dirs: %d of %d shards have snapshots", cfg.Name, loaded, n))
	}
	for k, sh := range shards {
		sh.(*backend.Mem).SetCommitLog(mgrs[k])
	}
	return &durableBackend{b: comp, comp: comp, mgrs: mgrs, info: mergeRecoveryInfo(infos)}, nil
}

// runLoadHook populates a first-boot single store through whichever hook the
// config set (LoadBackend preferred, Load kept for compatibility).
func runLoadHook(cfg TenantConfig, mem *backend.Mem) error {
	if cfg.LoadBackend != nil {
		return cfg.LoadBackend(mem)
	}
	if cfg.Load != nil {
		return cfg.Load(mem)
	}
	return nil
}

// mergeRecoveryInfo folds per-shard recovery outcomes into the tenant-level
// view: counts add, truncation anywhere is truncation, the footprint is the
// union (shard footprints are disjoint — shards partition tuples), and the
// footprint is complete only if every shard's is.
func mergeRecoveryInfo(infos []*wal.RecoveryInfo) *wal.RecoveryInfo {
	m := &wal.RecoveryInfo{SnapshotLoaded: true, TouchedComplete: true}
	for _, i := range infos {
		m.SnapshotLoaded = m.SnapshotLoaded && i.SnapshotLoaded
		m.SkippedSnapshots += i.SkippedSnapshots
		m.ReplayedBatches += i.ReplayedBatches
		if i.SnapshotLSN > m.SnapshotLSN {
			m.SnapshotLSN = i.SnapshotLSN
		}
		if i.LastSeq > m.LastSeq {
			m.LastSeq = i.LastSeq
		}
		m.TruncatedTail = m.TruncatedTail || i.TruncatedTail
		m.TouchedComplete = m.TouchedComplete && i.TouchedComplete
		m.Touched.Written = append(m.Touched.Written, i.Touched.Written...)
		m.Touched.Deleted = append(m.Touched.Deleted, i.Touched.Deleted...)
		if i.Elapsed > m.Elapsed {
			m.Elapsed = i.Elapsed
		}
	}
	return m
}

// verifyReplay is the verified-replay step: a recovery that replayed batches
// is not trusted until the integrity properties hold over what it touched.
// With a complete footprint the audit is incremental over the replayed
// tuples' P1–P3 neighborhoods — on a sharded tenant it routes each probe to
// the owning shard; an incomplete footprint demands a full audit. A clean
// audit promotes the planner to verified trust; a dirty one demotes it to
// violated, which puts serving into integrity safe mode.
func verifyReplay(p *xmlsql.Planner, s *xmlsql.Schema, d *durableBackend) (RecoveryState, error) {
	state := RecoveryRecovered
	if d.info.TruncatedTail {
		state = RecoveryTruncated
	}
	if d.info.ReplayedBatches == 0 {
		// Pure snapshot state: the snapshot is a byte-level copy of a store
		// that was already serving, so there is nothing new to verify. Trust
		// starts wherever the planner's policy puts it.
		return state, nil
	}
	ctx := context.Background()
	var clean bool
	if d.info.TouchedComplete {
		var probe integrity.Probe
		if d.comp != nil {
			rp, err := d.comp.IntegrityProbe()
			if err != nil {
				return "", fmt.Errorf("server: verify replay: %w", err)
			}
			probe = rp
		} else {
			probe = integrity.StoreProbe(d.mgrs[0].Store())
		}
		rep, err := integrity.AuditIncremental(ctx, probe, s, d.info.Touched)
		if err != nil {
			return "", fmt.Errorf("server: verify replay: %w", err)
		}
		clean = rep.Clean()
	} else {
		// Audit installs the verdict on the planner itself.
		rep, err := p.Audit(ctx)
		if err != nil {
			return "", fmt.Errorf("server: verify replay: %w", err)
		}
		clean = rep.Clean()
	}
	if !clean {
		p.SetTrustState(xmlsql.TrustViolated)
		return RecoveryViolated, nil
	}
	p.SetTrustState(xmlsql.TrustVerified)
	return state, nil
}
