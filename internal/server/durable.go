package server

import (
	"context"
	"fmt"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/wal"
)

// RecoveryState is a tenant's durability lifecycle, exposed per tenant on
// /healthz and /stats. Volatile tenants (no DataDir) stay "volatile"; a
// durable tenant passes through "recovering" while its log replays and lands
// on one of the terminal states.
type RecoveryState string

const (
	// RecoveryVolatile marks a tenant with no write-ahead log.
	RecoveryVolatile RecoveryState = "volatile"
	// RecoveryRecovering is the transient state while the snapshot loads,
	// the log suffix replays, and the verification audit runs.
	RecoveryRecovering RecoveryState = "recovering"
	// RecoveryRecovered is the clean terminal state: the log replayed whole
	// and (if anything was replayed) the audit over the replayed
	// neighborhoods passed.
	RecoveryRecovered RecoveryState = "recovered"
	// RecoveryTruncated means recovery succeeded but the log ended in a torn
	// or corrupt record that was truncated away; the batch it belonged to was
	// never acknowledged, so no acknowledged write was lost.
	RecoveryTruncated RecoveryState = "replay_truncated"
	// RecoveryViolated means the post-replay audit found violations: the
	// tenant serves in integrity safe mode until re-audited clean.
	RecoveryViolated RecoveryState = "replay_violated"
)

// durableBackend is what openDurable hands back to newTenant: the wired
// backend plus everything the verification step needs.
type durableBackend struct {
	mem  *backend.Mem
	mgr  *wal.Manager
	info *wal.RecoveryInfo
}

// openDurable recovers the tenant's data directory and builds a Mem backend
// whose commits are logged through the recovered WAL manager. On a first
// boot (no snapshot) the optional Load hook populates the store and a base
// checkpoint is taken — the WAL refuses to commit batches before a snapshot
// exists, so a durable tenant is never in a state its log cannot rebuild.
func openDurable(cfg TenantConfig) (*durableBackend, error) {
	mgr, info, err := wal.Open(cfg.DataDir, cfg.WAL)
	if err != nil {
		return nil, fmt.Errorf("server: tenant %q: recover %s: %w", cfg.Name, cfg.DataDir, err)
	}
	mem := backend.NewMemOn(mgr.Store())
	if err := mem.EnsureSchema(cfg.Schema); err != nil {
		mgr.Close()
		return nil, fmt.Errorf("server: tenant %q: ensure schema: %w", cfg.Name, err)
	}
	if !info.SnapshotLoaded {
		if cfg.Load != nil {
			if err := cfg.Load(mem); err != nil {
				mgr.Close()
				return nil, fmt.Errorf("server: tenant %q: initial load: %w", cfg.Name, err)
			}
		}
		if err := mgr.Checkpoint(); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("server: tenant %q: base checkpoint: %w", cfg.Name, err)
		}
	}
	mem.SetCommitLog(mgr)
	return &durableBackend{mem: mem, mgr: mgr, info: info}, nil
}

// verifyReplay is the verified-replay step: a recovery that replayed batches
// is not trusted until the integrity properties hold over what it touched.
// With a complete footprint the audit is incremental over the replayed
// tuples' P1–P3 neighborhoods; an incomplete footprint demands a full audit.
// A clean audit promotes the planner to verified trust; a dirty one demotes
// it to violated, which puts serving into integrity safe mode.
func verifyReplay(p *xmlsql.Planner, s *xmlsql.Schema, d *durableBackend) (RecoveryState, error) {
	state := RecoveryRecovered
	if d.info.TruncatedTail {
		state = RecoveryTruncated
	}
	if d.info.ReplayedBatches == 0 {
		// Pure snapshot state: the snapshot is a byte-level copy of a store
		// that was already serving, so there is nothing new to verify. Trust
		// starts wherever the planner's policy puts it.
		return state, nil
	}
	ctx := context.Background()
	var clean bool
	if d.info.TouchedComplete {
		rep, err := integrity.AuditIncremental(ctx, integrity.StoreProbe(d.mgr.Store()), s, d.info.Touched)
		if err != nil {
			return "", fmt.Errorf("server: verify replay: %w", err)
		}
		clean = rep.Clean()
	} else {
		// Audit installs the verdict on the planner itself.
		rep, err := p.Audit(ctx)
		if err != nil {
			return "", fmt.Errorf("server: verify replay: %w", err)
		}
		clean = rep.Clean()
	}
	if !clean {
		p.SetTrustState(xmlsql.TrustViolated)
		return RecoveryViolated, nil
	}
	p.SetTrustState(xmlsql.TrustVerified)
	return state, nil
}
