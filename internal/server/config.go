package server

import (
	"fmt"
	"strings"
)

// TenantSpec is the parsed form of one element of cmd/xmlserve's -tenants
// flag: "name=workload[:backend]". The workload is a built-in name (with
// the optional -edge suffix internal/cli understands); backend is "mem"
// (default) or "fakedb".
type TenantSpec struct {
	Name     string
	Workload string
	Backend  string
}

// ParseTenantSpecs parses the comma-separated -tenants flag. The caller
// materializes each spec (schema, generated document, loaded backend);
// parsing is separate so flag validation can fail fast with exit 2.
func ParseTenantSpecs(spec string) ([]TenantSpec, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("empty tenant spec")
	}
	var out []TenantSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, rest, ok := strings.Cut(part, "=")
		if !ok || name == "" || rest == "" {
			return nil, fmt.Errorf("tenant %q: want name=workload[:backend]", part)
		}
		workload, backendName, hasBackend := strings.Cut(rest, ":")
		if !hasBackend {
			backendName = "mem"
		}
		if workload == "" {
			return nil, fmt.Errorf("tenant %q: missing workload", part)
		}
		if backendName != "mem" && backendName != "fakedb" {
			return nil, fmt.Errorf("tenant %q: unknown backend %q (want mem or fakedb)", part, backendName)
		}
		if seen[name] {
			return nil, fmt.Errorf("tenant %q declared twice", name)
		}
		seen[name] = true
		out = append(out, TenantSpec{Name: name, Workload: workload, Backend: backendName})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty tenant spec")
	}
	return out, nil
}
