package engine_test

import (
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

func TestNotEqualAndNullSemantics(t *testing.T) {
	s := buildStore(t)
	// kind <> 1 keeps kind=2 but drops kind=NULL (SQL three-valued logic).
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols:  []sqlast.SelectItem{sqlast.Col("P", "id")},
		From:  []sqlast.FromItem{sqlast.From("P", "P")},
		Where: sqlast.Cmp{Op: sqlast.OpNe, Left: sqlast.ColRef{Table: "P", Column: "kind"}, Right: sqlast.IntLit(1)},
	})
	res := mustRun(t, s, q)
	if res.Len() != 1 || res.Rows[0][0].AsInt() != 2 {
		t.Errorf("kind <> 1 returned %d rows", res.Len())
	}
	// The predicate-extension form: kind <> 1 OR kind IS NULL keeps both.
	q = sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("P", "id")},
		From: []sqlast.FromItem{sqlast.From("P", "P")},
		Where: sqlast.Disj(
			sqlast.Cmp{Op: sqlast.OpNe, Left: sqlast.ColRef{Table: "P", Column: "kind"}, Right: sqlast.IntLit(1)},
			sqlast.IsNull{Left: sqlast.ColRef{Table: "P", Column: "kind"}},
		),
	})
	if res := mustRun(t, s, q); res.Len() != 2 {
		t.Errorf("kind <> 1 OR IS NULL returned %d rows, want 2", res.Len())
	}
}

func TestUnionArityMismatch(t *testing.T) {
	s := buildStore(t)
	q := &sqlast.Query{Selects: []*sqlast.Select{
		{Cols: []sqlast.SelectItem{sqlast.Col("C", "v")}, From: []sqlast.FromItem{sqlast.From("C", "C")}},
		{Cols: []sqlast.SelectItem{sqlast.Col("C", "v"), sqlast.Col("C", "id")}, From: []sqlast.FromItem{sqlast.From("C", "C")}},
	}}
	if _, err := engine.Execute(s, q); err == nil {
		t.Error("union arity mismatch accepted")
	}
}

func TestDuplicateCTEName(t *testing.T) {
	s := buildStore(t)
	body := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Star("C")},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
	})
	q := &sqlast.Query{
		With: []sqlast.CTE{{Name: "x", Body: body}, {Name: "x", Body: body}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("x", "v")},
			From: []sqlast.FromItem{sqlast.From("x", "x")},
		}},
	}
	if _, err := engine.Execute(s, q); err == nil {
		t.Error("duplicate cte accepted")
	}
}

func TestCTENameScopedToQuery(t *testing.T) {
	s := buildStore(t)
	body := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Star("C")},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
	})
	q := &sqlast.Query{
		With: []sqlast.CTE{{Name: "scoped", Body: body}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("scoped", "v")},
			From: []sqlast.FromItem{sqlast.From("scoped", "scoped")},
		}},
	}
	if _, err := engine.Execute(s, q); err != nil {
		t.Fatal(err)
	}
	// The CTE must not leak into subsequent executions.
	leak := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("scoped", "v")},
		From: []sqlast.FromItem{sqlast.From("scoped", "scoped")},
	})
	if _, err := engine.Execute(s, leak); err == nil {
		t.Error("cte leaked across executions")
	}
}

func TestEmptyFromRejected(t *testing.T) {
	s := buildStore(t)
	if _, err := engine.Execute(s, sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{{Expr: sqlast.IntLit(1), As: "x"}},
	})); err == nil {
		t.Error("empty FROM accepted")
	}
}

func TestInPredicate(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
		Where: sqlast.In{
			Left: sqlast.ColRef{Table: "C", Column: "v"},
			List: []sqlast.Lit{sqlast.StringLit("a"), sqlast.StringLit("d")},
		},
	})
	res := mustRun(t, s, q)
	if got := res.Strings(); len(got) != 2 || got[0] != "a" || got[1] != "d" {
		t.Errorf("IN returned %v", got)
	}
}

func TestEmptyQueryProducesEmptyResult(t *testing.T) {
	s := buildStore(t)
	res, err := engine.Execute(s, &sqlast.Query{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 0 {
		t.Errorf("empty query returned %d rows", res.Len())
	}
}

func TestRecursiveCTEBoundOnCyclicData(t *testing.T) {
	// Cyclic parent links would make the fixpoint diverge; the engine must
	// stop at MaxRecursionRounds with an error instead of hanging.
	s := relational.NewStore()
	tbl, err := s.CreateTable(&relational.TableSchema{
		Name: "N",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(relational.Row{relational.Int(1), relational.Int(2)})
	tbl.MustInsert(relational.Row{relational.Int(2), relational.Int(1)})
	q := &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "d",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{
				{
					Cols:  []sqlast.SelectItem{sqlast.Col("N", "id")},
					From:  []sqlast.FromItem{sqlast.From("N", "N")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "N", Column: "id"}, sqlast.IntLit(1)),
				},
				{
					Cols: []sqlast.SelectItem{sqlast.Col("N", "id")},
					From: []sqlast.FromItem{sqlast.From("d", "d"), sqlast.From("N", "N")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "N", Column: "parentid"},
						sqlast.ColRef{Table: "d", Column: "id"}),
				},
			}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("d", "id")},
			From: []sqlast.FromItem{sqlast.From("d", "d")},
		}},
	}
	if _, err := engine.Execute(s, q); err == nil {
		t.Error("divergent recursion not bounded")
	}
}

func TestIndexJoinMatchesHashJoin(t *testing.T) {
	s := buildStore(t)
	if err := s.BuildJoinIndexes("parentid"); err != nil {
		t.Fatal(err)
	}
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v"), sqlast.Col("P", "kind")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"},
			sqlast.ColRef{Table: "P", Column: "id"}),
	})
	indexed, err := engine.ExecuteOpts(s, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := engine.ExecuteOpts(s, q, engine.Options{DisableIndexes: true})
	if err != nil {
		t.Fatal(err)
	}
	if !indexed.MultisetEqual(plain) {
		t.Errorf("indexed join differs from hash join:\n%s", indexed.MultisetDiff(plain))
	}
	if indexed.Len() != 3 {
		t.Errorf("indexed join returned %d rows", indexed.Len())
	}
}

func TestIndexJoinSkippedWithLocalFilter(t *testing.T) {
	// A filtered right side must not use the (unfiltered) index path.
	s := buildStore(t)
	if err := s.BuildJoinIndexes("parentid"); err != nil {
		t.Fatal(err)
	}
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Conj(
			sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.ColRef{Table: "P", Column: "id"}),
			sqlast.Eq(sqlast.ColRef{Table: "C", Column: "v"}, sqlast.StringLit("a")),
		),
	})
	res := mustRun(t, s, q)
	if res.Len() != 1 || res.Strings()[0] != "a" {
		t.Errorf("filtered indexed query returned %v", res.Strings())
	}
}
