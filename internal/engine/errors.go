package engine

import "fmt"

// Resource names the execution guard a ResourceError reports.
type Resource string

const (
	// ResourceRows is the Options.MaxRows guard on materialized rows.
	ResourceRows Resource = "rows"
	// ResourceCTEIterations is the Options.MaxCTEIterations guard on
	// recursive CTE rounds.
	ResourceCTEIterations Resource = "cte-iterations"
)

// ResourceError reports that a query exceeded one of the execution resource
// guards (Options.MaxRows, Options.MaxCTEIterations). It is a distinct type
// so servers can tell a budget-exceeded query — the caller's query is too
// expensive and retrying it cannot help — apart from transient backend
// faults, which are retryable, and from cancellation, which the caller asked
// for. internal/resilient classifies it as ClassBudget and never retries it.
type ResourceError struct {
	// Resource is which guard tripped.
	Resource Resource
	// Limit is the configured bound that was exceeded.
	Limit int
	// Detail locates the violation (e.g. the recursive CTE's name).
	Detail string
}

// Error implements error.
func (e *ResourceError) Error() string {
	msg := fmt.Sprintf("engine: query exceeded %s limit %d", e.Resource, e.Limit)
	if e.Detail != "" {
		msg += " (" + e.Detail + ")"
	}
	return msg
}
