package engine_test

import (
	"context"
	"fmt"
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// memoStore builds a three-level chain A(id) <- B(id,parentid,code) <-
// C(id,parentid,v) with fanout rows, so shared join prefixes have real work
// to save.
func memoStore(t *testing.T) *relational.Store {
	t.Helper()
	s := relational.NewStore()
	a, err := s.CreateTable(&relational.TableSchema{
		Name: "A",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.CreateTable(&relational.TableSchema{
		Name: "B",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "code", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := s.CreateTable(&relational.TableSchema{
		Name: "C",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "v", Kind: relational.KindString},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	id := int64(100)
	for ai := int64(1); ai <= 3; ai++ {
		a.MustInsert(relational.Row{relational.Int(ai)})
		for bi := int64(0); bi < 4; bi++ {
			id++
			bid := id
			b.MustInsert(relational.Row{relational.Int(bid), relational.Int(ai), relational.Int(bi % 3)})
			for ci := int64(0); ci < 3; ci++ {
				id++
				c.MustInsert(relational.Row{relational.Int(id), relational.Int(bid), relational.String(fmt.Sprintf("v%d", ci))})
			}
		}
	}
	return s
}

// unionBranches builds a UNION ALL whose branches all share the A⋈B⋈C chain
// and differ only in a filter on B.code.
func unionBranches(codes ...int64) *sqlast.Query {
	q := &sqlast.Query{}
	for _, code := range codes {
		q.Selects = append(q.Selects, &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("c", "v")},
			From: []sqlast.FromItem{
				{Source: "A", Alias: "a"},
				{Source: "B", Alias: "b"},
				{Source: "C", Alias: "c"},
			},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "b", Column: "parentid"}, sqlast.ColRef{Table: "a", Column: "id"}),
				sqlast.Eq(sqlast.ColRef{Table: "c", Column: "parentid"}, sqlast.ColRef{Table: "b", Column: "id"}),
				sqlast.Eq(sqlast.ColRef{Table: "b", Column: "code"}, sqlast.IntLit(code)),
			),
		})
	}
	return q
}

func TestMemoSharesJoinPrefix(t *testing.T) {
	store := memoStore(t)
	q := unionBranches(0, 1, 2)
	res, _, err := engine.ExecuteCtxStats(context.Background(), store, q, engine.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() == 0 {
		t.Fatal("expected rows")
	}

	// Branches with identical join prefixes (here: fully identical branches,
	// the recursive-translation shape) must share the computation.
	dup := unionBranches(1, 1, 1)
	res2, stats2, err := engine.ExecuteCtxStats(context.Background(), store, dup, engine.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats2.SharedHits == 0 {
		t.Fatalf("identical branches should hit the memo: %+v", stats2)
	}
	if stats2.SharedSavedRows == 0 {
		t.Fatalf("hits should report saved rows: %+v", stats2)
	}
	one, _, err := engine.ExecuteCtxStats(context.Background(), store, unionBranches(1), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Len() != 3*one.Len() {
		t.Fatalf("3 identical branches must triple the multiset: %d vs 3*%d", res2.Len(), one.Len())
	}
}

func TestMemoEquivalence(t *testing.T) {
	store := memoStore(t)
	queries := []*sqlast.Query{
		unionBranches(0, 1, 2),
		unionBranches(1, 1, 2),
		unionBranches(2, 2, 2),
	}
	for qi, q := range queries {
		var results []*engine.Result
		for _, opts := range []engine.Options{
			{Parallelism: 1},
			{Parallelism: 4},
			{Parallelism: 1, DisableMemo: true},
			{Parallelism: 4, DisableMemo: true},
		} {
			r, _, err := engine.ExecuteCtxStats(context.Background(), store, q, opts)
			if err != nil {
				t.Fatalf("query %d opts %+v: %v", qi, opts, err)
			}
			results = append(results, r)
		}
		for i := 1; i < len(results); i++ {
			if !results[0].MultisetEqual(results[i]) {
				t.Fatalf("query %d: mode %d differs:\n%s", qi, i, results[0].MultisetDiff(results[i]))
			}
		}
	}
}

func TestMemoSingleFlightUnderParallelism(t *testing.T) {
	store := memoStore(t)
	// 8 identical branches, parallel workers: single-flight means the shared
	// prefix is computed at most once per level; everyone else hits or waits.
	q := unionBranches(1, 1, 1, 1, 1, 1, 1, 1)
	res, stats, err := engine.ExecuteCtxStats(context.Background(), store, q, engine.Options{Parallelism: 8})
	if err != nil {
		t.Fatal(err)
	}
	one, _, err := engine.ExecuteCtxStats(context.Background(), store, unionBranches(1), engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 8*one.Len() {
		t.Fatalf("multiset multiplicity broken: %d vs 8*%d", res.Len(), one.Len())
	}
	// Branch pipeline has 2 memoizable levels (B join, C join); each distinct
	// key is computed exactly once.
	if stats.SharedMisses > 2 {
		t.Fatalf("single flight violated: %d misses for 2 distinct prefixes", stats.SharedMisses)
	}
	if stats.SharedHits < 8*2-2 {
		t.Fatalf("expected %d hits, got %+v", 8*2-2, stats)
	}
}

func TestMemoDisabled(t *testing.T) {
	store := memoStore(t)
	q := unionBranches(1, 1, 1)
	_, stats, err := engine.ExecuteCtxStats(context.Background(), store, q, engine.Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.SharedHits != 0 || stats.SharedMisses != 0 {
		t.Fatalf("disabled memo must not count: %+v", stats)
	}
}

func TestMemoRecursiveCTEEpochs(t *testing.T) {
	// WITH RECURSIVE r AS (seed UNION ALL step over r): every round rebinds
	// r, so memo entries from round k must not serve round k+1. Equivalence
	// with the memo disabled is the witness.
	store := memoStore(t)
	rec := &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "r",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{
				{
					Cols:  []sqlast.SelectItem{sqlast.Col("a", "id")},
					From:  []sqlast.FromItem{{Source: "A", Alias: "a"}},
					Where: sqlast.Eq(sqlast.ColRef{Table: "a", Column: "id"}, sqlast.IntLit(1)),
				},
				{
					Cols: []sqlast.SelectItem{sqlast.Col("b", "id")},
					From: []sqlast.FromItem{{Source: "r", Alias: "r"}, {Source: "B", Alias: "b"}},
					Where: sqlast.Conj(
						sqlast.Eq(sqlast.ColRef{Table: "b", Column: "parentid"}, sqlast.ColRef{Table: "r", Column: "id"}),
					),
				},
			}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("r", "id")},
			From: []sqlast.FromItem{{Source: "r", Alias: "r"}},
		}},
	}
	on, _, err := engine.ExecuteCtxStats(context.Background(), store, rec, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	off, _, err := engine.ExecuteCtxStats(context.Background(), store, rec, engine.Options{DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	if !on.MultisetEqual(off) {
		t.Fatalf("memo broke recursive CTE semantics:\n%s", on.MultisetDiff(off))
	}
	if on.Len() == 0 {
		t.Fatal("recursive query should return rows")
	}
}

func TestMemoErrorPropagates(t *testing.T) {
	store := memoStore(t)
	// Branches referencing a missing table share a prefix key; the leader's
	// error must propagate to every waiter, not hang them.
	q := &sqlast.Query{}
	for i := 0; i < 4; i++ {
		q.Selects = append(q.Selects, &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("x", "id")},
			From: []sqlast.FromItem{{Source: "A", Alias: "a"}, {Source: "Nope", Alias: "x"}},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "x", Column: "parentid"}, sqlast.ColRef{Table: "a", Column: "id"}),
			),
		})
	}
	if _, err := engine.ExecuteOpts(store, q, engine.Options{Parallelism: 4}); err == nil {
		t.Fatal("expected an error for a missing table")
	}
}
