package engine_test

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// cyclicEdges builds an E(src, dst) table holding a cycle, so a reachability
// CTE's fixpoint never converges: every round re-derives the cycle's nodes
// and the delta never empties. This is the adversarial instance the paper's
// acyclicity assumption rules out — exactly what a serving layer must survive.
func cyclicEdges(t *testing.T) *relational.Store {
	t.Helper()
	s := relational.NewStore()
	edge, err := s.CreateTable(&relational.TableSchema{
		Name: "E",
		Columns: []relational.Column{
			{Name: "src", Kind: relational.KindInt},
			{Name: "dst", Kind: relational.KindInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 1}} {
		edge.MustInsert(relational.Row{relational.Int(e[0]), relational.Int(e[1])})
	}
	return s
}

// reachQuery is WITH RECURSIVE reach AS (E from 1 UNION ALL step) SELECT *.
func reachQuery() *sqlast.Query {
	return &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "reach",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{
				{
					Cols:  []sqlast.SelectItem{sqlast.Col("E", "dst")},
					From:  []sqlast.FromItem{sqlast.From("E", "E")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "E", Column: "src"}, sqlast.IntLit(1)),
				},
				{
					Cols: []sqlast.SelectItem{sqlast.Col("E", "dst")},
					From: []sqlast.FromItem{sqlast.From("reach", "reach"), sqlast.From("E", "E")},
					Where: sqlast.Eq(
						sqlast.ColRef{Table: "E", Column: "src"},
						sqlast.ColRef{Table: "reach", Column: "dst"},
					),
				},
			}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("reach", "dst")},
			From: []sqlast.FromItem{sqlast.From("reach", "reach")},
		}},
	}
}

// bigStore builds a single-column table large enough that a triple cross
// join is effectively unbounded work (8e9 output rows), forcing cancellation
// to land mid-branch rather than between branches.
func bigStore(t *testing.T, rows int) *relational.Store {
	t.Helper()
	s := relational.NewStore()
	r, err := s.CreateTable(&relational.TableSchema{
		Name:    "R",
		Columns: []relational.Column{{Name: "n", Kind: relational.KindInt}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < rows; i++ {
		r.MustInsert(relational.Row{relational.Int(int64(i))})
	}
	return s
}

// crossSelect is SELECT a.n FROM R a, R b, R c — a deliberate row explosion.
func crossSelect() *sqlast.Select {
	return &sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("a", "n")},
		From: []sqlast.FromItem{sqlast.From("R", "a"), sqlast.From("R", "b"), sqlast.From("R", "c")},
	}
}

// TestCancelMidRecursiveCTE cancels a diverging recursive CTE and requires
// the engine to stop within the test's own (generous) deadline with
// context.Canceled, instead of looping toward MaxRecursionRounds.
func TestCancelMidRecursiveCTE(t *testing.T) {
	s := cyclicEdges(t)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := engine.ExecuteCtx(ctx, s, reachQuery(), engine.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v; not prompt", elapsed)
	}
}

// TestDeadlineMidParallelUnion runs a union of row-explosion branches under a
// short deadline and requires a prompt DeadlineExceeded from inside the
// branches' join loops, at every parallelism level.
func TestDeadlineMidParallelUnion(t *testing.T) {
	s := bigStore(t, 2000)
	q := &sqlast.Query{Selects: []*sqlast.Select{
		crossSelect(), crossSelect(), crossSelect(), crossSelect(),
	}}
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithTimeout(context.Background(), 25*time.Millisecond)
		start := time.Now()
		_, err := engine.ExecuteCtx(ctx, s, q, engine.Options{Parallelism: par})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("parallelism %d: err = %v, want context.DeadlineExceeded", par, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Fatalf("parallelism %d: deadline abort took %v; not prompt", par, elapsed)
		}
	}
}

// TestNoGoroutineLeakAfterCancel repeatedly cancels parallel queries and
// checks the goroutine count settles back to its baseline: workers must exit
// on the stop flag rather than grinding through remaining branches or
// blocking forever. Run with -race.
func TestNoGoroutineLeakAfterCancel(t *testing.T) {
	s := bigStore(t, 2000)
	q := &sqlast.Query{Selects: []*sqlast.Select{
		crossSelect(), crossSelect(), crossSelect(), crossSelect(),
		crossSelect(), crossSelect(), crossSelect(), crossSelect(),
	}}
	before := runtime.NumGoroutine()
	for i := 0; i < 10; i++ {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
		_, err := engine.ExecuteCtx(ctx, s, q, engine.Options{Parallelism: 4})
		cancel()
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("iteration %d: err = %v, want context.DeadlineExceeded", i, err)
		}
	}
	// Workers exit via wg.Wait before ExecuteCtx returns, so any residue is a
	// leak. Allow the runtime a moment to reap exiting goroutines.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after cancelled parallel queries",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMaxCTEIterationsTypedError bounds the diverging fixpoint with
// MaxCTEIterations and requires the typed *ResourceError, not a hang and not
// a stringly error.
func TestMaxCTEIterationsTypedError(t *testing.T) {
	s := cyclicEdges(t)
	_, err := engine.ExecuteCtx(context.Background(), s, reachQuery(),
		engine.Options{MaxCTEIterations: 10})
	var re *engine.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *engine.ResourceError", err)
	}
	if re.Resource != engine.ResourceCTEIterations || re.Limit != 10 {
		t.Fatalf("ResourceError = %+v, want cte-iterations limit 10", re)
	}
	if !strings.Contains(re.Error(), "reach") {
		t.Errorf("error %q does not name the diverging cte", re.Error())
	}
}

// TestMaxRowsBudget caps materialized rows. The serial and parallel paths
// share one atomic budget, so both must trip it.
func TestMaxRowsBudget(t *testing.T) {
	s := bigStore(t, 200)
	q := &sqlast.Query{Selects: []*sqlast.Select{crossSelect(), crossSelect()}}
	for _, par := range []int{1, 4} {
		_, err := engine.ExecuteCtx(context.Background(), s, q,
			engine.Options{Parallelism: par, MaxRows: 50000})
		var re *engine.ResourceError
		if !errors.As(err, &re) {
			t.Fatalf("parallelism %d: err = %v, want *engine.ResourceError", par, err)
		}
		if re.Resource != engine.ResourceRows || re.Limit != 50000 {
			t.Fatalf("parallelism %d: ResourceError = %+v, want rows limit 50000", par, re)
		}
	}
	// Under the budget, the same query succeeds — the guard must not
	// undercount or misfire.
	small := &sqlast.Query{Selects: []*sqlast.Select{{
		Cols: []sqlast.SelectItem{sqlast.Col("a", "n")},
		From: []sqlast.FromItem{sqlast.From("R", "a")},
	}}}
	res, err := engine.ExecuteCtx(context.Background(), s, small,
		engine.Options{MaxRows: 50000})
	if err != nil {
		t.Fatalf("under-budget query failed: %v", err)
	}
	if res.Len() != 200 {
		t.Fatalf("under-budget query returned %d rows, want 200", res.Len())
	}
}

// TestMaxRowsRecursiveCTE caps a diverging recursive CTE by row volume
// alone: even without an iteration bound, accumulation must trip MaxRows.
func TestMaxRowsRecursiveCTE(t *testing.T) {
	s := cyclicEdges(t)
	_, err := engine.ExecuteCtx(context.Background(), s, reachQuery(),
		engine.Options{MaxRows: 1000})
	var re *engine.ResourceError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *engine.ResourceError", err)
	}
	if re.Resource != engine.ResourceRows {
		t.Fatalf("Resource = %q, want rows", re.Resource)
	}
}

// TestUnionBranchPanicContained feeds the executor a poisoned (nil) branch:
// the worker must convert the panic into a per-branch error instead of
// killing the process, in both serial and parallel modes.
func TestUnionBranchPanicContained(t *testing.T) {
	s := bigStore(t, 10)
	ok := &sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("a", "n")},
		From: []sqlast.FromItem{sqlast.From("R", "a")},
	}
	q := &sqlast.Query{Selects: []*sqlast.Select{ok, nil, ok}}
	for _, par := range []int{1, 4} {
		_, err := engine.ExecuteCtx(context.Background(), s, q, engine.Options{Parallelism: par})
		if err == nil || !strings.Contains(err.Error(), "panic evaluating union branch") {
			t.Fatalf("parallelism %d: err = %v, want contained panic error", par, err)
		}
	}
}

// TestPreCancelledContext returns immediately without touching the store.
func TestPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := engine.ExecuteCtx(ctx, relational.NewStore(), &sqlast.Query{}, engine.Options{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
