package engine_test

import (
	"strings"
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

func buildStore(t *testing.T) *relational.Store {
	t.Helper()
	s := relational.NewStore()
	parent, err := s.CreateTable(&relational.TableSchema{
		Name: "P",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "kind", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	child, err := s.CreateTable(&relational.TableSchema{
		Name: "C",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "v", Kind: relational.KindString},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	// P: 1 (kind 1), 2 (kind 2), 3 (kind NULL)
	parent.MustInsert(relational.Row{relational.Int(1), relational.Null, relational.Int(1)})
	parent.MustInsert(relational.Row{relational.Int(2), relational.Null, relational.Int(2)})
	parent.MustInsert(relational.Row{relational.Int(3), relational.Null, relational.Null})
	// C: children 10,11 under 1; 12 under 2; 13 orphan (parent NULL)
	child.MustInsert(relational.Row{relational.Int(10), relational.Int(1), relational.String("a")})
	child.MustInsert(relational.Row{relational.Int(11), relational.Int(1), relational.String("b")})
	child.MustInsert(relational.Row{relational.Int(12), relational.Int(2), relational.String("c")})
	child.MustInsert(relational.Row{relational.Int(13), relational.Null, relational.String("d")})
	return s
}

func mustRun(t *testing.T, s *relational.Store, q *sqlast.Query) *engine.Result {
	t.Helper()
	res, err := engine.Execute(s, q)
	if err != nil {
		t.Fatalf("execute: %v\n%s", err, q.SQL())
	}
	return res
}

func TestScanWithFilter(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols:  []sqlast.SelectItem{sqlast.Col("C", "v")},
		From:  []sqlast.FromItem{sqlast.From("C", "C")},
		Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.IntLit(1)),
	})
	res := mustRun(t, s, q)
	if got := res.Strings(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Errorf("got %v", got)
	}
}

func TestHashJoin(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Conj(
			sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.ColRef{Table: "P", Column: "id"}),
			sqlast.Eq(sqlast.ColRef{Table: "P", Column: "kind"}, sqlast.IntLit(1)),
		),
	})
	res := mustRun(t, s, q)
	if got := res.Strings(); len(got) != 2 || got[0] != "a" {
		t.Errorf("got %v", got)
	}
}

func TestJoinNullNeverMatches(t *testing.T) {
	s := buildStore(t)
	// Orphan child (parentid NULL) must not join any parent, including the
	// NULL-kind parent.
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"},
			sqlast.ColRef{Table: "P", Column: "id"}),
	})
	res := mustRun(t, s, q)
	if res.Len() != 3 {
		t.Errorf("join returned %d rows, want 3 (orphan excluded)", res.Len())
	}
}

func TestNestedLoopMatchesHashJoin(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v"), sqlast.Col("P", "kind")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"},
			sqlast.ColRef{Table: "P", Column: "id"}),
	})
	hash, err := engine.ExecuteOpts(s, q, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	nested, err := engine.ExecuteOpts(s, q, engine.Options{ForceNestedLoop: true})
	if err != nil {
		t.Fatal(err)
	}
	if !hash.MultisetEqual(nested) {
		t.Errorf("hash and nested-loop joins disagree:\n%s", hash.MultisetDiff(nested))
	}
}

func TestCartesianProduct(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("P", "id"), sqlast.Col("C", "id")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
	})
	res := mustRun(t, s, q)
	if res.Len() != 3*4 {
		t.Errorf("cartesian product returned %d rows, want 12", res.Len())
	}
}

func TestUnionAllKeepsDuplicates(t *testing.T) {
	s := buildStore(t)
	sel := &sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
	}
	q := &sqlast.Query{Selects: []*sqlast.Select{sel, sel}}
	res := mustRun(t, s, q)
	if res.Len() != 8 {
		t.Errorf("union all returned %d rows, want 8", res.Len())
	}
}

func TestOrAcrossAliases(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
		Where: sqlast.Conj(
			sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.ColRef{Table: "P", Column: "id"}),
			sqlast.Disj(
				sqlast.Eq(sqlast.ColRef{Table: "P", Column: "kind"}, sqlast.IntLit(2)),
				sqlast.Eq(sqlast.ColRef{Table: "C", Column: "v"}, sqlast.StringLit("a")),
			),
		),
	})
	res := mustRun(t, s, q)
	if got := res.Strings(); len(got) != 2 || got[0] != "a" || got[1] != "c" {
		t.Errorf("got %v", got)
	}
}

func TestStarProjection(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Star("C")},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
	})
	res := mustRun(t, s, q)
	if len(res.Cols) != 3 || res.Cols[2] != "v" {
		t.Errorf("star projection columns = %v", res.Cols)
	}
}

func TestCTE(t *testing.T) {
	s := buildStore(t)
	q := &sqlast.Query{
		With: []sqlast.CTE{{
			Name: "kids",
			Body: sqlast.SingleSelect(&sqlast.Select{
				Cols:  []sqlast.SelectItem{sqlast.Star("C")},
				From:  []sqlast.FromItem{sqlast.From("C", "C")},
				Where: sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.IntLit(1)),
			}),
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("K", "v")},
			From: []sqlast.FromItem{sqlast.From("kids", "K")},
		}},
	}
	res := mustRun(t, s, q)
	if res.Len() != 2 {
		t.Errorf("cte query returned %d rows, want 2", res.Len())
	}
}

// buildChainStore creates a parent-of chain encoded in one table, for
// recursion tests: 1 <- 2 <- 3 <- 4 <- 5.
func buildChainStore(t *testing.T) *relational.Store {
	t.Helper()
	s := relational.NewStore()
	tbl, err := s.CreateTable(&relational.TableSchema{
		Name: "N",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		t.Fatal(err)
	}
	tbl.MustInsert(relational.Row{relational.Int(1), relational.Null})
	for i := int64(2); i <= 5; i++ {
		tbl.MustInsert(relational.Row{relational.Int(i), relational.Int(i - 1)})
	}
	return s
}

func TestRecursiveCTEFixpoint(t *testing.T) {
	s := buildChainStore(t)
	// All descendants of node 1 (excluding 1): with recursive d as
	// (select id from N where parentid = 1 union all
	//  select N.id from d, N where N.parentid = d.id) select id from d.
	q := &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "d",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{
				{
					Cols:  []sqlast.SelectItem{sqlast.Col("N", "id")},
					From:  []sqlast.FromItem{sqlast.From("N", "N")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "N", Column: "parentid"}, sqlast.IntLit(1)),
				},
				{
					Cols: []sqlast.SelectItem{sqlast.Col("N", "id")},
					From: []sqlast.FromItem{sqlast.From("d", "d"), sqlast.From("N", "N")},
					Where: sqlast.Eq(sqlast.ColRef{Table: "N", Column: "parentid"},
						sqlast.ColRef{Table: "d", Column: "id"}),
				},
			}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("d", "id")},
			From: []sqlast.FromItem{sqlast.From("d", "d")},
		}},
	}
	res := mustRun(t, s, q)
	if res.Len() != 4 {
		t.Errorf("recursion found %d descendants, want 4", res.Len())
	}
}

func TestRecursiveCTEWithoutBaseErrors(t *testing.T) {
	s := buildChainStore(t)
	q := &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "d",
			Recursive: true,
			Body: &sqlast.Query{Selects: []*sqlast.Select{{
				Cols: []sqlast.SelectItem{sqlast.Col("N", "id")},
				From: []sqlast.FromItem{sqlast.From("d", "d"), sqlast.From("N", "N")},
			}}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("d", "id")},
			From: []sqlast.FromItem{sqlast.From("d", "d")},
		}},
	}
	if _, err := engine.Execute(s, q); err == nil {
		t.Error("recursive CTE without base branch accepted")
	}
}

func TestErrorsOnUnknownThings(t *testing.T) {
	s := buildStore(t)
	cases := []*sqlast.Select{
		{Cols: []sqlast.SelectItem{sqlast.Col("X", "v")}, From: []sqlast.FromItem{sqlast.From("Nope", "X")}},
		{Cols: []sqlast.SelectItem{sqlast.Col("C", "nosuch")}, From: []sqlast.FromItem{sqlast.From("C", "C")}},
		{Cols: []sqlast.SelectItem{sqlast.Col("C", "v")}, From: []sqlast.FromItem{sqlast.From("C", "C"), sqlast.From("P", "C")}},
	}
	for i, sel := range cases {
		if _, err := engine.Execute(s, sqlast.SingleSelect(sel)); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestLiteralProjection(t *testing.T) {
	s := buildStore(t)
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{
			{Expr: sqlast.IntLit(7), As: "node"},
			sqlast.Col("C", "id"),
		},
		From: []sqlast.FromItem{sqlast.From("C", "C")},
	})
	res := mustRun(t, s, q)
	if res.Cols[0] != "node" {
		t.Errorf("literal projection name = %q", res.Cols[0])
	}
	for _, row := range res.Rows {
		if row[0].AsInt() != 7 {
			t.Errorf("literal projection value = %v", row[0])
		}
	}
}

func TestAmbiguousBareColumn(t *testing.T) {
	s := buildStore(t)
	// "id" exists in both P and C: a bare reference must error.
	q := sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{{Expr: sqlast.ColRef{Column: "id"}}},
		From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
	})
	_, err := engine.Execute(s, q)
	if err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("expected ambiguity error, got %v", err)
	}
}

func TestResultHelpers(t *testing.T) {
	a := &engine.Result{Rows: []relational.Row{{relational.Int(1)}, {relational.Int(2)}}}
	b := &engine.Result{Rows: []relational.Row{{relational.Int(2)}, {relational.Int(1)}}}
	c := &engine.Result{Rows: []relational.Row{{relational.Int(1)}, {relational.Int(1)}}}
	if !a.MultisetEqual(b) {
		t.Error("order must not matter")
	}
	if a.MultisetEqual(c) {
		t.Error("multiplicities must matter")
	}
	if diff := a.MultisetDiff(c); !strings.Contains(diff, "only in") {
		t.Errorf("diff = %q", diff)
	}
	if rows := a.SortedRows(); rows[0][0].AsInt() != 1 || rows[1][0].AsInt() != 2 {
		t.Error("SortedRows out of order")
	}
}
