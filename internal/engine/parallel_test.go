package engine_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// wideUnion builds a UNION ALL with one branch per parent kind plus an
// unconditioned branch, so parallel evaluation has real work to interleave.
func wideUnion() *sqlast.Query {
	branch := func(kind int64) *sqlast.Select {
		return &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
			From: []sqlast.FromItem{sqlast.From("P", "P"), sqlast.From("C", "C")},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "C", Column: "parentid"}, sqlast.ColRef{Table: "P", Column: "id"}),
				sqlast.Eq(sqlast.ColRef{Table: "P", Column: "kind"}, sqlast.IntLit(kind)),
			),
		}
	}
	q := &sqlast.Query{}
	q.Selects = append(q.Selects,
		branch(1), branch(2),
		&sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("C", "v")},
			From: []sqlast.FromItem{sqlast.From("C", "C")},
		},
		branch(1), branch(2), branch(99),
	)
	return q
}

// TestParallelUnionMatchesSerialOrder asserts the determinism contract:
// parallel execution returns rows in exactly the serial row order, for every
// parallelism level.
func TestParallelUnionMatchesSerialOrder(t *testing.T) {
	s := buildStore(t)
	q := wideUnion()
	serial, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("fixture produced no rows")
	}
	for _, par := range []int{0, 2, 3, 8} {
		res, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: par})
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		if !reflect.DeepEqual(res.Rows, serial.Rows) {
			t.Fatalf("parallelism %d: row order differs from serial\nserial:   %v\nparallel: %v",
				par, serial.Rows, res.Rows)
		}
	}
}

// TestParallelUnionErrorDeterministic asserts that the error surfaced under
// parallel evaluation is the first branch-order error, as in serial mode.
func TestParallelUnionErrorDeterministic(t *testing.T) {
	s := buildStore(t)
	bad := func(col string) *sqlast.Select {
		return &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("C", col)},
			From: []sqlast.FromItem{sqlast.From("C", "C")},
		}
	}
	q := &sqlast.Query{Selects: []*sqlast.Select{
		bad("v"), bad("nope1"), bad("nope2"), bad("v"),
	}}
	serialErr := func() error {
		_, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 1})
		return err
	}()
	if serialErr == nil {
		t.Fatal("expected an error")
	}
	for i := 0; i < 20; i++ {
		_, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 4})
		if err == nil || err.Error() != serialErr.Error() {
			t.Fatalf("parallel error %v, want %v", err, serialErr)
		}
	}
}

// TestConcurrentExecute runs many whole queries concurrently against one
// shared store (the serving pattern); run with -race.
func TestConcurrentExecute(t *testing.T) {
	s := buildStore(t)
	if err := s.BuildJoinIndexes("parentid"); err != nil {
		t.Fatal(err)
	}
	q := wideUnion()
	want, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				res, err := engine.Execute(s, q)
				if err != nil {
					errs <- err
					return
				}
				if !reflect.DeepEqual(res.Rows, want.Rows) {
					errs <- fmt.Errorf("concurrent result diverged: %v", res.Rows)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestParallelRecursiveCTE checks that per-round parallel evaluation of a
// recursive CTE's branches reproduces the serial fixpoint, row order
// included.
func TestParallelRecursiveCTE(t *testing.T) {
	s := relational.NewStore()
	edge, err := s.CreateTable(&relational.TableSchema{
		Name: "E",
		Columns: []relational.Column{
			{Name: "src", Kind: relational.KindInt},
			{Name: "dst", Kind: relational.KindInt},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// A small DAG: chain 1->2->3->4 plus shortcut edges.
	for _, e := range [][2]int64{{1, 2}, {2, 3}, {3, 4}, {1, 3}, {2, 4}} {
		edge.MustInsert(relational.Row{relational.Int(e[0]), relational.Int(e[1])})
	}
	// WITH RECURSIVE reach(n) AS (two base branches UNION ALL two recursive
	// branches) SELECT n FROM reach.
	base := func(start int64) *sqlast.Select {
		return &sqlast.Select{
			Cols:  []sqlast.SelectItem{sqlast.Col("E", "dst")},
			From:  []sqlast.FromItem{sqlast.From("E", "E")},
			Where: sqlast.Eq(sqlast.ColRef{Table: "E", Column: "src"}, sqlast.IntLit(start)),
		}
	}
	rec := &sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("E", "dst")},
		From: []sqlast.FromItem{sqlast.From("reach", "reach"), sqlast.From("E", "E")},
		Where: sqlast.Eq(
			sqlast.ColRef{Table: "E", Column: "src"},
			sqlast.ColRef{Table: "reach", Column: "dst"},
		),
	}
	q := &sqlast.Query{
		With: []sqlast.CTE{{
			Name:      "reach",
			Recursive: true,
			Body:      &sqlast.Query{Selects: []*sqlast.Select{base(1), base(2), rec, rec}},
		}},
		Selects: []*sqlast.Select{{
			Cols: []sqlast.SelectItem{sqlast.Col("reach", "dst")},
			From: []sqlast.FromItem{sqlast.From("reach", "reach")},
		}},
	}
	serial, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Len() == 0 {
		t.Fatal("recursive fixture produced no rows")
	}
	parallel, err := engine.ExecuteOpts(s, q, engine.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(parallel.Rows, serial.Rows) {
		t.Fatalf("recursive parallel order differs\nserial:   %v\nparallel: %v", serial.Rows, parallel.Rows)
	}
}
