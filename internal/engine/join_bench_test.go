package engine_test

import (
	"context"
	"fmt"
	"testing"

	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// benchStore builds parent/child tables with nRows children so the three
// join strategies (index probe, per-query hash, nested loop) have measurable
// work. The child table's parentid is indexed implicitly via the store's
// table indexes on insert order — the engine's index probe finds it when the
// join column has a persistent index.
func benchStore(b *testing.B, nParents, childPerParent int) *relational.Store {
	b.Helper()
	s := relational.NewStore()
	p, err := s.CreateTable(&relational.TableSchema{
		Name: "BP",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "code", Kind: relational.KindInt},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		b.Fatal(err)
	}
	c, err := s.CreateTable(&relational.TableSchema{
		Name: "BC",
		Columns: []relational.Column{
			{Name: "id", Kind: relational.KindInt},
			{Name: "parentid", Kind: relational.KindInt},
			{Name: "v", Kind: relational.KindString},
		},
		PrimaryKey: "id",
	})
	if err != nil {
		b.Fatal(err)
	}
	id := int64(0)
	for pi := 0; pi < nParents; pi++ {
		p.MustInsert(relational.Row{relational.Int(int64(pi + 1)), relational.Int(int64(pi % 7))})
		for ci := 0; ci < childPerParent; ci++ {
			id++
			c.MustInsert(relational.Row{relational.Int(1000 + id), relational.Int(int64(pi + 1)), relational.String(fmt.Sprintf("v%d", ci))})
		}
	}
	return s
}

// joinQuery is SELECT c.v FROM BP p, BC c WHERE c.parentid = p.id AND p.code = 3.
func joinQuery() *sqlast.Query {
	return sqlast.SingleSelect(&sqlast.Select{
		Cols: []sqlast.SelectItem{sqlast.Col("c", "v")},
		From: []sqlast.FromItem{{Source: "BP", Alias: "p"}, {Source: "BC", Alias: "c"}},
		Where: sqlast.Conj(
			sqlast.Eq(sqlast.ColRef{Table: "c", Column: "parentid"}, sqlast.ColRef{Table: "p", Column: "id"}),
			sqlast.Eq(sqlast.ColRef{Table: "p", Column: "code"}, sqlast.IntLit(3)),
		),
	})
}

func runJoinBench(b *testing.B, opts engine.Options) {
	s := benchStore(b, 200, 20)
	q := joinQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecuteOpts(s, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkJoinIndexProbe(b *testing.B) {
	runJoinBench(b, engine.Options{})
}

func BenchmarkJoinPerQueryHash(b *testing.B) {
	runJoinBench(b, engine.Options{DisableIndexes: true})
}

func BenchmarkJoinNestedLoop(b *testing.B) {
	runJoinBench(b, engine.Options{ForceNestedLoop: true})
}

// unionQuery builds k branches over the same BP⋈BC chain, filtered on
// distinct p.code literals — the shape the naive XML translation emits.
func unionQuery(k int) *sqlast.Query {
	q := &sqlast.Query{}
	for i := 0; i < k; i++ {
		q.Selects = append(q.Selects, &sqlast.Select{
			Cols: []sqlast.SelectItem{sqlast.Col("c", "v")},
			From: []sqlast.FromItem{{Source: "BP", Alias: "p"}, {Source: "BC", Alias: "c"}},
			Where: sqlast.Conj(
				sqlast.Eq(sqlast.ColRef{Table: "c", Column: "parentid"}, sqlast.ColRef{Table: "p", Column: "id"}),
				sqlast.Eq(sqlast.ColRef{Table: "p", Column: "code"}, sqlast.IntLit(int64(i%7))),
			),
		})
	}
	return q
}

func runUnionBench(b *testing.B, factored bool, opts engine.Options) {
	s := benchStore(b, 200, 20)
	q := unionQuery(6)
	if factored {
		fq, changed := sqlast.FactorUnions(q, nil)
		if !changed {
			b.Fatal("expected the union to factor")
		}
		q = fq
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.ExecuteCtx(ctx, s, q, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkUnionUnfactoredNoMemo(b *testing.B) {
	runUnionBench(b, false, engine.Options{DisableMemo: true})
}

func BenchmarkUnionUnfactoredMemo(b *testing.B) {
	runUnionBench(b, false, engine.Options{})
}

func BenchmarkUnionFactored(b *testing.B) {
	runUnionBench(b, true, engine.Options{})
}

func BenchmarkUnionUnfactoredNoMemoParallel(b *testing.B) {
	runUnionBench(b, false, engine.Options{DisableMemo: true, Parallelism: 4})
}

func BenchmarkUnionFactoredParallel(b *testing.B) {
	runUnionBench(b, true, engine.Options{Parallelism: 4})
}
