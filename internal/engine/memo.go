package engine

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// Stats reports the shared-work subplan memo's activity during one
// execution. The memo computes each distinct left-deep join prefix — same
// sources in order, same predicates consumed level by level — exactly once
// per query, no matter how many UNION ALL branches (or parallel workers)
// need it.
type Stats struct {
	// SharedHits counts join prefixes a branch reused from the memo instead
	// of recomputing.
	SharedHits int64
	// SharedMisses counts join prefixes computed and published to the memo.
	SharedMisses int64
	// SharedSavedRows sums the already-materialized rows each hit reused —
	// the join output the engine did not rebuild.
	SharedSavedRows int64

	// Auto reports that the cost-based knob chooser ran (Options.Auto).
	Auto bool
	// ParallelEnabled reports whether the UNION ALL worker pool was active
	// (resolved parallelism > 1 on a multi-branch query), whether chosen by
	// Auto or configured explicitly.
	ParallelEnabled bool
	// ParallelDisagrees reports that Auto's serial/parallel decision differs
	// from the old branch-count heuristic (parallelize any multi-branch
	// union when GOMAXPROCS > 1) — how often the stats-driven threshold
	// actually changes behavior.
	ParallelDisagrees bool
	// MemoEnabled reports whether the shared-work subplan memo was active.
	MemoEnabled bool
	// EstimatedRows is the estimator's predicted output cardinality
	// (0 when executed without an estimate); ActualRows is what the query
	// really returned. Their ratio is the estimator's headline error.
	EstimatedRows float64
	ActualRows    int64
}

// cteDep records which binding of a CTE a memo entry was computed against.
// Recursive CTEs rebind their name to a fresh delta every round, so entries
// from earlier rounds must never satisfy later lookups.
type cteDep struct {
	name  string
	epoch uint64
}

// memoEntry is one published (or in-flight) join prefix. done is closed when
// rows/width/err are final; waiting on it gives concurrent branch workers
// single-flight semantics.
type memoEntry struct {
	done  chan struct{}
	rows  []relational.Row
	width int
	err   error
	deps  []cteDep
}

// memo is the per-execution subplan cache. Entries' row slices are shared
// between branches, which is safe because the executor never mutates a
// frame's rows in place: joins and filters always build fresh slices.
type memo struct {
	mu      sync.Mutex
	entries map[string]*memoEntry
}

func newMemo() *memo { return &memo{entries: map[string]*memoEntry{}} }

// dropStale removes every entry computed against a binding of name other
// than current. Called between recursive-CTE rounds (single-threaded), when
// all in-flight entries have been published.
func (m *memo) dropStale(name string, current uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for k, e := range m.entries {
		for _, d := range e.deps {
			if d.name == name && d.epoch != current {
				delete(m.entries, k)
				break
			}
		}
	}
}

// memoPlan is the canonical fingerprint of one SELECT's left-deep join
// pipeline: a cumulative key per FROM level plus the level each conjunct is
// consumed at (mirroring joinStep/applyCovered's rules, so a memoized frame
// is byte-for-byte the frame the engine would have built).
type memoPlan struct {
	keys     []string
	memoize  []bool
	deps     [][]cteDep
	conjs    []sqlast.Expr
	consumed []int // level each conjunct is consumed at; -1 = residual
}

// remainingAfter returns the conjuncts still pending once levels 0..level
// are complete, in original order.
func (p *memoPlan) remainingAfter(level int) []sqlast.Expr {
	var out []sqlast.Expr
	for ci, c := range p.conjs {
		if p.consumed[ci] < 0 || p.consumed[ci] > level {
			out = append(out, c)
		}
	}
	return out
}

// memoPlan fingerprints s, or returns nil when the select uses a shape the
// memo does not reason about (duplicate aliases, unqualified or constant
// predicates) — those evaluate through the plain path.
func (ex *executor) memoPlan(s *sqlast.Select, conjuncts []sqlast.Expr) *memoPlan {
	n := len(s.From)
	aliasPos := make(map[string]int, n)
	for i, f := range s.From {
		a := aliasOf(f)
		if _, dup := aliasPos[a]; dup {
			return nil
		}
		aliasPos[a] = i
	}
	plan := &memoPlan{
		keys:     make([]string, n),
		memoize:  make([]bool, n),
		deps:     make([][]cteDep, n),
		conjs:    conjuncts,
		consumed: make([]int, len(conjuncts)),
	}
	rename := func(a string) string { return "$" + strconv.Itoa(aliasPos[a]) }
	levels := make([][]string, n)
	for ci, c := range conjuncts {
		set := exprAliases(c, map[string]bool{})
		if len(set) == 0 {
			return nil // constant predicate: consumption level is positional, not structural
		}
		level := -1
		for a := range set {
			p, known := aliasPos[a]
			if a == "" || !known {
				level = -1
				break
			}
			if p > level {
				level = p
			}
		}
		plan.consumed[ci] = level
		if level >= 0 {
			levels[level] = append(levels[level], sqlast.CanonExpr(c, rename))
		}
	}
	var b strings.Builder
	var deps []cteDep
	for i, f := range s.From {
		b.WriteByte('/')
		if epoch, isCTE := ex.cteEpoch[f.Source]; isCTE {
			b.WriteString("c:")
			b.WriteString(f.Source)
			b.WriteByte('#')
			b.WriteString(strconv.FormatUint(epoch, 10))
			deps = append(deps, cteDep{name: f.Source, epoch: epoch})
		} else {
			b.WriteString("t:")
			b.WriteString(f.Source)
		}
		sort.Strings(levels[i])
		b.WriteByte('{')
		b.WriteString(strings.Join(levels[i], "&"))
		b.WriteByte('}')
		plan.keys[i] = b.String()
		plan.deps[i] = append([]cteDep(nil), deps...)
		// A bare unfiltered scan at level 0 is cheaper than a memo round
		// trip; everything deeper (a join) or filtered is worth sharing.
		plan.memoize[i] = i > 0 || len(levels[i]) > 0
	}
	return plan
}

// memoStep is joinStep with single-flight memoization: the first branch to
// reach a prefix computes and publishes it; every other branch (concurrent
// or later) reuses the published frame, rebinding it under its own aliases.
func (ex *executor) memoStep(plan *memoPlan, i int, cur *frame, rel *relation, alias string, remaining []sqlast.Expr) (*frame, []sqlast.Expr, error) {
	key := plan.keys[i]
	m := ex.memo
	m.mu.Lock()
	e, exists := m.entries[key]
	if !exists {
		e = &memoEntry{done: make(chan struct{})}
		m.entries[key] = e
	}
	m.mu.Unlock()

	if exists {
		select {
		case <-e.done:
		case <-ex.done:
			return nil, nil, ex.ctx.Err()
		}
		if e.err != nil {
			return nil, nil, e.err
		}
		ex.sharedHits.Add(1)
		ex.sharedSavedRows.Add(int64(len(e.rows)))
		var bindings []binding
		if cur != nil {
			bindings = cur.bindings
		}
		next := &frame{
			bindings: append(append([]binding(nil), bindings...), binding{alias: alias, cols: rel.cols, offset: e.width - len(rel.cols)}),
			rows:     e.rows,
			width:    e.width,
		}
		return next, plan.remainingAfter(i), nil
	}

	// Leader: compute, publish, and release waiters — even if the
	// computation panics, so a poisoned branch cannot strand its peers.
	published := false
	defer func() {
		if !published {
			e.err = fmt.Errorf("engine: shared subplan computation did not complete")
			close(e.done)
		}
	}()
	next, rest, err := ex.joinStep(cur, rel, alias, remaining)
	if err != nil {
		e.err = err
		published = true
		close(e.done)
		return nil, nil, err
	}
	e.rows, e.width, e.deps = next.rows, next.width, plan.deps[i]
	ex.sharedMisses.Add(1)
	published = true
	close(e.done)
	return next, rest, nil
}

// memoWorthwhile reports whether q can repeat join work at all: at least two
// SELECT blocks anywhere (UNION branches, across CTE bodies) or a recursive
// CTE (whose rounds re-evaluate the same branches).
func memoWorthwhile(q *sqlast.Query) bool {
	n, rec := countSelects(q)
	return rec || n >= 2
}

func countSelects(q *sqlast.Query) (int, bool) {
	n := len(q.Selects)
	rec := false
	for _, c := range q.With {
		if c.Recursive {
			rec = true
		}
		cn, crec := countSelects(c.Body)
		n += cn
		rec = rec || crec
	}
	return n, rec
}
