package engine

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
)

// MaxRecursionRounds bounds recursive CTE evaluation; shredded XML data is
// acyclic so any real query converges far earlier. Exceeding the bound is
// reported as an error rather than looping forever.
const MaxRecursionRounds = 100000

// Options configure execution.
type Options struct {
	// ForceNestedLoop disables hash joins (used by the substrate ablation
	// bench to show the relative orderings do not depend on the join
	// algorithm).
	ForceNestedLoop bool
	// DisableIndexes skips persistent table indexes even when present,
	// always building per-query hash tables.
	DisableIndexes bool
	// Parallelism bounds the worker pool evaluating the branches of a
	// UNION ALL concurrently: 0 means GOMAXPROCS, values < 0 and 1 force
	// serial evaluation, N > 1 allows up to N branches in flight. Results are
	// merged in branch order, so parallel execution returns rows in
	// exactly the serial order. Naive translations — unions of
	// root-to-leaf join chains, six branches for XMark's Q1 and the Edge
	// mapping's Q8 — are the workloads with enough independent branch work
	// to scale with cores.
	Parallelism int
	// MaxRows bounds the rows the query may materialize, counting join
	// outputs, projected results, and recursive-CTE accumulation across all
	// branches. 0 means unlimited. Exceeding the bound aborts the query with
	// a *ResourceError instead of exhausting memory — the guard a serving
	// layer needs against a query whose intermediate results explode.
	MaxRows int
	// MaxCTEIterations bounds recursive CTE evaluation rounds; 0 means the
	// package default MaxRecursionRounds. A cyclic instance (or a cyclic
	// schema shredded into one) makes the fixpoint loop diverge; the bound
	// turns that divergence into a typed *ResourceError instead of a hang.
	MaxCTEIterations int
	// DisableMemo turns off the shared-work subplan memo (see Stats): every
	// UNION ALL branch then recomputes its join prefixes from scratch, as
	// the pre-memo engine did. Used by benchmarks to measure the memo's
	// contribution and by tests as a differential oracle. Note that rows a
	// branch reuses from the memo are charged against MaxRows once, when
	// first materialized, not once per reusing branch.
	DisableMemo bool
	// Auto enables cost-based per-query knob selection using Estimate:
	// Parallelism (when left 0) resolves to serial unless the estimated
	// per-branch work clears stats.ParallelMinBranchCost — replacing the
	// old branch-count heuristic that parallelized every multi-branch
	// union — and the subplan memo (when not already disabled) stays on
	// only when the estimated shared-prefix reuse is positive. Explicitly
	// set knobs (Parallelism != 0, DisableMemo) are never overridden. With
	// a nil Estimate, Auto falls back to serial execution with the memo
	// under its structural gate. The decisions taken are reported in Stats.
	Auto bool
	// Estimate is the statistics-based cardinality/cost estimate of the
	// query being executed (see stats.Estimator.EstimateQuery), consulted
	// by Auto and echoed into Stats for estimate-vs-actual accounting.
	Estimate *stats.QueryEstimate
}

// Execute evaluates q against the store with default options.
func Execute(store *relational.Store, q *sqlast.Query) (*Result, error) {
	return ExecuteCtx(context.Background(), store, q, Options{})
}

// ExecuteOpts evaluates q against the store.
func ExecuteOpts(store *relational.Store, q *sqlast.Query, opts Options) (*Result, error) {
	return ExecuteCtx(context.Background(), store, q, opts)
}

// ExecuteCtx evaluates q against the store under a context. Cancellation is
// cooperative and prompt: the executor polls the context between UNION ALL
// branches, between recursive-CTE rounds, and every cancelCheckInterval rows
// inside join and filter loops, so a cancelled or deadline-expired context
// aborts even a single long-running branch with ctx.Err() rather than running
// it to completion.
func ExecuteCtx(ctx context.Context, store *relational.Store, q *sqlast.Query, opts Options) (*Result, error) {
	res, _, err := ExecuteCtxStats(ctx, store, q, opts)
	return res, err
}

// ExecuteCtxStats is ExecuteCtx plus the execution's shared-work Stats: how
// often UNION ALL branches reused a memoized join prefix instead of
// recomputing it, and how many materialized rows that reuse saved.
func ExecuteCtxStats(ctx context.Context, store *relational.Store, q *sqlast.Query, opts Options) (*Result, Stats, error) {
	var st Stats
	if opts.Auto {
		opts = resolveAuto(opts, q, &st)
	}
	ex := &executor{store: store, ctes: map[string]*Result{}, cteEpoch: map[string]uint64{}, opts: opts, done: ctx.Done(), ctx: ctx}
	if !opts.DisableMemo && memoWorthwhile(q) {
		ex.memo = newMemo()
	}
	st.MemoEnabled = ex.memo != nil
	st.ParallelEnabled = ex.parallelism() > 1 && len(q.Selects) > 1
	if opts.Estimate != nil {
		st.EstimatedRows = opts.Estimate.Rows
	}
	if err := ex.cancelled(); err != nil {
		return nil, st, err
	}
	res, err := ex.query(q)
	st.SharedHits = ex.sharedHits.Load()
	st.SharedMisses = ex.sharedMisses.Load()
	st.SharedSavedRows = ex.sharedSavedRows.Load()
	if res != nil {
		st.ActualRows = int64(len(res.Rows))
	}
	return res, st, err
}

// resolveAuto applies the cost-based knob chooser to the unset knobs,
// recording each decision (and whether it disagrees with the old
// branch-count heuristic, which parallelized every multi-branch union).
func resolveAuto(opts Options, q *sqlast.Query, st *Stats) Options {
	st.Auto = true
	est := opts.Estimate
	procs := runtime.GOMAXPROCS(0)
	oldHeuristicParallel := procs > 1 && len(q.Selects) >= 2
	if opts.Parallelism == 0 {
		if est.ParallelWorthwhile(procs) {
			// Leave 0: the pool sizes itself to GOMAXPROCS.
		} else {
			opts.Parallelism = 1
		}
	}
	autoParallel := opts.Parallelism == 0 || opts.Parallelism > 1
	st.ParallelDisagrees = autoParallel != oldHeuristicParallel
	if !opts.DisableMemo && !est.MemoWorthwhile() {
		opts.DisableMemo = true
	}
	return opts
}

type executor struct {
	store *relational.Store
	ctes  map[string]*Result
	opts  Options
	ctx   context.Context
	// done is ctx.Done(), captured once: polling a channel in a select is
	// cheaper than ctx.Err() on hot row loops (and nil for Background, which
	// a nil-channel select handles for free).
	done <-chan struct{}
	// rows counts materialized rows against opts.MaxRows across all branches
	// (hence atomic: parallel UNION workers all charge it).
	rows atomic.Int64
	// memo shares computed join prefixes across UNION ALL branches (nil when
	// disabled or when the query has a single SELECT and nothing to share).
	memo *memo
	// cteEpoch tracks the current binding generation of every materialized
	// CTE name. Bumped on every bind, it flows into memo keys so a prefix
	// computed over one binding (e.g. one recursive round's delta) never
	// satisfies a lookup against another. Written only between evalSelects
	// rounds; read-only while branches run in parallel.
	cteEpoch     map[string]uint64
	epochCounter uint64
	// Shared-work counters (see Stats); atomic because parallel branch
	// workers all bump them.
	sharedHits, sharedMisses, sharedSavedRows atomic.Int64
}

// cancelCheckInterval is how many rows a join or filter loop processes
// between context polls: coarse enough to stay off the profile, fine enough
// that cancellation lands within microseconds of real work.
const cancelCheckInterval = 4096

// cancelled reports the context's error once the context is done.
func (ex *executor) cancelled() error {
	select {
	case <-ex.done:
		return ex.ctx.Err()
	default:
		return nil
	}
}

// tick counts down a loop-local budget and polls for cancellation when it
// runs out. Loops own their counter (no shared state), so parallel branches
// poll independently.
func (ex *executor) tick(countdown *int) error {
	*countdown--
	if *countdown > 0 {
		return nil
	}
	*countdown = cancelCheckInterval
	return ex.cancelled()
}

// charge counts n newly materialized rows against Options.MaxRows.
func (ex *executor) charge(n int) error {
	if ex.opts.MaxRows <= 0 || n == 0 {
		return nil
	}
	if ex.rows.Add(int64(n)) > int64(ex.opts.MaxRows) {
		return &ResourceError{Resource: ResourceRows, Limit: ex.opts.MaxRows}
	}
	return nil
}

// relation is a uniform row source: a base table or a materialized CTE.
type relation struct {
	cols []string
	rows []relational.Row
	// table is set for base tables, enabling index probes.
	table *relational.Table
}

func (ex *executor) resolve(name string) (*relation, error) {
	if r, ok := ex.ctes[name]; ok {
		return &relation{cols: r.Cols, rows: r.Rows}, nil
	}
	t := ex.store.Table(name)
	if t == nil {
		return nil, fmt.Errorf("engine: unknown table or cte %q", name)
	}
	cols := make([]string, len(t.Schema().Columns))
	for i, c := range t.Schema().Columns {
		cols[i] = c.Name
	}
	return &relation{cols: cols, rows: t.Rows(), table: t}, nil
}

// bindCTE installs a CTE's materialization under a fresh epoch; unbindCTE
// removes it and drops any memo entries computed against it (epoch 0 never
// matches a real binding, so dropStale with 0 drops them all).
func (ex *executor) bindCTE(name string, res *Result) {
	ex.ctes[name] = res
	ex.epochCounter++
	ex.cteEpoch[name] = ex.epochCounter
}

func (ex *executor) unbindCTE(name string) {
	delete(ex.ctes, name)
	delete(ex.cteEpoch, name)
	if ex.memo != nil {
		ex.memo.dropStale(name, 0)
	}
}

func (ex *executor) query(q *sqlast.Query) (*Result, error) {
	// Materialize CTEs in order; later CTEs and the main body may reference
	// earlier ones.
	defined := make([]string, 0, len(q.With))
	defer func() {
		for _, name := range defined {
			ex.unbindCTE(name)
		}
	}()
	for _, cte := range q.With {
		if _, dup := ex.ctes[cte.Name]; dup {
			return nil, fmt.Errorf("engine: duplicate cte %q", cte.Name)
		}
		var res *Result
		var err error
		if cte.Recursive {
			res, err = ex.recursiveCTE(cte)
		} else {
			res, err = ex.query(cte.Body)
		}
		if err != nil {
			return nil, err
		}
		ex.bindCTE(cte.Name, res)
		defined = append(defined, cte.Name)
	}

	branches, err := ex.evalSelects(q.Selects)
	if err != nil {
		return nil, err
	}
	if len(branches) == 0 {
		return &Result{}, nil
	}
	if len(branches) == 1 {
		return &Result{Cols: branches[0].Cols, Rows: branches[0].Rows}, nil
	}
	// Merge into a freshly allocated Result: appending into branches[0] in
	// place would mutate a Result whose row slice may be shared (a memoized
	// prefix, a CTE materialization another branch still reads).
	total := 0
	for _, r := range branches {
		if len(r.Cols) != len(branches[0].Cols) {
			return nil, fmt.Errorf("engine: union all arity mismatch: %d vs %d", len(branches[0].Cols), len(r.Cols))
		}
		total += len(r.Rows)
	}
	out := &Result{Cols: branches[0].Cols, Rows: make([]relational.Row, 0, total)}
	for _, r := range branches {
		out.Rows = append(out.Rows, r.Rows...)
	}
	return out, nil
}

// parallelism resolves the configured worker bound. Negative values clamp to
// serial: a caller passing -1 plausibly means "disabled", and silently
// enabling full parallelism for it would be surprising.
func (ex *executor) parallelism() int {
	if ex.opts.Parallelism < 0 {
		return 1
	}
	if ex.opts.Parallelism > 0 {
		return ex.opts.Parallelism
	}
	return runtime.GOMAXPROCS(0)
}

// evalSelects evaluates a UNION ALL's branches and returns the per-branch
// results in branch order. With parallelism > 1 and at least two branches,
// the branches run concurrently under a bounded worker pool; because each
// branch's rows land in its own slot and the caller concatenates the slots
// in order, the merged row order is identical to serial evaluation.
//
// Concurrent branch evaluation is safe because selectBlock only reads
// executor state: the store is read-only during execution and the ctes map
// is fully materialized (and not mutated) before any UNION body runs.
func (ex *executor) evalSelects(sels []*sqlast.Select) ([]*Result, error) {
	par := ex.parallelism()
	if par > len(sels) {
		par = len(sels)
	}
	if len(sels) < 2 || par < 2 {
		out := make([]*Result, len(sels))
		for i, s := range sels {
			r, err := ex.safeSelect(s)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	results := make([]*Result, len(sels))
	errs := make([]error, len(sels))
	// Spawn exactly par workers pulling branch indexes from a shared counter,
	// so goroutine creation (not just concurrency) is bounded even for
	// pathological many-branch unions. The stop flag makes shutdown prompt:
	// once any branch fails (or the context is cancelled, which surfaces as a
	// branch error), workers stop claiming new branches instead of grinding
	// through the rest of the union.
	var next atomic.Int64
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				i := int(next.Add(1)) - 1
				if i >= len(sels) {
					return
				}
				results[i], errs[i] = ex.safeSelect(sels[i])
				if errs[i] != nil {
					stop.Store(true)
				}
			}
		}()
	}
	wg.Wait()
	// Report the first (branch-order) error deterministically, matching what
	// serial evaluation would have surfaced. Branch claiming is monotonic in
	// index, so every branch before a failed one has a recorded outcome and
	// the first non-nil error is well defined despite early stop.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// safeSelect evaluates one UNION branch with the serving-path protections:
// a cancellation check before starting and panic containment, so one
// poisoned branch fails the query with an error instead of killing the
// process (a panic in a bare worker goroutine is fatal to the whole program).
func (ex *executor) safeSelect(s *sqlast.Select) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("engine: panic evaluating union branch: %v", r)
		}
	}()
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	return ex.selectBlock(s)
}

// recursiveCTE evaluates a linear-recursive UNION ALL CTE with standard
// SQL:1999 semantics: base branches seed the working table; recursive
// branches are re-evaluated against only the rows produced in the previous
// round, until a round produces nothing.
func (ex *executor) recursiveCTE(cte sqlast.CTE) (*Result, error) {
	var base, rec []*sqlast.Select
	for _, s := range cte.Body.Selects {
		if selectReferences(s, cte.Name) {
			rec = append(rec, s)
		} else {
			base = append(base, s)
		}
	}
	if len(cte.Body.With) > 0 {
		return nil, fmt.Errorf("engine: nested WITH inside recursive cte %q is not supported", cte.Name)
	}
	if len(rec) == 0 {
		// Not actually recursive; evaluate as a plain CTE.
		return ex.query(cte.Body)
	}

	acc := &Result{}
	baseResults, err := ex.evalSelects(base)
	if err != nil {
		return nil, err
	}
	for _, r := range baseResults {
		if acc.Cols == nil {
			acc.Cols = r.Cols
		} else if len(acc.Cols) != len(r.Cols) {
			return nil, fmt.Errorf("engine: recursive cte %q: arity mismatch among base branches", cte.Name)
		}
		acc.Rows = append(acc.Rows, r.Rows...)
	}
	if acc.Cols == nil {
		return nil, fmt.Errorf("engine: recursive cte %q has no base branch", cte.Name)
	}

	if err := ex.charge(len(acc.Rows)); err != nil {
		return nil, err
	}

	maxRounds := MaxRecursionRounds
	if ex.opts.MaxCTEIterations > 0 {
		maxRounds = ex.opts.MaxCTEIterations
	}
	delta := acc.Rows
	for round := 0; len(delta) > 0; round++ {
		if round >= maxRounds {
			return nil, &ResourceError{
				Resource: ResourceCTEIterations,
				Limit:    maxRounds,
				Detail:   fmt.Sprintf("recursive cte %q", cte.Name),
			}
		}
		// Poll between rounds: a diverging fixpoint (cyclic instance) must
		// still honor cancellation even when each round is fast.
		if err := ex.cancelled(); err != nil {
			return nil, err
		}
		// Bind the CTE name to the previous delta only, under a fresh epoch:
		// memo entries computed against earlier rounds' deltas stop
		// matching and are dropped. The binding is written before the
		// round's branches start and read-only while they run, so the
		// branches themselves may evaluate in parallel.
		ex.bindCTE(cte.Name, &Result{Cols: acc.Cols, Rows: delta})
		if ex.memo != nil {
			ex.memo.dropStale(cte.Name, ex.cteEpoch[cte.Name])
		}
		recResults, err := ex.evalSelects(rec)
		if err != nil {
			ex.unbindCTE(cte.Name)
			return nil, err
		}
		var next []relational.Row
		for _, r := range recResults {
			if len(r.Cols) != len(acc.Cols) {
				ex.unbindCTE(cte.Name)
				return nil, fmt.Errorf("engine: recursive cte %q: arity mismatch in recursive branch", cte.Name)
			}
			next = append(next, r.Rows...)
		}
		if err := ex.charge(len(next)); err != nil {
			ex.unbindCTE(cte.Name)
			return nil, err
		}
		acc.Rows = append(acc.Rows, next...)
		delta = next
	}
	ex.unbindCTE(cte.Name)
	return acc, nil
}

func selectReferences(s *sqlast.Select, name string) bool {
	for _, f := range s.From {
		if f.Source == name {
			return true
		}
	}
	return false
}

// binding maps an alias to its column layout inside the composite row built
// during join processing.
type binding struct {
	alias  string
	cols   []string
	offset int
}

type frame struct {
	bindings []binding
	rows     []relational.Row
	width    int
}

func (f *frame) find(table, column string) (int, error) {
	if table != "" {
		for _, b := range f.bindings {
			if b.alias != table {
				continue
			}
			for i, c := range b.cols {
				if c == column {
					return b.offset + i, nil
				}
			}
			return -1, fmt.Errorf("engine: alias %s has no column %s", table, column)
		}
		return -1, fmt.Errorf("engine: unknown alias %s", table)
	}
	found := -1
	for _, b := range f.bindings {
		for i, c := range b.cols {
			if c == column {
				if found >= 0 {
					return -1, fmt.Errorf("engine: ambiguous column %s", column)
				}
				found = b.offset + i
			}
		}
	}
	if found < 0 {
		return -1, fmt.Errorf("engine: unknown column %s", column)
	}
	return found, nil
}

func (f *frame) hasAlias(alias string) bool {
	for _, b := range f.bindings {
		if b.alias == alias {
			return true
		}
	}
	return false
}

func (ex *executor) selectBlock(s *sqlast.Select) (*Result, error) {
	if len(s.From) == 0 {
		return nil, fmt.Errorf("engine: select with empty FROM")
	}
	seen := map[string]bool{}
	for _, f := range s.From {
		a := aliasOf(f)
		if seen[a] {
			return nil, fmt.Errorf("engine: duplicate alias %s", a)
		}
		seen[a] = true
	}

	conjuncts := splitConjuncts(s.Where)

	// Fingerprint the join pipeline for the shared-work memo: branches of a
	// UNION ALL (and recursive-CTE rounds) with a canonically equal prefix
	// reuse one computation instead of racing to duplicate it.
	var plan *memoPlan
	if ex.memo != nil {
		plan = ex.memoPlan(s, conjuncts)
	}

	// Build left-deep join in FROM order.
	var cur *frame
	remaining := conjuncts
	for i, f := range s.From {
		rel, err := ex.resolve(f.Source)
		if err != nil {
			return nil, err
		}
		alias := aliasOf(f)
		var next *frame
		var rest []sqlast.Expr
		if plan != nil && plan.memoize[i] {
			next, rest, err = ex.memoStep(plan, i, cur, rel, alias, remaining)
		} else {
			next, rest, err = ex.joinStep(cur, rel, alias, remaining)
		}
		if err != nil {
			return nil, err
		}
		cur = next
		remaining = rest
	}

	// Residual predicates (e.g. ORs across aliases).
	if len(remaining) > 0 {
		pred := sqlast.Conj(remaining...)
		filtered := cur.rows[:0:0]
		countdown := cancelCheckInterval
		for _, row := range cur.rows {
			if err := ex.tick(&countdown); err != nil {
				return nil, err
			}
			ok, err := evalPred(pred, cur, row)
			if err != nil {
				return nil, err
			}
			if ok {
				filtered = append(filtered, row)
			}
		}
		cur = &frame{bindings: cur.bindings, rows: filtered, width: cur.width}
	}

	// Projection.
	type proj struct {
		idx  int
		lit  relational.Value
		name string
	}
	var projs []proj
	for _, item := range s.Cols {
		if item.Star {
			found := false
			for _, b := range cur.bindings {
				if b.alias != item.StarTable {
					continue
				}
				for i, c := range b.cols {
					projs = append(projs, proj{idx: b.offset + i, name: c})
				}
				found = true
				break
			}
			if !found {
				return nil, fmt.Errorf("engine: star over unknown alias %s", item.StarTable)
			}
			continue
		}
		switch e := item.Expr.(type) {
		case sqlast.ColRef:
			idx, err := cur.find(e.Table, e.Column)
			if err != nil {
				return nil, err
			}
			name := item.As
			if name == "" {
				name = e.Column
			}
			projs = append(projs, proj{idx: idx, name: name})
		case sqlast.Lit:
			projs = append(projs, proj{idx: -1, lit: e.Value, name: item.As})
		default:
			return nil, fmt.Errorf("engine: only column and literal projections are supported, got %T", item.Expr)
		}
	}
	res := &Result{Cols: make([]string, len(projs))}
	for i, p := range projs {
		res.Cols[i] = p.name
	}
	if err := ex.charge(len(cur.rows)); err != nil {
		return nil, err
	}
	res.Rows = make([]relational.Row, 0, len(cur.rows))
	for _, row := range cur.rows {
		out := make(relational.Row, len(projs))
		for i, p := range projs {
			if p.idx < 0 {
				out[i] = p.lit
				continue
			}
			out[i] = row[p.idx]
		}
		res.Rows = append(res.Rows, out)
	}
	return res, nil
}

func aliasOf(f sqlast.FromItem) string {
	if f.Alias != "" {
		return f.Alias
	}
	return f.Source
}

// joinStep joins the current frame with a new relation bound to alias,
// consuming from `conjuncts` every predicate that becomes fully evaluable.
// It returns the new frame and the still-pending conjuncts.
func (ex *executor) joinStep(cur *frame, rel *relation, alias string, conjuncts []sqlast.Expr) (*frame, []sqlast.Expr, error) {
	// Local predicates on the new relation alone.
	solo := &frame{bindings: []binding{{alias: alias, cols: rel.cols}}, width: len(rel.cols)}
	var local, pending []sqlast.Expr
	var joinConds []sqlast.Cmp
	for _, c := range conjuncts {
		aliases := exprAliases(c, map[string]bool{})
		switch {
		case onlyAlias(aliases, alias):
			local = append(local, c)
		case cur != nil && isJoinEq(c, cur, alias):
			joinConds = append(joinConds, c.(sqlast.Cmp))
		case cur != nil && coveredBy(aliases, cur, alias):
			// Fully evaluable after this join but not a plain equality:
			// apply as a post-join filter below by treating it as local to
			// the joined frame.
			pending = append(pending, c)
		default:
			pending = append(pending, c)
		}
	}

	rows := rel.rows
	if len(local) > 0 {
		pred := sqlast.Conj(local...)
		filtered := make([]relational.Row, 0, len(rows))
		countdown := cancelCheckInterval
		for _, r := range rows {
			if err := ex.tick(&countdown); err != nil {
				return nil, nil, err
			}
			ok, err := evalPred(pred, solo, r)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				filtered = append(filtered, r)
			}
		}
		rows = filtered
	}

	if cur == nil {
		return &frame{bindings: solo.bindings, rows: rows, width: solo.width}, pending, nil
	}

	next := &frame{
		bindings: append(append([]binding(nil), cur.bindings...), binding{alias: alias, cols: rel.cols, offset: cur.width}),
		width:    cur.width + len(rel.cols),
	}

	if len(joinConds) > 0 && !ex.opts.ForceNestedLoop {
		// Index probe: a single equality join against an unfiltered base
		// table with a persistent index on the join column avoids building
		// the per-query hash table.
		if !ex.opts.DisableIndexes && len(joinConds) == 1 && len(local) == 0 && rel.table != nil {
			if joined, ok, err := ex.indexJoin(cur, rel, alias, joinConds[0], next.width); err != nil {
				return nil, nil, err
			} else if ok {
				next.rows = joined
				return ex.applyCovered(next, pending)
			}
		}
		joined, err := ex.hashJoin(cur, rows, rel.cols, alias, joinConds)
		if err != nil {
			return nil, nil, err
		}
		next.rows = joined
		return ex.applyCovered(next, pending)
	}

	// Nested loop (cartesian) with join conditions as filter.
	pred := sqlast.Expr(nil)
	if len(joinConds) > 0 {
		kids := make([]sqlast.Expr, len(joinConds))
		for i, c := range joinConds {
			kids[i] = c
		}
		pred = sqlast.Conj(kids...)
	}
	countdown := cancelCheckInterval
	for _, lrow := range cur.rows {
		for _, rrow := range rows {
			if err := ex.tick(&countdown); err != nil {
				return nil, nil, err
			}
			combined := make(relational.Row, 0, next.width)
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			if pred != nil {
				ok, err := evalPred(pred, next, combined)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
			}
			if err := ex.charge(1); err != nil {
				return nil, nil, err
			}
			next.rows = append(next.rows, combined)
		}
	}
	return ex.applyCovered(next, pending)
}

// applyCovered filters the frame by every pending conjunct that is now fully
// evaluable, returning the frame unchanged on error and the rest pending.
func (ex *executor) applyCovered(f *frame, pending []sqlast.Expr) (*frame, []sqlast.Expr, error) {
	var apply, rest []sqlast.Expr
	for _, c := range pending {
		aliases := exprAliases(c, map[string]bool{})
		all := true
		for a := range aliases {
			if !f.hasAlias(a) {
				all = false
				break
			}
		}
		if all {
			apply = append(apply, c)
		} else {
			rest = append(rest, c)
		}
	}
	if len(apply) == 0 {
		return f, rest, nil
	}
	pred := sqlast.Conj(apply...)
	filtered := make([]relational.Row, 0, len(f.rows))
	for _, row := range f.rows {
		ok, err := evalPred(pred, f, row)
		if err != nil {
			return nil, nil, err
		}
		if ok {
			filtered = append(filtered, row)
		}
	}
	return &frame{bindings: f.bindings, rows: filtered, width: f.width}, rest, nil
}

// indexJoin probes a persistent table index for a single equi-join. The
// second result reports whether an index on the join column exists; when it
// does not, the caller falls back to the per-query hash join.
func (ex *executor) indexJoin(cur *frame, rel *relation, alias string, cond sqlast.Cmp, width int) ([]relational.Row, bool, error) {
	l := cond.Left.(sqlast.ColRef)
	r := cond.Right.(sqlast.ColRef)
	if l.Table == alias { // normalize: l on current frame, r on new alias
		l, r = r, l
	}
	if _, hit := rel.table.Lookup(r.Column, relational.Int(0)); !hit {
		return nil, false, nil
	}
	li, err := cur.find(l.Table, l.Column)
	if err != nil {
		return nil, false, err
	}
	var out []relational.Row
	countdown := cancelCheckInterval
	for _, lrow := range cur.rows {
		if err := ex.tick(&countdown); err != nil {
			return nil, false, err
		}
		v := lrow[li]
		if v.IsNull() {
			continue // NULL never joins
		}
		matches, _ := rel.table.Lookup(r.Column, v)
		if err := ex.charge(len(matches)); err != nil {
			return nil, false, err
		}
		for _, rrow := range matches {
			combined := make(relational.Row, 0, width)
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			out = append(out, combined)
		}
	}
	return out, true, nil
}

// hashJoin builds a hash table over the (usually smaller, pre-filtered)
// right rows keyed by the equi-join columns and probes it with the current
// frame's rows.
func (ex *executor) hashJoin(cur *frame, rightRows []relational.Row, rightCols []string, alias string, conds []sqlast.Cmp) ([]relational.Row, error) {
	type keyPart struct {
		leftIdx  int
		rightIdx int
	}
	rightFrame := &frame{bindings: []binding{{alias: alias, cols: rightCols}}}
	parts := make([]keyPart, 0, len(conds))
	for _, c := range conds {
		l := c.Left.(sqlast.ColRef)
		r := c.Right.(sqlast.ColRef)
		if l.Table == alias { // normalize: l on current frame, r on new alias
			l, r = r, l
		}
		li, err := cur.find(l.Table, l.Column)
		if err != nil {
			return nil, err
		}
		ri, err := rightFrame.find(r.Table, r.Column)
		if err != nil {
			return nil, err
		}
		parts = append(parts, keyPart{leftIdx: li, rightIdx: ri})
	}

	buildKey := func(row relational.Row, right bool) (string, bool) {
		var b strings.Builder
		for _, p := range parts {
			var v relational.Value
			if right {
				v = row[p.rightIdx]
			} else {
				v = row[p.leftIdx]
			}
			if v.IsNull() {
				return "", false // NULL never joins
			}
			b.WriteString(v.Key())
			b.WriteByte('|')
		}
		return b.String(), true
	}

	buckets := make(map[string][]relational.Row, len(rightRows))
	for _, rrow := range rightRows {
		k, ok := buildKey(rrow, true)
		if !ok {
			continue
		}
		buckets[k] = append(buckets[k], rrow)
	}

	width := cur.width + len(rightCols)
	var out []relational.Row
	countdown := cancelCheckInterval
	for _, lrow := range cur.rows {
		if err := ex.tick(&countdown); err != nil {
			return nil, err
		}
		k, ok := buildKey(lrow, false)
		if !ok {
			continue
		}
		matches := buckets[k]
		if err := ex.charge(len(matches)); err != nil {
			return nil, err
		}
		for _, rrow := range matches {
			combined := make(relational.Row, 0, width)
			combined = append(combined, lrow...)
			combined = append(combined, rrow...)
			out = append(out, combined)
		}
	}
	return out, nil
}

// splitConjuncts flattens a WHERE expression into top-level conjuncts.
func splitConjuncts(e sqlast.Expr) []sqlast.Expr {
	if e == nil {
		return nil
	}
	if a, ok := e.(sqlast.And); ok {
		var out []sqlast.Expr
		for _, k := range a.Kids {
			out = append(out, splitConjuncts(k)...)
		}
		return out
	}
	return []sqlast.Expr{e}
}

// exprAliases collects the table aliases an expression references.
func exprAliases(e sqlast.Expr, acc map[string]bool) map[string]bool {
	switch e := e.(type) {
	case sqlast.ColRef:
		acc[e.Table] = true
	case sqlast.Cmp:
		exprAliases(e.Left, acc)
		exprAliases(e.Right, acc)
	case sqlast.In:
		exprAliases(e.Left, acc)
	case sqlast.IsNull:
		exprAliases(e.Left, acc)
	case sqlast.And:
		for _, k := range e.Kids {
			exprAliases(k, acc)
		}
	case sqlast.Or:
		for _, k := range e.Kids {
			exprAliases(k, acc)
		}
	case sqlast.Lit:
	}
	return acc
}

func onlyAlias(aliases map[string]bool, alias string) bool {
	for a := range aliases {
		if a != alias {
			return false
		}
	}
	return len(aliases) > 0
}

func coveredBy(aliases map[string]bool, cur *frame, alias string) bool {
	for a := range aliases {
		if a == alias {
			continue
		}
		if !cur.hasAlias(a) {
			return false
		}
	}
	return true
}

// isJoinEq reports whether c is `left.col = right.col` connecting the current
// frame to the new alias.
func isJoinEq(e sqlast.Expr, cur *frame, alias string) bool {
	c, ok := e.(sqlast.Cmp)
	if !ok || c.Op != sqlast.OpEq {
		return false
	}
	l, lok := c.Left.(sqlast.ColRef)
	r, rok := c.Right.(sqlast.ColRef)
	if !lok || !rok {
		return false
	}
	if l.Table == alias && cur.hasAlias(r.Table) {
		return true
	}
	if r.Table == alias && cur.hasAlias(l.Table) {
		return true
	}
	return false
}

// evalPred evaluates a boolean expression over a composite row.
func evalPred(e sqlast.Expr, f *frame, row relational.Row) (bool, error) {
	switch e := e.(type) {
	case sqlast.Cmp:
		l, err := evalScalar(e.Left, f, row)
		if err != nil {
			return false, err
		}
		r, err := evalScalar(e.Right, f, row)
		if err != nil {
			return false, err
		}
		switch e.Op {
		case sqlast.OpEq:
			return l.Equal(r), nil
		case sqlast.OpNe:
			if l.IsNull() || r.IsNull() {
				return false, nil
			}
			return !l.Equal(r), nil
		}
		return false, fmt.Errorf("engine: unknown comparison op %v", e.Op)
	case sqlast.In:
		l, err := evalScalar(e.Left, f, row)
		if err != nil {
			return false, err
		}
		for _, lit := range e.List {
			if l.Equal(lit.Value) {
				return true, nil
			}
		}
		return false, nil
	case sqlast.IsNull:
		l, err := evalScalar(e.Left, f, row)
		if err != nil {
			return false, err
		}
		return l.IsNull(), nil
	case sqlast.And:
		for _, k := range e.Kids {
			ok, err := evalPred(k, f, row)
			if err != nil {
				return false, err
			}
			if !ok {
				return false, nil
			}
		}
		return true, nil
	case sqlast.Or:
		for _, k := range e.Kids {
			ok, err := evalPred(k, f, row)
			if err != nil {
				return false, err
			}
			if ok {
				return true, nil
			}
		}
		return false, nil
	default:
		return false, fmt.Errorf("engine: expression %T is not a predicate", e)
	}
}

func evalScalar(e sqlast.Expr, f *frame, row relational.Row) (relational.Value, error) {
	switch e := e.(type) {
	case sqlast.ColRef:
		idx, err := f.find(e.Table, e.Column)
		if err != nil {
			return relational.Null, err
		}
		return row[idx], nil
	case sqlast.Lit:
		return e.Value, nil
	default:
		return relational.Null, fmt.Errorf("engine: expression %T is not scalar", e)
	}
}
