// Package engine evaluates sqlast queries against a relational.Store.
//
// The executor supports exactly the SQL fragment the translators emit:
// SELECT-FROM-WHERE with conjunctive/disjunctive predicates, UNION ALL, and
// WITH [RECURSIVE] common table expressions evaluated to a fixpoint.
// Joins are executed left-deep in FROM order using hash joins on equality
// predicates, with single-source predicates pushed to the scans.
package engine

import (
	"sort"
	"strings"

	"xmlsql/internal/relational"
)

// Result is the multiset of rows a query produced.
type Result struct {
	Cols []string
	Rows []relational.Row
}

// Len returns the number of rows.
func (r *Result) Len() int { return len(r.Rows) }

// SortedRows returns a copy of the rows in deterministic order.
func (r *Result) SortedRows() []relational.Row {
	out := make([]relational.Row, len(r.Rows))
	copy(out, r.Rows)
	sort.Slice(out, func(i, j int) bool { return rowLess(out[i], out[j]) })
	return out
}

func rowLess(a, b relational.Row) bool {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := a[i].Compare(b[i]); c != 0 {
			return c < 0
		}
	}
	return len(a) < len(b)
}

// MultisetEqual reports whether two results contain the same rows with the
// same multiplicities, ignoring row order and column names.
func (r *Result) MultisetEqual(o *Result) bool {
	if len(r.Rows) != len(o.Rows) {
		return false
	}
	counts := make(map[string]int, len(r.Rows))
	for _, row := range r.Rows {
		counts[row.Key()]++
	}
	for _, row := range o.Rows {
		k := row.Key()
		counts[k]--
		if counts[k] < 0 {
			return false
		}
	}
	return true
}

// MultisetDiff describes how two results differ, for test failure messages.
// It returns a human-readable summary, or "" when equal.
func (r *Result) MultisetDiff(o *Result) string {
	type entry struct {
		row   relational.Row
		count int
	}
	counts := map[string]*entry{}
	for _, row := range r.Rows {
		k := row.Key()
		if e, ok := counts[k]; ok {
			e.count++
		} else {
			counts[k] = &entry{row: row, count: 1}
		}
	}
	for _, row := range o.Rows {
		k := row.Key()
		if e, ok := counts[k]; ok {
			e.count--
		} else {
			counts[k] = &entry{row: row, count: -1}
		}
	}
	var b strings.Builder
	keys := make([]string, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		e := counts[k]
		if e.count == 0 {
			continue
		}
		if e.count > 0 {
			b.WriteString("only in left (x")
		} else {
			b.WriteString("only in right (x")
			e.count = -e.count
		}
		b.WriteString(itoa(e.count))
		b.WriteString("): ")
		for i, v := range e.row {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(v.String())
		}
		b.WriteString("\n")
	}
	return b.String()
}

func itoa(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var buf []byte
	for n > 0 {
		buf = append([]byte{digits[n%10]}, buf...)
		n /= 10
	}
	return string(buf)
}

// Values returns the first column of every row, convenient for single-column
// query results.
func (r *Result) Values() []relational.Value {
	out := make([]relational.Value, 0, len(r.Rows))
	for _, row := range r.Rows {
		if len(row) > 0 {
			out = append(out, row[0])
		}
	}
	return out
}

// Strings returns the first column of every row rendered as Go strings
// (string values verbatim, others via Value.String), sorted.
func (r *Result) Strings() []string {
	out := make([]string, 0, len(r.Rows))
	for _, v := range r.Values() {
		if v.Kind() == relational.KindString {
			out = append(out, v.AsString())
		} else {
			out = append(out, v.String())
		}
	}
	sort.Strings(out)
	return out
}
