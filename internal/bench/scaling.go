package bench

import (
	"fmt"
	"strings"

	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

// ScalingPoint is one measurement of the scaling series: the speedup of the
// pruned translation over the baseline at a given document size.
type ScalingPoint struct {
	Scale    int     `json:"scale"`
	Tuples   int     `json:"tuples"`
	NaiveNs  float64 `json:"naive_ns"`
	PrunedNs float64 `json:"pruned_ns"`
	Speedup  float64 `json:"speedup"`
	Verified bool    `json:"verified"`
}

// ScalingSection is the JSON-report form of the series.
type ScalingSection struct {
	Query  string         `json:"query"`
	Points []ScalingPoint `json:"points"`
}

// ScalingSeries measures the Q1 speedup across document sizes — the
// figure-style companion to the E1 row. Each scale generates and shreds its
// instance exactly once; both translations then execute against that one
// store, so the two arms see identical bytes and the ratio is a pure
// plan-shape comparison. Under this engine's hash joins both translations
// scale linearly, so the ratio is roughly constant (~30×, fixed by the
// number of union branches and joins the pruning removed); on join
// algorithms whose cost is superlinear in input size the gap widens with
// data, which the nested-loop ablation demonstrates.
func ScalingSeries(query string, scales []int) ([]ScalingPoint, error) {
	s := workloads.XMark()
	q, err := pathexpr.Parse(query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(s, q)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	pruned, err := core.Translate(g)
	if err != nil {
		return nil, err
	}

	var out []ScalingPoint
	for _, sc := range scales {
		doc := workloads.GenerateXMark(workloads.XMarkConfig{
			ItemsPerContinent: 50 * sc,
			CategoriesPerItem: 2,
			NumCategories:     50,
			Seed:              1,
		})
		store := relational.NewStore()
		if _, err := shred.ShredAll(s, store, shred.Options{}, doc); err != nil {
			return nil, fmt.Errorf("scaling x%d: shred: %w", sc, err)
		}
		exec := memExec(store)
		nres, err := exec(naive)
		if err != nil {
			return nil, fmt.Errorf("scaling x%d: naive: %w", sc, err)
		}
		pres, err := exec(pruned.Query)
		if err != nil {
			return nil, fmt.Errorf("scaling x%d: pruned: %w", sc, err)
		}
		pt := ScalingPoint{
			Scale:    sc,
			Tuples:   store.TotalRows(),
			NaiveNs:  measure(exec, naive),
			PrunedNs: measure(exec, pruned.Query),
			Verified: nres.MultisetEqual(pres),
		}
		if pt.PrunedNs > 0 {
			pt.Speedup = pt.NaiveNs / pt.PrunedNs
		}
		out = append(out, pt)
	}
	return out, nil
}

// FormatScaling renders the series as a table.
func FormatScaling(query string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scaling series for %s (speedup vs document size):\n", query)
	fmt.Fprintf(&b, "%8s %10s %12s %12s %9s %4s\n", "scale", "tuples", "naive/op", "pruned/op", "speedup", "ok")
	for _, p := range pts {
		ok := "yes"
		if !p.Verified {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%7dx %10d %12s %12s %8.2fx %4s\n",
			p.Scale, p.Tuples, fmtNs(p.NaiveNs), fmtNs(p.PrunedNs), p.Speedup, ok)
	}
	return b.String()
}
