package bench

import (
	"fmt"
	"strings"

	"xmlsql/internal/workloads"
)

// ScalingPoint is one measurement of the scaling series: the speedup of the
// pruned translation over the baseline at a given document size.
type ScalingPoint struct {
	Scale    int
	Tuples   int
	NaiveNs  float64
	PrunedNs float64
	Speedup  float64
	Verified bool
}

// ScalingSeries measures the Q1 speedup across document sizes — the
// figure-style companion to the E1 row. Under this engine's hash joins both
// translations scale linearly, so the ratio is roughly constant (~30×,
// fixed by the number of union branches and joins the pruning removed); on
// join algorithms whose cost is superlinear in input size the gap widens
// with data, which the nested-loop ablation demonstrates.
func ScalingSeries(query string, scales []int) ([]ScalingPoint, error) {
	s := workloads.XMark()
	var out []ScalingPoint
	for _, sc := range scales {
		doc := workloads.GenerateXMark(workloads.XMarkConfig{
			ItemsPerContinent: 50 * sc,
			CategoriesPerItem: 2,
			NumCategories:     50,
			Seed:              1,
		})
		cmp, err := Run(Case{
			Experiment: "S",
			Workload:   fmt.Sprintf("xmark-x%d", sc),
			Query:      query,
			Schema:     s,
			Doc:        doc,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, ScalingPoint{
			Scale:    sc,
			Tuples:   cmp.TotalRows,
			NaiveNs:  cmp.NaiveNs,
			PrunedNs: cmp.PrunedNs,
			Speedup:  cmp.Speedup,
			Verified: cmp.Verified,
		})
	}
	return out, nil
}

// FormatScaling renders the series as a table.
func FormatScaling(query string, pts []ScalingPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "scaling series for %s (speedup vs document size):\n", query)
	fmt.Fprintf(&b, "%8s %10s %12s %12s %9s %4s\n", "scale", "tuples", "naive/op", "pruned/op", "speedup", "ok")
	for _, p := range pts {
		ok := "yes"
		if !p.Verified {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%7dx %10d %12s %12s %8.2fx %4s\n",
			p.Scale, p.Tuples, fmtNs(p.NaiveNs), fmtNs(p.PrunedNs), p.Speedup, ok)
	}
	return b.String()
}
