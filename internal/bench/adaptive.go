package bench

import (
	"context"
	"fmt"
	"strings"

	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/stats"
	"xmlsql/internal/translate"
)

// AdaptiveComparison measures the cost-based adaptive planner against every
// fixed knob setting on one case. The adaptive time is the measured time of
// the exact configuration the chooser picked (the chooser is deterministic
// given statistics, so this is the time an adaptive serve pays, minus the
// cached planning itself) — which makes the gates noise-free: choosing the
// baseline yields a speedup of exactly 1.0 by construction.
type AdaptiveComparison struct {
	// Suite is "headline" (the E1–E8 naive-vs-pruned cases, gated on
	// speedup >= 1.0) or "sharedwork" (the branch-heavy factoring/memo
	// cases, gated on staying within 10% of the best fixed configuration).
	Suite    string `json:"suite"`
	Workload string `json:"workload"`
	Query    string `json:"query"`

	// KnobKey is the chooser's plan-level knob vector; Parallel and Memo are
	// the engine Auto mode's execution-time resolutions for the chosen plan.
	KnobKey  string `json:"knob_key"`
	Parallel bool   `json:"parallel"`
	Memo     bool   `json:"memo"`
	// ParallelDisagrees reports that Auto's stats-driven serial/parallel
	// decision differs from the old branch-count heuristic.
	ParallelDisagrees bool `json:"parallel_disagrees"`

	// EstimatedRows vs ActualRows tracks estimator accuracy per case.
	EstimatedRows float64 `json:"estimated_rows"`
	ActualRows    int     `json:"actual_rows"`

	// FixedNs maps each fixed configuration to its measured ns/op;
	// AdaptiveNs is FixedNs of the configuration the chooser picked.
	FixedNs     map[string]float64 `json:"fixed_ns"`
	BestFixed   string             `json:"best_fixed"`
	BestFixedNs float64            `json:"best_fixed_ns"`
	AdaptiveNs  float64            `json:"adaptive_ns"`

	// SpeedupVsBaseline is baseline-config ns over adaptive ns (>= 1.0 is
	// the headline gate); VsBestFixed is adaptive ns over the best fixed
	// configuration's ns (<= 1.1 is the shared-work gate).
	SpeedupVsBaseline float64 `json:"speedup_vs_baseline"`
	VsBestFixed       float64 `json:"vs_best_fixed"`

	Verified bool `json:"verified"`

	// baselineKey names the fixed configuration SpeedupVsBaseline divides
	// by: "baseline" for headline cases, the PR-1 parallel baseline
	// ("unfactored+nomemo") for shared-work ones.
	baselineKey string
}

// RunAdaptive measures the adaptive planner on the headline suite and the
// shared-work suite.
func RunAdaptive(sc Scale) ([]*AdaptiveComparison, error) {
	var out []*AdaptiveComparison
	for _, c := range Suite(sc) {
		cmp, err := runAdaptiveHeadline(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	swCases, err := sharedWorkSuite(sc)
	if err != nil {
		return nil, err
	}
	for _, c := range swCases {
		cmp, err := runAdaptiveShared(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

// runAdaptiveHeadline pits the chooser against the fixed naive and pruned
// plans of one E1–E8 case.
func runAdaptiveHeadline(c Case) (*AdaptiveComparison, error) {
	store := relational.NewStore()
	if _, err := shred.ShredAll(c.Schema, store, c.ShredOpts, c.Doc); err != nil {
		return nil, fmt.Errorf("adaptive %s %s: shred: %w", c.Workload, c.Query, err)
	}
	q, err := pathexpr.Parse(c.Query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(c.Schema, q)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	var pruned *sqlast.Query
	if pr, err := core.Translate(g); err == nil && !pr.Fallback {
		pruned = pr.Query
	}
	dec := translate.ChoosePlan(naive, pruned, c.Schema, stats.NewEstimator(stats.CollectStore(store)))

	cmp, err := adaptiveMeasure("headline", c.Workload, c.Query, store, naive, dec)
	if err != nil {
		return nil, err
	}
	grid := []gridItem{{name: "baseline", q: naive}}
	cmp.baselineKey = "baseline"
	if pruned != nil {
		grid = append(grid, gridItem{name: "pruned", q: pruned})
	}
	if dec.Factored || dec.Reordered {
		// The rewritten plan is its own fixed configuration; measure it once
		// and charge the adaptive run that same number.
		grid = append(grid, gridItem{name: "rewritten", q: dec.Query})
	}
	cmp.FixedNs = measureGrid(store, grid)
	switch {
	case dec.Factored || dec.Reordered:
		cmp.AdaptiveNs = cmp.FixedNs["rewritten"]
	case dec.UsePruned:
		cmp.AdaptiveNs = cmp.FixedNs["pruned"]
	default:
		cmp.AdaptiveNs = cmp.FixedNs["baseline"]
	}
	cmp.finish()
	return cmp, nil
}

// runAdaptiveShared pits the chooser (plus the engine's Auto memo decision)
// against every fixed plan × memo combination on one branch-heavy
// shared-work case.
func runAdaptiveShared(c sharedWorkCase) (*AdaptiveComparison, error) {
	store := relational.NewStore()
	if _, err := shred.ShredAll(c.schema, store, shred.Options{}, c.doc); err != nil {
		return nil, fmt.Errorf("adaptive %s %s: shred: %w", c.workload, c.query, err)
	}
	q, err := pathexpr.Parse(c.query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(c.schema, q)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	// The shared-work suite studies the naive unions; the chooser here
	// decides factoring/reorder and the engine Auto mode decides the memo.
	dec := translate.ChoosePlan(naive, nil, c.schema, stats.NewEstimator(stats.CollectStore(store)))

	cmp, err := adaptiveMeasure("sharedwork", c.workload, c.query, store, naive, dec)
	if err != nil {
		return nil, err
	}
	// Fixed grid: both plans under both memo settings (the PR-1 parallel
	// baseline is unfactored+nomemo).
	plans := map[string]*sqlast.Query{"unfactored": naive}
	chosenPlan := "unfactored"
	if dec.Factored || dec.Reordered {
		chosenPlan = "rewritten"
		plans[chosenPlan] = dec.Query
	}
	var grid []gridItem
	for name, plan := range plans {
		grid = append(grid,
			gridItem{name: name + "+memo", q: plan},
			gridItem{name: name + "+nomemo", q: plan, opts: engine.Options{DisableMemo: true}})
	}
	cmp.FixedNs = measureGrid(store, grid)
	memoKey := "+nomemo"
	if cmp.Memo {
		memoKey = "+memo"
	}
	cmp.AdaptiveNs = cmp.FixedNs[chosenPlan+memoKey]
	cmp.baselineKey = "unfactored+nomemo"
	cmp.finish()
	return cmp, nil
}

// gridItem is one fixed configuration to measure: a plan under explicit
// engine options.
type gridItem struct {
	name string
	q    *sqlast.Query
	opts engine.Options
}

// measureGrid measures every configuration in interleaved rounds and keeps
// each one's per-round minimum. The gate ratios compare configurations whose
// true times differ by under 10%, so drift across a back-to-back measurement
// block (GC pressure accumulating, noisy-neighbor scheduling) would flip
// verdicts; interleaving means drift hits all configurations alike, and the
// min discards whichever round was disturbed.
func measureGrid(store *relational.Store, items []gridItem) map[string]float64 {
	const rounds = 2
	out := make(map[string]float64, len(items))
	for r := 0; r < rounds; r++ {
		for _, it := range items {
			ns := measureOpts(store, it.q, it.opts)
			if ns <= 0 {
				continue
			}
			if cur, ok := out[it.name]; !ok || ns < cur {
				out[it.name] = ns
			}
		}
	}
	return out
}

// adaptiveMeasure runs the shared part of both adaptive suites: execute the
// chosen plan under engine Auto — verifying its multiset against the naive
// plan and recording the resolved execution knobs and estimates. Callers
// measure their fixed configurations, set AdaptiveNs, and call finish.
func adaptiveMeasure(suite, workload, query string, store *relational.Store, naive *sqlast.Query, dec *translate.Decision) (*AdaptiveComparison, error) {
	ctx := context.Background()
	baseRes, _, err := engine.ExecuteCtxStats(ctx, store, naive, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("adaptive %s %s: baseline: %w", workload, query, err)
	}
	adRes, adStats, err := engine.ExecuteCtxStats(ctx, store, dec.Query, engine.Options{Auto: true, Estimate: dec.ChosenEst})
	if err != nil {
		return nil, fmt.Errorf("adaptive %s %s: auto: %w", workload, query, err)
	}
	return &AdaptiveComparison{
		Suite:             suite,
		Workload:          workload,
		Query:             query,
		KnobKey:           dec.KnobKey(),
		Parallel:          adStats.ParallelEnabled,
		Memo:              adStats.MemoEnabled,
		ParallelDisagrees: adStats.ParallelDisagrees,
		EstimatedRows:     dec.ChosenEst.Rows,
		ActualRows:        adRes.Len(),
		Verified:          baseRes.MultisetEqual(adRes),
	}, nil
}

// finish derives BestFixed/BestFixedNs and the two gate ratios once all
// fixed configurations are measured and AdaptiveNs is set.
func (c *AdaptiveComparison) finish() {
	for name, ns := range c.FixedNs {
		if ns <= 0 {
			continue
		}
		if c.BestFixedNs == 0 || ns < c.BestFixedNs || (ns == c.BestFixedNs && name < c.BestFixed) {
			c.BestFixed, c.BestFixedNs = name, ns
		}
	}
	if base := c.FixedNs[c.baselineKey]; base > 0 && c.AdaptiveNs > 0 {
		c.SpeedupVsBaseline = base / c.AdaptiveNs
	}
	if c.BestFixedNs > 0 && c.AdaptiveNs > 0 {
		c.VsBestFixed = c.AdaptiveNs / c.BestFixedNs
	}
}

// AdaptiveGate checks the acceptance gates over a measured adaptive run:
// no headline case may regress below speedup 1.0, and no shared-work case
// may run more than maxVsBest (e.g. 1.1) times the best fixed
// configuration. It returns one error per violated gate.
func AdaptiveGate(cmps []*AdaptiveComparison, maxVsBest float64) []error {
	var errs []error
	for _, c := range cmps {
		if !c.Verified {
			errs = append(errs, fmt.Errorf("adaptive %s %s %s: verification failed", c.Suite, c.Workload, c.Query))
		}
		switch c.Suite {
		case "headline":
			if c.SpeedupVsBaseline < 1.0 {
				errs = append(errs, fmt.Errorf("adaptive headline %s %s: speedup %.3f < 1.0 (chose %s)",
					c.Workload, c.Query, c.SpeedupVsBaseline, c.KnobKey))
			}
		case "sharedwork":
			if c.VsBestFixed > maxVsBest {
				errs = append(errs, fmt.Errorf("adaptive sharedwork %s %s: %.3fx the best fixed configuration %s (> %.2fx)",
					c.Workload, c.Query, c.VsBestFixed, c.BestFixed, maxVsBest))
			}
		}
	}
	return errs
}

// FormatAdaptive renders the adaptive comparisons as a fixed-width table.
func FormatAdaptive(cmps []*AdaptiveComparison) string {
	var b strings.Builder
	b.WriteString("Adaptive planning: cost-based knob selection vs fixed configurations\n")
	fmt.Fprintf(&b, "%-10s %-18s %-28s %-34s %5s %10s %10s %8s %7s %3s\n",
		"suite", "workload", "query", "knobs", "memo", "adapt/op", "best/op", "speedup", "vsbest", "ok")
	b.WriteString(strings.Repeat("-", 142))
	b.WriteString("\n")
	for _, c := range cmps {
		ok := "yes"
		if !c.Verified {
			ok = "NO"
		}
		memo := "off"
		if c.Memo {
			memo = "on"
		}
		fmt.Fprintf(&b, "%-10s %-18s %-28s %-34s %5s %10s %10s %7.2fx %6.2fx %3s\n",
			c.Suite, c.Workload, truncate(c.Query, 28), truncate(c.KnobKey, 34), memo,
			fmtNs(c.AdaptiveNs), fmtNs(c.BestFixedNs), c.SpeedupVsBaseline, c.VsBestFixed, ok)
	}
	dis := 0
	for _, c := range cmps {
		if c.ParallelDisagrees {
			dis++
		}
	}
	fmt.Fprintf(&b, "stats-driven parallel decision disagreed with the branch-count heuristic on %d/%d cases\n", dis, len(cmps))
	return b.String()
}
