// Package bench is the experiment harness: for every worked example and
// claim in the paper it builds the workload, shreds it, translates each
// query with and without the "lossless from XML" constraint, verifies that
// both translations agree with the reference XML evaluation, and measures
// execution times. cmd/benchrunner prints its tables; EXPERIMENTS.md records
// them.
package bench

import (
	"context"
	"fmt"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// Case is one (workload, query) measurement unit.
type Case struct {
	Experiment  string // E1..E8 id from DESIGN.md
	Workload    string
	Query       string
	Schema      *schema.Schema
	Doc         *xmltree.Document
	ShredOpts   shred.Options
	Description string
}

// Comparison is the measured outcome of a Case.
type Comparison struct {
	Case

	// Backend names where the measured executions ran ("mem" or
	// "db(sqlite)"); verification always also consults the reference XML
	// evaluation.
	Backend     string
	NaiveShape  sqlast.Shape
	PrunedShape sqlast.Shape
	NaiveSQL    string
	PrunedSQL   string
	Fallback    bool

	Rows      int
	NaiveNs   float64
	PrunedNs  float64
	Speedup   float64
	Verified  bool
	TotalRows int // store size
}

// MinMeasureTime is how long each side is measured (adaptive repetitions).
const MinMeasureTime = 50 * time.Millisecond

// BackendNames lists the -backend values benchrunner accepts: "mem" runs
// queries directly on the in-memory engine, "fakedb" routes them through the
// DB backend (dialect rendering, database/sql, the fake driver's SQL parser)
// so the serving overhead of a real driver stack is measurable.
func BackendNames() []string { return []string{"mem", "fakedb"} }

// Run measures one case on the in-memory engine.
func Run(c Case) (*Comparison, error) { return RunOn(c, "mem") }

// RunOn measures one case with executions routed to the named backend.
func RunOn(c Case, backendName string) (*Comparison, error) {
	store := relational.NewStore()
	results, err := shred.ShredAll(c.Schema, store, c.ShredOpts, c.Doc)
	if err != nil {
		return nil, fmt.Errorf("%s %s: shred: %w", c.Experiment, c.Query, err)
	}

	// The reference store stays authoritative for verification; the named
	// backend is what executes (and is measured). The fakedb route copies
	// the shredded rows over the same DDL + INSERT scripts xml2sql emits,
	// so custom ShredOpts instances transfer exactly.
	exec := memExec(store)
	label := "mem"
	switch backendName {
	case "", "mem":
	case "fakedb":
		d := sqlast.DialectSQLite
		raw := fakedb.Open()
		ddl, err := backend.DDL(c.Schema, d)
		if err != nil {
			return nil, fmt.Errorf("%s %s: ddl: %w", c.Experiment, c.Query, err)
		}
		if _, err := raw.Exec(ddl); err != nil {
			return nil, fmt.Errorf("%s %s: ddl: %w", c.Experiment, c.Query, err)
		}
		if _, err := raw.Exec(backend.LoadScript(store, d)); err != nil {
			return nil, fmt.Errorf("%s %s: load: %w", c.Experiment, c.Query, err)
		}
		db := backend.NewDB(raw, d)
		defer db.Close()
		exec = func(q *sqlast.Query) (*engine.Result, error) {
			return db.Execute(context.Background(), q)
		}
		label = db.Name()
	default:
		return nil, fmt.Errorf("bench: unknown backend %q (want mem or fakedb)", backendName)
	}

	q, err := pathexpr.Parse(c.Query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(c.Schema, q)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	pruned, err := core.Translate(g)
	if err != nil {
		return nil, err
	}

	nres, err := exec(naive)
	if err != nil {
		return nil, fmt.Errorf("%s %s: naive execution: %w", c.Experiment, c.Query, err)
	}
	pres, err := exec(pruned.Query)
	if err != nil {
		return nil, fmt.Errorf("%s %s: pruned execution: %w", c.Experiment, c.Query, err)
	}

	verified := nres.MultisetEqual(pres)
	if verified {
		wantVals, err := shred.EvalReferenceAll(results, q)
		if err != nil {
			return nil, err
		}
		want := &engine.Result{}
		for _, v := range wantVals {
			want.Rows = append(want.Rows, relational.Row{v})
		}
		verified = pres.MultisetEqual(want)
	}

	naiveNs := measure(exec, naive)
	prunedNs := measure(exec, pruned.Query)

	cmp := &Comparison{
		Case:        c,
		Backend:     label,
		NaiveShape:  naive.Shape(),
		PrunedShape: pruned.Query.Shape(),
		NaiveSQL:    naive.SQL(),
		PrunedSQL:   pruned.Query.SQL(),
		Fallback:    pruned.Fallback,
		Rows:        pres.Len(),
		NaiveNs:     naiveNs,
		PrunedNs:    prunedNs,
		Verified:    verified,
		TotalRows:   store.TotalRows(),
	}
	if prunedNs > 0 {
		cmp.Speedup = naiveNs / prunedNs
	}
	return cmp, nil
}

// memExec adapts an in-memory store to the executor signature measure and
// RunOn route queries through, so ablations (always in-memory) and the
// backend-selectable main suite share one measurement path.
func memExec(store *relational.Store) func(*sqlast.Query) (*engine.Result, error) {
	return func(q *sqlast.Query) (*engine.Result, error) {
		return engine.Execute(store, q)
	}
}

// measure executes the query repeatedly for at least MinMeasureTime and
// returns the mean per-execution nanoseconds.
func measure(exec func(*sqlast.Query) (*engine.Result, error), q *sqlast.Query) float64 {
	// Warm-up run.
	if _, err := exec(q); err != nil {
		return 0
	}
	var reps int
	start := time.Now()
	for time.Since(start) < MinMeasureTime || reps < 3 {
		if _, err := exec(q); err != nil {
			return 0
		}
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// Scale multiplies the default document sizes.
type Scale struct {
	ItemsPerContinent int
	AdsPerSection     int
	S1Groups          int
	S2Groups          int
	S3Fanout          int
	S3Depth           int
}

// DefaultScale is sized for quick runs; cmd/benchrunner can raise it.
func DefaultScale() Scale {
	return Scale{ItemsPerContinent: 200, AdsPerSection: 300, S1Groups: 300, S2Groups: 200, S3Fanout: 3, S3Depth: 6}
}

// Suite assembles the full experiment list E1..E8 at a given scale.
func Suite(sc Scale) []Case {
	xm := workloads.XMark()
	xmDoc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	s1 := workloads.S1()
	s1Doc := workloads.GenerateS1(sc.S1Groups, 1)
	adversarial := shred.Options{FillUnspecified: func(rel, col string, kind relational.Kind) relational.Value {
		return relational.Int(1)
	}}
	s2 := workloads.S2()
	s2Doc := workloads.GenerateS2(sc.S2Groups, 1)
	s3 := workloads.S3()
	s3Doc := workloads.GenerateS3(workloads.S3Config{Fanout: sc.S3Fanout, MaxDepth: sc.S3Depth, Seed: 1})
	xf := workloads.XMarkFull()
	edge, err := shred.EdgeSchemaFor(xf)
	if err != nil {
		panic(err)
	}
	edgeDoc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent / 2, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	adex := workloads.ADEX()
	adexDoc := workloads.GenerateADEX(workloads.ADEXConfig{AdsPerSection: sc.AdsPerSection, Seed: 1})
	xa := workloads.XMarkAuctions()
	xaDoc := workloads.GenerateXMarkAuctions(workloads.XMarkAuctionsConfig{
		ItemsPerContinent: sc.ItemsPerContinent / 2,
		People:            sc.AdsPerSection,
		OpenAuctions:      sc.AdsPerSection,
		BiddersPerAuction: 3,
		ClosedAuctions:    sc.AdsPerSection / 2,
		Seed:              1,
	})

	cases := []Case{
		{Experiment: "E1", Workload: "xmark", Query: workloads.QueryQ1, Schema: xm, Doc: xmDoc,
			Description: "§2 Q1: SQ1^1 (6-branch union of 2-join queries) vs SQ1^2 (scan)"},
		{Experiment: "E2", Workload: "xmark", Query: workloads.QueryQ2, Schema: xm, Doc: xmDoc,
			Description: "§4.1 Q2: root-to-leaf 2-join chain vs 1-join suffix with parentcode"},
		{Experiment: "E3", Workload: "s1", Query: workloads.QueryQ3, Schema: s1, Doc: s1Doc, ShredOpts: adversarial,
			Description: "Fig.5 Q3: duplicate-avoiding SQ3^2 on an adversarial instance"},
		{Experiment: "E4", Workload: "s2", Query: "//s/t1", Schema: s2, Doc: s2Doc,
			Description: "Fig.6 DAG: shared-subtree WITH clauses vs pruned scan"},
		{Experiment: "E4", Workload: "s2", Query: "//t2", Schema: s2, Doc: s2Doc,
			Description: "Fig.6 DAG: second leaf"},
		{Experiment: "E5", Workload: "s3", Query: workloads.QueryQ4, Schema: s3, Doc: s3Doc,
			Description: "Fig.7 Q4: two WITH clauses vs R6 ⋈ R10"},
		{Experiment: "E5", Workload: "s3", Query: workloads.QueryQ5, Schema: s3, Doc: s3Doc,
			Description: "Fig.7 Q5: graph-path growth stopping at R1"},
		{Experiment: "E6", Workload: "s3", Query: workloads.QueryQ6, Schema: s3, Doc: s3Doc,
			Description: "Fig.9 Q6: recursive baseline vs R9 ⋈ R10"},
		{Experiment: "E6", Workload: "s3", Query: workloads.QueryQ7, Schema: s3, Doc: s3Doc,
			Description: "Fig.9 Q7: entering the recursive component, saving the R0 join"},
		{Experiment: "E7", Workload: "xmarkfull-edge", Query: workloads.QueryQ8, Schema: edge, Doc: edgeDoc,
			Description: "§5.3 Q8: 6-way self-join union vs 2-way Edge self-join"},
	}

	// E8: the speedup-range suite standing in for the referenced [10]
	// evaluation over XMark and ADEX.
	e8 := []struct {
		wl    string
		s     *schema.Schema
		d     *xmltree.Document
		query string
	}{
		{"xmark", xm, xmDoc, "//Item/InCategory/Category"},
		{"xmark", xm, xmDoc, "//InCategory/Category"},
		{"xmark", xm, xmDoc, "//Item/name"},
		{"xmark", xm, xmDoc, "//Item"},
		{"xmark", xm, xmDoc, "/Site/Regions/Africa/Item/InCategory/Category"},
		{"xmark", xm, xmDoc, "/Site/Regions/SouthAmerica/Item/name"},
		{"xmark", xm, xmDoc, "/Site//InCategory/Category"},
		{"adex", adex, adexDoc, workloads.QueryAdexAllPhones},
		{"adex", adex, adexDoc, workloads.QueryAdexAllTitles},
		{"adex", adex, adexDoc, workloads.QueryAdexVehicleEmails},
		{"adex", adex, adexDoc, workloads.QueryAdexPrices},
		{"adex", adex, adexDoc, "/Classifieds/Employment/Ad/Title"},
		{"adex", adex, adexDoc, "//Contact/Email"},
	}
	for _, e := range e8 {
		cases = append(cases, Case{
			Experiment: "E8", Workload: e.wl, Query: e.query, Schema: e.s, Doc: e.d,
			Description: "speedup-range suite (stands in for the [10] evaluation)",
		})
	}
	for _, q := range workloads.XMarkAuctionQueries {
		cases = append(cases, Case{
			Experiment: "E8", Workload: "xmarkauctions", Query: q, Schema: xa, Doc: xaDoc,
			Description: "extended XMark slice (people + auctions)",
		})
	}
	return cases
}

// RunSuite measures every case on the in-memory engine.
func RunSuite(sc Scale) ([]*Comparison, error) { return RunSuiteOn(sc, "mem") }

// RunSuiteOn measures every case on the named backend (see BackendNames).
func RunSuiteOn(sc Scale, backendName string) ([]*Comparison, error) {
	var out []*Comparison
	for _, c := range Suite(sc) {
		cmp, err := RunOn(c, backendName)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}
