package bench

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"xmlsql"
	"xmlsql/internal/server"
	"xmlsql/internal/workloads"
)

// FrontendComparison is one closed-loop run against a live serving front
// end: N clients, each issuing its next query the moment the previous one
// answers, for a fixed wall-clock window. Under-capacity runs (offered load
// below the tenant's limits) must not shed; overload runs (clients far
// beyond the in-flight bound) must shed with typed retry-after errors while
// the accepted queries' tail latency stays bounded — the no-queueing-
// collapse property the admission pipeline exists for.
type FrontendComparison struct {
	Workload string `json:"workload"`
	Protocol string `json:"protocol"` // "http" or "line"
	Mode     string `json:"mode"`     // "under" (below capacity) or "over" (overload)
	Clients  int    `json:"clients"`
	// InFlightLimit is the tenant's admission bound for the run.
	InFlightLimit int     `json:"in_flight_limit"`
	DurationMs    float64 `json:"duration_ms"`
	// RateLimit is the tenant's token-bucket rate for the run (0 =
	// unlimited).
	RateLimit float64 `json:"rate_limit,omitempty"`
	// Completed counts accepted, successfully answered queries; Shed counts
	// typed admission refusals; Errors counts everything else.
	Completed int64 `json:"completed"`
	Shed      int64 `json:"shed"`
	Errors    int64 `json:"errors"`
	// QPS is sustained completed queries per second over the window.
	QPS float64 `json:"qps"`
	// ShedRate is Shed / (Completed + Shed).
	ShedRate float64 `json:"shed_rate"`
	// Latency percentiles over the accepted queries only (round-trip,
	// client-observed).
	P50Ns  float64 `json:"p50_ns"`
	P99Ns  float64 `json:"p99_ns"`
	P999Ns float64 `json:"p999_ns"`
	MeanNs float64 `json:"mean_ns"`
	// Exec percentiles are the server-reported per-query execution times
	// (the elapsed_ns both protocols return with each answer): admission
	// wait excluded, post-admission queueing included. The overload gate
	// compares these rather than round-trip times, because with driver and
	// server sharing one process the round trip also counts the driver's
	// own goroutine-scheduling delays, which say nothing about the server.
	ExecP50Ns  float64 `json:"exec_p50_ns"`
	ExecP99Ns  float64 `json:"exec_p99_ns"`
	ExecP999Ns float64 `json:"exec_p999_ns"`
}

// DriveConfig aims a closed-loop client fleet at one tenant of a live
// server (in-process or a separate xmlserve process — only the address
// matters).
type DriveConfig struct {
	// Protocol selects the front end: "http" or "line".
	Protocol string
	// Addr is the server's host:port for that protocol.
	Addr string
	Tenant string
	Query  string
	// Clients is the closed-loop fleet size.
	Clients int
	// Duration is the measurement window.
	Duration time.Duration
	// ShedPause is the minimum back-off after a shed or error; 0 means 1ms.
	// When the server's typed shed response carries a retry-after hint
	// (retry_after_ms in the HTTP error body, the second ERR field on the
	// line protocol), the client honors it, clamped to
	// [ShedPause, MaxShedPause].
	ShedPause time.Duration
	// MaxShedPause caps the honored retry-after hint so a conservative
	// server hint cannot idle the fleet mid-window; 0 means 100ms.
	MaxShedPause time.Duration
}

// Drive runs one closed-loop measurement. Every client issues requests
// back-to-back until the window closes; accepted-query latencies are merged
// and summarized into percentiles.
func Drive(cfg DriveConfig) (*FrontendComparison, error) {
	if cfg.Clients <= 0 || cfg.Duration <= 0 {
		return nil, fmt.Errorf("bench: Drive wants positive Clients and Duration")
	}
	if cfg.ShedPause <= 0 {
		cfg.ShedPause = time.Millisecond
	}
	if cfg.MaxShedPause <= 0 {
		cfg.MaxShedPause = 100 * time.Millisecond
	}
	backoff := func(hint time.Duration) time.Duration {
		if hint < cfg.ShedPause {
			hint = cfg.ShedPause
		}
		if hint > cfg.MaxShedPause {
			hint = cfg.MaxShedPause
		}
		// Jitter to ±50%: a fleet honoring identical retry-after hints would
		// otherwise wake as one herd, colliding with whichever query was just
		// admitted and inflating the accepted tail for no admission-related
		// reason.
		return hint/2 + time.Duration(rand.Int63n(int64(hint)+1))
	}
	type clientResult struct {
		lats      []int64
		execs     []int64
		shed      int64
		errs      int64
		lastError error
	}
	results := make([]clientResult, cfg.Clients)
	var wg sync.WaitGroup
	start := time.Now()
	deadline := start.Add(cfg.Duration)
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(r *clientResult) {
			defer wg.Done()
			var c frontendClient
			switch cfg.Protocol {
			case "line":
				c = &lineClient{addr: cfg.Addr}
			case "http", "":
				c = newHTTPClient(cfg.Addr)
			default:
				r.errs++
				r.lastError = fmt.Errorf("unknown protocol %q", cfg.Protocol)
				return
			}
			defer c.close()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				rep, e := c.query(cfg.Tenant, cfg.Query)
				lat := time.Since(t0)
				switch {
				case e != nil:
					r.errs++
					r.lastError = e
					time.Sleep(cfg.ShedPause)
				case rep.out == outcomeOK:
					r.lats = append(r.lats, lat.Nanoseconds())
					r.execs = append(r.execs, rep.serverNs)
				case rep.out == outcomeShed:
					r.shed++
					time.Sleep(backoff(rep.retryAfter))
				}
			}
		}(&results[i])
	}
	wg.Wait()
	elapsed := time.Since(start)

	cmp := &FrontendComparison{
		Protocol:   cfg.Protocol,
		Mode:       "",
		Clients:    cfg.Clients,
		DurationMs: float64(elapsed.Nanoseconds()) / 1e6,
	}
	var all, execs []int64
	var lastErr error
	for i := range results {
		all = append(all, results[i].lats...)
		execs = append(execs, results[i].execs...)
		cmp.Shed += results[i].shed
		cmp.Errors += results[i].errs
		if results[i].lastError != nil {
			lastErr = results[i].lastError
		}
	}
	cmp.Completed = int64(len(all))
	if cmp.Completed == 0 && lastErr != nil {
		return nil, fmt.Errorf("bench: frontend drive completed nothing (%d errors, last: %w)", cmp.Errors, lastErr)
	}
	if secs := elapsed.Seconds(); secs > 0 {
		cmp.QPS = float64(cmp.Completed) / secs
	}
	if n := cmp.Completed + cmp.Shed; n > 0 {
		cmp.ShedRate = float64(cmp.Shed) / float64(n)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	cmp.P50Ns = percentile(all, 0.50)
	cmp.P99Ns = percentile(all, 0.99)
	cmp.P999Ns = percentile(all, 0.999)
	var sum int64
	for _, l := range all {
		sum += l
	}
	if len(all) > 0 {
		cmp.MeanNs = float64(sum) / float64(len(all))
	}
	sort.Slice(execs, func(i, j int) bool { return execs[i] < execs[j] })
	cmp.ExecP50Ns = percentile(execs, 0.50)
	cmp.ExecP99Ns = percentile(execs, 0.99)
	cmp.ExecP999Ns = percentile(execs, 0.999)
	return cmp, nil
}

// percentile reads the p-quantile from sorted latencies.
func percentile(sorted []int64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx])
}

type outcome int

const (
	outcomeOK outcome = iota
	outcomeShed
)

// reply is one request's outcome: the server-reported execution time on
// success, the server's retry-after hint on sheds.
type reply struct {
	out        outcome
	serverNs   int64
	retryAfter time.Duration
}

// frontendClient is one closed-loop client of either protocol.
type frontendClient interface {
	query(tenant, query string) (reply, error)
	close()
}

// httpClient drives GET /query with keep-alive connections.
type httpClient struct {
	base   string
	client *http.Client
}

func newHTTPClient(addr string) *httpClient {
	return &httpClient{
		base: "http://" + addr,
		client: &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: 4},
			Timeout:   30 * time.Second,
		},
	}
}

func (c *httpClient) query(tenant, query string) (reply, error) {
	u := c.base + "/query?tenant=" + url.QueryEscape(tenant) + "&q=" + url.QueryEscape(query)
	resp, err := c.client.Get(u)
	if err != nil {
		return reply{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch {
	case resp.StatusCode == http.StatusOK:
		var qr struct {
			ElapsedNs int64 `json:"elapsed_ns"`
		}
		json.NewDecoder(resp.Body).Decode(&qr)
		return reply{out: outcomeOK, serverNs: qr.ElapsedNs}, nil
	case resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable:
		// The typed shed body carries a millisecond retry-after hint.
		var er struct {
			Error struct {
				RetryAfterMs int64 `json:"retry_after_ms"`
			} `json:"error"`
		}
		json.NewDecoder(resp.Body).Decode(&er)
		return reply{out: outcomeShed, retryAfter: time.Duration(er.Error.RetryAfterMs) * time.Millisecond}, nil
	default:
		return reply{}, fmt.Errorf("http %d from /query", resp.StatusCode)
	}
}

func (c *httpClient) close() { c.client.CloseIdleConnections() }

// lineClient drives the Q verb over one persistent line-protocol
// connection, redialing if the server cuts it (connection-limit sheds close
// the connection after the ERR line).
type lineClient struct {
	addr string
	conn net.Conn
	r    *bufio.Reader
}

func (c *lineClient) dial() error {
	conn, err := net.DialTimeout("tcp", c.addr, 5*time.Second)
	if err != nil {
		return err
	}
	c.conn = conn
	c.r = bufio.NewReader(conn)
	return nil
}

func (c *lineClient) query(tenant, query string) (reply, error) {
	if c.conn == nil {
		if err := c.dial(); err != nil {
			return reply{}, err
		}
	}
	if _, err := fmt.Fprintf(c.conn, "Q %s %s\n", tenant, query); err != nil {
		c.close()
		return reply{}, err
	}
	resp, err := c.r.ReadString('\n')
	if err != nil {
		c.close()
		return reply{}, err
	}
	switch {
	case strings.HasPrefix(resp, "OK "):
		// "OK <rows> <elapsed_ns>"
		var serverNs int64
		if f := strings.Fields(resp); len(f) >= 3 {
			serverNs, _ = strconv.ParseInt(f[2], 10, 64)
		}
		return reply{out: outcomeOK, serverNs: serverNs}, nil
	case strings.HasPrefix(resp, "ERR shed_") || strings.HasPrefix(resp, "ERR draining"):
		// "ERR <code> <retry_after_ms> <message>" — honor the hint.
		var hint time.Duration
		if f := strings.Fields(resp); len(f) >= 3 {
			if ms, err := strconv.ParseInt(f[2], 10, 64); err == nil {
				hint = time.Duration(ms) * time.Millisecond
			}
		}
		// Connection-limit sheds arrive on a connection the server is about
		// to close; drop ours so the next attempt redials.
		if strings.HasPrefix(resp, "ERR shed_connections") || strings.HasPrefix(resp, "ERR draining") {
			c.close()
		}
		return reply{out: outcomeShed, retryAfter: hint}, nil
	default:
		return reply{}, fmt.Errorf("line protocol: %s", strings.TrimSpace(resp))
	}
}

func (c *lineClient) close() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.r = nil
	}
}

// FrontendConfig sizes RunFrontend's closed-loop suite.
type FrontendConfig struct {
	// Duration is the per-run measurement window; 0 means 400ms.
	Duration time.Duration
	// UnderClients is the under-capacity fleet; 0 means 4.
	UnderClients int
	// OverClients is the overload fleet; 0 means 16.
	OverClients int
	// OverInFlight is the overloaded tenant's in-flight bound; 0 means 2.
	OverInFlight int
	// OverRate is the overloaded tenant's token-bucket rate in queries per
	// second; 0 means 200. This, not the in-flight bound, is what defines
	// the tight tenant's capacity portably: on a single-core box,
	// sub-millisecond queries run to completion between scheduling points,
	// so an in-flight semaphore alone can sit empty while requests queue
	// invisibly in the runtime scheduler.
	OverRate float64
}

func (c FrontendConfig) withDefaults() FrontendConfig {
	if c.Duration <= 0 {
		c.Duration = 400 * time.Millisecond
	}
	if c.UnderClients <= 0 {
		c.UnderClients = 4
	}
	if c.OverClients <= 0 {
		c.OverClients = 16
	}
	if c.OverInFlight <= 0 {
		c.OverInFlight = 2
	}
	if c.OverRate <= 0 {
		c.OverRate = 200
	}
	return c
}

// frontendWorkload is one tenant pair (generous + tight limits over the same
// shredded store) the suite measures.
type frontendWorkload struct {
	name  string
	query string
}

// RunFrontend starts an in-process serving front end (real TCP listeners on
// loopback, both protocols) hosting each workload twice — once with
// generous limits, once with a tight in-flight bound — and measures
// closed-loop under-capacity and overload runs against each protocol.
func RunFrontend(cfg FrontendConfig) ([]*FrontendComparison, error) {
	cfg = cfg.withDefaults()

	srv := server.New(server.Config{
		Addr:     "127.0.0.1:0",
		LineAddr: "127.0.0.1:0",
		Limits: server.Limits{
			MaxInFlight: maxInt(2*runtime.GOMAXPROCS(0), 2*cfg.UnderClients),
		},
		MaxConns: 4 * (cfg.UnderClients + cfg.OverClients),
		Logf:     func(string, ...any) {},
	})

	type wl struct {
		frontendWorkload
		schema *xmlsql.Schema
		doc    *xmlsql.Document
	}
	wls := []wl{
		{
			frontendWorkload: frontendWorkload{name: "xmark", query: workloads.QueryQ1},
			schema:           workloads.XMark(),
			doc: workloads.GenerateXMark(workloads.XMarkConfig{
				ItemsPerContinent: 50, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
			}),
		},
		{
			frontendWorkload: frontendWorkload{name: "s3", query: workloads.QueryQ4},
			schema:           workloads.S3(),
			doc:              workloads.GenerateS3(workloads.S3Config{Fanout: 2, MaxDepth: 5, Seed: 1}),
		},
	}
	// Burst 1: a generous burst would admit thundering herds whose members
	// then queue on each other, inflating the accepted-query tail the
	// overload gate is watching for queueing collapse.
	tight := server.Limits{
		RatePerSec:  cfg.OverRate,
		Burst:       1,
		MaxInFlight: cfg.OverInFlight,
	}
	for _, w := range wls {
		store := xmlsql.NewStore()
		if _, err := xmlsql.Shred(w.schema, store, w.doc); err != nil {
			return nil, fmt.Errorf("frontend %s: shred: %w", w.name, err)
		}
		// Generous and tight tenants share one store: same data, different
		// admission, so the overload run isolates the admission pipeline.
		for _, tc := range []server.TenantConfig{
			{Name: w.name, Schema: w.schema, Backend: xmlsql.NewMemBackendOn(store)},
			{Name: w.name + "-tight", Schema: w.schema, Backend: xmlsql.NewMemBackendOn(store), Limits: &tight},
		} {
			if _, err := srv.AddTenant(tc); err != nil {
				return nil, err
			}
		}
	}
	if err := srv.Start(); err != nil {
		return nil, err
	}
	defer srv.Close()

	var out []*FrontendComparison
	for _, w := range wls {
		for _, proto := range []string{"http", "line"} {
			addr := srv.HTTPAddr()
			if proto == "line" {
				addr = srv.LineAddr()
			}
			under, err := Drive(DriveConfig{
				Protocol: proto, Addr: addr, Tenant: w.name, Query: w.query,
				Clients: cfg.UnderClients, Duration: cfg.Duration,
			})
			if err != nil {
				return nil, fmt.Errorf("frontend %s/%s under: %w", w.name, proto, err)
			}
			under.Workload, under.Mode, under.InFlightLimit = w.name, "under", 0
			out = append(out, under)

			// The overload window is doubled: accepted throughput is
			// rate-limited, so a window sized for the unlimited under run
			// would leave the tail percentiles resting on single samples.
			over, err := Drive(DriveConfig{
				Protocol: proto, Addr: addr, Tenant: w.name + "-tight", Query: w.query,
				Clients: cfg.OverClients, Duration: 2 * cfg.Duration,
			})
			if err != nil {
				return nil, fmt.Errorf("frontend %s/%s over: %w", w.name, proto, err)
			}
			over.Workload, over.Mode, over.InFlightLimit = w.name, "over", cfg.OverInFlight
			over.RateLimit = cfg.OverRate
			out = append(out, over)
		}
	}
	return out, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// execP99NoiseFloorNs is the absolute slack the overload-p99 comparison
// allows on top of the ratio: scheduler preemption and GC put a fixed
// sub-millisecond jitter on any single query, so when the under-capacity
// exec p99 is itself tens of microseconds, a pure ratio gate would measure
// the noise floor, not queueing.
const execP99NoiseFloorNs = 500e3

// FrontendGate enforces the serving-front-end acceptance properties:
// under-capacity runs must not shed (and must complete work without
// errors); overload runs must shed (no unbounded queueing) with the
// accepted queries' server-side exec p99 within maxP99x of the matching
// under-capacity exec p99 (plus a fixed scheduling-noise allowance).
func FrontendGate(cmps []*FrontendComparison, maxP99x float64) []error {
	var errs []error
	under := make(map[string]*FrontendComparison)
	for _, c := range cmps {
		if c.Mode == "under" {
			under[c.Workload+"/"+c.Protocol] = c
		}
	}
	for _, c := range cmps {
		key := c.Workload + "/" + c.Protocol
		switch c.Mode {
		case "under":
			if c.Shed > 0 {
				errs = append(errs, fmt.Errorf("%s: shed %d queries at under-capacity load (shed rate %.3f)", key, c.Shed, c.ShedRate))
			}
			if c.Completed == 0 {
				errs = append(errs, fmt.Errorf("%s: under-capacity run completed no queries", key))
			}
			if c.Errors > 0 {
				errs = append(errs, fmt.Errorf("%s: under-capacity run hit %d errors", key, c.Errors))
			}
		case "over":
			if c.Shed == 0 {
				errs = append(errs, fmt.Errorf("%s: overload run shed nothing — admission control did not engage", key))
			}
			u := under[key]
			if u == nil || u.ExecP99Ns <= 0 {
				continue
			}
			// Compare server-side execution p99: round-trip times in-process
			// also measure the driver's own scheduling, not the server.
			if maxP99x > 0 && c.ExecP99Ns > maxP99x*u.ExecP99Ns+execP99NoiseFloorNs {
				errs = append(errs, fmt.Errorf("%s: overload accepted-query exec p99 %.0fns exceeds %.1fx under-capacity exec p99 %.0fns — queueing collapse",
					key, c.ExecP99Ns, maxP99x, u.ExecP99Ns))
			}
		}
	}
	return errs
}

// FormatFrontend renders the closed-loop serving table.
func FormatFrontend(cmps []*FrontendComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving front end: closed-loop clients against live HTTP/line listeners (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-8s %-5s %-6s %4s %5s %9s %7s %9s %9s %9s %9s %9s\n",
		"workload", "proto", "mode", "cli", "rate", "qps", "shed%", "p50", "p99", "p999", "mean", "xp99")
	b.WriteString(strings.Repeat("-", 108))
	b.WriteString("\n")
	for _, c := range cmps {
		rate := "-"
		if c.RateLimit > 0 {
			rate = fmt.Sprintf("%.0f", c.RateLimit)
		}
		fmt.Fprintf(&b, "%-8s %-5s %-6s %4d %5s %9.0f %6.1f%% %9s %9s %9s %9s %9s\n",
			c.Workload, c.Protocol, c.Mode, c.Clients, rate,
			c.QPS, 100*c.ShedRate,
			fmtNs(c.P50Ns), fmtNs(c.P99Ns), fmtNs(c.P999Ns), fmtNs(c.MeanNs), fmtNs(c.ExecP99Ns))
	}
	b.WriteString("(p50/p99/p999/mean: client round-trip; xp99: server-side execution p99 — the overload gate's metric)\n")
	return b.String()
}
