package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"time"

	"xmlsql"
	"xmlsql/internal/backend"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/sharded"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// ShardedConfig sizes the sharded scatter-gather suite.
type ShardedConfig struct {
	// Scales are the document counts measured (the scale knob multiplies
	// document count, never document size).
	Scales []int
	// ShardCounts is the sweep: one composite per count, each differentially
	// verified against the single store.
	ShardCounts []int
	// MixedRounds is how many write+read rounds the mixed serving loop runs
	// per arm (each round: one document-scoped update, then MixedReads
	// adaptive reads).
	MixedRounds int
	// MixedReads is the reads-per-write ratio of the mixed loop.
	MixedReads int
}

// DefaultShardedConfig matches the recorded BENCH section: scale 10 and 100,
// shard counts 1/2/4/8.
func DefaultShardedConfig() ShardedConfig {
	return ShardedConfig{Scales: []int{10, 100}, ShardCounts: []int{1, 2, 4, 8}, MixedRounds: 6, MixedReads: 4}
}

// ShardedSweepPoint is one shard count's measurements at one scale.
type ShardedSweepPoint struct {
	Shards int `json:"shards"`

	// Pure-read scatter latency of the two translations (single-threaded
	// box: GOMAXPROCS=1 gives scatter no core parallelism, so these track
	// the single store plus fan-out/merge overhead).
	ReadNaiveNs  float64 `json:"read_naive_ns"`
	ReadPrunedNs float64 `json:"read_pruned_ns"`

	// Partition skew: per-shard document and row counts, and the largest
	// shard's share of all rows (1/shards is perfectly balanced).
	DocsPerShard []int64 `json:"docs_per_shard"`
	RowsPerShard []int64 `json:"rows_per_shard"`
	MaxRowShare  float64 `json:"max_row_share"`

	// Scatter fan-out cost: every query fans out to this many shards, and
	// each scatter pays this much merge time for this many gathered rows.
	ScatterFanout        int     `json:"scatter_fanout"`
	MergeNsPerScatter    float64 `json:"merge_ns_per_scatter"`
	MergedRowsPerScatter float64 `json:"merged_rows_per_scatter"`

	// Mixed read/write serving: mean ns per operation over rounds of one
	// document-scoped write + adaptive reads, against the identical loop on
	// the single store. This is where document partitioning pays on one
	// core — a write invalidates one shard's statistics snapshot (~1/N of
	// the instance rescanned), not the whole store's.
	MixedNsPerOp float64 `json:"mixed_ns_per_op"`
	MixedSpeedup float64 `json:"mixed_speedup_vs_single"`
	// StatsRescans is how many single-shard statistics rescans the mixed
	// loop triggered (the scoped-invalidation counter).
	StatsRescans int64 `json:"stats_rescans"`

	// Verified: sharded reads were multiset-identical to the single store
	// both before the mixed loop and after it (post-update differential).
	Verified bool `json:"verified"`
}

// ShardedComparison is the sweep for one workload at one scale.
type ShardedComparison struct {
	Workload string `json:"workload"`
	Query    string `json:"query"`
	Scale    int    `json:"scale"`
	Tuples   int    `json:"tuples"`

	// The single-store arm every sweep point is measured against.
	SingleNaiveNs  float64 `json:"single_naive_ns"`
	SinglePrunedNs float64 `json:"single_pruned_ns"`
	MixedNsPerOp   float64 `json:"single_mixed_ns_per_op"`

	Sweep []ShardedSweepPoint `json:"sweep"`
}

// ShardedReport is the "sharded" section of the JSON report.
type ShardedReport struct {
	GoMaxProcs int                  `json:"gomaxprocs"`
	Note       string               `json:"note"`
	Sweeps     []*ShardedComparison `json:"sweeps"`
}

// shardedNote is recorded verbatim so the numbers can't be misread.
const shardedNote = "pure-read scatter has no core parallelism at GOMAXPROCS=1; " +
	"the mixed read/write speedup comes from scoped statistics invalidation " +
	"(a write rescans one shard, not the instance)"

// shardedInstance generates the scale-document xmark instance the suite
// measures. Document 0 is generated one item-per-continent larger than the
// rest, so the item named after its extra Africa slot ("item-Af-50") exists
// in exactly one document — giving the mixed loop a genuinely
// document-scoped write target (every stock item name repeats in every
// document and would fan the write out to all shards).
func shardedInstance(scale int) []*xmltree.Document {
	docs := make([]*xmltree.Document, 0, scale)
	for i := 0; i < scale; i++ {
		items := 50
		if i == 0 {
			items = 51
		}
		docs = append(docs, workloads.GenerateXMark(workloads.XMarkConfig{
			ItemsPerContinent: items, CategoriesPerItem: 2, NumCategories: 50, Seed: int64(i + 1),
		}))
	}
	return docs
}

// shardedWriteBatch is the mixed loop's document-scoped write: a fresh
// InCategory under the item that exists only in document 0.
func shardedWriteBatch(serial int) xmlsql.UpdateBatch {
	return xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "//Item[name='item-Af-50']",
		XML:  fmt.Sprintf("<InCategory><Category>sharded-%d</Category></InCategory>", serial),
	}}}
}

// shardedTranslations builds the naive and pruned translations of query.
func shardedTranslations(query string) (*sqlast.Query, *sqlast.Query, error) {
	q, err := pathexpr.Parse(query)
	if err != nil {
		return nil, nil, err
	}
	g, err := pathid.Build(workloads.XMark(), q)
	if err != nil {
		return nil, nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, nil, err
	}
	pruned, err := core.Translate(g)
	if err != nil {
		return nil, nil, err
	}
	return naive, pruned.Query, nil
}

// runMixed drives the mixed serving loop on one planner: MixedRounds rounds
// of one document-scoped write followed by MixedReads adaptive reads of
// query, returning mean ns per operation. serialBase keeps write payloads
// distinct across arms' warmups without changing the op count.
func runMixed(ctx context.Context, p *xmlsql.Planner, cfg ShardedConfig, query string) (float64, error) {
	ops := 0
	start := time.Now()
	for r := 0; r < cfg.MixedRounds; r++ {
		if _, err := p.Update(ctx, shardedWriteBatch(r)); err != nil {
			return 0, fmt.Errorf("mixed write %d: %w", r, err)
		}
		ops++
		for i := 0; i < cfg.MixedReads; i++ {
			if _, err := p.Exec(ctx, query); err != nil {
				return 0, fmt.Errorf("mixed read: %w", err)
			}
			ops++
		}
	}
	return float64(time.Since(start).Nanoseconds()) / float64(ops), nil
}

// RunSharded measures the sharded scatter-gather composite against the
// single store on the scaled xmark workload: a shard-count sweep of
// pure-read scatter latency (with skew, fan-out, and merge overhead from the
// composite's own metrics) plus the mixed read/write serving comparison,
// every point differentially verified against the single store before and
// after its writes.
func RunSharded(cfg ShardedConfig) (*ShardedReport, error) {
	ctx := context.Background()
	s := workloads.XMark()
	query := workloads.QueryQ1
	naive, pruned, err := shardedTranslations(query)
	if err != nil {
		return nil, err
	}
	rep := &ShardedReport{GoMaxProcs: runtime.GOMAXPROCS(0), Note: shardedNote}

	for _, scale := range cfg.Scales {
		docs := shardedInstance(scale)

		single := backend.NewMem()
		if _, err := single.Load(s, docs...); err != nil {
			return nil, fmt.Errorf("sharded: single load: %w", err)
		}
		cmp := &ShardedComparison{
			Workload: "xmark", Query: query, Scale: scale,
			Tuples: single.Store().TotalRows(),
		}
		singleExec := func(q *sqlast.Query) (*engine.Result, error) {
			return single.Execute(ctx, q)
		}
		cmp.SingleNaiveNs = measure(singleExec, naive)
		cmp.SinglePrunedNs = measure(singleExec, pruned)
		refRead, err := single.Execute(ctx, pruned)
		if err != nil {
			return nil, err
		}

		spc := xmlsql.PlannerConfig{Backend: single}
		spc.Translate.Adaptive = true
		sp := xmlsql.NewPlannerWith(s, spc)
		cmp.MixedNsPerOp, err = runMixed(ctx, sp, cfg, query)
		if err != nil {
			return nil, fmt.Errorf("sharded: single mixed arm: %w", err)
		}
		refFinal, err := sp.Exec(ctx, query)
		if err != nil {
			return nil, err
		}

		for _, n := range cfg.ShardCounts {
			comp, err := sharded.NewMem(n, sharded.Options{})
			if err != nil {
				return nil, err
			}
			if _, err := comp.Load(s, docs...); err != nil {
				return nil, fmt.Errorf("sharded: %d-shard load: %w", n, err)
			}
			pt := ShardedSweepPoint{Shards: n, ScatterFanout: n, Verified: true}

			got, err := comp.Execute(ctx, pruned)
			if err != nil {
				return nil, err
			}
			if !refRead.MultisetEqual(got) {
				pt.Verified = false
			}
			compExec := func(q *sqlast.Query) (*engine.Result, error) {
				return comp.Execute(ctx, q)
			}
			pt.ReadNaiveNs = measure(compExec, naive)
			pt.ReadPrunedNs = measure(compExec, pruned)

			m, err := comp.Metrics(ctx)
			if err != nil {
				return nil, err
			}
			pt.DocsPerShard = m.DocsPerShard
			pt.RowsPerShard = m.RowsPerShard
			var total, max int64
			for _, r := range m.RowsPerShard {
				total += r
				if r > max {
					max = r
				}
			}
			if total > 0 {
				pt.MaxRowShare = float64(max) / float64(total)
			}
			if m.Scatters > 0 {
				pt.MergeNsPerScatter = float64(m.MergeNs) / float64(m.Scatters)
				pt.MergedRowsPerScatter = float64(m.MergedRows) / float64(m.Scatters)
			}

			cpc := xmlsql.PlannerConfig{Backend: comp}
			cpc.Translate.Adaptive = true
			cp := xmlsql.NewPlannerWith(s, cpc)
			preRescans := comp.StatsRescans()
			pt.MixedNsPerOp, err = runMixed(ctx, cp, cfg, query)
			if err != nil {
				return nil, fmt.Errorf("sharded: %d-shard mixed arm: %w", n, err)
			}
			pt.StatsRescans = comp.StatsRescans() - preRescans
			if pt.MixedNsPerOp > 0 {
				pt.MixedSpeedup = cmp.MixedNsPerOp / pt.MixedNsPerOp
			}

			// Post-update differential: both arms applied the identical
			// write sequence, so their reads must still agree.
			gotFinal, err := cp.Exec(ctx, query)
			if err != nil {
				return nil, err
			}
			if !refFinal.MultisetEqual(gotFinal) {
				pt.Verified = false
			}
			if err := comp.Close(); err != nil {
				return nil, err
			}
			cmp.Sweep = append(cmp.Sweep, pt)
		}
		rep.Sweeps = append(rep.Sweeps, cmp)
	}
	return rep, nil
}

// ShardedGate returns one error per gate violation: any unverified sweep
// point (the sharded ≡ unsharded differential, checked before and after the
// mixed writes), or a gateShards-shard mixed-serving speedup below
// minSpeedup at the largest measured scale.
func ShardedGate(rep *ShardedReport, gateShards int, minSpeedup float64) []error {
	var errs []error
	if rep == nil {
		return []error{fmt.Errorf("sharded: no report")}
	}
	maxScale := 0
	for _, c := range rep.Sweeps {
		if c.Scale > maxScale {
			maxScale = c.Scale
		}
	}
	for _, c := range rep.Sweeps {
		for _, pt := range c.Sweep {
			if !pt.Verified {
				errs = append(errs, fmt.Errorf("sharded %s scale=%d shards=%d: differential verification failed",
					c.Workload, c.Scale, pt.Shards))
			}
			if c.Scale == maxScale && pt.Shards == gateShards && pt.MixedSpeedup < minSpeedup {
				errs = append(errs, fmt.Errorf("sharded %s scale=%d shards=%d: mixed serving speedup %.2fx below gate %.2fx",
					c.Workload, c.Scale, pt.Shards, pt.MixedSpeedup, minSpeedup))
			}
		}
	}
	return errs
}

// FormatSharded renders the sweep tables for benchrunner's stdout report.
func FormatSharded(rep *ShardedReport) string {
	var b strings.Builder
	b.WriteString("Sharded scatter-gather: shard-count sweep vs single store\n")
	fmt.Fprintf(&b, "(%s)\n", rep.Note)
	for _, c := range rep.Sweeps {
		fmt.Fprintf(&b, "\n%s scale=%d (%d tuples, %s): single naive %s, pruned %s, mixed %s/op\n",
			c.Workload, c.Scale, c.Tuples, c.Query,
			fmtNs(c.SingleNaiveNs), fmtNs(c.SinglePrunedNs), fmtNs(c.MixedNsPerOp))
		fmt.Fprintf(&b, "%7s %10s %11s %10s %9s %10s %9s %8s %9s\n",
			"shards", "read-naive", "read-pruned", "merge/scat", "max-share", "mixed/op", "mixed-spd", "rescans", "verified")
		for _, pt := range c.Sweep {
			fmt.Fprintf(&b, "%7d %10s %11s %10s %8.0f%% %10s %8.2fx %8d %9v\n",
				pt.Shards, fmtNs(pt.ReadNaiveNs), fmtNs(pt.ReadPrunedNs),
				fmtNs(pt.MergeNsPerScatter), pt.MaxRowShare*100,
				fmtNs(pt.MixedNsPerOp), pt.MixedSpeedup, pt.StatsRescans, pt.Verified)
		}
	}
	return b.String()
}
