package bench_test

import (
	"strings"
	"testing"

	"xmlsql/internal/bench"
	"xmlsql/internal/workloads"
)

// tinyScale keeps the harness test fast; shapes are scale-independent.
func tinyScale() bench.Scale {
	return bench.Scale{ItemsPerContinent: 10, AdsPerSection: 10, S1Groups: 10, S2Groups: 10, S3Fanout: 2, S3Depth: 3}
}

func TestSuiteCoversAllExperiments(t *testing.T) {
	cases := bench.Suite(tinyScale())
	seen := map[string]bool{}
	for _, c := range cases {
		seen[c.Experiment] = true
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8"} {
		if !seen[id] {
			t.Errorf("experiment %s missing from suite", id)
		}
	}
}

func TestRunVerifiesAndMeasures(t *testing.T) {
	c := bench.Case{
		Experiment: "E1",
		Workload:   "xmark",
		Query:      workloads.QueryQ1,
		Schema:     workloads.XMark(),
		Doc:        workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 5, Seed: 1}),
	}
	cmp, err := bench.Run(c)
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Verified {
		t.Error("verification failed")
	}
	if cmp.Rows != 5*6 {
		t.Errorf("rows = %d, want 30", cmp.Rows)
	}
	if cmp.NaiveShape.Branches != 6 || cmp.PrunedShape.Joins != 0 {
		t.Errorf("shapes: naive %v, pruned %v", cmp.NaiveShape, cmp.PrunedShape)
	}
	if cmp.NaiveNs <= 0 || cmp.PrunedNs <= 0 || cmp.Speedup <= 0 {
		t.Errorf("timings not measured: %v / %v", cmp.NaiveNs, cmp.PrunedNs)
	}
}

func TestRunOnFakeDBBackend(t *testing.T) {
	c := bench.Case{
		Experiment: "E1",
		Workload:   "xmark",
		Query:      workloads.QueryQ1,
		Schema:     workloads.XMark(),
		Doc:        workloads.GenerateXMark(workloads.XMarkConfig{ItemsPerContinent: 5, CategoriesPerItem: 1, NumCategories: 5, Seed: 1}),
	}
	cmp, err := bench.RunOn(c, "fakedb")
	if err != nil {
		t.Fatal(err)
	}
	if !cmp.Verified {
		t.Error("verification failed on fakedb backend")
	}
	if cmp.Backend != "db(sqlite)" {
		t.Errorf("backend label = %q, want db(sqlite)", cmp.Backend)
	}
	rep := bench.BuildReport("xmlsql", 1, []*bench.Comparison{cmp}, bench.Sections{})
	if rep.Backend != "db(sqlite)" {
		t.Errorf("report backend = %q, want db(sqlite)", rep.Backend)
	}

	if _, err := bench.RunOn(c, "nosuch"); err == nil {
		t.Error("unknown backend name accepted")
	}
}

func TestRunSuiteSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	cmps, err := bench.RunSuite(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) < 20 {
		t.Fatalf("suite ran %d cases", len(cmps))
	}
	for _, c := range cmps {
		if !c.Verified {
			t.Errorf("%s %s: verification failed", c.Experiment, c.Query)
		}
		if c.PrunedShape.Joins > c.NaiveShape.Joins {
			t.Errorf("%s %s: pruned has more joins (%v) than naive (%v)",
				c.Experiment, c.Query, c.PrunedShape, c.NaiveShape)
		}
	}
	table := bench.FormatTable(cmps)
	if !strings.Contains(table, "E1") || !strings.Contains(table, "speedup") {
		t.Error("table formatting broken")
	}
	if sum := bench.Summary(cmps); !strings.Contains(sum, "speedup range") {
		t.Errorf("summary = %q", sum)
	}
	if det := bench.FormatDetails(cmps[:1]); !strings.Contains(det, "baseline [9]") {
		t.Error("details formatting broken")
	}
}

func TestRunChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	cmps, err := bench.RunChaos(1)
	if err != nil {
		t.Fatal(err)
	}
	var faults, retries, trips, fallbacks int64
	for _, c := range cmps {
		if !c.Verified {
			t.Errorf("%s/%s: chaos verification failed", c.Scenario, c.Workload)
		}
		faults += c.Faults
		retries += c.Retries
		trips += c.BreakerTrips
		fallbacks += c.Fallbacks
	}
	if faults == 0 || retries == 0 {
		t.Fatalf("chaos suite injected %d faults / %d retries; the faults scenario is vacuous", faults, retries)
	}
	if trips == 0 || fallbacks == 0 {
		t.Fatalf("chaos suite recorded %d trips / %d fallbacks; the outage scenario is vacuous", trips, fallbacks)
	}
	if out := bench.FormatChaos(cmps); !strings.Contains(out, "outage") || !strings.Contains(out, "fallbacks") {
		t.Error("chaos table formatting broken")
	}
}

func TestRunAudit(t *testing.T) {
	cmps, err := bench.RunAudit()
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) < 5 {
		t.Fatalf("audit suite covered %d workloads", len(cmps))
	}
	for _, c := range cmps {
		if !c.Verified {
			t.Errorf("%s: audit verification failed", c.Workload)
		}
		if c.Tuples == 0 || c.Injected == 0 || c.Violations < c.Injected || c.Degradations == 0 {
			t.Errorf("%s: vacuous audit numbers: %+v", c.Workload, c)
		}
	}
	if out := bench.FormatAudit(cmps); !strings.Contains(out, "violations") || !strings.Contains(out, "degradations") {
		t.Error("audit table formatting broken")
	}
}

func TestAblations(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	out, err := bench.RunAblations(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"edge-annotation", "combinability", "nested loops"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablation output missing %q:\n%s", want, out)
		}
	}
}

func TestRunUpdatesSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("harness run")
	}
	cmps, err := bench.RunUpdates(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) != 1 {
		t.Fatalf("got %d comparisons, want 1", len(cmps))
	}
	c := cmps[0]
	if !c.Verified {
		t.Errorf("updates run not verified: %+v", c)
	}
	if c.Batches == 0 || c.BatchNs <= 0 || c.WrittenPerBatch == 0 {
		t.Errorf("throughput numbers missing: %+v", c)
	}
	if c.IncrementalAuditNs <= 0 || c.FullAuditNs <= 0 {
		t.Errorf("audit timings missing: %+v", c)
	}
	if !c.UntouchedKeptHot {
		t.Error("untouched query lost its cached plan across a write")
	}
	// The 5x audit gate is asserted at benchrunner scale, not here: at the
	// tiny harness scale a full scan is nearly as cheap as the neighborhood
	// probe. The gate machinery itself must still flag an impossible bar.
	if errs := bench.UpdatesGate(cmps, 1e12); len(errs) == 0 {
		t.Error("UpdatesGate accepted an impossible speedup bar")
	}
}

// TestRunShardedSmall runs a miniature sharded sweep: every point must
// verify against the single store (before and after the mixed writes), skew
// and merge overhead must be recorded, and the gate must pass with the
// speedup requirement waived (a tiny instance has nothing to amortize).
func TestRunShardedSmall(t *testing.T) {
	rep, err := bench.RunSharded(bench.ShardedConfig{
		Scales: []int{4}, ShardCounts: []int{1, 2}, MixedRounds: 1, MixedReads: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Sweeps) != 1 || len(rep.Sweeps[0].Sweep) != 2 {
		t.Fatalf("sweep shape: %d scales, %d points", len(rep.Sweeps), len(rep.Sweeps[0].Sweep))
	}
	for _, pt := range rep.Sweeps[0].Sweep {
		if !pt.Verified {
			t.Errorf("%d-shard point not verified", pt.Shards)
		}
		if len(pt.RowsPerShard) != pt.Shards || pt.MaxRowShare <= 0 {
			t.Errorf("%d-shard point missing skew data: rows %v, share %v", pt.Shards, pt.RowsPerShard, pt.MaxRowShare)
		}
		if pt.MergeNsPerScatter <= 0 || pt.StatsRescans < 1 {
			t.Errorf("%d-shard point missing overhead counters: merge %v, rescans %d", pt.Shards, pt.MergeNsPerScatter, pt.StatsRescans)
		}
	}
	if errs := bench.ShardedGate(rep, 2, 0.01); len(errs) > 0 {
		t.Fatalf("gate: %v", errs)
	}
}

// TestScalingSeriesSmall pins the reworked series: one instance per scale,
// both arms verified on it, monotone tuple counts, and JSON-ready points.
func TestScalingSeriesSmall(t *testing.T) {
	pts, err := bench.ScalingSeries("//Item/InCategory/Category", []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("got %d points", len(pts))
	}
	if pts[1].Tuples <= pts[0].Tuples {
		t.Errorf("tuples not growing with scale: %d then %d", pts[0].Tuples, pts[1].Tuples)
	}
	for _, p := range pts {
		if !p.Verified || p.Speedup <= 0 {
			t.Errorf("scale x%d: verified=%v speedup=%v", p.Scale, p.Verified, p.Speedup)
		}
	}
}
