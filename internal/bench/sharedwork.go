package bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"

	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// SharedWorkComparison measures the shared-work execution stack on one
// branch-heavy naive translation: the PR-1 parallel-union baseline (memo
// off, unfactored SQL) against engine-level subplan memoization and against
// the translation-time factoring rewrite, all under the same parallel
// executor.
type SharedWorkComparison struct {
	Workload string `json:"workload"`
	Query    string `json:"query"`

	// Branches/Joins describe the unfactored naive translation;
	// FactoredShape is the rewrite's output.
	Branches      int    `json:"branches"`
	Joins         int    `json:"joins"`
	FactoredShape string `json:"factored_shape"`
	FactorChanged bool   `json:"factor_changed"`

	// UnfactoredNs is the PR-1 baseline: parallel UNION ALL, memo disabled.
	// MemoNs keeps the SQL unfactored but turns the subplan memo on.
	// FactoredNs runs the factored SQL with the memo on.
	UnfactoredNs    float64 `json:"unfactored_ns"`
	MemoNs          float64 `json:"memo_ns"`
	FactoredNs      float64 `json:"factored_ns"`
	MemoSpeedup     float64 `json:"memo_speedup"`
	FactoredSpeedup float64 `json:"factored_speedup"`

	// Shared-work counters from single representative executions.
	MemoHits      int64 `json:"memo_hits"`
	MemoMisses    int64 `json:"memo_misses"`
	MemoSavedRows int64 `json:"memo_saved_rows"`

	Rows     int  `json:"rows"`
	Procs    int  `json:"procs"`
	Verified bool `json:"verified"`
}

type sharedWorkCase struct {
	workload string
	query    string
	schema   *schema.Schema
	doc      *xmltree.Document
}

// sharedWorkSuite builds the branch-heavy cases the rewrite targets: the
// naive XMark Q1 union (6 literal-partitioned branches), the S2 DAG over
// Edge storage (shared-subtree CTE whose body is a 3-branch union), the
// schema-oblivious Edge mapping's Q8 (6 self-join chains), and the auctions
// Edge mapping's //ItemRef (structurally distinct suffixes — the prefix-CTE
// path rather than the IN collapse).
func sharedWorkSuite(sc Scale) ([]sharedWorkCase, error) {
	xm := workloads.XMark()
	xmDoc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	s2Edge, err := shred.EdgeSchemaFor(workloads.S2())
	if err != nil {
		return nil, err
	}
	s2Doc := workloads.GenerateS2(sc.S2Groups, 1)
	xfEdge, err := shred.EdgeSchemaFor(workloads.XMarkFull())
	if err != nil {
		return nil, err
	}
	xfDoc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent / 2, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	xaEdge, err := shred.EdgeSchemaFor(workloads.XMarkAuctions())
	if err != nil {
		return nil, err
	}
	xaDoc := workloads.GenerateXMarkAuctions(workloads.XMarkAuctionsConfig{
		ItemsPerContinent: sc.ItemsPerContinent / 2,
		People:            sc.AdsPerSection,
		OpenAuctions:      sc.AdsPerSection,
		BiddersPerAuction: 3,
		ClosedAuctions:    sc.AdsPerSection / 2,
		Seed:              1,
	})
	return []sharedWorkCase{
		{workload: "xmark", query: workloads.QueryQ1, schema: xm, doc: xmDoc},
		{workload: "s2-edge", query: "//s/t1", schema: s2Edge, doc: s2Doc},
		{workload: "xmarkfull-edge", query: workloads.QueryQ8, schema: xfEdge, doc: xfDoc},
		{workload: "xmarkauctions-edge", query: "//ItemRef", schema: xaEdge, doc: xaDoc},
	}, nil
}

// RunSharedWork measures every shared-work case.
func RunSharedWork(sc Scale) ([]*SharedWorkComparison, error) {
	cases, err := sharedWorkSuite(sc)
	if err != nil {
		return nil, err
	}
	out := make([]*SharedWorkComparison, 0, len(cases))
	for _, c := range cases {
		cmp, err := runSharedWork(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

func runSharedWork(c sharedWorkCase) (*SharedWorkComparison, error) {
	store := relational.NewStore()
	if _, err := shred.ShredAll(c.schema, store, shred.Options{}, c.doc); err != nil {
		return nil, fmt.Errorf("sharedwork %s %s: shred: %w", c.workload, c.query, err)
	}
	q, err := pathexpr.Parse(c.query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(c.schema, q)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	factored, changed := translate.FactorSharedPrefixes(naive, c.schema)

	ctx := context.Background()
	baseOpts := engine.Options{DisableMemo: true} // PR-1 baseline: parallel only
	memoOpts := engine.Options{}

	// Correctness gate before timing: every mode must return the same
	// multiset, serial and parallel, and agree with the pruned translation.
	baseRes, _, err := engine.ExecuteCtxStats(ctx, store, naive, baseOpts)
	if err != nil {
		return nil, fmt.Errorf("sharedwork %s %s: baseline: %w", c.workload, c.query, err)
	}
	memoRes, memoStats, err := engine.ExecuteCtxStats(ctx, store, naive, memoOpts)
	if err != nil {
		return nil, fmt.Errorf("sharedwork %s %s: memo: %w", c.workload, c.query, err)
	}
	factRes, factStats, err := engine.ExecuteCtxStats(ctx, store, factored, memoOpts)
	if err != nil {
		return nil, fmt.Errorf("sharedwork %s %s: factored: %w", c.workload, c.query, err)
	}
	serialFactRes, _, err := engine.ExecuteCtxStats(ctx, store, factored, engine.Options{Parallelism: 1})
	if err != nil {
		return nil, fmt.Errorf("sharedwork %s %s: factored serial: %w", c.workload, c.query, err)
	}
	verified := baseRes.MultisetEqual(memoRes) &&
		baseRes.MultisetEqual(factRes) &&
		baseRes.MultisetEqual(serialFactRes)
	if pruned, err := core.Translate(g); err == nil {
		if pres, err := engine.Execute(store, pruned.Query); err == nil {
			verified = verified && baseRes.MultisetEqual(pres)
		}
	}

	cmp := &SharedWorkComparison{
		Workload:      c.workload,
		Query:         c.query,
		Branches:      naive.Shape().Branches,
		Joins:         naive.Shape().Joins,
		FactoredShape: factored.Shape().String(),
		FactorChanged: changed,
		MemoHits:      memoStats.SharedHits,
		MemoMisses:    memoStats.SharedMisses,
		MemoSavedRows: memoStats.SharedSavedRows,
		Rows:          baseRes.Len(),
		Procs:         runtime.GOMAXPROCS(0),
		Verified:      verified,
	}
	// The factored run's counters matter when the rewrite leaves residual
	// identical prefixes; keep whichever execution actually shared more.
	if factStats.SharedSavedRows > cmp.MemoSavedRows {
		cmp.MemoHits = factStats.SharedHits
		cmp.MemoMisses = factStats.SharedMisses
		cmp.MemoSavedRows = factStats.SharedSavedRows
	}

	run := func(q *sqlast.Query, opts engine.Options) float64 {
		return measureFn(func() error {
			_, err := engine.ExecuteCtx(ctx, store, q, opts)
			return err
		})
	}
	cmp.UnfactoredNs = run(naive, baseOpts)
	cmp.MemoNs = run(naive, memoOpts)
	cmp.FactoredNs = run(factored, memoOpts)
	if cmp.MemoNs > 0 {
		cmp.MemoSpeedup = cmp.UnfactoredNs / cmp.MemoNs
	}
	if cmp.FactoredNs > 0 {
		cmp.FactoredSpeedup = cmp.UnfactoredNs / cmp.FactoredNs
	}
	return cmp, nil
}

// FormatSharedWork renders the shared-work comparisons as a fixed-width
// table.
func FormatSharedWork(cmps []*SharedWorkComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Shared-work execution: PR-1 parallel baseline vs subplan memo vs prefix factoring (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-19s %-28s %4s %10s %10s %10s %8s %6s %6s %9s %3s\n",
		"workload", "query", "br", "base/op", "memo/op", "fact/op", "speedup", "hits", "miss", "savedrows", "ok")
	b.WriteString(strings.Repeat("-", 124))
	b.WriteString("\n")
	for _, c := range cmps {
		ok := "yes"
		if !c.Verified {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%-19s %-28s %4d %10s %10s %10s %7.2fx %6d %6d %9d %3s\n",
			c.Workload, truncate(c.Query, 28), c.Branches,
			fmtNs(c.UnfactoredNs), fmtNs(c.MemoNs), fmtNs(c.FactoredNs),
			c.FactoredSpeedup, c.MemoHits, c.MemoMisses, c.MemoSavedRows, ok)
	}
	return b.String()
}
