package bench

import (
	"fmt"
	"strings"
)

// FormatTable renders comparisons as the fixed-width table printed by
// cmd/benchrunner and recorded in EXPERIMENTS.md.
func FormatTable(cmps []*Comparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-3s %-15s %-45s %-26s %-26s %10s %10s %8s %3s\n",
		"id", "workload", "query", "naive shape", "pruned shape", "naive/op", "pruned/op", "speedup", "ok")
	b.WriteString(strings.Repeat("-", 154))
	b.WriteString("\n")
	for _, c := range cmps {
		ok := "yes"
		if !c.Verified {
			ok = "NO"
		}
		fmt.Fprintf(&b, "%-3s %-15s %-45s %-26s %-26s %10s %10s %7.2fx %3s\n",
			c.Experiment, c.Workload, truncate(c.Query, 45),
			c.NaiveShape.String(), c.PrunedShape.String(),
			fmtNs(c.NaiveNs), fmtNs(c.PrunedNs), c.Speedup, ok)
	}
	return b.String()
}

// FormatDetails renders the per-case SQL for the experiment log.
func FormatDetails(cmps []*Comparison) string {
	var b strings.Builder
	for _, c := range cmps {
		fmt.Fprintf(&b, "=== %s [%s] %s\n", c.Experiment, c.Workload, c.Query)
		fmt.Fprintf(&b, "    %s\n", c.Description)
		fmt.Fprintf(&b, "    store: %d tuples; result: %d rows; verified: %v\n", c.TotalRows, c.Rows, c.Verified)
		fmt.Fprintf(&b, "--- baseline [9] (%s):\n%s\n", c.NaiveShape, indent(c.NaiveSQL))
		fmt.Fprintf(&b, "--- lossless-from-XML (%s):\n%s\n\n", c.PrunedShape, indent(c.PrunedSQL))
	}
	return b.String()
}

// Summary aggregates the speedup distribution, the statistic the paper
// quotes from [10] (1.15x–93x, many queries >= 10x).
func Summary(cmps []*Comparison) string {
	if len(cmps) == 0 {
		return "no results\n"
	}
	minS, maxS := cmps[0].Speedup, cmps[0].Speedup
	over10 := 0
	slower := 0
	allVerified := true
	for _, c := range cmps {
		if c.Speedup < minS {
			minS = c.Speedup
		}
		if c.Speedup > maxS {
			maxS = c.Speedup
		}
		if c.Speedup >= 10 {
			over10++
		}
		if c.Speedup < 1 {
			slower++
		}
		if !c.Verified {
			allVerified = false
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speedup range %.2fx – %.2fx over %d queries; %d at >= 10x; %d regressions; all results verified: %v\n",
		minS, maxS, len(cmps), over10, slower, allVerified)
	return b.String()
}

func fmtNs(ns float64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", ns/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", ns/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", ns/1e3)
	default:
		return fmt.Sprintf("%.0fns", ns)
	}
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i, l := range lines {
		lines[i] = "    " + l
	}
	return strings.Join(lines, "\n")
}
