package bench

import (
	"encoding/json"
	"io"
	"runtime"
)

// Report is the machine-readable form of a benchrunner run, written by the
// -json flag so the perf trajectory can be tracked across PRs (one
// BENCH_<name>.json-style document per run).
type Report struct {
	Name  string `json:"name"`
	Scale int    `json:"scale"`
	// Backend names where the measured executions ran ("mem", or
	// "db(sqlite)" for the database/sql route over the fake driver).
	Backend    string               `json:"backend"`
	GoMaxProcs int                  `json:"gomaxprocs"`
	Cases      []ReportCase         `json:"cases"`
	Serving    []*ServingComparison `json:"serving,omitempty"`
	// Chaos records the resilience counters (retries, breaker trips,
	// degraded fallbacks) of the injected-fault suite, so the robustness
	// trajectory is tracked alongside the perf one.
	Chaos []*ChaosComparison `json:"chaos,omitempty"`
	// Audit records the integrity sentinel's numbers (audit durations,
	// violations detected on corrupted copies, safe-mode degradations), so
	// the constraint-checking trajectory is tracked too.
	Audit []*AuditComparison `json:"audit,omitempty"`
	// SharedWork records the shared-work execution numbers: the PR-1
	// parallel baseline vs the subplan memo vs prefix factoring, with the
	// memo's hit/miss/saved-rows counters.
	SharedWork []*SharedWorkComparison `json:"shared_work,omitempty"`
	// Adaptive records the cost-based planner against every fixed knob
	// setting: headline cases gated on speedup >= 1.0 (the chooser falls
	// back to the baseline where pruning does not pay), shared-work cases
	// gated on staying within 10% of the best fixed configuration.
	Adaptive []*AdaptiveComparison `json:"adaptive,omitempty"`
	// ServingFrontend records the closed-loop runs against the live network
	// front end (HTTP and line protocol, under-capacity and overload):
	// sustained QPS, shed rate, and p50/p99/p999 accepted-query latency.
	ServingFrontend []*FrontendComparison `json:"serving_frontend,omitempty"`
	// Updates records the transactional update path: batch apply cost,
	// incremental-vs-full audit latency, and post-write hot-query recovery
	// with scoped cache invalidation.
	Updates []*UpdateComparison `json:"updates,omitempty"`
	// Recovery records the durability suite: write-ahead-logged vs volatile
	// update throughput, log footprint, and cold-recovery (snapshot load +
	// verified replay) cost.
	Recovery []*RecoveryComparison `json:"recovery,omitempty"`
	// Scaling records the Q1 speedup-vs-document-size series (one generated
	// and shredded instance per scale, shared by both arms).
	Scaling *ScalingSection `json:"scaling,omitempty"`
	// Sharded records the scatter-gather suite: shard-count sweeps at
	// scale=10/100 with per-shard skew, merge overhead, and the mixed
	// read/write serving comparison against the single store.
	Sharded *ShardedReport `json:"sharded,omitempty"`
	Summary ReportSummary  `json:"summary"`
}

// ReportCase is one experiment case's measurements.
type ReportCase struct {
	Experiment  string  `json:"experiment"`
	Workload    string  `json:"workload"`
	Query       string  `json:"query"`
	NaiveShape  string  `json:"naive_shape"`
	PrunedShape string  `json:"pruned_shape"`
	Fallback    bool    `json:"fallback"`
	Rows        int     `json:"rows"`
	StoreRows   int     `json:"store_rows"`
	NaiveNs     float64 `json:"naive_ns"`
	PrunedNs    float64 `json:"pruned_ns"`
	Speedup     float64 `json:"speedup"`
	Verified    bool    `json:"verified"`
}

// ReportSummary aggregates the speedup distribution.
type ReportSummary struct {
	Queries     int     `json:"queries"`
	MinSpeedup  float64 `json:"min_speedup"`
	MaxSpeedup  float64 `json:"max_speedup"`
	Over10x     int     `json:"over_10x"`
	Regressions int     `json:"regressions"`
	AllVerified bool    `json:"all_verified"`
}

// Sections carries every optional suite's results into BuildReport; nil
// slices and pointers simply omit their section from the JSON.
type Sections struct {
	Serving    []*ServingComparison
	Chaos      []*ChaosComparison
	Audit      []*AuditComparison
	SharedWork []*SharedWorkComparison
	Adaptive   []*AdaptiveComparison
	Frontend   []*FrontendComparison
	Updates    []*UpdateComparison
	Recovery   []*RecoveryComparison
	Scaling    *ScalingSection
	Sharded    *ShardedReport
}

// BuildReport assembles the JSON report from measured comparisons.
func BuildReport(name string, scale int, cmps []*Comparison, sec Sections) *Report {
	r := &Report{
		Name:            name,
		Scale:           scale,
		Backend:         "mem",
		GoMaxProcs:      runtime.GOMAXPROCS(0),
		Serving:         sec.Serving,
		Chaos:           sec.Chaos,
		Audit:           sec.Audit,
		SharedWork:      sec.SharedWork,
		Adaptive:        sec.Adaptive,
		ServingFrontend: sec.Frontend,
		Updates:         sec.Updates,
		Recovery:        sec.Recovery,
		Scaling:         sec.Scaling,
		Sharded:         sec.Sharded,
		Summary:         ReportSummary{AllVerified: true},
	}
	for _, c := range cmps {
		if c.Backend != "" {
			r.Backend = c.Backend
		}
		r.Cases = append(r.Cases, ReportCase{
			Experiment:  c.Experiment,
			Workload:    c.Workload,
			Query:       c.Query,
			NaiveShape:  c.NaiveShape.String(),
			PrunedShape: c.PrunedShape.String(),
			Fallback:    c.Fallback,
			Rows:        c.Rows,
			StoreRows:   c.TotalRows,
			NaiveNs:     c.NaiveNs,
			PrunedNs:    c.PrunedNs,
			Speedup:     c.Speedup,
			Verified:    c.Verified,
		})
		if r.Summary.Queries == 0 || c.Speedup < r.Summary.MinSpeedup {
			r.Summary.MinSpeedup = c.Speedup
		}
		if c.Speedup > r.Summary.MaxSpeedup {
			r.Summary.MaxSpeedup = c.Speedup
		}
		if c.Speedup >= 10 {
			r.Summary.Over10x++
		}
		if c.Speedup < 1 {
			r.Summary.Regressions++
		}
		if !c.Verified {
			r.Summary.AllVerified = false
		}
		r.Summary.Queries++
	}
	return r
}

// WriteJSON writes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
