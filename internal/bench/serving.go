package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"xmlsql"
	"xmlsql/internal/workloads"
)

// ServingComparison measures the concurrent query-serving fast path on one
// (workload, query) pair: the plan cache (cold translate+execute vs hot
// cache-hit Eval) and parallel UNION ALL execution of the naive translation
// (serial vs GOMAXPROCS-bounded workers).
type ServingComparison struct {
	Workload string `json:"workload"`
	Query    string `json:"query"`

	// Plan cache: ColdNs is parse+translate+execute from scratch, HotNs is
	// Planner.Eval after the first call (a cache hit straight to execution).
	ColdNs     float64 `json:"cold_ns"`
	HotNs      float64 `json:"hot_ns"`
	HotSpeedup float64 `json:"hot_speedup"`

	// Parallel union: the naive translation's UNION ALL executed with
	// Parallelism 1 vs the GOMAXPROCS default.
	Branches        int     `json:"branches"`
	SerialNs        float64 `json:"serial_ns"`
	ParallelNs      float64 `json:"parallel_ns"`
	ParallelSpeedup float64 `json:"parallel_speedup"`
	Procs           int     `json:"procs"`
}

// servingCase declares one serving measurement.
type servingCase struct {
	workload string
	query    string
	schema   *xmlsql.Schema
	doc      *xmlsql.Document
}

// servingSuite builds the serving cases: the recursive S3 schema (the most
// expensive translations, so the plan cache's best case), schema-aware XMark
// and the schema-oblivious Edge mapping (the widest naive unions, so
// parallel execution's best case).
func servingSuite(sc Scale) ([]servingCase, error) {
	s3 := workloads.S3()
	s3Doc := workloads.GenerateS3(workloads.S3Config{Fanout: sc.S3Fanout, MaxDepth: sc.S3Depth, Seed: 1})
	xm := workloads.XMark()
	xmDoc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	xf := workloads.XMarkFull()
	edge, err := xmlsql.EdgeMapping(xf)
	if err != nil {
		return nil, err
	}
	edgeDoc := workloads.GenerateXMarkFull(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent / 2, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	// The small S3 store isolates the plan-cache effect: translation cost is
	// store-independent, so shrinking the data exposes the full
	// parse+translate overhead the cache removes (the same regime as
	// BenchmarkPlannerHot/Cold).
	s3Small := workloads.GenerateS3(workloads.S3Config{Fanout: 2, MaxDepth: 5, Seed: 1})
	return []servingCase{
		{workload: "s3-small", query: workloads.QueryQ4, schema: s3, doc: s3Small},
		{workload: "s3", query: workloads.QueryQ4, schema: s3, doc: s3Doc},
		{workload: "s3", query: workloads.QueryQ7, schema: s3, doc: s3Doc},
		{workload: "xmark", query: workloads.QueryQ1, schema: xm, doc: xmDoc},
		{workload: "xmarkfull-edge", query: workloads.QueryQ8, schema: edge, doc: edgeDoc},
	}, nil
}

// RunServing measures the serving fast path for every serving case.
func RunServing(sc Scale) ([]*ServingComparison, error) {
	cases, err := servingSuite(sc)
	if err != nil {
		return nil, err
	}
	out := make([]*ServingComparison, 0, len(cases))
	for _, c := range cases {
		cmp, err := runServing(c)
		if err != nil {
			return nil, err
		}
		out = append(out, cmp)
	}
	return out, nil
}

func runServing(c servingCase) (*ServingComparison, error) {
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(c.schema, store, c.doc); err != nil {
		return nil, fmt.Errorf("serving %s %s: shred: %w", c.workload, c.query, err)
	}

	// Correctness gate before timing: hot, cold, serial, and parallel paths
	// must all agree.
	planner := xmlsql.NewPlanner(c.schema)
	hotRes, err := planner.Eval(store, c.query)
	if err != nil {
		return nil, fmt.Errorf("serving %s %s: planner: %w", c.workload, c.query, err)
	}
	coldRes, err := xmlsql.Eval(c.schema, store, c.query)
	if err != nil {
		return nil, err
	}
	if !hotRes.MultisetEqual(coldRes) {
		return nil, fmt.Errorf("serving %s %s: cached plan disagrees with fresh translation", c.workload, c.query)
	}
	naive, err := xmlsql.TranslateNaive(c.schema, xmlsql.MustParseQuery(c.query))
	if err != nil {
		return nil, err
	}
	serialRes, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{Parallelism: 1})
	if err != nil {
		return nil, err
	}
	parallelRes, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{})
	if err != nil {
		return nil, err
	}
	if len(serialRes.Rows) != len(parallelRes.Rows) {
		return nil, fmt.Errorf("serving %s %s: parallel row count diverged", c.workload, c.query)
	}
	for i := range serialRes.Rows {
		if serialRes.Rows[i].Key() != parallelRes.Rows[i].Key() {
			return nil, fmt.Errorf("serving %s %s: parallel row order diverged at row %d", c.workload, c.query, i)
		}
	}

	cmp := &ServingComparison{
		Workload: c.workload,
		Query:    c.query,
		Branches: naive.Shape().Branches,
		Procs:    runtime.GOMAXPROCS(0),
	}
	cmp.ColdNs = measureFn(func() error {
		_, err := xmlsql.Eval(c.schema, store, c.query)
		return err
	})
	cmp.HotNs = measureFn(func() error {
		_, err := planner.Eval(store, c.query)
		return err
	})
	if cmp.HotNs > 0 {
		cmp.HotSpeedup = cmp.ColdNs / cmp.HotNs
	}
	cmp.SerialNs = measureFn(func() error {
		_, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{Parallelism: 1})
		return err
	})
	cmp.ParallelNs = measureFn(func() error {
		_, err := xmlsql.ExecuteWithOptions(store, naive, xmlsql.ExecuteOptions{})
		return err
	})
	if cmp.ParallelNs > 0 {
		cmp.ParallelSpeedup = cmp.SerialNs / cmp.ParallelNs
	}
	return cmp, nil
}

// measureFn runs fn repeatedly for at least MinMeasureTime and returns the
// mean per-call nanoseconds (same protocol as measure).
func measureFn(fn func() error) float64 {
	if err := fn(); err != nil {
		return 0
	}
	var reps int
	start := time.Now()
	for time.Since(start) < MinMeasureTime || reps < 3 {
		if err := fn(); err != nil {
			return 0
		}
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}

// FormatServing renders the serving comparisons as a fixed-width table.
func FormatServing(cmps []*ServingComparison) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Serving fast path: plan cache (cold vs hot) and parallel UNION ALL (GOMAXPROCS=%d)\n",
		runtime.GOMAXPROCS(0))
	fmt.Fprintf(&b, "%-15s %-35s %10s %10s %8s %4s %10s %10s %8s\n",
		"workload", "query", "cold/op", "hot/op", "speedup", "br", "serial/op", "par/op", "speedup")
	b.WriteString(strings.Repeat("-", 118))
	b.WriteString("\n")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-15s %-35s %10s %10s %7.2fx %4d %10s %10s %7.2fx\n",
			c.Workload, truncate(c.Query, 35),
			fmtNs(c.ColdNs), fmtNs(c.HotNs), c.HotSpeedup,
			c.Branches, fmtNs(c.SerialNs), fmtNs(c.ParallelNs), c.ParallelSpeedup)
	}
	return b.String()
}
