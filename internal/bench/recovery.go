package bench

import (
	"context"
	"fmt"
	"os"
	"strings"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/update"
	"xmlsql/internal/wal"
	"xmlsql/internal/workloads"
)

// RecoveryComparison measures the price and payoff of durability on the
// XMark update workload: the same batch sequence applied through a volatile
// applier and through a write-ahead-logged one (every commit fsynced), the
// log's size counters, and the cost of recovering the instance from disk.
// Verified means the durable store matched the volatile twin byte for byte
// after the run, the recovered store matched both after replay, and the
// incremental audit over the replayed neighborhoods came back clean.
type RecoveryComparison struct {
	Workload string `json:"workload"`
	Tuples   int    `json:"tuples"`
	Batches  int    `json:"batches"`

	// Batch cost with and without the log in the commit path.
	// DurableRelative is volatile/durable batch time: 1.0 means free
	// durability, 0.5 means half the throughput.
	VolatileBatchNs float64 `json:"volatile_batch_ns"`
	DurableBatchNs  float64 `json:"durable_batch_ns"`
	DurableRelative float64 `json:"durable_relative"`

	// Log footprint after the run.
	WALRecords   int64 `json:"wal_records"`
	WALBytes     int64 `json:"wal_bytes"`
	WALSnapshots int64 `json:"wal_snapshots"`

	// Recovery: wall time of a cold Open (snapshot load + replay + index
	// rebuild), how many batches it replayed, and the recovered row count.
	ReplayNs        float64 `json:"replay_ns"`
	ReplayedBatches int     `json:"replayed_batches"`
	RecoveredRows   int     `json:"recovered_rows"`

	Verified bool `json:"verified"`
}

// recoveryBatch mirrors the update suite's measured write: one fresh
// InCategory under every Africa item.
func recoveryBatch(serial int) update.Batch {
	return update.Batch{Muts: []update.Mutation{{
		Op:   update.OpInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  fmt.Sprintf("<InCategory><Category>bench-%d</Category></InCategory>", serial),
	}}}
}

// RunRecovery measures durable-vs-volatile update throughput and crash
// recovery on the XMark workload at the given scale. The durable side runs
// in a throwaway data directory with fsync-per-commit — the strictest (and
// slowest) durability setting, so the gate bounds the worst case.
func RunRecovery(sc Scale) ([]*RecoveryComparison, error) {
	ctx := context.Background()
	s := workloads.XMark()
	cfg := workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	}
	cmp := &RecoveryComparison{Workload: "xmark", Verified: true}
	const batches = 16
	cmp.Batches = batches

	// Volatile reference: same instance, no log.
	volStore := relational.NewStore()
	if _, err := shred.ShredAll(s, volStore, shred.Options{}, workloads.GenerateXMark(cfg)); err != nil {
		return nil, fmt.Errorf("recovery: shred: %w", err)
	}
	volApp, err := update.ForStore(s, volStore, update.Options{})
	if err != nil {
		return nil, err
	}
	start := time.Now()
	for i := 0; i < batches; i++ {
		if _, err := volApp.Apply(ctx, recoveryBatch(i)); err != nil {
			return nil, fmt.Errorf("recovery: volatile batch %d: %w", i, err)
		}
	}
	cmp.VolatileBatchNs = float64(time.Since(start).Nanoseconds()) / batches

	// Durable run: same document, same batches, every commit logged and
	// fsynced before acknowledgement.
	dir, err := os.MkdirTemp("", "xmlsql-recovery-bench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	mgr, _, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("recovery: wal open: %w", err)
	}
	if _, err := shred.ShredAll(s, mgr.Store(), shred.Options{}, workloads.GenerateXMark(cfg)); err != nil {
		mgr.Close()
		return nil, err
	}
	if err := mgr.Checkpoint(); err != nil {
		mgr.Close()
		return nil, err
	}
	mem := backend.NewMemOn(mgr.Store())
	mem.SetCommitLog(mgr)
	durApp, err := update.New(s, integrity.StoreSource(mgr.Store()), integrity.StoreProbe(mgr.Store()), mem, update.Options{})
	if err != nil {
		mgr.Close()
		return nil, err
	}
	start = time.Now()
	for i := 0; i < batches; i++ {
		if _, err := durApp.Apply(ctx, recoveryBatch(i)); err != nil {
			mgr.Close()
			return nil, fmt.Errorf("recovery: durable batch %d: %w", i, err)
		}
	}
	cmp.DurableBatchNs = float64(time.Since(start).Nanoseconds()) / batches
	if cmp.DurableBatchNs > 0 {
		cmp.DurableRelative = cmp.VolatileBatchNs / cmp.DurableBatchNs
	}
	st := mgr.Stats()
	cmp.WALRecords, cmp.WALBytes, cmp.WALSnapshots = st.Records, st.Bytes, st.Snapshots
	cmp.Tuples = mgr.Store().TotalRows()

	// Deterministic ids make the two stores byte-comparable.
	liveDump := mgr.Store().Dump()
	if liveDump != volStore.Dump() {
		cmp.Verified = false
	}
	if err := mgr.Close(); err != nil {
		return nil, err
	}

	// Cold recovery of the directory the run left behind.
	start = time.Now()
	mgr2, info2, err := wal.Open(dir, wal.Options{})
	if err != nil {
		return nil, fmt.Errorf("recovery: reopen: %w", err)
	}
	defer mgr2.Close()
	cmp.ReplayNs = float64(time.Since(start).Nanoseconds())
	cmp.ReplayedBatches = info2.ReplayedBatches
	cmp.RecoveredRows = mgr2.Store().TotalRows()
	if mgr2.Store().Dump() != liveDump {
		cmp.Verified = false
	}
	if info2.ReplayedBatches > 0 {
		if !info2.TouchedComplete {
			cmp.Verified = false
		} else {
			rep, err := integrity.AuditIncremental(ctx, integrity.StoreProbe(mgr2.Store()), s, info2.Touched)
			if err != nil || !rep.Clean() {
				cmp.Verified = false
			}
		}
	}
	return []*RecoveryComparison{cmp}, nil
}

// RecoveryGate returns one error per gate violation: an unverified run
// (recovered state or audit mismatch), or durable throughput below
// minRelative of volatile throughput.
func RecoveryGate(cmps []*RecoveryComparison, minRelative float64) []error {
	var errs []error
	for _, c := range cmps {
		if !c.Verified {
			errs = append(errs, fmt.Errorf("recovery %s: verification failed (recovered store, twin store, or replay audit mismatch)", c.Workload))
		}
		if c.DurableRelative < minRelative {
			errs = append(errs, fmt.Errorf("recovery %s: durable throughput %.2fx of volatile (gate %.2fx)",
				c.Workload, c.DurableRelative, minRelative))
		}
	}
	return errs
}

// FormatRecovery renders the durability table for the benchrunner's stdout
// report.
func FormatRecovery(cmps []*RecoveryComparison) string {
	var b strings.Builder
	b.WriteString("Durability: write-ahead-logged vs volatile updates, crash recovery\n")
	fmt.Fprintf(&b, "%-8s %8s %10s %10s %9s %8s %10s %6s %10s %8s %9s\n",
		"workload", "tuples", "volatile", "durable", "relative", "records", "log-bytes", "snaps", "replay", "batches", "verified")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-8s %8d %10s %10s %8.2fx %8d %10d %6d %10s %8d %9v\n",
			c.Workload, c.Tuples,
			time.Duration(c.VolatileBatchNs).Round(time.Microsecond),
			time.Duration(c.DurableBatchNs).Round(time.Microsecond),
			c.DurableRelative,
			c.WALRecords, c.WALBytes, c.WALSnapshots,
			time.Duration(c.ReplayNs).Round(time.Microsecond),
			c.ReplayedBatches, c.Verified)
	}
	return b.String()
}
