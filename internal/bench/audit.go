package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
)

// AuditComparison is one workload's trip through the integrity sentinel:
// how long the clean audit of the shredded instance took, and — after
// injecting corruptions — how many violations the dirty audit pinned down
// and how many queries a trust-wired serving path would degrade to baseline
// (safe-mode) translations. Verified means the clean instance audited clean
// AND every injected corruption was detected.
type AuditComparison struct {
	Workload     string        `json:"workload"`
	Tuples       int           `json:"tuples"`
	CleanAuditNs float64       `json:"clean_audit_ns"`
	DirtyAuditNs float64       `json:"dirty_audit_ns"`
	Injected     int           `json:"corruptions_injected"`
	Violations   int           `json:"violations_found"`
	Degradations int           `json:"safe_mode_degradations"`
	Verified     bool          `json:"verified"`
}

// auditWorkloads: the chaos coverage plus xmarkfull (whose mandatory Cat.name
// column exercises the P3 leaf checks).
func auditWorkloads() []chaosWorkload {
	wls := chaosWorkloads()
	wls = append(wls, chaosWorkload{
		"xmarkfull",
		workloads.XMarkFull(),
		workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig()),
		[]string{workloads.QueryQ1, "/Site/Categories/Category"},
	})
	return wls
}

// corruptForAudit injects one orphan tuple into the lexicographically first
// non-root relation of the store and returns how many corruptions were
// injected.
func corruptForAudit(s *schema.Schema, store *relational.Store) (int, error) {
	rootRel := s.RootNode().Relation
	for _, name := range store.TableNames() {
		if name == rootRel {
			continue
		}
		if err := shred.InjectOrphan(s, store, name, 1<<40); err != nil {
			return 0, err
		}
		return 1, nil
	}
	return 0, fmt.Errorf("bench: no non-root relation to corrupt")
}

// RunAudit measures the integrity sentinel over every audit workload: a
// clean audit of the freshly shredded instance (must come back clean), then
// an audit of a deliberately corrupted copy (must detect every injected
// corruption), then the serving consequence — a trust-wired planner
// degrading each query of the dirty instance to the baseline translation.
func RunAudit() ([]*AuditComparison, error) {
	ctx := context.Background()
	var out []*AuditComparison
	for _, wl := range auditWorkloads() {
		cmp := &AuditComparison{Workload: wl.name, Verified: true}

		store := relational.NewStore()
		if _, err := shred.ShredAll(wl.schema, store, shred.Options{}, wl.doc); err != nil {
			return nil, fmt.Errorf("audit %s: shred: %w", wl.name, err)
		}
		cmp.Tuples = store.TotalRows()

		start := time.Now()
		rep, err := integrity.Audit(ctx, integrity.StoreSource(store), wl.schema)
		if err != nil {
			return nil, fmt.Errorf("audit %s: clean audit: %w", wl.name, err)
		}
		cmp.CleanAuditNs = float64(time.Since(start).Nanoseconds())
		if !rep.Clean() {
			cmp.Verified = false
		}

		injected, err := corruptForAudit(wl.schema, store)
		if err != nil {
			return nil, fmt.Errorf("audit %s: %w", wl.name, err)
		}
		cmp.Injected = injected

		start = time.Now()
		dirty, err := integrity.Audit(ctx, integrity.StoreSource(store), wl.schema)
		if err != nil {
			return nil, fmt.Errorf("audit %s: dirty audit: %w", wl.name, err)
		}
		cmp.DirtyAuditNs = float64(time.Since(start).Nanoseconds())
		cmp.Violations = dirty.Total
		if dirty.Total < injected {
			cmp.Verified = false
		}

		// Serving consequence: every query of the dirty instance degrades to
		// the baseline translation and still answers (correctness of those
		// answers is the corruption differential suite's job; here the
		// degradation count feeds the robustness trajectory).
		mem := backend.NewMemOn(store)
		for _, query := range wl.queries {
			qs, err := chaosTranslations(wl.schema, query)
			if err != nil {
				return nil, fmt.Errorf("audit %s: translate %s: %w", wl.name, query, err)
			}
			// qs[0] is the baseline translation — what a Violated planner serves.
			if _, err := mem.Execute(ctx, qs[0]); err != nil {
				return nil, fmt.Errorf("audit %s: safe-mode %s: %w", wl.name, query, err)
			}
			cmp.Degradations++
		}
		out = append(out, cmp)
	}
	return out, nil
}

// FormatAudit renders the audit table for the benchrunner's stdout report.
func FormatAudit(cmps []*AuditComparison) string {
	var b strings.Builder
	b.WriteString("Integrity sentinel: lossless-constraint audit and safe-mode degradation\n")
	fmt.Fprintf(&b, "%-14s %8s %12s %12s %9s %11s %13s %9s\n",
		"workload", "tuples", "clean-audit", "dirty-audit", "injected", "violations", "degradations", "verified")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-14s %8d %12s %12s %9d %11d %13d %9v\n",
			c.Workload, c.Tuples,
			time.Duration(c.CleanAuditNs).Round(time.Microsecond),
			time.Duration(c.DirtyAuditNs).Round(time.Microsecond),
			c.Injected, c.Violations, c.Degradations, c.Verified)
	}
	return b.String()
}
