package bench

import (
	"context"
	"database/sql"
	"fmt"
	"strings"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/core"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/resilient"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// ChaosComparison is one workload's outcome under an injected-fault regime:
// how much resilience machinery (retries, breaker trips, degraded fallbacks)
// the serving layer spent, and whether every answer still matched the
// fault-free in-memory reference. Scenario is "faults" (30% transient
// injection, retry absorbs) or "outage" (primary hard down, breaker trips
// and the mirror-loaded Mem fallback serves).
type ChaosComparison struct {
	Scenario     string `json:"scenario"`
	Workload     string `json:"workload"`
	Queries      int    `json:"queries"`
	Executes     int64  `json:"executes"`
	Retries      int64  `json:"retries"`
	BreakerTrips int64  `json:"breaker_trips"`
	Fallbacks    int64  `json:"fallbacks"`
	Faults       int64  `json:"faults_injected"`
	Verified     bool   `json:"verified"`
}

// chaosWorkload is one (schema, document, queries) unit of the chaos suite:
// the same tree / DAG / recursive-CTE coverage the differential tests use,
// at fixed small sizes (chaos measures counters, not throughput).
type chaosWorkload struct {
	name    string
	schema  *schema.Schema
	doc     *xmltree.Document
	queries []string
}

func chaosWorkloads() []chaosWorkload {
	return []chaosWorkload{
		{"s1", workloads.S1(), workloads.GenerateS1(25, 1), []string{workloads.QueryQ3, "//b/x"}},
		{"s2-dag", workloads.S2(), workloads.GenerateS2(10, 2), []string{"//s/t1", "//t2"}},
		{"s3-recursive", workloads.S3(), workloads.GenerateS3(workloads.DefaultS3Config()), []string{workloads.QueryQ4, workloads.QueryQ6}},
		{"xmark", workloads.XMark(), workloads.GenerateXMark(workloads.DefaultXMarkConfig()), []string{workloads.QueryQ1, workloads.QueryQ2}},
	}
}

// chaosTranslations returns both translations of query under wl's schema.
func chaosTranslations(s *schema.Schema, query string) ([]*sqlast.Query, error) {
	path, err := pathexpr.Parse(query)
	if err != nil {
		return nil, err
	}
	g, err := pathid.Build(s, path)
	if err != nil {
		return nil, err
	}
	naive, err := translate.Naive(g)
	if err != nil {
		return nil, err
	}
	pruned, err := core.Translate(g)
	if err != nil {
		return nil, err
	}
	return []*sqlast.Query{naive, pruned.Query}, nil
}

// chaosRetry: negligible backoff wall-clock, generous attempts so the seeded
// 30% fault schedule always converges.
var chaosBenchRetry = resilient.RetryPolicy{
	MaxAttempts: 12,
	BaseDelay:   time.Microsecond,
	MaxDelay:    50 * time.Microsecond,
}

// RunChaos runs every chaos workload through a resilient-wrapped DB backend
// (over the fake driver) in two scenarios — transient faults absorbed by
// retry, and a hard primary outage degraded to the Mem mirror — and reports
// the resilience counters alongside differential verification against the
// fault-free in-memory reference.
func RunChaos(seed int64) ([]*ChaosComparison, error) {
	ctx := context.Background()
	var out []*ChaosComparison
	for i, wl := range chaosWorkloads() {
		mem := backend.NewMem()
		if err := mem.EnsureSchema(wl.schema); err != nil {
			return nil, fmt.Errorf("chaos %s: %w", wl.name, err)
		}
		if _, err := mem.Load(wl.schema, wl.doc); err != nil {
			return nil, fmt.Errorf("chaos %s: %w", wl.name, err)
		}

		faults, err := runChaosScenario(ctx, wl, mem, "faults", seed+int64(i), fakedb.FaultConfig{
			Seed:          seed + int64(i),
			ExecErrorRate: 0.3,
			RowErrorRate:  0.1,
		})
		if err != nil {
			return nil, err
		}
		outage, err := runChaosScenario(ctx, wl, mem, "outage", seed+int64(i), fakedb.FaultConfig{
			FailFirst: 1 << 30,
		})
		if err != nil {
			return nil, err
		}
		out = append(out, faults, outage)
	}
	return out, nil
}

func runChaosScenario(ctx context.Context, wl chaosWorkload, ref *backend.Mem, scenario string, seed int64, faults fakedb.FaultConfig) (*ChaosComparison, error) {
	inst := fakedb.New()
	primary := backend.NewDB(sql.OpenDB(inst.Connector()), sqlast.DialectSQLite)
	opts := resilient.Options{Retry: chaosBenchRetry}
	if scenario == "outage" {
		// Outage scenario: a tripping breaker plus a mirror-loaded fallback —
		// the degradation path is what is being counted.
		opts.Breaker = resilient.BreakerConfig{FailureThreshold: 2, Cooldown: time.Hour}
		opts.Fallback = backend.NewMem()
		opts.MirrorLoads = true
	} else {
		// Faults scenario: retries only; a huge threshold keeps the breaker
		// from short-circuiting what retry should absorb.
		opts.Breaker = resilient.BreakerConfig{FailureThreshold: 1 << 30}
	}
	wrapped := resilient.Wrap(primary, opts)
	defer wrapped.Close()
	if err := wrapped.EnsureSchema(wl.schema); err != nil {
		return nil, fmt.Errorf("chaos %s/%s: %w", wl.name, scenario, err)
	}
	if _, err := wrapped.Load(wl.schema, wl.doc); err != nil {
		return nil, fmt.Errorf("chaos %s/%s: %w", wl.name, scenario, err)
	}

	// Loads ran clean; faults arm only for the query phase.
	inst.SetFaults(faults)
	cmp := &ChaosComparison{Scenario: scenario, Workload: wl.name, Verified: true}
	for _, query := range wl.queries {
		qs, err := chaosTranslations(wl.schema, query)
		if err != nil {
			return nil, fmt.Errorf("chaos %s: translate %s: %w", wl.name, query, err)
		}
		for _, q := range qs {
			want, err := ref.Execute(ctx, q)
			if err != nil {
				return nil, fmt.Errorf("chaos %s: reference %s: %w", wl.name, query, err)
			}
			got, err := wrapped.Execute(ctx, q)
			if err != nil {
				return nil, fmt.Errorf("chaos %s/%s: %s under faults: %w", wl.name, scenario, query, err)
			}
			if !want.MultisetEqual(got) {
				cmp.Verified = false
			}
			cmp.Queries++
		}
	}
	st := wrapped.Stats()
	cmp.Executes = st.Executes
	cmp.Retries = st.Retries
	cmp.BreakerTrips = st.BreakerTrips
	cmp.Fallbacks = st.Fallbacks
	cmp.Faults = inst.InjectedFaults()
	return cmp, nil
}

// FormatChaos renders the chaos table for the benchrunner's stdout report.
func FormatChaos(cmps []*ChaosComparison) string {
	var b strings.Builder
	b.WriteString("Chaos suite: resilient serving under injected faults (fakedb primary)\n")
	fmt.Fprintf(&b, "%-9s %-14s %8s %9s %8s %6s %10s %7s %9s\n",
		"scenario", "workload", "queries", "executes", "retries", "trips", "fallbacks", "faults", "verified")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-9s %-14s %8d %9d %8d %6d %10d %7d %9v\n",
			c.Scenario, c.Workload, c.Queries, c.Executes, c.Retries, c.BreakerTrips, c.Fallbacks, c.Faults, c.Verified)
	}
	return b.String()
}
