package bench

import (
	"context"
	"fmt"
	"strings"
	"time"

	"xmlsql"
	"xmlsql/internal/integrity"
	"xmlsql/internal/workloads"
)

// UpdateComparison measures the transactional update path on one workload:
// batch apply cost (plan + validate + apply + incremental audit), the
// incremental audit against a full instance scan over the same store, and
// the serving consequence of a write — the touched hot query re-plans once
// and is hot again, while a query over untouched relations never loses its
// cached plan. Verified means every batch applied with a clean audit, the
// incremental and full verdicts agreed, row counts moved exactly as the
// batches dictate, and the untouched query kept its cache entry.
type UpdateComparison struct {
	Workload string `json:"workload"`
	Tuples   int    `json:"tuples"`

	// Batch throughput: BatchNs is the mean wall time of one applied batch
	// end to end; WrittenPerBatch is its tuple footprint.
	Batches         int     `json:"batches"`
	WrittenPerBatch int     `json:"written_per_batch"`
	BatchNs         float64 `json:"batch_ns"`
	BatchesPerSec   float64 `json:"batches_per_sec"`

	// Audit scoping: the incremental audit of one batch's neighborhood vs
	// the full audit of the whole instance, on the same post-write store.
	IncrementalAuditNs float64 `json:"incremental_audit_ns"`
	FullAuditNs        float64 `json:"full_audit_ns"`
	AuditSpeedup       float64 `json:"audit_speedup"`

	// Post-write serving recovery: the touched query's hot latency before
	// the write, its one-shot re-plan latency right after, and its hot
	// latency once re-cached. UntouchedKeptHot reports whether a hot query
	// over disjoint relations survived the write without re-planning.
	HotNs            float64 `json:"hot_ns"`
	RecoveryNs       float64 `json:"recovery_ns"`
	RecoveredHotNs   float64 `json:"recovered_hot_ns"`
	UntouchedKeptHot bool    `json:"untouched_kept_hot"`

	Verified bool `json:"verified"`
}

// updateBenchBatch is the measured write: one fresh InCategory under every
// Africa item — a batch whose footprint is exactly the InCat relation.
func updateBenchBatch(serial int) xmlsql.UpdateBatch {
	return xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op:   xmlsql.UpdateInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  fmt.Sprintf("<InCategory><Category>bench-%d</Category></InCategory>", serial),
	}}}
}

// RunUpdates measures the update path on the XMark workload at the given
// scale.
func RunUpdates(sc Scale) ([]*UpdateComparison, error) {
	ctx := context.Background()
	s := workloads.XMark()
	doc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	store := xmlsql.NewStore()
	if _, err := xmlsql.Shred(s, store, doc); err != nil {
		return nil, fmt.Errorf("updates: shred: %w", err)
	}
	p := xmlsql.NewPlannerWith(s, xmlsql.PlannerConfig{Backend: xmlsql.NewMemBackendOn(store)})
	cmp := &UpdateComparison{Workload: "xmark", Verified: true}

	// Warm the two serving queries: qTouched reads the relation the batches
	// write; qUntouched reads only the Site root.
	const qTouched = "//Item/InCategory/Category"
	const qUntouched = "/Site"
	for i := 0; i < 2; i++ {
		for _, q := range []string{qTouched, qUntouched} {
			if _, err := p.Exec(ctx, q); err != nil {
				return nil, fmt.Errorf("updates: warm %s: %w", q, err)
			}
		}
	}
	cmp.HotNs = measureFn(func() error {
		_, err := p.Exec(ctx, qTouched)
		return err
	})
	preRows, err := p.Exec(ctx, qTouched)
	if err != nil {
		return nil, err
	}

	// Throughput: a bounded run of applied batches (each grows the store, so
	// the loop is counted, not time-boxed).
	const batches = 16
	var touched xmlsql.TouchedTuples
	start := time.Now()
	for i := 0; i < batches; i++ {
		res, err := p.Update(ctx, updateBenchBatch(i))
		if err != nil {
			return nil, fmt.Errorf("updates: batch %d: %w", i, err)
		}
		if !res.Audit.Clean() {
			cmp.Verified = false
		}
		cmp.WrittenPerBatch = len(res.Touched.Written)
		touched = res.Touched
	}
	elapsed := time.Since(start)
	cmp.Batches = batches
	cmp.BatchNs = float64(elapsed.Nanoseconds()) / batches
	if elapsed > 0 {
		cmp.BatchesPerSec = batches / elapsed.Seconds()
	}
	cmp.Tuples = store.TotalRows()

	// Every batch inserted one InCategory (an InCat and a Cat-value tuple
	// pair per Africa item, of which the Category value rows serve) under
	// each Africa item.
	postRows, err := p.Exec(ctx, qTouched)
	if err != nil {
		return nil, err
	}
	perBatch := sc.ItemsPerContinent
	if len(postRows.Rows) != len(preRows.Rows)+batches*perBatch {
		cmp.Verified = false
	}

	// Incremental vs full audit over the same post-write instance. The
	// incremental side re-checks one batch's neighborhood — what
	// Planner.Update actually runs after a write.
	probe := integrity.StoreProbe(store)
	var incRep, fullRep *integrity.Report
	cmp.IncrementalAuditNs = measureFn(func() error {
		rep, err := integrity.AuditIncrementalOpts(ctx, probe, s, touched, integrity.Options{})
		incRep = rep
		return err
	})
	cmp.FullAuditNs = measureFn(func() error {
		rep, err := integrity.Audit(ctx, integrity.StoreSource(store), s)
		fullRep = rep
		return err
	})
	if cmp.IncrementalAuditNs > 0 {
		cmp.AuditSpeedup = cmp.FullAuditNs / cmp.IncrementalAuditNs
	}
	if incRep == nil || fullRep == nil || incRep.Clean() != fullRep.Clean() {
		cmp.Verified = false
	}

	// Post-write recovery: re-warm, write once more, then take the one-shot
	// re-plan latency of the touched query and the steady hot latency after
	// it. The untouched query must keep its entry across the write.
	for i := 0; i < 2; i++ {
		if _, err := p.Exec(ctx, qTouched); err != nil {
			return nil, err
		}
	}
	preMisses := p.Stats().Misses
	if _, err := p.Update(ctx, updateBenchBatch(batches)); err != nil {
		return nil, fmt.Errorf("updates: recovery batch: %w", err)
	}
	one := time.Now()
	if _, err := p.Exec(ctx, qTouched); err != nil {
		return nil, err
	}
	cmp.RecoveryNs = float64(time.Since(one).Nanoseconds())
	if p.Stats().Misses == preMisses {
		cmp.Verified = false // the touched query served a stale plan
	}
	cmp.RecoveredHotNs = measureFn(func() error {
		_, err := p.Exec(ctx, qTouched)
		return err
	})
	misses := p.Stats().Misses
	if _, err := p.Exec(ctx, qUntouched); err != nil {
		return nil, err
	}
	cmp.UntouchedKeptHot = p.Stats().Misses == misses
	if !cmp.UntouchedKeptHot {
		cmp.Verified = false
	}
	return []*UpdateComparison{cmp}, nil
}

// UpdatesGate returns one error per gate violation: an unverified run, or an
// incremental audit that is not at least minAuditSpeedup times faster than
// the full scan.
func UpdatesGate(cmps []*UpdateComparison, minAuditSpeedup float64) []error {
	var errs []error
	for _, c := range cmps {
		if !c.Verified {
			errs = append(errs, fmt.Errorf("updates %s: verification failed", c.Workload))
		}
		if c.AuditSpeedup < minAuditSpeedup {
			errs = append(errs, fmt.Errorf("updates %s: incremental audit only %.1fx faster than full (gate %.1fx)",
				c.Workload, c.AuditSpeedup, minAuditSpeedup))
		}
	}
	return errs
}

// FormatUpdates renders the update table for the benchrunner's stdout report.
func FormatUpdates(cmps []*UpdateComparison) string {
	var b strings.Builder
	b.WriteString("Transactional updates: batch apply, scoped audit, post-write recovery\n")
	fmt.Fprintf(&b, "%-8s %8s %9s %9s %11s %11s %8s %9s %9s %10s %9s\n",
		"workload", "tuples", "batch", "batch/s", "incr-audit", "full-audit", "speedup", "hot", "recovery", "kept-hot", "verified")
	for _, c := range cmps {
		fmt.Fprintf(&b, "%-8s %8d %9s %9.1f %11s %11s %7.1fx %9s %9s %10v %9v\n",
			c.Workload, c.Tuples,
			time.Duration(c.BatchNs).Round(time.Microsecond), c.BatchesPerSec,
			time.Duration(c.IncrementalAuditNs).Round(time.Microsecond),
			time.Duration(c.FullAuditNs).Round(time.Microsecond),
			c.AuditSpeedup,
			time.Duration(c.HotNs).Round(time.Microsecond),
			time.Duration(c.RecoveryNs).Round(time.Microsecond),
			c.UntouchedKeptHot, c.Verified)
	}
	return b.String()
}
