package bench

import (
	"fmt"
	"strings"
	"time"

	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/relational"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
)

// RunAblations measures the design choices DESIGN.md calls out:
//
//   - the §4.3 edge-annotation optimization (try the edge condition before
//     adding the parent join) on and off;
//   - §4.4 combinability (merging same-RelSeq suffixes into one SELECT with
//     disjoined conditions) restricted to identical templates;
//   - hash joins vs nested loops in the substrate engine (sanity: the
//     pruned-beats-naive ordering must not depend on the join algorithm).
func RunAblations(sc Scale) (string, error) {
	var b strings.Builder
	b.WriteString("Ablations\n=========\n\n")

	// --- Edge-annotation optimization (Q2 on XMark).
	xm := workloads.XMark()
	xmDoc := workloads.GenerateXMark(workloads.XMarkConfig{
		ItemsPerContinent: sc.ItemsPerContinent, CategoriesPerItem: 2, NumCategories: 50, Seed: 1,
	})
	store := relational.NewStore()
	if _, err := shred.ShredAll(xm, store, shred.Options{}, xmDoc); err != nil {
		return "", err
	}
	q2, err := pathid.Build(xm, pathexpr.MustParse(workloads.QueryQ2))
	if err != nil {
		return "", err
	}
	withOpt, err := core.TranslateOpts(q2, core.Options{})
	if err != nil {
		return "", err
	}
	withoutOpt, err := core.TranslateOpts(q2, core.Options{DisableEdgeAnnotOpt: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "edge-annotation optimization (Q2 = %s):\n", workloads.QueryQ2)
	fmt.Fprintf(&b, "  on : %-24s %10s\n", withOpt.Query.Shape(), fmtNs(measure(memExec(store), withOpt.Query)))
	fmt.Fprintf(&b, "  off: %-24s %10s\n\n", withoutOpt.Query.Shape(), fmtNs(measure(memExec(store), withoutOpt.Query)))

	// --- Combinability (Q1 on XMark: with full combining all six suffixes
	// collapse into one scan; with identical-template-only combining they
	// still merge — their templates are identical — so also show Q3 on S1
	// where only disjunctive merging collapses the branches).
	q1, err := pathid.Build(xm, pathexpr.MustParse(workloads.QueryQ1))
	if err != nil {
		return "", err
	}
	full, err := core.TranslateOpts(q1, core.Options{})
	if err != nil {
		return "", err
	}
	identOnly, err := core.TranslateOpts(q1, core.Options{CombineIdenticalOnly: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "combinability (Q1 = %s):\n", workloads.QueryQ1)
	fmt.Fprintf(&b, "  full            : %-24s %10s\n", full.Query.Shape(), fmtNs(measure(memExec(store), full.Query)))
	fmt.Fprintf(&b, "  identical-only  : %-24s %10s (fallback=%v)\n\n",
		identOnly.Query.Shape(), fmtNs(measure(memExec(store), identOnly.Query)), identOnly.Fallback)

	s1 := workloads.S1()
	s1Doc := workloads.GenerateS1(sc.S1Groups, 1)
	s1Store := relational.NewStore()
	if _, err := shred.ShredAll(s1, s1Store, shred.Options{}, s1Doc); err != nil {
		return "", err
	}
	q3, err := pathid.Build(s1, pathexpr.MustParse(workloads.QueryQ3))
	if err != nil {
		return "", err
	}
	fullQ3, err := core.TranslateOpts(q3, core.Options{})
	if err != nil {
		return "", err
	}
	identQ3, err := core.TranslateOpts(q3, core.Options{CombineIdenticalOnly: true})
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "combinability (Q3 = %s over S1):\n", workloads.QueryQ3)
	fmt.Fprintf(&b, "  full            : %-24s %10s\n", fullQ3.Query.Shape(), fmtNs(measure(memExec(s1Store), fullQ3.Query)))
	fmt.Fprintf(&b, "  identical-only  : %-24s %10s (fallback=%v)\n\n",
		identQ3.Query.Shape(), fmtNs(measure(memExec(s1Store), identQ3.Query)), identQ3.Fallback)

	// --- Substrate: hash join vs nested loop on naive Q1.
	naiveQ1, err := translate.Naive(q1)
	if err != nil {
		return "", err
	}
	hash := measureOpts(store, naiveQ1, engine.Options{})
	nested := measureOpts(store, naiveQ1, engine.Options{ForceNestedLoop: true})
	prunedHash := measureOpts(store, full.Query, engine.Options{})
	prunedNested := measureOpts(store, full.Query, engine.Options{ForceNestedLoop: true})
	fmt.Fprintf(&b, "substrate join algorithm (naive vs pruned Q1):\n")
	fmt.Fprintf(&b, "  hash joins      : naive %10s   pruned %10s   speedup %6.2fx\n",
		fmtNs(hash), fmtNs(prunedHash), hash/prunedHash)
	fmt.Fprintf(&b, "  nested loops    : naive %10s   pruned %10s   speedup %6.2fx\n",
		fmtNs(nested), fmtNs(prunedNested), nested/prunedNested)
	if err := store.BuildJoinIndexes("parentid"); err != nil {
		return "", err
	}
	idxNaive := measureOpts(store, naiveQ1, engine.Options{})
	idxPruned := measureOpts(store, full.Query, engine.Options{})
	fmt.Fprintf(&b, "  parentid indexes: naive %10s   pruned %10s   speedup %6.2fx\n",
		fmtNs(idxNaive), fmtNs(idxPruned), idxNaive/idxPruned)
	b.WriteString("  (the pruned translation wins under every join strategy)\n")
	return b.String(), nil
}

func measureOpts(store *relational.Store, q *sqlast.Query, opts engine.Options) float64 {
	if _, err := engine.ExecuteOpts(store, q, opts); err != nil {
		return 0
	}
	var reps int
	start := time.Now()
	for time.Since(start) < MinMeasureTime || reps < 3 {
		if _, err := engine.ExecuteOpts(store, q, opts); err != nil {
			return 0
		}
		reps++
	}
	return float64(time.Since(start).Nanoseconds()) / float64(reps)
}
