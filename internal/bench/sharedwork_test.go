package bench_test

import (
	"testing"

	"xmlsql/internal/bench"
)

func TestRunSharedWorkTiny(t *testing.T) {
	cmps, err := bench.RunSharedWork(tinyScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(cmps) < 4 {
		t.Fatalf("expected >= 4 shared-work cases, got %d", len(cmps))
	}
	factored := 0
	for _, c := range cmps {
		if !c.Verified {
			t.Errorf("%s %s: verification failed", c.Workload, c.Query)
		}
		if c.FactorChanged {
			factored++
		}
		if c.Rows == 0 {
			t.Errorf("%s %s: no rows returned", c.Workload, c.Query)
		}
	}
	if factored < 3 {
		t.Errorf("the rewrite should fire on at least 3 of the branch-heavy cases, fired on %d", factored)
	}
	out := bench.FormatSharedWork(cmps)
	if out == "" {
		t.Fatal("empty table")
	}
}
