package wal

import (
	"fmt"
	"hash/crc32"
	"os"

	"xmlsql/internal/relational"
)

// A snapshot file is one checksummed blob: the whole store (catalog and
// rows) plus the sequence number of the last record it covers. It is
// written to a temp file, fsynced, and atomically renamed into place, so a
// snapshot either exists completely or not at all; the checksum catches the
// remaining failure mode (a torn write that somehow survived the rename
// protocol, or later media corruption), in which case recovery falls back
// to the previous snapshot and a longer replay.

var snapshotMagic = []byte("XSQSNAP1")

func frameSnapshot(payload []byte) []byte {
	out := make([]byte, 0, len(snapshotMagic)+8+len(payload))
	out = append(out, snapshotMagic...)
	out = appendU32(out, uint32(len(payload)))
	out = appendU32(out, crc32.Checksum(payload, crcTable))
	return append(out, payload...)
}

// encodeSnapshot serializes the full store. Tables are emitted in sorted
// name order; rows in current table order (order is irrelevant — recovery
// re-inserts and re-indexes).
func encodeSnapshot(store *relational.Store, lsn uint64) []byte {
	var e encoder
	e.uvarint(lsn)
	names := store.TableNames()
	e.uvarint(uint64(len(names)))
	for _, name := range names {
		t := store.Table(name)
		ts := t.Schema()
		e.str(ts.Name)
		e.str(ts.PrimaryKey)
		e.uvarint(uint64(len(ts.Columns)))
		for _, c := range ts.Columns {
			e.str(c.Name)
			e.byte(byte(c.Kind))
		}
		rows := t.Rows()
		e.uvarint(uint64(len(rows)))
		for _, r := range rows {
			for _, v := range r {
				e.value(v)
			}
		}
	}
	return e.b
}

func decodeSnapshot(payload []byte) (*relational.Store, uint64, error) {
	d := &decoder{buf: payload}
	lsn := d.uvarint()
	store := relational.NewStore()
	nt := d.count()
	for i := 0; i < nt && d.err == nil; i++ {
		ts := &relational.TableSchema{Name: d.str(), PrimaryKey: d.str()}
		nc := d.count()
		for j := 0; j < nc && d.err == nil; j++ {
			ts.Columns = append(ts.Columns, relational.Column{Name: d.str(), Kind: relational.Kind(d.byte())})
		}
		if d.err != nil {
			break
		}
		t, err := store.CreateTable(ts)
		if err != nil {
			return nil, 0, fmt.Errorf("wal: snapshot: %w", err)
		}
		nr := d.count()
		for j := 0; j < nr && d.err == nil; j++ {
			row := make(relational.Row, nc)
			for k := range row {
				row[k] = d.value()
			}
			if d.err != nil {
				break
			}
			if err := t.Insert(row); err != nil {
				return nil, 0, fmt.Errorf("wal: snapshot: table %s: %w", ts.Name, err)
			}
		}
	}
	if d.err != nil {
		return nil, 0, d.err
	}
	if d.off != len(payload) {
		return nil, 0, fmt.Errorf("wal: snapshot: %d trailing bytes", len(payload)-d.off)
	}
	return store, lsn, nil
}

// readSnapshot loads and validates one snapshot file.
func readSnapshot(path string) (*relational.Store, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(data) < len(snapshotMagic)+8 || string(data[:len(snapshotMagic)]) != string(snapshotMagic) {
		return nil, 0, fmt.Errorf("wal: snapshot %s: bad header", path)
	}
	n := readU32(data[len(snapshotMagic):])
	crc := readU32(data[len(snapshotMagic)+4:])
	payload := data[len(snapshotMagic)+8:]
	if uint32(len(payload)) != n {
		return nil, 0, fmt.Errorf("wal: snapshot %s: truncated (%d of %d payload bytes)", path, len(payload), n)
	}
	if crc32.Checksum(payload, crcTable) != crc {
		return nil, 0, fmt.Errorf("wal: snapshot %s: checksum mismatch", path)
	}
	return decodeSnapshot(payload)
}
