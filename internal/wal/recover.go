package wal

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// RecoveryInfo describes what Open found and did. The caller uses it to
// decide the tenant's post-recovery trust state: ReplayedBatches == 0 means
// the store is exactly a snapshot (nothing to re-verify); otherwise Touched
// (when TouchedComplete) scopes an incremental audit over the replayed
// neighborhoods, and TouchedComplete == false demands a full audit.
type RecoveryInfo struct {
	// SnapshotLoaded reports whether a valid snapshot was found; false
	// means a first boot (the store starts empty and the caller must load
	// it and Checkpoint before committing batches).
	SnapshotLoaded bool
	// SnapshotLSN is the sequence number the loaded snapshot covers.
	SnapshotLSN uint64
	// SkippedSnapshots counts snapshot files that failed validation
	// (truncated, bad checksum) and were passed over for an older one.
	SkippedSnapshots int
	// ReplayedBatches is the number of log records applied on top of the
	// snapshot.
	ReplayedBatches int
	// LastSeq is the sequence number of the last durable record.
	LastSeq uint64
	// TruncatedTail reports that the log ended in a torn or corrupt record,
	// which was physically truncated away. Everything before it replayed
	// normally; the batch it belonged to was never acknowledged.
	TruncatedTail bool
	// Touched is the combined integrity footprint of the replayed batches
	// (later batches win: a tuple re-written after a delete counts as
	// written). Meaningful only when TouchedComplete.
	Touched integrity.Touched
	// TouchedComplete reports whether every replayed statement's footprint
	// could be derived from its record; when false the caller must fall
	// back to a full audit.
	TouchedComplete bool
	// Elapsed is the wall time recovery took (snapshot load + replay).
	Elapsed time.Duration
}

// Open recovers the data directory and returns a manager ready to commit:
// it loads the newest valid snapshot (falling back past corrupt ones),
// replays the suffix of log records in sequence order, truncates a torn or
// corrupt tail at the first bad checksum, rebuilds the join indexes, and
// opens the tail segment for appending.
//
// Replay re-interprets each record's DML batch through backend.ApplyStmt —
// the same interpreter the live commit path uses — so a replayed store is
// bit-for-bit the store the original commits produced.
func Open(dir string, opts Options) (*Manager, *RecoveryInfo, error) {
	start := time.Now()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open %s: %w", dir, err)
	}
	var snaps, segs []uint64
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, ".tmp") {
			// A temp file is always debris: either a torn snapshot write or
			// a complete one that missed its rename — in both cases the log
			// still covers its contents.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if lsn, ok := parseSnapshotName(name); ok {
			snaps = append(snaps, lsn)
		}
		if first, ok := parseSegmentName(name); ok {
			segs = append(segs, first)
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] }) // newest first
	sort.Slice(segs, func(i, j int) bool { return segs[i] < segs[j] })   // oldest first

	info := &RecoveryInfo{TouchedComplete: true}
	var store *relational.Store
	for _, lsn := range snaps {
		st, gotLSN, err := readSnapshot(filepath.Join(dir, snapshotName(lsn)))
		if err != nil {
			info.SkippedSnapshots++
			continue
		}
		store = st
		info.SnapshotLoaded = true
		info.SnapshotLSN = gotLSN
		break
	}
	if store == nil {
		store = relational.NewStore()
	}

	lastSeq := info.SnapshotLSN
	foot := newFootprint()
	for i, first := range segs {
		path := filepath.Join(dir, segmentName(first))
		truncated, newLast, err := replaySegment(path, store, info.SnapshotLSN, lastSeq, foot, info)
		if err != nil {
			return nil, nil, err
		}
		lastSeq = newLast
		if truncated {
			info.TruncatedTail = true
			// Anything after a torn record is unreachable debris.
			for _, later := range segs[i+1:] {
				os.Remove(filepath.Join(dir, segmentName(later)))
			}
			break
		}
	}
	info.LastSeq = lastSeq
	info.Touched = foot.touched()
	if err := store.BuildJoinIndexes(schema.ParentIDColumn); err != nil {
		return nil, nil, fmt.Errorf("wal: rebuilding indexes: %w", err)
	}

	m := &Manager{
		dir:     dir,
		opts:    opts,
		store:   store,
		nextSeq: lastSeq + 1,
		hasSnap: info.SnapshotLoaded,
		snapLSN: info.SnapshotLSN,
	}
	tail := segmentName(m.nextSeq)
	if n := len(segs); n > 0 {
		if last := segs[n-1]; last <= lastSeq {
			if _, err := os.Stat(filepath.Join(dir, segmentName(last))); err == nil {
				tail = segmentName(last)
			}
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, tail), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: open tail segment: %w", err)
	}
	m.f = f
	syncDir(dir)
	m.startSyncer()
	info.Elapsed = time.Since(start)
	return m, info, nil
}

// replaySegment applies the records of one segment whose sequence numbers
// follow lastSeq, skipping records the snapshot already covers. On a torn
// or corrupt record it truncates the file at that point and reports
// truncated=true. A sequence gap or regression (beyond snapshot-covered
// records) is treated the same way: the log is append-only, so a broken
// chain can only be a damaged tail, and the records beyond it belong to
// batches whose acknowledgement never became durable.
func replaySegment(path string, store *relational.Store, snapLSN, lastSeq uint64, foot *footprint, info *RecoveryInfo) (bool, uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return false, lastSeq, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	off := 0
	truncateAt := -1
	for off < len(data) {
		if off+recordHeaderLen > len(data) {
			truncateAt = off
			break
		}
		n := int(readU32(data[off:]))
		crc := readU32(data[off+4:])
		if n < 9 || n > maxRecordLen || off+recordHeaderLen+n > len(data) {
			truncateAt = off
			break
		}
		payload := data[off+recordHeaderLen : off+recordHeaderLen+n]
		if crc32.Checksum(payload, crcTable) != crc {
			truncateAt = off
			break
		}
		seq := readU64(payload)
		kind := payload[8]
		body := payload[9:]
		if seq <= snapLSN {
			// Covered by the snapshot (a stale segment left by a crash
			// between snapshot rename and rotation).
			off += recordHeaderLen + n
			continue
		}
		if seq != lastSeq+1 || kind != KindDML {
			truncateAt = off
			break
		}
		stmts, err := DecodeBatch(body)
		if err != nil {
			// The checksum held but the body does not parse: record-level
			// corruption beyond what a torn write produces. Same remedy.
			truncateAt = off
			break
		}
		if err := applyBatch(store, stmts); err != nil {
			return false, lastSeq, fmt.Errorf("wal: replay %s record %d: %w", path, seq, err)
		}
		foot.add(stmts, info)
		lastSeq = seq
		info.ReplayedBatches++
		off += recordHeaderLen + n
	}
	if truncateAt >= 0 {
		if err := os.Truncate(path, int64(truncateAt)); err != nil {
			return false, lastSeq, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
		return true, lastSeq, nil
	}
	return false, lastSeq, nil
}

func applyBatch(store *relational.Store, stmts []sqlast.DMLStmt) error {
	tx := store.Begin()
	for _, stmt := range stmts {
		if _, err := backend.ApplyStmt(tx, store, stmt); err != nil {
			tx.Rollback()
			return err
		}
	}
	tx.Commit()
	return nil
}

// footprint folds per-batch integrity footprints in replay order: a tuple
// deleted then re-written is written; written then deleted is deleted.
type footprint struct {
	written map[integrity.TupleRef]bool
	deleted map[integrity.TupleRef]bool
	order   []integrity.TupleRef
	seen    map[integrity.TupleRef]bool
}

func newFootprint() *footprint {
	return &footprint{
		written: map[integrity.TupleRef]bool{},
		deleted: map[integrity.TupleRef]bool{},
		seen:    map[integrity.TupleRef]bool{},
	}
}

func (f *footprint) add(stmts []sqlast.DMLStmt, info *RecoveryInfo) {
	t, complete := TouchedFromStmts(stmts)
	if !complete {
		info.TouchedComplete = false
	}
	for _, r := range t.Written {
		f.written[r] = true
		delete(f.deleted, r)
		f.note(r)
	}
	for _, r := range t.Deleted {
		f.deleted[r] = true
		delete(f.written, r)
		f.note(r)
	}
}

func (f *footprint) note(r integrity.TupleRef) {
	if !f.seen[r] {
		f.seen[r] = true
		f.order = append(f.order, r)
	}
}

func (f *footprint) touched() integrity.Touched {
	var t integrity.Touched
	for _, r := range f.order {
		if f.written[r] {
			t.Written = append(t.Written, r)
		} else if f.deleted[r] {
			t.Deleted = append(t.Deleted, r)
		}
	}
	return t
}
