package wal_test

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/update"
	"xmlsql/internal/wal"
	"xmlsql/internal/workloads"
)

var xmarkCfg = workloads.XMarkConfig{ItemsPerContinent: 3, CategoriesPerItem: 1, NumCategories: 5, Seed: 7}

// durable is one durable tenant under test: a recovered store, the log that
// owns it, and an update applier whose DML path acknowledges through the log.
type durable struct {
	mgr  *wal.Manager
	mem  *backend.Mem
	s    *schema.Schema
	app  *update.Applier
	info *wal.RecoveryInfo
}

// openDurable opens (or boots) an xmark tenant in dir. On first boot it
// shreds the deterministic generated document and checkpoints, exactly as a
// server would.
func openDurable(t *testing.T, dir string, opts wal.Options) *durable {
	t.Helper()
	mgr, info, err := wal.Open(dir, opts)
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	s := workloads.XMark()
	store := mgr.Store()
	if !info.SnapshotLoaded {
		if _, err := shred.ShredAll(s, store, shred.Options{}, workloads.GenerateXMark(xmarkCfg)); err != nil {
			t.Fatalf("shred: %v", err)
		}
		if err := mgr.Checkpoint(); err != nil {
			t.Fatalf("bootstrap checkpoint: %v", err)
		}
	}
	mem := backend.NewMemOn(store)
	mem.SetCommitLog(mgr)
	app, err := update.New(s, integrity.StoreSource(store), integrity.StoreProbe(store), mem, update.Options{})
	if err != nil {
		t.Fatalf("update.New: %v", err)
	}
	return &durable{mgr: mgr, mem: mem, s: s, app: app, info: info}
}

// volatileReference builds the same xmark instance without any log, for
// differential comparison: ids and batch effects are deterministic, so
// applying the same mutations yields byte-identical dumps.
func volatileReference(t *testing.T) (*update.Applier, *relational.Store) {
	t.Helper()
	s := workloads.XMark()
	store := relational.NewStore()
	if _, err := shred.ShredAll(s, store, shred.Options{}, workloads.GenerateXMark(xmarkCfg)); err != nil {
		t.Fatalf("shred: %v", err)
	}
	app, err := update.ForStore(s, store, update.Options{})
	if err != nil {
		t.Fatalf("update.ForStore: %v", err)
	}
	return app, store
}

func insertBatch(n int) update.Batch {
	return update.Batch{Muts: []update.Mutation{{
		Op:   update.OpInsert,
		Path: "/Site/Regions/Africa/Item",
		XML:  fmt.Sprintf("<InCategory><Category>wal-%d</Category></InCategory>", n),
	}}}
}

func apply(t *testing.T, app *update.Applier, b update.Batch) {
	t.Helper()
	if _, err := app.Apply(context.Background(), b); err != nil {
		t.Fatalf("Apply: %v", err)
	}
}

func auditClean(t *testing.T, s *schema.Schema, store *relational.Store, touched integrity.Touched) {
	t.Helper()
	rep, err := integrity.AuditIncremental(context.Background(), integrity.StoreProbe(store), s, touched)
	if err != nil {
		t.Fatalf("incremental audit: %v", err)
	}
	if !rep.Clean() {
		t.Fatalf("incremental audit dirty after replay: %s", rep)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	id := sqlast.ColRef{Table: "Item", Column: schema.IDColumn}
	batches := [][]sqlast.DMLStmt{
		{&sqlast.InsertStmt{
			Table:   "Item",
			Columns: []string{"id", "parentid", "name"},
			Rows: [][]sqlast.Lit{
				{sqlast.IntLit(1), sqlast.IntLit(0), {Value: relational.String("x")}},
				{sqlast.IntLit(2), {Value: relational.Null}, {Value: relational.String("")}},
			},
		}},
		{&sqlast.DeleteStmt{Table: "Item", Where: sqlast.Eq(id, sqlast.IntLit(5))}},
		{&sqlast.DeleteStmt{Table: "Item", Where: sqlast.In{Left: id, List: []sqlast.Lit{sqlast.IntLit(1), sqlast.IntLit(9)}}}},
		{&sqlast.UpdateStmt{
			Table: "Item",
			Set:   []sqlast.Assign{{Column: "name", Value: sqlast.Lit{Value: relational.String("y'z")}}},
			Where: sqlast.And{Kids: []sqlast.Expr{
				sqlast.Eq(id, sqlast.IntLit(3)),
				sqlast.Or{Kids: []sqlast.Expr{
					sqlast.IsNull{Left: sqlast.ColRef{Table: "Item", Column: "name"}},
					sqlast.Cmp{Op: sqlast.OpNe, Left: sqlast.ColRef{Column: "name"}, Right: sqlast.Lit{Value: relational.String("q")}},
				}},
			}},
		}},
		{&sqlast.DeleteStmt{Table: "Item", Where: nil}},
		{},
	}
	for i, stmts := range batches {
		body, err := wal.EncodeBatch(stmts)
		if err != nil {
			t.Fatalf("batch %d: encode: %v", i, err)
		}
		got, err := wal.DecodeBatch(body)
		if err != nil {
			t.Fatalf("batch %d: decode: %v", i, err)
		}
		if len(got) != len(stmts) {
			t.Fatalf("batch %d: %d stmts, want %d", i, len(got), len(stmts))
		}
		for j := range stmts {
			if sqlast.DMLString(got[j]) != sqlast.DMLString(stmts[j]) {
				t.Errorf("batch %d stmt %d:\n got %s\nwant %s", i, j, sqlast.DMLString(got[j]), sqlast.DMLString(stmts[j]))
			}
		}
	}
	if _, err := wal.DecodeBatch([]byte{0x02, 0x01}); err == nil {
		t.Fatal("decode of truncated body succeeded")
	}
}

func TestTouchedFromStmts(t *testing.T) {
	id := sqlast.ColRef{Table: "Item", Column: schema.IDColumn}
	touched, ok := wal.TouchedFromStmts([]sqlast.DMLStmt{
		&sqlast.InsertStmt{Table: "Item", Columns: []string{"id", "name"},
			Rows: [][]sqlast.Lit{{sqlast.IntLit(10), {Value: relational.String("a")}}}},
		&sqlast.DeleteStmt{Table: "InCat", Where: sqlast.In{Left: sqlast.ColRef{Column: schema.IDColumn}, List: []sqlast.Lit{sqlast.IntLit(3), sqlast.IntLit(4)}}},
		&sqlast.UpdateStmt{Table: "Item", Set: []sqlast.Assign{{Column: "name", Value: sqlast.Lit{Value: relational.String("b")}}},
			Where: sqlast.And{Kids: []sqlast.Expr{sqlast.Eq(id, sqlast.IntLit(7)), sqlast.IsNull{Left: sqlast.ColRef{Column: "name"}}}}},
	})
	if !ok {
		t.Fatal("footprint reported incomplete")
	}
	if len(touched.Written) != 2 || len(touched.Deleted) != 2 {
		t.Fatalf("touched = %+v, want 2 written + 2 deleted", touched)
	}

	// An insert without the id column cannot contribute a footprint.
	_, ok = wal.TouchedFromStmts([]sqlast.DMLStmt{
		&sqlast.InsertStmt{Table: "Item", Columns: []string{"name"}, Rows: [][]sqlast.Lit{{{Value: relational.String("x")}}}},
	})
	if ok {
		t.Fatal("id-less insert reported complete")
	}
	// A predicate not anchored on id either.
	_, ok = wal.TouchedFromStmts([]sqlast.DMLStmt{
		&sqlast.DeleteStmt{Table: "Item", Where: sqlast.Eq(sqlast.ColRef{Column: "name"}, sqlast.Lit{Value: relational.String("x")})},
	})
	if ok {
		t.Fatal("name-scoped delete reported complete")
	}
}

func TestBootstrapAndReopen(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{})
	if d.info.SnapshotLoaded {
		t.Fatal("fresh dir reported a snapshot")
	}
	want := d.mgr.Store().Dump()
	if err := d.mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	d2 := openDurable(t, dir, wal.Options{})
	defer d2.mgr.Close()
	if !d2.info.SnapshotLoaded {
		t.Fatal("reopen found no snapshot")
	}
	if d2.info.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches, want 0", d2.info.ReplayedBatches)
	}
	if got := d2.mgr.Store().Dump(); got != want {
		t.Fatal("recovered store differs from bootstrapped store")
	}
}

func TestCommitRequiresSnapshot(t *testing.T) {
	mgr, _, err := wal.Open(t.TempDir(), wal.Options{})
	if err != nil {
		t.Fatalf("wal.Open: %v", err)
	}
	defer mgr.Close()
	err = mgr.Commit([]sqlast.DMLStmt{&sqlast.DeleteStmt{Table: "T"}})
	if !errors.Is(err, wal.ErrNoSnapshot) {
		t.Fatalf("err = %v, want ErrNoSnapshot", err)
	}
}

// TestReplayAfterKill is the happy recovery path: commit batches, "kill"
// the process (no Close, no final checkpoint), reopen, and require the
// replayed store byte-identical to the live one, with a clean incremental
// audit over the replayed footprint.
func TestReplayAfterKill(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{SnapshotEvery: -1})
	const batches = 5
	for i := 0; i < batches; i++ {
		apply(t, d.app, insertBatch(i))
	}
	want := d.mgr.Store().Dump()
	// Process dies here: the manager is abandoned without Close. Records
	// were fsynced per commit, so nothing is lost.

	d2 := openDurable(t, dir, wal.Options{})
	defer d2.mgr.Close()
	if d2.info.ReplayedBatches != batches {
		t.Fatalf("replayed %d batches, want %d", d2.info.ReplayedBatches, batches)
	}
	if d2.info.TruncatedTail {
		t.Fatal("clean log reported a truncated tail")
	}
	if !d2.info.TouchedComplete {
		t.Fatal("footprint incomplete for id-scoped batches")
	}
	if len(d2.info.Touched.Written) == 0 {
		t.Fatal("no written tuples in replay footprint")
	}
	if got := d2.mgr.Store().Dump(); got != want {
		t.Fatal("recovered store differs from pre-kill store")
	}
	auditClean(t, d2.s, d2.mgr.Store(), d2.info.Touched)

	// The recovered tenant keeps working durably.
	apply(t, d2.app, insertBatch(99))
}

func TestTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{SnapshotEvery: -1})
	apply(t, d.app, insertBatch(0))
	want := d.mgr.Store().Dump()
	if err := d.mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Append garbage to the tail segment: a torn record a crash mid-write
	// would leave.
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x55, 0x01, 0, 0, 0xde, 0xad, 0xbe})
	f.Close()

	d2 := openDurable(t, dir, wal.Options{})
	defer d2.mgr.Close()
	if !d2.info.TruncatedTail {
		t.Fatal("torn tail not reported")
	}
	if d2.info.ReplayedBatches != 1 {
		t.Fatalf("replayed %d batches, want 1", d2.info.ReplayedBatches)
	}
	if got := d2.mgr.Store().Dump(); got != want {
		t.Fatal("recovered store differs after tail truncation")
	}
	// The truncated file must be physically clean: committing and
	// re-opening again replays without another truncation.
	apply(t, d2.app, insertBatch(1))
	want2 := d2.mgr.Store().Dump()
	d3 := openDurable(t, dir, wal.Options{})
	defer d3.mgr.Close()
	if d3.info.TruncatedTail {
		t.Fatal("tail still torn after truncation")
	}
	if got := d3.mgr.Store().Dump(); got != want2 {
		t.Fatal("second recovery differs")
	}
}

// TestCorruptSnapshotFallsBackToOlder corrupts the newest snapshot while an
// older snapshot plus the full segment chain between them are present (the
// debris a crash between snapshot rename and rotation can leave): recovery
// must skip the bad snapshot and reconstruct the same state from the older
// one plus a longer replay.
func TestCorruptSnapshotFallsBackToOlder(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{SnapshotEvery: -1})
	apply(t, d.app, insertBatch(0))
	apply(t, d.app, insertBatch(1))
	want := d.mgr.Store().Dump()
	if err := d.mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Save the pre-checkpoint state: old snapshot + the segment holding
	// both records.
	saved := map[string][]byte{}
	for _, pat := range []string{"snap-*.snap", "wal-*.log"} {
		paths, _ := filepath.Glob(filepath.Join(dir, pat))
		for _, p := range paths {
			data, err := os.ReadFile(p)
			if err != nil {
				t.Fatal(err)
			}
			saved[filepath.Base(p)] = data
		}
	}

	d2 := openDurable(t, dir, wal.Options{SnapshotEvery: -1})
	if err := d2.mgr.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if err := d2.mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Corrupt the new snapshot and restore the old files alongside it.
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots = %v, want exactly 1 after rotation", snaps)
	}
	data, err := os.ReadFile(snaps[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(snaps[0], data, 0o644); err != nil {
		t.Fatal(err)
	}
	for name, content := range saved {
		if err := os.WriteFile(filepath.Join(dir, name), content, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	d3 := openDurable(t, dir, wal.Options{})
	defer d3.mgr.Close()
	if d3.info.SkippedSnapshots != 1 {
		t.Fatalf("skipped snapshots = %d, want 1", d3.info.SkippedSnapshots)
	}
	if d3.info.ReplayedBatches != 2 {
		t.Fatalf("replayed %d batches, want 2 from the older snapshot", d3.info.ReplayedBatches)
	}
	if got := d3.mgr.Store().Dump(); got != want {
		t.Fatal("fallback recovery differs from the original state")
	}
	auditClean(t, d3.s, d3.mgr.Store(), d3.info.Touched)
}

func TestSnapshotRotationGC(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{SnapshotEvery: 2})
	for i := 0; i < 7; i++ {
		apply(t, d.app, insertBatch(i))
	}
	want := d.mgr.Store().Dump()
	st := d.mgr.Stats()
	if st.Snapshots < 3 {
		t.Fatalf("snapshots = %d, want >= 3 with SnapshotEvery=2", st.Snapshots)
	}
	if err := d.mgr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snaps, _ := filepath.Glob(filepath.Join(dir, "snap-*.snap"))
	segs, _ := filepath.Glob(filepath.Join(dir, "wal-*.log"))
	if len(snaps) != 1 {
		t.Fatalf("snapshots on disk = %d, want 1 (older ones GC'd)", len(snaps))
	}
	if len(segs) != 1 {
		t.Fatalf("segments on disk = %d, want 1 (older ones GC'd)", len(segs))
	}

	d2 := openDurable(t, dir, wal.Options{})
	defer d2.mgr.Close()
	if d2.info.ReplayedBatches > 2 {
		t.Fatalf("replayed %d batches, want <= 2 (snapshot bounds the suffix)", d2.info.ReplayedBatches)
	}
	if got := d2.mgr.Store().Dump(); got != want {
		t.Fatal("recovered store differs after rotation")
	}
}

// TestGroupCommitWindow exercises SyncEvery > 0: acknowledged batches live
// in the commit buffer until a sync point, so a kill before the window
// flushes loses them atomically (pre-batch state), while Sync makes them
// durable.
func TestGroupCommitWindow(t *testing.T) {
	dir := t.TempDir()
	d := openDurable(t, dir, wal.Options{SyncEvery: time.Hour, SnapshotEvery: -1})
	pre := d.mgr.Store().Dump()
	apply(t, d.app, insertBatch(0))
	// Kill before the syncer ever runs: the record is still buffered.
	d2 := openDurable(t, dir, wal.Options{})
	if d2.info.ReplayedBatches != 0 {
		t.Fatalf("replayed %d batches, want 0 (unsynced window lost)", d2.info.ReplayedBatches)
	}
	if got := d2.mgr.Store().Dump(); got != pre {
		t.Fatal("recovered store is not the pre-window state")
	}
	d2.mgr.Close()

	// Same again, but Sync before the kill: the batch survives.
	dir2 := t.TempDir()
	d3 := openDurable(t, dir2, wal.Options{SyncEvery: time.Hour, SnapshotEvery: -1})
	apply(t, d3.app, insertBatch(0))
	want := d3.mgr.Store().Dump()
	if err := d3.mgr.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	d4 := openDurable(t, dir2, wal.Options{})
	defer d4.mgr.Close()
	if d4.info.ReplayedBatches != 1 {
		t.Fatalf("replayed %d batches, want 1 after Sync", d4.info.ReplayedBatches)
	}
	if got := d4.mgr.Store().Dump(); got != want {
		t.Fatal("recovered store differs after synced window")
	}
}

// TestCloseStopsFastSyncer pins a shutdown liveness bug: with a short
// group-commit window the syncer goroutine re-enters its select between
// ticks, and Close (which nils the stop-channel field before waiting) must
// still be able to stop it — a syncer selecting on the nil field would
// block Close forever.
func TestCloseStopsFastSyncer(t *testing.T) {
	d := openDurable(t, t.TempDir(), wal.Options{SyncEvery: time.Millisecond, SnapshotEvery: -1})
	apply(t, d.app, insertBatch(0))
	time.Sleep(10 * time.Millisecond) // let the syncer tick a few times
	done := make(chan error, 1)
	go func() { done <- d.mgr.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung: syncer goroutine not stopped")
	}
}
