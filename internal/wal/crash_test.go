package wal_test

import (
	"context"
	"errors"
	"testing"

	"xmlsql/internal/wal"
)

// armedCrash fires its crash point exactly once after being armed, so the
// bootstrap and warm-up batches pass the same point unharmed and the kill
// lands precisely on the batch under test.
type armedCrash struct {
	point wal.CrashPoint
	armed bool
	fired bool
}

func (a *armedCrash) hook(p wal.CrashPoint) bool {
	if a.armed && p == a.point && !a.fired {
		a.fired = true
		return true
	}
	return false
}

// TestCrashPointDifferential is the seeded fault-injection harness of the
// acceptance criterion: for every injectable kill point in the durability
// path, a batch is driven into the crash, the directory is re-opened, and
// the recovered store must be byte-identical to either the pre-batch or the
// post-batch reference dump — never a torn state — with a clean incremental
// audit over whatever replay touched. Which of the two states is reached is
// also pinned per point: a record that never became durable must roll back,
// a durable record must replay, and the acknowledgement protocol agrees
// (an acknowledged batch is always in the post set).
func TestCrashPointDifferential(t *testing.T) {
	cases := []struct {
		point wal.CrashPoint
		// snapshotEvery drives the crash into the auto-checkpoint path
		// (the batch's record is already durable when the snapshot work
		// begins) instead of the record-append path.
		snapshotEvery int
		wantPost      bool
		wantTruncated bool // on the post-crash recovery
	}{
		// The record never reached the file: the batch must vanish.
		{point: wal.CrashLostUnsynced, snapshotEvery: -1, wantPost: false},
		// A torn, even fsynced, prefix of the record reached the file: it
		// must be truncated away and the batch must vanish.
		{point: wal.CrashMidRecord, snapshotEvery: -1, wantPost: false, wantTruncated: true},
		// The full record reached the file but its fsync never ran. The
		// in-process emulation keeps the bytes (the page cache may too),
		// so replay applies the batch — unacknowledged but intact.
		{point: wal.CrashBeforeFsync, snapshotEvery: -1, wantPost: true},
		// Snapshot-path kills: the triggering batch's record is durable
		// before snapshot work starts, so recovery is always post-batch;
		// the snapshot debris (torn temp, unrenamed temp, un-GC'd
		// segments) must be handled, not served.
		{point: wal.CrashMidSnapshotWrite, snapshotEvery: 3, wantPost: true},
		{point: wal.CrashMidSnapshotRename, snapshotEvery: 3, wantPost: true},
		{point: wal.CrashAfterSnapshotRename, snapshotEvery: 3, wantPost: true},
	}
	for _, tc := range cases {
		t.Run(tc.point.String(), func(t *testing.T) {
			dir := t.TempDir()
			arm := &armedCrash{point: tc.point}
			d := openDurable(t, dir, wal.Options{SnapshotEvery: tc.snapshotEvery, Crash: arm.hook})

			// Two committed warm-up batches, so the crash lands mid-log,
			// not at the base snapshot. With snapshotEvery=3 the third
			// batch triggers the checkpoint the snapshot points kill.
			apply(t, d.app, insertBatch(0))
			apply(t, d.app, insertBatch(1))
			preDump := d.mgr.Store().Dump()

			// The reference dumps come from a volatile twin instance fed
			// the same deterministic batches.
			refApp, refStore := volatileReference(t)
			apply(t, refApp, insertBatch(0))
			apply(t, refApp, insertBatch(1))
			if refStore.Dump() != preDump {
				t.Fatal("volatile twin diverged before the crash batch")
			}
			apply(t, refApp, insertBatch(2))
			postDump := refStore.Dump()

			// Drive the crash batch. Every kill point surfaces as a batch
			// error (the process "dies"; the caller never sees an ack).
			arm.armed = true
			_, err := d.app.Apply(context.Background(), insertBatch(2))
			if !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("crash batch error = %v, want ErrCrashed", err)
			}
			if !arm.fired {
				t.Fatalf("crash point %v never reached", tc.point)
			}
			// The dead manager refuses further work.
			if err := d.mgr.Checkpoint(); !errors.Is(err, wal.ErrCrashed) {
				t.Fatalf("post-crash Checkpoint error = %v, want ErrCrashed", err)
			}

			// Recover and compare against the references.
			d2 := openDurable(t, dir, wal.Options{})
			defer d2.mgr.Close()
			got := d2.mgr.Store().Dump()
			want, name := preDump, "pre-batch"
			if tc.wantPost {
				want, name = postDump, "post-batch"
			}
			if got != want {
				other := "post-batch"
				if got == postDump {
					other = "reached post-batch instead"
				} else if got == preDump {
					other = "reached pre-batch instead"
				} else {
					other = "reached a TORN state"
				}
				t.Fatalf("recovery after %v: want %s state; %s", tc.point, name, other)
			}
			if d2.info.TruncatedTail != tc.wantTruncated {
				t.Fatalf("TruncatedTail = %v, want %v", d2.info.TruncatedTail, tc.wantTruncated)
			}
			if !d2.info.TouchedComplete {
				t.Fatal("replay footprint incomplete")
			}
			// The replayed neighborhoods still embed a well-formed
			// document: this is the verified-replay acceptance audit.
			auditClean(t, d2.s, d2.mgr.Store(), d2.info.Touched)

			// The recovered tenant serves writes durably again, proving the
			// debris (torn tails, temp files, stale segments) was cleaned,
			// not just tolerated.
			apply(t, d2.app, insertBatch(3))
			want3 := d2.mgr.Store().Dump()
			d3 := openDurable(t, dir, wal.Options{})
			defer d3.mgr.Close()
			if d3.mgr.Store().Dump() != want3 {
				t.Fatal("post-recovery commit did not survive a second recovery")
			}
		})
	}
}
