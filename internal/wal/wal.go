// Package wal gives a tenant's in-memory store durability: a checksummed,
// length-prefixed write-ahead log of committed DML batches plus periodic
// full-store snapshots, with crash recovery that replays the snapshot's
// suffix and truncates a torn tail at the first bad checksum.
//
// What makes this WAL different from a generic one is the acceptance test
// recovery gets for free from the paper's lossless-from-XML constraint:
// after replay, the P1–P3 neighborhoods of every replayed tuple can be
// audited (integrity.AuditIncremental over the footprint the records
// themselves carry), so a recovered tenant is only marked Verified when the
// replayed instance still embeds a well-formed document — a dirty replay
// demotes to safe mode instead of serving wrong answers.
//
// Layout of a data directory:
//
//	wal-<firstseq>.log   log segments; records are (len | crc32c | payload),
//	                     payload = seq | kind | body, seqs strictly increasing
//	snap-<lsn>.snap      full-store snapshots; the name is the last sequence
//	                     number the snapshot covers
//
// Writes are staged in a commit buffer and only reach the file at sync
// points, so the crash-injection hooks can model every distinct durability
// state a real kill produces: record never written, record torn mid-write,
// record written but not fsynced, snapshot torn, snapshot complete but not
// renamed.
package wal

import (
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"

	"xmlsql/internal/relational"
	"xmlsql/internal/sqlast"
)

// Sentinel errors.
var (
	// ErrCrashed is returned by every operation after an injected crash
	// point fired: the manager behaves as a dead process and refuses all
	// further work until the directory is re-opened (recovered).
	ErrCrashed = errors.New("wal: crashed by fault injection")
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("wal: log closed")
	// ErrNoSnapshot is returned by Commit before Bootstrap/Checkpoint has
	// established the base snapshot replay starts from.
	ErrNoSnapshot = errors.New("wal: no base snapshot; run Checkpoint after the initial load")
)

// Record kinds.
const (
	// KindDML marks a committed DML batch record.
	KindDML byte = 1
)

const (
	recordHeaderLen      = 8       // u32 length + u32 crc32c
	maxRecordLen         = 1 << 28 // sanity bound when scanning a segment
	defaultSnapshotEvery = 256
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// CrashPoint identifies an injectable kill site inside the durability path.
// The fault harness's Options.Crash hook returns true to "kill the process"
// there: the manager performs exactly the partial work a real crash at that
// point leaves behind, then poisons itself (every later call returns
// ErrCrashed) so the test can re-open the directory and check what recovery
// makes of the debris.
type CrashPoint int

const (
	// CrashLostUnsynced dies with the commit record still in the process's
	// buffer: nothing of it reaches the file. Recovery must yield the
	// pre-batch state.
	CrashLostUnsynced CrashPoint = iota + 1
	// CrashMidRecord dies partway through the record's write: a torn
	// prefix reaches the file (and is made durable, the worst case).
	// Recovery must truncate the tail and yield the pre-batch state.
	CrashMidRecord
	// CrashBeforeFsync dies after the record's write but before its fsync.
	// The bytes may or may not survive; the in-process emulation keeps
	// them, so recovery yields the post-batch state — acceptable, because
	// the commit was never acknowledged.
	CrashBeforeFsync
	// CrashMidSnapshotWrite dies partway through writing the snapshot temp
	// file. The half-written temp must be ignored by recovery.
	CrashMidSnapshotWrite
	// CrashMidSnapshotRename dies after the temp file is complete and
	// synced but before the atomic rename: no snapshot exists yet, the log
	// still covers everything.
	CrashMidSnapshotRename
	// CrashAfterSnapshotRename dies after the rename but before old
	// segments are rotated away: the new snapshot and stale segments
	// coexist, and replay must skip records the snapshot already covers.
	CrashAfterSnapshotRename
)

func (p CrashPoint) String() string {
	switch p {
	case CrashLostUnsynced:
		return "lost-unsynced"
	case CrashMidRecord:
		return "mid-record"
	case CrashBeforeFsync:
		return "before-fsync"
	case CrashMidSnapshotWrite:
		return "mid-snapshot-write"
	case CrashMidSnapshotRename:
		return "mid-snapshot-rename"
	case CrashAfterSnapshotRename:
		return "after-snapshot-rename"
	default:
		return fmt.Sprintf("CrashPoint(%d)", int(p))
	}
}

// Options tunes a log manager.
type Options struct {
	// SyncEvery selects the group-commit policy. Zero (the default) fsyncs
	// every commit before acknowledging it — full durability. A positive
	// duration acknowledges commits as soon as they are staged and lets a
	// background syncer flush at that cadence: a crash may lose up to one
	// window of acknowledged batches (each lost batch disappears atomically
	// — the log can tear only at a record boundary or be truncated there).
	SyncEvery time.Duration
	// SnapshotEvery is the number of committed records between automatic
	// full-store snapshots. Zero means the default (256); negative disables
	// automatic snapshots (Checkpoint still works).
	SnapshotEvery int
	// Crash is the fault-injection hook; nil in production. It is called
	// at each crash point in the durability path and returns true to kill
	// the manager there.
	Crash func(CrashPoint) bool
}

func (o Options) snapshotEvery() int {
	if o.SnapshotEvery == 0 {
		return defaultSnapshotEvery
	}
	if o.SnapshotEvery < 0 {
		return 0
	}
	return o.SnapshotEvery
}

// Stats is a point-in-time summary of the log's activity since Open.
type Stats struct {
	// Records is the number of batch records committed since Open.
	Records int64
	// Bytes is the framed size of those records.
	Bytes int64
	// Snapshots is the number of snapshots taken since Open.
	Snapshots int64
	// LastSeq is the sequence number of the newest committed record (or the
	// recovered position if nothing committed since).
	LastSeq uint64
	// SnapshotLSN is the sequence number the newest snapshot covers.
	SnapshotLSN uint64
}

// Manager owns one data directory: it appends committed batches to the tail
// segment, takes periodic snapshots, and was produced by Open, which
// recovered the store it serves. All methods are safe for concurrent use;
// appends are serialized internally (callers — Mem.ApplyDML — are
// serialized anyway, so record order always matches apply order).
type Manager struct {
	dir  string
	opts Options

	mu        sync.Mutex
	store     *relational.Store
	f         *os.File // tail segment
	pending   []byte   // staged records not yet written to f
	dirty     bool     // bytes written to f but not yet fsynced
	nextSeq   uint64
	hasSnap   bool
	snapLSN   uint64
	sinceSnap int
	failed    error
	closed    bool

	records   int64
	bytes     int64
	snapshots int64

	stop   chan struct{}
	wg     sync.WaitGroup
	tmpSeq uint64 // distinguishes snapshot temp files within one process
}

// Dir returns the data directory the manager owns.
func (m *Manager) Dir() string { return m.dir }

// Store returns the recovered store the log is bound to. Mutations must go
// through a backend whose commit path calls Commit — writing to the store
// directly bypasses durability.
func (m *Manager) Store() *relational.Store { return m.store }

// Stats returns activity counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Records:     m.records,
		Bytes:       m.bytes,
		Snapshots:   m.snapshots,
		LastSeq:     m.nextSeq - 1,
		SnapshotLSN: m.snapLSN,
	}
}

func (m *Manager) usableLocked() error {
	if m.failed != nil {
		return m.failed
	}
	if m.closed {
		return ErrClosed
	}
	return nil
}

func (m *Manager) crash(p CrashPoint) bool {
	return m.opts.Crash != nil && m.opts.Crash(p)
}

// poison emulates process death: the file handle is dropped and every later
// operation fails with ErrCrashed until the directory is re-opened.
func (m *Manager) poisonLocked() error {
	m.failed = ErrCrashed
	if m.f != nil {
		m.f.Close()
	}
	return ErrCrashed
}

func (m *Manager) failLocked(err error) error {
	if m.failed == nil {
		m.failed = err
	}
	return err
}

// flushLocked moves staged records from the commit buffer into the file.
func (m *Manager) flushLocked() error {
	if len(m.pending) == 0 {
		return nil
	}
	if _, err := m.f.Write(m.pending); err != nil {
		return m.failLocked(fmt.Errorf("wal: append: %w", err))
	}
	m.pending = nil
	m.dirty = true
	return nil
}

// syncLocked makes everything staged or written so far durable.
func (m *Manager) syncLocked() error {
	if err := m.flushLocked(); err != nil {
		return err
	}
	if !m.dirty {
		return nil
	}
	if err := m.f.Sync(); err != nil {
		return m.failLocked(fmt.Errorf("wal: fsync: %w", err))
	}
	m.dirty = false
	return nil
}

// frameRecord wraps a payload body into the on-disk record form.
func frameRecord(seq uint64, kind byte, body []byte) []byte {
	payload := make([]byte, 0, 9+len(body))
	payload = appendU64(payload, seq)
	payload = append(payload, kind)
	payload = append(payload, body...)
	rec := make([]byte, 0, recordHeaderLen+len(payload))
	rec = appendU32(rec, uint32(len(payload)))
	rec = appendU32(rec, crc32.Checksum(payload, crcTable))
	return append(rec, payload...)
}

func appendU32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}

func appendU64(b []byte, v uint64) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24),
		byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
}

func readU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func readU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

// Commit logs one applied DML batch and, under the default sync policy,
// returns only once the record is fsynced — the caller acknowledges the
// batch to its client only after this returns nil. On error the caller must
// roll the batch back: the record is either absent or torn (recovery
// truncates it), so failing the batch keeps log and store agreeing.
//
// Commit also triggers an automatic snapshot every Options.SnapshotEvery
// records; it runs under the same lock, so the snapshot always captures a
// batch boundary.
func (m *Manager) Commit(stmts []sqlast.DMLStmt) error {
	body, err := EncodeBatch(stmts)
	if err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.usableLocked(); err != nil {
		return err
	}
	if !m.hasSnap {
		return ErrNoSnapshot
	}
	rec := frameRecord(m.nextSeq, KindDML, body)
	if m.crash(CrashLostUnsynced) {
		return m.poisonLocked()
	}
	if m.crash(CrashMidRecord) {
		// The torn prefix reaches the file and is even made durable —
		// the worst debris a mid-write kill can leave.
		if m.flushLocked() == nil {
			m.f.Write(rec[:recordHeaderLen+len(rec)/3])
			m.f.Sync()
		}
		return m.poisonLocked()
	}
	m.pending = append(m.pending, rec...)
	if m.opts.SyncEvery <= 0 {
		if err := m.flushLocked(); err != nil {
			return err
		}
		if m.crash(CrashBeforeFsync) {
			return m.poisonLocked()
		}
		if err := m.syncLocked(); err != nil {
			return err
		}
	}
	m.nextSeq++
	m.records++
	m.bytes += int64(len(rec))
	m.sinceSnap++
	if se := m.opts.snapshotEvery(); se > 0 && m.sinceSnap >= se {
		// The batch itself is already durable; a snapshot failure here
		// surfaces to the caller (the store and log no longer advance),
		// it does not undo the commit.
		return m.checkpointLocked()
	}
	return nil
}

// Sync forces everything acknowledged so far to disk. Only meaningful under
// a group-commit window (SyncEvery > 0); a no-op otherwise.
func (m *Manager) Sync() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.usableLocked(); err != nil {
		return err
	}
	return m.syncLocked()
}

// Checkpoint takes a full-store snapshot now and rotates the log: after it
// returns, recovery starts from this snapshot and the old segments are gone.
// The first Checkpoint after loading a fresh store establishes the base
// snapshot Commit requires.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.usableLocked(); err != nil {
		return err
	}
	return m.checkpointLocked()
}

func (m *Manager) checkpointLocked() error {
	// Records staged under a group-commit window must be durable before the
	// snapshot that covers them claims their LSN.
	if err := m.syncLocked(); err != nil {
		return err
	}
	lsn := m.nextSeq - 1
	payload := encodeSnapshot(m.store, lsn)
	data := frameSnapshot(payload)
	final := filepath.Join(m.dir, snapshotName(lsn))
	m.tmpSeq++
	tmp := fmt.Sprintf("%s.%d.tmp", final, m.tmpSeq)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return m.failLocked(fmt.Errorf("wal: snapshot: %w", err))
	}
	if m.crash(CrashMidSnapshotWrite) {
		f.Write(data[:len(data)/2])
		f.Sync()
		f.Close()
		return m.poisonLocked()
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return m.failLocked(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return m.failLocked(fmt.Errorf("wal: snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		return m.failLocked(fmt.Errorf("wal: snapshot: %w", err))
	}
	if m.crash(CrashMidSnapshotRename) {
		return m.poisonLocked()
	}
	if err := os.Rename(tmp, final); err != nil {
		return m.failLocked(fmt.Errorf("wal: snapshot: %w", err))
	}
	syncDir(m.dir)
	m.hasSnap = true
	m.snapLSN = lsn
	m.sinceSnap = 0
	m.snapshots++
	if m.crash(CrashAfterSnapshotRename) {
		return m.poisonLocked()
	}
	return m.rotateLocked()
}

// rotateLocked opens a fresh tail segment at the current position and
// removes everything the newest snapshot supersedes: older segments (all
// their records have seq <= snapLSN) and older snapshots.
func (m *Manager) rotateLocked() error {
	newPath := filepath.Join(m.dir, segmentName(m.nextSeq))
	f, err := os.OpenFile(newPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return m.failLocked(fmt.Errorf("wal: rotate: %w", err))
	}
	if m.f != nil {
		m.f.Close()
	}
	m.f = f
	m.dirty = false
	syncDir(m.dir)
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil // GC is best-effort; stale files are skipped by replay
	}
	for _, e := range entries {
		name := e.Name()
		if name == filepath.Base(newPath) {
			continue
		}
		if first, ok := parseSegmentName(name); ok && first <= m.snapLSN {
			os.Remove(filepath.Join(m.dir, name))
		}
		if lsn, ok := parseSnapshotName(name); ok && lsn < m.snapLSN {
			os.Remove(filepath.Join(m.dir, name))
		}
	}
	return nil
}

// Close flushes and fsyncs the tail, stops the background syncer, and
// releases the directory. It is idempotent.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	stop := m.stop
	m.stop = nil
	m.mu.Unlock()
	if stop != nil {
		close(stop)
		m.wg.Wait()
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.failed != nil {
		return nil // a crashed manager has nothing left to flush
	}
	err := m.syncLocked()
	if m.f != nil {
		if cerr := m.f.Close(); err == nil && cerr != nil {
			err = cerr
		}
		m.f = nil
	}
	return err
}

func (m *Manager) startSyncer() {
	if m.opts.SyncEvery <= 0 {
		return
	}
	m.stop = make(chan struct{})
	m.wg.Add(1)
	// The goroutine must hold its own reference: Close nils the field
	// before waiting, and a select over a nil channel blocks forever.
	stop := m.stop
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.opts.SyncEvery)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				m.mu.Lock()
				if m.failed == nil && !m.closed {
					m.syncLocked()
				}
				m.mu.Unlock()
			}
		}
	}()
}

func segmentName(firstSeq uint64) string { return fmt.Sprintf("wal-%016x.log", firstSeq) }
func snapshotName(lsn uint64) string     { return fmt.Sprintf("snap-%016x.snap", lsn) }

func parseSegmentName(name string) (uint64, bool) {
	var v uint64
	if n, err := fmt.Sscanf(name, "wal-%016x.log", &v); n == 1 && err == nil && name == segmentName(v) {
		return v, true
	}
	return 0, false
}

func parseSnapshotName(name string) (uint64, bool) {
	var v uint64
	if n, err := fmt.Sscanf(name, "snap-%016x.snap", &v); n == 1 && err == nil && name == snapshotName(v) {
		return v, true
	}
	return 0, false
}

// syncDir fsyncs a directory so renames and creates within it are durable.
// Best-effort: some platforms/filesystems reject directory fsync.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}
