package wal

import (
	"encoding/binary"
	"fmt"

	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// The log's unit of durability is one committed DML batch, encoded as the
// planned statements themselves (redo logging at the statement level): the
// statements are deterministic — literal values only, no bind parameters,
// no nondeterministic functions — so re-interpreting them through
// backend.ApplyStmt reproduces the exact post-batch store. Encoding the
// statements rather than row images keeps records small (an insert of a
// subtree is a handful of literals, not every derived column) and lets
// recovery derive the integrity footprint for the verified-replay audit
// straight from the record.

// Statement tags.
const (
	stmtInsert byte = 1
	stmtDelete byte = 2
	stmtUpdate byte = 3
)

// Expression tags.
const (
	exprNil byte = iota
	exprColRef
	exprLit
	exprCmp
	exprIn
	exprIsNull
	exprAnd
	exprOr
)

// Value tags.
const (
	valNull byte = iota
	valInt
	valString
)

type encoder struct {
	b []byte
}

func (e *encoder) byte(v byte) { e.b = append(e.b, v) }

func (e *encoder) uvarint(v uint64) {
	e.b = binary.AppendUvarint(e.b, v)
}

func (e *encoder) varint(v int64) {
	e.b = binary.AppendVarint(e.b, v)
}

func (e *encoder) str(s string) {
	e.uvarint(uint64(len(s)))
	e.b = append(e.b, s...)
}

func (e *encoder) value(v relational.Value) {
	switch v.Kind() {
	case relational.KindInt:
		e.byte(valInt)
		e.varint(v.AsInt())
	case relational.KindString:
		e.byte(valString)
		e.str(v.AsString())
	default:
		e.byte(valNull)
	}
}

func (e *encoder) expr(x sqlast.Expr) error {
	switch v := x.(type) {
	case nil:
		e.byte(exprNil)
	case sqlast.ColRef:
		e.byte(exprColRef)
		e.str(v.Table)
		e.str(v.Column)
	case sqlast.Lit:
		e.byte(exprLit)
		e.value(v.Value)
	case sqlast.Cmp:
		e.byte(exprCmp)
		e.byte(byte(v.Op))
		if err := e.expr(v.Left); err != nil {
			return err
		}
		return e.expr(v.Right)
	case sqlast.In:
		e.byte(exprIn)
		if err := e.expr(v.Left); err != nil {
			return err
		}
		e.uvarint(uint64(len(v.List)))
		for _, l := range v.List {
			e.value(l.Value)
		}
	case sqlast.IsNull:
		e.byte(exprIsNull)
		return e.expr(v.Left)
	case sqlast.And:
		e.byte(exprAnd)
		e.uvarint(uint64(len(v.Kids)))
		for _, k := range v.Kids {
			if err := e.expr(k); err != nil {
				return err
			}
		}
	case sqlast.Or:
		e.byte(exprOr)
		e.uvarint(uint64(len(v.Kids)))
		for _, k := range v.Kids {
			if err := e.expr(k); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("wal: unsupported DML expression %T", x)
	}
	return nil
}

// EncodeBatch serializes a DML batch into a log record body.
func EncodeBatch(stmts []sqlast.DMLStmt) ([]byte, error) {
	var e encoder
	e.uvarint(uint64(len(stmts)))
	for _, s := range stmts {
		switch v := s.(type) {
		case *sqlast.InsertStmt:
			e.byte(stmtInsert)
			e.str(v.Table)
			e.uvarint(uint64(len(v.Columns)))
			for _, c := range v.Columns {
				e.str(c)
			}
			e.uvarint(uint64(len(v.Rows)))
			for _, row := range v.Rows {
				if len(row) != len(v.Columns) {
					return nil, fmt.Errorf("wal: insert into %s: %d values for %d columns", v.Table, len(row), len(v.Columns))
				}
				for _, l := range row {
					e.value(l.Value)
				}
			}
		case *sqlast.DeleteStmt:
			e.byte(stmtDelete)
			e.str(v.Table)
			if err := e.expr(v.Where); err != nil {
				return nil, err
			}
		case *sqlast.UpdateStmt:
			e.byte(stmtUpdate)
			e.str(v.Table)
			e.uvarint(uint64(len(v.Set)))
			for _, a := range v.Set {
				e.str(a.Column)
				e.value(a.Value.Value)
			}
			if err := e.expr(v.Where); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("wal: unsupported DML statement %T", s)
		}
	}
	return e.b, nil
}

type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("wal: decode: "+format, args...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

// count reads a length prefix and bounds it by the bytes remaining, so a
// corrupt record cannot request a giant allocation.
func (d *decoder) count() int {
	v := d.uvarint()
	if d.err == nil && v > uint64(len(d.buf)-d.off) {
		d.fail("length %d exceeds %d remaining bytes", v, len(d.buf)-d.off)
		return 0
	}
	return int(v)
}

func (d *decoder) str() string {
	n := d.count()
	if d.err != nil {
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

func (d *decoder) value() relational.Value {
	switch t := d.byte(); t {
	case valNull:
		return relational.Null
	case valInt:
		return relational.Int(d.varint())
	case valString:
		return relational.String(d.str())
	default:
		d.fail("unknown value tag %d", t)
		return relational.Null
	}
}

func (d *decoder) expr(depth int) sqlast.Expr {
	if depth > 64 {
		d.fail("expression nesting too deep")
		return nil
	}
	switch t := d.byte(); t {
	case exprNil:
		return nil
	case exprColRef:
		return sqlast.ColRef{Table: d.str(), Column: d.str()}
	case exprLit:
		return sqlast.Lit{Value: d.value()}
	case exprCmp:
		op := sqlast.CmpOp(d.byte())
		return sqlast.Cmp{Op: op, Left: d.expr(depth + 1), Right: d.expr(depth + 1)}
	case exprIn:
		in := sqlast.In{Left: d.expr(depth + 1)}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			in.List = append(in.List, sqlast.Lit{Value: d.value()})
		}
		return in
	case exprIsNull:
		return sqlast.IsNull{Left: d.expr(depth + 1)}
	case exprAnd:
		a := sqlast.And{}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			a.Kids = append(a.Kids, d.expr(depth+1))
		}
		return a
	case exprOr:
		o := sqlast.Or{}
		n := d.count()
		for i := 0; i < n && d.err == nil; i++ {
			o.Kids = append(o.Kids, d.expr(depth+1))
		}
		return o
	default:
		d.fail("unknown expression tag %d", t)
		return nil
	}
}

// DecodeBatch parses a log record body back into the DML batch it encodes.
func DecodeBatch(buf []byte) ([]sqlast.DMLStmt, error) {
	d := &decoder{buf: buf}
	n := d.count()
	stmts := make([]sqlast.DMLStmt, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		switch t := d.byte(); t {
		case stmtInsert:
			s := &sqlast.InsertStmt{Table: d.str()}
			nc := d.count()
			for j := 0; j < nc && d.err == nil; j++ {
				s.Columns = append(s.Columns, d.str())
			}
			nr := d.count()
			for j := 0; j < nr && d.err == nil; j++ {
				row := make([]sqlast.Lit, 0, nc)
				for k := 0; k < nc && d.err == nil; k++ {
					row = append(row, sqlast.Lit{Value: d.value()})
				}
				s.Rows = append(s.Rows, row)
			}
			stmts = append(stmts, s)
		case stmtDelete:
			stmts = append(stmts, &sqlast.DeleteStmt{Table: d.str(), Where: d.expr(0)})
		case stmtUpdate:
			s := &sqlast.UpdateStmt{Table: d.str()}
			ns := d.count()
			for j := 0; j < ns && d.err == nil; j++ {
				s.Set = append(s.Set, sqlast.Assign{Column: d.str(), Value: sqlast.Lit{Value: d.value()}})
			}
			s.Where = d.expr(0)
			stmts = append(stmts, s)
		default:
			d.fail("unknown statement tag %d", t)
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("wal: decode: %d trailing bytes", len(d.buf)-d.off)
	}
	return stmts, nil
}

// TouchedFromStmts derives a batch's integrity footprint from the statements
// alone, so recovery can audit exactly the replayed neighborhoods without
// having recorded row-level effects. The result may be a superset of the
// rows actually affected (a delete scoped to an id that matched nothing
// still reports that id) — auditing extra neighborhoods is sound, it only
// widens the checked region. The second result is false when some
// statement's footprint cannot be extracted (an id-less insert, a predicate
// not anchored on the id column); callers must then fall back to a full
// audit instead of trusting a partial footprint.
func TouchedFromStmts(stmts []sqlast.DMLStmt) (integrity.Touched, bool) {
	var t integrity.Touched
	complete := true
	seenW := map[integrity.TupleRef]bool{}
	seenD := map[integrity.TupleRef]bool{}
	addW := func(rel string, id int64) {
		ref := integrity.TupleRef{Rel: rel, ID: id}
		if !seenW[ref] {
			seenW[ref] = true
			t.Written = append(t.Written, ref)
		}
	}
	addD := func(rel string, id int64) {
		ref := integrity.TupleRef{Rel: rel, ID: id}
		if !seenD[ref] {
			seenD[ref] = true
			t.Deleted = append(t.Deleted, ref)
		}
	}
	for _, s := range stmts {
		switch v := s.(type) {
		case *sqlast.InsertStmt:
			ci := -1
			for i, c := range v.Columns {
				if c == schema.IDColumn {
					ci = i
					break
				}
			}
			if ci < 0 {
				complete = false
				continue
			}
			for _, row := range v.Rows {
				if ci < len(row) && row[ci].Value.Kind() == relational.KindInt {
					addW(v.Table, row[ci].Value.AsInt())
				} else {
					complete = false
				}
			}
		case *sqlast.DeleteStmt:
			ids, ok := idsFromWhere(v.Where)
			if !ok {
				complete = false
			}
			for _, id := range ids {
				addD(v.Table, id)
			}
		case *sqlast.UpdateStmt:
			ids, ok := idsFromWhere(v.Where)
			if !ok {
				complete = false
			}
			for _, id := range ids {
				addW(v.Table, id)
			}
		default:
			complete = false
		}
	}
	return t, complete
}

// idsFromWhere extracts the id values a DML predicate can possibly match.
// Supported forms are the ones DML planning emits: id = N, id IN (...), OR
// over such forms, and AND where one conjunct is such a form (the other
// conjuncts only narrow the match, so the extracted set is a superset of
// the affected rows — which is the safe direction for auditing).
func idsFromWhere(e sqlast.Expr) ([]int64, bool) {
	isID := func(x sqlast.Expr) bool {
		c, ok := x.(sqlast.ColRef)
		return ok && c.Column == schema.IDColumn
	}
	switch v := e.(type) {
	case sqlast.Cmp:
		if v.Op != sqlast.OpEq || !isID(v.Left) {
			return nil, false
		}
		if lit, ok := v.Right.(sqlast.Lit); ok && lit.Value.Kind() == relational.KindInt {
			return []int64{lit.Value.AsInt()}, true
		}
		return nil, false
	case sqlast.In:
		if !isID(v.Left) {
			return nil, false
		}
		ids := make([]int64, 0, len(v.List))
		for _, l := range v.List {
			if l.Value.Kind() != relational.KindInt {
				return nil, false
			}
			ids = append(ids, l.Value.AsInt())
		}
		return ids, true
	case sqlast.Or:
		var ids []int64
		for _, k := range v.Kids {
			kids, ok := idsFromWhere(k)
			if !ok {
				return nil, false
			}
			ids = append(ids, kids...)
		}
		return ids, true
	case sqlast.And:
		for _, k := range v.Kids {
			if ids, ok := idsFromWhere(k); ok {
				return ids, true
			}
		}
		return nil, false
	}
	return nil, false
}
