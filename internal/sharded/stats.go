package sharded

import (
	"context"

	"xmlsql/internal/backend"
	"xmlsql/internal/schema"
	"xmlsql/internal/stats"
)

// shardStatsEntry caches one shard's statistics snapshot against the shard
// version it was collected at.
type shardStatsEntry struct {
	ver  uint64
	snap *stats.Stats
}

// shardVersion is the mutation clock of shard k: the store version for Mem
// shards, the composite's own applied-batch counter for backends (the DB)
// with no observable store version.
func (c *Sharded) shardVersion(k int) uint64 {
	if m, ok := c.shards[k].(storeBacked); ok {
		return m.Store().Version()
	}
	return c.dmlSeq[k].Load()
}

// CollectStats implements backend.StatsCollector: per-shard snapshots are
// cached against each shard's version and merged with stats.MergeShards, so
// only shards mutated since the last collection are rescanned. This is the
// scoped-invalidation payoff of document partitioning — after a write, the
// planner's statistics refresh costs one shard's scan (~1/N of the instance)
// instead of a full rescan, which is where the sharded composite beats a
// single store on mixed read/write serving even without core parallelism.
func (c *Sharded) CollectStats(ctx context.Context, s *schema.Schema) (*stats.Stats, error) {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	snaps := make([]*stats.Stats, len(c.shards))
	for k, sh := range c.shards {
		ver := c.shardVersion(k)
		if e := c.shardStats[k]; e != nil && e.ver == ver {
			snaps[k] = e.snap
			continue
		}
		var snap *stats.Stats
		if m, ok := sh.(storeBacked); ok {
			snap = stats.CollectStore(m.Store())
		} else {
			var err error
			snap, err = backend.CollectStats(ctx, sh, s)
			if err != nil {
				return nil, err
			}
			// The generic probe path reports version 0; substitute the
			// composite's batch counter so the merged version moves when
			// this shard does.
			snap.Version = ver
		}
		c.shardStats[k] = &shardStatsEntry{ver: ver, snap: snap}
		c.statsRescans.Add(1)
		snaps[k] = snap
	}
	return stats.MergeShards(snaps), nil
}

// StatsRescans reports how many single-shard statistics rescans CollectStats
// has performed over the composite's lifetime; tests and the benchmark use
// it to prove writes trigger scoped (one-shard) recollection, not full ones.
func (c *Sharded) StatsRescans() int64 { return c.statsRescans.Load() }
