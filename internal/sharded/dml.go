package sharded

import (
	"context"
	"fmt"
	"sort"

	"xmlsql/internal/backend"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/sqlast"
)

// ApplyDML implements backend.DML by routing each statement of the batch to
// the shard(s) owning the rows it touches.
//
// An update batch's footprint is a set of whole subtrees, and subtrees live
// inside one document, so a document-scoped batch (the common case — every
// path-targeted update of a single document) resolves to exactly one shard
// and applies with that shard's full atomicity. A batch whose path matched
// elements in several documents splits per shard and applies shard-by-shard
// in shard order: each shard's portion is atomic, and since the whole batch
// was integrity-validated against the staged global instance before any
// shard commits, a mid-sequence backend fault can leave earlier shards
// committed (the returned error says so) but never an invalid shard.
//
// Routing reads ids out of the statement shapes the update planner emits —
// id IN (...) deletes, id = k updates, full-column inserts — via the
// id→shard router. DELETE and UPDATE statements whose predicate does not pin
// ids broadcast to every shard, which is always correct because the shards
// partition the rows. INSERT rows must route (a row materializes on exactly
// one shard): each row goes where its parent lives; a row with a NULL
// parentid starts a new document and is placed by the partitioner. Ids
// minted by the batch are registered to their shard once it commits, so
// follow-up batches and integrity probes route to them.
func (c *Sharded) ApplyDML(ctx context.Context, stmts []sqlast.DMLStmt) error {
	c.mu.Lock()
	defer c.mu.Unlock()

	n := len(c.shards)
	perShard := make([][]sqlast.DMLStmt, n)
	freshByShard := make([][]int64, n)
	batchFresh := map[int64]int{} // ids inserted earlier in this batch

	for _, st := range stmts {
		switch s := st.(type) {
		case *sqlast.InsertStmt:
			idCol, parentCol := -1, -1
			for i, col := range s.Columns {
				switch col {
				case schema.IDColumn:
					idCol = i
				case schema.ParentIDColumn:
					parentCol = i
				}
			}
			if idCol < 0 {
				return fmt.Errorf("sharded: insert into %s carries no %s column; cannot route", s.Table, schema.IDColumn)
			}
			rowsByShard := map[int][][]sqlast.Lit{}
			var order []int
			for _, row := range s.Rows {
				if idCol >= len(row) || row[idCol].Value.Kind() != relational.KindInt {
					return fmt.Errorf("sharded: insert into %s: non-integer %s", s.Table, schema.IDColumn)
				}
				id := row[idCol].Value.AsInt()
				k := -1
				if parentCol >= 0 && parentCol < len(row) && row[parentCol].Value.Kind() == relational.KindInt {
					parent := row[parentCol].Value.AsInt()
					if kk, ok := batchFresh[parent]; ok {
						k = kk
					} else if kk := c.shardOf(parent); kk >= 0 {
						k = kk
					} else {
						return fmt.Errorf("sharded: insert into %s: parent id %d is on no shard", s.Table, parent)
					}
				} else {
					// NULL parentid: a new document root; the partitioner
					// places it like a loaded document.
					k = c.part(c.docCount, id) % n
					if k < 0 {
						k = -k
					}
					c.docCount++
					c.docs[k]++
				}
				if _, seen := rowsByShard[k]; !seen {
					order = append(order, k)
				}
				rowsByShard[k] = append(rowsByShard[k], row)
				batchFresh[id] = k
				freshByShard[k] = append(freshByShard[k], id)
			}
			for _, k := range order {
				perShard[k] = append(perShard[k], &sqlast.InsertStmt{
					Table: s.Table, Columns: s.Columns, Rows: rowsByShard[k],
				})
			}
		case *sqlast.DeleteStmt:
			for _, k := range c.routeWhere(s.Where, batchFresh) {
				perShard[k] = append(perShard[k], s)
			}
		case *sqlast.UpdateStmt:
			for _, k := range c.routeWhere(s.Where, batchFresh) {
				perShard[k] = append(perShard[k], s)
			}
		default:
			return fmt.Errorf("sharded: unsupported DML statement %T", st)
		}
	}

	applied := 0
	for k := 0; k < n; k++ {
		if len(perShard[k]) == 0 {
			continue
		}
		dml, ok := c.shards[k].(backend.DML)
		if !ok {
			return fmt.Errorf("sharded: shard %d (%s) does not support DML", k, c.shards[k].Name())
		}
		if err := dml.ApplyDML(ctx, perShard[k]); err != nil {
			if applied > 0 {
				return fmt.Errorf("sharded: shard %d: %w (cross-document batch: %d earlier shard(s) already committed)", k, err, applied)
			}
			return fmt.Errorf("sharded: shard %d: %w", k, err)
		}
		applied++
		c.dmlSeq[k].Add(1)
		c.registerIDs(freshByShard[k], k)
	}
	return nil
}

// routeWhere resolves a DELETE/UPDATE predicate to the shards that can hold
// matching rows. A nil predicate matches nothing (DeleteStmt semantics) and
// routes nowhere; a predicate that does not pin ids routes everywhere —
// sound because the shards partition the rows. Pinned ids unknown to the
// router match no stored row and contribute no shard.
func (c *Sharded) routeWhere(e sqlast.Expr, batchFresh map[int64]int) []int {
	if e == nil {
		return nil
	}
	ids, ok := pinnedIDs(e)
	if !ok {
		all := make([]int, len(c.shards))
		for i := range all {
			all[i] = i
		}
		return all
	}
	set := map[int]bool{}
	for _, id := range ids {
		if k, okk := batchFresh[id]; okk {
			set[k] = true
		} else if k := c.shardOf(id); k >= 0 {
			set[k] = true
		}
	}
	out := make([]int, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// pinnedIDs extracts the element ids a predicate confines its rows to, when
// it provably does: id/parentid equality, id/parentid IN lists, any AND with
// at least one pinning conjunct, an OR of all-pinning disjuncts. (A parentid
// pin routes correctly because children live on their parent's shard.)
func pinnedIDs(e sqlast.Expr) ([]int64, bool) {
	switch v := e.(type) {
	case sqlast.Cmp:
		if v.Op != sqlast.OpEq {
			return nil, false
		}
		if id, ok := keyEqLit(v.Left, v.Right); ok {
			return []int64{id}, true
		}
		if id, ok := keyEqLit(v.Right, v.Left); ok {
			return []int64{id}, true
		}
		return nil, false
	case sqlast.In:
		if !isKeyCol(v.Left) {
			return nil, false
		}
		ids := make([]int64, 0, len(v.List))
		for _, l := range v.List {
			if l.Value.Kind() != relational.KindInt {
				return nil, false
			}
			ids = append(ids, l.Value.AsInt())
		}
		return ids, true
	case sqlast.And:
		for _, k := range v.Kids {
			if ids, ok := pinnedIDs(k); ok {
				return ids, true
			}
		}
		return nil, false
	case sqlast.Or:
		var all []int64
		for _, k := range v.Kids {
			ids, ok := pinnedIDs(k)
			if !ok {
				return nil, false
			}
			all = append(all, ids...)
		}
		return all, true
	}
	return nil, false
}

func keyEqLit(col, lit sqlast.Expr) (int64, bool) {
	if !isKeyCol(col) {
		return 0, false
	}
	l, ok := lit.(sqlast.Lit)
	if !ok || l.Value.Kind() != relational.KindInt {
		return 0, false
	}
	return l.Value.AsInt(), true
}

func isKeyCol(e sqlast.Expr) bool {
	c, ok := e.(sqlast.ColRef)
	return ok && (c.Column == schema.IDColumn || c.Column == schema.ParentIDColumn)
}
