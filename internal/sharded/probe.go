package sharded

import (
	"context"
	"fmt"
	"sort"

	"xmlsql/internal/integrity"
	"xmlsql/internal/relational"
)

// IntegrityProbe returns an integrity.Probe that routes each keyed fetch to
// the shard owning the id: a touched tuple, its ancestor chain, and its
// children all live in one document, hence on one shard, so the incremental
// audit's neighborhood load costs the same point lookups it would against a
// single store — no scatter. Ids the router does not know (dangling parent
// references under audit) are probed on every shard, which correctly finds
// nothing. The planner detects this capability and prefers it over a
// scatter-query source probe.
func (c *Sharded) IntegrityProbe() (integrity.Probe, error) {
	c.mu.Lock()
	s := c.schema
	c.mu.Unlock()
	if s == nil {
		return nil, fmt.Errorf("sharded: no schema installed; EnsureSchema or Load first")
	}
	probes := make([]integrity.Probe, len(c.shards))
	for i, sh := range c.shards {
		switch b := sh.(type) {
		case storeBacked:
			probes[i] = integrity.StoreProbe(b.Store())
		default:
			p, err := integrity.NewSourceProbe(sh, s)
			if err != nil {
				return nil, err
			}
			probes[i] = p
		}
	}
	return &routingProbe{c: c, probes: probes}, nil
}

type routingProbe struct {
	c      *Sharded
	probes []integrity.Probe
}

func (p *routingProbe) FetchByID(ctx context.Context, rel string, ids []int64) ([]relational.Row, error) {
	return p.fetch(ctx, rel, ids, func(q integrity.Probe, ids []int64) ([]relational.Row, error) {
		return q.FetchByID(ctx, rel, ids)
	})
}

func (p *routingProbe) FetchByParent(ctx context.Context, rel string, parents []int64) ([]relational.Row, error) {
	// Children live on their parent's shard, so parent ids route identically.
	return p.fetch(ctx, rel, parents, func(q integrity.Probe, ids []int64) ([]relational.Row, error) {
		return q.FetchByParent(ctx, rel, ids)
	})
}

func (p *routingProbe) fetch(ctx context.Context, rel string, ids []int64, one func(integrity.Probe, []int64) ([]relational.Row, error)) ([]relational.Row, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	byShard := map[int][]int64{}
	var unknown []int64
	for _, id := range ids {
		if k := p.c.shardOf(id); k >= 0 {
			byShard[k] = append(byShard[k], id)
		} else {
			unknown = append(unknown, id)
		}
	}
	shards := make([]int, 0, len(byShard))
	for k := range byShard {
		shards = append(shards, k)
	}
	sort.Ints(shards)
	var out []relational.Row
	for _, k := range shards {
		rows, err := one(p.probes[k], byShard[k])
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", k, err)
		}
		out = append(out, rows...)
	}
	if len(unknown) > 0 {
		for k, q := range p.probes {
			rows, err := one(q, unknown)
			if err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", k, err)
			}
			out = append(out, rows...)
		}
	}
	_ = ctx
	return out, nil
}
