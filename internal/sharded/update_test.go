package sharded_test

import (
	"context"
	"strings"
	"testing"

	"xmlsql"
	"xmlsql/internal/sharded"
	"xmlsql/internal/workloads"
)

// newDiffPlanners builds two planners over the same logical xmark instance:
// one on a single Mem store, one on an n-shard composite.
func newDiffPlanners(t *testing.T, n int) (*xmlsql.Planner, *xmlsql.Planner, *sharded.Sharded) {
	t.Helper()
	w := diffWorkloads()[0]

	single := xmlsql.NewMemBackend()
	if _, err := single.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	sp := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{Backend: single})

	c, err := sharded.NewMem(n, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	cp := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{Backend: c})
	return sp, cp, c
}

// TestShardedPostUpdateDifferential drives the same mutation batches through
// a single-store planner and a sharded planner and requires identical reads
// afterwards — including the ids minted for inserted subtrees, which pins
// the routed DML application and fresh-id registration end to end. The
// delete path matches one element in every document, so the batch splits
// across shards; the insert targets one document, so it routes to one.
func TestShardedPostUpdateDifferential(t *testing.T) {
	ctx := context.Background()
	queries := []string{workloads.QueryQ1, workloads.QueryQ2}
	batches := []xmlsql.UpdateBatch{
		// Cross-document delete: "//Item[name=...]" matches the same-named
		// item in each of the 6 documents.
		{Muts: []xmlsql.UpdateMutation{{Op: xmlsql.UpdateDelete, Path: "//Item[name='item-As-25']"}}},
		// Insert new subtrees under every matching item (again one per doc).
		{Muts: []xmlsql.UpdateMutation{{
			Op: xmlsql.UpdateInsert, Path: "//Item[name='item-Af-0']",
			XML: "<InCategory><Category>categoryX</Category></InCategory>",
		}}},
		// Replace: delete + insert under one parent.
		{Muts: []xmlsql.UpdateMutation{{
			Op: xmlsql.UpdateReplace, Path: "//Item[name='item-Eu-70']",
			XML: "<Item><name>item-Eu-70</name><InCategory><Category>categoryY</Category></InCategory></Item>",
		}}},
		// A mixed batch.
		{Muts: []xmlsql.UpdateMutation{
			{Op: xmlsql.UpdateDelete, Path: "//Item[name='item-No-85']"},
			{Op: xmlsql.UpdateInsert, Path: "//Item[name='item-Af-1']",
				XML: "<InCategory><Category>categoryZ</Category></InCategory>"},
		}},
	}

	for _, n := range []int{2, 4} {
		sp, cp, _ := newDiffPlanners(t, n)
		for bi, b := range batches {
			sres, serr := sp.Update(ctx, b)
			cres, cerr := cp.Update(ctx, b)
			if (serr == nil) != (cerr == nil) {
				t.Fatalf("n=%d batch %d: single err=%v, sharded err=%v", n, bi, serr, cerr)
			}
			if serr != nil {
				continue
			}
			if sres.Stmts != cres.Stmts {
				t.Errorf("n=%d batch %d: statement counts differ: %d vs %d", n, bi, sres.Stmts, cres.Stmts)
			}
			if !sres.Audit.Clean() || !cres.Audit.Clean() {
				t.Errorf("n=%d batch %d: post-apply audit not clean (single %v, sharded %v)",
					n, bi, sres.Audit.Clean(), cres.Audit.Clean())
			}
			for _, query := range queries {
				want, err := sp.Exec(ctx, query)
				if err != nil {
					t.Fatal(err)
				}
				got, err := cp.Exec(ctx, query)
				if err != nil {
					t.Fatal(err)
				}
				if !want.MultisetEqual(got) {
					t.Errorf("n=%d after batch %d, %s: sharded read diverges:\n%s",
						n, bi, query, want.MultisetDiff(got))
				}
			}
		}
	}
}

// TestShardedUpdateRejectionChangesNothing mirrors the applier contract on
// the sharded composite: an invalid batch is rejected before any shard
// writes.
func TestShardedUpdateRejectionChangesNothing(t *testing.T) {
	ctx := context.Background()
	sp, cp, _ := newDiffPlanners(t, 4)
	bad := xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op: xmlsql.UpdateInsert, Path: "//Item[name='item-Af-0']",
		XML: "<NoSuchElement/>",
	}}}
	if _, err := cp.Update(ctx, bad); err == nil {
		t.Fatal("expected rejection")
	}
	want, err := sp.Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cp.Exec(ctx, workloads.QueryQ1)
	if err != nil {
		t.Fatal(err)
	}
	if !want.MultisetEqual(got) {
		t.Fatal("rejected batch mutated the sharded instance")
	}
}

// TestShardedScopedStatsInvalidation proves the scoped-invalidation design:
// after a document-scoped write, refreshing statistics rescans exactly one
// shard, and the merged snapshot still reflects the write.
func TestShardedScopedStatsInvalidation(t *testing.T) {
	ctx := context.Background()
	w := diffWorkloads()[0]
	c, err := sharded.NewMem(4, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	snap0, err := c.CollectStats(ctx, w.schema)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.StatsRescans(); got != 4 {
		t.Fatalf("cold collection should scan all 4 shards, scanned %d", got)
	}
	if _, err := c.CollectStats(ctx, w.schema); err != nil {
		t.Fatal(err)
	}
	if got := c.StatsRescans(); got != 4 {
		t.Fatalf("warm collection should scan nothing, total rescans %d", got)
	}

	// One document-scoped write through the planner's update path.
	p := xmlsql.NewPlannerWith(w.schema, xmlsql.PlannerConfig{Backend: c})
	if _, err := p.Update(ctx, xmlsql.UpdateBatch{Muts: []xmlsql.UpdateMutation{{
		Op: xmlsql.UpdateInsert, Path: "//Item[name='item-Af-0']",
		XML: "<InCategory><Category>statcat</Category></InCategory>",
	}}}); err != nil {
		t.Fatal(err)
	}

	snap1, err := c.CollectStats(ctx, w.schema)
	if err != nil {
		t.Fatal(err)
	}
	rescans := c.StatsRescans() - 4
	// "item-Af-0" occurs once per document, so the insert wrote on the
	// shards holding those 6 documents — at least one, at most all four.
	// The scoped claim is the idle-refresh check below: no write, no rescan.
	if rescans < 1 || rescans > 4 {
		t.Fatalf("post-write collection rescanned %d shards", rescans)
	}
	if snap1.TotalRows <= snap0.TotalRows {
		t.Fatalf("merged snapshot missed the write: %d -> %d rows", snap0.TotalRows, snap1.TotalRows)
	}
	after := c.StatsRescans()
	if _, err := c.CollectStats(ctx, w.schema); err != nil {
		t.Fatal(err)
	}
	if c.StatsRescans() != after {
		t.Fatal("idle refresh rescanned shards")
	}
}

// TestShardedTopologyInPlanCacheKeys: two planners sharing nothing but
// config must still key plans by topology (defensive — translations are
// backend-independent today, but the key must already distinguish them).
func TestShardedTopologyNames(t *testing.T) {
	c, err := sharded.NewMem(4, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Name(); got != "sharded(4xmem)" {
		t.Fatalf("Name() = %q", got)
	}
	if got := c.Topology(); !strings.Contains(got, "4xmem") {
		t.Fatalf("Topology() = %q", got)
	}
}
