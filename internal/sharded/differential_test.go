package sharded_test

import (
	"context"
	"testing"

	"xmlsql/internal/backend"
	"xmlsql/internal/backend/fakedb"
	"xmlsql/internal/core"
	"xmlsql/internal/engine"
	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/sharded"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/translate"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// workloadCase is one (schema, multi-document instance, query set) unit of
// the differential suite.
type workloadCase struct {
	name    string
	schema  *schema.Schema
	docs    []*xmltree.Document
	queries []string
}

func diffWorkloads() []workloadCase {
	xm := workloads.DefaultXMarkConfig()
	au := workloads.DefaultXMarkAuctionsConfig()
	s3 := workloads.DefaultS3Config()
	s3.MaxDepth = 5
	return []workloadCase{
		{
			name:    "xmark",
			schema:  workloads.XMark(),
			docs:    workloads.GenerateXMarkScale(xm, 6),
			queries: []string{workloads.QueryQ1, workloads.QueryQ2},
		},
		{
			name:   "auctions",
			schema: workloads.XMarkAuctions(),
			docs:   workloads.GenerateXMarkAuctionsScale(au, 5),
			queries: []string{
				"//Person/Name",
				"//OpenAuction/Bidder/Increase",
				"//ClosedAuction/Price",
				"//Item/InCategory/Category",
			},
		},
		{
			// The recursive mapping: its descendant queries translate to
			// recursive CTEs, proving the per-shard local fixpoint composes
			// to the global one.
			name:    "s3-recursive",
			schema:  workloads.S3(),
			docs:    workloads.GenerateS3Scale(s3, 6),
			queries: []string{workloads.QueryQ4, workloads.QueryQ5, workloads.QueryQ6, workloads.QueryQ7},
		},
	}
}

// translations returns the naive and pruned SQL for a query, both of which
// the differential runs — the naive plans are the wide UNION ALLs (and
// recursive CTEs) that stress the scatter-gather merge hardest.
func translations(t *testing.T, s *schema.Schema, query string) []*sqlast.Query {
	t.Helper()
	q, err := pathexpr.Parse(query)
	if err != nil {
		t.Fatalf("parse %q: %v", query, err)
	}
	g, err := pathid.Build(s, q)
	if err != nil {
		t.Fatalf("pathid %q: %v", query, err)
	}
	naive, err := translate.Naive(g)
	if err != nil {
		t.Fatalf("naive %q: %v", query, err)
	}
	pruned, err := core.Translate(g)
	if err != nil {
		t.Fatalf("pruned %q: %v", query, err)
	}
	return []*sqlast.Query{naive, pruned.Query}
}

func singleReference(t *testing.T, w workloadCase) *backend.Mem {
	t.Helper()
	ref := backend.NewMem()
	if _, err := ref.Load(w.schema, w.docs...); err != nil {
		t.Fatalf("%s: reference load: %v", w.name, err)
	}
	return ref
}

func memShardTopology(t *testing.T, w workloadCase, n int) *sharded.Sharded {
	t.Helper()
	c, err := sharded.NewMem(n, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatalf("%s: sharded load (n=%d): %v", w.name, n, err)
	}
	return c
}

func dbShardTopology(t *testing.T, w workloadCase, n int) *sharded.Sharded {
	t.Helper()
	shards := make([]backend.Backend, n)
	for i := range shards {
		shards[i] = backend.NewDB(fakedb.Open(), sqlast.DialectSQLite)
	}
	c, err := sharded.New(shards, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatalf("%s: fakedb sharded load (n=%d): %v", w.name, n, err)
	}
	return c
}

func assertSameResult(t *testing.T, label string, want, got *engine.Result) {
	t.Helper()
	if !want.MultisetEqual(got) {
		t.Errorf("%s: sharded result diverges from single-store:\n%s", label, want.MultisetDiff(got))
	}
}

// TestShardedDifferentialMem proves sharded ≡ single-store across shard
// counts for in-memory shards, on every workload, for both the naive and the
// pruned translation of every query.
func TestShardedDifferentialMem(t *testing.T) {
	ctx := context.Background()
	for _, w := range diffWorkloads() {
		ref := singleReference(t, w)
		for _, n := range []int{1, 2, 4, 8} {
			c := memShardTopology(t, w, n)
			for _, query := range w.queries {
				for vi, q := range translations(t, w.schema, query) {
					want, err := ref.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s: single-store exec: %v", w.name, err)
					}
					got, err := c.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s n=%d: sharded exec: %v", w.name, n, err)
					}
					label := w.name + "/" + query
					if vi == 0 {
						label += "/naive"
					} else {
						label += "/pruned"
					}
					assertSameResult(t, label, want, got)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatalf("%s n=%d: close: %v", w.name, n, err)
			}
		}
	}
}

// TestShardedDifferentialFakeDB runs the same differential with every shard
// a fakedb-backed DB backend — the SQL-rendering route.
func TestShardedDifferentialFakeDB(t *testing.T) {
	ctx := context.Background()
	for _, w := range diffWorkloads() {
		ref := singleReference(t, w)
		for _, n := range []int{1, 2, 4, 8} {
			c := dbShardTopology(t, w, n)
			for _, query := range w.queries {
				for _, q := range translations(t, w.schema, query) {
					want, err := ref.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s: single-store exec: %v", w.name, err)
					}
					got, err := c.Execute(ctx, q)
					if err != nil {
						t.Fatalf("%s n=%d (fakedb): sharded exec: %v", w.name, n, err)
					}
					assertSameResult(t, w.name+"/"+query+"/fakedb", want, got)
				}
			}
			if err := c.Close(); err != nil {
				t.Fatalf("%s n=%d: close: %v", w.name, n, err)
			}
		}
	}
}

// TestShardedLoadIDsMatchSingleStore pins the id-assignment invariant
// directly: the ids a sharded load assigns are exactly those a single-store
// load assigns, document for document.
func TestShardedLoadIDsMatchSingleStore(t *testing.T) {
	w := diffWorkloads()[0]
	ref := backend.NewMem()
	refRes, err := ref.Load(w.schema, w.docs...)
	if err != nil {
		t.Fatal(err)
	}
	c, err := sharded.NewMem(4, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	shRes, err := c.Load(w.schema, w.docs...)
	if err != nil {
		t.Fatal(err)
	}
	if len(refRes) != len(shRes) {
		t.Fatalf("result count: single %d, sharded %d", len(refRes), len(shRes))
	}
	for i := range refRes {
		if refRes[i].Tuples != shRes[i].Tuples {
			t.Fatalf("doc %d: tuple count: single %d, sharded %d", i, refRes[i].Tuples, shRes[i].Tuples)
		}
	}
	// Same global id space: total rows agree and the union of shard rows
	// equals the single store's rows per relation (checked via the engine on
	// an id-projecting scan by the differential tests above; here check the
	// totals to pin the counter continuation).
	var total int
	for _, sh := range c.Shards() {
		total += sh.(*backend.Mem).Store().TotalRows()
	}
	if total != ref.Store().TotalRows() {
		t.Fatalf("total rows: single %d, sharded %d", ref.Store().TotalRows(), total)
	}
}
