package sharded_test

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/engine"
	"xmlsql/internal/sharded"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/workloads"
)

// sqlastQuery keeps the wrapper-shard method signatures compact.
type sqlastQuery = sqlast.Query

// TestSkewedPartitionerStillCorrect is the seeded skew stress test: a
// pathological partitioner lands ~all documents on one shard of four. The
// composite must still answer every query identically to a single store, and
// the imbalance must be visible in the recorded per-shard row counts.
func TestSkewedPartitionerStillCorrect(t *testing.T) {
	w := diffWorkloads()[0] // xmark, 6 documents
	ref := singleReference(t, w)

	// Seeded: shard 0 with probability 7/8, uniform otherwise — with seed 42
	// and 6 documents, everything in practice piles onto shard 0.
	rng := rand.New(rand.NewSource(42))
	skewed := func(docIndex int, rootID int64) int {
		if rng.Intn(8) < 7 {
			return 0
		}
		return rng.Intn(4)
	}
	c, err := sharded.NewMem(4, sharded.Options{Partitioner: skewed})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	for _, query := range w.queries {
		for _, q := range translations(t, w.schema, query) {
			want, err := ref.Execute(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Execute(ctx, q)
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "skewed/"+query, want, got)
		}
	}

	m, err := c.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var total, max int64
	for _, r := range m.RowsPerShard {
		total += r
		if r > max {
			max = r
		}
	}
	if total == 0 {
		t.Fatal("no rows recorded")
	}
	if float64(max) < 0.75*float64(total) {
		t.Errorf("expected the skew to surface in per-shard row counts; max shard holds %d of %d rows (%v)",
			max, total, m.RowsPerShard)
	}
	if int64(total) != int64(ref.Store().TotalRows()) {
		t.Errorf("skewed placement lost rows: %d vs %d", total, ref.Store().TotalRows())
	}
}

// slowShard wraps a Mem shard so every Execute blocks until its context is
// cancelled (or a generous timeout), letting the cancellation tests hold a
// scatter mid-flight deterministically.
type slowShard struct {
	*backend.Mem
	entered chan struct{}
}

func (s *slowShard) Execute(ctx context.Context, q *sqlastQuery) (*engine.Result, error) {
	select {
	case s.entered <- struct{}{}:
	default:
	}
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-time.After(10 * time.Second):
		return nil, errors.New("slowShard: never cancelled")
	}
}

// TestScatterCancellation: a context cancelled mid-scatter tears down every
// shard worker promptly and leaks no goroutines.
func TestScatterCancellation(t *testing.T) {
	before := runtime.NumGoroutine()

	w := diffWorkloads()[0]
	shards := make([]backend.Backend, 4)
	entered := make(chan struct{}, 8)
	for i := range shards {
		shards[i] = &slowShard{Mem: backend.NewMem(), entered: entered}
	}
	c, err := sharded.New(shards, sharded.Options{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	q := translations(t, w.schema, w.queries[0])[1]

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := c.Execute(ctx, q)
		done <- err
	}()

	// Wait until at least one shard worker is actually blocked mid-query,
	// then cancel.
	select {
	case <-entered:
	case <-time.After(5 * time.Second):
		t.Fatal("no shard worker entered Execute")
	}
	cancel()

	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("scatter did not tear down after cancellation")
	}

	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s", before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestScatterPreCancelled: an already-cancelled context returns immediately
// without touching any shard.
func TestScatterPreCancelled(t *testing.T) {
	w := diffWorkloads()[0]
	c, err := sharded.NewMem(4, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	q := translations(t, w.schema, w.queries[0])[1]
	if _, err := c.Execute(ctx, q); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}

// TestScatterShardErrorCancelsSiblings: the first shard error cancels the
// remaining workers and surfaces, wrapped with the shard index.
func TestScatterShardErrorCancelsSiblings(t *testing.T) {
	w := diffWorkloads()[0]
	boom := errors.New("shard exploded")
	shards := []backend.Backend{
		backend.NewMem(),
		&failingShard{Mem: backend.NewMem(), err: boom},
		backend.NewMem(),
		backend.NewMem(),
	}
	c, err := sharded.New(shards, sharded.Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(w.schema, w.docs...); err != nil {
		t.Fatal(err)
	}
	q := translations(t, w.schema, w.queries[0])[1]
	if _, err := c.Execute(context.Background(), q); !errors.Is(err, boom) {
		t.Fatalf("want shard error, got %v", err)
	}
}

type failingShard struct {
	*backend.Mem
	err error
}

func (s *failingShard) Execute(ctx context.Context, q *sqlastQuery) (*engine.Result, error) {
	return nil, s.err
}

// TestSkewBench ensures the default hash partitioner actually spreads the
// scale workload: with 24 documents on 4 shards no shard should be empty.
func TestHashPartitionerSpreads(t *testing.T) {
	xm := workloads.DefaultXMarkConfig()
	xm.ItemsPerContinent = 2
	docs := workloads.GenerateXMarkScale(xm, 24)
	c, err := sharded.NewMem(4, sharded.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Load(workloads.XMark(), docs...); err != nil {
		t.Fatal(err)
	}
	m, err := c.Metrics(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	for i, d := range m.DocsPerShard {
		if d == 0 {
			t.Errorf("shard %d received no documents: %v", i, m.DocsPerShard)
		}
	}
}
