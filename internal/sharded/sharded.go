// Package sharded executes translated queries scatter-gather over a
// document-partitioned instance.
//
// Shredding is document-rooted: every root-to-leaf path of a translated
// UNION ALL branch stays inside one document, and parentid edges never cross
// documents. Partitioning the shredded relations by document therefore
// leaves every translated query embarrassingly scatter-gatherable: each
// shard holds a set of whole documents, the same SQL runs on every shard,
// and the global answer is the multiset concatenation of the shard answers
// in shard-then-branch order. Recursive-CTE plans need no cross-shard
// traffic either — the fixpoint follows parentid joins, which are closed
// within a document, so each shard's local fixpoint is the global fixpoint
// restricted to its documents and the per-iteration global merge round is
// provably empty. The differential suite holds sharded execution
// multiset-identical to a single store on every workload.
//
// Sharded implements backend.Backend and backend.DML, so the whole serving
// stack above it — Planner, plan cache, integrity audits, the update path,
// the network front end — composes unchanged. Loading continues one global
// elemid sequence across shards (shred.Shredder.SetNextID), so ids are
// byte-identical to a single-store load of the same documents; an id→shard
// router built from the per-document id ranges (plus ids minted by update
// batches) routes DML and integrity probes to the one shard that owns a
// write's footprint.
package sharded

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"xmlsql/internal/backend"
	"xmlsql/internal/engine"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/sqlast"
	"xmlsql/internal/xmltree"
)

// Partitioner assigns a document to a shard. docIndex is the document's
// global load ordinal (0-based, across Load calls); rootID is the elemid its
// root element is about to receive. The returned shard index is taken modulo
// the shard count, so a pathological partitioner cannot escape the topology
// (the skew stress test relies on that).
type Partitioner func(docIndex int, rootID int64) int

// HashPartitioner is the default placement: FNV-1a over the root id. With
// documents of similar size it spreads load evenly; the recorded per-shard
// row counts expose whatever skew the actual documents produce.
func HashPartitioner(_ int, rootID int64) int {
	h := fnv.New64a()
	var buf [8]byte
	for i := 0; i < 8; i++ {
		buf[i] = byte(rootID >> (8 * i))
	}
	h.Write(buf[:])
	return int(h.Sum64() % (1 << 31))
}

// Options tune a composite.
type Options struct {
	// Partitioner places documents on shards; nil means HashPartitioner.
	Partitioner Partitioner
	// Parallelism bounds concurrent shard executions per query; 0 derives
	// min(shards, GOMAXPROCS), 1 scatters serially.
	Parallelism int
}

// idRange maps a contiguous elemid interval [Lo, Hi] (one or more
// consecutively-loaded documents) to its owning shard.
type idRange struct {
	Lo, Hi int64
	Shard  int
}

// Sharded is a backend.Backend composite over N shard backends holding a
// document-partitioned instance. It is safe for concurrent use: queries
// scatter freely, loads and DML batches serialize on an internal mutex
// (matching the single-writer discipline of backend.Mem).
type Sharded struct {
	shards []backend.Backend
	part   Partitioner
	par    int

	// mu serializes loads and DML (router mutation); routerMu guards the
	// id→shard tables for concurrent readers (probes, routing) against them.
	mu       sync.Mutex
	routerMu sync.RWMutex
	schema   *schema.Schema
	nextID   int64 // next global elemid; 1-based like the shredder's
	ranges   []idRange
	extra    map[int64]int // ids minted by update batches
	docCount int
	docs     []int64 // documents placed per shard

	shredders []*shred.Shredder // per mem shard, reused across Load calls

	// dmlSeq counts applied DML batches per shard; it is the mutation
	// version of shards whose store has none observable (the DB backend).
	dmlSeq []atomic.Uint64

	// statsMu guards the per-shard statistics snapshot cache (stats.go).
	statsMu    sync.Mutex
	shardStats []*shardStatsEntry

	scatters     atomic.Int64
	mergeNs      atomic.Int64
	mergedRows   atomic.Int64
	statsRescans atomic.Int64
}

// storeBacked is the capability of shards that expose their in-memory store
// directly (backend.Mem and wrappers embedding it): the loader shreds into
// the store in place, statistics scan it, probes use its indexes.
type storeBacked interface {
	Store() *relational.Store
}

// storeLoader is the capability of shards that bulk-load an already-shredded
// staging store (backend.DB): the loader shreds into scratch and ships rows.
type storeLoader interface {
	LoadStore(staging *relational.Store) error
}

// New builds the composite over the given shard backends — each either
// store-backed (backend.Mem) or staging-loaded (backend.DB); mixing is
// allowed. The shards should be empty — load through the composite so ids
// and the router stay consistent.
func New(shards []backend.Backend, opts Options) (*Sharded, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("sharded: need at least one shard")
	}
	for i, sh := range shards {
		switch sh.(type) {
		case storeBacked, storeLoader:
		default:
			return nil, fmt.Errorf("sharded: shard %d: unsupported backend %T (want a store-backed or store-loading backend)", i, sh)
		}
	}
	part := opts.Partitioner
	if part == nil {
		part = HashPartitioner
	}
	return &Sharded{
		shards:     shards,
		part:       part,
		par:        opts.Parallelism,
		nextID:     1,
		extra:      map[int64]int{},
		docs:       make([]int64, len(shards)),
		shredders:  make([]*shred.Shredder, len(shards)),
		dmlSeq:     make([]atomic.Uint64, len(shards)),
		shardStats: make([]*shardStatsEntry, len(shards)),
	}, nil
}

// NewMem builds the common all-in-memory topology: n fresh Mem shards.
func NewMem(n int, opts Options) (*Sharded, error) {
	shards := make([]backend.Backend, n)
	for i := range shards {
		shards[i] = backend.NewMem()
	}
	return New(shards, opts)
}

// Shards exposes the shard backends, in shard order.
func (c *Sharded) Shards() []backend.Backend { return c.shards }

// NumShards returns the topology width.
func (c *Sharded) NumShards() int { return len(c.shards) }

// SetEngineOptions forwards engine options to every shard that executes
// through the built-in engine.
func (c *Sharded) SetEngineOptions(opts engine.Options) {
	for _, sh := range c.shards {
		if m, ok := sh.(interface{ SetEngineOptions(engine.Options) }); ok {
			m.SetEngineOptions(opts)
		}
	}
}

// Name implements Backend, e.g. "sharded(4xmem)".
func (c *Sharded) Name() string {
	names := make([]string, 0, 2)
	uniform := true
	for _, sh := range c.shards {
		n := sh.Name()
		if len(names) == 0 {
			names = append(names, n)
		} else if names[len(names)-1] != n {
			names = append(names, n)
			uniform = false
		}
	}
	if uniform {
		return fmt.Sprintf("sharded(%dx%s)", len(c.shards), names[0])
	}
	return fmt.Sprintf("sharded(%d:%s)", len(c.shards), strings.Join(names, "|"))
}

// Topology identifies the shard layout for plan-cache keys: plans translated
// for one topology never alias plans for another (or for an unsharded
// backend), even through planner rebuilds.
func (c *Sharded) Topology() string { return c.Name() }

// EnsureSchema implements Backend by fanning out to every shard. The mapping
// is retained — partitioned loading and statistics probes need it.
func (c *Sharded) EnsureSchema(s *schema.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, sh := range c.shards {
		if err := sh.EnsureSchema(s); err != nil {
			return fmt.Errorf("sharded: shard %d: %w", i, err)
		}
	}
	c.schema = s
	return nil
}

// Load implements Backend: each document is placed on a shard by the
// partitioner and shredded there with the global id counter continued, so
// the assigned elemids are identical to a single-store load of the same
// document sequence — the invariant that makes sharded answers (which carry
// ids) byte-comparable to single-store answers.
func (c *Sharded) Load(s *schema.Schema, docs ...*xmltree.Document) ([]*shred.Result, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.schema == nil {
		for i, sh := range c.shards {
			if err := sh.EnsureSchema(s); err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", i, err)
			}
		}
		c.schema = s
	}

	// DB shards stage into a scratch store per Load call and bulk-insert at
	// the end (one transaction per shard); Mem shards shred in place.
	staging := make([]*relational.Store, len(c.shards))
	loadSh := make([]*shred.Shredder, len(c.shards))
	shredderFor := func(k int) (*shred.Shredder, error) {
		if loadSh[k] != nil {
			return loadSh[k], nil
		}
		if b, ok := c.shards[k].(storeBacked); ok {
			if c.shredders[k] == nil {
				sh, err := shred.NewShredder(s, b.Store(), shred.Options{})
				if err != nil {
					return nil, err
				}
				c.shredders[k] = sh
			}
			loadSh[k] = c.shredders[k]
			return loadSh[k], nil
		}
		store := relational.NewStore()
		staging[k] = store
		sh, err := shred.NewShredder(s, store, shred.Options{})
		if err != nil {
			return nil, err
		}
		loadSh[k] = sh
		return sh, nil
	}

	results := make([]*shred.Result, 0, len(docs))
	var newRanges []idRange
	touched := make([]bool, len(c.shards))
	for _, d := range docs {
		rootID := c.nextID
		k := c.part(c.docCount, rootID) % len(c.shards)
		if k < 0 {
			k = -k
		}
		sh, err := shredderFor(k)
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", k, err)
		}
		sh.SetNextID(rootID)
		r, err := sh.Shred(d)
		if err != nil {
			return nil, fmt.Errorf("sharded: shard %d: shred: %w", k, err)
		}
		c.nextID = sh.NextID()
		c.docCount++
		c.docs[k]++
		touched[k] = true
		results = append(results, r)
		if hi := c.nextID - 1; hi >= rootID {
			if n := len(newRanges); n > 0 && newRanges[n-1].Shard == k && newRanges[n-1].Hi == rootID-1 {
				newRanges[n-1].Hi = hi // coalesce consecutive docs on one shard
			} else {
				newRanges = append(newRanges, idRange{Lo: rootID, Hi: hi, Shard: k})
			}
		}
	}

	for k, st := range staging {
		if st == nil {
			continue
		}
		if err := c.shards[k].(storeLoader).LoadStore(st); err != nil {
			return nil, fmt.Errorf("sharded: shard %d: %w", k, err)
		}
	}
	for k, t := range touched {
		if !t {
			continue
		}
		if m, ok := c.shards[k].(storeBacked); ok {
			if err := m.Store().BuildJoinIndexes(schema.ParentIDColumn); err != nil {
				return nil, fmt.Errorf("sharded: shard %d: %w", k, err)
			}
		}
		c.dmlSeq[k].Add(1) // DB shards have no store version; move ours
	}

	c.routerMu.Lock()
	c.ranges = append(c.ranges, newRanges...)
	c.routerMu.Unlock()
	return results, nil
}

// AdoptLoaded rebuilds the id→shard router by scanning the shards' stores,
// for composites whose shard contents were populated outside Load — the
// durable serving path recovers each shard store from its own write-ahead
// log, then adopts: every found id registers to its shard, the global id
// counter moves past the maximum, and per-shard document counts are restored
// from the root tuples (NULL parentid). Requires store-backed shards.
func (c *Sharded) AdoptLoaded(s *schema.Schema) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.schema == nil {
		c.schema = s
	}
	c.routerMu.Lock()
	defer c.routerMu.Unlock()
	for k, sh := range c.shards {
		sb, ok := sh.(storeBacked)
		if !ok {
			return fmt.Errorf("sharded: shard %d (%s): AdoptLoaded requires store-backed shards", k, sh.Name())
		}
		store := sb.Store()
		for _, rel := range store.TableNames() {
			t := store.Table(rel)
			ts := t.Schema()
			idIdx := ts.ColumnIndex(schema.IDColumn)
			if idIdx < 0 {
				continue
			}
			pidIdx := ts.ColumnIndex(schema.ParentIDColumn)
			for _, row := range t.SortedRows() {
				if row[idIdx].Kind() != relational.KindInt {
					continue
				}
				id := row[idIdx].AsInt()
				c.extra[id] = k
				if id >= c.nextID {
					c.nextID = id + 1
				}
				if pidIdx >= 0 && row[pidIdx].IsNull() {
					c.docs[k]++
					c.docCount++
				}
			}
		}
	}
	return nil
}

// shardOf resolves the shard owning an elemid, or -1 when the id is unknown
// to the router (never loaded, e.g. a dangling parent reference).
func (c *Sharded) shardOf(id int64) int {
	c.routerMu.RLock()
	defer c.routerMu.RUnlock()
	// Load-time ranges are appended in increasing Lo order; binary search.
	i := sort.Search(len(c.ranges), func(i int) bool { return c.ranges[i].Hi >= id })
	if i < len(c.ranges) && c.ranges[i].Lo <= id {
		return c.ranges[i].Shard
	}
	if k, ok := c.extra[id]; ok {
		return k
	}
	return -1
}

// registerIDs records update-minted ids on their owning shard and keeps the
// global counter above them, so a later Load can never re-assign one.
func (c *Sharded) registerIDs(ids []int64, shard int) {
	if len(ids) == 0 {
		return
	}
	c.routerMu.Lock()
	for _, id := range ids {
		c.extra[id] = shard
		if id >= c.nextID {
			c.nextID = id + 1
		}
	}
	c.routerMu.Unlock()
}

// Execute implements Backend: the query scatters to every shard (bounded
// worker pool, each shard running its full plan — including any recursive
// CTE's local fixpoint — on its own engine), and the shard results merge by
// multiset concatenation in shard order. Within a shard the engine's own
// deterministic branch-order merge applies, so the global row order is
// shard-then-branch. The first shard error (or ctx cancellation) cancels the
// remaining workers and is returned.
func (c *Sharded) Execute(ctx context.Context, q *sqlast.Query) (*engine.Result, error) {
	c.scatters.Add(1)
	n := len(c.shards)
	results := make([]*engine.Result, n)
	errs := make([]error, n)

	workers := c.par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					return
				}
				res, err := c.shards[i].Execute(ctx, q)
				if err != nil {
					errs[i] = fmt.Errorf("sharded: shard %d: %w", i, err)
					cancel() // tear the scatter down promptly
					return
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()

	if err := ctx.Err(); err != nil && errsOnlyCtx(errs, err) {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	start := time.Now()
	merged := &engine.Result{}
	total := 0
	for _, r := range results {
		total += len(r.Rows)
		if merged.Cols == nil && r.Cols != nil {
			merged.Cols = r.Cols
		}
	}
	merged.Rows = make([]relational.Row, 0, total)
	for _, r := range results {
		merged.Rows = append(merged.Rows, r.Rows...)
	}
	c.mergeNs.Add(time.Since(start).Nanoseconds())
	c.mergedRows.Add(int64(total))
	return merged, nil
}

// errsOnlyCtx reports whether every recorded shard error is the context's own
// (cancellation), so the caller's ctx.Err() is the right thing to surface.
func errsOnlyCtx(errs []error, ctxErr error) bool {
	for _, err := range errs {
		if err == nil {
			continue
		}
		if !strings.Contains(err.Error(), ctxErr.Error()) {
			return false
		}
	}
	return true
}

// Close implements Backend, closing every shard and returning the first
// error.
func (c *Sharded) Close() error {
	var first error
	for _, sh := range c.shards {
		if err := sh.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// Metrics is a point-in-time snapshot of the composite's scatter-gather
// counters plus the per-shard placement (documents and rows per shard — the
// skew record the benchmark publishes).
type Metrics struct {
	Shards int `json:"shards"`
	// DocsPerShard and RowsPerShard expose placement skew.
	DocsPerShard []int64 `json:"docs_per_shard"`
	RowsPerShard []int64 `json:"rows_per_shard"`
	// Scatters counts Execute calls (each fans out to every shard).
	Scatters int64 `json:"scatters"`
	// MergeNs is the cumulative time spent concatenating shard results;
	// MergedRows the rows that passed through the merge.
	MergeNs    int64 `json:"merge_ns"`
	MergedRows int64 `json:"merged_rows"`
}

// Metrics snapshots the counters. Row counts are scanned live from Mem
// shards and probed with per-relation SELECTs from DB shards.
func (c *Sharded) Metrics(ctx context.Context) (Metrics, error) {
	m := Metrics{
		Shards:     len(c.shards),
		Scatters:   c.scatters.Load(),
		MergeNs:    c.mergeNs.Load(),
		MergedRows: c.mergedRows.Load(),
	}
	c.mu.Lock()
	m.DocsPerShard = append([]int64(nil), c.docs...)
	s := c.schema
	c.mu.Unlock()
	for i, sh := range c.shards {
		switch b := sh.(type) {
		case storeBacked:
			m.RowsPerShard = append(m.RowsPerShard, int64(b.Store().TotalRows()))
		default:
			if s == nil {
				m.RowsPerShard = append(m.RowsPerShard, 0)
				continue
			}
			var total int64
			for _, rel := range s.Relations() {
				sel := sqlast.SingleSelect(&sqlast.Select{
					Cols: []sqlast.SelectItem{sqlast.Col(rel, schema.IDColumn)},
					From: []sqlast.FromItem{sqlast.From(rel, rel)},
				})
				res, err := b.Execute(ctx, sel)
				if err != nil {
					return m, fmt.Errorf("sharded: shard %d: count %s: %w", i, rel, err)
				}
				total += int64(res.Len())
			}
			m.RowsPerShard = append(m.RowsPerShard, total)
		}
	}
	return m, nil
}
