package cli_test

import (
	"os"
	"path/filepath"
	"testing"

	"xmlsql/internal/cli"
	"xmlsql/internal/shred"
)

func TestBuiltinSchemas(t *testing.T) {
	for _, name := range cli.Workloads {
		s, err := cli.BuiltinSchema(name)
		if err != nil {
			t.Errorf("BuiltinSchema(%s): %v", name, err)
			continue
		}
		if s == nil || s.NumNodes() == 0 {
			t.Errorf("BuiltinSchema(%s): empty", name)
		}
		es, err := cli.BuiltinSchema(name + "-edge")
		if err != nil {
			t.Errorf("BuiltinSchema(%s-edge): %v", name, err)
			continue
		}
		if es.RootNode().Relation != shred.EdgeRelation {
			t.Errorf("%s-edge root relation = %q", name, es.RootNode().Relation)
		}
	}
	if _, err := cli.BuiltinSchema("nope"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestLoadSchemaFromFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "m.dsl")
	dsl := "schema m\nroot r\nnode r label=r rel=R\nnode v label=v col=val\nedge r -> v\n"
	if err := os.WriteFile(path, []byte(dsl), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := cli.LoadSchema(path, "")
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "m" {
		t.Errorf("schema name = %q", s.Name)
	}
	if _, err := cli.LoadSchema(path, "xmark"); err == nil {
		t.Error("both flags accepted")
	}
	if _, err := cli.LoadSchema("", ""); err == nil {
		t.Error("neither flag accepted")
	}
	if _, err := cli.LoadSchema(filepath.Join(dir, "missing.dsl"), ""); err == nil {
		t.Error("missing file accepted")
	}
}

func TestGenerateAndLoadDoc(t *testing.T) {
	for _, name := range cli.Workloads {
		d, err := cli.GenerateDoc(name)
		if err != nil || d.CountNodes() == 0 {
			t.Errorf("GenerateDoc(%s): %v", name, err)
		}
		s, _ := cli.BuiltinSchema(name)
		if !shred.Conforms(s, d) {
			t.Errorf("GenerateDoc(%s) does not conform", name)
		}
	}
	if _, err := cli.GenerateDoc("nope"); err == nil {
		t.Error("unknown workload accepted")
	}

	dir := t.TempDir()
	path := filepath.Join(dir, "d.xml")
	if err := os.WriteFile(path, []byte("<a><b>1</b></a>"), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := cli.LoadDoc(path, "", false)
	if err != nil || d.Root.Label != "a" {
		t.Errorf("LoadDoc from file: %v", err)
	}
	if _, err := cli.LoadDoc("", "xmark", false); err == nil {
		t.Error("no input accepted")
	}
	if d, err := cli.LoadDoc("", "xmark-edge", true); err != nil || d == nil {
		t.Errorf("LoadDoc generate: %v", err)
	}
}
