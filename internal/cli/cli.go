// Package cli holds the shared plumbing of the command-line tools: schema
// loading (DSL files or built-in workloads, with the -edge suffix for
// schema-oblivious storage) and workload document generation.
package cli

import (
	"fmt"
	"os"
	"strings"

	"xmlsql/internal/schema"
	"xmlsql/internal/shred"
	"xmlsql/internal/workloads"
	"xmlsql/internal/xmltree"
)

// Workloads lists the built-in workload names.
var Workloads = []string{"xmark", "xmarkfull", "xmarkauctions", "s1", "s2", "s3", "adex"}

// LoadSchema resolves the -schema / -workload flag pair: exactly one must be
// set; -workload accepts a built-in name with an optional "-edge" suffix.
func LoadSchema(file, workload string) (*schema.Schema, error) {
	switch {
	case file != "" && workload != "":
		return nil, fmt.Errorf("use either -schema or -workload, not both")
	case file != "":
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		return schema.Parse(string(data))
	case workload != "":
		return BuiltinSchema(workload)
	default:
		return nil, fmt.Errorf("one of -schema or -workload is required")
	}
}

// BuiltinSchema returns a built-in workload schema by name; a "-edge" suffix
// derives the schema-oblivious Edge mapping (§5.3).
func BuiltinSchema(name string) (*schema.Schema, error) {
	base, edge := strings.CutSuffix(name, "-edge")
	var s *schema.Schema
	switch base {
	case "xmark":
		s = workloads.XMark()
	case "xmarkfull":
		s = workloads.XMarkFull()
	case "xmarkauctions":
		s = workloads.XMarkAuctions()
	case "s1":
		s = workloads.S1()
	case "s2":
		s = workloads.S2()
	case "s3":
		s = workloads.S3()
	case "adex":
		s = workloads.ADEX()
	default:
		return nil, fmt.Errorf("unknown workload %q (want %s)", name, strings.Join(Workloads, ", "))
	}
	if edge {
		return shred.EdgeSchemaFor(s)
	}
	return s, nil
}

// GenerateDoc produces a default-sized document for a built-in workload
// (the "-edge" suffix is ignored: Edge storage shreds the same documents).
func GenerateDoc(workload string) (*xmltree.Document, error) {
	base, _ := strings.CutSuffix(workload, "-edge")
	switch base {
	case "xmark":
		return workloads.GenerateXMark(workloads.DefaultXMarkConfig()), nil
	case "xmarkfull":
		return workloads.GenerateXMarkFull(workloads.DefaultXMarkConfig()), nil
	case "xmarkauctions":
		return workloads.GenerateXMarkAuctions(workloads.DefaultXMarkAuctionsConfig()), nil
	case "s1":
		return workloads.GenerateS1(10, 1), nil
	case "s2":
		return workloads.GenerateS2(10, 1), nil
	case "s3":
		return workloads.GenerateS3(workloads.DefaultS3Config()), nil
	case "adex":
		return workloads.GenerateADEX(workloads.DefaultADEXConfig()), nil
	default:
		return nil, fmt.Errorf("cannot generate a document for workload %q", workload)
	}
}

// GenerateDocs produces scale default-sized documents for a built-in
// workload, one per derived seed — the scale knob multiplies document count,
// never document size, so the instance partitions cleanly by document for
// sharded execution and any prefix is a smaller scale of the same instance.
func GenerateDocs(workload string, scale int) ([]*xmltree.Document, error) {
	if scale < 1 {
		return nil, fmt.Errorf("scale must be at least 1, got %d", scale)
	}
	base, _ := strings.CutSuffix(workload, "-edge")
	switch base {
	case "xmark":
		return workloads.GenerateXMarkScale(workloads.DefaultXMarkConfig(), scale), nil
	case "xmarkfull":
		return workloads.GenerateXMarkFullScale(workloads.DefaultXMarkConfig(), scale), nil
	case "xmarkauctions":
		return workloads.GenerateXMarkAuctionsScale(workloads.DefaultXMarkAuctionsConfig(), scale), nil
	case "s3":
		return workloads.GenerateS3Scale(workloads.DefaultS3Config(), scale), nil
	case "s1", "s2", "adex":
		docs := make([]*xmltree.Document, 0, scale)
		for i := 0; i < scale; i++ {
			seed := int64(i + 1)
			switch base {
			case "s1":
				docs = append(docs, workloads.GenerateS1(10, seed))
			case "s2":
				docs = append(docs, workloads.GenerateS2(10, seed))
			case "adex":
				docs = append(docs, workloads.GenerateADEX(workloads.ADEXConfig{AdsPerSection: 25, Seed: seed}))
			}
		}
		return docs, nil
	default:
		return nil, fmt.Errorf("cannot generate documents for workload %q", workload)
	}
}

// LoadDoc resolves the -in / -generate flag pair for document input.
func LoadDoc(in, workload string, generate bool) (*xmltree.Document, error) {
	if in != "" {
		f, err := os.Open(in)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return xmltree.Parse(f)
	}
	if !generate {
		return nil, fmt.Errorf("provide -in doc.xml or -generate")
	}
	return GenerateDoc(workload)
}
