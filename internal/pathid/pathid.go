// Package pathid implements the PathId stage of XML-to-SQL translation
// (§3.4, from [9]): the cross-product of the schema graph with the query
// DFA, trimmed to the nodes that lie on some root-to-accepting path. The
// resulting cross-product schema S_CP compactly represents every schema path
// matching the query, even when there are exponentially or infinitely many.
package pathid

import (
	"fmt"
	"sort"
	"strings"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/relational"
	"xmlsql/internal/schema"
)

// Node is one cross-product node: a (schema node, DFA state) pair. The
// paper labels these with pairs such as "(12,3)"; Figure 2 shows them.
type Node struct {
	ID        int
	Schema    schema.NodeID
	State     int
	Accepting bool
	// PredConds are the selections contributed by a step predicate on this
	// node's label (the predicate extension): "col='v'" on the satisfied
	// branch, "col!='v'" on the surviving unsatisfied branch. They apply to
	// the node's own relation tuple, like schema node conditions.
	PredConds []schema.EdgeCond
}

// Edge is a cross-product edge; Cond is inherited from the schema edge.
type Edge struct {
	From int
	To   int
	Cond *schema.EdgeCond
}

// Graph is the cross-product schema S_CP.
type Graph struct {
	Schema *schema.Schema
	Query  *pathexpr.Path

	nodes    []*Node
	children [][]Edge
	parents  [][]Edge
	start    int   // CP node of the schema root, or -1 when nothing matches
	accepts  []int // accepting node ids, sorted
}

// Empty reports whether no schema path matches the query.
func (g *Graph) Empty() bool { return g.start < 0 }

// Start returns the cross-product node of the schema root.
func (g *Graph) Start() int { return g.start }

// Nodes returns all cross-product nodes in id order.
func (g *Graph) Nodes() []*Node { return g.nodes }

// Node returns the node with the given id.
func (g *Graph) Node(id int) *Node { return g.nodes[id] }

// Children returns the outgoing edges of a node.
func (g *Graph) Children(id int) []Edge { return g.children[id] }

// Parents returns the incoming edges of a node.
func (g *Graph) Parents(id int) []Edge { return g.parents[id] }

// Accepting returns the ids of accepting nodes (the query's result nodes).
func (g *Graph) Accepts() []int { return g.accepts }

// SchemaNode returns the underlying schema node of a cross-product node.
func (g *Graph) SchemaNode(id int) *schema.Node { return g.Schema.Node(g.nodes[id].Schema) }

// Build runs the PathId stage: it products the schema against the query DFA
// starting at the schema root and keeps exactly the pairs that are reachable
// from the root pair and co-reachable to an accepting pair.
//
// Step predicates (the §6 extension) enrich the product: a node whose label
// carries a predicate splits into a satisfied branch (selection col='v' on
// the node's tuple, where col is the value column storing the predicate
// child) and an unsatisfied branch (col!='v'); branches that cannot reach an
// accepting pair are trimmed as usual.
func Build(s *schema.Schema, q *pathexpr.Path) (*Graph, error) {
	dfa := pathexpr.BuildPredDFA(q)
	g := &Graph{Schema: s, Query: q, start: -1}

	if q.PredForLabel(s.Node(s.Root()).Label) != nil {
		return nil, fmt.Errorf("pathid: predicate on the document root step is not supported")
	}

	type key struct {
		sn schema.NodeID
		st int
	}
	index := map[key]int{}
	var order []key
	predConds := map[int][]schema.EdgeCond{}

	add := func(k key, conds []schema.EdgeCond) (int, error) {
		if id, ok := index[k]; ok {
			if !sameConds(predConds[id], conds) {
				return 0, fmt.Errorf("pathid: ambiguous predicate query: node %s reached with contradictory predicate branches", s.Node(k.sn).Name)
			}
			return id, nil
		}
		id := len(order)
		index[k] = id
		order = append(order, k)
		if len(conds) > 0 {
			predConds[id] = conds
		}
		return id, nil
	}

	// successors computes the (state, conds) variants when stepping into
	// schema node n from state st.
	successors := func(st int, n *schema.Node) ([]int, [][]schema.EdgeCond, error) {
		pred := q.PredForLabel(n.Label)
		if pred == nil {
			return []int{dfa.Step(st, n.Label, false)}, [][]schema.EdgeCond{nil}, nil
		}
		col, err := predColumn(s, n, pred.Child)
		if err != nil {
			return nil, nil, err
		}
		unsatState := dfa.Step(st, n.Label, false)
		if col == "" {
			// The schema gives this node no such child: elements can never
			// satisfy the predicate, and no selection is needed.
			return []int{unsatState}, [][]schema.EdgeCond{nil}, nil
		}
		satState := dfa.Step(st, n.Label, true)
		if satState == unsatState {
			return nil, nil, fmt.Errorf("pathid: ambiguous predicate query: satisfaction of %s does not affect matching at %s", pred, n.Name)
		}
		val := relational.String(pred.Value)
		return []int{satState, unsatState}, [][]schema.EdgeCond{
			{{Column: col, Value: val}},
			{{Column: col, Value: val, Neq: true}},
		}, nil
	}

	root := s.Root()
	rootState := dfa.Step(dfa.Start(), s.Node(root).Label, false)
	startKey := key{sn: root, st: rootState}
	if _, err := add(startKey, nil); err != nil {
		return nil, err
	}

	type rawEdge struct {
		from, to int
		cond     *schema.EdgeCond
	}
	var rawEdges []rawEdge
	for work := 0; work < len(order); work++ {
		k := order[work]
		if dfa.Dead(k.st) {
			continue // no accepting pair ever reachable below this state
		}
		for _, e := range s.Node(k.sn).Children() {
			states, condVariants, err := successors(k.st, s.Node(e.To))
			if err != nil {
				return nil, err
			}
			for vi, childState := range states {
				ck := key{sn: e.To, st: childState}
				cid, err := add(ck, condVariants[vi])
				if err != nil {
					return nil, err
				}
				rawEdges = append(rawEdges, rawEdge{from: work, to: cid, cond: e.Cond})
			}
		}
	}

	// Co-reachability: keep pairs from which an accepting pair is reachable
	// (accepting pairs keep themselves).
	adj := make([][]int, len(order))
	radj := make([][]int, len(order))
	for _, e := range rawEdges {
		adj[e.from] = append(adj[e.from], e.to)
		radj[e.to] = append(radj[e.to], e.from)
	}
	keep := make([]bool, len(order))
	var stack []int
	for i, k := range order {
		if dfa.Accepting(k.st) {
			keep[i] = true
			stack = append(stack, i)
		}
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range radj[i] {
			if !keep[p] {
				keep[p] = true
				stack = append(stack, p)
			}
		}
	}
	_ = adj

	if !keep[index[startKey]] {
		return g, nil // empty result
	}

	// Renumber kept nodes.
	newID := make([]int, len(order))
	for i := range newID {
		newID[i] = -1
	}
	for i, k := range order {
		if !keep[i] {
			continue
		}
		id := len(g.nodes)
		newID[i] = id
		n := &Node{ID: id, Schema: k.sn, State: k.st, Accepting: dfa.Accepting(k.st), PredConds: predConds[i]}
		g.nodes = append(g.nodes, n)
		g.children = append(g.children, nil)
		g.parents = append(g.parents, nil)
		if n.Accepting {
			g.accepts = append(g.accepts, id)
		}
	}
	for _, e := range rawEdges {
		f, t := newID[e.from], newID[e.to]
		if f < 0 || t < 0 {
			continue
		}
		ce := Edge{From: f, To: t, Cond: e.cond}
		g.children[f] = append(g.children[f], ce)
		g.parents[t] = append(g.parents[t], ce)
	}
	g.start = newID[index[startKey]]
	sort.Ints(g.accepts)

	// Every accepting node must have a retrievable value.
	for _, id := range g.accepts {
		if _, _, err := s.Annot(g.nodes[id].Schema); err != nil {
			return nil, fmt.Errorf("pathid: query %s matches node %s which has no value annotation: %v",
				q, s.Node(g.nodes[id].Schema).Name, err)
		}
	}
	return g, nil
}

// String renders the cross-product graph for debugging, in the style of the
// paper's Figure 2 node labels "(schema,state)".
func (g *Graph) String() string {
	var b strings.Builder
	if g.Empty() {
		return "(empty cross-product)\n"
	}
	for _, n := range g.nodes {
		fmt.Fprintf(&b, "(%s,%d)", g.Schema.Node(n.Schema).Name, n.State)
		if n.Accepting {
			b.WriteString("*")
		}
		if n.ID == g.start {
			b.WriteString(" <root>")
		}
		b.WriteString(" ->")
		for _, e := range g.children[n.ID] {
			c := g.nodes[e.To]
			fmt.Fprintf(&b, " (%s,%d)", g.Schema.Node(c.Schema).Name, c.State)
			if e.Cond != nil {
				fmt.Fprintf(&b, "[%s]", e.Cond)
			}
		}
		b.WriteString("\n")
	}
	return b.String()
}

// EnumeratePaths lists every root-to-accepting path of the cross-product
// graph as sequences of cross-product node ids, up to the given limit. For
// recursive schemas the path set is infinite; cycles are unrolled at most
// maxCycleVisits times per node. Used by the tree translator and by tests;
// the DAG/recursive translators work on the graph directly.
func (g *Graph) EnumeratePaths(limit, maxCycleVisits int) ([][]int, bool) {
	if g.Empty() {
		return nil, true
	}
	var out [][]int
	complete := true
	visits := make([]int, len(g.nodes))
	var cur []int
	var rec func(id int) bool // returns false when the limit was hit
	rec = func(id int) bool {
		if visits[id] >= maxCycleVisits {
			complete = false
			return true
		}
		visits[id]++
		defer func() { visits[id]-- }()
		cur = append(cur, id)
		defer func() { cur = cur[:len(cur)-1] }()
		if g.nodes[id].Accepting {
			if len(out) >= limit {
				complete = false
				return false
			}
			out = append(out, append([]int(nil), cur...))
		}
		for _, e := range g.children[id] {
			if !rec(e.To) {
				return false
			}
		}
		return true
	}
	rec(g.start)
	return out, complete
}

func sameConds(a, b []schema.EdgeCond) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Column != b[i].Column || a[i].Neq != b[i].Neq || !a[i].Value.Identical(b[i].Value) {
			return false
		}
	}
	return true
}

// predColumn resolves a step predicate's child label at schema node n: the
// value column (of n's own tuple) storing that child's text. It returns ""
// when the schema gives n no such child (the predicate is unsatisfiable
// there), and an error when the child exists but owns its own relation —
// such predicates would require a semijoin, which the translation fragment
// deliberately excludes.
//
// Only *direct* children qualify: "[a='v']" is a child-axis test, and a
// value leaf nested under an unannotated structural node is a grandchild
// even though its text lands in the same tuple. (The randomized stress suite
// caught exactly that confusion.)
func predColumn(s *schema.Schema, n *schema.Node, childLabel string) (string, error) {
	if !n.HasRelation() {
		return "", fmt.Errorf("pathid: predicate on %q requires it to be relation-annotated", n.Label)
	}
	var found string
	for _, e := range n.Children() {
		m := s.Node(e.To)
		if m.Label != childLabel {
			continue
		}
		switch {
		case m.HasRelation():
			return "", fmt.Errorf("pathid: predicate child %q of %q is stored in its own relation %s, not as a value column",
				childLabel, n.Label, m.Relation)
		case m.Column != "":
			if m.Column == schema.IDColumn {
				return "", fmt.Errorf("pathid: predicate child %q of %q is an elemid, not a text value", childLabel, n.Label)
			}
			found = m.Column
		}
	}
	if found == "" {
		return "", nil
	}
	// Soundness: the resolved column must be populated *only* by direct
	// childLabel children of nodes in n's relation. If any other source
	// feeds the same (relation, column) pair — a self-storing node, a leaf
	// under a structural intermediary, or a differently-labelled leaf — a
	// column selection cannot distinguish predicate satisfaction from those
	// foreign values, and the query must be rejected rather than
	// mistranslated.
	rel := n.Relation
	for _, m := range s.Nodes() {
		if m.Column != found {
			continue
		}
		owner, err := s.OwnerRelation(m.ID)
		if err != nil || owner != rel {
			continue
		}
		if m.HasRelation() {
			return "", fmt.Errorf("pathid: predicate column %s.%s is also stored as %s's own text; the predicate cannot be expressed as a column selection",
				rel, found, m.Name)
		}
		if m.Label != childLabel {
			return "", fmt.Errorf("pathid: predicate column %s.%s is also populated by %q children; the predicate cannot be expressed as a column selection",
				rel, found, m.Label)
		}
		for _, pe := range m.Parents() {
			if s.Node(pe.From).Relation != rel {
				return "", fmt.Errorf("pathid: predicate column %s.%s is populated through a structural intermediary at %s; the predicate cannot be expressed as a column selection",
					rel, found, m.Name)
			}
		}
	}
	return found, nil
}
