package pathid_test

import (
	"testing"

	"xmlsql/internal/pathexpr"
	"xmlsql/internal/pathid"
	"xmlsql/internal/schema"
	"xmlsql/internal/workloads"
)

func TestQ1CrossProduct(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse(workloads.QueryQ1))
	if err != nil {
		t.Fatal(err)
	}
	if g.Empty() {
		t.Fatal("Q1 cross-product empty")
	}
	// Figure 2: six matching paths (one per continent), each ending in a
	// Category leaf.
	if got := len(g.Accepts()); got != 6 {
		t.Errorf("Q1 has %d accepting nodes, want 6", got)
	}
	paths, complete := g.EnumeratePaths(100, 1)
	if !complete || len(paths) != 6 {
		t.Errorf("Q1 has %d paths (complete=%v), want 6", len(paths), complete)
	}
	// Every path is root-to-leaf of length 6: Site,Regions,cont,Item,InCat,Category.
	for _, p := range paths {
		if len(p) != 6 {
			t.Errorf("path length %d, want 6", len(p))
		}
		if g.SchemaNode(p[0]).Label != "Site" || g.SchemaNode(p[5]).Label != "Category" {
			t.Errorf("path endpoints wrong")
		}
	}
}

func TestQ2CrossProductSinglePath(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse(workloads.QueryQ2))
	if err != nil {
		t.Fatal(err)
	}
	paths, complete := g.EnumeratePaths(100, 1)
	if !complete || len(paths) != 1 {
		t.Fatalf("Q2 has %d paths, want 1", len(paths))
	}
	// The single path passes through Africa (schema node 3).
	found := false
	for _, id := range paths[0] {
		if g.SchemaNode(id).Name == "3" {
			found = true
		}
	}
	if !found {
		t.Error("Q2 path does not pass through the Africa node")
	}
}

func TestEmptyCrossProduct(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse("/Site/Nonexistent"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Empty() {
		t.Error("expected empty cross-product")
	}
	if paths, _ := g.EnumeratePaths(10, 1); len(paths) != 0 {
		t.Error("empty graph enumerated paths")
	}
}

func TestWrongRootLabelIsEmpty(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse("/NotSite//Category"))
	if err != nil {
		t.Fatal(err)
	}
	if !g.Empty() {
		t.Error("expected empty cross-product for wrong root label")
	}
}

func TestRecursiveCrossProductInfinitePaths(t *testing.T) {
	s := workloads.S3()
	g, err := pathid.Build(s, pathexpr.MustParse("//E9/E10/elemid"))
	if err != nil {
		t.Fatal(err)
	}
	if g.Empty() {
		t.Fatal("empty cross-product")
	}
	_, complete := g.EnumeratePaths(1000000, 1)
	// With unroll 1 the enumeration is cut at cycles, so it must report
	// incompleteness for the recursive region.
	if complete {
		t.Error("recursive cross-product reported complete enumeration at unroll 1")
	}
	// Raising the unroll strictly increases the number of paths.
	p2, _ := g.EnumeratePaths(1000000, 2)
	p3, _ := g.EnumeratePaths(1000000, 3)
	if len(p3) <= len(p2) {
		t.Errorf("unroll 3 found %d paths, unroll 2 found %d", len(p3), len(p2))
	}
}

func TestStateSplittingOnSelfLoop(t *testing.T) {
	// A self-recursive node queried with fixed-depth child steps must appear
	// once per relevant DFA state: for /a/b/b over a -> b -> b (self-loop),
	// node b occurs both at "one b consumed" and "two bs consumed".
	s := schema.NewBuilder("loop").
		Node("a", "a", schema.Rel("RA")).
		Node("b", "b", schema.Rel("RB")).
		Root("a").
		Edge("a", "b").
		Edge("b", "b").
		MustBuild()
	g, err := pathid.Build(s, pathexpr.MustParse("/a/b/b"))
	if err != nil {
		t.Fatal(err)
	}
	bCount := 0
	for _, n := range g.Nodes() {
		if g.Schema.Node(n.Schema).Name == "b" {
			bCount++
		}
	}
	if bCount != 2 {
		t.Errorf("b appears %d times in the cross-product, want 2 (one per DFA state):\n%s", bCount, g)
	}
	if len(g.Accepts()) != 1 {
		t.Errorf("accepting nodes = %d, want 1", len(g.Accepts()))
	}
}

func TestAcceptingNodesHaveAnnotations(t *testing.T) {
	// A query that matches an unannotated (structural) node must be
	// rejected: its result value is not retrievable.
	s := workloads.XMark()
	if _, err := pathid.Build(s, pathexpr.MustParse("/Site/Regions")); err == nil {
		t.Error("query ending at unannotated Regions node accepted")
	}
}

func TestCrossProductString(t *testing.T) {
	s := workloads.XMark()
	g, err := pathid.Build(s, pathexpr.MustParse(workloads.QueryQ2))
	if err != nil {
		t.Fatal(err)
	}
	if out := g.String(); len(out) == 0 {
		t.Error("empty dump")
	}
}
