package plancache

import (
	"fmt"
	"sync"
	"testing"
)

func key(fp, q string) Key { return Key{SchemaFP: fp, Query: q} }

func TestGetPut(t *testing.T) {
	c := New(64)
	if _, ok := c.Get(key("s", "//a")); ok {
		t.Fatal("empty cache reported a hit")
	}
	c.Put(key("s", "//a"), "plan-a")
	v, ok := c.Get(key("s", "//a"))
	if !ok || v.(string) != "plan-a" {
		t.Fatalf("got (%v, %v), want (plan-a, true)", v, ok)
	}
	// Same query under a different schema fingerprint is a different plan.
	if _, ok := c.Get(key("s2", "//a")); ok {
		t.Fatal("fingerprint not part of the key")
	}
	// Same for different options.
	if _, ok := c.Get(Key{SchemaFP: "s", Query: "//a", Options: "unroll=7"}); ok {
		t.Fatal("options not part of the key")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 3 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want 1 hit, 3 misses, 1 entry", st)
	}
}

func TestPutRefreshesExisting(t *testing.T) {
	c := New(64)
	k := key("s", "//a")
	c.Put(k, "v1")
	c.Put(k, "v2")
	if v, _ := c.Get(k); v.(string) != "v2" {
		t.Fatalf("got %v, want v2", v)
	}
	if c.Len() != 1 {
		t.Fatalf("len = %d, want 1", c.Len())
	}
}

func TestLRUEviction(t *testing.T) {
	// Capacity 2*numShards means two entries per shard: the third key landing
	// in one shard must evict that shard's least recently used entry.
	c := New(2 * numShards)
	var same []Key
	probe := key("fp", "probe")
	s := c.shardFor(probe)
	for i := 0; len(same) < 3; i++ {
		k := key("fp", fmt.Sprintf("q%d", i))
		if c.shardFor(k) == s {
			same = append(same, k)
		}
	}
	c.Put(same[0], 0)
	c.Put(same[1], 1)
	// Touch same[0] so same[1] is the LRU entry when same[2] evicts.
	if _, ok := c.Get(same[0]); !ok {
		t.Fatal("expected hit on same[0]")
	}
	c.Put(same[2], 2)
	if _, ok := c.Get(same[0]); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, ok := c.Get(same[1]); ok {
		t.Fatal("LRU entry survived eviction")
	}
	if _, ok := c.Get(same[2]); !ok {
		t.Fatal("new entry missing")
	}
	if st := c.Stats(); st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
}

func TestEvictionCounter(t *testing.T) {
	c := New(numShards) // one entry per shard: every same-shard Put evicts
	probe := key("fp", "probe")
	s := c.shardFor(probe)
	var last Key
	n := 0
	for i := 0; n < 5; i++ {
		k := key("fp", fmt.Sprintf("q%d", i))
		if c.shardFor(k) != s {
			continue
		}
		c.Put(k, i)
		last = k
		n++
	}
	if st := c.Stats(); st.Evictions != 4 {
		t.Fatalf("evictions = %d, want 4", st.Evictions)
	}
	// Refreshing an existing key and purging must not count as evictions.
	c.Put(last, "refreshed")
	c.Purge()
	if st := c.Stats(); st.Evictions != 4 {
		t.Fatalf("refresh/purge changed evictions: got %d, want 4", st.Evictions)
	}
}

func TestPurge(t *testing.T) {
	c := New(64)
	for i := 0; i < 10; i++ {
		c.Put(key("s", fmt.Sprintf("q%d", i)), i)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("len after purge = %d", c.Len())
	}
	if _, ok := c.Get(key("s", "q3")); ok {
		t.Fatal("purged entry still present")
	}
}

// TestConcurrent exercises the cache from many goroutines; run with -race.
func TestConcurrent(t *testing.T) {
	c := New(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := key("s", fmt.Sprintf("q%d", i%50))
				if v, ok := c.Get(k); ok {
					if v.(int) != i%50 {
						t.Errorf("goroutine %d: got %v for %v", g, v, k)
						return
					}
				} else {
					c.Put(k, i%50)
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected both hits and misses, got %+v", st)
	}
}

func TestPurgeTaggedScope(t *testing.T) {
	c := New(64)
	c.PutTagged(key("s", "q-item"), "plan-item", []string{"Item", "InCat"})
	c.PutTagged(key("s", "q-site"), "plan-site", []string{"Site"})
	c.Put(key("s", "q-unknown"), "plan-unknown") // untagged: unknown footprint

	dropped := c.PurgeTagged([]string{"InCat"})
	// The InCat reader and the untagged entry go; the Site reader survives.
	if dropped != 2 {
		t.Fatalf("dropped %d entries, want 2", dropped)
	}
	if _, ok := c.Get(key("s", "q-item")); ok {
		t.Fatal("entry tagged with a purged relation survived")
	}
	if _, ok := c.Get(key("s", "q-unknown")); ok {
		t.Fatal("untagged entry survived a tagged purge")
	}
	if v, ok := c.Get(key("s", "q-site")); !ok || v.(string) != "plan-site" {
		t.Fatal("entry with a disjoint footprint was dropped")
	}

	// An empty purge is a no-op, not a global purge.
	if n := c.PurgeTagged(nil); n != 0 {
		t.Fatalf("PurgeTagged(nil) dropped %d entries", n)
	}
	if _, ok := c.Get(key("s", "q-site")); !ok {
		t.Fatal("PurgeTagged(nil) dropped entries")
	}
}

func TestPutTaggedRefreshUpdatesTags(t *testing.T) {
	c := New(64)
	c.PutTagged(key("s", "q"), "v1", []string{"A"})
	c.PutTagged(key("s", "q"), "v2", []string{"B"})
	if n := c.PurgeTagged([]string{"A"}); n != 0 {
		t.Fatalf("stale tags survived a refresh (dropped %d)", n)
	}
	if n := c.PurgeTagged([]string{"B"}); n != 1 {
		t.Fatalf("refreshed tags not honored (dropped %d, want 1)", n)
	}
}
