// Package plancache is a sharded LRU cache for translated query plans.
//
// The serving workload the ROADMAP targets is many concurrent clients
// issuing a small set of hot path expressions against a slowly-changing
// mapping. Translation (PathId cross-product + pruning) is pure and depends
// only on (schema, query, translate options), so its result can be reused
// across requests as long as the mapping is unchanged. Keys therefore embed
// a structural schema fingerprint (schema.Fingerprint): when the mapping
// changes, new requests carry a new fingerprint and simply stop hitting the
// stale entries, which age out of the LRU — no explicit invalidation
// protocol is needed.
//
// The cache is safe for concurrent use. It is sharded by key hash with one
// mutex per shard so that unrelated queries do not contend on a single lock;
// hit/miss counters are atomics shared across shards.
package plancache

import (
	"container/list"
	"hash/maphash"
	"sync"
	"sync/atomic"
)

// Key identifies one cached translation.
type Key struct {
	// SchemaFP is the structural fingerprint of the mapping the plan was
	// translated against (schema.Fingerprint()).
	SchemaFP string
	// Query is the path expression source text.
	Query string
	// Options encodes the translate options the plan was produced under
	// (plans for different option sets must not alias). The Planner derives
	// it by printing core.Options, so every flag that changes the emitted
	// SQL — including the FactorPrefixes shared-work rewrite — is part of
	// the key automatically; safe-mode plans additionally carry a
	// "+factored" suffix when the rewrite applies to the baseline too.
	Options string
}

// numShards is a power of two; with a mutex per shard, concurrent Eval
// callers on different keys rarely contend.
const numShards = 16

// Cache is a sharded, bounded LRU mapping Key -> cached plan. The zero value
// is not usable; call New.
type Cache struct {
	shards    [numShards]shard
	seed      maphash.Seed
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

type shard struct {
	mu       sync.Mutex
	capacity int
	ll       *list.List // front = most recently used
	items    map[Key]*list.Element
}

type entry struct {
	key   Key
	value any
	// rels are the relations the cached plan reads (its invalidation tags).
	// Entries stored without tags are purged by any PurgeTagged call — not
	// knowing a plan's footprint must never keep it alive across a write.
	rels []string
}

// DefaultCapacity is the total entry budget used when New is given a
// non-positive capacity. Hot serving sets are small (a handful of path
// expressions per application); 1024 leaves generous room for multi-tenant
// schemas.
const DefaultCapacity = 1024

// New creates a cache holding at most capacity entries in total (rounded up
// to a multiple of the shard count).
func New(capacity int) *Cache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	per := (capacity + numShards - 1) / numShards
	c := &Cache{seed: maphash.MakeSeed()}
	for i := range c.shards {
		c.shards[i].capacity = per
		c.shards[i].ll = list.New()
		c.shards[i].items = make(map[Key]*list.Element)
	}
	return c
}

func (c *Cache) shardFor(k Key) *shard {
	var h maphash.Hash
	h.SetSeed(c.seed)
	h.WriteString(k.SchemaFP)
	h.WriteByte(0)
	h.WriteString(k.Query)
	h.WriteByte(0)
	h.WriteString(k.Options)
	return &c.shards[h.Sum64()&(numShards-1)]
}

// Get returns the cached plan for k, marking it most recently used.
func (c *Cache) Get(k Key) (any, bool) {
	s := c.shardFor(k)
	s.mu.Lock()
	el, ok := s.items[k]
	var v any
	if ok {
		s.ll.MoveToFront(el)
		// Copy the value while still holding the lock: Put on an existing
		// key overwrites entry.value under the same lock, so reading it
		// after unlock would race with a concurrent refresh.
		v = el.Value.(*entry).value
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return v, true
}

// Put stores v under k, evicting the least recently used entry of the key's
// shard if the shard is full. Storing an existing key refreshes its value
// and recency. Entries stored with Put carry no relation tags and are
// dropped by every PurgeTagged call; use PutTagged when the plan's relation
// footprint is known.
func (c *Cache) Put(k Key, v any) { c.PutTagged(k, v, nil) }

// PutTagged stores v under k tagged with the relations the plan reads, so a
// write batch can invalidate exactly the entries whose plans could observe
// it (PurgeTagged) while unrelated hot entries keep serving.
func (c *Cache) PutTagged(k Key, v any, rels []string) {
	s := c.shardFor(k)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[k]; ok {
		e := el.Value.(*entry)
		e.value = v
		e.rels = rels
		s.ll.MoveToFront(el)
		return
	}
	if s.ll.Len() >= s.capacity {
		oldest := s.ll.Back()
		if oldest != nil {
			s.ll.Remove(oldest)
			delete(s.items, oldest.Value.(*entry).key)
			c.evictions.Add(1)
		}
	}
	s.items[k] = s.ll.PushFront(&entry{key: k, value: v, rels: rels})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n += s.ll.Len()
		s.mu.Unlock()
	}
	return n
}

// Purge drops every entry (counters are preserved).
func (c *Cache) Purge() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		s.ll.Init()
		s.items = make(map[Key]*list.Element)
		s.mu.Unlock()
	}
}

// PurgeTagged drops every entry whose relation tags intersect rels, plus
// every untagged entry (their footprint is unknown, so they cannot be
// proven unaffected). Entries tagged with disjoint relations survive — the
// scoped invalidation a write batch performs. Returns the number of entries
// dropped.
func (c *Cache) PurgeTagged(rels []string) int {
	if len(rels) == 0 {
		return 0
	}
	hit := make(map[string]bool, len(rels))
	for _, r := range rels {
		hit[r] = true
	}
	dropped := 0
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		for el := s.ll.Front(); el != nil; {
			next := el.Next()
			e := el.Value.(*entry)
			doomed := len(e.rels) == 0
			for _, r := range e.rels {
				if hit[r] {
					doomed = true
					break
				}
			}
			if doomed {
				s.ll.Remove(el)
				delete(s.items, e.key)
				dropped++
			}
			el = next
		}
		s.mu.Unlock()
	}
	return dropped
}

// Stats is a point-in-time counter snapshot. The JSON tags are the wire
// names the serving front end reports per tenant on /stats.
type Stats struct {
	Hits   int64 `json:"hits"`
	Misses int64 `json:"misses"`
	// Evictions counts entries dropped by LRU capacity pressure (Purge and
	// key refreshes do not count). A growing rate under a steady workload
	// means the hot set no longer fits and the capacity needs raising.
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
}

// Stats returns the cache's hit/miss/eviction counters and current size.
func (c *Cache) Stats() Stats {
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Entries:   c.Len(),
	}
}
